package ceres

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestDirStorePublishOpenLatestList(t *testing.T) {
	f := getTrainServeFixture(t)
	store, err := NewDirStore(filepath.Join(t.TempDir(), "models"))
	if err != nil {
		t.Fatal(err)
	}

	// Versions are assigned monotonically per site.
	for want := 1; want <= 3; want++ {
		v, err := store.Publish("films.example/a", f.model)
		if err != nil {
			t.Fatal(err)
		}
		if v != want {
			t.Fatalf("publish %d assigned version %d", want, v)
		}
	}
	if _, err := store.Publish("other.example", f.model); err != nil {
		t.Fatal(err)
	}

	ents, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	want := []StoreEntry{
		{Site: "films.example/a", Versions: []int{1, 2, 3}},
		{Site: "other.example", Versions: []int{1}},
	}
	if !reflect.DeepEqual(ents, want) {
		t.Fatalf("List() = %+v, want %+v", ents, want)
	}

	// Latest and Open agree, and the loaded model serves identically.
	m, v, err := store.Latest("films.example/a")
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Fatalf("Latest version = %d, want 3", v)
	}
	wantRes, err := f.model.Extract(context.Background(), f.serve)
	if err != nil {
		t.Fatal(err)
	}
	gotRes, err := m.Extract(context.Background(), f.serve)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantRes.Triples, gotRes.Triples) {
		t.Fatal("model loaded from store extracts differently")
	}

	// Missing sites and versions fail with the sentinel.
	if _, _, err := store.Latest("nope"); !errors.Is(err, ErrModelNotFound) {
		t.Errorf("Latest(nope) = %v, want ErrModelNotFound", err)
	}
	if _, err := store.Open("films.example/a", 9); !errors.Is(err, ErrModelNotFound) {
		t.Errorf("Open(v9) = %v, want ErrModelNotFound", err)
	}
	if _, err := store.Publish("", f.model); err == nil {
		t.Error("publishing an empty site name should fail")
	}

	// No publish temp files may survive, and published versions must be
	// world-readable (processes under other users share the store).
	err = filepath.WalkDir(store.Root(), func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if strings.HasPrefix(d.Name(), ".publish-") {
			t.Errorf("stray temp file %s", path)
		}
		if info, ierr := d.Info(); ierr == nil && info.Mode().Perm()&0o044 != 0o044 {
			t.Errorf("published file %s has mode %v, want world-readable", path, info.Mode().Perm())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDirStoreReadsV1Envelope plants a legacy v1-format model file in the
// store directory (as a pre-upgrade process would have left it) and checks
// the round trip: Latest reads it with v1 zero-means-default semantics,
// and republishing it through the store upgrades it to the current format
// with identical extractions.
func TestDirStoreReadsV1Envelope(t *testing.T) {
	f := getTrainServeFixture(t)
	var buf bytes.Buffer
	if _, err := f.model.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	doc["format"] = "ceres.sitemodel/1"
	// v1 never serialized resolved options; a zero NameThreshold meant
	// "default" there.
	doc["model"].(map[string]any)["Extract"] = map[string]any{"NameThreshold": 0.0}
	v1bytes, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}

	// WithJSONPublish keeps the republish below in the JSON format this
	// test asserts on; binary-default publishing has its own tests.
	store, err := NewDirStore(t.TempDir(), WithJSONPublish())
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(store.Root(), "legacy.example")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "v000001.json"), v1bytes, 0o644); err != nil {
		t.Fatal(err)
	}

	m, v, err := store.Latest("legacy.example")
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("legacy version = %d, want 1", v)
	}
	want, err := f.model.Extract(context.Background(), f.serve)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Extract(context.Background(), f.serve)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Triples, got.Triples) {
		t.Fatal("v1 model loaded through the store extracts differently")
	}

	// Republish: the store writes the current format as version 2, and it
	// still extracts identically.
	if v, err = store.Publish("legacy.example", m); err != nil || v != 2 {
		t.Fatalf("republish = %d, %v, want version 2", v, err)
	}
	reloaded, _, err := store.Latest("legacy.example")
	if err != nil {
		t.Fatal(err)
	}
	upgraded, err := os.ReadFile(filepath.Join(dir, "v000002.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(upgraded), `"format":"ceres.sitemodel/2"`) {
		t.Error("republished model is not in the current format")
	}
	got2, err := reloaded.Extract(context.Background(), f.serve)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Triples, got2.Triples) {
		t.Fatal("upgraded model extracts differently")
	}
}

// TestReadSiteModelTruncated checks that a model file cut off mid-stream —
// the torn write the DirStore's write-then-rename publish exists to
// prevent — fails loudly at read time at any truncation point.
func TestReadSiteModelTruncated(t *testing.T) {
	f := getTrainServeFixture(t)
	var buf bytes.Buffer
	if _, err := f.model.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, frac := range []float64{0.1, 0.5, 0.9} {
		cut := int(float64(len(full)) * frac)
		if _, err := ReadSiteModel(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("model truncated to %d/%d bytes read without error", cut, len(full))
		}
	}
	// Wrong format strings — including a prefix of the real one — fail.
	for _, format := range []string{"", "ceres.sitemodel", "ceres.sitemodel/3", "bogus"} {
		doc := append([]byte(nil), full...)
		var m map[string]json.RawMessage
		if err := json.Unmarshal(doc, &m); err != nil {
			t.Fatal(err)
		}
		fm, err := json.Marshal(format)
		if err != nil {
			t.Fatal(err)
		}
		m["format"] = fm
		bad, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ReadSiteModel(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "format") {
			t.Errorf("format %q: error = %v, want format error", format, err)
		}
	}
}

// TestDirStoreSiteNameHardening proves hostile or unusual site names
// cannot address files outside the store root, and that legal-but-odd
// names round-trip through Publish/List/Latest.
func TestDirStoreSiteNameHardening(t *testing.T) {
	f := getTrainServeFixture(t)
	outer := t.TempDir()
	root := filepath.Join(outer, "models")
	store, err := NewDirStore(root)
	if err != nil {
		t.Fatal(err)
	}

	for _, site := range []string{"", ".", ".."} {
		if _, err := store.Publish(site, f.model); !errors.Is(err, ErrInvalidSiteName) {
			t.Errorf("Publish(%q) error = %v, want ErrInvalidSiteName", site, err)
		}
		if _, err := store.Open(site, 1); !errors.Is(err, ErrInvalidSiteName) {
			t.Errorf("Open(%q) error = %v, want ErrInvalidSiteName", site, err)
		}
		if _, _, err := store.Latest(site); !errors.Is(err, ErrInvalidSiteName) {
			t.Errorf("Latest(%q) error = %v, want ErrInvalidSiteName", site, err)
		}
	}

	// Slash-containing, dot-leading and unicode names are legal: PathEscape
	// folds each into a single directory entry under the store root.
	odd := []string{"../escape.example", "a/b/c", "..hidden", "filmová-databáze.cz", "漢字.example", "sp ace.example"}
	for _, site := range odd {
		if _, err := store.Publish(site, f.model); err != nil {
			t.Fatalf("Publish(%q): %v", site, err)
		}
		if _, _, err := store.Latest(site); err != nil {
			t.Errorf("Latest(%q): %v", site, err)
		}
	}

	// Nothing may exist outside the store root.
	ents, err := os.ReadDir(outer)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "models" {
		t.Fatalf("store escaped its root: %v", ents)
	}
	err = filepath.Walk(root, func(path string, _ os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			t.Fatalf("path %q resolves outside the root", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// List round-trips every odd name.
	listed, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, e := range listed {
		got[e.Site] = true
	}
	for _, site := range odd {
		if !got[site] {
			t.Errorf("List lost site %q: %v", site, listed)
		}
	}
}

func TestCheckSiteName(t *testing.T) {
	for _, bad := range []string{"", ".", ".."} {
		if err := CheckSiteName(bad); !errors.Is(err, ErrInvalidSiteName) {
			t.Errorf("CheckSiteName(%q) = %v, want ErrInvalidSiteName", bad, err)
		}
	}
	for _, ok := range []string{"a", "...", "a/b", "a\\b", "ünïcode", "a.example"} {
		if err := CheckSiteName(ok); err != nil {
			t.Errorf("CheckSiteName(%q) = %v, want nil", ok, err)
		}
	}
}
