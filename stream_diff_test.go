package ceres

// Differential tests for the streaming serve path (DESIGN.md §11):
// serving through the zero-DOM single-pass tokenizer must be
// bit-identical to the DOM serve path — same extractions, same
// confidences, same order, same XPath strings — across every DemoCorpus
// kind, under malformed markup, and under concurrent use of one compiled
// model from many streaming workers.

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"ceres/internal/core"
)

// diffStreamServe serves the same pages down the DOM path
// (DisableStreaming) and the streaming path and requires identical
// output. It returns the extraction count so callers can assert the
// comparison was not vacuous.
func diffStreamServe(t *testing.T, name string, sm *core.SiteModel, serve []core.PageSource) int {
	t.Helper()
	sm.DisableStreaming = true
	want, err := sm.ExtractSources(context.Background(), serve)
	if err != nil {
		t.Fatalf("%s: dom path: %v", name, err)
	}
	sm.DisableStreaming = false
	got, err := sm.ExtractSources(context.Background(), serve)
	if err != nil {
		t.Fatalf("%s: streaming path: %v", name, err)
	}
	if !reflect.DeepEqual(got, want) {
		max := len(got)
		if len(want) < max {
			max = len(want)
		}
		for i := 0; i < max; i++ {
			if got[i] != want[i] {
				t.Fatalf("%s: extraction %d diverges\nstreaming: %+v\ndom:       %+v", name, i, got[i], want[i])
			}
		}
		t.Fatalf("%s: streaming path %d extractions, dom path %d", name, len(got), len(want))
	}
	return len(want)
}

func trainHalf(t *testing.T, kind string, seed int64, pages int) (*core.SiteModel, []core.PageSource) {
	t.Helper()
	src, c := corpusSources(t, kind, seed, pages)
	var train, serve []core.PageSource
	for i, s := range src {
		if i%2 == 0 {
			train = append(train, s)
		} else {
			serve = append(serve, s)
		}
	}
	sm, _, err := core.TrainSite(context.Background(), train, c.KB, core.Config{Train: core.TrainOptions{Seed: 1}})
	if err != nil {
		t.Fatalf("%s: %v", kind, err)
	}
	return sm, serve
}

func TestStreamServeMatchesDOMAllCorpora(t *testing.T) {
	kinds := []string{"movies", "movies-longtail", "imdb-films", "imdb-people", "crawl-czech"}
	total := 0
	for _, kind := range kinds {
		sm, serve := trainHalf(t, kind, 7, 40)
		total += diffStreamServe(t, kind, sm, serve)
	}
	if total == 0 {
		t.Fatal("differential covered zero extractions")
	}
}

// TestStreamServeMatchesDOMMalformed mutates served pages with the
// malformed constructs the parser tolerates — unclosed tags, raw-text
// elements, comments inside tables, stray end tags, truncation — and
// requires both paths to agree on every mutant.
func TestStreamServeMatchesDOMMalformed(t *testing.T) {
	sm, serve := trainHalf(t, "movies", 7, 30)
	mutate := []struct {
		name string
		fn   func(html string) string
	}{
		{"unclosed divs", func(h string) string {
			return strings.Replace(h, "<body", "<div><div class=\"open\"><body", 1)
		}},
		{"comment in table", func(h string) string {
			return strings.ReplaceAll(h, "<tr>", "<!-- row --><tr>")
		}},
		{"raw text", func(h string) string {
			return strings.Replace(h, "</body>", "<script>if (a<b) { x(\"</div>\"); }</script><style>p>a{}</style></body>", 1)
		}},
		{"stray end tags", func(h string) string {
			return strings.ReplaceAll(h, "<td>", "</span></p><td>")
		}},
		{"truncated", func(h string) string {
			return h[:len(h)*3/4]
		}},
		{"unclosed raw", func(h string) string {
			return h + "<script>never closed"
		}},
	}
	for _, m := range mutate {
		mutated := make([]core.PageSource, len(serve))
		for i, s := range serve {
			mutated[i] = core.PageSource{ID: s.ID, HTML: m.fn(s.HTML)}
		}
		diffStreamServe(t, m.name, sm, mutated)
	}
}

// TestStreamServeSharedModelRace drives 8 goroutines through one compiled
// model on the streaming path simultaneously; run with -race it proves
// the per-worker scratch discipline. Every worker must also produce the
// same output.
func TestStreamServeSharedModelRace(t *testing.T) {
	sm, serve := trainHalf(t, "movies", 7, 24)
	want, err := sm.ExtractSources(context.Background(), serve)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	results := make([][]core.Extraction, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			results[w], errs[w] = sm.ExtractSources(context.Background(), serve)
		}()
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if !reflect.DeepEqual(results[w], want) {
			t.Fatalf("worker %d diverged from sequential output", w)
		}
	}
}

// TestStreamExtractScanMatches feeds pages through the byte-scan entry
// point and requires the same extractions as the string-source path.
func TestStreamExtractScanMatches(t *testing.T) {
	sm, serve := trainHalf(t, "imdb-films", 7, 24)
	want, err := sm.ExtractSources(context.Background(), serve)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := sm.ExtractScan(context.Background(), func(yield func(id string, html []byte) error) error {
		for _, s := range serve {
			if err := yield(s.ID, []byte(s.HTML)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pages != len(serve) {
		t.Fatalf("stats.Pages = %d, want %d", stats.Pages, len(serve))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("scan path %d extractions, source path %d", len(got), len(want))
	}
}

// TestStreamWatermarkRouting exercises prefix-watermark routing on a
// two-cluster model: with a generous watermark the routed output must
// still match full-page routing on template pages, and the fallback must
// keep pages with inconclusive prefixes extractable.
func TestStreamWatermarkRouting(t *testing.T) {
	movieSrc, movieCorpus := corpusSources(t, "movies", 7, 30)
	imdbSrc, _ := corpusSources(t, "imdb-films", 3, 20)
	train := append(append([]core.PageSource{}, movieSrc[:15]...), imdbSrc[:10]...)
	sm, _, err := core.TrainSite(context.Background(), train, movieCorpus.KB, core.Config{Train: core.TrainOptions{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sm.Clusters) < 2 {
		t.Skipf("expected multi-cluster model, got %d", len(sm.Clusters))
	}
	serve := append(append([]core.PageSource{}, movieSrc[15:]...), imdbSrc[10:]...)
	want, err := sm.ExtractSources(context.Background(), serve)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{64, 256} {
		sm.SignatureWatermark = w
		got, err := sm.ExtractSources(context.Background(), serve)
		sm.SignatureWatermark = 0
		if err != nil {
			t.Fatalf("watermark %d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("watermark %d: output diverges from full-page routing (%d vs %d extractions)",
				w, len(got), len(want))
		}
	}
}
