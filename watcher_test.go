package ceres

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestWatcherConvergesOnStore publishes versions into a DirStore and
// checks that Poll hot-swaps the registry to each stored latest —
// including a site the registry has never seen.
func TestWatcherConvergesOnStore(t *testing.T) {
	f := getTrainServeFixture(t)
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	m := NewMetrics()
	var swapLog []string
	w := NewModelWatcher(store, reg, WatcherOptions{
		Interval: time.Minute, // Run is not used; Poll directly
		Metrics:  m,
		OnSwap: func(site string, from, to int) {
			swapLog = append(swapLog, site)
			if to <= from {
				t.Errorf("OnSwap(%s, %d, %d): not an upgrade", site, from, to)
			}
		},
	})
	ctx := context.Background()

	// An empty store converges to nothing.
	if n, err := w.Poll(ctx); n != 0 || err != nil {
		t.Fatalf("empty store Poll = %d, %v", n, err)
	}

	if _, err := store.Publish("demo", f.model); err != nil {
		t.Fatal(err)
	}
	if n, err := w.Poll(ctx); n != 1 || err != nil {
		t.Fatalf("first Poll = %d, %v, want 1 swap", n, err)
	}
	if e, ok := reg.Lookup("demo"); !ok || e.Version != 1 {
		t.Fatalf("after poll: Lookup = %+v, %v, want version 1", e, ok)
	}
	// Converged: another poll swaps nothing.
	if n, err := w.Poll(ctx); n != 0 || err != nil {
		t.Fatalf("steady-state Poll = %d, %v, want 0 swaps", n, err)
	}

	// A new publish rolls the registry forward; the served model is the
	// stored artifact (extraction works through the swapped model).
	if _, err := store.Publish("demo", f.model); err != nil {
		t.Fatal(err)
	}
	if n, err := w.Poll(ctx); n != 1 || err != nil {
		t.Fatalf("rollout Poll = %d, %v, want 1 swap", n, err)
	}
	e, _ := reg.Lookup("demo")
	if e.Version != 2 {
		t.Fatalf("after rollout: version %d, want 2", e.Version)
	}
	if _, err := e.Model.Extract(ctx, f.serve); err != nil {
		t.Fatalf("extracting through watched model: %v", err)
	}
	if len(swapLog) != 2 {
		t.Errorf("OnSwap fired %d times, want 2", len(swapLog))
	}

	// Metrics tell the same story.
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"ceres_watcher_polls_total 4",
		"ceres_watcher_swaps_total 2",
		"ceres_watcher_rollbacks_total 0",
		"ceres_watcher_errors_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// fakeStore scripts List/Open for failure-path tests.
type fakeStore struct {
	entries []StoreEntry
	listErr error
	open    func(site string, version int) (*SiteModel, error)
}

func (s *fakeStore) Publish(string, *SiteModel) (int, error) {
	return 0, errors.New("fakeStore: read-only")
}
func (s *fakeStore) List() ([]StoreEntry, error) { return s.entries, s.listErr }
func (s *fakeStore) Open(site string, version int) (*SiteModel, error) {
	return s.open(site, version)
}
func (s *fakeStore) Latest(site string) (*SiteModel, int, error) {
	return nil, 0, ErrModelNotFound
}

// TestWatcherRollback: when the store's latest is below the registry's
// serving version (operator deleted a bad artifact), the watcher
// converges downward and counts a rollback.
func TestWatcherRollback(t *testing.T) {
	f := getTrainServeFixture(t)
	store := &fakeStore{
		entries: []StoreEntry{{Site: "demo", Versions: []int{1}}},
		open: func(site string, version int) (*SiteModel, error) {
			return f.model, nil
		},
	}
	reg := NewRegistry()
	reg.Publish("demo", 5, f.model) // fleet is ahead of the store
	m := NewMetrics()
	w := NewModelWatcher(store, reg, WatcherOptions{Metrics: m})
	if n, err := w.Poll(context.Background()); n != 1 || err != nil {
		t.Fatalf("Poll = %d, %v, want 1 swap", n, err)
	}
	if e, _ := reg.Lookup("demo"); e.Version != 1 {
		t.Fatalf("after rollback: version %d, want 1", e.Version)
	}
	var sb strings.Builder
	m.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "ceres_watcher_rollbacks_total 1") {
		t.Errorf("rollback not counted:\n%s", sb.String())
	}
}

// TestWatcherBackoff: a failing model load is retried only after its
// backoff window, with exponential growth, and a healthy site in the
// same store keeps converging — one bad artifact never blocks the fleet.
func TestWatcherBackoff(t *testing.T) {
	f := getTrainServeFixture(t)
	opens := map[string]int{}
	store := &fakeStore{
		entries: []StoreEntry{
			{Site: "bad", Versions: []int{1}},
			{Site: "good", Versions: []int{1}},
		},
		open: func(site string, version int) (*SiteModel, error) {
			opens[site]++
			if site == "bad" {
				return nil, errors.New("corrupt artifact")
			}
			return f.model, nil
		},
	}
	reg := NewRegistry()
	m := NewMetrics()
	w := NewModelWatcher(store, reg, WatcherOptions{
		Interval: time.Second,
		Backoff:  10 * time.Second,
		Metrics:  m,
	})
	now := time.Unix(1000, 0)
	w.now = func() time.Time { return now }

	ctx := context.Background()
	n, err := w.Poll(ctx)
	if n != 1 || err == nil {
		t.Fatalf("Poll = %d, %v, want 1 swap (good) and the bad site's error", n, err)
	}
	if _, ok := reg.Lookup("good"); !ok {
		t.Fatal("good site did not converge past the bad one")
	}
	if opens["bad"] != 1 {
		t.Fatalf("bad opened %d times, want 1", opens["bad"])
	}

	// Within the backoff window the bad site is not retried.
	now = now.Add(5 * time.Second)
	if _, err := w.Poll(ctx); err != nil {
		t.Fatalf("backed-off Poll returned error: %v", err)
	}
	if opens["bad"] != 1 {
		t.Fatalf("bad retried during backoff (%d opens)", opens["bad"])
	}

	// Past the window it retries; the next window doubles.
	now = now.Add(6 * time.Second) // t+11s > 10s backoff
	w.Poll(ctx)
	if opens["bad"] != 2 {
		t.Fatalf("bad not retried after backoff (%d opens)", opens["bad"])
	}
	now = now.Add(15 * time.Second) // t+26s; second window is 20s from t+11s
	w.Poll(ctx)
	if opens["bad"] != 2 {
		t.Fatalf("bad retried before doubled backoff (%d opens)", opens["bad"])
	}
	now = now.Add(10 * time.Second) // t+36s > t+31s
	w.Poll(ctx)
	if opens["bad"] != 3 {
		t.Fatalf("bad not retried after doubled backoff (%d opens)", opens["bad"])
	}

	// Once the artifact heals, the site converges and its failure state
	// clears.
	store.open = func(site string, version int) (*SiteModel, error) { return f.model, nil }
	now = now.Add(time.Hour)
	if n, err := w.Poll(ctx); n != 1 || err != nil {
		t.Fatalf("healed Poll = %d, %v, want 1 swap", n, err)
	}
	if len(w.fail) != 0 {
		t.Errorf("failure state not cleared: %v", w.fail)
	}
}

// TestWatcherListFailure: a store outage is a counted, retriable error;
// the registry keeps serving what it has.
func TestWatcherListFailure(t *testing.T) {
	f := getTrainServeFixture(t)
	store := &fakeStore{listErr: errors.New("store down")}
	reg := NewRegistry()
	reg.Publish("demo", 3, f.model)
	m := NewMetrics()
	w := NewModelWatcher(store, reg, WatcherOptions{Metrics: m})
	if _, err := w.Poll(context.Background()); err == nil {
		t.Fatal("Poll on a down store returned nil error")
	}
	if e, ok := reg.Lookup("demo"); !ok || e.Version != 3 {
		t.Fatalf("outage disturbed the registry: %+v, %v", e, ok)
	}
	var sb strings.Builder
	m.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "ceres_watcher_errors_total 1") {
		t.Errorf("list failure not counted:\n%s", sb.String())
	}
}

// TestWatcherRun drives the real polling loop: a publish while Run is
// live converges without any call from the test, and cancelling the
// context stops the loop.
func TestWatcherRun(t *testing.T) {
	f := getTrainServeFixture(t)
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	w := NewModelWatcher(store, reg, WatcherOptions{Interval: 5 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()

	if _, err := store.Publish("demo", f.model); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if e, ok := reg.Lookup("demo"); ok && e.Version == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watcher Run did not converge within 10s")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop after cancel")
	}
}
