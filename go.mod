module ceres

go 1.24
