package ceres

import (
	"fmt"

	"ceres/internal/strmatch"
	"ceres/internal/websim"
)

// norm canonicalizes a value for comparison.
func norm(s string) string { return strmatch.Normalize(s) }

// GoldFact is a ground-truth assertion of a generated demo page, for
// evaluating extraction quality in the examples and benchmarks.
type GoldFact struct {
	Page      string
	Predicate string
	Value     string
}

// Corpus is a generated demo website with its seed KB and ground truth —
// a stand-in for the proprietary corpora the paper evaluates on (see
// DESIGN.md §1).
type Corpus struct {
	// Name describes the corpus.
	Name string
	// Pages are the site's pages, ready for Pipeline.Train.
	Pages []PageSource
	// KB is the seed knowledge base aligned with part of the site.
	KB *KB
	// Gold lists every (page, predicate, value) the pages assert,
	// including facts about entities absent from KB.
	Gold []GoldFact
	// TopicOf maps page ID to the page's topic-entity name.
	TopicOf map[string]string
}

// DemoCorpus generates a deterministic demo corpus. Kinds:
//
//   - "movies": one movie site (like the paper's SWDE Movie vertical);
//     the seed KB knows every entity, so annotation coverage is high.
//   - "movies-longtail": the same site but the KB covers only half the
//     films — the new-entity-discovery setting of §5.5.
//   - "imdb-films", "imdb-people": the complex film/person templates of
//     §5.4, with Known-For sections, recommendation rails and biased KB
//     coverage.
//   - "crawl-czech": a Czech-language long-tail movie site.
//
// pages bounds the site size (0 = a small default).
func DemoCorpus(kind string, seed int64, pages int) (*Corpus, error) {
	if pages == 0 {
		pages = 60
	}
	switch kind {
	case "movies", "movies-longtail":
		w := websim.NewWorld(websim.WorldConfig{Seed: seed})
		if pages > len(w.Films) {
			pages = len(w.Films)
		}
		style := websim.MovieSiteStyle{
			Layout: "table", Prefix: "demo", Language: "en", Recommendations: true,
		}
		site := websim.BuildMovieSite(w, w.Films[:pages], style, "demo-movies", seed+1)
		kbWorld := w
		if kind == "movies-longtail" {
			kbWorld = websim.TrimFilms(w, pages/2)
		}
		return corpusOf(kind, site, websim.BuildKB(kbWorld, websim.FullCoverage(), seed+2)), nil
	case "imdb-films", "imdb-people":
		w := websim.NewWorld(websim.WorldConfig{Seed: seed})
		films, people := websim.GenerateIMDB(w, websim.IMDBConfig{
			FilmPages: pages, PersonPages: pages, Seed: seed + 1,
		})
		site := films
		if kind == "imdb-people" {
			site = people
		}
		return corpusOf(kind, site, websim.BuildKB(w, websim.PaperCoverage(), seed+2)), nil
	case "crawl-czech":
		c := websim.GenerateCrawl(websim.CrawlConfig{
			Seed: seed, Scale: float64(pages) / 37988.0, MaxSitePages: pages,
			Sites: []string{"kinobox.cz"},
		})
		return corpusOf(kind, c.Sites[0], c.SeedKB), nil
	default:
		return nil, fmt.Errorf("ceres: unknown demo corpus %q", kind)
	}
}

func corpusOf(name string, site *websim.Site, k *KB) *Corpus {
	c := &Corpus{Name: name, KB: k, TopicOf: map[string]string{}}
	for _, p := range site.Pages {
		c.Pages = append(c.Pages, PageSource{ID: p.ID, HTML: p.HTML})
		if p.TopicID != "" {
			c.TopicOf[p.ID] = p.TopicName
		}
		for _, f := range p.GoldValues() {
			if f.Predicate == "name" {
				continue
			}
			c.Gold = append(c.Gold, GoldFact{Page: p.ID, Predicate: f.Predicate, Value: f.Value})
		}
	}
	return c
}

// Score compares extracted triples against the corpus ground truth,
// returning precision, recall and F1 over distinct (page, predicate,
// value) facts.
func (c *Corpus) Score(triples []Triple) (p, r, f1 float64) {
	type key struct{ page, pred, val string }
	gold := map[key]bool{}
	for _, g := range c.Gold {
		gold[key{g.Page, g.Predicate, norm(g.Value)}] = true
	}
	pred := map[key]bool{}
	for _, t := range triples {
		pred[key{t.Page, t.Predicate, norm(t.Object)}] = true
	}
	tp := 0
	for k := range pred {
		if gold[k] {
			tp++
		}
	}
	if len(pred) > 0 {
		p = float64(tp) / float64(len(pred))
	}
	if len(gold) > 0 {
		r = float64(tp) / float64(len(gold))
	}
	if p+r > 0 {
		f1 = 2 * p * r / (p + r)
	}
	return p, r, f1
}
