package ceres

import (
	"iter"
	"sort"

	"ceres/internal/fusion"
)

// FusedFact is a triple aggregated across sites with combined belief.
type FusedFact = fusion.Fact

// FusionObservation is one extracted triple credited to a source site —
// the unit streaming fusion consumes.
type FusionObservation = fusion.Observation

// FusionOptions tunes cross-site aggregation. SourcePriors assigns
// per-site reliability (default 0.7); Functional marks single-valued
// predicates whose competing objects must be resolved.
type FusionOptions = fusion.Options

// Fuser fuses observations one at a time, so a crawl-scale harvest can
// stream millions of extractions through fusion without materializing
// them: memory grows with the number of distinct facts, not with the
// number of observations. Feed observations in a deterministic order when
// bit-reproducible beliefs matter (belief is a floating-point product over
// the observations of a fact). Facts may be called at any point and does
// not consume the accumulated state. A Fuser is not safe for concurrent
// use.
type Fuser struct {
	acc *fusion.Accumulator
}

// NewFuser builds an empty streaming fuser over the fusion options.
func NewFuser(opts FusionOptions) *Fuser {
	return &Fuser{acc: fusion.NewAccumulator(opts)}
}

// Observe folds one observation into the running aggregates.
func (f *Fuser) Observe(o FusionObservation) { f.acc.Add(o) }

// ObserveTriple folds one extracted triple, credited to site, into the
// running aggregates.
func (f *Fuser) ObserveTriple(site string, t Triple) {
	f.acc.Add(fusion.Observation{
		Source:     site,
		Subject:    t.Subject,
		Predicate:  t.Predicate,
		Object:     t.Object,
		Confidence: t.Confidence,
	})
}

// Len returns how many distinct facts have been accumulated.
func (f *Fuser) Len() int { return f.acc.Len() }

// Facts resolves the aggregates into fused facts, sorted by descending
// belief then subject/predicate/object.
func (f *Fuser) Facts() []FusedFact { return f.acc.Facts() }

// Release recycles the fuser's internal storage for future fusers. Facts
// already resolved remain valid, but the fuser must not be used
// afterwards. Releasing is optional — an unreleased fuser is ordinary
// garbage — but a harvest loop that fuses run after run avoids regrowing
// the aggregate tables from empty by releasing each fuser when done.
func (f *Fuser) Release() {
	if f.acc != nil {
		f.acc.Release()
		f.acc = nil
	}
}

// FuseStream aggregates a stream of observations into fused facts without
// materializing the observation list — the bounded-memory form of Fuse for
// batch harvests. Observations are folded in stream order.
func FuseStream(obs iter.Seq[FusionObservation], opts FusionOptions) []FusedFact {
	f := NewFuser(opts)
	for o := range obs {
		f.Observe(o)
	}
	facts := f.Facts()
	f.Release()
	return facts
}

// Fuse aggregates extraction results from multiple sites into fused facts
// — the knowledge-fusion post-processing step the paper points to for
// cleaning a multi-site harvest (§5.5.1). results maps a site identifier
// to that site's extraction Result.
func Fuse(results map[string]*Result, opts FusionOptions) []FusedFact {
	// Iterate sites in sorted order: map order is random, and observation
	// order feeds any order-sensitive tie-breaking downstream, so sorting
	// keeps fusion output deterministic run to run.
	sites := make([]string, 0, len(results))
	for site := range results {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	f := NewFuser(opts)
	for _, site := range sites {
		res := results[site]
		if res == nil {
			continue
		}
		for _, t := range res.Triples {
			f.ObserveTriple(site, t)
		}
	}
	facts := f.Facts()
	f.Release()
	return facts
}
