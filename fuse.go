package ceres

import "ceres/internal/fusion"

// FusedFact is a triple aggregated across sites with combined belief.
type FusedFact = fusion.Fact

// FusionOptions tunes cross-site aggregation. SourcePriors assigns
// per-site reliability (default 0.7); Functional marks single-valued
// predicates whose competing objects must be resolved.
type FusionOptions = fusion.Options

// Fuse aggregates extraction results from multiple sites into fused facts
// — the knowledge-fusion post-processing step the paper points to for
// cleaning a multi-site harvest (§5.5.1). results maps a site identifier
// to that site's extraction Result.
func Fuse(results map[string]*Result, opts FusionOptions) []FusedFact {
	var obs []fusion.Observation
	for site, res := range results {
		if res == nil {
			continue
		}
		for _, t := range res.Triples {
			obs = append(obs, fusion.Observation{
				Source:     site,
				Subject:    t.Subject,
				Predicate:  t.Predicate,
				Object:     t.Object,
				Confidence: t.Confidence,
			})
		}
	}
	return fusion.Fuse(obs, opts)
}
