package ceres

import (
	"sort"

	"ceres/internal/fusion"
)

// FusedFact is a triple aggregated across sites with combined belief.
type FusedFact = fusion.Fact

// FusionOptions tunes cross-site aggregation. SourcePriors assigns
// per-site reliability (default 0.7); Functional marks single-valued
// predicates whose competing objects must be resolved.
type FusionOptions = fusion.Options

// Fuse aggregates extraction results from multiple sites into fused facts
// — the knowledge-fusion post-processing step the paper points to for
// cleaning a multi-site harvest (§5.5.1). results maps a site identifier
// to that site's extraction Result.
func Fuse(results map[string]*Result, opts FusionOptions) []FusedFact {
	// Iterate sites in sorted order: map order is random, and observation
	// order feeds any order-sensitive tie-breaking downstream, so sorting
	// keeps fusion output deterministic run to run.
	sites := make([]string, 0, len(results))
	for site := range results {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	var obs []fusion.Observation
	for _, site := range sites {
		res := results[site]
		if res == nil {
			continue
		}
		for _, t := range res.Triples {
			obs = append(obs, fusion.Observation{
				Source:     site,
				Subject:    t.Subject,
				Predicate:  t.Predicate,
				Object:     t.Object,
				Confidence: t.Confidence,
			})
		}
	}
	return fusion.Fuse(obs, opts)
}
