package ceres

import (
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ErrModelNotFound reports a site or version absent from a ModelStore.
var ErrModelNotFound = errors.New("ceres: model not found in store")

// ErrInvalidSiteName reports a site name a store cannot address safely —
// empty, or one whose escaped form would resolve outside the store root;
// test with errors.Is.
var ErrInvalidSiteName = errors.New("ceres: invalid site name")

// CheckSiteName validates a site name for use as a store partition key.
// Any non-empty name is acceptable as long as its url.PathEscape form is a
// real directory name: "." and ".." (which PathEscape leaves untouched,
// and filepath.Join would resolve out of the store root) are rejected, as
// is anything that still contains a path separator after escaping. Names
// with slashes, spaces or non-ASCII letters are fine — they escape to a
// single safe path segment and unescape back on listing.
func CheckSiteName(site string) error {
	if site == "" {
		return fmt.Errorf("%w: empty", ErrInvalidSiteName)
	}
	esc := url.PathEscape(site)
	if esc == "." || esc == ".." || strings.ContainsAny(esc, `/\`) {
		return fmt.Errorf("%w: %q", ErrInvalidSiteName, site)
	}
	return nil
}

// ModelStore persists trained SiteModels by site and monotonically
// increasing version, so a serving fleet can publish, roll forward and roll
// back extractors without retraining. Implementations must be safe for
// concurrent use.
type ModelStore interface {
	// Publish persists m as the next version of site and returns the
	// version it was assigned. Versions start at 1 and only grow.
	Publish(site string, m *SiteModel) (version int, err error)
	// Open loads one specific stored version of a site's model.
	// It returns ErrModelNotFound for a site or version not in the store.
	Open(site string, version int) (*SiteModel, error)
	// Latest loads the newest stored version of a site's model.
	Latest(site string) (*SiteModel, int, error)
	// List enumerates the stored sites and their versions, sorted by site
	// (versions ascending).
	List() ([]StoreEntry, error)
}

// StoreEntry is one site of a ModelStore listing.
type StoreEntry struct {
	Site     string
	Versions []int
}

// DirStore is a filesystem ModelStore: one directory per site (its name
// URL-path-escaped), one `v%06d.bin` (binary `ceres.sitemodel/3`
// WriteBinary format, the publish default) or `v%06d.json` (JSON WriteTo
// format, behind WithJSONPublish) file per version. Reads sniff the file
// contents, so a store freely mixes formats and JSON versions published
// by older builds remain readable forever. Publish writes to a temporary
// file in the same directory, then links it into place atomically, so
// readers — including other processes watching the directory — never
// observe a torn model, and a version file is never overwritten once it
// exists. Version numbers are recovered from the directory listing, so a
// DirStore survives restarts and can be shared by several processes:
// concurrent publishers of the same site each get their own version (a
// collision re-assigns the number and retries the link).
type DirStore struct {
	root        string
	publishJSON bool
	mu          sync.Mutex // serializes in-process version assignment
}

// StoreOption configures a DirStore.
type StoreOption func(*DirStore)

// WithJSONPublish makes the store publish new versions in the JSON
// `ceres.sitemodel/2` format instead of the binary default — e.g. for a
// store that older builds, or humans with text tools, still read.
// Loading always sniffs the file contents, so the option never affects
// which versions a store can open.
func WithJSONPublish() StoreOption {
	return func(s *DirStore) { s.publishJSON = true }
}

// NewDirStore opens (creating if needed) a filesystem model store rooted
// at dir.
func NewDirStore(dir string, opts ...StoreOption) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ceres: opening model store: %w", err)
	}
	s := &DirStore{root: dir}
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// Root returns the store's root directory.
func (s *DirStore) Root() string { return s.root }

func (s *DirStore) siteDir(site string) string {
	return filepath.Join(s.root, url.PathEscape(site))
}

// Version file extensions: binary is the publish default, JSON the
// compatibility format. parseVersion accepts both.
const (
	extBinary = ".bin"
	extJSON   = ".json"
)

func versionFile(v int, ext string) string { return fmt.Sprintf("v%06d%s", v, ext) }

// parseVersion extracts N from a "vNNNNNN.bin" or "vNNNNNN.json" file
// name, -1 otherwise.
func parseVersion(name string) int {
	if !strings.HasPrefix(name, "v") {
		return -1
	}
	switch {
	case strings.HasSuffix(name, extBinary):
		name = strings.TrimSuffix(name, extBinary)
	case strings.HasSuffix(name, extJSON):
		name = strings.TrimSuffix(name, extJSON)
	default:
		return -1
	}
	n, err := strconv.Atoi(strings.TrimPrefix(name, "v"))
	if err != nil || n < 1 {
		return -1
	}
	return n
}

// versions lists a site's stored versions, ascending; empty when the site
// has none. A version present in both formats (possible when publishers
// with different format options race across processes) lists once.
func (s *DirStore) versions(site string) ([]int, error) {
	ents, err := os.ReadDir(s.siteDir(site))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("ceres: listing model store: %w", err)
	}
	var out []int
	for _, e := range ents {
		if v := parseVersion(e.Name()); v > 0 && !e.IsDir() {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	out = slices.Compact(out)
	return out, nil
}

// Publish implements ModelStore: serialize m, write it to a temp file in
// the site's directory, fsync, and link it into place as the next version
// number. Linking (not renaming) makes the final step fail instead of
// clobber when another process published the same version concurrently;
// on that collision the version is re-assigned and the link retried, so
// concurrent publishers each keep their own complete model.
func (s *DirStore) Publish(site string, m *SiteModel) (int, error) {
	if err := CheckSiteName(site); err != nil {
		return 0, fmt.Errorf("ceres: publishing model: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := s.siteDir(site)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("ceres: publishing model: %w", err)
	}
	vs, err := s.versions(site)
	if err != nil {
		return 0, err
	}
	version := 1
	if len(vs) > 0 {
		version = vs[len(vs)-1] + 1
	}
	tmp, err := os.CreateTemp(dir, ".publish-*")
	if err != nil {
		return 0, fmt.Errorf("ceres: publishing model: %w", err)
	}
	defer os.Remove(tmp.Name()) // the published file is a separate link
	ext := extBinary
	if s.publishJSON {
		ext = extJSON
		_, err = m.WriteTo(tmp)
	} else {
		_, err = m.WriteBinary(tmp)
	}
	if err != nil {
		tmp.Close()
		return 0, fmt.Errorf("ceres: publishing model: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("ceres: publishing model: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("ceres: publishing model: %w", err)
	}
	// CreateTemp makes files 0600; published versions are world-readable
	// so other processes sharing the store can serve them.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return 0, fmt.Errorf("ceres: publishing model: %w", err)
	}
	for {
		// A version number is taken if either format's file exists — a
		// concurrent publisher may run with the other format option.
		if _, err := os.Lstat(filepath.Join(dir, versionFile(version, otherExt(ext)))); err == nil {
			version++
			continue
		}
		err := os.Link(tmp.Name(), filepath.Join(dir, versionFile(version, ext)))
		if err == nil {
			break
		}
		if !os.IsExist(err) {
			return 0, fmt.Errorf("ceres: publishing model: %w", err)
		}
		version++ // another process took this version; try the next
	}
	// The version is only durable once its directory entry is flushed;
	// without this a crash could resurrect the number for a different
	// model.
	if d, err := os.Open(dir); err == nil {
		syncErr := d.Sync()
		d.Close()
		if syncErr != nil {
			return 0, fmt.Errorf("ceres: publishing model: %w", syncErr)
		}
	}
	return version, nil
}

func otherExt(ext string) string {
	if ext == extBinary {
		return extJSON
	}
	return extBinary
}

// Open implements ModelStore. The version's file is located by trying
// the binary extension first, then JSON; the contents are sniffed by
// ReadSiteModel regardless, so either file may hold either format.
func (s *DirStore) Open(site string, version int) (*SiteModel, error) {
	if err := CheckSiteName(site); err != nil {
		return nil, fmt.Errorf("ceres: opening model: %w", err)
	}
	for _, ext := range []string{extBinary, extJSON} {
		data, err := os.ReadFile(filepath.Join(s.siteDir(site), versionFile(version, ext)))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, fmt.Errorf("ceres: opening model: %w", err)
		}
		return readSiteModelBytes(data)
	}
	return nil, fmt.Errorf("%w: site %q version %d", ErrModelNotFound, site, version)
}

// Latest implements ModelStore.
func (s *DirStore) Latest(site string) (*SiteModel, int, error) {
	if err := CheckSiteName(site); err != nil {
		return nil, 0, fmt.Errorf("ceres: opening model: %w", err)
	}
	vs, err := s.versions(site)
	if err != nil {
		return nil, 0, err
	}
	if len(vs) == 0 {
		return nil, 0, fmt.Errorf("%w: site %q", ErrModelNotFound, site)
	}
	v := vs[len(vs)-1]
	m, err := s.Open(site, v)
	if err != nil {
		return nil, 0, err
	}
	return m, v, nil
}

// List implements ModelStore.
func (s *DirStore) List() ([]StoreEntry, error) {
	ents, err := os.ReadDir(s.root)
	if err != nil {
		return nil, fmt.Errorf("ceres: listing model store: %w", err)
	}
	var out []StoreEntry
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		site, err := url.PathUnescape(e.Name())
		if err != nil {
			continue // not a store directory
		}
		vs, err := s.versions(site)
		if err != nil {
			return nil, err
		}
		if len(vs) == 0 {
			continue
		}
		out = append(out, StoreEntry{Site: site, Versions: vs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out, nil
}
