# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; `make lint` is the gate every PR must pass.

GO ?= go

.PHONY: all build test race lint bench bench-json fleet docker clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint = the stock vet suite plus ceresvet, the repo-invariant analyzers
# (atomic writes, context flow, map determinism, lock safety, allocfree
# contracts — see DESIGN.md §9). Any diagnostic fails the build.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/ceresvet ./...

# Headline benchmarks, human-readable. -short skips the 10k-model
# RegistryBoot/scale case, which only full bench-json runs pay for.
bench:
	$(GO) test -short -run='^$$' -bench='ServeExtract|ServiceExtract|StreamServe|Featurize|StageTopicIdentification|StageAnnotate|RegistryBoot' -benchtime=1x -benchmem .
	$(GO) test -run='^$$' -bench='BatchHarvest' -benchtime=1x -benchmem ./batch
	$(GO) test -run='^$$' -bench='PagestoreScan' -benchtime=1x -benchmem ./pagestore

# Machine-readable results for the serving and batch-harvest headliners
# (pages/s, ns/op, B/op, allocs/op). BENCH_N.json files at the repo root
# record one PR's numbers each.
BENCH_OUT ?= BENCH.json
bench-json:
	{ $(GO) test -run='^$$' -bench='ServiceExtract|StreamServe|RegistryBoot' -benchmem . ; \
	  $(GO) test -run='^$$' -bench='BatchHarvest' -benchmem ./batch ; \
	  $(GO) test -run='^$$' -bench='PagestoreScan' -benchmem ./pagestore ; } \
	| $(GO) run ./cmd/ceres-benchjson -out $(BENCH_OUT)
	@echo wrote $(BENCH_OUT)

# Fleet e2e: build the daemon, stand up REPLICAS of it behind the
# round-robin harness, roll a model publish mid-load and require zero
# dropped or misrouted requests plus convergence on every replica's
# /metrics (DESIGN.md §12).
REPLICAS ?= 2
fleet:
	$(GO) build -o bin/ceres-serve ./cmd/ceres-serve
	$(GO) run ./cmd/ceres-fleet -serve-bin bin/ceres-serve -replicas $(REPLICAS)

# Container image for the serving daemon (see docker-compose.yml for a
# two-replica fleet sharing one model volume).
docker:
	docker build -t ceres-serve .

clean:
	$(GO) clean ./...
	rm -rf bin
