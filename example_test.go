package ceres_test

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"ceres"
)

// demoSite renders a tiny fixed-template film site for the examples.
func demoSite() []ceres.PageSource {
	page := func(title, director, year string) string {
		return `<html><body><h1 class="title">` + title + `</h1>
<table class="facts">
<tr><th>Director</th><td>` + director + `</td></tr>
<tr><th>Year</th><td>` + year + `</td></tr>
</table></body></html>`
	}
	return []ceres.PageSource{
		{ID: "m1", HTML: page("Do the Right Thing", "Spike Lee", "1989")},
		{ID: "m2", HTML: page("Crooklyn", "Spike Lee", "1994")},
		{ID: "m3", HTML: page("The Silent Harbor", "Ada Dahl", "2001")},
		{ID: "m4", HTML: page("Crimson Orchard", "Tessa Novak", "2010")},
	}
}

// demoKB seeds facts about three of the four demo films.
func demoKB() *ceres.KB {
	k := ceres.NewKB(ceres.NewOntology(
		ceres.Predicate{Name: "directedBy", Domain: "film", Range: "person"},
		ceres.Predicate{Name: "releaseYear", Domain: "film"},
	))
	for i, s := range []struct{ title, director, year string }{
		{"Do the Right Thing", "Spike Lee", "1989"},
		{"Crooklyn", "Spike Lee", "1994"},
		{"The Silent Harbor", "Ada Dahl", "2001"},
	} {
		fid := fmt.Sprintf("f%d", i+1)
		pid := fmt.Sprintf("p%d", i+1)
		k.AddEntity(ceres.Entity{ID: fid, Type: "film", Name: s.title})
		k.AddEntity(ceres.Entity{ID: pid, Type: "person", Name: s.director})
		k.AddTriple(ceres.KBTriple{Subject: fid, Predicate: "directedBy", Object: ceres.EntityObject(pid)})
		k.AddTriple(ceres.KBTriple{Subject: fid, Predicate: "releaseYear", Object: ceres.LiteralObject(s.year)})
	}
	return k
}

// ExamplePipeline_Train shows the train-once/extract-forever lifecycle:
// training produces a SiteModel, and the model serves pages — here one it
// has never seen — without touching the KB again.
func ExamplePipeline_Train() {
	ctx := context.Background()
	p := ceres.NewPipeline(demoKB(), ceres.WithMinAnnotations(2))
	model, err := p.Train(ctx, demoSite())
	if err != nil {
		log.Fatal(err)
	}

	unseen := []ceres.PageSource{{ID: "m9", HTML: `<html><body><h1 class="title">Glass Meridian</h1>
<table class="facts">
<tr><th>Director</th><td>Ada Dahl</td></tr>
<tr><th>Year</th><td>2021</td></tr>
</table></body></html>`}}
	res, err := model.Extract(ctx, unseen)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range res.Triples {
		fmt.Printf("(%s, %s, %s)\n", t.Subject, t.Predicate, t.Object)
	}
	// Output:
	// (Glass Meridian, directedBy, Ada Dahl)
	// (Glass Meridian, releaseYear, 2021)
}

// ExampleSiteModel_WriteTo persists a trained extractor and reloads it the
// way a separate serving process would: no KB, no retraining.
func ExampleSiteModel_WriteTo() {
	ctx := context.Background()
	model, err := ceres.NewPipeline(demoKB(), ceres.WithMinAnnotations(2)).Train(ctx, demoSite())
	if err != nil {
		log.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := model.WriteTo(&buf); err != nil {
		log.Fatal(err)
	}
	loaded, err := ceres.ReadSiteModel(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clusters=%d trained=%d threshold=%.1f\n",
		loaded.TemplateClusters(), loaded.TrainedClusters(), loaded.Threshold())
	// Output:
	// clusters=1 trained=1 threshold=0.5
}

// ExampleService shows the serving stack answering a request-scoped call:
// the trained model is published into a Registry and a Service extracts
// from a page it has never seen, at a threshold chosen by the request —
// the model itself is never mutated.
func ExampleService() {
	ctx := context.Background()
	model, err := ceres.NewPipeline(demoKB(), ceres.WithMinAnnotations(2)).Train(ctx, demoSite())
	if err != nil {
		log.Fatal(err)
	}

	reg := ceres.NewRegistry()
	reg.Publish("films.example", 1, model)
	svc := ceres.NewService(reg)

	strict := 0.75
	resp, err := svc.Extract(ctx, ceres.ExtractRequest{
		Site: "films.example",
		Pages: []ceres.PageSource{{ID: "m9", HTML: `<html><body><h1 class="title">Glass Meridian</h1>
<table class="facts">
<tr><th>Director</th><td>Ada Dahl</td></tr>
<tr><th>Year</th><td>2021</td></tr>
</table></body></html>`}},
		Options: ceres.RequestOptions{Threshold: &strict},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served v%d: %d pages, %d triples\n", resp.Version, resp.Stats.Pages, resp.Stats.Triples)
	for _, t := range resp.Triples {
		fmt.Printf("(%s, %s, %s)\n", t.Subject, t.Predicate, t.Object)
	}
	// Output:
	// served v1: 1 pages, 2 triples
	// (Glass Meridian, directedBy, Ada Dahl)
	// (Glass Meridian, releaseYear, 2021)
}

// ExampleSiteModel_ExtractStream streams triples with bounded memory —
// the serving mode for sites too large to hold in one Result.
func ExampleSiteModel_ExtractStream() {
	ctx := context.Background()
	model, err := ceres.NewPipeline(demoKB(), ceres.WithMinAnnotations(2)).Train(ctx, demoSite())
	if err != nil {
		log.Fatal(err)
	}
	count := 0
	err = model.ExtractStream(ctx, demoSite(), func(t ceres.Triple) error {
		count++ // triples arrive as each page finishes
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(count > 0)
	// Output:
	// true
}
