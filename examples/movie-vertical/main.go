// Command movie-vertical reproduces the flavor of the paper's SWDE Movie
// experiment (§5.3): a generated movie website with recommendation-rail
// traps, a seed knowledge base derived from the same world, extraction in
// both annotation modes (CERES-Full vs CERES-Topic), and an evaluation
// against ground truth — showing why Algorithm 2 matters.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"ceres"
)

func main() {
	pages := flag.Int("pages", 120, "site size")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()
	ctx := context.Background()

	corpus, err := ceres.DemoCorpus("movies", *seed, *pages)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus %q: %d pages, seed KB with %d entities / %d triples\n\n",
		corpus.Name, len(corpus.Pages), corpus.KB.NumEntities(), corpus.KB.NumTriples())

	for _, mode := range []struct {
		name string
		m    ceres.Mode
	}{
		{"CERES-Full (Algorithm 1 + Algorithm 2)", ceres.ModeFull},
		{"CERES-Topic (no relation annotation)", ceres.ModeTopicOnly},
	} {
		p := ceres.NewPipeline(corpus.KB, ceres.WithMode(mode.m))
		model, err := p.Train(ctx, corpus.Pages)
		if err != nil {
			log.Fatal(err)
		}
		res, err := model.Extract(ctx, corpus.Pages)
		if err != nil {
			log.Fatal(err)
		}
		prec, rec, f1 := corpus.Score(res.Triples)
		fmt.Printf("%s\n", mode.name)
		fmt.Printf("  annotated pages: %d/%d, annotations: %d\n",
			res.AnnotatedPages, len(corpus.Pages), res.Annotations)
		fmt.Printf("  triples@0.5: %d   P=%.3f R=%.3f F1=%.3f\n\n",
			len(res.Triples), prec, rec, f1)
	}

	// Confidence-threshold tradeoff (the Figure 6 story, on one site).
	// Train ONCE, then reuse the same model at every cutoff — the
	// threshold is a serve-time knob, not a training parameter.
	model, err := ceres.NewPipeline(corpus.KB, ceres.WithThreshold(0)).Train(ctx, corpus.Pages)
	if err != nil {
		log.Fatal(err)
	}
	res, err := model.Extract(ctx, corpus.Pages)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("precision / volume vs confidence threshold (one trained model):")
	for _, th := range []float64{0.5, 0.75, 0.9, 0.95} {
		var kept []ceres.Triple
		for _, t := range res.Triples {
			if t.Confidence >= th {
				kept = append(kept, t)
			}
		}
		prec, rec, _ := corpus.Score(kept)
		fmt.Printf("  threshold %.2f: %5d triples  P=%.3f R=%.3f\n", th, len(kept), prec, rec)
	}
}
