// Command longtail-harvest mirrors the paper's CommonCrawl experiment
// (§5.5) in miniature: extract from a long-tail, non-English movie site
// whose entities only partially overlap the seed KB, and report how many
// facts concern entities the KB had never seen — the knowledge-base growth
// loop that motivates CERES. It also demonstrates the serving lifecycle:
// the trained model is persisted, reloaded as a second process would, and
// streams its extractions with bounded memory.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"strings"

	"ceres"
)

func main() {
	pages := flag.Int("pages", 150, "site size")
	seed := flag.Int64("seed", 1, "generator seed")
	threshold := flag.Float64("threshold", 0.75, "extraction confidence threshold")
	flag.Parse()
	ctx := context.Background()

	corpus, err := ceres.DemoCorpus("crawl-czech", *seed, *pages)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("site kinobox.cz (synthetic): %d Czech-language pages; seed KB: %d triples\n\n",
		len(corpus.Pages), corpus.KB.NumTriples())

	// Train once...
	p := ceres.NewPipeline(corpus.KB, ceres.WithThreshold(*threshold))
	model, err := p.Train(ctx, corpus.Pages)
	if err != nil {
		log.Fatal(err)
	}

	// ...persist the extractor, and reload it the way a separate serving
	// process would: no KB, no annotation, no training.
	var buf bytes.Buffer
	n, err := model.WriteTo(&buf)
	if err != nil {
		log.Fatal(err)
	}
	served, err := ceres.ReadSiteModel(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("site model: %d bytes on disk, %d template clusters (%d trained)\n",
		n, served.TemplateClusters(), served.TrainedClusters())

	// Stream extractions from the reloaded model.
	var triples []ceres.Triple
	err = served.ExtractStream(ctx, corpus.Pages, func(t ceres.Triple) error {
		triples = append(triples, t)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	prec, rec, _ := corpus.Score(triples)

	// Count triples about subjects absent from the seed KB.
	known := map[string]bool{}
	for _, id := range corpus.KB.EntityIDs() {
		e, _ := corpus.KB.Entity(id)
		known[strings.ToLower(e.Name)] = true
	}
	newEntity := 0
	for _, t := range triples {
		if !known[strings.ToLower(t.Subject)] {
			newEntity++
		}
	}

	fmt.Printf("triples@%.2f: %d   P=%.3f R=%.3f\n", *threshold, len(triples), prec, rec)
	fmt.Printf("triples about entities NOT in the seed KB: %d (%.0f%%)\n\n",
		newEntity, 100*float64(newEntity)/float64(max(1, len(triples))))

	fmt.Println("sample extractions:")
	for i, t := range triples {
		if i == 10 {
			break
		}
		fmt.Printf("  [%.2f] (%s, %s, %s)\n", t.Confidence, t.Subject, t.Predicate, t.Object)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
