// Command longtail-harvest mirrors the paper's CommonCrawl experiment
// (§5.5) in miniature: extract from a long-tail, non-English movie site
// whose entities only partially overlap the seed KB, and report how many
// facts concern entities the KB had never seen — the knowledge-base growth
// loop that motivates CERES. It runs through the batch harvest subsystem:
// the site is trained once, published into a versioned model store (as a
// separate serving process would load it), and extracted shard by shard
// with bounded memory.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/url"
	"os"
	"path/filepath"
	"strings"

	"ceres"
	"ceres/batch"
)

func main() {
	pages := flag.Int("pages", 150, "site size")
	seed := flag.Int64("seed", 1, "generator seed")
	threshold := flag.Float64("threshold", 0.75, "extraction confidence threshold")
	shardPages := flag.Int("shard-pages", 32, "pages per extraction shard")
	flag.Parse()
	ctx := context.Background()

	corpus, err := ceres.DemoCorpus("crawl-czech", *seed, *pages)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("site kinobox.cz (synthetic): %d Czech-language pages; seed KB: %d triples\n\n",
		len(corpus.Pages), corpus.KB.NumTriples())

	// The batch runner trains the site once, publishes the model into a
	// versioned store (where any serving process could load it), and
	// extracts shard by shard — one shard of pages in memory at a time.
	tmp, err := os.MkdirTemp("", "longtail-harvest-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)
	store, err := ceres.NewDirStore(filepath.Join(tmp, "models"))
	if err != nil {
		log.Fatal(err)
	}
	provider := batch.NewMemProvider()
	provider.Add("kinobox.cz", corpus.Pages)
	sink := batch.NewCollectSink()
	runner, err := batch.NewRunner(batch.Config{
		Provider: provider,
		Sink:     sink,
		Store:    store,
		Pipeline: ceres.NewPipeline(corpus.KB, ceres.WithThreshold(*threshold)),
	})
	if err != nil {
		log.Fatal(err)
	}
	report, err := runner.Run(ctx, batch.Job{ShardPages: *shardPages})
	if err != nil {
		log.Fatal(err)
	}
	site := report.Sites[0]
	if site.Skipped || site.Err != "" {
		log.Fatalf("harvest failed: %s", site.Err)
	}

	// The published artifact is what a separate serving fleet would load.
	served, version, err := store.Latest("kinobox.cz")
	if err != nil {
		log.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(store.Root(), url.PathEscape("kinobox.cz"), fmt.Sprintf("v%06d.json", version)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("site model: %d bytes on disk, %d template clusters (%d trained)\n",
		fi.Size(), served.TemplateClusters(), served.TrainedClusters())
	fmt.Printf("harvest: %d shards, %d pages extracted through model v%d\n",
		site.Shards, report.Pages, site.Version)

	triples := sink.Triples()
	ceres.SortTriples(triples)
	prec, rec, _ := corpus.Score(triples)

	// Count triples about subjects absent from the seed KB.
	known := map[string]bool{}
	for _, id := range corpus.KB.EntityIDs() {
		e, _ := corpus.KB.Entity(id)
		known[strings.ToLower(e.Name)] = true
	}
	newEntity := 0
	for _, t := range triples {
		if !known[strings.ToLower(t.Subject)] {
			newEntity++
		}
	}

	fmt.Printf("triples@%.2f: %d   P=%.3f R=%.3f\n", *threshold, len(triples), prec, rec)
	fmt.Printf("triples about entities NOT in the seed KB: %d (%.0f%%)\n\n",
		newEntity, 100*float64(newEntity)/float64(max(1, len(triples))))

	fmt.Println("sample extractions:")
	for i, t := range triples {
		if i == 10 {
			break
		}
		fmt.Printf("  [%.2f] (%s, %s, %s)\n", t.Confidence, t.Subject, t.Predicate, t.Object)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
