// Command serve-fleet runs the production serving stack in one process:
// train a few sites, publish each model into a versioned DirStore, boot a
// Registry from the store the way cmd/ceres-serve does, and answer
// request-scoped extraction calls through a Service — per-request
// thresholds, hot-swapped model versions, no retraining and no model
// mutation anywhere on the serve path.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"ceres"
)

func main() {
	ctx := context.Background()

	dir, err := os.MkdirTemp("", "ceres-fleet-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := ceres.NewDirStore(dir)
	if err != nil {
		log.Fatal(err)
	}

	// Training side: harvest two differently-templated sites and publish
	// each trained model into the store. In production this runs in a
	// separate process (or machine) from serving.
	for _, kind := range []string{"movies", "imdb-films"} {
		c, err := ceres.DemoCorpus(kind, 1, 60)
		if err != nil {
			log.Fatal(err)
		}
		model, err := ceres.NewPipeline(c.KB).Train(ctx, c.Pages)
		if err != nil {
			log.Fatal(err)
		}
		version, err := store.Publish(kind, model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("published %-12s v%d (%d/%d clusters trained, %d train pages)\n",
			kind, version, model.TrainedClusters(), model.TemplateClusters(), model.TrainPages())
	}

	// Serving side: boot the fleet from the store and serve requests.
	reg, err := ceres.OpenRegistry(ctx, store)
	if err != nil {
		log.Fatal(err)
	}
	svc := ceres.NewService(reg, ceres.WithMaxInflight(16))

	c, err := ceres.DemoCorpus("movies", 1, 60)
	if err != nil {
		log.Fatal(err)
	}
	for _, threshold := range []float64{0.5, 0.9} {
		th := threshold
		resp, err := svc.Extract(ctx, ceres.ExtractRequest{
			Site:    "movies",
			Pages:   c.Pages,
			Options: ceres.RequestOptions{Threshold: &th},
		})
		if err != nil {
			log.Fatal(err)
		}
		p, r, f1 := c.Score(resp.Triples)
		fmt.Printf("threshold %.1f: v%d served %d pages → %d triples across %d cluster(s) in %s (P=%.3f R=%.3f F1=%.3f)\n",
			th, resp.Version, resp.Stats.Pages, resp.Stats.Triples,
			resp.Stats.RoutedClusters, resp.Stats.Latency.Round(0), p, r, f1)
	}

	// Hot swap: retrain on a bigger crawl of the same site and publish.
	// The next request is served by v2; in-flight requests would have
	// finished on v1.
	bigger, err := ceres.DemoCorpus("movies", 1, 80)
	if err != nil {
		log.Fatal(err)
	}
	model, err := ceres.NewPipeline(bigger.KB).Train(ctx, bigger.Pages)
	if err != nil {
		log.Fatal(err)
	}
	version, err := store.Publish("movies", model)
	if err != nil {
		log.Fatal(err)
	}
	reg.Publish("movies", version, model)
	resp, err := svc.Extract(ctx, ceres.ExtractRequest{Site: "movies", Pages: c.Pages})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after hot swap: requests are served by v%d (%d triples)\n", resp.Version, resp.Stats.Triples)

	fmt.Println("\nserving fleet:")
	for _, e := range reg.Snapshot() {
		fmt.Printf("  %-12s v%d  threshold=%.2f  clusters=%d\n",
			e.Site, e.Version, e.Model.Threshold(), e.Model.TemplateClusters())
	}
}
