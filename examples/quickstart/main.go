// Command quickstart runs CERES end-to-end on a tiny hand-written website:
// six film detail pages sharing one template, and a seed knowledge base
// that knows four of the six films. CERES aligns the KB with the pages,
// trains an extractor, and then extracts facts from every page — including
// the two films the KB has never heard of.
package main

import (
	"fmt"
	"log"

	"ceres"
)

// page renders one detail page of the demo site's fixed template.
func page(title, director, year string, genres []string) string {
	g := ""
	for _, x := range genres {
		g += "<li><a href='#'>" + x + "</a></li>"
	}
	return `<html><head><title>` + title + `</title></head><body>
<header><a href="/">Tiny Movie DB</a><nav><ul><li>Home</li><li>Movies</li></ul></nav></header>
<div id="content">
  <h1 class="title">` + title + `</h1>
  <table class="facts">
    <tr><th>Director</th><td><a href="#">` + director + `</a></td></tr>
    <tr><th>Year</th><td>` + year + `</td></tr>
  </table>
  <div class="genres"><h3>Genres</h3><ul>` + g + `</ul></div>
</div>
<footer>© Tiny Movie DB</footer>
</body></html>`
}

func main() {
	pages := []ceres.PageSource{
		{ID: "m1", HTML: page("Do the Right Thing", "Spike Lee", "1989", []string{"Comedy", "Drama"})},
		{ID: "m2", HTML: page("Crooklyn", "Spike Lee", "1994", []string{"Comedy", "Drama"})},
		{ID: "m3", HTML: page("The Silent Harbor", "Ada Dahl", "2001", []string{"Mystery"})},
		{ID: "m4", HTML: page("Crimson Orchard", "Tessa Novak", "2010", []string{"Horror", "Thriller"})},
		{ID: "m5", HTML: page("Counting Tides", "Emil Weber", "2015", []string{"Documentary"})},
		{ID: "m6", HTML: page("Paper Lantern", "Mai Kimura", "2017", []string{"Drama", "Romance"})},
	}

	// The seed KB: an ontology of three predicates and facts about four of
	// the six films. CERES never needs labels — just this overlap.
	k := ceres.NewKB(ceres.NewOntology(
		ceres.Predicate{Name: "directedBy", Domain: "film", Range: "person"},
		ceres.Predicate{Name: "releaseYear", Domain: "film"},
		ceres.Predicate{Name: "hasGenre", Domain: "film", MultiValued: true},
	))
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	type seed struct {
		id, title, director, year string
		genres                    []string
	}
	for i, s := range []seed{
		{"f1", "Do the Right Thing", "Spike Lee", "1989", []string{"Comedy", "Drama"}},
		{"f2", "Crooklyn", "Spike Lee", "1994", []string{"Comedy", "Drama"}},
		{"f3", "The Silent Harbor", "Ada Dahl", "2001", []string{"Mystery"}},
		{"f4", "Crimson Orchard", "Tessa Novak", "2010", []string{"Horror", "Thriller"}},
	} {
		pid := fmt.Sprintf("p%d", i+1)
		must(k.AddEntity(ceres.Entity{ID: s.id, Type: "film", Name: s.title}))
		must(k.AddEntity(ceres.Entity{ID: pid, Type: "person", Name: s.director}))
		must(k.AddTriple(ceres.KBTriple{Subject: s.id, Predicate: "directedBy", Object: ceres.EntityObject(pid)}))
		must(k.AddTriple(ceres.KBTriple{Subject: s.id, Predicate: "releaseYear", Object: ceres.LiteralObject(s.year)}))
		for _, g := range s.genres {
			must(k.AddTriple(ceres.KBTriple{Subject: s.id, Predicate: "hasGenre", Object: ceres.LiteralObject(g)}))
		}
	}

	p := ceres.NewPipeline(k,
		ceres.WithThreshold(0.5),
		ceres.WithMinAnnotations(2), // tiny site: relax the informativeness filter
	)
	res, err := p.ExtractPages(pages)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("pages: %d   annotated: %d   annotations: %d   template clusters: %d\n\n",
		res.Pages, res.AnnotatedPages, res.Annotations, res.TemplateClusters)
	fmt.Println("extracted triples (note m5 and m6 are NOT in the seed KB):")
	for _, t := range res.Triples {
		fmt.Printf("  [%.2f] (%s, %s, %s)  page=%s\n", t.Confidence, t.Subject, t.Predicate, t.Object, t.Page)
	}
}
