// Command quickstart runs CERES end-to-end on a tiny hand-written website:
// six film detail pages sharing one template, and a seed knowledge base
// that knows four of the six films. CERES aligns the KB with the pages,
// trains an extractor once, and then serves pages through the trained
// SiteModel — including two pages that were not part of training at all.
package main

import (
	"context"
	"fmt"
	"log"

	"ceres"
)

// page renders one detail page of the demo site's fixed template.
func page(title, director, year string, genres []string) string {
	g := ""
	for _, x := range genres {
		g += "<li><a href='#'>" + x + "</a></li>"
	}
	return `<html><head><title>` + title + `</title></head><body>
<header><a href="/">Tiny Movie DB</a><nav><ul><li>Home</li><li>Movies</li></ul></nav></header>
<div id="content">
  <h1 class="title">` + title + `</h1>
  <table class="facts">
    <tr><th>Director</th><td><a href="#">` + director + `</a></td></tr>
    <tr><th>Year</th><td>` + year + `</td></tr>
  </table>
  <div class="genres"><h3>Genres</h3><ul>` + g + `</ul></div>
</div>
<footer>© Tiny Movie DB</footer>
</body></html>`
}

func main() {
	ctx := context.Background()
	trainPages := []ceres.PageSource{
		{ID: "m1", HTML: page("Do the Right Thing", "Spike Lee", "1989", []string{"Comedy", "Drama"})},
		{ID: "m2", HTML: page("Crooklyn", "Spike Lee", "1994", []string{"Comedy", "Drama"})},
		{ID: "m3", HTML: page("The Silent Harbor", "Ada Dahl", "2001", []string{"Mystery"})},
		{ID: "m4", HTML: page("Crimson Orchard", "Tessa Novak", "2010", []string{"Horror", "Thriller"})},
		{ID: "m5", HTML: page("Counting Tides", "Emil Weber", "2015", []string{"Documentary"})},
		{ID: "m6", HTML: page("Paper Lantern", "Mai Kimura", "2017", []string{"Drama", "Romance"})},
	}

	// The seed KB: an ontology of three predicates and facts about four of
	// the six films. CERES never needs labels — just this overlap.
	k := ceres.NewKB(ceres.NewOntology(
		ceres.Predicate{Name: "directedBy", Domain: "film", Range: "person"},
		ceres.Predicate{Name: "releaseYear", Domain: "film"},
		ceres.Predicate{Name: "hasGenre", Domain: "film", MultiValued: true},
	))
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	type seed struct {
		id, title, director, year string
		genres                    []string
	}
	for i, s := range []seed{
		{"f1", "Do the Right Thing", "Spike Lee", "1989", []string{"Comedy", "Drama"}},
		{"f2", "Crooklyn", "Spike Lee", "1994", []string{"Comedy", "Drama"}},
		{"f3", "The Silent Harbor", "Ada Dahl", "2001", []string{"Mystery"}},
		{"f4", "Crimson Orchard", "Tessa Novak", "2010", []string{"Horror", "Thriller"}},
	} {
		pid := fmt.Sprintf("p%d", i+1)
		must(k.AddEntity(ceres.Entity{ID: s.id, Type: "film", Name: s.title}))
		must(k.AddEntity(ceres.Entity{ID: pid, Type: "person", Name: s.director}))
		must(k.AddTriple(ceres.KBTriple{Subject: s.id, Predicate: "directedBy", Object: ceres.EntityObject(pid)}))
		must(k.AddTriple(ceres.KBTriple{Subject: s.id, Predicate: "releaseYear", Object: ceres.LiteralObject(s.year)}))
		for _, g := range s.genres {
			must(k.AddTriple(ceres.KBTriple{Subject: s.id, Predicate: "hasGenre", Object: ceres.LiteralObject(g)}))
		}
	}

	// Phase 1: train once. The SiteModel is the whole serving artifact.
	p := ceres.NewPipeline(k,
		ceres.WithThreshold(0.5),
		ceres.WithMinAnnotations(2), // tiny site: relax the informativeness filter
	)
	model, err := p.Train(ctx, trainPages)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d pages (%d template clusters)\n\n",
		model.TrainPages(), model.TemplateClusters())

	// Phase 2: serve. First the training pages themselves...
	res, err := model.Extract(ctx, trainPages)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("extracted from the training pages (m5, m6 are NOT in the seed KB):")
	for _, t := range res.Triples {
		fmt.Printf("  [%.2f] (%s, %s, %s)  page=%s\n", t.Confidence, t.Subject, t.Predicate, t.Object, t.Page)
	}

	// ...then two brand-new pages the model has never seen. No KB lookup,
	// no retraining — the template generalizes.
	unseen := []ceres.PageSource{
		{ID: "m7", HTML: page("Glass Meridian", "Ada Dahl", "2021", []string{"Sci-Fi"})},
		{ID: "m8", HTML: page("The Last Ferry", "Emil Weber", "2023", []string{"Drama"})},
	}
	res, err = model.Extract(ctx, unseen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nextracted from pages unseen at training time:")
	for _, t := range res.Triples {
		fmt.Printf("  [%.2f] (%s, %s, %s)  page=%s\n", t.Confidence, t.Subject, t.Predicate, t.Object, t.Page)
	}
}
