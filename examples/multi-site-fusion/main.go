// Command multi-site-fusion harvests the same world from three differently
// templated sites with a Harvester — each site trains and serves
// concurrently — then fuses the extractions: facts corroborated by
// several sites gain belief, single-site noise sinks — the knowledge-
// fusion post-processing the paper recommends for multi-site harvests
// (§5.5.1).
package main

import (
	"context"
	"fmt"
	"log"
	"maps"
	"slices"

	"ceres"
)

func main() {
	ctx := context.Background()
	kinds := []string{"movies", "imdb-films", "crawl-czech"}

	// Same world seed: the three sites describe overlapping films. Each
	// site aligns against its own seed KB, so its SiteInput carries a
	// site-specific pipeline.
	var sites []ceres.SiteInput
	var kb *ceres.KB
	for _, kind := range kinds {
		c, err := ceres.DemoCorpus(kind, 1, 80)
		if err != nil {
			log.Fatal(err)
		}
		if kb == nil {
			kb = c.KB
		}
		sites = append(sites, ceres.SiteInput{
			Site:     kind,
			Pages:    c.Pages,
			Pipeline: ceres.NewPipeline(c.KB, ceres.WithThreshold(0.6)),
		})
	}

	// One Harvester trains and serves all sites concurrently and
	// accumulates their results for fusion.
	h := ceres.NewHarvester(
		ceres.NewPipeline(kb, ceres.WithThreshold(0.6)),
		ceres.WithSiteConcurrency(3),
	)
	results, err := h.Harvest(ctx, sites)
	if err != nil {
		log.Fatal(err)
	}
	siteErrs := h.Errors()
	for _, site := range slices.Sorted(maps.Keys(siteErrs)) {
		fmt.Printf("site %-12s failed: %v\n", site, siteErrs[site])
	}
	for i, kind := range kinds {
		if res, ok := results[kind]; ok {
			fmt.Printf("site %d (%-12s): %4d triples from %d pages\n", i+1, kind, len(res.Triples), res.Pages)
		}
	}

	fused := h.Fuse(ceres.FusionOptions{
		Functional: map[string]bool{
			"film.hasReleaseYear.year": true,
			"film.hasReleaseDate.date": true,
		},
	})
	multi := 0
	for _, f := range fused {
		if len(f.Sources) > 1 {
			multi++
		}
	}
	fmt.Printf("\nfused facts: %d total, %d corroborated by 2+ sites\n\n", len(fused), multi)
	fmt.Println("highest-belief corroborated facts:")
	shown := 0
	for _, f := range fused {
		if len(f.Sources) < 2 {
			continue
		}
		fmt.Printf("  [%.3f] (%s, %s, %s) from %v\n", f.Belief, f.Subject, f.Predicate, f.Object, f.Sources)
		if shown++; shown == 8 {
			break
		}
	}
}
