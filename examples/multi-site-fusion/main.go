// Command multi-site-fusion harvests the same world from three differently
// templated sites, then fuses the extractions: facts corroborated by
// several sites gain belief, single-site noise sinks — the knowledge-
// fusion post-processing the paper recommends for multi-site harvests
// (§5.5.1).
package main

import (
	"fmt"
	"log"

	"ceres"
)

func main() {
	kinds := []string{"movies", "imdb-films", "crawl-czech"}
	results := map[string]*ceres.Result{}
	var kb *ceres.KB
	for i, kind := range kinds {
		// Same world seed: the three sites describe overlapping films.
		c, err := ceres.DemoCorpus(kind, 1, 80)
		if err != nil {
			log.Fatal(err)
		}
		if kb == nil {
			kb = c.KB
		}
		res, err := ceres.NewPipeline(c.KB, ceres.WithThreshold(0.6)).ExtractPages(c.Pages)
		if err != nil {
			log.Fatal(err)
		}
		results[kind] = res
		fmt.Printf("site %d (%-12s): %4d triples from %d pages\n", i+1, kind, len(res.Triples), res.Pages)
	}

	fused := ceres.Fuse(results, ceres.FusionOptions{
		Functional: map[string]bool{
			"film.hasReleaseYear.year": true,
			"film.hasReleaseDate.date": true,
		},
	})
	multi := 0
	for _, f := range fused {
		if len(f.Sources) > 1 {
			multi++
		}
	}
	fmt.Printf("\nfused facts: %d total, %d corroborated by 2+ sites\n\n", len(fused), multi)
	fmt.Println("highest-belief corroborated facts:")
	shown := 0
	for _, f := range fused {
		if len(f.Sources) < 2 {
			continue
		}
		fmt.Printf("  [%.3f] (%s, %s, %s) from %v\n", f.Belief, f.Subject, f.Predicate, f.Object, f.Sources)
		if shown++; shown == 8 {
			break
		}
	}
}
