// Command kb-bootstrap demonstrates the knowledge-base growth loop the
// paper's footnote 2 sketches: extract from one site with a small seed KB,
// fold the confident extractions back into the KB, and use the grown KB to
// annotate a second site the original seed could barely touch. It also
// exercises KB persistence (Write/ReadKB round trip).
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"ceres"
)

func main() {
	ctx := context.Background()
	// Two sites over the same world: site A's films half-overlap the seed
	// KB; site B is rendered from the same world (different template) so
	// facts harvested from A transfer to B.
	siteA, err := ceres.DemoCorpus("movies-longtail", 5, 100)
	if err != nil {
		log.Fatal(err)
	}
	siteB, err := ceres.DemoCorpus("imdb-films", 5, 80)
	if err != nil {
		log.Fatal(err)
	}

	run := func(name string, k *ceres.KB, c *ceres.Corpus) *ceres.Result {
		model, err := ceres.NewPipeline(k, ceres.WithThreshold(0.8)).Train(ctx, c.Pages)
		if err != nil {
			log.Fatal(err)
		}
		res, err := model.Extract(ctx, c.Pages)
		if err != nil {
			log.Fatal(err)
		}
		p, r, _ := c.Score(res.Triples)
		fmt.Printf("%-28s annotated %3d/%3d pages, %4d triples@0.8, P=%.3f R=%.3f\n",
			name, res.AnnotatedPages, len(c.Pages), len(res.Triples), p, r)
		return res
	}

	fmt.Println("round 1: small seed KB")
	resA := run("site A (movies-longtail):", siteA.KB, siteA)
	run("site B (imdb-films):", siteA.KB, siteB)

	// Fold site A's confident extractions back into the KB. Extracted
	// subjects/objects are strings; mint entity IDs for unseen subjects.
	k := siteA.KB
	ids := map[string]string{}
	for _, id := range k.EntityIDs() {
		e, _ := k.Entity(id)
		ids[strings.ToLower(e.Name)] = id
	}
	minted := 0
	added := 0
	for _, t := range resA.Triples {
		subj, ok := ids[strings.ToLower(t.Subject)]
		if !ok {
			subj = fmt.Sprintf("new%04d", minted)
			minted++
			if err := k.AddEntity(ceres.Entity{ID: subj, Type: "film", Name: t.Subject}); err != nil {
				continue
			}
			ids[strings.ToLower(t.Subject)] = subj
		}
		var obj ceres.Object
		if oid, ok := ids[strings.ToLower(t.Object)]; ok {
			obj = ceres.EntityObject(oid)
		} else {
			obj = ceres.LiteralObject(t.Object)
		}
		if err := k.AddTriple(ceres.KBTriple{Subject: subj, Predicate: t.Predicate, Object: obj}); err == nil {
			added++
		}
	}
	fmt.Printf("\nfolded %d extracted triples back into the KB (%d new entities minted)\n", added, minted)

	// Persist and reload the grown KB, proving the TSV round trip.
	var sb strings.Builder
	if err := k.Write(&sb); err != nil {
		log.Fatal(err)
	}
	grown, err := ceres.ReadKB(strings.NewReader(sb.String()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grown KB persisted and reloaded: %d entities, %d triples\n\n",
		grown.NumEntities(), grown.NumTriples())

	fmt.Println("round 2: grown KB")
	run("site B (imdb-films):", grown, siteB)
}
