package ceres

import (
	"context"
	"strings"
	"testing"
)

func TestPipelineOnDemoCorpus(t *testing.T) {
	c, err := DemoCorpus("movies", 7, 50)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(c.KB)
	res, err := p.ExtractPages(context.Background(), c.Pages)
	if err != nil {
		t.Fatal(err)
	}
	if res.AnnotatedPages < 40 {
		t.Errorf("annotated %d/50 pages", res.AnnotatedPages)
	}
	if len(res.Triples) == 0 {
		t.Fatal("no triples")
	}
	prec, rec, f1 := c.Score(res.Triples)
	t.Logf("demo movies: P=%.3f R=%.3f F1=%.3f (%d triples)", prec, rec, f1, len(res.Triples))
	if prec < 0.85 || rec < 0.55 {
		t.Errorf("quality too low: P=%.3f R=%.3f", prec, rec)
	}
	// Triples sorted by confidence descending.
	for i := 1; i < len(res.Triples); i++ {
		if res.Triples[i].Confidence > res.Triples[i-1].Confidence {
			t.Fatalf("triples not sorted at %d", i)
		}
	}
	// Subjects are topic names.
	wrong := 0
	for _, tr := range res.Triples {
		if want := c.TopicOf[tr.Page]; want != "" && tr.Subject != want {
			wrong++
		}
	}
	if wrong > len(res.Triples)/20 {
		t.Errorf("%d/%d wrong subjects", wrong, len(res.Triples))
	}
}

func TestPipelineThresholdOption(t *testing.T) {
	c, err := DemoCorpus("movies", 7, 40)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := NewPipeline(c.KB, WithThreshold(0.5)).ExtractPages(context.Background(), c.Pages)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := NewPipeline(c.KB, WithThreshold(0.9)).ExtractPages(context.Background(), c.Pages)
	if err != nil {
		t.Fatal(err)
	}
	if len(tight.Triples) >= len(loose.Triples) {
		t.Errorf("higher threshold should yield fewer triples: %d vs %d",
			len(tight.Triples), len(loose.Triples))
	}
	pl, _, _ := c.Score(loose.Triples)
	pt, _, _ := c.Score(tight.Triples)
	if pt+1e-9 < pl {
		t.Errorf("higher threshold should not lower precision: %.3f vs %.3f", pt, pl)
	}
}

func TestPipelineModeOption(t *testing.T) {
	c, err := DemoCorpus("imdb-people", 9, 40)
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewPipeline(c.KB, WithMode(ModeFull)).ExtractPages(context.Background(), c.Pages)
	if err != nil {
		t.Fatal(err)
	}
	topic, err := NewPipeline(c.KB, WithMode(ModeTopicOnly)).ExtractPages(context.Background(), c.Pages)
	if err != nil {
		t.Fatal(err)
	}
	pf, _, _ := c.Score(full.Triples)
	pt, _, _ := c.Score(topic.Triples)
	if pf < pt-1e-9 {
		t.Errorf("ModeFull precision %.3f below ModeTopicOnly %.3f on the ambiguous corpus", pf, pt)
	}
}

func TestPipelineNewEntityDiscovery(t *testing.T) {
	c, err := DemoCorpus("movies-longtail", 11, 60)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewPipeline(c.KB).ExtractPages(context.Background(), c.Pages)
	if err != nil {
		t.Fatal(err)
	}
	newEnt := 0
	for _, tr := range res.Triples {
		if _, ok := c.KB.Entity(tr.Page); !ok { // demo page IDs are film IDs
			newEnt++
		}
	}
	if newEnt == 0 {
		t.Errorf("no triples about entities outside the seed KB")
	}
}

func TestPipelineErrors(t *testing.T) {
	c, _ := DemoCorpus("movies", 7, 10)
	p := NewPipeline(c.KB)
	if _, err := p.ExtractPages(context.Background(), nil); err == nil {
		t.Errorf("empty input should fail")
	}
	if _, err := p.ExtractPages(context.Background(), []PageSource{{ID: "", HTML: "<html></html>"}}); err == nil {
		t.Errorf("empty page ID should fail")
	}
	if _, err := DemoCorpus("nope", 1, 10); err == nil {
		t.Errorf("unknown corpus should fail")
	}
}

func TestDemoCorpusKinds(t *testing.T) {
	for _, kind := range []string{"movies", "movies-longtail", "imdb-films", "imdb-people", "crawl-czech"} {
		c, err := DemoCorpus(kind, 3, 20)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(c.Pages) == 0 || c.KB.NumTriples() == 0 || len(c.Gold) == 0 {
			t.Errorf("%s: empty corpus (%d pages, %d triples, %d gold)",
				kind, len(c.Pages), c.KB.NumTriples(), len(c.Gold))
		}
	}
	// The Czech corpus renders Czech labels.
	c, _ := DemoCorpus("crawl-czech", 3, 12)
	found := false
	for _, p := range c.Pages {
		if strings.Contains(p.HTML, "Režie") {
			found = true
		}
	}
	if !found {
		t.Errorf("crawl-czech should carry Czech labels")
	}
}

func TestKBFacade(t *testing.T) {
	o := NewOntology(Predicate{Name: "p", Domain: "t"})
	k := NewKB(o)
	if err := k.AddEntity(Entity{ID: "e1", Type: "t", Name: "Thing One"}); err != nil {
		t.Fatal(err)
	}
	if err := k.AddTriple(KBTriple{Subject: "e1", Predicate: "p", Object: LiteralObject("v")}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := k.Write(&sb); err != nil {
		t.Fatal(err)
	}
	k2, err := ReadKB(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if k2.NumTriples() != 1 {
		t.Errorf("roundtrip lost triples")
	}
	if EntityObject("x").Key() != "e:x" {
		t.Errorf("EntityObject key")
	}
}
