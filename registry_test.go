package ceres

import (
	"context"
	"reflect"
	"testing"
)

func TestRegistrySemantics(t *testing.T) {
	f := getTrainServeFixture(t)
	r := NewRegistry()
	if _, ok := r.Lookup("a"); ok || r.Len() != 0 {
		t.Fatal("empty registry served a lookup")
	}

	if v := r.PublishNext("a", f.model); v != 1 {
		t.Fatalf("first PublishNext = %d, want 1", v)
	}
	if v := r.PublishNext("a", f.model); v != 2 {
		t.Fatalf("second PublishNext = %d, want 2", v)
	}
	r.Publish("b", 7, f.model)
	e, ok := r.Lookup("a")
	if !ok || e.Version != 2 || e.Model != f.model {
		t.Fatalf("Lookup(a) = %+v, %v", e, ok)
	}

	// Explicit Publish of an older version is a rollback.
	r.Publish("a", 1, f.model)
	if e, _ := r.Lookup("a"); e.Version != 1 {
		t.Fatalf("rollback left version %d", e.Version)
	}

	snap := r.Snapshot()
	sites := make([]string, len(snap))
	for i, e := range snap {
		sites[i] = e.Site
	}
	if !reflect.DeepEqual(sites, []string{"a", "b"}) {
		t.Fatalf("Snapshot sites = %v", sites)
	}

	if !r.Drop("a") || r.Drop("a") {
		t.Error("Drop should report the first removal only")
	}
	if _, ok := r.Lookup("a"); ok || r.Len() != 1 {
		t.Error("dropped site still registered")
	}
	// A re-published dropped site starts a fresh version sequence; durable
	// numbering is the ModelStore's job.
	if v := r.PublishNext("a", f.model); v != 1 {
		t.Errorf("PublishNext after Drop = %d, want 1", v)
	}
}

func TestOpenRegistryLoadsLatest(t *testing.T) {
	f := getTrainServeFixture(t)
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := store.Publish("a", f.model); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := store.Publish("b", f.model); err != nil {
		t.Fatal(err)
	}
	r, err := OpenRegistry(context.Background(), store)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("OpenRegistry loaded %d sites, want 2", r.Len())
	}
	if e, ok := r.Lookup("a"); !ok || e.Version != 2 {
		t.Fatalf("site a = %+v, %v; want version 2", e, ok)
	}
	if e, ok := r.Lookup("b"); !ok || e.Version != 1 {
		t.Fatalf("site b = %+v, %v; want version 1", e, ok)
	}
}
