package ceres

import (
	"context"

	"ceres/internal/obs"
	"ceres/internal/obs/trace"
)

// Metrics is the process-wide metrics registry of the serving stack
// (DESIGN.md §12): a stdlib-only Prometheus-text-format registry that the
// Service, Registry, ModelWatcher and batch Runner instrument themselves
// against. One Metrics is typically shared by every component of a
// process and exposed on GET /metrics via WritePrometheus.
type Metrics = obs.Registry

// NewMetrics builds an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// Tracer is the serving stack's span tracer (DESIGN.md §13): 1-in-N
// request sampling, context-propagated span trees, a ring of retained
// completed traces, JSONL export. A nil *Tracer traces nothing, and a
// sampled-out request allocates nothing.
type Tracer = trace.Tracer

// TracerOptions configures NewTracer.
type TracerOptions = trace.Options

// Span is one timed node of a trace tree. A nil *Span is the universal
// "not traced" value; every method on it is a free no-op.
type Span = trace.Span

// NewTracer builds a tracer. SampleEvery 0 disables sampling (the
// tracer is valid but StartRoot always returns nil); SampleEvery 1
// traces every request.
func NewTracer(o TracerOptions) *Tracer { return trace.New(o) }

// ContextWithSpan returns ctx carrying s as the active span, unchanged
// when s is nil. Training runs observe it: core.TrainSite hangs
// parse/cluster/annotate/fit child spans off the context's active span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return trace.ContextWith(ctx, s)
}

// SpanFromContext returns the active span in ctx, or nil.
func SpanFromContext(ctx context.Context) *Span { return trace.FromContext(ctx) }

// ConfidenceBuckets are the bounds of the per-site extraction-confidence
// histogram: ten uniform probability bins. Confidence collapse after a
// template change shows as mass sliding into the low buckets.
var ConfidenceBuckets = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}

// serviceMetrics is the Service's instrument panel. All fields are
// nil-safe (obs metrics no-op on nil receivers, and the whole struct may
// be nil on an uninstrumented service), so the serve path never branches
// on "is observability on" beyond one pointer test.
type serviceMetrics struct {
	requests *obs.CounterVec   // ceres_requests_total{site}
	errors   *obs.CounterVec   // ceres_request_errors_total{site}
	shed     *obs.Counter      // ceres_requests_shed_total
	pages    *obs.CounterVec   // ceres_pages_total{site}
	triples  *obs.CounterVec   // ceres_triples_total{site}
	latency  *obs.HistogramVec // ceres_request_latency_seconds{site}
	inflight *obs.Gauge        // ceres_inflight_requests

	// Extraction-quality drift signals (DESIGN.md §13): the families the
	// continuous-harvest loop will watch to decide when a site model has
	// gone stale.
	confidence    *obs.HistogramVec // ceres_extraction_confidence{site}
	emptyPages    *obs.CounterVec   // ceres_empty_pages_total{site}
	routingMisses *obs.CounterVec   // ceres_routing_miss_total{site}
}

// unknownSiteLabel is the site label recorded for requests that failed
// before resolving to a registered site. Using one fixed value keeps a
// scanner probing random site names from minting unbounded label
// cardinality.
const unknownSiteLabel = "_unknown"

func newServiceMetrics(m *Metrics) *serviceMetrics {
	if m == nil {
		return nil
	}
	return &serviceMetrics{
		requests: m.CounterVec("ceres_requests_total",
			"Extraction requests admitted, by site.", "site"),
		errors: m.CounterVec("ceres_request_errors_total",
			"Extraction requests that failed (site _unknown: before resolving), by site.", "site"),
		shed: m.Counter("ceres_requests_shed_total",
			"Requests rejected by bounded admission (ErrOverloaded)."),
		pages: m.CounterVec("ceres_pages_total",
			"Pages served, by site.", "site"),
		triples: m.CounterVec("ceres_triples_total",
			"Triples emitted at or above the request threshold, by site.", "site"),
		latency: m.HistogramVec("ceres_request_latency_seconds",
			"Request serving latency in seconds, by site.", "site", obs.DefBuckets),
		inflight: m.Gauge("ceres_inflight_requests",
			"Extraction requests currently being served."),
		confidence: m.HistogramVec("ceres_extraction_confidence",
			"Confidence of every extraction before thresholding, by site.", "site", ConfidenceBuckets),
		emptyPages: m.CounterVec("ceres_empty_pages_total",
			"Served pages that produced no extraction at all, by site.", "site"),
		routingMisses: m.CounterVec("ceres_routing_miss_total",
			"Served pages routed to no cluster or an untrained one, by site.", "site"),
	}
}

// confidenceFor returns the site's confidence histogram, nil when the
// service is uninstrumented; requests capture it once, not per triple.
func (sm *serviceMetrics) confidenceFor(site string) *obs.Histogram {
	if sm == nil {
		return nil
	}
	return sm.confidence.With(site)
}

// admitted records a request entering service; done undoes it.
func (sm *serviceMetrics) admitted() {
	if sm == nil {
		return
	}
	sm.inflight.Add(1)
}

func (sm *serviceMetrics) done() {
	if sm == nil {
		return
	}
	sm.inflight.Add(-1)
}

// requestShed records a bounded-admission rejection.
func (sm *serviceMetrics) requestShed() {
	if sm == nil {
		return
	}
	sm.shed.Inc()
}

// requestFailed records a failed request. site may be "" when the
// failure happened before the request resolved to a registered site.
func (sm *serviceMetrics) requestFailed(site string) {
	if sm == nil {
		return
	}
	if site == "" {
		site = unknownSiteLabel
	}
	sm.errors.With(site).Inc()
}

// requestServed records one successful request's serve-side outcome.
func (sm *serviceMetrics) requestServed(site string, stats ServeStats) {
	if sm == nil {
		return
	}
	sm.requests.With(site).Inc()
	sm.pages.With(site).Add(int64(stats.Pages))
	sm.triples.With(site).Add(int64(stats.Triples))
	sm.latency.With(site).Observe(stats.Latency.Seconds())
	sm.emptyPages.With(site).Add(int64(stats.EmptyPages))
	sm.routingMisses.With(site).Add(int64(stats.RoutingMisses))
}

// SiteDriftStats is the per-site extraction-quality snapshot served by
// Service.SiteStats and GET /v1/sites/{site}/stats: the drift signals
// (routing-miss rate, empty-extraction rate, confidence distribution)
// read back from the same metric families /metrics exposes, so the two
// views can never disagree.
type SiteDriftStats struct {
	Site         string `json:"site"`
	ModelVersion int    `json:"modelVersion"`

	// Requests/Pages/Triples are the site's cumulative serve counters.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	Pages    int64 `json:"pages"`
	Triples  int64 `json:"triples"`

	// EmptyPages and RoutingMisses are the raw drift counters; the rates
	// normalize them by Pages (0 when no pages were served yet).
	EmptyPages      int64   `json:"emptyPages"`
	RoutingMisses   int64   `json:"routingMisses"`
	EmptyPageRate   float64 `json:"emptyPageRate"`
	RoutingMissRate float64 `json:"routingMissRate"`

	// MeanConfidence averages every extraction's confidence before
	// thresholding; Confidence is the full distribution.
	MeanConfidence float64             `json:"meanConfidence"`
	Confidence     ConfidenceHistogram `json:"confidence"`
}

// ConfidenceHistogram is the snapshot form of the per-site confidence
// distribution: Counts[i] observations at confidence <= Bounds[i], with
// one trailing overflow entry.
type ConfidenceHistogram struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// SiteStats snapshots the drift signals of one registered site. It
// reports ok=false when the site is not registered or the service is
// uninstrumented (no WithMetrics): drift detection without metrics has
// nothing to read.
func (s *Service) SiteStats(site string) (SiteDriftStats, bool) {
	if s.metrics == nil {
		return SiteDriftStats{}, false
	}
	e, ok := s.reg.Lookup(site)
	if !ok {
		return SiteDriftStats{}, false
	}
	m := s.metrics
	st := SiteDriftStats{
		Site:          site,
		ModelVersion:  e.Version,
		Requests:      m.requests.With(site).Value(),
		Errors:        m.errors.With(site).Value(),
		Pages:         m.pages.With(site).Value(),
		Triples:       m.triples.With(site).Value(),
		EmptyPages:    m.emptyPages.With(site).Value(),
		RoutingMisses: m.routingMisses.With(site).Value(),
	}
	if st.Pages > 0 {
		st.EmptyPageRate = float64(st.EmptyPages) / float64(st.Pages)
		st.RoutingMissRate = float64(st.RoutingMisses) / float64(st.Pages)
	}
	h := m.confidence.With(site)
	st.Confidence = ConfidenceHistogram{
		Bounds: h.Bounds(),
		Counts: h.BucketCounts(),
		Count:  h.Count(),
		Sum:    h.Sum(),
	}
	if st.Confidence.Count > 0 {
		st.MeanConfidence = st.Confidence.Sum / float64(st.Confidence.Count)
	}
	return st, true
}

// Instrument registers the registry's fleet-level metrics on m:
// cumulative hot-swap count (ceres_registry_swaps_total), registered
// site count (ceres_registry_sites) and the per-site serving model
// version (ceres_model_version{site}). Values are read live at
// exposition time, so Instrument is called once, not per publish.
func (r *Registry) Instrument(m *Metrics) {
	if m == nil {
		return
	}
	m.CounterFunc("ceres_registry_swaps_total",
		"Model publishes (hot swaps) applied to the registry since boot.",
		func() float64 { return float64(r.Swaps()) })
	m.GaugeFunc("ceres_registry_sites",
		"Sites currently registered for serving.",
		func() float64 { return float64(r.Len()) })
	m.GaugeVecFunc("ceres_model_version",
		"Model version currently serving each site.", "site",
		func(emit func(string, float64)) {
			for _, e := range r.Snapshot() {
				emit(e.Site, float64(e.Version))
			}
		})
}
