package ceres

import (
	"ceres/internal/obs"
)

// Metrics is the process-wide metrics registry of the serving stack
// (DESIGN.md §12): a stdlib-only Prometheus-text-format registry that the
// Service, Registry, ModelWatcher and batch Runner instrument themselves
// against. One Metrics is typically shared by every component of a
// process and exposed on GET /metrics via WritePrometheus.
type Metrics = obs.Registry

// NewMetrics builds an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// serviceMetrics is the Service's instrument panel. All fields are
// nil-safe (obs metrics no-op on nil receivers, and the whole struct may
// be nil on an uninstrumented service), so the serve path never branches
// on "is observability on" beyond one pointer test.
type serviceMetrics struct {
	requests *obs.CounterVec   // ceres_requests_total{site}
	errors   *obs.CounterVec   // ceres_request_errors_total{site}
	shed     *obs.Counter      // ceres_requests_shed_total
	pages    *obs.CounterVec   // ceres_pages_total{site}
	triples  *obs.CounterVec   // ceres_triples_total{site}
	latency  *obs.HistogramVec // ceres_request_latency_seconds{site}
	inflight *obs.Gauge        // ceres_inflight_requests
}

// unknownSiteLabel is the site label recorded for requests that failed
// before resolving to a registered site. Using one fixed value keeps a
// scanner probing random site names from minting unbounded label
// cardinality.
const unknownSiteLabel = "_unknown"

func newServiceMetrics(m *Metrics) *serviceMetrics {
	if m == nil {
		return nil
	}
	return &serviceMetrics{
		requests: m.CounterVec("ceres_requests_total",
			"Extraction requests admitted, by site.", "site"),
		errors: m.CounterVec("ceres_request_errors_total",
			"Extraction requests that failed (site _unknown: before resolving), by site.", "site"),
		shed: m.Counter("ceres_requests_shed_total",
			"Requests rejected by bounded admission (ErrOverloaded)."),
		pages: m.CounterVec("ceres_pages_total",
			"Pages served, by site.", "site"),
		triples: m.CounterVec("ceres_triples_total",
			"Triples emitted at or above the request threshold, by site.", "site"),
		latency: m.HistogramVec("ceres_request_latency_seconds",
			"Request serving latency in seconds, by site.", "site", obs.DefBuckets),
		inflight: m.Gauge("ceres_inflight_requests",
			"Extraction requests currently being served."),
	}
}

// admitted records a request entering service; done undoes it.
func (sm *serviceMetrics) admitted() {
	if sm == nil {
		return
	}
	sm.inflight.Add(1)
}

func (sm *serviceMetrics) done() {
	if sm == nil {
		return
	}
	sm.inflight.Add(-1)
}

// requestShed records a bounded-admission rejection.
func (sm *serviceMetrics) requestShed() {
	if sm == nil {
		return
	}
	sm.shed.Inc()
}

// requestFailed records a failed request. site may be "" when the
// failure happened before the request resolved to a registered site.
func (sm *serviceMetrics) requestFailed(site string) {
	if sm == nil {
		return
	}
	if site == "" {
		site = unknownSiteLabel
	}
	sm.errors.With(site).Inc()
}

// requestServed records one successful request's serve-side outcome.
func (sm *serviceMetrics) requestServed(site string, stats ServeStats) {
	if sm == nil {
		return
	}
	sm.requests.With(site).Inc()
	sm.pages.With(site).Add(int64(stats.Pages))
	sm.triples.With(site).Add(int64(stats.Triples))
	sm.latency.With(site).Observe(stats.Latency.Seconds())
}

// Instrument registers the registry's fleet-level metrics on m:
// cumulative hot-swap count (ceres_registry_swaps_total), registered
// site count (ceres_registry_sites) and the per-site serving model
// version (ceres_model_version{site}). Values are read live at
// exposition time, so Instrument is called once, not per publish.
func (r *Registry) Instrument(m *Metrics) {
	if m == nil {
		return
	}
	m.CounterFunc("ceres_registry_swaps_total",
		"Model publishes (hot swaps) applied to the registry since boot.",
		func() float64 { return float64(r.Swaps()) })
	m.GaugeFunc("ceres_registry_sites",
		"Sites currently registered for serving.",
		func() float64 { return float64(r.Len()) })
	m.GaugeVecFunc("ceres_model_version",
		"Model version currently serving each site.", "site",
		func(emit func(string, float64)) {
			for _, e := range r.Snapshot() {
				emit(e.Site, float64(e.Version))
			}
		})
}
