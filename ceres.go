// Package ceres is a from-scratch Go implementation of CERES — distantly
// supervised relation extraction from semi-structured websites (Lockard,
// Dong, Einolghozati, Shiralkar; VLDB 2018, arXiv:1804.04635).
//
// Given the detail pages of a template-generated website and a seed
// knowledge base, a Pipeline automatically annotates the pages by aligning
// them with the KB (topic identification + relation annotation), trains a
// logistic-regression node classifier over DOM features, and extracts new
// (subject, predicate, object) triples — including triples about entities
// the seed KB has never heard of — each with a calibrated confidence.
//
// Quick start:
//
//	k := ceres.NewKB(ceres.NewOntology(
//	    ceres.Predicate{Name: "directedBy", Domain: "film", Range: "person"},
//	))
//	// ... add seed entities and triples ...
//	p := ceres.NewPipeline(k, ceres.WithThreshold(0.75))
//	result, err := p.ExtractPages(pages)
//
// See examples/ for runnable end-to-end programs, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for the reproduction of every table and
// figure in the paper.
package ceres

import (
	"fmt"
	"sort"

	"ceres/internal/core"
	"ceres/internal/kb"
)

// Re-exported knowledge-base types. The implementation lives in
// ceres/internal/kb; the aliases make the full method sets part of the
// public API.
type (
	// KB is an in-memory seed knowledge base with the name/alias and
	// object indexes CERES queries during annotation.
	KB = kb.KB
	// Ontology is the set of relation predicates extraction is restricted
	// to.
	Ontology = kb.Ontology
	// Predicate describes one relation of the ontology.
	Predicate = kb.Predicate
	// Entity is a node of the knowledge graph.
	Entity = kb.Entity
	// Object is a triple's object: an entity reference or a literal.
	Object = kb.Object
	// KBTriple is one (subject, predicate, object) seed fact.
	KBTriple = kb.Triple
)

// NewKB creates an empty knowledge base over the ontology.
func NewKB(o *Ontology) *KB { return kb.New(o) }

// NewOntology builds an ontology from predicate definitions.
func NewOntology(preds ...Predicate) *Ontology { return kb.NewOntology(preds...) }

// EntityObject makes an entity-valued triple object.
func EntityObject(id string) Object { return kb.EntityObject(id) }

// LiteralObject makes a literal-valued triple object.
func LiteralObject(v string) Object { return kb.LiteralObject(v) }

// ReadKB parses a KB from its TSV serialization (see KB.Write).
var ReadKB = kb.Read

// PageSource is one raw page of a site: an identifier plus its HTML.
type PageSource struct {
	ID   string
	HTML string
}

// Triple is one extracted fact.
type Triple struct {
	// Subject is the text of the page's topic-name node.
	Subject string
	// Predicate names the relation (from the seed KB's ontology).
	Predicate string
	// Object is the extracted value text.
	Object string
	// Confidence in (0,1]; thresholding trades precision for recall
	// (paper Figure 6).
	Confidence float64
	// Page identifies the source page; Path is the XPath of the extracted
	// node on it.
	Page string
	Path string
}

// Result is the outcome of extracting one site.
type Result struct {
	// Triples holds extractions at or above the pipeline threshold,
	// sorted by descending confidence then page.
	Triples []Triple
	// AnnotatedPages and Annotations report distant-supervision yield
	// (how many pages aligned with the seed KB, and how many labels that
	// produced).
	AnnotatedPages int
	Annotations    int
	// TemplateClusters is the number of template groups the site split
	// into.
	TemplateClusters int
	// Pages is the number of input pages.
	Pages int
}

// Mode selects the annotation strategy.
type Mode int

const (
	// ModeFull is the paper's CERES-Full: Algorithm 1 + Algorithm 2.
	ModeFull Mode = iota
	// ModeTopicOnly is the CERES-Topic baseline: topic identification but
	// no relation-annotation disambiguation (every object mention is
	// labelled with every applicable relation).
	ModeTopicOnly
)

// Option configures a Pipeline.
type Option func(*Pipeline)

// WithThreshold sets the extraction-confidence cutoff (default 0.5, the
// paper's setting; 0.75 trades recall for ~90% precision in the paper's
// long-tail experiment).
func WithThreshold(t float64) Option {
	return func(p *Pipeline) { p.threshold = t }
}

// WithMode selects the annotation strategy (default ModeFull).
func WithMode(m Mode) Option {
	return func(p *Pipeline) { p.cfg.Relation.AnnotateAllMentions = m == ModeTopicOnly }
}

// WithSeed fixes the random seed of negative sampling (default 1).
func WithSeed(seed int64) Option {
	return func(p *Pipeline) { p.cfg.Train.Seed = seed }
}

// WithNegativeRatio sets r, the negatives sampled per positive label
// (default 3, per §4.1).
func WithNegativeRatio(r int) Option {
	return func(p *Pipeline) { p.cfg.Train.NegativeRatio = r }
}

// WithoutTemplateClustering treats the whole site as one template instead
// of clustering pages first.
func WithoutTemplateClustering() Option {
	return func(p *Pipeline) { p.cfg.DisablePageClustering = true }
}

// WithMinAnnotations sets the informativeness filter: pages producing
// fewer relation annotations are discarded (default 3, per §3.1.2).
func WithMinAnnotations(n int) Option {
	return func(p *Pipeline) { p.cfg.Relation.MinAnnotations = n }
}

// WithWorkers bounds parsing/extraction parallelism.
func WithWorkers(n int) Option {
	return func(p *Pipeline) { p.cfg.Workers = n }
}

// Pipeline is a configured CERES extractor bound to a seed KB.
type Pipeline struct {
	kb        *KB
	cfg       core.Config
	threshold float64
}

// NewPipeline builds a pipeline over the seed KB.
func NewPipeline(k *KB, opts ...Option) *Pipeline {
	p := &Pipeline{
		kb:        k,
		cfg:       core.Config{Train: core.TrainOptions{Seed: 1}},
		threshold: 0.5,
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// ExtractPages runs annotation, training and extraction over the pages of
// one website (they should come from a single site: CERES learns one
// extractor per site template).
func (p *Pipeline) ExtractPages(pages []PageSource) (*Result, error) {
	if len(pages) == 0 {
		return nil, fmt.Errorf("ceres: no pages")
	}
	src := make([]core.PageSource, len(pages))
	for i, pg := range pages {
		if pg.ID == "" {
			return nil, fmt.Errorf("ceres: page %d has an empty ID", i)
		}
		src[i] = core.PageSource{ID: pg.ID, HTML: pg.HTML}
	}
	res, err := core.Run(src, p.kb, p.cfg)
	if err != nil {
		return nil, err
	}
	out := &Result{
		AnnotatedPages:   res.NumAnnotatedPages(),
		Annotations:      res.NumAnnotations(),
		TemplateClusters: len(res.Clusters),
		Pages:            len(pages),
	}
	for _, e := range res.Extractions {
		if e.Confidence < p.threshold {
			continue
		}
		out.Triples = append(out.Triples, Triple{
			Subject:    e.Subject,
			Predicate:  e.Predicate,
			Object:     e.Value,
			Confidence: e.Confidence,
			Page:       e.PageID,
			Path:       e.Path,
		})
	}
	sort.Slice(out.Triples, func(i, j int) bool {
		a, b := out.Triples[i], out.Triples[j]
		if a.Confidence != b.Confidence {
			return a.Confidence > b.Confidence
		}
		if a.Page != b.Page {
			return a.Page < b.Page
		}
		if a.Predicate != b.Predicate {
			return a.Predicate < b.Predicate
		}
		return a.Object < b.Object
	})
	return out, nil
}
