package ceres

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"slices"
	"strings"
	"sync/atomic"

	"ceres/internal/binmodel"
	"ceres/internal/core"
	"ceres/internal/kb"
)

// Re-exported knowledge-base types. The implementation lives in
// ceres/internal/kb; the aliases make the full method sets part of the
// public API.
type (
	// KB is an in-memory seed knowledge base with the name/alias and
	// object indexes CERES queries during annotation.
	KB = kb.KB
	// Ontology is the set of relation predicates extraction is restricted
	// to.
	Ontology = kb.Ontology
	// Predicate describes one relation of the ontology.
	Predicate = kb.Predicate
	// Entity is a node of the knowledge graph.
	Entity = kb.Entity
	// Object is a triple's object: an entity reference or a literal.
	Object = kb.Object
	// KBTriple is one (subject, predicate, object) seed fact.
	KBTriple = kb.Triple
)

// Sentinel errors of the train/serve lifecycle; test with errors.Is.
var (
	// ErrNoPages reports an empty page set passed to Train or Extract.
	ErrNoPages = core.ErrNoPages
	// ErrNotTrained reports extraction through a SiteModel that has no
	// trained cluster extractor (e.g. the zero value).
	ErrNotTrained = core.ErrNotTrained
	// ErrNoAnnotations reports that distant supervision aligned too few
	// pages with the seed KB to train any extractor.
	ErrNoAnnotations = core.ErrNoAnnotations
	// ErrInvalidPage reports a malformed page in the input set (e.g. an
	// empty ID) — a caller fault, like ErrNoPages.
	ErrInvalidPage = errors.New("ceres: invalid page")
)

// NewKB creates an empty knowledge base over the ontology.
func NewKB(o *Ontology) *KB { return kb.New(o) }

// NewOntology builds an ontology from predicate definitions.
func NewOntology(preds ...Predicate) *Ontology { return kb.NewOntology(preds...) }

// EntityObject makes an entity-valued triple object.
func EntityObject(id string) Object { return kb.EntityObject(id) }

// LiteralObject makes a literal-valued triple object.
func LiteralObject(v string) Object { return kb.LiteralObject(v) }

// ReadKB parses a KB from its TSV serialization (see KB.Write).
var ReadKB = kb.Read

// PageSource is one raw page of a site: an identifier plus its HTML.
type PageSource struct {
	ID   string
	HTML string
}

// Triple is one extracted fact.
type Triple struct {
	// Subject is the text of the page's topic-name node.
	Subject string
	// Predicate names the relation (from the seed KB's ontology).
	Predicate string
	// Object is the extracted value text.
	Object string
	// Confidence in (0,1]; thresholding trades precision for recall
	// (paper Figure 6).
	Confidence float64
	// Page identifies the source page; Path is the XPath of the extracted
	// node on it.
	Page string
	Path string
}

// Result is the outcome of extracting one site.
type Result struct {
	// Triples holds extractions at or above the pipeline threshold,
	// sorted by descending confidence then page.
	Triples []Triple
	// AnnotatedPages and Annotations report distant-supervision yield
	// (how many pages aligned with the seed KB, and how many labels that
	// produced). For SiteModel.Extract they describe the training run the
	// model came from, not the served pages.
	AnnotatedPages int
	Annotations    int
	// TemplateClusters is the number of template groups the site split
	// into.
	TemplateClusters int
	// Pages is the number of input pages.
	Pages int
}

// Mode selects the annotation strategy.
type Mode int

const (
	// ModeFull is the paper's CERES-Full: Algorithm 1 + Algorithm 2.
	ModeFull Mode = iota
	// ModeTopicOnly is the CERES-Topic baseline: topic identification but
	// no relation-annotation disambiguation (every object mention is
	// labelled with every applicable relation).
	ModeTopicOnly
)

// Option configures a Pipeline.
type Option func(*Pipeline)

// WithThreshold sets the extraction-confidence cutoff (default 0.5, the
// paper's setting; 0.75 trades recall for ~90% precision in the paper's
// long-tail experiment). Models trained by the pipeline inherit it.
func WithThreshold(t float64) Option {
	return func(p *Pipeline) { p.threshold = t }
}

// WithMode selects the annotation strategy (default ModeFull).
func WithMode(m Mode) Option {
	return func(p *Pipeline) { p.cfg.Relation.AnnotateAllMentions = m == ModeTopicOnly }
}

// WithSeed fixes the random seed of negative sampling (default 1).
func WithSeed(seed int64) Option {
	return func(p *Pipeline) { p.cfg.Train.Seed = seed }
}

// WithNegativeRatio sets r, the negatives sampled per positive label
// (default 3, per §4.1).
func WithNegativeRatio(r int) Option {
	return func(p *Pipeline) { p.cfg.Train.NegativeRatio = r }
}

// WithoutTemplateClustering treats the whole site as one template instead
// of clustering pages first.
func WithoutTemplateClustering() Option {
	return func(p *Pipeline) { p.cfg.DisablePageClustering = true }
}

// WithMinAnnotations sets the informativeness filter: pages producing
// fewer relation annotations are discarded (default 3, per §3.1.2).
func WithMinAnnotations(n int) Option {
	return func(p *Pipeline) { p.cfg.Relation.MinAnnotations = n }
}

// WithWorkers bounds parsing/extraction parallelism, at training and —
// through the trained SiteModel — at serving time.
func WithWorkers(n int) Option {
	return func(p *Pipeline) { p.cfg.Workers = n }
}

// Pipeline is a configured CERES trainer bound to a seed KB.
type Pipeline struct {
	kb        *KB
	cfg       core.Config
	threshold float64
}

// NewPipeline builds a pipeline over the seed KB.
func NewPipeline(k *KB, opts ...Option) *Pipeline {
	p := &Pipeline{
		kb:        k,
		cfg:       core.Config{Train: core.TrainOptions{Seed: 1}},
		threshold: 0.5,
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Train runs the training phase — parse, template-cluster, annotate
// against the seed KB, and fit one node classifier per template cluster —
// over the pages of one website (they should come from a single site:
// CERES learns one extractor per site template). The returned SiteModel
// extracts from any number of further pages without retraining.
//
// Train returns ErrNoPages for an empty page set, ErrNoAnnotations when
// the seed KB aligned with too few pages to train any cluster, and
// ctx.Err() when cancelled.
func (p *Pipeline) Train(ctx context.Context, pages []PageSource) (*SiteModel, error) {
	src, err := toSources(pages)
	if err != nil {
		return nil, err
	}
	sm, _, err := core.TrainSite(ctx, src, p.kb, p.cfg)
	if err != nil {
		return nil, err
	}
	if sm.TrainedClusters() == 0 {
		return nil, ErrNoAnnotations
	}
	return newSiteModel(sm, p.threshold), nil
}

// ExtractPages runs annotation, training and extraction over the pages of
// one website — Train plus Extract on the same pages, with each page
// served by the template cluster it was assigned to during training. It is
// cancellable through ctx like the rest of the lifecycle.
//
// Deprecated: use Train once, then SiteModel.Extract (or ExtractStream)
// for every batch of pages. ExtractPages retrains from scratch on every
// call and cannot serve pages outside the training set.
func (p *Pipeline) ExtractPages(ctx context.Context, pages []PageSource) (*Result, error) {
	src, err := toSources(pages)
	if err != nil {
		return nil, err
	}
	res, err := core.Run(ctx, src, p.kb, p.cfg)
	if err != nil {
		return nil, err
	}
	out := &Result{
		AnnotatedPages:   res.NumAnnotatedPages(),
		Annotations:      res.NumAnnotations(),
		TemplateClusters: len(res.Clusters),
		Pages:            len(pages),
	}
	out.Triples = tripleize(res.Extractions, p.threshold)
	return out, nil
}

// SiteModel is a trained, self-contained extractor for one website: the
// per-template-cluster classifiers, featurizers and cluster signatures
// learned by Pipeline.Train. It serves pages that were never part of
// training by routing each to the most similar cluster. A SiteModel is
// safe for concurrent use and persists across processes via WriteTo /
// ReadSiteModel.
type SiteModel struct {
	sm *core.SiteModel
	// threshold holds math.Float64bits of the cutoff so SetThreshold can
	// race safely with concurrent serving.
	threshold atomic.Uint64
}

func newSiteModel(sm *core.SiteModel, threshold float64) *SiteModel {
	m := &SiteModel{sm: sm}
	m.SetThreshold(threshold)
	return m
}

// Threshold returns the extraction-confidence cutoff the model applies.
func (m *SiteModel) Threshold() float64 { return math.Float64frombits(m.threshold.Load()) }

// SetThreshold changes the extraction-confidence cutoff — retraining is
// never needed to trade precision for recall. It is safe to call while
// the model is serving; in-flight batches may observe either value.
func (m *SiteModel) SetThreshold(t float64) { m.threshold.Store(math.Float64bits(t)) }

// TemplateClusters returns the number of template clusters the training
// site split into.
func (m *SiteModel) TemplateClusters() int {
	if m.sm == nil {
		return 0
	}
	return len(m.sm.Clusters)
}

// TrainedClusters returns how many clusters have a usable extractor.
func (m *SiteModel) TrainedClusters() int {
	if m.sm == nil {
		return 0
	}
	return m.sm.TrainedClusters()
}

// TrainPages returns the number of pages the model was trained on.
func (m *SiteModel) TrainPages() int {
	if m.sm == nil {
		return 0
	}
	return m.sm.TrainPages
}

// Extract applies the trained extractor to pages — typically pages the
// model has never seen — without any retraining. Each page is routed to
// the template cluster whose signature it most resembles. The Result's
// annotation statistics describe the training run; Pages counts the
// served pages.
//
// Extract returns ErrNotTrained on an untrained model, ErrNoPages for an
// empty page set, and ctx.Err() when cancelled.
func (m *SiteModel) Extract(ctx context.Context, pages []PageSource) (*Result, error) {
	src, err := toSources(pages)
	if err != nil {
		return nil, err
	}
	exts, err := m.sm.ExtractSources(ctx, src)
	if err != nil {
		return nil, err
	}
	out := &Result{
		AnnotatedPages:   m.sm.AnnotatedPages(),
		Annotations:      m.sm.Annotations(),
		TemplateClusters: len(m.sm.Clusters),
		Pages:            len(pages),
	}
	out.Triples = tripleize(exts, m.Threshold())
	return out, nil
}

// ExtractStream extracts with bounded memory, calling emit for every
// triple at or above the model threshold as its page finishes. Pages
// complete in worker order, not input order; emit is never called
// concurrently. A non-nil error from emit stops the stream and is
// returned; cancellation of ctx stops it with ctx.Err(). Only about
// WithWorkers pages are in memory at any moment, so a site of millions of
// pages streams in constant space.
func (m *SiteModel) ExtractStream(ctx context.Context, pages []PageSource, emit func(Triple) error) error {
	src, err := toSources(pages)
	if err != nil {
		return err
	}
	return m.sm.StreamSources(ctx, src, func(e core.Extraction) error {
		if e.Confidence < m.Threshold() {
			return nil
		}
		return emit(toTriple(e))
	})
}

// sitemodelFormat versions the WriteTo serialization. Version 2 stores
// extraction options fully resolved (an explicit zero is literal);
// version 1 files, whose zero options meant "apply the default", are
// still read with their original semantics. Version 3 — written by
// WriteBinary, implemented in internal/binmodel — is the binary
// field-tagged encoding (DESIGN.md §10); ReadSiteModel sniffs its magic
// and loads all three.
const (
	sitemodelFormat   = "ceres.sitemodel/2"
	sitemodelFormatV1 = "ceres.sitemodel/1"
)

// siteModelFile is the on-disk envelope of a SiteModel.
type siteModelFile struct {
	Format    string               `json:"format"`
	Threshold float64              `json:"threshold"`
	Model     *core.SiteModelState `json:"model"`
}

// WriteTo serializes the trained model so it can be reloaded in another
// process with ReadSiteModel (implements io.WriterTo). The format is
// versioned JSON; see DESIGN.md for the layout. For the binary format a
// cold boot decodes several times faster, use WriteBinary.
func (m *SiteModel) WriteTo(w io.Writer) (int64, error) {
	if m.sm == nil {
		return 0, ErrNotTrained
	}
	cw := &countingWriter{w: w}
	enc := json.NewEncoder(cw)
	err := enc.Encode(siteModelFile{
		Format:    sitemodelFormat,
		Threshold: m.Threshold(),
		Model:     m.sm.State(),
	})
	return cw.n, err
}

// WriteBinary serializes the trained model in the binary
// `ceres.sitemodel/3` format (DESIGN.md §10): the same state WriteTo
// stores, framed as field-tagged binary that decodes without reflection
// or text parsing. ReadSiteModel loads either format transparently;
// reloading a binary model and re-serializing it with WriteTo yields
// bytes identical to the JSON path's.
func (m *SiteModel) WriteBinary(w io.Writer) (int64, error) {
	if m.sm == nil {
		return 0, ErrNotTrained
	}
	return binmodel.Write(w, m.Threshold(), m.sm.State())
}

// ReadSiteModel deserializes a model written by SiteModel.WriteTo or
// SiteModel.WriteBinary. The format is sniffed from the first bytes: the
// binary magic routes to the internal/binmodel decoder, anything else is
// parsed as versioned JSON (v1 and v2 files load forever).
func ReadSiteModel(r io.Reader) (*SiteModel, error) {
	br := bufio.NewReader(r)
	prefix, err := br.Peek(len(binmodel.Magic()))
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("ceres: reading site model: %w", err)
	}
	if binmodel.IsBinary(prefix) {
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("ceres: reading site model: %w", err)
		}
		return readBinarySiteModel(data)
	}
	var f siteModelFile
	if err := json.NewDecoder(br).Decode(&f); err != nil {
		return nil, fmt.Errorf("ceres: reading site model: %w", err)
	}
	if f.Format != sitemodelFormat && f.Format != sitemodelFormatV1 {
		return nil, fmt.Errorf("ceres: unknown site model format %q", f.Format)
	}
	if f.Model == nil {
		return nil, fmt.Errorf("ceres: site model file has no model")
	}
	if f.Format == sitemodelFormatV1 {
		// v1 stored unresolved options: zero meant "default at serve
		// time". Resolve before the literal-valued restore below.
		f.Model.Extract = f.Model.Extract.Resolve()
	}
	sm, err := core.RestoreSiteModel(f.Model)
	if err != nil {
		return nil, fmt.Errorf("ceres: reading site model: %w", err)
	}
	return newSiteModel(sm, f.Threshold), nil
}

// readBinarySiteModel decodes one whole binary model file.
func readBinarySiteModel(data []byte) (*SiteModel, error) {
	threshold, st, err := binmodel.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("ceres: reading site model: %w", err)
	}
	sm, err := core.RestoreSiteModel(st)
	if err != nil {
		return nil, fmt.Errorf("ceres: reading site model: %w", err)
	}
	return newSiteModel(sm, threshold), nil
}

// readSiteModelBytes is ReadSiteModel over an in-memory file — the
// DirStore read path, which slurps version files whole (one syscall
// instead of a buffered read loop; a cold boot of a large fleet is
// syscall-bound).
func readSiteModelBytes(data []byte) (*SiteModel, error) {
	if binmodel.IsBinary(data) {
		return readBinarySiteModel(data)
	}
	return ReadSiteModel(bytes.NewReader(data))
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// toSources validates public pages into core sources.
func toSources(pages []PageSource) ([]core.PageSource, error) {
	if len(pages) == 0 {
		return nil, ErrNoPages
	}
	src := make([]core.PageSource, len(pages))
	for i, pg := range pages {
		if pg.ID == "" {
			return nil, fmt.Errorf("%w: page %d has an empty ID", ErrInvalidPage, i)
		}
		src[i] = core.PageSource{ID: pg.ID, HTML: pg.HTML}
	}
	return src, nil
}

func toTriple(e core.Extraction) Triple {
	return Triple{
		Subject:    e.Subject,
		Predicate:  e.Predicate,
		Object:     e.Value,
		Confidence: e.Confidence,
		Page:       e.PageID,
		Path:       e.Path,
	}
}

// tripleize thresholds and sorts extractions into the public triple order.
func tripleize(exts []core.Extraction, threshold float64) []Triple {
	n := 0
	for _, e := range exts {
		if e.Confidence >= threshold {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]Triple, 0, n)
	for _, e := range exts {
		if e.Confidence < threshold {
			continue
		}
		out = append(out, toTriple(e))
	}
	SortTriples(out)
	return out
}

// SortTriples sorts triples into the canonical output order every
// extraction API uses: descending confidence, then page, predicate,
// object, subject, path. The subject and path tie-breaks make the order
// total, so equal-confidence triples — e.g. from multi-topic pages, or an
// object text repeated at two nodes of one page — come out
// deterministically. Use it to restore the canonical order after merging
// triples from several extractions (e.g. the shards of a batch harvest).
func SortTriples(ts []Triple) {
	slices.SortFunc(ts, func(a, b Triple) int {
		switch {
		case a.Confidence > b.Confidence:
			return -1
		case a.Confidence < b.Confidence:
			return 1
		}
		if c := strings.Compare(a.Page, b.Page); c != 0 {
			return c
		}
		if c := strings.Compare(a.Predicate, b.Predicate); c != 0 {
			return c
		}
		if c := strings.Compare(a.Object, b.Object); c != 0 {
			return c
		}
		if c := strings.Compare(a.Subject, b.Subject); c != 0 {
			return c
		}
		return strings.Compare(a.Path, b.Path)
	})
}
