package ceres

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

// tracedFixture builds an instrumented, traced service over the shared
// train/serve fixture.
func tracedFixture(t *testing.T, o TracerOptions) (*trainServeFixture, *Service, *Tracer, *Metrics) {
	t.Helper()
	f := getTrainServeFixture(t)
	reg := NewRegistry()
	reg.Publish("demo", 1, f.model)
	m := NewMetrics()
	tr := NewTracer(o)
	tr.Instrument(m)
	svc := NewService(reg, WithMetrics(m), WithTracer(tr))
	return f, svc, tr, m
}

// TestServiceExtractSpanTree is the ISSUE-10 acceptance shape: a traced
// extract request must expose a complete span tree — admission →
// lookup → extract(parse, route, score) → fuse — with correct
// parentage and durations.
func TestServiceExtractSpanTree(t *testing.T) {
	f, svc, tr, _ := tracedFixture(t, TracerOptions{SampleEvery: 1})
	resp, err := svc.Extract(context.Background(), ExtractRequest{Site: "demo", Pages: f.serve})
	if err != nil {
		t.Fatal(err)
	}
	roots := tr.Roots()
	if len(roots) != 1 {
		t.Fatalf("retained %d traces, want 1", len(roots))
	}
	root := roots[0]
	if root.Name() != "service.extract" || !root.Ended() {
		t.Fatalf("root = %q ended=%v", root.Name(), root.Ended())
	}
	kids := root.Children()
	var names []string
	for _, k := range kids {
		names = append(names, k.Name())
		if !k.Ended() {
			t.Errorf("child span %q not ended", k.Name())
		}
	}
	want := []string{"admission", "lookup", "extract", "fuse"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("span children = %v, want %v", names, want)
	}
	ex := root.Child("extract")
	var stages []string
	for _, k := range ex.Children() {
		stages = append(stages, k.Name())
	}
	if strings.Join(stages, ",") != "parse,route,score" {
		t.Fatalf("extract stage spans = %v, want [parse route score]", stages)
	}
	// Durations: the root covers its direct children's wall time, and the
	// score stage of a real extraction cannot be zero.
	for _, k := range kids {
		if k.Duration() > root.Duration() {
			t.Errorf("child %q duration %v exceeds root %v", k.Name(), k.Duration(), root.Duration())
		}
	}
	if ex.Child("score").Duration() <= 0 {
		t.Error("score stage span has no recorded time")
	}
	// The breakdown the response reports is the same data the spans carry.
	if resp.Stats.Stages.Score != ex.Child("score").Duration() {
		t.Errorf("response stage breakdown %v disagrees with span %v",
			resp.Stats.Stages.Score, ex.Child("score").Duration())
	}
	js := root.JSON()
	var site string
	for _, a := range js.Attrs {
		if a.Key == "site" {
			site = a.Str
		}
	}
	if site != "demo" || js.DurNs <= 0 {
		t.Errorf("root JSON attrs/duration wrong: %+v", js)
	}
	if st := tr.Stats(); st.Started != st.Ended || st.DoubleEnds != 0 {
		t.Errorf("span lifecycle imbalance: %+v", st)
	}
}

// TestServiceTraceCancelClosesSpansOnce cancels requests at different
// points (pre-admission, mid-stream via emit) and asserts every span
// still closes exactly once.
func TestServiceTraceCancelClosesSpansOnce(t *testing.T) {
	f, svc, tr, _ := tracedFixture(t, TracerOptions{SampleEvery: 1})

	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if _, err := svc.Extract(pre, ExtractRequest{Site: "demo", Pages: f.serve}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Extract = %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	emitted := 0
	_, err := svc.ExtractStream(ctx, ExtractRequest{Site: "demo", Pages: f.serve}, func(Triple) error {
		emitted++
		cancel() // mid-request cancellation from inside the emit path
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-stream cancel = %v, want context.Canceled", err)
	}
	if emitted == 0 {
		t.Fatal("stream cancelled before emitting anything; test proves nothing")
	}

	st := tr.Stats()
	if st.Started != st.Ended {
		t.Fatalf("cancelled requests leaked spans: started %d, ended %d", st.Started, st.Ended)
	}
	if st.DoubleEnds != 0 {
		t.Fatalf("cancelled requests double-ended %d spans", st.DoubleEnds)
	}
	// Both traces were retained with their error recorded on the root.
	roots := tr.Roots()
	if len(roots) != 2 {
		t.Fatalf("retained %d traces, want 2", len(roots))
	}
	for i, r := range roots {
		if r.Err() == "" {
			t.Errorf("trace %d lost its cancellation error", i)
		}
	}
}

// TestServiceSharedTracerConcurrent hammers one traced service from 8
// workers (run under -race in CI) and checks the lifecycle counters
// balance.
func TestServiceSharedTracerConcurrent(t *testing.T) {
	f, svc, tr, _ := tracedFixture(t, TracerOptions{SampleEvery: 2, Capacity: 16})
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				if _, err := svc.Extract(ctx, ExtractRequest{Site: "demo", Pages: f.serve[:4]}); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := tr.Stats()
	if st.Sampled != 24 {
		t.Fatalf("sampled %d of 48 requests at 1-in-2, want 24", st.Sampled)
	}
	if st.Started != st.Ended || st.DoubleEnds != 0 {
		t.Fatalf("span lifecycle imbalance under concurrency: %+v", st)
	}
	if got := len(tr.Roots()); got != 16 {
		t.Fatalf("ring holds %d traces, want capacity 16", got)
	}
}

// TestServiceSampledOutAllocParity: with tracing attached but sampling
// off, the serve path must allocate exactly what an untraced service
// allocates — the nil-span fast path is free.
func TestServiceSampledOutAllocParity(t *testing.T) {
	f := getTrainServeFixture(t)
	reg := NewRegistry()
	reg.Publish("demo", 1, f.model)
	base := NewService(reg)
	traced := NewService(reg, WithTracer(NewTracer(TracerOptions{SampleEvery: 0})))
	ctx := context.Background()
	req := ExtractRequest{Site: "demo", Pages: f.serve[:8], Options: RequestOptions{Workers: 1}}
	run := func(svc *Service) func() {
		return func() {
			if _, err := svc.Extract(ctx, req); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Warm both paths (scratch pools, label tables) before measuring.
	run(base)()
	run(traced)()
	baseAllocs := testing.AllocsPerRun(5, run(base))
	tracedAllocs := testing.AllocsPerRun(5, run(traced))
	if baseAllocs != tracedAllocs {
		t.Fatalf("sampling-off traced Extract allocates %.1f/op, untraced %.1f/op; must be identical", tracedAllocs, baseAllocs)
	}
}

// TestServiceSiteStatsDriftSnapshot drives pages — including a blank
// one that extracts nothing — and checks the drift snapshot against
// both the API and the exposed metric families.
func TestServiceSiteStatsDriftSnapshot(t *testing.T) {
	f, svc, _, m := tracedFixture(t, TracerOptions{SampleEvery: 1})
	ctx := context.Background()
	pages := append(append([]PageSource(nil), f.serve[:6]...),
		PageSource{ID: "blank", HTML: "<html><body><p>nothing here</p></body></html>"})
	resp, err := svc.Extract(ctx, ExtractRequest{Site: "demo", Pages: pages})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats.EmptyPages == 0 {
		t.Fatalf("blank page not counted empty: %+v", resp.Stats)
	}

	st, ok := svc.SiteStats("demo")
	if !ok {
		t.Fatal("SiteStats for a registered site reported !ok")
	}
	if st.Site != "demo" || st.ModelVersion != 1 || st.Requests != 1 {
		t.Fatalf("snapshot identity wrong: %+v", st)
	}
	if st.Pages != int64(len(pages)) || st.EmptyPages != int64(resp.Stats.EmptyPages) {
		t.Fatalf("snapshot counters disagree with response stats: %+v vs %+v", st, resp.Stats)
	}
	if st.EmptyPageRate <= 0 || st.EmptyPageRate > 1 {
		t.Fatalf("EmptyPageRate = %v", st.EmptyPageRate)
	}
	if st.Confidence.Count == 0 || st.MeanConfidence <= 0 || st.MeanConfidence > 1 {
		t.Fatalf("confidence distribution empty or out of range: %+v", st)
	}
	var bucketSum int64
	for _, c := range st.Confidence.Counts {
		bucketSum += c
	}
	if bucketSum != st.Confidence.Count || len(st.Confidence.Counts) != len(st.Confidence.Bounds)+1 {
		t.Fatalf("confidence histogram shape inconsistent: %+v", st.Confidence)
	}

	// The same signals must be visible in /metrics, from the same counters.
	text := metricsText(t, m)
	for _, want := range []string{
		`ceres_extraction_confidence_count{site="demo"} ` + itoa(int(st.Confidence.Count)),
		`ceres_empty_pages_total{site="demo"} ` + itoa(int(st.EmptyPages)),
		`ceres_routing_miss_total{site="demo"} ` + itoa(int(st.RoutingMisses)),
		"ceres_trace_roots_sampled_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	if _, ok := svc.SiteStats("nope"); ok {
		t.Error("SiteStats for an unregistered site reported ok")
	}
	bareReg := NewRegistry()
	bareReg.Publish("demo", 1, f.model)
	bare := NewService(bareReg)
	if _, ok := bare.SiteStats("demo"); ok {
		t.Error("SiteStats on an uninstrumented service reported ok")
	}
}

// TestServiceStreamDriftSignals: the streaming path feeds the same
// drift counters, pre-threshold.
func TestServiceStreamDriftSignals(t *testing.T) {
	f, svc, _, _ := tracedFixture(t, TracerOptions{})
	ctx := context.Background()
	th := 0.99 // strict: most extractions fall below, but confidence is observed pre-threshold
	_, err := svc.ExtractStream(ctx, ExtractRequest{
		Site: "demo", Pages: f.serve[:6], Options: RequestOptions{Threshold: &th},
	}, func(Triple) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	st, ok := svc.SiteStats("demo")
	if !ok || st.Confidence.Count == 0 {
		t.Fatalf("stream path observed no confidences: ok=%v %+v", ok, st)
	}
	if st.Triples >= st.Confidence.Count {
		t.Errorf("thresholded triples (%d) should undercount observed confidences (%d)", st.Triples, st.Confidence.Count)
	}
}
