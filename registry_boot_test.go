package ceres

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestOpenRegistryDeterministicFailure: the boot loads models on a worker
// pool, but a failure must be reported deterministically — always the
// first-failing site in List (site-sorted) order, however the workers
// interleave.
func TestOpenRegistryDeterministicFailure(t *testing.T) {
	f := getTrainServeFixture(t)
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, site := range []string{"a.example", "b.example", "c.example", "d.example"} {
		if _, err := store.Publish(site, f.model); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt two sites; the first in site order is the one that must be
	// reported, every run.
	for _, site := range []string{"b.example", "d.example"} {
		if err := os.WriteFile(filepath.Join(store.Root(), site, "v000001.bin"), []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		_, err := OpenRegistry(context.Background(), store)
		if err == nil {
			t.Fatal("OpenRegistry succeeded over corrupt models")
		}
		if !strings.Contains(err.Error(), `site "b.example"`) {
			t.Fatalf("run %d reported %v, want the first-failing site b.example", i, err)
		}
	}
}

func TestOpenRegistryCancelled(t *testing.T) {
	f := getTrainServeFixture(t)
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Publish("a.example", f.model); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := OpenRegistry(ctx, store); !errors.Is(err, context.Canceled) {
		t.Fatalf("OpenRegistry on cancelled ctx = %v, want context.Canceled", err)
	}
}

// BenchmarkRegistryBoot measures a serving fleet's cold boot —
// OpenRegistry over a store of 1000 single-version models — for the
// binary `ceres.sitemodel/3` format against the JSON baseline. The store
// is laid out once per sub-benchmark (the same trained model under 1000
// site names, written directly rather than through Publish, which would
// fsync 1000 times); each iteration then boots a fresh registry from it.
func BenchmarkRegistryBoot(b *testing.B) {
	const sites = 1000
	c, err := DemoCorpus("movies", 7, 60)
	if err != nil {
		b.Fatal(err)
	}
	train := make([]PageSource, 0, len(c.Pages)/2)
	for i, p := range c.Pages {
		if i%2 == 0 {
			train = append(train, p)
		}
	}
	model, err := NewPipeline(c.KB).Train(context.Background(), train)
	if err != nil {
		b.Fatal(err)
	}
	var jsonBuf, binBuf strings.Builder
	if _, err := model.WriteTo(&jsonBuf); err != nil {
		b.Fatal(err)
	}
	if _, err := model.WriteBinary(&binBuf); err != nil {
		b.Fatal(err)
	}

	for _, bc := range []struct {
		name, file string
		data       string
	}{
		{"binary", "v000001.bin", binBuf.String()},
		{"json", "v000001.json", jsonBuf.String()},
	} {
		b.Run(bc.name, func(b *testing.B) {
			root := b.TempDir()
			for i := 0; i < sites; i++ {
				dir := filepath.Join(root, fmt.Sprintf("site-%04d.example", i))
				if err := os.Mkdir(dir, 0o755); err != nil {
					b.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(dir, bc.file), []byte(bc.data), 0o644); err != nil {
					b.Fatal(err)
				}
			}
			store, err := NewDirStore(root)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(sites * len(bc.data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reg, err := OpenRegistry(context.Background(), store)
				if err != nil {
					b.Fatal(err)
				}
				if reg.Len() != sites {
					b.Fatalf("booted %d sites, want %d", reg.Len(), sites)
				}
			}
		})
	}

	// scale tracks the ROADMAP "10k models under a second" target over the
	// binary format. Laying out and booting 10k model files is too slow
	// for the -short smoke runs, so it only executes in full bench mode.
	b.Run("scale", func(b *testing.B) {
		if testing.Short() {
			b.Skip("skipping 10k-model boot in -short mode")
		}
		const scaleSites = 10000
		data := binBuf.String()
		root := b.TempDir()
		for i := 0; i < scaleSites; i++ {
			dir := filepath.Join(root, fmt.Sprintf("site-%05d.example", i))
			if err := os.Mkdir(dir, 0o755); err != nil {
				b.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, "v000001.bin"), []byte(data), 0o644); err != nil {
				b.Fatal(err)
			}
		}
		store, err := NewDirStore(root)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(scaleSites * len(data)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reg, err := OpenRegistry(context.Background(), store)
			if err != nil {
				b.Fatal(err)
			}
			if reg.Len() != scaleSites {
				b.Fatalf("booted %d sites, want %d", reg.Len(), scaleSites)
			}
		}
	})
}
