package ceres

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// RegisteredModel pairs a site's serving model with the version it was
// published under.
type RegisteredModel struct {
	Site    string
	Version int
	Model   *SiteModel
}

// Registry is the serving fleet's site → model map. Reads (Lookup, and
// through it every Service.Extract) are lock-free: the site table lives
// behind an atomic pointer to an immutable map, so a request never blocks
// on a publish. Writers (Publish, Drop) copy-on-write the table under a
// mutex, and a hot-swap becomes visible to in-flight traffic at the next
// Lookup — requests already holding a model keep serving the version they
// looked up. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu   sync.Mutex // serializes writers
	snap atomic.Pointer[map[string]RegisteredModel]
	// swaps counts Publish/PublishNext hot-swaps since construction — the
	// fleet-convergence signal exposed as ceres_registry_swaps_total
	// (obs.go). OpenRegistry's boot snapshot is not a swap.
	swaps atomic.Int64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	empty := map[string]RegisteredModel{}
	r.snap.Store(&empty)
	return r
}

// OpenRegistry loads the latest stored version of every site in the store
// into a new registry — how a serving process boots its fleet. Model
// loads run on a GOMAXPROCS-wide worker pool (deserialization dominates a
// cold boot, and models are independent), but the outcome is
// deterministic: on failure the error reported is always the
// first-failing site in List (site-sorted) order, regardless of which
// worker hit it first. Cancelling ctx abandons the boot with ctx.Err().
func OpenRegistry(ctx context.Context, store ModelStore) (*Registry, error) {
	r := NewRegistry()
	ents, err := store.List()
	if err != nil {
		return nil, err
	}
	type job struct {
		site    string
		version int
	}
	jobs := make([]job, 0, len(ents))
	for _, e := range ents {
		if len(e.Versions) == 0 {
			continue
		}
		// List sorts versions ascending; the last is the latest.
		jobs = append(jobs, job{e.Site, e.Versions[len(e.Versions)-1]})
	}
	workers := min(runtime.GOMAXPROCS(0), len(jobs))
	models := make([]*SiteModel, len(jobs))
	errs := make([]error, len(jobs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) || ctx.Err() != nil {
					return
				}
				models[i], errs[i] = store.Open(jobs[i].site, jobs[i].version)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("ceres: loading registry: site %q: %w", jobs[i].site, err)
		}
	}
	// Install the whole fleet as one snapshot: publishing per site would
	// copy-on-write the table once per model (quadratic over a large
	// store), and nothing can be serving mid-boot anyway.
	table := make(map[string]RegisteredModel, len(jobs))
	for i, j := range jobs {
		table[j.site] = RegisteredModel{Site: j.site, Version: j.version, Model: models[i]}
	}
	r.snap.Store(&table)
	return r, nil
}

// Lookup returns the model currently serving a site. It is lock-free and
// safe to call from any number of goroutines concurrently with Publish.
func (r *Registry) Lookup(site string) (RegisteredModel, bool) {
	e, ok := (*r.snap.Load())[site]
	return e, ok
}

// Publish hot-swaps the model serving a site. The version is the caller's
// label for the artifact (typically assigned by a ModelStore); Publish
// does not enforce monotonicity, so an explicit re-publish of an older
// version is a rollback. In-flight requests finish on the model they
// already looked up; the next request serves the new one.
func (r *Registry) Publish(site string, version int, m *SiteModel) {
	r.mu.Lock()
	defer r.mu.Unlock()
	next := r.clone()
	next[site] = RegisteredModel{Site: site, Version: version, Model: m}
	r.snap.Store(&next)
	r.swaps.Add(1)
}

// PublishNext publishes m under the site's current version + 1 (1 for a
// site the registry has not seen) and returns the assigned version. Use it
// when no ModelStore is assigning durable version numbers.
func (r *Registry) PublishNext(site string, m *SiteModel) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	next := r.clone()
	version := next[site].Version + 1
	next[site] = RegisteredModel{Site: site, Version: version, Model: m}
	r.snap.Store(&next)
	r.swaps.Add(1)
	return version
}

// Drop removes a site from serving, reporting whether it was registered.
func (r *Registry) Drop(site string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := (*r.snap.Load())[site]; !ok {
		return false
	}
	next := r.clone()
	delete(next, site)
	r.snap.Store(&next)
	return true
}

// Len returns the number of registered sites.
func (r *Registry) Len() int { return len(*r.snap.Load()) }

// Swaps returns the cumulative number of model publishes (hot swaps)
// applied to the registry since it was built.
func (r *Registry) Swaps() int64 { return r.swaps.Load() }

// Snapshot lists the registered models, sorted by site. The slice is the
// caller's; the registry never mutates a returned snapshot.
func (r *Registry) Snapshot() []RegisteredModel {
	cur := *r.snap.Load()
	out := make([]RegisteredModel, 0, len(cur))
	for _, e := range cur {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// clone copies the current table for a writer; callers hold r.mu.
func (r *Registry) clone() map[string]RegisteredModel {
	cur := *r.snap.Load()
	next := make(map[string]RegisteredModel, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	return next
}
