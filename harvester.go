package ceres

import (
	"context"
	"sort"
	"sync"
)

// SiteInput is one site of a multi-site harvest.
type SiteInput struct {
	// Site identifies the site (e.g. its domain); it becomes the source
	// name fusion credits observations to.
	Site string
	// Pages are the site's detail pages.
	Pages []PageSource
	// Pipeline optionally overrides the harvester's shared pipeline for
	// this site — e.g. a site-specific seed KB or threshold. Nil uses the
	// shared pipeline.
	Pipeline *Pipeline
}

// HarvesterOption configures a Harvester.
type HarvesterOption func(*Harvester)

// WithSiteConcurrency bounds how many sites train/serve at once
// (default 4). Per-site page parallelism is still governed by the
// pipeline's WithWorkers.
func WithSiteConcurrency(n int) HarvesterOption {
	return func(h *Harvester) {
		if n > 0 {
			h.concurrency = n
		}
	}
}

// Harvester trains and serves many sites concurrently against one seed KB
// — the paper's long-tail setting (§5.5), where 33 sites are harvested
// and the results fused. It accumulates one SiteModel and one Result per
// site and feeds them directly into Fuse. All methods are safe for
// concurrent use.
type Harvester struct {
	p           *Pipeline
	concurrency int

	mu      sync.Mutex
	models  map[string]*SiteModel
	results map[string]*Result
	errs    map[string]error
}

// NewHarvester builds a harvester over a configured pipeline.
func NewHarvester(p *Pipeline, opts ...HarvesterOption) *Harvester {
	h := &Harvester{
		p:           p,
		concurrency: 4,
		models:      map[string]*SiteModel{},
		results:     map[string]*Result{},
		errs:        map[string]error{},
	}
	for _, o := range opts {
		o(h)
	}
	return h
}

// Train trains one site with the shared pipeline and registers its model
// for serving.
func (h *Harvester) Train(ctx context.Context, site string, pages []PageSource) (*SiteModel, error) {
	return h.trainWith(ctx, h.p, site, pages)
}

func (h *Harvester) trainWith(ctx context.Context, p *Pipeline, site string, pages []PageSource) (*SiteModel, error) {
	m, err := p.Train(ctx, pages)
	h.mu.Lock()
	defer h.mu.Unlock()
	if err != nil {
		// Cancellation means the site never ran, not that it failed;
		// Errors() reports only genuine per-site failures.
		if ctx.Err() == nil {
			h.errs[site] = err
		}
		return nil, err
	}
	delete(h.errs, site)
	h.models[site] = m
	return m, nil
}

// AddModel registers an already-trained model (e.g. one loaded with
// ReadSiteModel) so Harvest and Extract can serve the site without
// retraining.
func (h *Harvester) AddModel(site string, m *SiteModel) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.models[site] = m
}

// Model returns the registered model of a site.
func (h *Harvester) Model(site string) (*SiteModel, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.models[site]
	return m, ok
}

// Extract serves pages of a previously trained site and records the
// result for fusion. It returns ErrNotTrained when the site has no
// registered model.
func (h *Harvester) Extract(ctx context.Context, site string, pages []PageSource) (*Result, error) {
	m, ok := h.Model(site)
	if !ok {
		return nil, ErrNotTrained
	}
	res, err := m.Extract(ctx, pages)
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	h.results[site] = res
	h.mu.Unlock()
	return res, nil
}

// Harvest processes sites concurrently: each site is trained (unless a
// model is already registered) and then served over its own pages, the
// multi-site harvest of the paper's CommonCrawl experiment. Sites whose
// seed-KB overlap is too thin to train (ErrNoAnnotations) are skipped and
// recorded in Errors() — a long-tail harvest expects some of those — as
// are sites that fail to serve. Harvest stops early only when ctx is
// cancelled, returning ctx.Err(); otherwise it returns the per-site
// results, which are also retained for Fuse.
func (h *Harvester) Harvest(ctx context.Context, sites []SiteInput) (map[string]*Result, error) {
	workers := h.concurrency
	if workers > len(sites) {
		workers = len(sites)
	}
	if workers < 1 {
		workers = 1
	}
	next := make(chan SiteInput)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for in := range next {
				h.harvestOne(ctx, in)
			}
		}()
	}
feed:
	for _, in := range sites {
		select {
		case next <- in:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := map[string]*Result{}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, in := range sites {
		if res, ok := h.results[in.Site]; ok {
			out[in.Site] = res
		}
	}
	return out, nil
}

func (h *Harvester) harvestOne(ctx context.Context, in SiteInput) {
	if _, ok := h.Model(in.Site); !ok {
		p := h.p
		if in.Pipeline != nil {
			p = in.Pipeline
		}
		if _, err := h.trainWith(ctx, p, in.Site, in.Pages); err != nil {
			return // recorded by trainWith
		}
	}
	if _, err := h.Extract(ctx, in.Site, in.Pages); err != nil && ctx.Err() == nil {
		h.mu.Lock()
		h.errs[in.Site] = err
		h.mu.Unlock()
	}
}

// Results returns a copy of the per-site results accumulated so far.
func (h *Harvester) Results() map[string]*Result {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]*Result, len(h.results))
	for k, v := range h.results {
		out[k] = v
	}
	return out
}

// Errors returns a copy of the per-site failures (e.g. ErrNoAnnotations
// for sites the seed KB could not align with).
func (h *Harvester) Errors() map[string]error {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]error, len(h.errs))
	for k, v := range h.errs {
		out[k] = v
	}
	return out
}

// Sites lists sites with a result, sorted.
func (h *Harvester) Sites() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.results))
	for s := range h.results {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Fuse aggregates every accumulated result into fused facts — the
// knowledge-fusion step the paper applies to its multi-site harvest.
func (h *Harvester) Fuse(opts FusionOptions) []FusedFact {
	return Fuse(h.Results(), opts)
}
