package ceres

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// SiteInput is one site of a multi-site harvest.
type SiteInput struct {
	// Site identifies the site (e.g. its domain); it becomes the source
	// name fusion credits observations to.
	Site string
	// Pages are the site's detail pages.
	Pages []PageSource
	// Pipeline optionally overrides the harvester's shared pipeline for
	// this site — e.g. a site-specific seed KB or threshold. Nil uses the
	// shared pipeline.
	Pipeline *Pipeline
}

// DuplicateSiteError reports a Harvest input naming the same site more
// than once — the two entries would otherwise race to publish the site's
// model and silently overwrite each other's results.
type DuplicateSiteError struct {
	Site string
}

func (e *DuplicateSiteError) Error() string {
	return fmt.Sprintf("ceres: duplicate site %q in harvest input", e.Site)
}

// HarvesterOption configures a Harvester.
type HarvesterOption func(*Harvester)

// WithSiteConcurrency bounds how many sites train/serve at once
// (default 4). Per-site page parallelism is still governed by the
// pipeline's WithWorkers.
func WithSiteConcurrency(n int) HarvesterOption {
	return func(h *Harvester) {
		if n > 0 {
			h.concurrency = n
		}
	}
}

// WithHarvesterRegistry makes the harvester publish trained models into an
// existing registry — e.g. the one a Service or serving daemon reads from
// — instead of a private one, so every harvested site goes straight into
// serving.
func WithHarvesterRegistry(reg *Registry) HarvesterOption {
	return func(h *Harvester) {
		if reg != nil {
			h.reg = reg
		}
	}
}

// Harvester trains many sites concurrently against one seed KB and
// publishes each trained model into a Registry — the paper's long-tail
// setting (§5.5), where 33 sites are harvested and the results fused. It
// is the training front-end of the serving stack: models land in the
// registry (Registry()) where a Service serves them, while the harvester
// accumulates one training Result per site and feeds them directly into
// Fuse. All methods are safe for concurrent use.
type Harvester struct {
	p           *Pipeline
	concurrency int
	reg         *Registry
	svc         *Service

	mu      sync.Mutex
	results map[string]*Result
	errs    map[string]error
}

// NewHarvester builds a harvester over a configured pipeline.
func NewHarvester(p *Pipeline, opts ...HarvesterOption) *Harvester {
	h := &Harvester{
		p:           p,
		concurrency: 4,
		results:     map[string]*Result{},
		errs:        map[string]error{},
	}
	for _, o := range opts {
		o(h)
	}
	if h.reg == nil {
		h.reg = NewRegistry()
	}
	h.svc = NewService(h.reg)
	return h
}

// Registry returns the registry the harvester publishes trained models
// into.
func (h *Harvester) Registry() *Registry { return h.reg }

// Service returns a request-scoped extraction service over the
// harvester's registry.
func (h *Harvester) Service() *Service { return h.svc }

// Train trains one site with the shared pipeline and publishes its model
// into the registry for serving.
func (h *Harvester) Train(ctx context.Context, site string, pages []PageSource) (*SiteModel, error) {
	return h.trainWith(ctx, h.p, site, pages)
}

func (h *Harvester) trainWith(ctx context.Context, p *Pipeline, site string, pages []PageSource) (*SiteModel, error) {
	m, err := p.Train(ctx, pages)
	h.mu.Lock()
	defer h.mu.Unlock()
	if err != nil {
		// Cancellation means the site never ran, not that it failed;
		// Errors() reports only genuine per-site failures.
		if ctx.Err() == nil {
			h.errs[site] = err
		}
		return nil, err
	}
	delete(h.errs, site)
	h.reg.PublishNext(site, m)
	return m, nil
}

// AddModel registers an already-trained model (e.g. one loaded with
// ReadSiteModel) so Harvest and Extract can serve the site without
// retraining. It publishes into the registry under the next version.
func (h *Harvester) AddModel(site string, m *SiteModel) {
	h.reg.PublishNext(site, m)
}

// Model returns the registered model of a site.
func (h *Harvester) Model(site string) (*SiteModel, bool) {
	e, ok := h.reg.Lookup(site)
	if !ok {
		return nil, false
	}
	return e.Model, true
}

// Extract serves pages of a previously trained site and records the
// result for fusion. It returns ErrNotTrained when the site has no
// registered model. The registry is looked up exactly once, so even while
// a concurrent publish hot-swaps the site, the whole Result — triples and
// training statistics alike — comes from one model version.
func (h *Harvester) Extract(ctx context.Context, site string, pages []PageSource) (*Result, error) {
	e, ok := h.reg.Lookup(site)
	if !ok {
		return nil, ErrNotTrained
	}
	res, err := e.Model.Extract(ctx, pages)
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	h.results[site] = res
	h.mu.Unlock()
	return res, nil
}

// Harvest processes sites concurrently: each site is trained (unless a
// model is already registered) and then served over its own pages, the
// multi-site harvest of the paper's CommonCrawl experiment. Sites whose
// seed-KB overlap is too thin to train (ErrNoAnnotations) are skipped and
// recorded in Errors() — a long-tail harvest expects some of those — as
// are sites that fail to serve. Inputs naming the same site twice are
// rejected up front with a DuplicateSiteError, before any site runs.
// Harvest stops early only when ctx is cancelled, returning ctx.Err();
// otherwise it returns the per-site results, which are also retained for
// Fuse.
func (h *Harvester) Harvest(ctx context.Context, sites []SiteInput) (map[string]*Result, error) {
	seen := make(map[string]bool, len(sites))
	for _, in := range sites {
		if seen[in.Site] {
			return nil, &DuplicateSiteError{Site: in.Site}
		}
		seen[in.Site] = true
	}
	workers := h.concurrency
	if workers > len(sites) {
		workers = len(sites)
	}
	if workers < 1 {
		workers = 1
	}
	next := make(chan SiteInput)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for in := range next {
				h.harvestOne(ctx, in)
			}
		}()
	}
feed:
	for _, in := range sites {
		select {
		case next <- in:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := map[string]*Result{}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, in := range sites {
		if res, ok := h.results[in.Site]; ok {
			out[in.Site] = res
		}
	}
	return out, nil
}

func (h *Harvester) harvestOne(ctx context.Context, in SiteInput) {
	if _, ok := h.Model(in.Site); !ok {
		p := h.p
		if in.Pipeline != nil {
			p = in.Pipeline
		}
		if _, err := h.trainWith(ctx, p, in.Site, in.Pages); err != nil {
			return // recorded by trainWith
		}
	}
	if _, err := h.Extract(ctx, in.Site, in.Pages); err != nil && ctx.Err() == nil {
		h.mu.Lock()
		h.errs[in.Site] = err
		h.mu.Unlock()
	}
}

// Results returns a copy of the per-site results accumulated so far.
func (h *Harvester) Results() map[string]*Result {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]*Result, len(h.results))
	for k, v := range h.results {
		out[k] = v
	}
	return out
}

// Errors returns a copy of the per-site failures (e.g. ErrNoAnnotations
// for sites the seed KB could not align with).
func (h *Harvester) Errors() map[string]error {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]error, len(h.errs))
	for k, v := range h.errs {
		out[k] = v
	}
	return out
}

// Sites lists sites with a result, sorted.
func (h *Harvester) Sites() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.results))
	for s := range h.results {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Fuse aggregates every accumulated result into fused facts — the
// knowledge-fusion step the paper applies to its multi-site harvest.
func (h *Harvester) Fuse(opts FusionOptions) []FusedFact {
	return Fuse(h.Results(), opts)
}
