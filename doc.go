// Package ceres is a from-scratch Go implementation of CERES — distantly
// supervised relation extraction from semi-structured websites (Lockard,
// Dong, Einolghozati, Shiralkar; VLDB 2018, arXiv:1804.04635).
//
// Given the detail pages of a template-generated website and a seed
// knowledge base, a Pipeline automatically annotates the pages by aligning
// them with the KB (topic identification + relation annotation), trains a
// logistic-regression node classifier over DOM features, and extracts new
// (subject, predicate, object) triples — including triples about entities
// the seed KB has never heard of — each with a calibrated confidence.
//
// The API splits the lifecycle in two. Training is the expensive,
// KB-dependent phase and runs once per site; it produces a SiteModel, the
// cheap, self-contained serving artifact:
//
//	k := ceres.NewKB(ceres.NewOntology(
//	    ceres.Predicate{Name: "directedBy", Domain: "film", Range: "person"},
//	))
//	// ... add seed entities and triples ...
//	p := ceres.NewPipeline(k, ceres.WithThreshold(0.75))
//	model, err := p.Train(ctx, trainPages)        // parse→cluster→annotate→train
//	result, err := model.Extract(ctx, newPages)   // serve any pages, no retraining
//
// A SiteModel persists across processes (WriteTo / ReadSiteModel), streams
// extractions with bounded memory (ExtractStream), and routes pages it has
// never seen to the nearest template cluster learned at training time.
//
// # Serving a fleet of sites
//
// Production serving is built from three layers. A ModelStore (DirStore on
// a filesystem) persists models by site and version with atomic publishes;
// a Registry maps each site to its currently serving model with lock-free
// lookups and hot-swap publishes; and a Service answers request-scoped
// extraction calls — per-request threshold and worker overrides instead of
// model mutation — over whatever the registry holds:
//
//	store, _ := ceres.NewDirStore("models")
//	version, _ := store.Publish("rottentomatoes.com", model)
//
//	reg, _ := ceres.OpenRegistry(ctx, store) // latest version of every site
//	svc := ceres.NewService(reg, ceres.WithMaxInflight(64))
//
//	strict := 0.75
//	resp, err := svc.Extract(ctx, ceres.ExtractRequest{
//	    Site:    "rottentomatoes.com",
//	    Pages:   unseenPages, // never part of training
//	    Options: ceres.RequestOptions{Threshold: &strict},
//	})
//	// resp.Triples, resp.Version, resp.Stats (pages, triples, latency)
//
// The cmd/ceres-serve daemon wraps exactly this stack in an HTTP API. A
// Harvester is the training front-end of the same stack: it trains and
// serves many sites concurrently against one seed KB, publishes each model
// into its Registry, and feeds the fused multi-site view directly
// (Harvester.Fuse).
//
// # The streaming serve path
//
// Serving does not build a DOM. When every trained cluster of a
// SiteModel has compiled, Extract and its siblings run each page through
// a single forward pass of the HTML tokenizer that maintains only the
// open-element stack, routes the page by its template signature, and
// classifies text fields as they are seen — no node tree, no per-field
// re-walk. The output is bit-identical to the tree-building path (same
// triples, confidences, order and XPaths, enforced by differential
// tests); SiteModel.DisableStreaming forces the DOM path for debugging.
// Service.ExtractScan is the raw-bytes entry point batch harvests use to
// feed pagestore records straight into the tokenizer without a
// per-page string copy. The field-emission contract, the
// SignatureWatermark routing semantics, and the cases that still
// require the DOM path are specified in DESIGN.md §11.
//
// # Batch harvests
//
// The offline counterpart is the batch subsystem: ceres/pagestore holds a
// site-partitioned crawl on disk, and ceres/batch runs a sharded,
// checkpointed train→publish→extract→fuse job over it through the same
// Registry/Service stack — killed runs resume exactly where they stopped,
// and the streaming fusion side (Fuser, FuseStream) aggregates the output
// without materializing the observations. cmd/ceres-batch drives the loop
// from the command line.
//
// # Model serialization
//
// Trained models persist in two interchangeable forms: WriteTo emits the
// versioned JSON envelope (ceres.sitemodel/2), WriteBinary the
// length-prefixed binary format (ceres.sitemodel/3) that cold registry
// boots decode several times faster. ReadSiteModel sniffs the first
// bytes and accepts every version ever published; DirStore publishes
// binary by default (WithJSONPublish restores JSON artifacts). The wire
// layout, version-negotiation matrix and the pagestore readahead
// ordering guarantee are specified in DESIGN.md §10.
//
// # Operations
//
// The serving stack is built to run as a fleet: N ceres-serve replicas
// sharing one ModelStore behind a load balancer. NewMetrics creates the
// process metrics registry (Prometheus text format, stdlib only) that
// Service (WithMetrics), Registry (Instrument), ModelWatcher and
// batch.Runner instrument themselves against — per-site request/page/
// triple counters, latency histograms, an inflight gauge, model
// versions and hot-swap counts, exposed by WritePrometheus (the
// daemon's GET /metrics). ModelWatcher polls the store on a jittered
// interval and hot-swaps each site's stored latest into the Registry,
// with per-site exponential backoff on corrupt artifacts, so a publish
// to any replica converges across the fleet with no restart.
// WithAdmissionWait bounds how long a request may wait for a
// WithMaxInflight slot before failing with ErrOverloaded (HTTP 429) —
// shed, not queued, so retries land on replicas with capacity.
// cmd/ceres-serve adds request IDs, structured access logs, /readyz
// drain semantics and per-site rate limits; cmd/ceres-fleet (make
// fleet) proves a rolling publish under load drops nothing. DESIGN.md
// §12 specifies the metric families and the drain/shed contracts.
//
// # Observability
//
// NewTracer builds the request tracer: 1-in-N sampled span trees over
// the serve path (admission → lookup → extract with per-stage
// parse/route/score children → fuse), the batch runner's shards and
// the training pipeline, retained in a ring and exported as JSONL (the
// daemon's GET /debug/traces). A sampled-out request costs nothing —
// the nil *Span no-op path is allocation-free, ceresvet-enforced, and
// BenchmarkServiceExtract/SequentialTraced shows allocs/op identical
// to the untraced path. Attach with WithTracer; propagate across
// layers with ContextWithSpan / SpanFromContext.
//
// Extraction-quality drift is tracked per site: every extraction's
// pre-threshold confidence (ceres_extraction_confidence), pages that
// extracted nothing (ceres_empty_pages_total) and pages routed to no
// trained cluster (ceres_routing_miss_total). Service.SiteStats — the
// daemon's GET /v1/sites/{site}/stats — snapshots the same counters
// into rates a continuous-harvest loop can threshold to decide a model
// has gone stale. RequestOptions.CollectStages gathers the per-stage
// serve-time breakdown into ServeStats.Stages without tracing; batch
// runs use it for their per-stage report (batch.Report.Stages). The
// daemon exposes Go runtime profiles under /debug/pprof only with
// -pprof. DESIGN.md §13 specifies the span model, the sampling
// contract and the drift-signal definitions.
//
// # Development
//
// `make lint` is the gate every change must pass: go vet plus
// cmd/ceresvet, the repo's own static-analysis suite enforcing the
// invariants this package's guarantees rest on — atomic file
// publication, threaded cancellation, deterministic map iteration, lock
// safety and the //ceres:allocfree hot-path contract (DESIGN.md §9).
//
// See examples/ for runnable end-to-end programs, DESIGN.md for the system
// inventory, serialization format, the serving-stack wire protocol and the
// batch-harvest architecture (§8), and EXPERIMENTS.md for the reproduction
// of every table and figure in the paper.
package ceres
