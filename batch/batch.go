// Package batch runs crawl-scale harvests offline: point a Job at a
// stored multi-site page corpus and it trains, publishes, extracts and
// fuses as one bounded-memory, resumable run — the offline counterpart to
// the serving daemon, and the repository's analogue of the paper's
// CommonCrawl experiment (§5.5: 33 movie sites, 1.25M triples).
//
// The moving parts:
//
//   - A PageProvider supplies site-partitioned pages (pagestore.Store for
//     an on-disk crawl, MemProvider for in-memory page sets).
//   - PlanJob shards every site's pages into fixed-size ranges.
//   - A Runner executes shards on a worker pool through the serving
//     stack's Registry/Service; sites with no published model are trained
//     first (once, whatever the worker count) and published — through the
//     configured ceres.ModelStore when one is set, so a crash never loses
//     a trained model.
//   - Each shard's triples go to a TripleSink; committed shards are
//     recorded in an atomically written checkpoint manifest, so a killed
//     run resumes exactly where it stopped with no duplicate output.
//   - After the last shard, a streaming fusion stage replays the sink in
//     plan order through a ceres.Fuser — observations are never
//     materialized as one list.
//
// Memory stays bounded throughout: a worker holds one shard of pages and
// its triples at a time, never a whole site.
package batch

import (
	"context"
	"fmt"
	"sort"

	"ceres"
)

// PageProvider supplies the site-partitioned pages of a harvest.
// pagestore.Store implements it for on-disk crawls. Implementations must
// be safe for concurrent readers.
type PageProvider interface {
	// Sites lists the available sites, sorted.
	Sites() ([]string, error)
	// PageCount returns one site's total page count; it errors for a site
	// the provider does not hold.
	PageCount(site string) (int, error)
	// Pages streams records [start, start+n) of a site in stable order
	// through fn (n < 0 streams to the end). A non-nil error from fn stops
	// the scan and is returned; cancelling ctx may stop it with ctx.Err()
	// (providers that read ahead concurrently, like pagestore.Store, use
	// it to abandon in-flight work). The delivery order must be identical
	// on every call — shard planning and checkpoint resume depend on it.
	Pages(ctx context.Context, site string, start, n int, fn func(ceres.PageSource) error) error
}

// RawPageProvider is optionally implemented by providers that can hand a
// shard's records to the runner as raw bytes. When the configured
// provider implements it, the runner serves shards through the streaming
// byte path (Service.ExtractScan): decoded record bytes reach the
// tokenizer directly, with no intermediate PageSource strings and no DOM.
// pagestore.Store implements it.
type RawPageProvider interface {
	PageProvider
	// PagesBytes streams records [start, start+n) in the same stable
	// order as Pages (n < 0 streams to the end). The id and html slices
	// are only valid during the fn call — the provider may reuse the
	// backing buffers afterwards.
	PagesBytes(ctx context.Context, site string, start, n int, fn func(id, html []byte) error) error
}

// MemProvider is an in-memory PageProvider, for harvests over page sets
// already in memory (tests, small corpora, CLI runs over a directory of
// files). Add sites before handing it to a Runner; it must not be mutated
// during a run.
type MemProvider struct {
	sites map[string][]ceres.PageSource
}

// NewMemProvider builds an empty in-memory provider.
func NewMemProvider() *MemProvider {
	return &MemProvider{sites: map[string][]ceres.PageSource{}}
}

// Add registers a site's pages, replacing any previous set.
func (m *MemProvider) Add(site string, pages []ceres.PageSource) {
	m.sites[site] = pages
}

// Sites implements PageProvider.
func (m *MemProvider) Sites() ([]string, error) {
	out := make([]string, 0, len(m.sites))
	for s := range m.sites {
		out = append(out, s)
	}
	sort.Strings(out)
	return out, nil
}

// PageCount implements PageProvider.
func (m *MemProvider) PageCount(site string) (int, error) {
	pages, ok := m.sites[site]
	if !ok {
		return 0, fmt.Errorf("batch: unknown site %q", site)
	}
	return len(pages), nil
}

// Pages implements PageProvider. The pages are already in memory, so ctx
// is never consulted.
func (m *MemProvider) Pages(_ context.Context, site string, start, n int, fn func(ceres.PageSource) error) error {
	pages, ok := m.sites[site]
	if !ok {
		return fmt.Errorf("batch: unknown site %q", site)
	}
	if start < 0 {
		return fmt.Errorf("batch: negative start %d", start)
	}
	if start > len(pages) {
		start = len(pages)
	}
	end := len(pages)
	if n >= 0 && start+n < end {
		end = start + n
	}
	for _, p := range pages[start:end] {
		if err := fn(p); err != nil {
			return err
		}
	}
	return nil
}

// readPages materializes one bounded page range from a provider,
// appending into buf (which may be nil; pass a pooled slice's [:0] to
// reuse its capacity across shards). The slice is preallocated to the
// range size — resolved through PageCount for read-to-end ranges — so
// the append loop never regrows it.
func readPages(ctx context.Context, p PageProvider, site string, start, n int, buf []ceres.PageSource) ([]ceres.PageSource, error) {
	capHint := n
	if n < 0 {
		if total, err := p.PageCount(site); err == nil && total > start {
			capHint = total - start
		}
	}
	out := buf
	if capHint > 0 && cap(out) < capHint {
		out = make([]ceres.PageSource, 0, capHint)
	}
	err := p.Pages(ctx, site, start, n, func(pg ceres.PageSource) error {
		out = append(out, pg)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
