package batch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ceres"
)

// killSink commits through to the wrapped sink and cancels the run's
// context after a fixed number of commits — simulating a process killed
// while later shards are still mid-extraction.
type killSink struct {
	inner  TripleSink
	cancel context.CancelFunc
	after  int

	mu      sync.Mutex
	commits int
}

func (k *killSink) OpenShard(s Shard) (ShardWriter, error) {
	w, err := k.inner.OpenShard(s)
	if err != nil {
		return nil, err
	}
	return &killShard{sink: k, ShardWriter: w}, nil
}

type killShard struct {
	sink *killSink
	ShardWriter
}

func (w *killShard) Commit() error {
	err := w.ShardWriter.Commit()
	w.sink.mu.Lock()
	w.sink.commits++
	if w.sink.commits == w.sink.after {
		w.sink.cancel()
	}
	w.sink.mu.Unlock()
	return err
}

// harvestDirs is one complete set of run artifacts.
type harvestDirs struct {
	models, triples, checkpoint string
}

func newHarvestDirs(t *testing.T, base, name string) harvestDirs {
	t.Helper()
	root := filepath.Join(base, name)
	return harvestDirs{
		models:     filepath.Join(root, "models"),
		triples:    filepath.Join(root, "triples"),
		checkpoint: filepath.Join(root, "checkpoint.json"),
	}
}

// runHarvest executes one Run over the fixture into dirs, reopening every
// store the way a fresh process would. A non-nil cancelAfter kills the
// run after that many shard commits.
func runHarvest(t *testing.T, f *crawlFixture, dirs harvestDirs, job Job, killAfter int) (*Report, error) {
	t.Helper()
	store, err := ceres.NewDirStore(dirs.models)
	if err != nil {
		t.Fatal(err)
	}
	jsonl, err := NewJSONLSink(dirs.triples)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var sink TripleSink = jsonl
	if killAfter > 0 {
		kctx, cancel := context.WithCancel(ctx)
		defer cancel()
		ctx = kctx
		sink = &killSink{inner: jsonl, cancel: cancel, after: killAfter}
	}
	reg, err := ceres.OpenRegistry(ctx, store)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{
		Provider:       f.store,
		Sink:           sink,
		Registry:       reg,
		Store:          store,
		Pipeline:       f.pipeline,
		CheckpointPath: dirs.checkpoint,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r.Run(ctx, job)
}

func factsJSON(t *testing.T, rep *Report) []byte {
	t.Helper()
	b, err := json.Marshal(rep.Facts)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// dirContents maps file name to contents for every regular file in dir.
func dirContents(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = b
	}
	return out
}

// TestCheckpointResumeByteIdentical is the subsystem's acceptance test:
// kill a batch run mid-shard, resume it in a "fresh process", and the
// fused output — and every committed shard file — is byte-identical to an
// uninterrupted run, at any worker count. Runs under -race in CI.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	job := Job{
		ShardPages: 4,
		Fuse:       true,
		Fusion:     ceres.FusionOptions{Functional: map[string]bool{"releaseYear": true}},
	}
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			base := t.TempDir()
			f := newCrawlFixture(t, base, fixtureSites)
			job := job
			job.Workers = workers

			// Reference: one uninterrupted run.
			full := newHarvestDirs(t, base, "full")
			wantRep, err := runHarvest(t, f, full, job, 0)
			if err != nil {
				t.Fatal(err)
			}
			if wantRep.Triples == 0 || len(wantRep.Facts) == 0 {
				t.Fatalf("uninterrupted run extracted nothing: %+v", wantRep)
			}
			want := factsJSON(t, wantRep)

			// Killed run: cancelled after the first shard commit, while
			// (at workers > 1) other shards are mid-extraction.
			res := newHarvestDirs(t, base, "resumed")
			_, err = runHarvest(t, f, res, job, 1)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("killed run returned %v, want context.Canceled", err)
			}
			ck, err := os.ReadFile(res.checkpoint)
			if err != nil {
				t.Fatalf("killed run left no checkpoint: %v", err)
			}
			var m manifest
			if err := json.Unmarshal(ck, &m); err != nil {
				t.Fatal(err)
			}
			partial := 0
			for _, d := range m.Done {
				partial += len(d)
			}
			totalShards := 0
			for _, sp := range mustPlan(t, job, f).Sites {
				totalShards += sp.Shards
			}
			if partial == 0 || partial >= totalShards {
				t.Fatalf("kill left %d/%d shards done; need a genuine partial run", partial, totalShards)
			}

			// The kill/resume cycle must run on binary model artifacts:
			// DirStore publishes ceres.sitemodel/3 by default, and resume
			// reloads the checkpointed version from those bytes.
			binModels := 0
			filepath.WalkDir(res.models, func(path string, d os.DirEntry, err error) error {
				if err == nil && !d.IsDir() && filepath.Ext(path) == ".bin" {
					binModels++
				}
				return nil
			})
			if binModels == 0 {
				t.Fatal("killed run published no .bin models; resume would not exercise the binary codec")
			}

			// Resume in a fresh "process": new runner, reopened stores.
			gotRep, err := runHarvest(t, f, res, job, 0)
			if err != nil {
				t.Fatal(err)
			}
			if gotRep.Resumed == 0 {
				t.Fatal("resume re-ran every shard; checkpoint was ignored")
			}
			if got := factsJSON(t, gotRep); !bytes.Equal(got, want) {
				t.Fatalf("fused output diverged after resume:\n got %s\nwant %s", got, want)
			}

			// Every committed shard file matches too — no duplicates, no
			// gaps, identical bytes.
			wantFiles := dirContents(t, full.triples)
			gotFiles := dirContents(t, res.triples)
			if len(wantFiles) != len(gotFiles) {
				t.Fatalf("shard files differ: %d vs %d", len(gotFiles), len(wantFiles))
			}
			for name, wb := range wantFiles {
				if !bytes.Equal(gotFiles[name], wb) {
					t.Fatalf("shard file %s differs after resume", name)
				}
			}

			// A third run is pure resume: nothing executes, fusion replays
			// the same bytes.
			again, err := runHarvest(t, f, res, job, 0)
			if err != nil {
				t.Fatal(err)
			}
			if again.Shards != 0 || again.Pages != 0 {
				t.Fatalf("idempotent re-run executed work: %+v", again)
			}
			if got := factsJSON(t, again); !bytes.Equal(got, want) {
				t.Fatal("pure-replay run diverged")
			}
		})
	}
}

func mustPlan(t *testing.T, job Job, f *crawlFixture) *Plan {
	t.Helper()
	plan, err := PlanJob(job, f.store)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestCheckpointMismatch proves a manifest from a different plan refuses
// to resume instead of silently mixing outputs.
func TestCheckpointMismatch(t *testing.T) {
	base := t.TempDir()
	f := newCrawlFixture(t, base, []string{"blaxploitation.com"})
	dirs := newHarvestDirs(t, base, "run")
	if _, err := runHarvest(t, f, dirs, Job{ShardPages: 4}, 0); err != nil {
		t.Fatal(err)
	}
	// Same corpus, different shard size: the shard space is renumbered, so
	// the old Done entries are meaningless.
	if _, err := runHarvest(t, f, dirs, Job{ShardPages: 5}, 0); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("err = %v, want ErrCheckpointMismatch", err)
	}
}

// TestResumePinsModelWithoutTouchingSharedRegistry proves the two sides
// of the run-scoped registry contract: a resumed run extracts with the
// checkpoint-pinned model version even when the store and the shared
// serving registry have moved on to a newer one, and the shared registry
// is never rolled back to the pin.
func TestResumePinsModelWithoutTouchingSharedRegistry(t *testing.T) {
	base := t.TempDir()
	f := newCrawlFixture(t, base, []string{"kinobox.cz"})
	const site = "kinobox.cz"
	job := Job{ShardPages: 8, Workers: 2, Fuse: true}

	// Reference: uninterrupted run, private registry, its own dirs.
	full := newHarvestDirs(t, base, "full")
	wantRep, err := runHarvest(t, f, full, job, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := factsJSON(t, wantRep)

	// Killed run: trains v1, commits one shard, dies.
	res := newHarvestDirs(t, base, "resumed")
	if _, err := runHarvest(t, f, res, job, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run returned %v", err)
	}

	// The fleet moves on: a different model (tighter threshold, different
	// output) becomes v2 in the store and in the serving registry.
	store, err := ceres.NewDirStore(res.models)
	if err != nil {
		t.Fatal(err)
	}
	strict, err := ceres.NewPipeline(f.kb, ceres.WithThreshold(0.99)).Train(context.Background(), f.pages[site])
	if err != nil {
		t.Fatal(err)
	}
	v2, err := store.Publish(site, strict)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != 2 {
		t.Fatalf("expected version 2, got %d", v2)
	}
	shared, err := ceres.OpenRegistry(context.Background(), store) // boots at v2, like a live daemon
	if err != nil {
		t.Fatal(err)
	}

	// Resume with the shared registry wired in.
	jsonl, err := NewJSONLSink(res.triples)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{
		Provider:       f.store,
		Sink:           jsonl,
		Registry:       shared,
		Store:          store,
		Pipeline:       f.pipeline,
		CheckpointPath: res.checkpoint,
	})
	if err != nil {
		t.Fatal(err)
	}
	gotRep, err := r.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if gotRep.Sites[0].Version != 1 {
		t.Fatalf("resume served version %d, want pinned 1", gotRep.Sites[0].Version)
	}
	if got := factsJSON(t, gotRep); !bytes.Equal(got, want) {
		t.Fatal("pinned resume diverged from uninterrupted run")
	}
	// The serving fleet still holds v2 — the pin never leaked out.
	if e, ok := shared.Lookup(site); !ok || e.Version != 2 {
		t.Fatalf("shared registry rolled back: %+v", e)
	}
}
