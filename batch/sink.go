package batch

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"ceres"
	"ceres/internal/fsatomic"
)

// TripleSink receives a harvest's extracted triples, one writer per
// shard. A sink must tolerate concurrent OpenShard calls (one per
// in-flight shard) and must make a shard's output visible atomically at
// Commit: a shard that never commits — crash, cancellation — must leave
// no partial output, because the checkpoint will re-run it after a
// resume.
type TripleSink interface {
	OpenShard(s Shard) (ShardWriter, error)
}

// ShardWriter accumulates one shard's triples. Exactly one of Commit or
// Abort terminates it; Write is never called concurrently on one writer.
type ShardWriter interface {
	Write(t ceres.Triple) error
	// Commit publishes the shard's triples atomically (replacing the
	// output of any previous attempt at the same shard).
	Commit() error
	// Abort discards everything written.
	Abort() error
}

// Replayer is implemented by sinks that can stream committed triples
// back, shard by shard — what the fusion stage and resumed runs consume.
// Replay must stream in the given shard order and error on a shard whose
// output is missing.
type Replayer interface {
	Replay(shards []Shard, fn func(site string, t ceres.Triple) error) error
}

// shardFileName is the committed output file of one shard.
func shardFileName(s Shard) string {
	return fmt.Sprintf("%s.%05d.jsonl", url.PathEscape(s.Site), s.Index)
}

// JSONLSink persists each shard as one JSON-lines file
// (<escaped-site>.<index>.jsonl) in a directory, written to a temp file
// and renamed into place on Commit — the durable sink of a crawl-scale
// harvest, and a Replayer, so fusion and resumed runs can stream every
// committed triple back without holding them in memory.
type JSONLSink struct {
	dir string
}

// NewJSONLSink opens (creating if needed) a sharded JSONL sink rooted at
// dir. Stale shard temp files — what a killed process's in-flight shards
// leave behind — are swept on open; only one process may sink into a
// directory at a time (which the batch checkpoint protocol already
// assumes).
func NewJSONLSink(dir string) (*JSONLSink, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("batch: opening sink: %w", err)
	}
	if ents, err := os.ReadDir(dir); err == nil {
		for _, e := range ents {
			if !e.IsDir() && strings.HasPrefix(e.Name(), ".shard-") {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	return &JSONLSink{dir: dir}, nil
}

// Dir returns the sink's root directory.
func (s *JSONLSink) Dir() string { return s.dir }

// OpenShard implements TripleSink.
func (s *JSONLSink) OpenShard(sh Shard) (ShardWriter, error) {
	tmp, err := os.CreateTemp(s.dir, ".shard-*")
	if err != nil {
		return nil, fmt.Errorf("batch: opening shard output: %w", err)
	}
	bw := bufio.NewWriterSize(tmp, 64<<10)
	return &jsonlShard{
		f:     tmp,
		bw:    bw,
		enc:   json.NewEncoder(bw),
		final: filepath.Join(s.dir, shardFileName(sh)),
	}, nil
}

type jsonlShard struct {
	f     *os.File
	bw    *bufio.Writer
	enc   *json.Encoder
	final string
}

func (w *jsonlShard) Write(t ceres.Triple) error {
	if err := w.enc.Encode(t); err != nil {
		return fmt.Errorf("batch: writing shard output: %w", err)
	}
	return nil
}

func (w *jsonlShard) Commit() error {
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		os.Remove(w.f.Name())
		return fmt.Errorf("batch: committing shard output: %w", err)
	}
	if err := fsatomic.Commit(w.f, w.final); err != nil {
		return fmt.Errorf("batch: committing shard output: %w", err)
	}
	return nil
}

func (w *jsonlShard) Abort() error {
	w.f.Close()
	return os.Remove(w.f.Name())
}

// Replay implements Replayer: stream the committed files of the given
// shards, in order.
func (s *JSONLSink) Replay(shards []Shard, fn func(site string, t ceres.Triple) error) error {
	for _, sh := range shards {
		f, err := os.Open(filepath.Join(s.dir, shardFileName(sh)))
		if err != nil {
			return fmt.Errorf("batch: replaying shard %s/%d: %w", sh.Site, sh.Index, err)
		}
		dec := json.NewDecoder(bufio.NewReaderSize(f, 64<<10))
		for {
			var t ceres.Triple
			if err := dec.Decode(&t); err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				f.Close()
				return fmt.Errorf("batch: replaying shard %s/%d: %w", sh.Site, sh.Index, err)
			}
			if err := fn(sh.Site, t); err != nil {
				f.Close()
				return err
			}
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("batch: replaying shard %s/%d: %w", sh.Site, sh.Index, err)
		}
	}
	return nil
}

// CountingSink tallies committed triples without keeping them — the
// cheapest sink for dry runs and throughput measurement. It does not
// implement Replayer, so it cannot feed the fusion stage, and counts
// reflect only shards executed by this process (resumed shards are not
// re-counted).
type CountingSink struct {
	mu          sync.Mutex
	triples     int
	bySite      map[string]int
	byPredicate map[string]int
}

// SinkCounts is a CountingSink snapshot.
type SinkCounts struct {
	Triples     int
	BySite      map[string]int
	ByPredicate map[string]int
}

// NewCountingSink builds an empty counting sink.
func NewCountingSink() *CountingSink {
	return &CountingSink{bySite: map[string]int{}, byPredicate: map[string]int{}}
}

// Counts snapshots the committed tallies.
func (s *CountingSink) Counts() SinkCounts {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := SinkCounts{Triples: s.triples, BySite: map[string]int{}, ByPredicate: map[string]int{}}
	for k, v := range s.bySite {
		out.BySite[k] = v
	}
	for k, v := range s.byPredicate {
		out.ByPredicate[k] = v
	}
	return out
}

// OpenShard implements TripleSink.
func (s *CountingSink) OpenShard(sh Shard) (ShardWriter, error) {
	return &countingShard{sink: s, site: sh.Site, byPredicate: map[string]int{}}, nil
}

type countingShard struct {
	sink        *CountingSink
	site        string
	triples     int
	byPredicate map[string]int
}

func (w *countingShard) Write(t ceres.Triple) error {
	w.triples++
	w.byPredicate[t.Predicate]++
	return nil
}

func (w *countingShard) Commit() error {
	w.sink.mu.Lock()
	defer w.sink.mu.Unlock()
	w.sink.triples += w.triples
	w.sink.bySite[w.site] += w.triples
	for p, n := range w.byPredicate {
		w.sink.byPredicate[p] += n
	}
	return nil
}

func (w *countingShard) Abort() error { return nil }

// CollectSink keeps committed triples in memory, per shard — the sink
// for in-process harvests whose results are consumed directly (CLI
// output, tests). It implements Replayer. Being in-memory, it cannot
// resume a previous process's output: use JSONLSink with a checkpoint for
// that.
type CollectSink struct {
	mu     sync.Mutex
	shards map[Shard][]ceres.Triple
}

// NewCollectSink builds an empty collecting sink.
func NewCollectSink() *CollectSink {
	return &CollectSink{shards: map[Shard][]ceres.Triple{}}
}

// OpenShard implements TripleSink.
func (s *CollectSink) OpenShard(sh Shard) (ShardWriter, error) {
	return &collectShard{sink: s, shard: sh}, nil
}

type collectShard struct {
	sink    *CollectSink
	shard   Shard
	triples []ceres.Triple
}

func (w *collectShard) Write(t ceres.Triple) error {
	w.triples = append(w.triples, t)
	return nil
}

func (w *collectShard) Commit() error {
	w.sink.mu.Lock()
	defer w.sink.mu.Unlock()
	w.sink.shards[w.shard] = w.triples
	return nil
}

func (w *collectShard) Abort() error { return nil }

// Replay implements Replayer over the in-memory shards.
func (s *CollectSink) Replay(shards []Shard, fn func(site string, t ceres.Triple) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sh := range shards {
		triples, ok := s.shards[sh]
		if !ok {
			return fmt.Errorf("batch: replaying shard %s/%d: not collected", sh.Site, sh.Index)
		}
		for _, t := range triples {
			if err := fn(sh.Site, t); err != nil {
				return err
			}
		}
	}
	return nil
}

// Triples returns every committed triple in deterministic (site, shard)
// order.
func (s *CollectSink) Triples() []ceres.Triple {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]Shard, 0, len(s.shards))
	for sh := range s.shards {
		keys = append(keys, sh)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Site != keys[j].Site {
			return keys[i].Site < keys[j].Site
		}
		return keys[i].Index < keys[j].Index
	})
	var out []ceres.Triple
	for _, sh := range keys {
		out = append(out, s.shards[sh]...)
	}
	return out
}
