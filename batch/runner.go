package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ceres"
	"ceres/internal/obs"
)

// ErrSinkNotReplayable reports a Job with Fuse set over a sink that
// cannot stream its output back; test with errors.Is.
var ErrSinkNotReplayable = errors.New("batch: fusion requires a sink implementing Replayer")

// Config wires a Runner to its collaborators.
type Config struct {
	// Provider supplies the pages (required).
	Provider PageProvider
	// Sink receives the extracted triples (required).
	Sink TripleSink
	// Registry optionally connects the run to a serving fleet: models are
	// *resolved* from it (a site already registered is served without
	// retraining) and models the run *trains* are published into it, so a
	// batch harvest feeds online serving. The run itself extracts through
	// a private run-scoped table, so neither a checkpoint-pinned older
	// version nor a mid-run external publish ever rolls back or perturbs
	// the shared fleet — and the fleet can hot-swap freely without
	// changing what a resumed run extracts with.
	Registry *ceres.Registry
	// Store persists newly trained models (DirStore.Publish) and resolves
	// the exact checkpointed version on resume; nil keeps models
	// process-local (a resumed process then retrains deterministically).
	Store ceres.ModelStore
	// Pipeline trains sites that have no published model; nil means such
	// sites fail with ErrNotTrained.
	Pipeline *ceres.Pipeline
	// CheckpointPath is the manifest file recording committed shards;
	// empty disables checkpointing (the run is not resumable).
	CheckpointPath string
	// Metrics instruments the runner (shards/pages/triples counters and
	// a live pages-per-second gauge, DESIGN.md §12); nil leaves it
	// uninstrumented.
	Metrics *ceres.Metrics
	// Tracer samples per-shard span trees (DESIGN.md §13): a batch.shard
	// root with resolve (train nested under it, with the pipeline's
	// parse/cluster/annotate/fit children), extract (with its
	// parse/route/score stage spans), sink and checkpoint children. Nil
	// traces nothing and costs nothing.
	Tracer *ceres.Tracer
}

// Runner executes batch harvest jobs: shard-parallel extraction through
// the serving stack, per-site training with store publish, checkpointed
// progress and a streaming fusion stage. A Runner is safe for one Run at
// a time.
type Runner struct {
	cfg    Config
	shared *ceres.Registry // cfg.Registry; may be nil
	reg    *ceres.Registry // run-scoped serving table
	svc    *ceres.Service
	// shardBufs pools per-shard page slices (*[]ceres.PageSource):
	// a worker borrows one per shard, so steady-state shard reads reuse
	// capacity instead of growing a fresh slice per shard. The strings
	// inside are owned by the extraction results, never by the slice, so
	// reuse is safe.
	shardBufs sync.Pool
	metrics   *runnerMetrics // nil = uninstrumented
	// runStart (unix nanos; 0 = no run yet) and runPages feed the live
	// pages-per-second gauge, which is read from the metrics handler's
	// goroutine while a run is in flight.
	runStart atomic.Int64
	runPages atomic.Int64
	// stages accumulates the run's per-stage wall time across workers
	// (nanosecond sums; reset per Run, snapshotted into Report.Stages).
	stages stageAcc
}

// stageAcc sums stage wall time across shard workers.
type stageAcc struct {
	resolve, train, extract, parse, route, score, sink, checkpoint, fuse atomic.Int64
}

func (a *stageAcc) reset() {
	for _, v := range []*atomic.Int64{&a.resolve, &a.train, &a.extract, &a.parse, &a.route, &a.score, &a.sink, &a.checkpoint, &a.fuse} {
		v.Store(0)
	}
}

// StageDurations is a run's per-stage wall-time breakdown, summed across
// shard workers — so a stage's total may exceed the run's elapsed wall
// clock, and the ratio between the two is the stage's effective
// parallelism. Train is nested inside Resolve (a site's first shard
// resolves its model, training it when nothing is published);
// Parse/Route/Score are the serve-side stages nested inside Extract.
type StageDurations struct {
	Resolve    time.Duration `json:"resolve"`
	Train      time.Duration `json:"train"`
	Extract    time.Duration `json:"extract"`
	Parse      time.Duration `json:"parse"`
	Route      time.Duration `json:"route"`
	Score      time.Duration `json:"score"`
	Sink       time.Duration `json:"sink"`
	Checkpoint time.Duration `json:"checkpoint"`
	Fuse       time.Duration `json:"fuse"`
}

// Each visits the stages in pipeline order.
func (s StageDurations) Each(f func(name string, d time.Duration)) {
	f("resolve", s.Resolve)
	f("train", s.Train)
	f("extract", s.Extract)
	f("parse", s.Parse)
	f("route", s.Route)
	f("score", s.Score)
	f("sink", s.Sink)
	f("checkpoint", s.Checkpoint)
	f("fuse", s.Fuse)
}

func (a *stageAcc) snapshot() StageDurations {
	return StageDurations{
		Resolve:    time.Duration(a.resolve.Load()),
		Train:      time.Duration(a.train.Load()),
		Extract:    time.Duration(a.extract.Load()),
		Parse:      time.Duration(a.parse.Load()),
		Route:      time.Duration(a.route.Load()),
		Score:      time.Duration(a.score.Load()),
		Sink:       time.Duration(a.sink.Load()),
		Checkpoint: time.Duration(a.checkpoint.Load()),
		Fuse:       time.Duration(a.fuse.Load()),
	}
}

// runnerMetrics is the runner's instrument panel (all obs operations are
// nil-safe, matching the service's discipline).
type runnerMetrics struct {
	shards  *obs.Counter // ceres_batch_shards_done_total
	pages   *obs.Counter // ceres_batch_pages_total
	triples *obs.Counter // ceres_batch_triples_total
}

func (rm *runnerMetrics) shardDone(pages, triples int) {
	if rm == nil {
		return
	}
	rm.shards.Inc()
	rm.pages.Add(int64(pages))
	rm.triples.Add(int64(triples))
}

// NewRunner builds a runner over the configuration.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.Provider == nil {
		return nil, fmt.Errorf("batch: config needs a Provider")
	}
	if cfg.Sink == nil {
		return nil, fmt.Errorf("batch: config needs a Sink")
	}
	reg := ceres.NewRegistry()
	r := &Runner{cfg: cfg, shared: cfg.Registry, reg: reg, svc: ceres.NewService(reg)}
	if m := cfg.Metrics; m != nil {
		r.metrics = &runnerMetrics{
			shards: m.Counter("ceres_batch_shards_done_total",
				"Shards extracted and committed by this run (resumed shards excluded)."),
			pages: m.Counter("ceres_batch_pages_total",
				"Pages extracted by batch runs."),
			triples: m.Counter("ceres_batch_triples_total",
				"Triples written to the sink by batch runs."),
		}
		m.GaugeFunc("ceres_batch_pages_per_second",
			"Live page throughput of the current (or last) run.",
			func() float64 {
				start := r.runStart.Load()
				if start == 0 {
					return 0
				}
				elapsed := time.Since(time.Unix(0, start)).Seconds()
				if elapsed <= 0 {
					return 0
				}
				return float64(r.runPages.Load()) / elapsed
			})
	}
	return r, nil
}

// Registry returns the registry the runner resolves models from and
// publishes trained models into: the configured shared one, or the
// run-scoped table when none was configured.
func (r *Runner) Registry() *ceres.Registry {
	if r.shared != nil {
		return r.shared
	}
	return r.reg
}

// Service returns a request-scoped extraction service over the models
// the runner is serving with.
func (r *Runner) Service() *ceres.Service { return r.svc }

// siteState is the once-per-site model resolution shared by a site's
// shard workers.
type siteState struct {
	once       sync.Once
	version    int
	trained    bool
	skipReason string // non-empty: site cannot be harvested
	infraErr   error  // non-nil: abort the run
}

// siteTally accumulates one site's run counters under the runner mutex.
type siteTally struct {
	pages, triples, done, resumed int
	err                           string
}

// SiteReport is one site's slice of a Report.
type SiteReport struct {
	Site string
	// Pages and Shards describe the plan; Done counts shards committed
	// across all runs of the job, Resumed the ones this run skipped
	// because a previous run had already committed them.
	Pages, Shards, Done, Resumed int
	// Triples counts this run's written triples — or, when the fusion
	// stage ran, the all-runs total streamed out of the sink.
	Triples int
	// Version is the model version that served the site; Trained reports
	// whether this run trained it.
	Version int
	Trained bool
	// Skipped marks a site recorded as unharvestable (Err holds the
	// reason, e.g. no seed-KB alignment).
	Skipped bool
	Err     string
}

// Report is the outcome of one Run.
type Report struct {
	// Sites reports per-site outcomes in plan order.
	Sites []SiteReport
	// Pages and Triples count this run's extraction work; Shards the
	// shards it executed; Resumed the shards restored from the
	// checkpoint.
	Pages, Triples, Shards, Resumed int
	// Facts is the fused output (Job.Fuse), aggregated by streaming every
	// committed shard through a ceres.Fuser in plan order.
	Facts []ceres.FusedFact
	// Elapsed is the run's wall-clock time; Stages breaks the work down
	// per pipeline stage (summed across workers, so stage totals can
	// exceed Elapsed).
	Elapsed time.Duration
	Stages  StageDurations
}

// Run executes one job to completion: plan, resume from the checkpoint,
// execute remaining shards on Workers goroutines, and (with Job.Fuse)
// stream the committed output through fusion. It returns ctx.Err() when
// cancelled — the checkpoint then holds every shard committed before the
// cancellation, and a later Run of the same job resumes there — and a
// non-nil error for infrastructure failures (sink, checkpoint, store or
// provider I/O). Per-site failures (untrainable sites of a long-tail
// crawl) do not fail the run; they are reported per site.
func (r *Runner) Run(ctx context.Context, job Job) (*Report, error) {
	start := time.Now()
	r.runStart.Store(start.UnixNano())
	r.runPages.Store(0)
	r.stages.reset()
	plan, err := PlanJob(job, r.cfg.Provider)
	if err != nil {
		return nil, err
	}
	ck, err := loadCheckpoint(r.cfg.CheckpointPath, plan)
	if err != nil {
		return nil, err
	}

	states := make(map[string]*siteState, len(plan.Sites))
	tallies := make(map[string]*siteTally, len(plan.Sites))
	for _, sp := range plan.Sites {
		states[sp.Site] = &siteState{}
		tallies[sp.Site] = &siteTally{}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		infraErr error
	)
	fail := func(err error) {
		mu.Lock()
		if infraErr == nil {
			infraErr = err
			cancel()
		}
		mu.Unlock()
	}

	workers := job.workers()
	if workers > len(plan.Shards) {
		workers = len(plan.Shards)
	}
	if workers < 1 {
		workers = 1
	}
	shardCh := make(chan Shard)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for shard := range shardCh {
				r.runShard(runCtx, job, ck, states[shard.Site], tallies[shard.Site], &mu, fail, shard)
			}
		}()
	}
feed:
	for _, shard := range plan.Shards {
		select {
		case shardCh <- shard:
		case <-runCtx.Done():
			break feed
		}
	}
	close(shardCh)
	wg.Wait()

	if infraErr != nil {
		return nil, infraErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rep := &Report{Elapsed: time.Since(start)}
	fuseTally := map[string]int{}
	if job.Fuse {
		fuseStart := time.Now()
		replayer, ok := r.cfg.Sink.(Replayer)
		if !ok {
			return nil, fmt.Errorf("%w (%T)", ErrSinkNotReplayable, r.cfg.Sink)
		}
		// Replay only committed shards, in plan order: the order is what
		// makes fused beliefs bit-reproducible run over run, interrupted
		// or not.
		var done []Shard
		for _, shard := range plan.Shards {
			if ck.isDone(shard.Site, shard.Index) {
				done = append(done, shard)
			}
		}
		fuser := ceres.NewFuser(job.Fusion)
		err := replayer.Replay(done, func(site string, t ceres.Triple) error {
			fuser.ObserveTriple(site, t)
			fuseTally[site]++
			return nil
		})
		if err != nil {
			return nil, err
		}
		rep.Facts = fuser.Facts()
		fuser.Release()
		r.stages.fuse.Add(int64(time.Since(fuseStart)))
	}
	rep.Stages = r.stages.snapshot()

	for _, sp := range plan.Sites {
		st, tally := states[sp.Site], tallies[sp.Site]
		sr := SiteReport{
			Site:    sp.Site,
			Pages:   sp.Pages,
			Shards:  sp.Shards,
			Done:    ck.doneCount(sp.Site),
			Resumed: tally.resumed,
			Triples: tally.triples,
			Version: st.version,
			Trained: st.trained,
			Err:     tally.err,
		}
		if reason, ok := ck.skippedSite(sp.Site); ok {
			sr.Skipped = true
			sr.Err = reason
		}
		if v, ok := ck.modelVersion(sp.Site); ok && sr.Version == 0 {
			sr.Version = v
		}
		if job.Fuse {
			sr.Triples = fuseTally[sp.Site]
		}
		rep.Sites = append(rep.Sites, sr)
		rep.Pages += tally.pages
		rep.Triples += tally.triples
		rep.Shards += tally.done
		rep.Resumed += tally.resumed
	}
	return rep, nil
}

// runShard executes one shard end to end: resolve the site's model (the
// first worker to reach a site trains or loads it), stream the shard's
// pages from the provider, extract through the Service, commit the
// triples to the sink and record the shard in the checkpoint.
func (r *Runner) runShard(ctx context.Context, job Job, ck *checkpoint, st *siteState, tally *siteTally, mu *sync.Mutex, fail func(error), shard Shard) {
	if ctx.Err() != nil {
		return
	}
	if ck.isDone(shard.Site, shard.Index) {
		mu.Lock()
		tally.resumed++
		mu.Unlock()
		return
	}
	sp := r.cfg.Tracer.StartRoot("batch.shard")
	defer sp.End()
	sp.SetStr("site", shard.Site)
	sp.SetInt("shard", int64(shard.Index))
	st.once.Do(func() {
		rsp := sp.StartChild("resolve")
		t0 := time.Now()
		r.ensureModel(ceres.ContextWithSpan(ctx, rsp), job, ck, st, shard.Site)
		r.stages.resolve.Add(int64(time.Since(t0)))
		rsp.EndErr(st.infraErr)
	})
	if st.infraErr != nil {
		sp.SetErr(st.infraErr)
		fail(st.infraErr)
		return
	}
	if st.skipReason != "" {
		sp.SetStr("skipped", st.skipReason)
		return
	}
	// Batch runs always collect the per-stage serve breakdown: the stage
	// report is part of the run's output, not a sampling decision.
	opts := job.optionsFor(shard.Site)
	opts.CollectStages = true
	esp := sp.StartChild("extract")
	extractStart := time.Now()
	var resp *ceres.ExtractResponse
	var err error
	if rp, ok := r.cfg.Provider.(RawPageProvider); ok {
		// Byte path: record bytes flow from the provider straight into
		// the streaming serve path — no PageSource materialization.
		resp, err = r.svc.ExtractScan(ctx, shard.Site, opts,
			func(yield func(id string, html []byte) error) error {
				return rp.PagesBytes(ctx, shard.Site, shard.Start, shard.Pages,
					func(id, html []byte) error { return yield(string(id), html) })
			})
	} else {
		bufp, _ := r.shardBufs.Get().(*[]ceres.PageSource)
		if bufp == nil {
			bufp = new([]ceres.PageSource)
		}
		var pages []ceres.PageSource
		pages, err = readPages(ctx, r.cfg.Provider, shard.Site, shard.Start, shard.Pages, (*bufp)[:0])
		if err != nil {
			esp.EndErr(err)
			sp.SetErr(err)
			fail(err)
			return
		}
		resp, err = r.svc.Extract(ctx, ceres.ExtractRequest{
			Site:    shard.Site,
			Pages:   pages,
			Options: opts,
		})
		// The service has deep-copied nothing it still needs from pages —
		// extraction results own their strings — so the shard slice recycles.
		*bufp = pages
		r.shardBufs.Put(bufp)
	}
	r.stages.extract.Add(int64(time.Since(extractStart)))
	if err != nil {
		esp.EndErr(err)
		sp.SetErr(err)
		if ctx.Err() != nil {
			return // cancelled mid-shard: nothing committed, resume re-runs it
		}
		mu.Lock()
		tally.err = err.Error()
		mu.Unlock()
		return
	}
	esp.AddTimed("parse", resp.Stats.Stages.Parse)
	esp.AddTimed("route", resp.Stats.Stages.Route)
	esp.AddTimed("score", resp.Stats.Stages.Score)
	esp.End()
	r.stages.parse.Add(int64(resp.Stats.Stages.Parse))
	r.stages.route.Add(int64(resp.Stats.Stages.Route))
	r.stages.score.Add(int64(resp.Stats.Stages.Score))
	ssp := sp.StartChild("sink")
	sinkStart := time.Now()
	w, err := r.cfg.Sink.OpenShard(shard)
	if err != nil {
		ssp.EndErr(err)
		sp.SetErr(err)
		fail(err)
		return
	}
	for _, t := range resp.Triples {
		if err := w.Write(t); err != nil {
			w.Abort()
			ssp.EndErr(err)
			sp.SetErr(err)
			fail(err)
			return
		}
	}
	if err := w.Commit(); err != nil {
		ssp.EndErr(err)
		sp.SetErr(err)
		fail(err)
		return
	}
	ssp.End()
	r.stages.sink.Add(int64(time.Since(sinkStart)))
	csp := sp.StartChild("checkpoint")
	ckStart := time.Now()
	if err := ck.markDone(shard.Site, shard.Index); err != nil {
		csp.EndErr(err)
		sp.SetErr(err)
		fail(err)
		return
	}
	csp.End()
	r.stages.checkpoint.Add(int64(time.Since(ckStart)))
	sp.SetInt("pages", int64(resp.Stats.Pages))
	sp.SetInt("triples", int64(len(resp.Triples)))
	mu.Lock()
	tally.pages += resp.Stats.Pages
	tally.triples += len(resp.Triples)
	tally.done++
	mu.Unlock()
	r.runPages.Add(int64(resp.Stats.Pages))
	r.metrics.shardDone(resp.Stats.Pages, len(resp.Triples))
}

// ensureModel resolves the model serving a site, in precedence order: the
// checkpointed version (reloaded from the store so a resume extracts with
// the exact artifact), the shared registry's current entry, the store's
// latest version, and finally training through the pipeline — publishing
// the new model to the store (durable version number) and the shared
// registry. Whatever wins lands in the run-scoped table the shards
// extract through; the shared registry only ever receives newly trained
// models, never a pinned rollback.
func (r *Runner) ensureModel(ctx context.Context, job Job, ck *checkpoint, st *siteState, site string) {
	if reason, ok := ck.skippedSite(site); ok {
		st.skipReason = reason
		return
	}
	if v, ok := ck.modelVersion(site); ok && r.cfg.Store != nil {
		if e, ok := r.reg.Lookup(site); ok && e.Version == v {
			st.version = v
			return
		}
		m, err := r.cfg.Store.Open(site, v)
		if err != nil {
			st.infraErr = fmt.Errorf("batch: site %q: checkpointed model version %d: %w", site, v, err)
			return
		}
		r.reg.Publish(site, v, m)
		st.version = v
		return
	}
	if e, ok := r.reg.Lookup(site); ok {
		st.version = e.Version
		if err := ck.setModelVersion(site, e.Version); err != nil {
			st.infraErr = err
		}
		return
	}
	if r.shared != nil {
		if e, ok := r.shared.Lookup(site); ok {
			r.reg.Publish(site, e.Version, e.Model)
			st.version = e.Version
			if err := ck.setModelVersion(site, e.Version); err != nil {
				st.infraErr = err
			}
			return
		}
	}
	if r.cfg.Store != nil {
		m, v, err := r.cfg.Store.Latest(site)
		if err == nil {
			r.reg.Publish(site, v, m)
			st.version = v
			if err := ck.setModelVersion(site, v); err != nil {
				st.infraErr = err
			}
			return
		}
		if !errors.Is(err, ceres.ErrModelNotFound) {
			st.infraErr = err
			return
		}
	}
	if r.cfg.Pipeline == nil {
		st.skipReason = ceres.ErrNotTrained.Error()
		if err := ck.setSkipped(site, st.skipReason); err != nil {
			st.infraErr = err
		}
		return
	}
	n := job.TrainPages
	if n <= 0 {
		n = -1
	}
	pages, err := readPages(ctx, r.cfg.Provider, site, 0, n, nil)
	if err != nil {
		st.infraErr = err
		return
	}
	tsp := ceres.SpanFromContext(ctx).StartChild("train")
	tsp.SetInt("pages", int64(len(pages)))
	trainStart := time.Now()
	m, err := r.cfg.Pipeline.Train(ceres.ContextWithSpan(ctx, tsp), pages)
	r.stages.train.Add(int64(time.Since(trainStart)))
	tsp.EndErr(err)
	if err != nil {
		if ctx.Err() != nil {
			// Cancellation, not a site failure: leave no skip record so a
			// resume retrains.
			st.skipReason = "run cancelled"
			return
		}
		// Training failures are deterministic properties of the site and
		// seed KB (e.g. ErrNoAnnotations on a long-tail site): persist the
		// skip so resumes don't pay for retraining.
		st.skipReason = err.Error()
		if err := ck.setSkipped(site, st.skipReason); err != nil {
			st.infraErr = err
		}
		return
	}
	version := 0
	if r.cfg.Store != nil {
		version, err = r.cfg.Store.Publish(site, m)
		if err != nil {
			st.infraErr = err
			return
		}
		r.reg.Publish(site, version, m)
	} else {
		version = r.reg.PublishNext(site, m)
	}
	if r.shared != nil {
		// Freshly trained models go straight into the serving fleet.
		r.shared.Publish(site, version, m)
	}
	st.version = version
	st.trained = true
	if err := ck.setModelVersion(site, version); err != nil {
		st.infraErr = err
	}
}
