package batch

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"ceres"
	"ceres/internal/websim"
	"ceres/pagestore"
)

// crawlFixture is a scaled-down websim crawl ingested into a page store.
type crawlFixture struct {
	store    *pagestore.Store
	kb       *ceres.KB
	pipeline *ceres.Pipeline
	sites    []string
	pages    map[string][]ceres.PageSource
}

// fixtureSites mixes trainable long-tail sites with boxofficemojo.com,
// whose chart-only pages must produce a skip, not triples (§5.5.1).
var fixtureSites = []string{"blaxploitation.com", "kinobox.cz", "laborfilms.com", "boxofficemojo.com"}

func newCrawlFixture(t testing.TB, dir string, sites []string) *crawlFixture {
	t.Helper()
	crawl := websim.GenerateCrawl(websim.CrawlConfig{Seed: 1, Scale: 0.02, MaxSitePages: 60, Sites: sites})
	store, err := pagestore.Open(filepath.Join(dir, "pages"))
	if err != nil {
		t.Fatal(err)
	}
	f := &crawlFixture{
		store: store,
		kb:    crawl.SeedKB,
		pages: map[string][]ceres.PageSource{},
	}
	for i, site := range crawl.Sites {
		var pages []ceres.PageSource
		for _, p := range site.Pages {
			pages = append(pages, ceres.PageSource{ID: p.ID, HTML: p.HTML})
		}
		name := crawl.Specs[i].Name
		w, werr := store.Writer(name)
		if werr != nil {
			t.Fatal(werr)
		}
		w.SegmentPages = 10 // force multi-segment partitions
		if err := w.AppendAll(pages); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		f.sites = append(f.sites, name)
		f.pages[name] = pages
	}
	f.pipeline = ceres.NewPipeline(f.kb, ceres.WithThreshold(0.5))
	return f
}

func TestPlanJob(t *testing.T) {
	p := NewMemProvider()
	p.Add("a", make([]ceres.PageSource, 10))
	p.Add("b", make([]ceres.PageSource, 25))
	p.Add("c", nil)
	for i := range 10 {
		p.sites["a"][i] = ceres.PageSource{ID: "x", HTML: ""}
	}
	plan, err := PlanJob(Job{ShardPages: 10}, p)
	if err != nil {
		t.Fatal(err)
	}
	wantSites := []SitePlan{{Site: "a", Pages: 10, Shards: 1}, {Site: "b", Pages: 25, Shards: 3}, {Site: "c"}}
	if !reflect.DeepEqual(plan.Sites, wantSites) {
		t.Fatalf("Sites = %+v", plan.Sites)
	}
	wantShards := []Shard{
		{Site: "a", Index: 0, Start: 0, Pages: 10},
		{Site: "b", Index: 0, Start: 0, Pages: 10},
		{Site: "b", Index: 1, Start: 10, Pages: 10},
		{Site: "b", Index: 2, Start: 20, Pages: 5},
	}
	if !reflect.DeepEqual(plan.Shards, wantShards) {
		t.Fatalf("Shards = %+v", plan.Shards)
	}
	if plan.TotalPages() != 35 {
		t.Fatalf("TotalPages = %d", plan.TotalPages())
	}

	if _, err := PlanJob(Job{Sites: []string{"a", "a"}}, p); err == nil {
		t.Fatal("duplicate site accepted")
	}
	if _, err := PlanJob(Job{Sites: []string{"nosuch"}}, p); err == nil {
		t.Fatal("unknown site accepted")
	}
}

// TestRunnerMatchesDirectServe proves the sharded batch path extracts
// exactly what a direct train-then-extract over each full site does:
// sharding, parallelism and the Service layer add no drift.
func TestRunnerMatchesDirectServe(t *testing.T) {
	f := newCrawlFixture(t, t.TempDir(), fixtureSites)
	sink := NewCollectSink()
	r, err := NewRunner(Config{Provider: f.store, Sink: sink, Pipeline: f.pipeline})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background(), Job{ShardPages: 7, Workers: 4, Fuse: true})
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild per-site triple sets by replaying the committed shards in
	// plan order (skipped sites — at least the chart-only one — have
	// none).
	harvested := map[string]bool{}
	for _, sr := range rep.Sites {
		if !sr.Skipped && sr.Err == "" {
			harvested[sr.Site] = true
		}
	}
	if len(harvested) < 2 {
		t.Fatalf("fixture too thin: only %v harvested", harvested)
	}
	plan, err := PlanJob(Job{ShardPages: 7}, f.store)
	if err != nil {
		t.Fatal(err)
	}
	var done []Shard
	for _, sh := range plan.Shards {
		if harvested[sh.Site] {
			done = append(done, sh)
		}
	}
	got := map[string][]ceres.Triple{}
	if err := sink.Replay(done, func(site string, tr ceres.Triple) error {
		got[site] = append(got[site], tr)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	for _, site := range f.sites {
		if !harvested[site] {
			continue
		}
		model, err := f.pipeline.Train(context.Background(), f.pages[site])
		if err != nil {
			t.Fatalf("direct train %s: %v", site, err)
		}
		res, err := model.Extract(context.Background(), f.pages[site])
		if err != nil {
			t.Fatal(err)
		}
		gotSite := append([]ceres.Triple(nil), got[site]...)
		ceres.SortTriples(gotSite)
		if !reflect.DeepEqual(gotSite, res.Triples) {
			t.Errorf("site %s: batch %d triples, direct %d", site, len(gotSite), len(res.Triples))
		}
	}

	// The chart-only site is skipped with a recorded reason, not failed.
	var bomojo *SiteReport
	for i := range rep.Sites {
		if rep.Sites[i].Site == "boxofficemojo.com" {
			bomojo = &rep.Sites[i]
		}
	}
	if bomojo == nil || !bomojo.Skipped || bomojo.Err == "" {
		t.Fatalf("boxofficemojo report = %+v, want skipped", bomojo)
	}
	if len(rep.Facts) == 0 {
		t.Fatal("fusion produced no facts")
	}
}

// TestRunnerBoundedReads proves extraction never asks the provider for
// more than one shard of pages at a time (training may read up to
// TrainPages), so site size never enters memory.
func TestRunnerBoundedReads(t *testing.T) {
	f := newCrawlFixture(t, t.TempDir(), []string{"kinobox.cz"})
	bp := &boundedProvider{PageProvider: f.store, maxRange: map[string]int{}}
	sink := NewCountingSink()
	r, err := NewRunner(Config{Provider: bp, Sink: sink, Pipeline: f.pipeline})
	if err != nil {
		t.Fatal(err)
	}
	const shardPages, trainPages = 6, 20
	if _, err := r.Run(context.Background(), Job{ShardPages: shardPages, Workers: 3, TrainPages: trainPages}); err != nil {
		t.Fatal(err)
	}
	n, _ := f.store.PageCount("kinobox.cz")
	if n <= trainPages {
		t.Fatalf("fixture too small for the bound to mean anything: %d pages", n)
	}
	if max := bp.max(); max > trainPages {
		t.Fatalf("runner read %d pages in one range, want <= %d", max, trainPages)
	}
	if sink.Counts().Triples == 0 {
		t.Fatal("no triples extracted")
	}
}

type boundedProvider struct {
	PageProvider
	mu       sync.Mutex
	maxRange map[string]int
}

func (b *boundedProvider) Pages(ctx context.Context, site string, start, n int, fn func(ceres.PageSource) error) error {
	total, err := b.PageCount(site)
	if err == nil {
		want := n
		if n < 0 || start+n > total {
			want = total - start
		}
		b.mu.Lock()
		if want > b.maxRange[site] {
			b.maxRange[site] = want
		}
		b.mu.Unlock()
	}
	return b.PageProvider.Pages(ctx, site, start, n, fn)
}

func (b *boundedProvider) max() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := 0
	for _, v := range b.maxRange {
		if v > m {
			m = v
		}
	}
	return m
}

// TestRunnerUsesRegisteredModel proves a site already in the registry is
// served without retraining, and that no pipeline is needed then.
func TestRunnerUsesRegisteredModel(t *testing.T) {
	f := newCrawlFixture(t, t.TempDir(), []string{"blaxploitation.com"})
	site := "blaxploitation.com"
	model, err := f.pipeline.Train(context.Background(), f.pages[site])
	if err != nil {
		t.Fatal(err)
	}
	reg := ceres.NewRegistry()
	reg.Publish(site, 9, model)
	sink := NewCollectSink()
	r, err := NewRunner(Config{Provider: f.store, Sink: sink, Registry: reg}) // no Pipeline
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background(), Job{ShardPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	sr := rep.Sites[0]
	if sr.Trained || sr.Version != 9 || sr.Skipped {
		t.Fatalf("report = %+v, want untrained version 9", sr)
	}
	if len(sink.Triples()) == 0 {
		t.Fatal("no triples served")
	}
}

// TestRunnerWithoutModelOrPipeline proves a site with no model anywhere
// is skipped with ErrNotTrained, not crashed on.
func TestRunnerWithoutModelOrPipeline(t *testing.T) {
	f := newCrawlFixture(t, t.TempDir(), []string{"blaxploitation.com"})
	sink := NewCountingSink()
	r, err := NewRunner(Config{Provider: f.store, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background(), Job{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sites[0].Skipped || rep.Sites[0].Err != ceres.ErrNotTrained.Error() {
		t.Fatalf("report = %+v", rep.Sites[0])
	}
}

func TestRunnerFuseNeedsReplayer(t *testing.T) {
	f := newCrawlFixture(t, t.TempDir(), []string{"blaxploitation.com"})
	r, err := NewRunner(Config{Provider: f.store, Sink: NewCountingSink(), Pipeline: f.pipeline})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), Job{Fuse: true}); !errors.Is(err, ErrSinkNotReplayable) {
		t.Fatalf("err = %v, want ErrSinkNotReplayable", err)
	}
}

func TestJSONLSinkReplay(t *testing.T) {
	sink, err := NewJSONLSink(filepath.Join(t.TempDir(), "triples"))
	if err != nil {
		t.Fatal(err)
	}
	shards := []Shard{{Site: "a/b", Index: 0, Start: 0, Pages: 2}, {Site: "a/b", Index: 1, Start: 2, Pages: 2}}
	want := [][]ceres.Triple{
		{{Subject: "s1", Predicate: "p", Object: "o", Confidence: 0.75, Page: "pg1", Path: "/x"}},
		{}, // empty shards still commit a (zero-triple) file
	}
	for i, sh := range shards {
		w, err := sink.OpenShard(sh)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range want[i] {
			if err := w.Write(tr); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	var got []ceres.Triple
	if err := sink.Replay(shards, func(site string, tr ceres.Triple) error {
		if site != "a/b" {
			t.Fatalf("site = %q", site)
		}
		got = append(got, tr)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want[0]) {
		t.Fatalf("replay = %+v, want %+v", got, want[0])
	}
	// A missing shard errors instead of silently under-replaying.
	if err := sink.Replay([]Shard{{Site: "a/b", Index: 7}}, func(string, ceres.Triple) error { return nil }); err == nil {
		t.Fatal("missing shard replayed silently")
	}
	// Aborted shards leave nothing behind.
	w, err := sink.OpenShard(Shard{Site: "a/b", Index: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(ceres.Triple{Subject: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Replay([]Shard{{Site: "a/b", Index: 3}}, func(string, ceres.Triple) error { return nil }); err == nil {
		t.Fatal("aborted shard left output")
	}
}
