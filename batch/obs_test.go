package batch

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"ceres"
)

// TestRunnerMetrics runs a small harvest through an instrumented runner
// and checks the batch counter families against the run report.
func TestRunnerMetrics(t *testing.T) {
	f := newCrawlFixture(t, t.TempDir(), []string{"blaxploitation.com", "kinobox.cz"})
	sink := NewCountingSink()
	m := ceres.NewMetrics()
	r, err := NewRunner(Config{Provider: f.store, Sink: sink, Pipeline: f.pipeline, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background(), Job{Sites: f.sites, ShardPages: 10, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shards == 0 || rep.Pages == 0 {
		t.Fatalf("trivial run: %+v", rep)
	}
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for series, want := range map[string]int{
		"ceres_batch_shards_done_total": rep.Shards,
		"ceres_batch_pages_total":       rep.Pages,
		"ceres_batch_triples_total":     rep.Triples,
	} {
		if !strings.Contains(text, series+" "+strconv.Itoa(want)) {
			t.Errorf("exposition missing %s %d:\n%s", series, want, text)
		}
	}
	// The throughput gauge is live after a run (elapsed > 0, pages > 0).
	if strings.Contains(text, "ceres_batch_pages_per_second 0\n") {
		t.Errorf("pages_per_second gauge stayed zero:\n%s", text)
	}
	if !strings.Contains(text, "ceres_batch_pages_per_second ") {
		t.Errorf("pages_per_second gauge missing:\n%s", text)
	}
}
