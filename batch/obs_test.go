package batch

import (
	"context"
	"strconv"
	"strings"
	"testing"
	"time"

	"ceres"
)

// TestRunnerMetrics runs a small harvest through an instrumented runner
// and checks the batch counter families against the run report.
func TestRunnerMetrics(t *testing.T) {
	f := newCrawlFixture(t, t.TempDir(), []string{"blaxploitation.com", "kinobox.cz"})
	sink := NewCountingSink()
	m := ceres.NewMetrics()
	r, err := NewRunner(Config{Provider: f.store, Sink: sink, Pipeline: f.pipeline, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background(), Job{Sites: f.sites, ShardPages: 10, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shards == 0 || rep.Pages == 0 {
		t.Fatalf("trivial run: %+v", rep)
	}
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for series, want := range map[string]int{
		"ceres_batch_shards_done_total": rep.Shards,
		"ceres_batch_pages_total":       rep.Pages,
		"ceres_batch_triples_total":     rep.Triples,
	} {
		if !strings.Contains(text, series+" "+strconv.Itoa(want)) {
			t.Errorf("exposition missing %s %d:\n%s", series, want, text)
		}
	}
	// The throughput gauge is live after a run (elapsed > 0, pages > 0).
	if strings.Contains(text, "ceres_batch_pages_per_second 0\n") {
		t.Errorf("pages_per_second gauge stayed zero:\n%s", text)
	}
	if !strings.Contains(text, "ceres_batch_pages_per_second ") {
		t.Errorf("pages_per_second gauge missing:\n%s", text)
	}
}

// TestRunnerTraceAndStages runs a traced harvest and checks both views
// of the same work: the per-shard span trees (batch.shard →
// resolve[→train→parse/cluster]/extract[→parse/route/score]/sink/
// checkpoint) and the report's aggregated stage breakdown.
func TestRunnerTraceAndStages(t *testing.T) {
	f := newCrawlFixture(t, t.TempDir(), []string{"blaxploitation.com", "kinobox.cz"})
	tr := ceres.NewTracer(ceres.TracerOptions{SampleEvery: 1, Capacity: 64})
	r, err := NewRunner(Config{Provider: f.store, Sink: NewCountingSink(), Pipeline: f.pipeline, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background(), Job{Sites: f.sites, ShardPages: 10, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Aggregated stage breakdown: every executed stage accumulated time,
	// and the serve-side stages are a subset of extract.
	st := rep.Stages
	if st.Train <= 0 || st.Resolve < st.Train {
		t.Errorf("train %v should be nonzero and nested in resolve %v", st.Train, st.Resolve)
	}
	if st.Extract <= 0 || st.Score <= 0 || st.Parse <= 0 {
		t.Errorf("extract stage times missing: %+v", st)
	}
	if sub := st.Parse + st.Route + st.Score; sub > st.Extract {
		t.Errorf("serve stages %v exceed extract wall %v", sub, st.Extract)
	}
	if st.Sink <= 0 || st.Checkpoint < 0 {
		t.Errorf("sink/checkpoint stage times missing: %+v", st)
	}
	var names []string
	var total time.Duration
	st.Each(func(name string, d time.Duration) {
		names = append(names, name)
		total += d
	})
	if len(names) != 9 || names[0] != "resolve" || names[8] != "fuse" || total <= 0 {
		t.Errorf("Each visited %v (total %v)", names, total)
	}

	// Span trees: one batch.shard root per attempted shard — committed
	// ones carry the full extract/sink/checkpoint chain, shards of a
	// skipped site stop after resolve. The first shard of each site
	// carries the resolve→train subtree with the training pipeline's own
	// spans hanging off it (a failed training run is traced too).
	planned := 0
	for _, sr := range rep.Sites {
		planned += sr.Shards
	}
	roots := tr.Roots()
	if len(roots) != planned-rep.Resumed {
		t.Fatalf("%d shard traces for %d attempted shards", len(roots), planned-rep.Resumed)
	}
	committed, trained := 0, 0
	for _, root := range roots {
		if root.Name() != "batch.shard" || !root.Ended() {
			t.Fatalf("root %q ended=%v", root.Name(), root.Ended())
		}
		if ex := root.Child("extract"); ex != nil {
			if ex.Child("score") == nil || ex.Child("parse") == nil || ex.Child("route") == nil {
				t.Fatalf("extract span lost its stage children")
			}
			if root.Child("sink") == nil || root.Child("checkpoint") == nil {
				t.Fatalf("committed shard trace missing sink/checkpoint: %v", root.JSON())
			}
			committed++
		}
		if rsp := root.Child("resolve"); rsp != nil {
			if tsp := rsp.Child("train"); tsp != nil {
				trained++
				if tsp.Child("parse") == nil || tsp.Child("cluster") == nil {
					t.Errorf("train span lost the pipeline's spans: %+v", tsp.JSON())
				}
			}
		}
	}
	if committed != rep.Shards {
		t.Errorf("%d full shard traces, want %d committed shards", committed, rep.Shards)
	}
	if trained != 2 {
		t.Errorf("%d train subtrees, want one per site (both sites resolve, one fails)", trained)
	}
	if s := tr.Stats(); s.Started != s.Ended || s.DoubleEnds != 0 {
		t.Errorf("span lifecycle imbalance: %+v", s)
	}
}
