package batch

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"ceres/internal/fsatomic"
)

// ErrCheckpointMismatch reports a checkpoint manifest written by a
// different plan — the corpus or shard size changed under a resumed job;
// test with errors.Is. Delete the manifest (and the sink's output) to
// start over.
var ErrCheckpointMismatch = errors.New("batch: checkpoint does not match the job plan")

// manifestFormat versions the checkpoint file.
const manifestFormat = "ceres.batch/1"

// manifest is the on-disk checkpoint: which shards have committed their
// output, which model version serves each site, and which sites were
// skipped (with the reason). It is the resume contract — a run that
// crashes after any atomic manifest write restarts exactly after the last
// committed shard.
type manifest struct {
	Format     string            `json:"format"`
	ShardPages int               `json:"shard_pages"`
	// Sites records each planned site's page count, pinning the plan the
	// checkpoint belongs to.
	Sites map[string]int `json:"sites"`
	// Models records the model version each site's shards were served
	// with, so a resume extracts with the same artifact even if the store
	// has since published newer versions.
	Models map[string]int `json:"models,omitempty"`
	// Skipped records sites that could not be harvested (e.g. training
	// found no seed-KB alignment), by reason; a resume skips them without
	// retraining.
	Skipped map[string]string `json:"skipped,omitempty"`
	// Done records committed shard indices per site, sorted.
	Done map[string][]int `json:"done,omitempty"`
}

func newManifest(plan *Plan) *manifest {
	m := &manifest{
		Format:     manifestFormat,
		ShardPages: plan.ShardPages,
		Sites:      map[string]int{},
		Models:     map[string]int{},
		Skipped:    map[string]string{},
		Done:       map[string][]int{},
	}
	for _, sp := range plan.Sites {
		m.Sites[sp.Site] = sp.Pages
	}
	return m
}

// checkpoint wraps a manifest with its path and write lock. A checkpoint
// with an empty path is in-memory only (checkpointing disabled).
type checkpoint struct {
	path string
	mu   sync.Mutex
	m    *manifest
}

// loadCheckpoint opens (or initializes) the manifest at path and verifies
// it matches the plan. Sites new to the plan are added; a site whose page
// count or the shard size changed fails with ErrCheckpointMismatch.
func loadCheckpoint(path string, plan *Plan) (*checkpoint, error) {
	ck := &checkpoint{path: path, m: newManifest(plan)}
	if path == "" {
		return ck, nil
	}
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return ck, nil
	}
	if err != nil {
		return nil, fmt.Errorf("batch: reading checkpoint: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("batch: reading checkpoint %s: %w", path, err)
	}
	if m.Format != manifestFormat {
		return nil, fmt.Errorf("batch: checkpoint %s has unknown format %q", path, m.Format)
	}
	if m.ShardPages != plan.ShardPages {
		return nil, fmt.Errorf("%w: shard size %d, plan wants %d", ErrCheckpointMismatch, m.ShardPages, plan.ShardPages)
	}
	for _, sp := range plan.Sites {
		if pages, ok := m.Sites[sp.Site]; ok && pages != sp.Pages {
			return nil, fmt.Errorf("%w: site %q has %d pages, checkpoint recorded %d", ErrCheckpointMismatch, sp.Site, sp.Pages, pages)
		}
		m.Sites[sp.Site] = sp.Pages
	}
	if m.Models == nil {
		m.Models = map[string]int{}
	}
	if m.Skipped == nil {
		m.Skipped = map[string]string{}
	}
	if m.Done == nil {
		m.Done = map[string][]int{}
	}
	ck.m = &m
	return ck, nil
}

// save writes the manifest atomically (temp file, fsync, rename).
// Callers hold ck.mu.
func (ck *checkpoint) save() error {
	if ck.path == "" {
		return nil
	}
	b, err := json.MarshalIndent(ck.m, "", "  ")
	if err != nil {
		return fmt.Errorf("batch: writing checkpoint: %w", err)
	}
	if err := os.MkdirAll(filepath.Dir(ck.path), 0o755); err != nil {
		return fmt.Errorf("batch: writing checkpoint: %w", err)
	}
	if err := fsatomic.WriteFile(ck.path, append(b, '\n')); err != nil {
		return fmt.Errorf("batch: writing checkpoint: %w", err)
	}
	return nil
}

// isDone reports whether a shard's output is already committed.
func (ck *checkpoint) isDone(site string, index int) bool {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	for _, i := range ck.m.Done[site] {
		if i == index {
			return true
		}
	}
	return false
}

// markDone records a committed shard and persists the manifest.
func (ck *checkpoint) markDone(site string, index int) error {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	done := ck.m.Done[site]
	for _, i := range done {
		if i == index {
			return nil
		}
	}
	done = append(done, index)
	sort.Ints(done)
	ck.m.Done[site] = done
	return ck.save()
}

// doneCount returns how many of a site's shards have committed.
func (ck *checkpoint) doneCount(site string) int {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return len(ck.m.Done[site])
}

// modelVersion returns the pinned model version of a site, if any.
func (ck *checkpoint) modelVersion(site string) (int, bool) {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	v, ok := ck.m.Models[site]
	return v, ok
}

// setModelVersion pins the model version serving a site and persists the
// manifest.
func (ck *checkpoint) setModelVersion(site string, v int) error {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	ck.m.Models[site] = v
	return ck.save()
}

// skippedSite returns the recorded skip reason of a site, if any.
func (ck *checkpoint) skippedSite(site string) (string, bool) {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	r, ok := ck.m.Skipped[site]
	return r, ok
}

// setSkipped records a site as unharvestable and persists the manifest.
func (ck *checkpoint) setSkipped(site, reason string) error {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	ck.m.Skipped[site] = reason
	return ck.save()
}
