package batch

import (
	"fmt"

	"ceres"
)

// Job specifies one batch harvest.
type Job struct {
	// Sites restricts the harvest to these provider sites, in the given
	// order; empty harvests every provider site in sorted order. The site
	// order is the plan order: shards execute roughly in it, and the
	// fusion stage replays it exactly.
	Sites []string
	// ShardPages is the page count of one shard — the unit of
	// parallelism, checkpointing and memory (default 64). A worker holds
	// at most one shard's pages and triples.
	ShardPages int
	// Workers bounds how many shards run at once (default 4). Page
	// parallelism inside a shard is tuned per site via Options.
	Workers int
	// TrainPages caps how many of a site's leading pages feed training
	// when the site has no published model (0 = all of the site's pages).
	TrainPages int
	// Options carries per-site serving overrides, keyed by site; the ""
	// key is the default for sites without their own entry.
	Options map[string]ceres.RequestOptions
	// Fuse enables the streaming fusion stage after the last shard; it
	// requires the sink to implement Replayer.
	Fuse bool
	// Fusion tunes the fusion stage.
	Fusion ceres.FusionOptions
}

func (j Job) shardPages() int {
	if j.ShardPages > 0 {
		return j.ShardPages
	}
	return 64
}

func (j Job) workers() int {
	if j.Workers > 0 {
		return j.Workers
	}
	return 4
}

// optionsFor resolves the request options of one site.
func (j Job) optionsFor(site string) ceres.RequestOptions {
	if o, ok := j.Options[site]; ok {
		return o
	}
	return j.Options[""]
}

// Shard is one contiguous page range of one site — the unit of execution
// and checkpointing.
type Shard struct {
	// Site is the site the pages belong to.
	Site string
	// Index is the shard's ordinal within the site, from 0.
	Index int
	// Start is the first page offset; Pages is the range length.
	Start, Pages int
}

// SitePlan summarizes one site of a plan.
type SitePlan struct {
	Site   string
	Pages  int
	Shards int
}

// Plan is the sharded layout of a job over a provider: every site's page
// range cut into ShardPages-sized shards. Plans are deterministic — same
// job over the same corpus, same plan — which is what lets a checkpoint
// manifest name shards by (site, index) across process restarts.
type Plan struct {
	ShardPages int
	Sites      []SitePlan
	Shards     []Shard
}

// TotalPages sums pages across the plan's sites.
func (p *Plan) TotalPages() int {
	n := 0
	for _, sp := range p.Sites {
		n += sp.Pages
	}
	return n
}

// PlanJob shards every site of the job over the provider. Duplicate
// sites in Job.Sites are rejected, and every named site must exist in the
// provider.
func PlanJob(job Job, provider PageProvider) (*Plan, error) {
	sites := job.Sites
	if len(sites) == 0 {
		var err error
		sites, err = provider.Sites()
		if err != nil {
			return nil, fmt.Errorf("batch: planning job: %w", err)
		}
	} else {
		seen := make(map[string]bool, len(sites))
		for _, s := range sites {
			if seen[s] {
				return nil, fmt.Errorf("batch: planning job: duplicate site %q", s)
			}
			seen[s] = true
		}
	}
	plan := &Plan{ShardPages: job.shardPages()}
	for _, site := range sites {
		n, err := provider.PageCount(site)
		if err != nil {
			return nil, fmt.Errorf("batch: planning job: %w", err)
		}
		sp := SitePlan{Site: site, Pages: n}
		for off := 0; off < n; off += plan.ShardPages {
			pages := plan.ShardPages
			if off+pages > n {
				pages = n - off
			}
			plan.Shards = append(plan.Shards, Shard{Site: site, Index: sp.Shards, Start: off, Pages: pages})
			sp.Shards++
		}
		plan.Sites = append(plan.Sites, sp)
	}
	return plan, nil
}
