package batch

import (
	"context"
	"testing"

	"ceres"
)

// BenchmarkBatchHarvest measures batch extraction throughput (pages/sec)
// over a scaled websim crawl: pagestore streaming, shard planning,
// Service extraction, sink commits and the streaming fusion stage.
// Models are trained once outside the timed loop — the steady-state cost
// of a harvest is serving, not training.
func BenchmarkBatchHarvest(b *testing.B) {
	f := newCrawlFixture(b, b.TempDir(), []string{"blaxploitation.com", "kinobox.cz", "laborfilms.com"})
	job := Job{ShardPages: 16, Workers: 4, Fuse: true}

	// Warm-up run trains and publishes every trainable site into the
	// shared registry.
	reg := ceres.NewRegistry()
	warm, err := NewRunner(Config{Provider: f.store, Sink: NewCountingSink(), Registry: reg, Pipeline: f.pipeline})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := warm.Run(context.Background(), Job{ShardPages: 16, Workers: 4}); err != nil {
		b.Fatal(err)
	}
	// One throwaway run of the exact timed configuration (collect sink,
	// fusion stage) so the measurement starts at steady state: scratch
	// pools populated, segment files in page cache, fusion path resident.
	{
		r, err := NewRunner(Config{Provider: f.store, Sink: NewCollectSink(), Registry: reg})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Run(context.Background(), job); err != nil {
			b.Fatal(err)
		}
	}

	pages := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewRunner(Config{Provider: f.store, Sink: NewCollectSink(), Registry: reg})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := r.Run(context.Background(), job)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Triples == 0 {
			b.Fatal("harvest extracted nothing")
		}
		pages += rep.Pages
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(pages)/secs, "pages/s")
	}
}
