package pagestore

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"ceres"
)

// scanFixture builds a multi-segment site partition: pages wide enough
// that decompression dominates framing, segment counts high enough that
// the readahead plane has real work to overlap.
func scanFixture(tb testing.TB, dir string, pages, segPages int) *Store {
	tb.Helper()
	s, err := Open(dir)
	if err != nil {
		tb.Fatal(err)
	}
	w, err := s.Writer("scan.example.com")
	if err != nil {
		tb.Fatal(err)
	}
	w.SegmentPages = segPages
	body := strings.Repeat("<tr><td>cell</td><td>value</td></tr>", 40)
	for i := 0; i < pages; i++ {
		err := w.Append(ceres.PageSource{
			ID:   fmt.Sprintf("p%06d", i),
			HTML: fmt.Sprintf("<html><body><h1>page %d</h1><table>%s</table></body></html>", i, body),
		})
		if err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return s
}

// BenchmarkPagestoreScan measures the concurrent segment read plane:
// a full sequential scan of a multi-segment partition through Pages,
// reported as pages/s. This is the harvest runner's supply side — the
// rate at which shards can be fed before extraction cost enters.
func BenchmarkPagestoreScan(b *testing.B) {
	const pages, segPages = 2048, 64
	s := scanFixture(b, filepath.Join(b.TempDir(), "pages"), pages, segPages)
	ctx := context.Background()
	scanned := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := s.Pages(ctx, "scan.example.com", 0, pages, func(p ceres.PageSource) error {
			n++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if n != pages {
			b.Fatalf("scan saw %d pages, want %d", n, pages)
		}
		scanned += n
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(scanned)/secs, "pages/s")
	}
}

// TestConcurrentPagesReaders runs many readers over one Store at once —
// full scans and offset windows — and requires every reader to observe
// exactly the ordered subsequence it asked for. Run under -race, this is
// the proof that the readahead plane (shared Store, pooled gzip readers
// and buffers) keeps readers fully isolated.
func TestConcurrentPagesReaders(t *testing.T) {
	const pages, segPages = 300, 17
	s := scanFixture(t, filepath.Join(t.TempDir(), "pages"), pages, segPages)
	ctx := context.Background()

	type window struct{ start, n int }
	windows := []window{
		{0, pages}, {0, pages}, // two identical full scans
		{0, 1}, {pages - 1, 1}, // edges
		{5, 40}, {16, 18}, {17, 170}, {250, 50}, // segment-straddling slices
	}
	var wg sync.WaitGroup
	errs := make([]error, len(windows))
	for i, win := range windows {
		wg.Add(1)
		go func(i int, win window) {
			defer wg.Done()
			want := win.start
			err := s.Pages(ctx, "scan.example.com", win.start, win.n, func(p ceres.PageSource) error {
				if id := fmt.Sprintf("p%06d", want); p.ID != id {
					return fmt.Errorf("reader %d: got page %q at position %d, want %q", i, p.ID, want, id)
				}
				want++
				return nil
			})
			if err == nil && want != win.start+win.n {
				err = fmt.Errorf("reader %d: saw %d pages, want %d", i, want-win.start, win.n)
			}
			errs[i] = err
		}(i, win)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
