// Package pagestore persists a multi-site crawl on disk for batch
// extraction: the offline page corpus a harvest job reads from, the
// stand-in for the paper's ClueWeb/CommonCrawl WARC collections (§5.1.3).
//
// Layout. A store is a directory of site partitions:
//
//	<root>/sites/<url.PathEscape(site)>/seg-000001.gz
//	                                    seg-000002.gz
//	                                    site.json
//
// Each segment is a single gzip stream of length-prefixed page records
// (uvarint id length, id bytes, uvarint HTML length, HTML bytes) and is
// append-only: once a segment is sealed it is never rewritten. site.json
// is the site's index — the ordered segment list with per-segment page
// counts — and is replaced atomically (write-to-temp then rename) when a
// Writer seals its segments, so a reader never observes a torn index and
// a crash mid-ingest leaves at worst orphan segments the index does not
// reference (a later Writer numbers past them).
//
// Reading is streaming: Pages decodes one record at a time through a
// reused scratch buffer, so iterating a million-page site costs the two
// string allocations per page the ceres.PageSource values themselves
// need, and range reads skip whole segments via the index and discard
// records without decoding them into strings. A Store therefore serves as
// the page provider of a batch harvest (ceres/batch.PageProvider) with
// per-shard bounded memory.
package pagestore

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"ceres"
	"ceres/internal/fsatomic"
)

// ErrSiteNotFound reports a site absent from the store; test with
// errors.Is.
var ErrSiteNotFound = errors.New("pagestore: site not found")

// indexFormat versions the site.json index file.
const indexFormat = "ceres.pagestore/1"

// DefaultSegmentPages is how many pages a Writer packs into one segment
// before rotating.
const DefaultSegmentPages = 256

// SegmentInfo describes one sealed segment of a site partition.
type SegmentInfo struct {
	// File is the segment file name within the site directory.
	File string `json:"file"`
	// Pages is the number of page records in the segment.
	Pages int `json:"pages"`
	// Bytes is the compressed size of the segment file.
	Bytes int64 `json:"bytes"`
}

// SiteInfo is the index of one site partition.
type SiteInfo struct {
	Format string `json:"format"`
	// Site is the unescaped site name.
	Site string `json:"site"`
	// Pages is the total page count across segments.
	Pages int `json:"pages"`
	// Segments lists the sealed segments in read order.
	Segments []SegmentInfo `json:"segments"`
}

// Store is a site-partitioned page corpus on disk. It is safe for
// concurrent use within one process: any number of readers may stream
// while writers ingest, and writers to different sites never contend.
// Two Writers for the same site must not run concurrently.
type Store struct {
	root string
	mu   sync.Mutex // serializes index rewrites per process
}

// Open opens (creating if needed) a page store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "sites"), 0o755); err != nil {
		return nil, fmt.Errorf("pagestore: opening store: %w", err)
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

func (s *Store) siteDir(site string) string {
	return filepath.Join(s.root, "sites", url.PathEscape(site))
}

// Sites lists the stored sites, sorted. Only sites with a sealed index
// appear: a partition that crashed before its first Writer.Close is
// invisible.
func (s *Store) Sites() ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(s.root, "sites"))
	if err != nil {
		return nil, fmt.Errorf("pagestore: listing sites: %w", err)
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		site, err := url.PathUnescape(e.Name())
		if err != nil {
			continue // not a store partition
		}
		if _, err := os.Stat(filepath.Join(s.siteDir(site), "site.json")); err != nil {
			continue
		}
		out = append(out, site)
	}
	sort.Strings(out)
	return out, nil
}

// Info loads a site's index. It returns ErrSiteNotFound for a site the
// store does not hold.
func (s *Store) Info(site string) (SiteInfo, error) {
	if err := ceres.CheckSiteName(site); err != nil {
		return SiteInfo{}, fmt.Errorf("pagestore: %w", err)
	}
	b, err := os.ReadFile(filepath.Join(s.siteDir(site), "site.json"))
	if err != nil {
		if os.IsNotExist(err) {
			return SiteInfo{}, fmt.Errorf("%w: %q", ErrSiteNotFound, site)
		}
		return SiteInfo{}, fmt.Errorf("pagestore: reading index: %w", err)
	}
	var info SiteInfo
	if err := json.Unmarshal(b, &info); err != nil {
		return SiteInfo{}, fmt.Errorf("pagestore: reading index of %q: %w", site, err)
	}
	if info.Format != indexFormat {
		return SiteInfo{}, fmt.Errorf("pagestore: unknown index format %q for site %q", info.Format, site)
	}
	return info, nil
}

// PageCount returns a site's total page count.
func (s *Store) PageCount(site string) (int, error) {
	info, err := s.Info(site)
	if err != nil {
		return 0, err
	}
	return info.Pages, nil
}

// Writer ingests pages into one site partition. Append streams records
// into gzip segment files, rotating every SegmentPages pages; Close seals
// the open segment and publishes the updated index atomically. Until
// Close returns, readers see the partition as it was before the Writer
// started — ingest is all-or-nothing at segment granularity.
type Writer struct {
	// SegmentPages caps pages per segment (DefaultSegmentPages when left
	// zero). Change it before the first Append.
	SegmentPages int

	store *Store
	site  string
	dir   string
	info  SiteInfo // index as of open, plus sealed segments

	f       *os.File
	gz      *gzip.Writer
	bw      *bufio.Writer
	segPage int // pages in the open segment
	nextSeg int
	scratch []byte
}

// Writer opens a writer that appends pages to a site partition, creating
// the partition on first use.
func (s *Store) Writer(site string) (*Writer, error) {
	if err := ceres.CheckSiteName(site); err != nil {
		return nil, fmt.Errorf("pagestore: %w", err)
	}
	dir := s.siteDir(site)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pagestore: opening writer: %w", err)
	}
	info, err := s.Info(site)
	if err != nil {
		if !errors.Is(err, ErrSiteNotFound) {
			return nil, err
		}
		info = SiteInfo{Format: indexFormat, Site: site}
	}
	// Number new segments past everything on disk — indexed or orphaned by
	// a crash — so an append never clobbers an existing file.
	next := 1
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("pagestore: opening writer: %w", err)
	}
	for _, e := range ents {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "seg-%06d.gz", &n); err == nil && n >= next {
			next = n + 1
		}
	}
	return &Writer{store: s, site: site, dir: dir, info: info, nextSeg: next}, nil
}

func segmentFile(n int) string { return fmt.Sprintf("seg-%06d.gz", n) }

// Append adds one page record to the partition.
func (w *Writer) Append(p ceres.PageSource) error {
	if p.ID == "" {
		return fmt.Errorf("pagestore: %w: empty page ID", ceres.ErrInvalidPage)
	}
	if w.f == nil {
		if err := w.openSegment(); err != nil {
			return err
		}
	}
	w.scratch = binary.AppendUvarint(w.scratch[:0], uint64(len(p.ID)))
	w.scratch = append(w.scratch, p.ID...)
	w.scratch = binary.AppendUvarint(w.scratch, uint64(len(p.HTML)))
	if _, err := w.bw.Write(w.scratch); err != nil {
		return fmt.Errorf("pagestore: appending page: %w", err)
	}
	if _, err := w.bw.WriteString(p.HTML); err != nil {
		return fmt.Errorf("pagestore: appending page: %w", err)
	}
	w.segPage++
	segCap := w.SegmentPages
	if segCap <= 0 {
		segCap = DefaultSegmentPages
	}
	if w.segPage >= segCap {
		return w.seal()
	}
	return nil
}

// AppendAll appends a slice of pages.
func (w *Writer) AppendAll(pages []ceres.PageSource) error {
	for _, p := range pages {
		if err := w.Append(p); err != nil {
			return err
		}
	}
	return nil
}

func (w *Writer) openSegment() error {
	f, err := os.OpenFile(filepath.Join(w.dir, segmentFile(w.nextSeg)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("pagestore: opening segment: %w", err)
	}
	w.f = f
	w.gz = gzip.NewWriter(f)
	w.bw = bufio.NewWriterSize(w.gz, 64<<10)
	w.segPage = 0
	return nil
}

// seal flushes and closes the open segment and records it in the pending
// index.
func (w *Writer) seal() error {
	if w.f == nil {
		return nil
	}
	name := segmentFile(w.nextSeg)
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("pagestore: sealing segment: %w", err)
	}
	if err := w.gz.Close(); err != nil {
		return fmt.Errorf("pagestore: sealing segment: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("pagestore: sealing segment: %w", err)
	}
	st, err := w.f.Stat()
	if err != nil {
		return fmt.Errorf("pagestore: sealing segment: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("pagestore: sealing segment: %w", err)
	}
	w.info.Segments = append(w.info.Segments, SegmentInfo{File: name, Pages: w.segPage, Bytes: st.Size()})
	w.info.Pages += w.segPage
	w.f, w.gz, w.bw = nil, nil, nil
	w.nextSeg++
	w.segPage = 0
	return nil
}

// Close seals the open segment and atomically publishes the updated
// index. The ingested pages become visible to readers only when Close
// returns nil.
func (w *Writer) Close() error {
	if err := w.seal(); err != nil {
		return err
	}
	w.store.mu.Lock()
	defer w.store.mu.Unlock()
	b, err := json.MarshalIndent(w.info, "", "  ")
	if err != nil {
		return fmt.Errorf("pagestore: writing index: %w", err)
	}
	if err := fsatomic.WriteFile(filepath.Join(w.dir, "site.json"), append(b, '\n')); err != nil {
		return fmt.Errorf("pagestore: writing index: %w", err)
	}
	return nil
}

// Ingest appends a whole page set to a site partition and seals it — the
// convenience path for loading a generated crawl or an in-memory site.
func (s *Store) Ingest(site string, pages []ceres.PageSource) error {
	w, err := s.Writer(site)
	if err != nil {
		return err
	}
	if err := w.AppendAll(pages); err != nil {
		return err
	}
	return w.Close()
}

// Pages streams records [start, start+n) of a site in ingest order
// through fn, decoding one page at a time: memory stays constant in site
// size. n < 0 streams to the end. A non-nil error from fn stops the scan
// and is returned. Whole segments before start are never opened, and
// records skipped within the first segment are discarded without string
// allocation.
func (s *Store) Pages(site string, start, n int, fn func(ceres.PageSource) error) error {
	if start < 0 {
		return fmt.Errorf("pagestore: negative start %d", start)
	}
	info, err := s.Info(site)
	if err != nil {
		return err
	}
	if n < 0 {
		n = info.Pages - start
	}
	for _, seg := range info.Segments {
		if n <= 0 {
			break
		}
		if start >= seg.Pages {
			start -= seg.Pages
			continue
		}
		took, err := s.scanSegment(site, seg, start, n, fn)
		if err != nil {
			return err
		}
		n -= took
		start = 0
	}
	return nil
}

// scanSegment streams up to n records of one segment starting at record
// index start, returning how many records it passed to fn.
func (s *Store) scanSegment(site string, seg SegmentInfo, start, n int, fn func(ceres.PageSource) error) (int, error) {
	f, err := os.Open(filepath.Join(s.siteDir(site), seg.File))
	if err != nil {
		return 0, fmt.Errorf("pagestore: opening segment: %w", err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(bufio.NewReaderSize(f, 64<<10))
	if err != nil {
		return 0, fmt.Errorf("pagestore: reading segment %s: %w", seg.File, err)
	}
	defer gz.Close()
	br := bufio.NewReaderSize(gz, 64<<10)

	var scratch []byte
	readString := func() (string, error) {
		ln, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if cap(scratch) < int(ln) {
			scratch = make([]byte, ln)
		}
		buf := scratch[:ln]
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	// Skip start records without materializing strings.
	discard := func() error {
		for i := 0; i < 2; i++ {
			ln, err := binary.ReadUvarint(br)
			if err != nil {
				return err
			}
			for ln > 0 {
				c := int(ln)
				if c > 1<<20 {
					c = 1 << 20
				}
				d, err := br.Discard(c)
				ln -= uint64(d)
				if err != nil {
					return err
				}
			}
		}
		return nil
	}
	for i := 0; i < start; i++ {
		if err := discard(); err != nil {
			return 0, fmt.Errorf("pagestore: reading segment %s: %w", seg.File, err)
		}
	}
	took := 0
	for ; took < n && start+took < seg.Pages; took++ {
		id, err := readString()
		if err != nil {
			return took, fmt.Errorf("pagestore: reading segment %s: %w", seg.File, err)
		}
		html, err := readString()
		if err != nil {
			return took, fmt.Errorf("pagestore: reading segment %s: %w", seg.File, err)
		}
		if err := fn(ceres.PageSource{ID: id, HTML: html}); err != nil {
			return took, err
		}
	}
	return took, nil
}

// ReadAll materializes records [start, start+n) of a site (n < 0 reads to
// the end) — the loading path for bounded page sets like a training
// sample or one shard. Crawl-scale scans should stream with Pages
// instead.
func (s *Store) ReadAll(site string, start, n int) ([]ceres.PageSource, error) {
	var out []ceres.PageSource
	if n > 0 {
		out = make([]ceres.PageSource, 0, n)
	}
	err := s.Pages(site, start, n, func(p ceres.PageSource) error {
		out = append(out, p)
		return nil
	})
	return out, err
}
