// Package pagestore persists a multi-site crawl on disk for batch
// extraction: the offline page corpus a harvest job reads from, the
// stand-in for the paper's ClueWeb/CommonCrawl WARC collections (§5.1.3).
//
// Layout. A store is a directory of site partitions:
//
//	<root>/sites/<url.PathEscape(site)>/seg-000001.gz
//	                                    seg-000002.gz
//	                                    site.json
//
// Each segment is a single gzip stream of length-prefixed page records
// (uvarint id length, id bytes, uvarint HTML length, HTML bytes) and is
// append-only: once a segment is sealed it is never rewritten. site.json
// is the site's index — the ordered segment list with per-segment page
// counts — and is replaced atomically (write-to-temp then rename) when a
// Writer seals its segments, so a reader never observes a torn index and
// a crash mid-ingest leaves at worst orphan segments the index does not
// reference (a later Writer numbers past them).
//
// Reading is segment-granular: Pages plans which segments a range
// touches (whole segments before the range are never opened), inflates
// each through a pooled gzip reader into a pooled buffer, and frames
// records out of that buffer with an allocation-free cursor — skipped
// records never materialize strings, delivered ones cost exactly the two
// string allocations their ceres.PageSource needs. A range spanning
// several segments is read ahead by a bounded worker pool that
// decompresses segments in parallel while the callback consumes them in
// deterministic ingest order; memory stays bounded by the readahead
// window (a few segments), never the site. A Store therefore serves as
// the page provider of a batch harvest (ceres/batch.PageProvider).
package pagestore

import (
	"bufio"
	"compress/gzip"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"ceres"
	"ceres/internal/fsatomic"
)

// ErrSiteNotFound reports a site absent from the store; test with
// errors.Is.
var ErrSiteNotFound = errors.New("pagestore: site not found")

// indexFormat versions the site.json index file.
const indexFormat = "ceres.pagestore/1"

// DefaultSegmentPages is how many pages a Writer packs into one segment
// before rotating.
const DefaultSegmentPages = 256

// SegmentInfo describes one sealed segment of a site partition.
type SegmentInfo struct {
	// File is the segment file name within the site directory.
	File string `json:"file"`
	// Pages is the number of page records in the segment.
	Pages int `json:"pages"`
	// Bytes is the compressed size of the segment file.
	Bytes int64 `json:"bytes"`
}

// SiteInfo is the index of one site partition.
type SiteInfo struct {
	Format string `json:"format"`
	// Site is the unescaped site name.
	Site string `json:"site"`
	// Pages is the total page count across segments.
	Pages int `json:"pages"`
	// Segments lists the sealed segments in read order.
	Segments []SegmentInfo `json:"segments"`
}

// Store is a site-partitioned page corpus on disk. It is safe for
// concurrent use within one process: any number of readers may stream
// while writers ingest, and writers to different sites never contend.
// Two Writers for the same site must not run concurrently.
type Store struct {
	root string
	mu   sync.Mutex // serializes index rewrites per process
}

// Open opens (creating if needed) a page store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "sites"), 0o755); err != nil {
		return nil, fmt.Errorf("pagestore: opening store: %w", err)
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

func (s *Store) siteDir(site string) string {
	return filepath.Join(s.root, "sites", url.PathEscape(site))
}

// Sites lists the stored sites, sorted. Only sites with a sealed index
// appear: a partition that crashed before its first Writer.Close is
// invisible.
func (s *Store) Sites() ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(s.root, "sites"))
	if err != nil {
		return nil, fmt.Errorf("pagestore: listing sites: %w", err)
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		site, err := url.PathUnescape(e.Name())
		if err != nil {
			continue // not a store partition
		}
		if _, err := os.Stat(filepath.Join(s.siteDir(site), "site.json")); err != nil {
			continue
		}
		out = append(out, site)
	}
	sort.Strings(out)
	return out, nil
}

// Info loads a site's index. It returns ErrSiteNotFound for a site the
// store does not hold.
func (s *Store) Info(site string) (SiteInfo, error) {
	if err := ceres.CheckSiteName(site); err != nil {
		return SiteInfo{}, fmt.Errorf("pagestore: %w", err)
	}
	b, err := os.ReadFile(filepath.Join(s.siteDir(site), "site.json"))
	if err != nil {
		if os.IsNotExist(err) {
			return SiteInfo{}, fmt.Errorf("%w: %q", ErrSiteNotFound, site)
		}
		return SiteInfo{}, fmt.Errorf("pagestore: reading index: %w", err)
	}
	var info SiteInfo
	if err := json.Unmarshal(b, &info); err != nil {
		return SiteInfo{}, fmt.Errorf("pagestore: reading index of %q: %w", site, err)
	}
	if info.Format != indexFormat {
		return SiteInfo{}, fmt.Errorf("pagestore: unknown index format %q for site %q", info.Format, site)
	}
	return info, nil
}

// PageCount returns a site's total page count.
func (s *Store) PageCount(site string) (int, error) {
	info, err := s.Info(site)
	if err != nil {
		return 0, err
	}
	return info.Pages, nil
}

// Writer ingests pages into one site partition. Append streams records
// into gzip segment files, rotating every SegmentPages pages; Close seals
// the open segment and publishes the updated index atomically. Until
// Close returns, readers see the partition as it was before the Writer
// started — ingest is all-or-nothing at segment granularity.
type Writer struct {
	// SegmentPages caps pages per segment (DefaultSegmentPages when left
	// zero). Change it before the first Append.
	SegmentPages int

	store *Store
	site  string
	dir   string
	info  SiteInfo // index as of open, plus sealed segments

	f       *os.File
	gz      *gzip.Writer
	bw      *bufio.Writer
	segPage int // pages in the open segment
	nextSeg int
	scratch []byte
}

// Writer opens a writer that appends pages to a site partition, creating
// the partition on first use.
func (s *Store) Writer(site string) (*Writer, error) {
	if err := ceres.CheckSiteName(site); err != nil {
		return nil, fmt.Errorf("pagestore: %w", err)
	}
	dir := s.siteDir(site)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pagestore: opening writer: %w", err)
	}
	info, err := s.Info(site)
	if err != nil {
		if !errors.Is(err, ErrSiteNotFound) {
			return nil, err
		}
		info = SiteInfo{Format: indexFormat, Site: site}
	}
	// Number new segments past everything on disk — indexed or orphaned by
	// a crash — so an append never clobbers an existing file.
	next := 1
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("pagestore: opening writer: %w", err)
	}
	for _, e := range ents {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "seg-%06d.gz", &n); err == nil && n >= next {
			next = n + 1
		}
	}
	return &Writer{store: s, site: site, dir: dir, info: info, nextSeg: next}, nil
}

func segmentFile(n int) string { return fmt.Sprintf("seg-%06d.gz", n) }

// Append adds one page record to the partition.
func (w *Writer) Append(p ceres.PageSource) error {
	if p.ID == "" {
		return fmt.Errorf("pagestore: %w: empty page ID", ceres.ErrInvalidPage)
	}
	if w.f == nil {
		if err := w.openSegment(); err != nil {
			return err
		}
	}
	w.scratch = binary.AppendUvarint(w.scratch[:0], uint64(len(p.ID)))
	w.scratch = append(w.scratch, p.ID...)
	w.scratch = binary.AppendUvarint(w.scratch, uint64(len(p.HTML)))
	if _, err := w.bw.Write(w.scratch); err != nil {
		return fmt.Errorf("pagestore: appending page: %w", err)
	}
	if _, err := w.bw.WriteString(p.HTML); err != nil {
		return fmt.Errorf("pagestore: appending page: %w", err)
	}
	w.segPage++
	segCap := w.SegmentPages
	if segCap <= 0 {
		segCap = DefaultSegmentPages
	}
	if w.segPage >= segCap {
		return w.seal()
	}
	return nil
}

// AppendAll appends a slice of pages.
func (w *Writer) AppendAll(pages []ceres.PageSource) error {
	for _, p := range pages {
		if err := w.Append(p); err != nil {
			return err
		}
	}
	return nil
}

func (w *Writer) openSegment() error {
	f, err := os.OpenFile(filepath.Join(w.dir, segmentFile(w.nextSeg)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("pagestore: opening segment: %w", err)
	}
	w.f = f
	w.gz = gzip.NewWriter(f)
	w.bw = bufio.NewWriterSize(w.gz, 64<<10)
	w.segPage = 0
	return nil
}

// seal flushes and closes the open segment and records it in the pending
// index.
func (w *Writer) seal() error {
	if w.f == nil {
		return nil
	}
	name := segmentFile(w.nextSeg)
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("pagestore: sealing segment: %w", err)
	}
	if err := w.gz.Close(); err != nil {
		return fmt.Errorf("pagestore: sealing segment: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("pagestore: sealing segment: %w", err)
	}
	st, err := w.f.Stat()
	if err != nil {
		return fmt.Errorf("pagestore: sealing segment: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("pagestore: sealing segment: %w", err)
	}
	w.info.Segments = append(w.info.Segments, SegmentInfo{File: name, Pages: w.segPage, Bytes: st.Size()})
	w.info.Pages += w.segPage
	w.f, w.gz, w.bw = nil, nil, nil
	w.nextSeg++
	w.segPage = 0
	return nil
}

// Close seals the open segment and atomically publishes the updated
// index. The ingested pages become visible to readers only when Close
// returns nil.
func (w *Writer) Close() error {
	if err := w.seal(); err != nil {
		return err
	}
	w.store.mu.Lock()
	defer w.store.mu.Unlock()
	b, err := json.MarshalIndent(w.info, "", "  ")
	if err != nil {
		return fmt.Errorf("pagestore: writing index: %w", err)
	}
	if err := fsatomic.WriteFile(filepath.Join(w.dir, "site.json"), append(b, '\n')); err != nil {
		return fmt.Errorf("pagestore: writing index: %w", err)
	}
	return nil
}

// Ingest appends a whole page set to a site partition and seals it — the
// convenience path for loading a generated crawl or an in-memory site.
func (s *Store) Ingest(site string, pages []ceres.PageSource) error {
	w, err := s.Writer(site)
	if err != nil {
		return err
	}
	if err := w.AppendAll(pages); err != nil {
		return err
	}
	return w.Close()
}

// maxReadahead caps how many segments a multi-segment scan decompresses
// concurrently (and therefore how many inflated segments can be in
// memory at once); GOMAXPROCS bounds it further on small machines.
const maxReadahead = 8

// segRead is one planned segment read: skip records at the front of the
// segment, then deliver take records.
type segRead struct {
	seg        SegmentInfo
	skip, take int
}

// planReads maps a record range [start, start+n) onto the segments it
// touches. Segments wholly before or after the range do not appear.
func planReads(info SiteInfo, start, n int) []segRead {
	var reads []segRead
	for _, seg := range info.Segments {
		if n <= 0 {
			break
		}
		if start >= seg.Pages {
			start -= seg.Pages
			continue
		}
		take := seg.Pages - start
		if take > n {
			take = n
		}
		reads = append(reads, segRead{seg: seg, skip: start, take: take})
		n -= take
		start = 0
	}
	return reads
}

// Pages streams records [start, start+n) of a site in ingest order
// through fn. n < 0 streams to the end. A non-nil error from fn stops
// the scan and is returned; cancelling ctx stops it with ctx.Err().
// Whole segments before start are never opened, and records skipped
// within the first touched segment are framed but never decoded into
// strings. When the range spans several segments they are decompressed
// in parallel by a bounded worker pool while fn consumes them strictly
// in order, so the callback sequence is byte-identical to a sequential
// scan; memory is bounded by the readahead window, never the site.
func (s *Store) Pages(ctx context.Context, site string, start, n int, fn func(ceres.PageSource) error) error {
	if start < 0 {
		return fmt.Errorf("pagestore: negative start %d", start)
	}
	info, err := s.Info(site)
	if err != nil {
		return err
	}
	if n < 0 {
		n = info.Pages - start
	}
	reads := planReads(info, start, n)
	if len(reads) == 0 {
		return nil
	}
	if len(reads) == 1 {
		pages, err := s.decodeSegment(site, reads[0])
		if err != nil {
			return err
		}
		for _, p := range pages {
			if err := fn(p); err != nil {
				return err
			}
		}
		return nil
	}
	return s.readAhead(ctx, site, reads, fn)
}

// readAhead fans the planned segment reads out to a worker pool and
// feeds fn in plan order. Workers may run ahead of the consumer by at
// most the pool size (the semaphore doubles as the memory bound: one
// slot per inflated segment until fn has consumed it).
func (s *Store) readAhead(ctx context.Context, site string, reads []segRead, fn func(ceres.PageSource) error) error {
	workers := min(runtime.GOMAXPROCS(0), len(reads), maxReadahead)
	type result struct {
		pages []ceres.PageSource
		err   error
	}
	results := make([]chan result, len(reads))
	for i := range results {
		results[i] = make(chan result, 1) // sends never block
	}
	sem := make(chan struct{}, workers)
	done := make(chan struct{})
	var wg sync.WaitGroup
	// Deferred LIFO: done closes first, releasing the workers the Wait
	// then joins — an early return never leaks a decompressing goroutine.
	defer wg.Wait()
	defer close(done)
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case sem <- struct{}{}: // a readahead slot; the consumer frees it
				case <-done:
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(reads) || ctx.Err() != nil {
					return
				}
				pages, err := s.decodeSegment(site, reads[i])
				results[i] <- result{pages, err}
			}
		}()
	}
	for i := range reads {
		var res result
		select {
		case res = <-results[i]:
		case <-ctx.Done():
			return ctx.Err()
		}
		<-sem // the segment is ours; free its readahead slot
		if res.err != nil {
			return res.err
		}
		for _, p := range res.pages {
			if err := fn(p); err != nil {
				return err
			}
		}
	}
	return nil
}

// Pools for the segment decode path: gzip readers (Reset-able, each
// carries a ~32KiB window), the bufio readers in front of segment files,
// and the inflated-segment buffers. All three grow to the working set of
// the readahead pool and then stop allocating, whatever the corpus size.
var (
	gzipPool  sync.Pool // *gzip.Reader
	bufioPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, 64<<10) }}
	inflPool  sync.Pool // *[]byte
)

// recSpan locates one delivered record's payloads inside an inflated
// segment buffer.
type recSpan struct {
	idLo, idHi, htmlLo, htmlHi int
}

// decodeSegmentRaw opens, inflates and frames one planned segment read,
// returning the pooled inflated buffer and the payload spans of the
// delivered records. Ownership of the buffer transfers to the caller,
// which must inflPool.Put it once the spans are no longer read — this is
// what lets PagesBytes hand record bytes to the tokenizer with no
// []byte→string copy.
func (s *Store) decodeSegmentRaw(site string, sr segRead) (*[]byte, []recSpan, error) {
	f, err := os.Open(filepath.Join(s.siteDir(site), sr.seg.File))
	if err != nil {
		return nil, nil, fmt.Errorf("pagestore: opening segment: %w", err)
	}
	defer f.Close()
	br := bufioPool.Get().(*bufio.Reader)
	br.Reset(f)
	defer bufioPool.Put(br)
	var gz *gzip.Reader
	if pooled := gzipPool.Get(); pooled != nil {
		gz = pooled.(*gzip.Reader)
		err = gz.Reset(br)
	} else {
		gz, err = gzip.NewReader(br)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("pagestore: reading segment %s: %w", sr.seg.File, err)
	}
	defer gzipPool.Put(gz)

	bufp, _ := inflPool.Get().(*[]byte)
	if bufp == nil {
		bufp = new([]byte)
	}
	data, err := readAllInto((*bufp)[:0], gz)
	*bufp = data // keep the grown capacity pooled even on error
	if err != nil {
		inflPool.Put(bufp)
		return nil, nil, fmt.Errorf("pagestore: reading segment %s: %w", sr.seg.File, err)
	}
	if err := gz.Close(); err != nil {
		inflPool.Put(bufp)
		return nil, nil, fmt.Errorf("pagestore: reading segment %s: %w", sr.seg.File, err)
	}

	spans := make([]recSpan, 0, sr.take)
	off := 0
	for i := 0; i < sr.skip+sr.take; i++ {
		idLo, idHi, htmlLo, htmlHi, next, ok := frameRecord(data, off)
		if !ok {
			inflPool.Put(bufp)
			return nil, nil, fmt.Errorf("pagestore: reading segment %s: truncated record %d", sr.seg.File, i)
		}
		if i >= sr.skip { // skipped records never materialize
			spans = append(spans, recSpan{idLo, idHi, htmlLo, htmlHi})
		}
		off = next
	}
	return bufp, spans, nil
}

// decodeSegment is decodeSegmentRaw plus record materialization: each
// delivered record costs exactly the two string allocations its
// ceres.PageSource needs, and the inflated buffer returns to the pool
// before decodeSegment does.
func (s *Store) decodeSegment(site string, sr segRead) ([]ceres.PageSource, error) {
	bufp, spans, err := s.decodeSegmentRaw(site, sr)
	if err != nil {
		return nil, err
	}
	defer inflPool.Put(bufp)
	data := *bufp
	pages := make([]ceres.PageSource, 0, len(spans))
	for _, sp := range spans {
		pages = append(pages, ceres.PageSource{
			ID:   string(data[sp.idLo:sp.idHi]),
			HTML: string(data[sp.htmlLo:sp.htmlHi]),
		})
	}
	return pages, nil
}

// PagesBytes is Pages delivering raw record bytes: fn receives views into
// the pooled inflated segment buffer, valid only during the call — the
// zero-copy feed for the streaming serve path, which copies strings out
// only for emitted extractions. Ordering, range semantics, parallel
// readahead and error behaviour match Pages exactly.
func (s *Store) PagesBytes(ctx context.Context, site string, start, n int, fn func(id, html []byte) error) error {
	if start < 0 {
		return fmt.Errorf("pagestore: negative start %d", start)
	}
	info, err := s.Info(site)
	if err != nil {
		return err
	}
	if n < 0 {
		n = info.Pages - start
	}
	reads := planReads(info, start, n)
	if len(reads) == 0 {
		return nil
	}
	if len(reads) == 1 {
		bufp, spans, err := s.decodeSegmentRaw(site, reads[0])
		if err != nil {
			return err
		}
		defer inflPool.Put(bufp)
		return deliverSpans(*bufp, spans, fn)
	}
	return s.readAheadBytes(ctx, site, reads, fn)
}

// deliverSpans feeds each framed record to fn as buffer views.
func deliverSpans(data []byte, spans []recSpan, fn func(id, html []byte) error) error {
	for _, sp := range spans {
		if err := fn(data[sp.idLo:sp.idHi], data[sp.htmlLo:sp.htmlHi]); err != nil {
			return err
		}
	}
	return nil
}

// readAheadBytes is readAhead for the raw-bytes path: workers inflate
// segments in parallel, the consumer delivers each segment's records in
// plan order and returns its buffer to the pool only after the last
// record was consumed. Buffers stranded in result channels by an early
// return are simply garbage collected.
func (s *Store) readAheadBytes(ctx context.Context, site string, reads []segRead, fn func(id, html []byte) error) error {
	workers := min(runtime.GOMAXPROCS(0), len(reads), maxReadahead)
	type result struct {
		bufp  *[]byte
		spans []recSpan
		err   error
	}
	results := make([]chan result, len(reads))
	for i := range results {
		results[i] = make(chan result, 1) // sends never block
	}
	sem := make(chan struct{}, workers)
	done := make(chan struct{})
	var wg sync.WaitGroup
	defer wg.Wait()
	defer close(done)
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case sem <- struct{}{}: // a readahead slot; the consumer frees it
				case <-done:
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(reads) || ctx.Err() != nil {
					return
				}
				bufp, spans, err := s.decodeSegmentRaw(site, reads[i])
				results[i] <- result{bufp, spans, err}
			}
		}()
	}
	for i := range reads {
		var res result
		select {
		case res = <-results[i]:
		case <-ctx.Done():
			return ctx.Err()
		}
		<-sem // the segment is ours; free its readahead slot
		if res.err != nil {
			return res.err
		}
		err := deliverSpans(*res.bufp, res.spans, fn)
		inflPool.Put(res.bufp)
		if err != nil {
			return err
		}
	}
	return nil
}

// readAllInto reads r to EOF appending to buf (reusing its capacity),
// like io.ReadAll but into a caller-owned buffer.
func readAllInto(buf []byte, r io.Reader) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// frameRecord parses the record frame at off — uvarint id length, id
// bytes, uvarint HTML length, HTML bytes — returning the two payload
// ranges and the offset after the record. It never allocates: callers
// decide which payloads become strings, so skipping is free.
//
//ceres:allocfree
func frameRecord(b []byte, off int) (idLo, idHi, htmlLo, htmlHi, next int, ok bool) {
	idLen, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return 0, 0, 0, 0, 0, false
	}
	idLo = off + n
	if idLen > uint64(len(b)-idLo) {
		return 0, 0, 0, 0, 0, false
	}
	idHi = idLo + int(idLen)
	htmlLen, n := binary.Uvarint(b[idHi:])
	if n <= 0 {
		return 0, 0, 0, 0, 0, false
	}
	htmlLo = idHi + n
	if htmlLen > uint64(len(b)-htmlLo) {
		return 0, 0, 0, 0, 0, false
	}
	htmlHi = htmlLo + int(htmlLen)
	return idLo, idHi, htmlLo, htmlHi, htmlHi, true
}

// ReadAll materializes records [start, start+n) of a site (n < 0 reads to
// the end) — the loading path for bounded page sets like a training
// sample or one shard. Crawl-scale scans should stream with Pages
// instead.
func (s *Store) ReadAll(ctx context.Context, site string, start, n int) ([]ceres.PageSource, error) {
	capHint := n
	if n < 0 {
		if total, err := s.PageCount(site); err == nil && total > start {
			capHint = total - start
		}
	}
	var out []ceres.PageSource
	if capHint > 0 {
		out = make([]ceres.PageSource, 0, capHint)
	}
	err := s.Pages(ctx, site, start, n, func(p ceres.PageSource) error {
		out = append(out, p)
		return nil
	})
	return out, err
}
