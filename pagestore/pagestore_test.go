package pagestore

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ceres"
)

func genPages(prefix string, n int) []ceres.PageSource {
	out := make([]ceres.PageSource, n)
	for i := range out {
		out[i] = ceres.PageSource{
			ID:   fmt.Sprintf("%s%04d", prefix, i),
			HTML: fmt.Sprintf("<html><body><h1>%s page %d</h1>%s</body></html>", prefix, i, strings.Repeat("<p>filler</p>", i%7)),
		}
	}
	return out
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "pages"))
	if err != nil {
		t.Fatal(err)
	}
	a := genPages("a", 53)
	b := genPages("b", 7)
	if err := s.Ingest("alpha.example", a); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("beta.example/films", b); err != nil {
		t.Fatal(err)
	}

	sites, err := s.Sites()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"alpha.example", "beta.example/films"}; !reflect.DeepEqual(sites, want) {
		t.Fatalf("Sites() = %v, want %v", sites, want)
	}
	got, err := s.ReadAll(context.Background(), "alpha.example", 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Fatalf("round trip lost pages: got %d, want %d", len(got), len(a))
	}
	if n, err := s.PageCount("beta.example/films"); err != nil || n != 7 {
		t.Fatalf("PageCount = %d, %v", n, err)
	}
	if _, err := s.Info("nosuch.example"); !errors.Is(err, ErrSiteNotFound) {
		t.Fatalf("Info(missing) = %v, want ErrSiteNotFound", err)
	}
}

// TestSegmentRotationAndRanges proves multi-segment sites read back
// correctly across every range alignment, including ranges spanning
// segment boundaries.
func TestSegmentRotationAndRanges(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pages := genPages("p", 47)
	w, err := s.Writer("multi.example")
	if err != nil {
		t.Fatal(err)
	}
	w.SegmentPages = 10
	if err := w.AppendAll(pages); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	info, err := s.Info("multi.example")
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Segments) != 5 || info.Pages != 47 {
		t.Fatalf("segments = %+v", info)
	}
	if info.Segments[0].Pages != 10 || info.Segments[4].Pages != 7 {
		t.Fatalf("rotation miscounted: %+v", info.Segments)
	}

	for _, r := range []struct{ start, n int }{
		{0, -1}, {0, 47}, {0, 10}, {5, 10}, {9, 2}, {10, 1}, {17, 25}, {40, 7}, {40, -1}, {46, 1}, {47, 5}, {100, -1}, {12, 0},
	} {
		var got []ceres.PageSource
		if err := s.Pages(context.Background(), "multi.example", r.start, r.n, func(p ceres.PageSource) error {
			got = append(got, p)
			return nil
		}); err != nil {
			t.Fatalf("Pages(%d,%d): %v", r.start, r.n, err)
		}
		end := len(pages)
		if r.n >= 0 && r.start+r.n < end {
			end = r.start + r.n
		}
		want := []ceres.PageSource(nil)
		if r.start < len(pages) && r.start < end {
			want = pages[r.start:end]
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Pages(%d,%d) returned %d pages, want %d", r.start, r.n, len(got), len(want))
		}
	}
}

// TestWriterAppendsAcrossSessions proves a second Writer extends an
// existing partition without rewriting sealed segments.
func TestWriterAppendsAcrossSessions(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	first := genPages("first", 12)
	second := genPages("second", 5)
	if err := s.Ingest("site.example", first); err != nil {
		t.Fatal(err)
	}
	info1, _ := s.Info("site.example")

	// Reopen the store, as a new process would.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Ingest("site.example", second); err != nil {
		t.Fatal(err)
	}
	info2, err := s2.Info("site.example")
	if err != nil {
		t.Fatal(err)
	}
	if info2.Pages != 17 || len(info2.Segments) != len(info1.Segments)+1 {
		t.Fatalf("append merged wrong: %+v", info2)
	}
	got, err := s2.ReadAll(context.Background(), "site.example", 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, append(append([]ceres.PageSource{}, first...), second...)) {
		t.Fatalf("appended read-back mismatch: %d pages", len(got))
	}
}

// TestCrashOrphanInvisible proves segments without an index entry —
// what a crash between segment seal and Close leaves behind — are
// invisible to readers and never clobbered by a later writer.
func TestCrashOrphanInvisible(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("site.example", genPages("ok", 3)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crashed ingest: a sealed segment file, no index update.
	w, err := s.Writer("site.example")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(ceres.PageSource{ID: "orphan", HTML: "<html/>"}); err != nil {
		t.Fatal(err)
	}
	if err := w.seal(); err != nil { // segment on disk, Close never runs
		t.Fatal(err)
	}

	if n, err := s.PageCount("site.example"); err != nil || n != 3 {
		t.Fatalf("orphan leaked into index: %d, %v", n, err)
	}
	// A later writer numbers past the orphan instead of clobbering it.
	w2, err := s.Writer("site.example")
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(ceres.PageSource{ID: "later", HTML: "<html/>"}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadAll(context.Background(), "site.example", 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[3].ID != "later" {
		t.Fatalf("post-crash append broken: %+v", got)
	}
}

func TestStoreSiteNameValidation(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", ".", ".."} {
		if _, err := s.Writer(bad); !errors.Is(err, ceres.ErrInvalidSiteName) {
			t.Errorf("Writer(%q) = %v, want ErrInvalidSiteName", bad, err)
		}
		if _, err := s.Info(bad); !errors.Is(err, ceres.ErrInvalidSiteName) {
			t.Errorf("Info(%q) = %v, want ErrInvalidSiteName", bad, err)
		}
	}
	// Unicode and slashed names stay inside the root and round-trip.
	if err := s.Ingest("../kinobox.cz", genPages("x", 2)); err != nil {
		t.Fatal(err)
	}
	sites, err := s.Sites()
	if err != nil || len(sites) != 1 || sites[0] != "../kinobox.cz" {
		t.Fatalf("Sites() = %v, %v", sites, err)
	}
	ents, err := os.ReadDir(filepath.Join(s.Root(), "sites"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("partition escaped: %v %v", ents, err)
	}
	if err := s.Ingest("x", []ceres.PageSource{{ID: "", HTML: "y"}}); !errors.Is(err, ceres.ErrInvalidPage) {
		t.Fatalf("empty page ID accepted: %v", err)
	}
}
