package ceres

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"ceres/internal/obs"
)

// WatcherOptions tunes a ModelWatcher.
type WatcherOptions struct {
	// Interval is the base poll period (default 5s). Each wait is
	// jittered around it so a fleet of replicas sharing one store does
	// not poll in lockstep.
	Interval time.Duration
	// Jitter is the fraction of Interval each wait may deviate by,
	// uniformly in ±Jitter (default 0.2; 0 < Jitter < 1). Negative
	// disables jitter.
	Jitter float64
	// Backoff is the delay before retrying a site whose model failed to
	// load (default Interval). Consecutive failures double it up to
	// MaxBackoff (default 16×Backoff) — one corrupt artifact must not
	// make every poll re-read it.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Metrics instruments the watcher (poll/swap/rollback/error
	// counters); nil leaves it uninstrumented.
	Metrics *Metrics
	// OnSwap, when non-nil, is called after each applied swap with the
	// version the site moved from (0 = previously unregistered) and to.
	// Called from the watcher goroutine; keep it fast.
	OnSwap func(site string, from, to int)
}

func (o WatcherOptions) withDefaults() WatcherOptions {
	if o.Interval <= 0 {
		o.Interval = 5 * time.Second
	}
	if o.Jitter == 0 {
		o.Jitter = 0.2
	}
	if o.Backoff <= 0 {
		o.Backoff = o.Interval
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 16 * o.Backoff
	}
	return o
}

// ModelWatcher converges a Registry onto a ModelStore: it polls the
// store and hot-swaps any site whose stored latest version differs from
// the registry's serving version. A fleet of replica processes each
// running a watcher over one shared DirStore converges on a publish with
// no restart and no coordination — the store's atomic link-into-place
// publish is the only synchronization point (DESIGN.md §12).
//
// Version skew in either direction is converged: a store version above
// the registry's is a rollout, below it is a rollback (counted
// separately — e.g. an operator deleted a bad version file and the
// fleet must fall back). Sites missing from the store are left serving;
// the watcher only ever adds or replaces models, so a listing hiccup
// cannot unserve a fleet.
//
// A watcher is owned by the goroutine running Run; Poll may be called
// directly instead for externally-scheduled convergence (tests, cron).
type ModelWatcher struct {
	store ModelStore
	reg   *Registry
	opt   WatcherOptions

	// fail tracks per-site load-failure backoff; owned by the polling
	// goroutine (Run and Poll are not safe for concurrent use).
	fail map[string]*siteFailure
	now  func() time.Time // test hook; time.Now outside tests

	polls     *obs.Counter // ceres_watcher_polls_total
	swapped   *obs.Counter // ceres_watcher_swaps_total
	rollbacks *obs.Counter // ceres_watcher_rollbacks_total
	loadErrs  *obs.Counter // ceres_watcher_errors_total
}

// siteFailure is one site's load-failure state: how many consecutive
// failures, and when the next attempt is allowed.
type siteFailure struct {
	consecutive int
	notBefore   time.Time
}

// NewModelWatcher builds a watcher converging reg onto store.
func NewModelWatcher(store ModelStore, reg *Registry, opts WatcherOptions) *ModelWatcher {
	w := &ModelWatcher{
		store: store,
		reg:   reg,
		opt:   opts.withDefaults(),
		fail:  map[string]*siteFailure{},
		now:   time.Now,
	}
	if m := w.opt.Metrics; m != nil {
		w.polls = m.Counter("ceres_watcher_polls_total",
			"Model-store polls completed (including failed ones).")
		w.swapped = m.Counter("ceres_watcher_swaps_total",
			"Model hot-swaps applied by the watcher.")
		w.rollbacks = m.Counter("ceres_watcher_rollbacks_total",
			"Watcher swaps that moved a site to a lower version.")
		w.loadErrs = m.Counter("ceres_watcher_errors_total",
			"Store listing or model load failures observed by the watcher.")
	}
	return w
}

// Run polls the store until ctx is cancelled, waiting a jittered
// interval between polls, and returns ctx.Err(). Poll errors (store
// listing or model loads) are counted and retried with backoff, never
// fatal: a serving replica must keep serving its current models through
// a store outage.
func (w *ModelWatcher) Run(ctx context.Context) error {
	// Seeded from the clock per watcher: replica processes get distinct
	// phases, which is the whole point of the jitter.
	rng := rand.New(rand.NewSource(w.now().UnixNano()))
	t := time.NewTimer(w.jittered(rng))
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
		w.Poll(ctx) //nolint:errcheck // counted in metrics; Run must outlive store outages
		t.Reset(w.jittered(rng))
	}
}

// jittered returns the next wait: Interval ± Jitter·Interval.
func (w *ModelWatcher) jittered(rng *rand.Rand) time.Duration {
	j := w.opt.Jitter
	if j <= 0 {
		return w.opt.Interval
	}
	scale := 1 + j*(2*rng.Float64()-1)
	return time.Duration(float64(w.opt.Interval) * scale)
}

// Poll performs one convergence pass: list the store, and for every site
// whose stored latest version differs from the registry's, load and
// publish it. It returns the number of swaps applied and the first error
// (a listing failure aborts the pass; per-site load failures are counted,
// backed off and skipped, and do not stop other sites from converging).
func (w *ModelWatcher) Poll(ctx context.Context) (swapped int, err error) {
	w.polls.Inc()
	ents, err := w.store.List()
	if err != nil {
		w.loadErrs.Inc()
		return 0, fmt.Errorf("ceres: watcher: listing store: %w", err)
	}
	var firstErr error
	now := w.now()
	for _, ent := range ents {
		if err := ctx.Err(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			break
		}
		if len(ent.Versions) == 0 {
			continue
		}
		latest := ent.Versions[len(ent.Versions)-1]
		cur, registered := w.reg.Lookup(ent.Site)
		if registered && cur.Version == latest {
			delete(w.fail, ent.Site) // converged; clear any backoff
			continue
		}
		if f, ok := w.fail[ent.Site]; ok && now.Before(f.notBefore) {
			continue // backing off a previously failed load
		}
		m, err := w.store.Open(ent.Site, latest)
		if err != nil {
			w.loadErrs.Inc()
			w.backoff(ent.Site, now)
			if firstErr == nil {
				firstErr = fmt.Errorf("ceres: watcher: site %q version %d: %w", ent.Site, latest, err)
			}
			continue
		}
		w.reg.Publish(ent.Site, latest, m)
		delete(w.fail, ent.Site)
		swapped++
		w.swapped.Inc()
		if registered && latest < cur.Version {
			w.rollbacks.Inc()
		}
		if w.opt.OnSwap != nil {
			w.opt.OnSwap(ent.Site, cur.Version, latest)
		}
	}
	return swapped, firstErr
}

// backoff records a failed load: exponential per-site delay, capped.
func (w *ModelWatcher) backoff(site string, now time.Time) {
	f := w.fail[site]
	if f == nil {
		f = &siteFailure{}
		w.fail[site] = f
	}
	d := w.opt.Backoff << f.consecutive
	if d > w.opt.MaxBackoff || d <= 0 { // <=0: shift overflow
		d = w.opt.MaxBackoff
	}
	f.consecutive++
	f.notBefore = now.Add(d)
}
