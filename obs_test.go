package ceres

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// metricsText renders a Metrics registry for assertions.
func metricsText(t *testing.T, m *Metrics) string {
	t.Helper()
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestServiceShedsWithErrOverloaded saturates a single-slot service with
// bounded admission and checks the typed sentinel, the shed counter and
// the inflight gauge.
func TestServiceShedsWithErrOverloaded(t *testing.T) {
	f := getTrainServeFixture(t)
	reg := NewRegistry()
	reg.Publish("demo", 1, f.model)
	m := NewMetrics()
	svc := NewService(reg, WithMaxInflight(1), WithAdmissionWait(0), WithMetrics(m))

	block := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		svc.ExtractStream(context.Background(), ExtractRequest{Site: "demo", Pages: f.serve}, func(Triple) error {
			once.Do(func() { close(block) })
			<-release
			return nil
		})
	}()
	<-block // the only slot is held mid-stream

	// Shed happens immediately (admission wait 0) with the typed
	// sentinel, not a context error and not an internal error.
	_, err := svc.Extract(context.Background(), ExtractRequest{Site: "demo", Pages: f.serve})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated Extract = %v, want ErrOverloaded", err)
	}
	// The gauge sees exactly the in-flight request.
	if text := metricsText(t, m); !strings.Contains(text, "ceres_inflight_requests 1") {
		t.Errorf("inflight gauge during a held request:\n%s", text)
	}
	close(release)
	wg.Wait()

	text := metricsText(t, m)
	for _, want := range []string{
		"ceres_requests_shed_total 1",
		"ceres_inflight_requests 0",
		`ceres_requests_total{site="demo"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestServiceAdmissionWaitAdmitsWhenSlotFrees: a bounded wait long
// enough to span the held slot admits instead of shedding.
func TestServiceAdmissionWaitAdmitsWhenSlotFrees(t *testing.T) {
	f := getTrainServeFixture(t)
	reg := NewRegistry()
	reg.Publish("demo", 1, f.model)
	svc := NewService(reg, WithMaxInflight(1), WithAdmissionWait(30*time.Second))

	block := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	go func() {
		svc.ExtractStream(context.Background(), ExtractRequest{Site: "demo", Pages: f.serve}, func(Triple) error {
			once.Do(func() { close(block) })
			<-release
			return nil
		})
	}()
	<-block
	done := make(chan error, 1)
	go func() {
		_, err := svc.Extract(context.Background(), ExtractRequest{Site: "demo", Pages: f.serve})
		done <- err
	}()
	// Give the second request a moment to reach the admission queue,
	// then free the slot: it must serve, not shed.
	time.Sleep(10 * time.Millisecond)
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("queued request within admission wait failed: %v", err)
	}
}

// TestServiceMetricsExposition drives requests through an instrumented
// service + registry and parses the full exposition, asserting every
// acceptance-criteria family: latency histograms, per-site counters,
// model versions, inflight, shed and swap counts.
func TestServiceMetricsExposition(t *testing.T) {
	f := getTrainServeFixture(t)
	reg := NewRegistry()
	m := NewMetrics()
	reg.Instrument(m)
	reg.Publish("demo", 1, f.model)
	svc := NewService(reg, WithMetrics(m))
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := svc.Extract(ctx, ExtractRequest{Site: "demo", Pages: f.serve}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := svc.Extract(ctx, ExtractRequest{Site: "nope", Pages: f.serve}); !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("unknown site = %v", err)
	}
	reg.Publish("demo", 2, f.model) // a hot swap

	text := metricsText(t, m)
	samples := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			samples[line] = true
		}
	}
	for _, want := range []string{
		`ceres_requests_total{site="demo"} 3`,
		`ceres_request_errors_total{site="_unknown"} 1`,
		`ceres_model_version{site="demo"} 2`,
		"ceres_registry_swaps_total 2",
		"ceres_registry_sites 1",
		"ceres_inflight_requests 0",
		"ceres_requests_shed_total 0",
		`ceres_request_latency_seconds_count{site="demo"} 3`,
	} {
		if !samples[want] {
			t.Errorf("exposition missing sample %q:\n%s", want, text)
		}
	}
	// Pages/triples counters accumulated across the three requests.
	wantPages := 3 * len(f.serve)
	if !strings.Contains(text, `ceres_pages_total{site="demo"} `+itoa(wantPages)) {
		t.Errorf("pages counter != %d:\n%s", wantPages, text)
	}
	// The latency histogram has cumulative buckets ending in +Inf == count.
	if !strings.Contains(text, `ceres_request_latency_seconds_bucket{site="demo",le="+Inf"} 3`) {
		t.Errorf("latency +Inf bucket != count:\n%s", text)
	}
	if !strings.Contains(text, "# TYPE ceres_request_latency_seconds histogram") {
		t.Errorf("latency family missing TYPE histogram:\n%s", text)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestServiceMetricsSharedRegistry: two services instrumenting one
// Metrics must coexist (idempotent registration), with counts merged.
func TestServiceMetricsSharedRegistry(t *testing.T) {
	f := getTrainServeFixture(t)
	reg := NewRegistry()
	reg.Publish("demo", 1, f.model)
	m := NewMetrics()
	a := NewService(reg, WithMetrics(m))
	b := NewService(reg, WithMetrics(m))
	ctx := context.Background()
	if _, err := a.Extract(ctx, ExtractRequest{Site: "demo", Pages: f.serve}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Extract(ctx, ExtractRequest{Site: "demo", Pages: f.serve}); err != nil {
		t.Fatal(err)
	}
	if text := metricsText(t, m); !strings.Contains(text, `ceres_requests_total{site="demo"} 2`) {
		t.Errorf("shared registry did not merge counts:\n%s", text)
	}
}
