# Build a static ceres-serve image. The binary is pure Go (stdlib only),
# so the runtime layer is scratch plus CA certs — a few MB total.
FROM golang:1.24 AS build
WORKDIR /src
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags="-s -w" -o /ceres-serve ./cmd/ceres-serve

FROM gcr.io/distroless/static-debian12:nonroot
COPY --from=build /ceres-serve /ceres-serve
# Replicas share one model store volume; the watcher (CERES_WATCH)
# converges every replica on a publish with no restart.
ENV CERES_ADDR=:8080 \
    CERES_STORE=/models \
    CERES_WATCH=2s \
    CERES_ADMISSION_WAIT=1s
VOLUME /models
EXPOSE 8080
ENTRYPOINT ["/ceres-serve"]
