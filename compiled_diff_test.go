package ceres

// Differential tests for the compiled serve path (DESIGN.md §5): serving
// through SiteModel — which featurizes via compiled integer tables and
// scores through the allocation-free Scorer fast path — must be
// output-identical to the legacy string-hashing path (PreparePage +
// Route + core.ExtractPage), triple for triple, confidence bit for bit,
// across every DemoCorpus site, both classifiers, and untrained-cluster
// routing. Serialization must be unaffected by compilation.

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"ceres/internal/core"
)

// legacyExtract reproduces the pre-compilation serve path with exported
// core pieces: full page preparation, routing, string-hashed features,
// allocating scorer.
func legacyExtract(sm *core.SiteModel, sources []core.PageSource) []core.Extraction {
	var out []core.Extraction
	for _, src := range sources {
		p := core.PreparePage(src.ID, src.HTML)
		ci := sm.Route(p)
		if ci < 0 || !sm.Clusters[ci].Trained {
			continue
		}
		out = append(out, core.ExtractPage(p, sm.Clusters[ci].Model, sm.Extract)...)
	}
	return out
}

func corpusSources(t *testing.T, kind string, seed int64, pages int) ([]core.PageSource, *Corpus) {
	t.Helper()
	c, err := DemoCorpus(kind, seed, pages)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]core.PageSource, len(c.Pages))
	for i, p := range c.Pages {
		src[i] = core.PageSource{ID: p.ID, HTML: p.HTML}
	}
	return src, c
}

func diffServe(t *testing.T, name string, sm *core.SiteModel, serve []core.PageSource) int {
	t.Helper()
	want := legacyExtract(sm, serve)
	got, err := sm.ExtractSources(context.Background(), serve)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if !reflect.DeepEqual(got, want) {
		max := len(got)
		if len(want) < max {
			max = len(want)
		}
		for i := 0; i < max; i++ {
			if got[i] != want[i] {
				t.Fatalf("%s: extraction %d diverges\ncompiled: %+v\nlegacy:   %+v", name, i, got[i], want[i])
			}
		}
		t.Fatalf("%s: compiled path %d extractions, legacy %d", name, len(got), len(want))
	}
	return len(want)
}

// TestCompiledServeMatchesLegacyAllCorpora trains on half of every demo
// corpus and serves the other (unseen) half down both paths.
func TestCompiledServeMatchesLegacyAllCorpora(t *testing.T) {
	kinds := []string{"movies", "movies-longtail", "imdb-films", "imdb-people", "crawl-czech"}
	total := 0
	for _, kind := range kinds {
		src, c := corpusSources(t, kind, 7, 40)
		var train, serve []core.PageSource
		for i, s := range src {
			if i%2 == 0 {
				train = append(train, s)
			} else {
				serve = append(serve, s)
			}
		}
		sm, _, err := core.TrainSite(context.Background(), train, c.KB, core.Config{Train: core.TrainOptions{Seed: 1}})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		n := diffServe(t, kind, sm, serve)
		t.Logf("%s: %d extractions identical on both paths", kind, n)
		total += n
	}
	if total == 0 {
		t.Fatal("no corpus produced extractions; differential vacuous")
	}
}

// TestCompiledServeMatchesLegacyNaiveBayes repeats the differential with
// the classifier ablation, which serves through the same Scorer contract.
func TestCompiledServeMatchesLegacyNaiveBayes(t *testing.T) {
	src, c := corpusSources(t, "movies", 7, 40)
	sm, _, err := core.TrainSite(context.Background(), src[:20], c.KB,
		core.Config{Train: core.TrainOptions{Seed: 1, Classifier: "nb"}})
	if err != nil {
		t.Fatal(err)
	}
	if n := diffServe(t, "movies/nb", sm, src[20:]); n == 0 {
		t.Fatal("naive Bayes extracted nothing; differential vacuous")
	}
}

// TestCompiledServeUntrainedClusterRouting mixes two template families
// with a KB covering only one, so the other's cluster exists but is
// untrained: pages routed there must yield nothing, identically on both
// paths.
func TestCompiledServeUntrainedClusterRouting(t *testing.T) {
	movieSrc, movieCorpus := corpusSources(t, "movies", 7, 30)
	imdbSrc, _ := corpusSources(t, "imdb-films", 3, 20)
	train := append(append([]core.PageSource{}, movieSrc[:15]...), imdbSrc[:10]...)
	sm, _, err := core.TrainSite(context.Background(), train, movieCorpus.KB, core.Config{Train: core.TrainOptions{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sm.Clusters) < 2 {
		t.Fatalf("expected >=2 template clusters, got %d", len(sm.Clusters))
	}
	if sm.TrainedClusters() == len(sm.Clusters) {
		t.Fatalf("expected at least one untrained cluster")
	}
	serve := append(append([]core.PageSource{}, movieSrc[15:]...), imdbSrc[10:]...)
	// The serve set must actually exercise untrained-cluster routing.
	untrainedHits := 0
	for _, s := range serve {
		ci := sm.Route(core.PrepareServePage(s.ID, s.HTML))
		if ci >= 0 && !sm.Clusters[ci].Trained {
			untrainedHits++
		}
	}
	if untrainedHits == 0 {
		t.Fatal("no serve page routed to an untrained cluster; test vacuous")
	}
	if n := diffServe(t, "mixed", sm, serve); n == 0 {
		t.Fatal("trained cluster extracted nothing; differential vacuous")
	}
}

// TestCompiledServeLeavesSerializationUnchanged: compiling and serving
// must not mutate the model; WriteTo is byte-identical before and after,
// and a reloaded model re-serializes identically (the on-disk format has
// no compiled artifacts).
func TestCompiledServeLeavesSerializationUnchanged(t *testing.T) {
	c, err := DemoCorpus("movies", 7, 30)
	if err != nil {
		t.Fatal(err)
	}
	model, err := NewPipeline(c.KB).Train(context.Background(), c.Pages[:15])
	if err != nil {
		t.Fatal(err)
	}
	var before bytes.Buffer
	if _, err := model.WriteTo(&before); err != nil {
		t.Fatal(err)
	}
	if _, err := model.Extract(context.Background(), c.Pages[15:]); err != nil {
		t.Fatal(err)
	}
	var after bytes.Buffer
	if _, err := model.WriteTo(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("serving through the compiled path changed the serialized model")
	}
	loaded, err := ReadSiteModel(bytes.NewReader(after.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.Extract(context.Background(), c.Pages[15:]); err != nil {
		t.Fatal(err)
	}
	var reloaded bytes.Buffer
	if _, err := loaded.WriteTo(&reloaded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), reloaded.Bytes()) {
		t.Fatal("reload + compiled serve changed the serialized bytes")
	}
}

// TestReadSiteModelV1ZeroMeansDefault: version-1 files stored unresolved
// extraction options (zero meant "default"); loading one must keep the
// old semantics instead of taking the zero literally.
func TestReadSiteModelV1ZeroMeansDefault(t *testing.T) {
	c, err := DemoCorpus("movies", 7, 20)
	if err != nil {
		t.Fatal(err)
	}
	model, err := NewPipeline(c.KB).Train(context.Background(), c.Pages)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := model.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	v1 := bytes.Replace(buf.Bytes(), []byte(`"format":"ceres.sitemodel/2"`), []byte(`"format":"ceres.sitemodel/1"`), 1)
	v1 = bytes.Replace(v1, []byte(`"Extract":{"NameThreshold":0.5}`), []byte(`"Extract":{"NameThreshold":0}`), 1)
	if bytes.Equal(v1, buf.Bytes()) {
		t.Fatal("fixture rewrite failed; format or Extract layout changed")
	}
	loaded, err := ReadSiteModel(bytes.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	// v1 semantics: the stored zero resolves to the 0.5 default.
	if got := loaded.sm.Extract.Resolve().NameThreshold; got != 0.5 {
		t.Fatalf("v1 zero NameThreshold restored as %v, want default 0.5", got)
	}

	// v2 semantics: a stored zero is literal (it can only have been put
	// there by an Explicit zero at training time).
	v2zero := bytes.Replace(buf.Bytes(), []byte(`"Extract":{"NameThreshold":0.5}`), []byte(`"Extract":{"NameThreshold":0}`), 1)
	loaded2, err := ReadSiteModel(bytes.NewReader(v2zero))
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded2.sm.Extract.Resolve().NameThreshold; got != 0 {
		t.Fatalf("v2 explicit-zero NameThreshold restored as %v, want literal 0", got)
	}

	// And loading a v1 file still serves.
	res, err := loaded.Extract(context.Background(), c.Pages)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Triples) == 0 {
		t.Fatal("v1 model served no triples")
	}
}
