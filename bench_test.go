package ceres

// This file provides one testing.B benchmark per table and figure of the
// paper's evaluation section (run them with `go test -bench=.`), plus
// micro-benchmarks of the pipeline's hot stages. The table/figure
// benchmarks run at the reduced "quick" scale so the whole suite finishes
// in minutes; `cmd/ceres-bench` regenerates the full-scale numbers that
// EXPERIMENTS.md records.

import (
	"context"
	"sync/atomic"
	"testing"

	"ceres/internal/bench"
	"ceres/internal/core"
	"ceres/internal/mlr"
	"ceres/internal/websim"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := bench.QuickConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := e.Run(context.Background(), cfg)
		if r.Text == "" {
			b.Fatalf("%s produced no report", id)
		}
	}
}

func BenchmarkTable1SWDEGeneration(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkTable2KBConstruction(b *testing.B)    { benchExperiment(b, "table2") }
func BenchmarkTable3SWDEComparison(b *testing.B)    { benchExperiment(b, "table3") }
func BenchmarkTable4PerPredicate(b *testing.B)      { benchExperiment(b, "table4") }
func BenchmarkFigure4BookOverlap(b *testing.B)      { benchExperiment(b, "figure4") }
func BenchmarkFigure5AnnotationBudget(b *testing.B) { benchExperiment(b, "figure5") }
func BenchmarkTable5IMDbExtraction(b *testing.B)    { benchExperiment(b, "table5") }
func BenchmarkTable6AnnotationQuality(b *testing.B) { benchExperiment(b, "table6") }
func BenchmarkTable7TopicID(b *testing.B)           { benchExperiment(b, "table7") }
func BenchmarkFigure6ConfidenceSweep(b *testing.B)  { benchExperiment(b, "figure6") }
func BenchmarkTable8CrawlBreakdown(b *testing.B)    { benchExperiment(b, "table8") }
func BenchmarkTable9TopPredicates(b *testing.B)     { benchExperiment(b, "table9") }
func BenchmarkAblations(b *testing.B)               { benchExperiment(b, "ablate") }

// ---------------------------------------------------------------- micro

// pipelineFixture builds a 60-page movie site once for the stage
// micro-benchmarks.
type pipelineFixture struct {
	sources []core.PageSource
	pages   []*core.Page
	kb      *KB
}

var fixture *pipelineFixture

func getFixture(b *testing.B) *pipelineFixture {
	b.Helper()
	if fixture != nil {
		return fixture
	}
	w := websim.NewWorld(websim.WorldConfig{Seed: 42})
	site := websim.BuildMovieSite(w, w.Films[:60],
		websim.MovieSiteStyle{Layout: "table", Prefix: "bm", Language: "en", Recommendations: true},
		"bench-site", 7)
	f := &pipelineFixture{kb: websim.BuildKB(w, websim.FullCoverage(), 3)}
	for _, p := range site.Pages {
		f.sources = append(f.sources, core.PageSource{ID: p.ID, HTML: p.HTML})
	}
	f.pages = core.ParsePages(f.sources, 0)
	fixture = f
	return f
}

// BenchmarkStageParse measures HTML parsing + text-field enumeration.
func BenchmarkStageParse(b *testing.B) {
	f := getFixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.PreparePage(f.sources[i%len(f.sources)].ID, f.sources[i%len(f.sources)].HTML)
	}
}

// BenchmarkStageTopicIdentification measures Algorithm 1 over the site —
// the indexed path (kb.Index interning + worker pool) that the pipeline
// runs. The kb.Index is built once per KB and cached, like the compiled
// serve model.
func BenchmarkStageTopicIdentification(b *testing.B) {
	f := getFixture(b)
	f.kb.BuildIndex() // one-time per-KB cost, excluded like model Compile()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.IdentifyTopics(f.pages, f.kb, core.TopicOptions{})
	}
}

// BenchmarkStageTopicIdentificationLegacy is the pre-compilation string
// path, kept as the baseline the indexed numbers are quoted against.
func BenchmarkStageTopicIdentificationLegacy(b *testing.B) {
	f := getFixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.IdentifyTopicsLegacy(f.pages, f.kb, core.TopicOptions{})
	}
}

// BenchmarkStageAnnotate measures Algorithms 1+2 over the site down the
// indexed path the pipeline runs.
func BenchmarkStageAnnotate(b *testing.B) {
	f := getFixture(b)
	f.kb.BuildIndex() // one-time per-KB cost, excluded like model Compile()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Annotate(f.pages, f.kb, core.TopicOptions{}, core.RelationOptions{})
	}
}

// BenchmarkStageAnnotateSingleWorker isolates the algorithmic win from
// the worker-pool win: the indexed path pinned to one goroutine.
func BenchmarkStageAnnotateSingleWorker(b *testing.B) {
	f := getFixture(b)
	f.kb.BuildIndex()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.AnnotateCtx(context.Background(), f.pages, f.kb,
			core.TopicOptions{}, core.RelationOptions{}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStageAnnotateLegacy is the pre-compilation baseline.
func BenchmarkStageAnnotateLegacy(b *testing.B) {
	f := getFixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.AnnotateLegacy(f.pages, f.kb, core.TopicOptions{}, core.RelationOptions{})
	}
}

// BenchmarkKBBuildIndex measures the one-time cold index construction a
// site pays before its first annotation (cached until the KB mutates).
func BenchmarkKBBuildIndex(b *testing.B) {
	w := websim.NewWorld(websim.WorldConfig{Seed: 42})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		k := websim.BuildKB(w, websim.FullCoverage(), 3)
		b.StartTimer()
		k.BuildIndex()
	}
}

// BenchmarkStageTrain measures feature extraction + L-BFGS training.
func BenchmarkStageTrain(b *testing.B) {
	f := getFixture(b)
	ann := core.Annotate(f.pages, f.kb, core.TopicOptions{}, core.RelationOptions{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fz := core.NewFeaturizer(f.pages, core.FeatureOptions{})
		ds, classes := core.BuildExamples(f.pages, ann, fz, core.TrainOptions{Seed: 1})
		fz.Freeze()
		if _, err := core.TrainModel(ds, classes, fz, core.TrainOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStageExtract measures per-page classification throughput.
func BenchmarkStageExtract(b *testing.B) {
	f := getFixture(b)
	ann := core.Annotate(f.pages, f.kb, core.TopicOptions{}, core.RelationOptions{})
	fz := core.NewFeaturizer(f.pages, core.FeatureOptions{})
	ds, classes := core.BuildExamples(f.pages, ann, fz, core.TrainOptions{Seed: 1})
	fz.Freeze()
	model, err := core.TrainModel(ds, classes, fz, core.TrainOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ExtractPage(f.pages[i%len(f.pages)], model, core.ExtractOptions{})
	}
}

// BenchmarkFeaturize contrasts the training-time featurizer (string
// concatenation + dictionary hashing, fresh sorted slice per field) with
// the compiled serve-path featurizer (integer tables + reusable
// VectorBuilder) over every field of a page.
func BenchmarkFeaturize(b *testing.B) {
	f := getFixture(b)
	ann := core.Annotate(f.pages, f.kb, core.TopicOptions{}, core.RelationOptions{})
	fz := core.NewFeaturizer(f.pages, core.FeatureOptions{})
	core.BuildExamples(f.pages, ann, fz, core.TrainOptions{Seed: 1})
	fz.Freeze()
	page := f.pages[0]

	b.Run("Legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, fld := range page.Fields {
				if v := fz.Features(fld); len(v) == 0 {
					b.Fatal("no features")
				}
			}
		}
	})
	b.Run("Compiled", func(b *testing.B) {
		cf, err := fz.Compile()
		if err != nil {
			b.Fatal(err)
		}
		var vb mlr.VectorBuilder
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, fld := range page.Fields {
				vb.Reset()
				cf.AppendFeatures(&vb, fld)
				if v := vb.Build(); len(v) == 0 {
					b.Fatal("no features")
				}
			}
		}
	})
}

// BenchmarkEndToEndSite measures the full pipeline on the 60-page site.
func BenchmarkEndToEndSite(b *testing.B) {
	f := getFixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(context.Background(), f.sources, f.kb, core.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeExtract contrasts the one-shot path (ExtractPages
// retrains on every call) with the train-once/extract-forever path the
// serving API enables. The "OneShot" numbers pay parse+cluster+annotate+
// train per call; "TrainOnce" pays only parse+route+classify.
func BenchmarkServeExtract(b *testing.B) {
	f := getFixture(b)
	pages := make([]PageSource, len(f.sources))
	for i, s := range f.sources {
		pages[i] = PageSource{ID: s.ID, HTML: s.HTML}
	}
	p := NewPipeline(f.kb)

	b.Run("OneShot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.ExtractPages(context.Background(), pages); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("TrainOnce", func(b *testing.B) {
		model, err := p.Train(context.Background(), pages)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := model.Extract(context.Background(), pages); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(pages))*float64(b.N)/b.Elapsed().Seconds(), "pages/s")
	})
	b.Run("TrainOnceStream", func(b *testing.B) {
		model, err := p.Train(context.Background(), pages)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := 0
			if err := model.ExtractStream(context.Background(), pages, func(Triple) error {
				n++
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			if n == 0 {
				b.Fatal("stream produced no triples")
			}
		}
		b.ReportMetric(float64(len(pages))*float64(b.N)/b.Elapsed().Seconds(), "pages/s")
	})
}

// BenchmarkStreamServe contrasts the zero-DOM streaming serve path with
// the DOM (tree-building) serve path over one trained site model — the
// serve-side half of the BENCH_8.json throughput story. Both variants
// serve the same 60 pages; only the path differs.
func BenchmarkStreamServe(b *testing.B) {
	f := getFixture(b)
	sm, _, err := core.TrainSite(context.Background(), f.sources, f.kb,
		core.Config{Train: core.TrainOptions{Seed: 1}})
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name    string
		disable bool
	}{{"Stream", false}, {"DOM", true}} {
		b.Run(bc.name, func(b *testing.B) {
			sm.DisableStreaming = bc.disable
			defer func() { sm.DisableStreaming = false }()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				exts, err := sm.ExtractSources(context.Background(), f.sources)
				if err != nil {
					b.Fatal(err)
				}
				if len(exts) == 0 {
					b.Fatal("no extractions")
				}
			}
			b.ReportMetric(float64(len(f.sources))*float64(b.N)/b.Elapsed().Seconds(), "pages/s")
		})
	}
}

// BenchmarkServiceExtract measures the request-scoped serving stack —
// Registry lookup, per-request threshold, stats — end to end, both for
// one caller and for many concurrent requests against one hot model (the
// daemon's steady state).
func BenchmarkServiceExtract(b *testing.B) {
	f := getFixture(b)
	pages := make([]PageSource, len(f.sources))
	for i, s := range f.sources {
		pages[i] = PageSource{ID: s.ID, HTML: s.HTML}
	}
	model, err := NewPipeline(f.kb).Train(context.Background(), pages)
	if err != nil {
		b.Fatal(err)
	}
	reg := NewRegistry()
	reg.Publish("bench", 1, model)
	svc := NewService(reg)
	th := 0.75
	req := ExtractRequest{Site: "bench", Pages: pages, Options: RequestOptions{Threshold: &th}}

	b.Run("Sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := svc.Extract(context.Background(), req); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(pages))*float64(b.N)/b.Elapsed().Seconds(), "pages/s")
	})
	// SequentialMetrics is Sequential with full instrumentation wired
	// (WithMetrics: per-site counters, latency histogram, inflight
	// gauge), so the benchjson trajectory records the observability tax —
	// the acceptance bar is within 2% of the uninstrumented path.
	b.Run("SequentialMetrics", func(b *testing.B) {
		msvc := NewService(reg, WithMetrics(NewMetrics()))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := msvc.Extract(context.Background(), req); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(pages))*float64(b.N)/b.Elapsed().Seconds(), "pages/s")
	})
	// SequentialTraced is Sequential with a tracer attached but sampling
	// off — the fleet's default posture. The nil-span fast path must make
	// this allocation-identical to Sequential (asserted exactly in
	// TestServiceSampledOutAllocParity; the benchjson trajectory records
	// the residual time tax, which must stay within noise).
	b.Run("SequentialTraced", func(b *testing.B) {
		tsvc := NewService(reg, WithTracer(NewTracer(TracerOptions{SampleEvery: 0})))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tsvc.Extract(context.Background(), req); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(pages))*float64(b.N)/b.Elapsed().Seconds(), "pages/s")
	})
	b.Run("Parallel", func(b *testing.B) {
		// One page per request, many requests in flight: the request
		// fan-in shape of the HTTP daemon.
		b.ReportAllocs()
		var i atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				idx := int(i.Add(1)) % len(pages)
				one := ExtractRequest{
					Site:    "bench",
					Pages:   pages[idx : idx+1],
					Options: RequestOptions{Threshold: &th, Workers: 1},
				}
				if _, err := svc.Extract(context.Background(), one); err != nil {
					b.Fatal(err)
				}
			}
		})
		// Each iteration serves exactly one page, so the page rate is the
		// iteration rate; reported so benchjson trajectories can compare
		// the parallel path against Sequential across PRs.
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pages/s")
	})
}
