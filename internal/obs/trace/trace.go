// Package trace is the repo's stdlib-only span tracer (DESIGN.md §13):
// context-propagated span trees with monotonic timings, 1-in-N request
// sampling, a fixed-capacity ring of completed traces, and JSONL export
// for the daemon's /debug/traces endpoint.
//
// The design constraint is the serve hot path: a Service with tracing
// configured but a request sampled out must behave exactly like an
// untraced Service — same instruction path shape, zero allocations.
// That is achieved with the nil-receiver idiom: StartRoot returns nil
// for a sampled-out (or absent) tracer, every Span method is nil-safe,
// and ContextWith(ctx, nil) returns ctx unchanged. The fast paths carry
// //ceres:allocfree and are enforced by ceresvet; allocation happens
// only inside the unannotated slow-path constructors that run when a
// request actually is sampled.
//
// Span end is exactly-once: End uses a CAS so a span that races a
// cancellation path with a defer cannot be double-counted, and the
// tracer keeps started/ended/double-end counters (Stats) that tests and
// the ceres_trace_* metric families assert on.
package trace

import (
	"context"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ceres/internal/obs"
)

// Options configures a Tracer.
type Options struct {
	// SampleEvery samples one root span out of every N StartRoot calls.
	// 1 traces every request; 0 (the default) disables sampling entirely:
	// StartRoot always returns nil and tracing costs one atomic add.
	SampleEvery int
	// Capacity bounds the ring of retained completed traces. Completing
	// a root beyond capacity evicts the oldest. Default 64.
	Capacity int
}

// DefaultCapacity is the retained-trace ring size when Options.Capacity
// is zero.
const DefaultCapacity = 64

// Tracer samples request roots and retains completed span trees.
// A nil *Tracer is valid and traces nothing.
type Tracer struct {
	every int64
	seq   atomic.Int64

	started    atomic.Int64 // spans created (sampled requests only)
	ended      atomic.Int64 // spans ended exactly once
	doubleEnds atomic.Int64 // End calls beyond a span's first (a bug if nonzero)
	sampled    atomic.Int64 // roots sampled in
	evicted    atomic.Int64 // completed roots dropped by ring overwrite

	mu   sync.Mutex
	ring []*Span
	next int
	full bool
}

// New builds a Tracer. With o.SampleEvery <= 0 the tracer is valid but
// samples nothing (useful for measuring the tracing tax with sampling
// off).
func New(o Options) *Tracer {
	n := o.Capacity
	if n <= 0 {
		n = DefaultCapacity
	}
	return &Tracer{every: int64(o.SampleEvery), ring: make([]*Span, n)}
}

// StartRoot begins a new trace if this request wins the 1-in-N sampling
// draw, and returns nil otherwise. The sampled-out path is one atomic
// add and no allocation.
//
//ceres:allocfree
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil || t.every <= 0 {
		return nil
	}
	if (t.seq.Add(1)-1)%t.every != 0 {
		return nil
	}
	return t.newRoot(name)
}

// newRoot is the sampled-in slow path; it allocates.
func (t *Tracer) newRoot(name string) *Span {
	t.sampled.Add(1)
	t.started.Add(1)
	return &Span{tracer: t, name: name, start: time.Now()}
}

// newChild allocates a child span and links it under parent.
func (t *Tracer) newChild(parent *Span, name string) *Span {
	t.started.Add(1)
	s := &Span{tracer: t, parent: parent, name: name, start: time.Now()}
	parent.mu.Lock()
	parent.children = append(parent.children, s)
	parent.mu.Unlock()
	return s
}

// retain files a completed root into the ring, evicting the oldest
// trace when full.
func (t *Tracer) retain(root *Span) {
	t.mu.Lock()
	if t.ring[t.next] != nil {
		t.evicted.Add(1)
	}
	t.ring[t.next] = root
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Roots returns the retained completed traces, oldest first.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, 0, len(t.ring))
	if t.full {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	return out
}

// Stats is a snapshot of the tracer's lifetime counters.
type Stats struct {
	// Started and Ended count span lifecycle events on sampled requests;
	// in a quiescent correct program they are equal.
	Started, Ended int64
	// DoubleEnds counts End calls past a span's first — always zero
	// unless a code path ends the same span twice.
	DoubleEnds int64
	// Sampled counts roots that won the sampling draw.
	Sampled int64
	// Evicted counts completed traces dropped by ring overwrite.
	Evicted int64
}

// Stats returns the tracer's lifetime counters.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	return Stats{
		Started:    t.started.Load(),
		Ended:      t.ended.Load(),
		DoubleEnds: t.doubleEnds.Load(),
		Sampled:    t.sampled.Load(),
		Evicted:    t.evicted.Load(),
	}
}

// Instrument registers the tracer's meta-metrics on m so a fleet can
// watch sampling volume and retention pressure per replica.
func (t *Tracer) Instrument(m *obs.Registry) {
	if t == nil || m == nil {
		return
	}
	m.CounterFunc("ceres_trace_spans_total",
		"Spans started on sampled requests.",
		func() float64 { return float64(t.started.Load()) })
	m.CounterFunc("ceres_trace_roots_sampled_total",
		"Root spans that won the 1-in-N sampling draw.",
		func() float64 { return float64(t.sampled.Load()) })
	m.CounterFunc("ceres_trace_roots_evicted_total",
		"Completed traces evicted from the retention ring.",
		func() float64 { return float64(t.evicted.Load()) })
}

// attr is one typed span attribute. Keeping attributes as a typed slice
// (not map[string]any) keeps Set* free of boxing and the JSONL export
// deterministic in insertion order.
type attr struct {
	key   string
	str   string
	num   int64
	isNum bool
}

// Span is one timed node in a trace tree. The zero value is not used;
// spans are created by StartRoot/StartChild and a nil *Span is the
// universal "not traced" value: every method is nil-safe and free.
type Span struct {
	tracer *Tracer
	parent *Span
	name   string
	start  time.Time // carries the monotonic clock

	ended atomic.Bool

	mu       sync.Mutex
	dur      time.Duration
	errMsg   string
	attrs    []attr
	children []*Span
}

// StartChild begins a child span. On a nil receiver it returns nil, so
// call sites never branch on "is this request traced".
//
//ceres:allocfree
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.newChild(s, name)
}

// SetStr attaches a string attribute.
//
//ceres:allocfree
func (s *Span) SetStr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attr{key: key, str: value})
	s.mu.Unlock()
}

// SetInt attaches an integer attribute.
//
//ceres:allocfree
func (s *Span) SetInt(key string, value int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attr{key: key, num: value, isNum: true})
	s.mu.Unlock()
}

// SetErr records err on the span (for paths that end the span through a
// later defer). A nil error is a no-op.
func (s *Span) SetErr(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.errMsg = err.Error()
	s.mu.Unlock()
}

// End completes the span, capturing its monotonic duration. Only the
// first End wins; later calls are counted in Stats.DoubleEnds and
// otherwise ignored, so a cancellation path racing a defer cannot
// corrupt the trace.
//
//ceres:allocfree
func (s *Span) End() {
	if s == nil {
		return
	}
	s.endWith(time.Since(s.start))
}

// EndErr records err (when non-nil) and ends the span.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	s.SetErr(err)
	s.End()
}

func (s *Span) endWith(d time.Duration) {
	if !s.ended.CompareAndSwap(false, true) {
		s.tracer.doubleEnds.Add(1)
		return
	}
	s.mu.Lock()
	s.dur = d
	s.mu.Unlock()
	s.tracer.ended.Add(1)
	if s.parent == nil {
		s.tracer.retain(s)
	}
}

// AddTimed attaches an already-measured child span — the vehicle for
// aggregate per-stage timings (e.g. parse/route/score summed across a
// request's worker pool). The child shares the parent's start time, and
// because the duration is summed across workers it may legitimately
// exceed the parent's wall time.
func (s *Span) AddTimed(name string, d time.Duration) {
	if s == nil || d < 0 {
		return
	}
	c := s.tracer.newChild(s, name)
	c.start = s.start
	c.endWith(d)
}

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Start returns the span's start time.
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns the recorded duration (zero until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// Err returns the recorded error message, "" when none.
func (s *Span) Err() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errMsg
}

// Ended reports whether the span has been ended.
func (s *Span) Ended() bool {
	return s != nil && s.ended.Load()
}

// Children returns a snapshot of the span's children in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// Child returns the first child with the given name, or nil.
func (s *Span) Child(name string) *Span {
	for _, c := range s.Children() {
		if c.name == name {
			return c
		}
	}
	return nil
}

// ctxKey is the context key for the active span.
type ctxKey struct{}

// ContextWith returns ctx carrying s as the active span. When s is nil
// (request not sampled) it returns ctx unchanged, allocating nothing.
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the active span in ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan starts a child of ctx's active span and returns a context
// carrying it. Without an active span it returns (ctx, nil) untouched —
// the untraced fast path stays allocation-free.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.StartChild(name)
	return ContextWith(ctx, s), s
}

// AttrJSON is one exported span attribute.
type AttrJSON struct {
	Key string `json:"key"`
	Str string `json:"str,omitempty"`
	Num int64  `json:"num,omitempty"`
}

// SpanJSON is the export shape of a span tree node.
type SpanJSON struct {
	Name     string     `json:"name"`
	Start    time.Time  `json:"start"`
	DurNs    int64      `json:"durNs"`
	Err      string     `json:"err,omitempty"`
	Attrs    []AttrJSON `json:"attrs,omitempty"`
	Children []SpanJSON `json:"children,omitempty"`
}

// JSON snapshots the span tree rooted at s. A still-open span reports
// its duration so far.
func (s *Span) JSON() SpanJSON {
	if s == nil {
		return SpanJSON{}
	}
	s.mu.Lock()
	out := SpanJSON{Name: s.name, Start: s.start, DurNs: int64(s.dur), Err: s.errMsg}
	if !s.ended.Load() {
		out.DurNs = int64(time.Since(s.start))
	}
	for _, a := range s.attrs {
		aj := AttrJSON{Key: a.key}
		if a.isNum {
			aj.Num = a.num
		} else {
			aj.Str = a.str
		}
		out.Attrs = append(out.Attrs, aj)
	}
	kids := make([]*Span, len(s.children))
	copy(kids, s.children)
	s.mu.Unlock()
	for _, c := range kids {
		out.Children = append(out.Children, c.JSON())
	}
	return out
}

// WriteJSONL writes the retained completed traces as one JSON object
// per line, oldest first. The encoding is hand-rolled (no reflection)
// and emits attributes in insertion order, so output is deterministic.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	buf := make([]byte, 0, 4096)
	for _, root := range t.Roots() {
		buf = appendSpanJSON(buf[:0], root.JSON())
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

func appendSpanJSON(b []byte, s SpanJSON) []byte {
	b = append(b, `{"name":`...)
	b = strconv.AppendQuote(b, s.Name)
	b = append(b, `,"start":"`...)
	b = s.Start.UTC().AppendFormat(b, time.RFC3339Nano)
	b = append(b, `","durNs":`...)
	b = strconv.AppendInt(b, s.DurNs, 10)
	if s.Err != "" {
		b = append(b, `,"err":`...)
		b = strconv.AppendQuote(b, s.Err)
	}
	if len(s.Attrs) > 0 {
		b = append(b, `,"attrs":[`...)
		for i, a := range s.Attrs {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"key":`...)
			b = strconv.AppendQuote(b, a.Key)
			if a.Str != "" {
				b = append(b, `,"str":`...)
				b = strconv.AppendQuote(b, a.Str)
			} else {
				b = append(b, `,"num":`...)
				b = strconv.AppendInt(b, a.Num, 10)
			}
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	if len(s.Children) > 0 {
		b = append(b, `,"children":[`...)
		for i, c := range s.Children {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendSpanJSON(b, c)
		}
		b = append(b, ']')
	}
	return append(b, '}')
}
