package trace

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeParentageAndDurations(t *testing.T) {
	tr := New(Options{SampleEvery: 1})
	root := tr.StartRoot("req")
	if root == nil {
		t.Fatal("SampleEvery=1 must sample every root")
	}
	root.SetStr("site", "example.com")
	root.SetInt("pages", 3)
	a := root.StartChild("admission")
	time.Sleep(time.Millisecond)
	a.End()
	ex := root.StartChild("extract")
	ex.AddTimed("parse", 5*time.Millisecond)
	ex.End()
	root.End()

	roots := tr.Roots()
	if len(roots) != 1 {
		t.Fatalf("Roots() = %d, want 1", len(roots))
	}
	got := roots[0]
	if got.Name() != "req" || !got.Ended() {
		t.Fatalf("root = %q ended=%v", got.Name(), got.Ended())
	}
	kids := got.Children()
	if len(kids) != 2 || kids[0].Name() != "admission" || kids[1].Name() != "extract" {
		t.Fatalf("children = %v", kids)
	}
	if kids[0].Duration() < time.Millisecond {
		t.Fatalf("admission duration = %v, want >= 1ms", kids[0].Duration())
	}
	if got.Duration() < kids[0].Duration() {
		t.Fatalf("root duration %v < child %v", got.Duration(), kids[0].Duration())
	}
	p := got.Child("extract").Child("parse")
	if p == nil || p.Duration() != 5*time.Millisecond || !p.Start().Equal(ex.Start()) {
		t.Fatalf("AddTimed child = %+v", p)
	}
	st := tr.Stats()
	if st.Started != st.Ended || st.Started != 4 || st.DoubleEnds != 0 || st.Sampled != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSamplingOneInN(t *testing.T) {
	tr := New(Options{SampleEvery: 3})
	sampled := 0
	for i := 0; i < 9; i++ {
		if sp := tr.StartRoot("r"); sp != nil {
			sampled++
			sp.End()
		}
	}
	if sampled != 3 {
		t.Fatalf("sampled %d of 9 with SampleEvery=3, want 3", sampled)
	}
	if st := tr.Stats(); st.Sampled != 3 {
		t.Fatalf("Stats().Sampled = %d, want 3", st.Sampled)
	}
}

// TestSampledOutPathAllocates nothing: the whole span surface — root,
// child, attrs, context plumbing, end — must be free when the request
// loses the sampling draw or tracing is off. This is the contract the
// serve hot path relies on (ISSUE 10 acceptance).
func TestSampledOutPathZeroAllocs(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		tr   *Tracer
	}{
		{"nil-tracer", nil},
		{"sampling-off", New(Options{})},
		{"sampled-out", func() *Tracer {
			tr := New(Options{SampleEvery: 1 << 30})
			tr.StartRoot("winner").End() // burn the one winning draw
			return tr
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			allocs := testing.AllocsPerRun(200, func() {
				sp := tc.tr.StartRoot("req")
				sp.SetStr("site", "s")
				sp.SetInt("pages", 1)
				c := sp.StartChild("stage")
				c2 := FromContext(ContextWith(ctx, sp)).StartChild("x")
				c2.EndErr(nil)
				c.AddTimed("parse", time.Second)
				c.End()
				sp.End()
			})
			if allocs != 0 {
				t.Fatalf("sampled-out span path allocates %.1f/op, want 0", allocs)
			}
		})
	}
}

func TestRingEvictionOldestFirst(t *testing.T) {
	tr := New(Options{SampleEvery: 1, Capacity: 4})
	for i := 0; i < 10; i++ {
		sp := tr.StartRoot("r")
		sp.SetInt("i", int64(i))
		sp.End()
	}
	roots := tr.Roots()
	if len(roots) != 4 {
		t.Fatalf("Roots() = %d, want capacity 4", len(roots))
	}
	for j, r := range roots {
		want := int64(6 + j)
		if got := r.JSON().Attrs[0].Num; got != want {
			t.Fatalf("roots[%d] attr i = %d, want %d (oldest first)", j, got, want)
		}
	}
	if st := tr.Stats(); st.Evicted != 6 {
		t.Fatalf("Stats().Evicted = %d, want 6", st.Evicted)
	}
}

func TestEndExactlyOnce(t *testing.T) {
	tr := New(Options{SampleEvery: 1})
	sp := tr.StartRoot("r")
	sp.End()
	d := sp.Duration()
	time.Sleep(2 * time.Millisecond)
	sp.End() // a bug in the caller: must be ignored, counted in DoubleEnds
	if sp.Duration() != d {
		t.Fatal("second End overwrote the recorded duration")
	}
	if st := tr.Stats(); st.Ended != 1 || st.DoubleEnds != 1 {
		t.Fatalf("stats = %+v, want Ended=1 DoubleEnds=1", st)
	}
	if len(tr.Roots()) != 1 {
		t.Fatalf("root retained %d times, want 1", len(tr.Roots()))
	}
}

func TestEndErrRecordsError(t *testing.T) {
	tr := New(Options{SampleEvery: 1})
	sp := tr.StartRoot("r")
	sp.EndErr(errors.New("boom"))
	if sp.Err() != "boom" {
		t.Fatalf("Err() = %q", sp.Err())
	}
	js := sp.JSON()
	if js.Err != "boom" {
		t.Fatalf("JSON().Err = %q", js.Err)
	}
}

// TestSharedTracerConcurrent exercises one tracer from 8 workers under
// -race: concurrent roots, shared-parent children, attrs, ring churn.
func TestSharedTracerConcurrent(t *testing.T) {
	tr := New(Options{SampleEvery: 2, Capacity: 8})
	shared := New(Options{SampleEvery: 1}).StartRoot("shared")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.StartRoot("req")
				sp.SetInt("worker", int64(w))
				c := sp.StartChild("stage")
				c.AddTimed("parse", time.Microsecond)
				c.End()
				sp.End()
				sc := shared.StartChild("worker-span")
				sc.SetInt("i", int64(i))
				sc.End()
			}
		}(w)
	}
	wg.Wait()
	shared.End()
	st := tr.Stats()
	if st.Started != st.Ended {
		t.Fatalf("started %d != ended %d", st.Started, st.Ended)
	}
	if st.DoubleEnds != 0 {
		t.Fatalf("DoubleEnds = %d, want 0", st.DoubleEnds)
	}
	if st.Sampled != 800 {
		t.Fatalf("Sampled = %d, want 800 (1600 roots at 1-in-2)", st.Sampled)
	}
	if got := len(shared.Children()); got != 1600 {
		t.Fatalf("shared root children = %d, want 1600", got)
	}
}

func TestContextPropagation(t *testing.T) {
	ctx := context.Background()
	if got, sp := StartSpan(ctx, "x"); sp != nil || got != ctx {
		t.Fatal("StartSpan without an active span must return (ctx, nil) untouched")
	}
	tr := New(Options{SampleEvery: 1})
	root := tr.StartRoot("req")
	ctx2 := ContextWith(ctx, root)
	if FromContext(ctx2) != root {
		t.Fatal("FromContext lost the span")
	}
	ctx3, child := StartSpan(ctx2, "stage")
	if child == nil || FromContext(ctx3) != child {
		t.Fatal("StartSpan did not install the child")
	}
	child.End()
	root.End()
	kids := root.Children()
	if len(kids) != 1 || kids[0] != child {
		t.Fatalf("child not linked under root: %v", kids)
	}
	if ContextWith(ctx, nil) != ctx {
		t.Fatal("ContextWith(ctx, nil) must return ctx unchanged")
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := New(Options{SampleEvery: 1, Capacity: 8})
	for i := 0; i < 3; i++ {
		sp := tr.StartRoot("req")
		sp.SetStr("site", `a"b`)
		sp.SetInt("i", int64(i))
		c := sp.StartChild("stage")
		c.EndErr(errors.New("stage failed"))
		sp.End()
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var got SpanJSON
		if err := json.Unmarshal(sc.Bytes(), &got); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", lines, err, sc.Text())
		}
		if got.Name != "req" || len(got.Children) != 1 || got.Children[0].Err != "stage failed" {
			t.Fatalf("line %d = %+v", lines, got)
		}
		if got.Attrs[0].Str != `a"b` {
			t.Fatalf("attr escaping broke: %+v", got.Attrs)
		}
		if got.DurNs <= 0 {
			t.Fatalf("durNs = %d, want > 0", got.DurNs)
		}
		if !strings.Contains(sc.Text(), `"start":"`) {
			t.Fatalf("missing start timestamp: %s", sc.Text())
		}
		lines++
	}
	if lines != 3 {
		t.Fatalf("wrote %d lines, want 3", lines)
	}
	if tr.WriteJSONL(&bytes.Buffer{}) != nil {
		t.Fatal("second export must succeed (ring is re-readable)")
	}
	var nilTr *Tracer
	if err := nilTr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal("nil tracer export must be a no-op")
	}
}
