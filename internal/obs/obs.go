// Package obs is the repo's stdlib-only metrics layer (DESIGN.md §12):
// counters, gauges and fixed-bucket histograms behind a Registry that
// exposes them in the Prometheus text format. It exists so the serving
// fleet can be observed without importing a metrics dependency.
//
// The hot paths — Counter.Add, Gauge.Add, Histogram.Observe, and the
// labeled-family lookups once a label has been seen — are lock-free
// atomic operations annotated //ceres:allocfree; a request that bumps a
// handful of counters pays a few atomic adds, never a mutex and never an
// allocation. Labeled families (CounterVec and friends) keep their
// label → metric table behind an atomic pointer to an immutable map, the
// same copy-on-write discipline as ceres.Registry: reads are a pointer
// load and a map index, and only the first observation of a new label
// value takes the writer mutex.
//
// Exposition (WritePrometheus) is the cold path: it walks the registered
// families sorted by name, label values sorted within a family, so the
// output is deterministic and diffable. Histograms emit cumulative
// buckets with the conventional le label, plus _sum and _count series.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default request-latency histogram bounds, in
// seconds: sub-millisecond serves through multi-second batch extracts.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be >= 0; negative deltas are
// ignored so a counter can never go backwards).
//
//ceres:allocfree
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
//
//ceres:allocfree
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
//
//ceres:allocfree
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (negative to decrease).
//
//ceres:allocfree
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Buckets are cumulative at
// exposition time; internally each bucket counts only its own range so
// Observe touches exactly one bucket counter.
type Histogram struct {
	bounds []float64      // upper bounds, ascending, exclusive of +Inf
	counts []atomic.Int64 // len(bounds)+1; last is the overflow (+Inf) bucket
	sum    atomic.Uint64  // float64 bits, updated by CAS
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
//
//ceres:allocfree
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket lists are short (DefBuckets is 14 entries) and
	// the scan is branch-predictable; a binary search saves nothing here.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bounds returns a copy of the histogram's upper bounds, ascending,
// excluding the implicit +Inf bucket.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// BucketCounts snapshots the per-bucket counts, non-cumulative, aligned
// with Bounds plus one trailing overflow (+Inf) entry — the raw shape
// drift-snapshot APIs serve without re-deriving it from exposition text.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// vec is the shared label → metric table of the labeled families:
// copy-on-write map behind an atomic pointer, so the steady-state lookup
// is a pointer load plus a map index.
type vec[T any] struct {
	mu   sync.Mutex
	m    atomic.Pointer[map[string]*T]
	mk   func() *T
	gate func(string) bool // nil: any label value accepted
}

func newVec[T any](mk func() *T) *vec[T] {
	v := &vec[T]{mk: mk}
	empty := map[string]*T{}
	v.m.Store(&empty)
	return v
}

// with returns the metric for a label value, creating it on first use.
//
//ceres:allocfree
func (v *vec[T]) with(label string) *T {
	if m, ok := (*v.m.Load())[label]; ok {
		return m
	}
	return v.create(label)
}

func (v *vec[T]) create(label string) *T {
	v.mu.Lock()
	defer v.mu.Unlock()
	cur := *v.m.Load()
	if m, ok := cur[label]; ok {
		return m
	}
	m := v.mk()
	next := make(map[string]*T, len(cur)+1)
	for k, mv := range cur {
		next[k] = mv
	}
	next[label] = m
	v.m.Store(&next)
	return m
}

// labels returns the seen label values, sorted.
func (v *vec[T]) labels() []string {
	cur := *v.m.Load()
	out := make([]string, 0, len(cur))
	for k := range cur {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// CounterVec is a family of counters keyed by one label.
type CounterVec struct {
	v *vec[Counter]
}

// With returns the counter for a label value, creating it on first use.
// The returned pointer is stable: hot paths should capture it once per
// request, not per increment.
//
//ceres:allocfree
func (cv *CounterVec) With(label string) *Counter {
	if cv == nil {
		return nil
	}
	return cv.v.with(label)
}

// GaugeVec is a family of gauges keyed by one label.
type GaugeVec struct {
	v *vec[Gauge]
}

// With returns the gauge for a label value, creating it on first use.
//
//ceres:allocfree
func (gv *GaugeVec) With(label string) *Gauge {
	if gv == nil {
		return nil
	}
	return gv.v.with(label)
}

// HistogramVec is a family of histograms keyed by one label, sharing one
// set of bucket bounds.
type HistogramVec struct {
	v *vec[Histogram]
}

// With returns the histogram for a label value, creating it on first
// use.
//
//ceres:allocfree
func (hv *HistogramVec) With(label string) *Histogram {
	if hv == nil {
		return nil
	}
	return hv.v.with(label)
}

// family is one registered metric name: its metadata plus exactly one
// backing implementation.
type family struct {
	name, help string
	typ        string // "counter" | "gauge" | "histogram"
	label      string // label name for the *Vec and *VecFunc kinds; "" = unlabeled
	bounds     []float64

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	cvec    *CounterVec
	gvec    *GaugeVec
	hvec    *HistogramVec
	fn      func() float64                           // CounterFunc / GaugeFunc
	collect func(emit func(label string, v float64)) // GaugeVecFunc
}

// kind is the registration signature a name is held to: re-registering
// the same name with the same kind returns the existing family (so two
// instrumented components can share a Registry), a different kind panics.
func (f *family) kind() string { return f.typ + "/" + f.label + "/" + implOf(f) }

func implOf(f *family) string {
	switch {
	case f.counter != nil:
		return "counter"
	case f.gauge != nil:
		return "gauge"
	case f.hist != nil:
		return "histogram"
	case f.cvec != nil:
		return "countervec"
	case f.gvec != nil:
		return "gaugevec"
	case f.hvec != nil:
		return "histogramvec"
	case f.fn != nil:
		return "func"
	case f.collect != nil:
		return "collectfunc"
	}
	return "none"
}

// Registry holds a process's metric families and renders them in the
// Prometheus text exposition format. The zero value is not usable; call
// NewRegistry. Registration is idempotent per (name, kind): asking for
// an already-registered family returns the existing one, so independent
// components can instrument themselves against a shared registry without
// coordinating.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry builds an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// register installs f under its name, or returns the existing family
// when one of the same kind is already registered. A name collision
// across kinds is a programming error and panics.
func (r *Registry) register(f *family) *family {
	if err := checkName(f.name); err != nil {
		panic(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.fams[f.name]; ok {
		if old.kind() != f.kind() {
			panic(fmt.Sprintf("obs: metric %q re-registered as a different kind (%s vs %s)", f.name, f.kind(), old.kind()))
		}
		return old
	}
	r.fams[f.name] = f
	return f
}

// checkName enforces the Prometheus metric-name charset.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("obs: empty metric name")
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return fmt.Errorf("obs: metric name %q starts with a digit", name)
			}
		default:
			return fmt.Errorf("obs: metric name %q has invalid character %q", name, c)
		}
	}
	return nil
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(&family{name: name, help: help, typ: "counter", counter: &Counter{}})
	return f.counter
}

// CounterVec registers (or returns) a counter family keyed by one label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	f := r.register(&family{name: name, help: help, typ: "counter", label: label,
		cvec: &CounterVec{v: newVec(func() *Counter { return &Counter{} })}})
	return f.cvec
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(&family{name: name, help: help, typ: "gauge", gauge: &Gauge{}})
	return f.gauge
}

// GaugeVec registers (or returns) a gauge family keyed by one label.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	f := r.register(&family{name: name, help: help, typ: "gauge", label: label,
		gvec: &GaugeVec{v: newVec(func() *Gauge { return &Gauge{} })}})
	return f.gvec
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — for components that already keep their own
// monotonic count (e.g. a registry's swap counter).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: "counter", fn: fn})
}

// GaugeFunc registers a gauge read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: "gauge", fn: fn})
}

// GaugeVecFunc registers a labeled gauge family collected at exposition
// time: collect is called with an emit callback and reports one sample
// per label value (emission order need not be sorted; exposition sorts).
func (r *Registry) GaugeVecFunc(name, help, label string, collect func(emit func(label string, v float64))) {
	r.register(&family{name: name, help: help, typ: "gauge", label: label, collect: collect})
}

// Histogram registers (or returns) an unlabeled fixed-bucket histogram.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.register(&family{name: name, help: help, typ: "histogram", bounds: bounds,
		hist: newHistogram(bounds)})
	return f.hist
}

// HistogramVec registers (or returns) a histogram family keyed by one
// label, all members sharing the bucket bounds.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	f := r.register(&family{name: name, help: help, typ: "histogram", label: label, bounds: b,
		hvec: &HistogramVec{v: newVec(func() *Histogram { return newHistogram(b) })}})
	return f.hvec
}

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4), families sorted by name and label
// values sorted within a family, so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(r.fams))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		f.expose(&b)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// expose renders one family: HELP, TYPE, then its samples.
func (f *family) expose(b *strings.Builder) {
	b.WriteString("# HELP ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(f.help))
	b.WriteByte('\n')
	b.WriteString("# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(f.typ)
	b.WriteByte('\n')
	switch {
	case f.counter != nil:
		sampleInt(b, f.name, "", "", f.counter.Value())
	case f.gauge != nil:
		sampleInt(b, f.name, "", "", f.gauge.Value())
	case f.fn != nil:
		sampleFloat(b, f.name, "", "", f.fn())
	case f.hist != nil:
		exposeHistogram(b, f.name, "", "", f.bounds, f.hist)
	case f.cvec != nil:
		for _, lv := range f.cvec.v.labels() {
			sampleInt(b, f.name, f.label, lv, f.cvec.With(lv).Value())
		}
	case f.gvec != nil:
		for _, lv := range f.gvec.v.labels() {
			sampleInt(b, f.name, f.label, lv, f.gvec.With(lv).Value())
		}
	case f.hvec != nil:
		for _, lv := range f.hvec.v.labels() {
			exposeHistogram(b, f.name, f.label, lv, f.bounds, f.hvec.With(lv))
		}
	case f.collect != nil:
		type sample struct {
			label string
			v     float64
		}
		var got []sample
		f.collect(func(label string, v float64) { got = append(got, sample{label, v}) })
		sort.Slice(got, func(i, j int) bool { return got[i].label < got[j].label })
		for _, s := range got {
			sampleFloat(b, f.name, f.label, s.label, s.v)
		}
	}
}

// exposeHistogram writes the cumulative _bucket series plus _sum and
// _count for one histogram (optionally carrying one label pair).
func exposeHistogram(b *strings.Builder, name, label, lv string, bounds []float64, h *Histogram) {
	cum := int64(0)
	for i, bound := range bounds {
		cum += h.counts[i].Load()
		bucketSample(b, name, label, lv, strconv.FormatFloat(bound, 'g', -1, 64), cum)
	}
	cum += h.counts[len(bounds)].Load()
	bucketSample(b, name, label, lv, "+Inf", cum)
	sampleFloat(b, name+"_sum", label, lv, h.Sum())
	sampleInt(b, name+"_count", label, lv, h.Count())
}

func bucketSample(b *strings.Builder, name, label, lv, le string, v int64) {
	b.WriteString(name)
	b.WriteString("_bucket{")
	if label != "" {
		writeLabelPair(b, label, lv)
		b.WriteByte(',')
	}
	writeLabelPair(b, "le", le)
	b.WriteString("} ")
	b.WriteString(strconv.FormatInt(v, 10))
	b.WriteByte('\n')
}

func sampleInt(b *strings.Builder, name, label, lv string, v int64) {
	writeSeries(b, name, label, lv)
	b.WriteString(strconv.FormatInt(v, 10))
	b.WriteByte('\n')
}

func sampleFloat(b *strings.Builder, name, label, lv string, v float64) {
	writeSeries(b, name, label, lv)
	b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	b.WriteByte('\n')
}

func writeSeries(b *strings.Builder, name, label, lv string) {
	b.WriteString(name)
	if label != "" {
		b.WriteByte('{')
		writeLabelPair(b, label, lv)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
}

func writeLabelPair(b *strings.Builder, label, value string) {
	b.WriteString(label)
	b.WriteString(`="`)
	b.WriteString(escapeLabel(value))
	b.WriteByte('"')
}

// escapeLabel escapes a label value per the text format: backslash,
// double quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a help string: backslash and newline.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
