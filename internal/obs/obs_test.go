package obs

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"

	"ceres/internal/obs/obstest"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Errorf("gauge = %d, want 6", got)
	}
	// nil receivers are silent no-ops, so unwired instrumentation costs
	// nothing and crashes nothing.
	var nc *Counter
	nc.Inc()
	var ng *Gauge
	ng.Add(1)
	var nh *Histogram
	nh.Observe(1)
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if want := 0.05 + 0.1 + 0.5 + 2 + 100; math.Abs(h.Sum()-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", h.Sum(), want)
	}
	// Bucket counts are per-range internally: le=0.1 gets 0.05 and the
	// boundary value 0.1; le=1 gets 0.5; le=10 gets 2; +Inf gets 100.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("req_total", "requests", "site")
	cv.With("b.example").Inc()
	cv.With("a.example").Add(2)
	cv.With("b.example").Inc()
	if got := cv.With("b.example").Value(); got != 2 {
		t.Errorf("b.example = %d, want 2", got)
	}
	if got := cv.v.labels(); len(got) != 2 || got[0] != "a.example" || got[1] != "b.example" {
		t.Errorf("labels = %v, want sorted [a.example b.example]", got)
	}
	// The returned pointer is stable across With calls.
	if cv.With("a.example") != cv.With("a.example") {
		t.Error("With returned different pointers for one label")
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "first")
	b := r.Counter("dup_total", "second registration returns the first")
	if a != b {
		t.Error("re-registering the same counter returned a new one")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("dup_total", "wrong kind")
}

func TestBadMetricNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"", "0starts_with_digit", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", name)
				}
			}()
			r.Counter(name, "bad")
		}()
	}
}

func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "c")
	h := r.HistogramVec("conc_seconds", "h", "site", []float64{0.5})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			site := "site-" + strconv.Itoa(w%2)
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.With(site).Observe(float64(i % 2))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	total := h.With("site-0").Count() + h.With("site-1").Count()
	if total != 8000 {
		t.Errorf("histogram count = %d, want 8000", total)
	}
	if want := 4000.0; h.With("site-0").Sum()+h.With("site-1").Sum() != want {
		t.Errorf("histogram sum = %v, want %v", h.With("site-0").Sum()+h.With("site-1").Sum(), want)
	}
}

// ParsePrometheus wraps the shared strict parser (internal/obs/obstest)
// for in-package assertions.
func ParsePrometheus(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples, err := obstest.Parse(text)
	if err != nil {
		t.Fatalf("parsing exposition: %v\n%s", err, text)
	}
	return samples
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "last by name").Add(7)
	cv := r.CounterVec("aa_req_total", "first by name", "site")
	cv.With(`we"ird\site` + "\n").Add(3)
	cv.With("plain").Add(1)
	r.GaugeFunc("mid_gauge", "from func", func() float64 { return 2.5 })
	r.GaugeVecFunc("mid_versions", "versions", "site", func(emit func(string, float64)) {
		emit("b", 2)
		emit("a", 1)
	})
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	samples := ParsePrometheus(t, text)

	// Families render sorted by name.
	if aa, zz := strings.Index(text, "aa_req_total"), strings.Index(text, "zz_total"); aa < 0 || zz < 0 || aa > zz {
		t.Errorf("families not sorted by name:\n%s", text)
	}
	for series, want := range map[string]float64{
		"zz_total":                      7,
		`aa_req_total{site="plain"}`:    1,
		"mid_gauge":                     2.5,
		`mid_versions{site="a"}`:        1,
		`mid_versions{site="b"}`:        2,
		`lat_seconds_bucket{le="0.1"}`:  1,
		`lat_seconds_bucket{le="1"}`:    2,
		`lat_seconds_bucket{le="+Inf"}`: 3,
		"lat_seconds_count":             3,
	} {
		if got, ok := samples[series]; !ok || got != want {
			t.Errorf("series %s = %v (present=%v), want %v", series, got, ok, want)
		}
	}
	if got := samples["lat_seconds_sum"]; math.Abs(got-5.55) > 1e-9 {
		t.Errorf("lat_seconds_sum = %v, want 5.55", got)
	}
	// The escaped label value renders escaped.
	if _, ok := samples[`aa_req_total{site="we\"ird\\site\n"}`]; !ok {
		t.Errorf("escaped label series missing from:\n%s", text)
	}
	// Histogram buckets are cumulative and monotonic.
	if samples[`lat_seconds_bucket{le="0.1"}`] > samples[`lat_seconds_bucket{le="1"}`] ||
		samples[`lat_seconds_bucket{le="1"}`] > samples[`lat_seconds_bucket{le="+Inf"}`] {
		t.Error("histogram buckets are not cumulative")
	}
	// +Inf bucket equals _count.
	if samples[`lat_seconds_bucket{le="+Inf"}`] != samples["lat_seconds_count"] {
		t.Error("+Inf bucket != count")
	}
}

func TestHistogramVecSharedBounds(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("hv_seconds", "h", "site", []float64{1, 0.1}) // unsorted on purpose
	hv.With("a").Observe(0.05)
	hv.With("b").Observe(0.5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples := ParsePrometheus(t, sb.String())
	if samples[`hv_seconds_bucket{site="a",le="0.1"}`] != 1 {
		t.Errorf("site a le=0.1 bucket missing or wrong:\n%s", sb.String())
	}
	if samples[`hv_seconds_bucket{site="b",le="1"}`] != 1 {
		t.Errorf("site b le=1 bucket missing or wrong:\n%s", sb.String())
	}
}
