// Package obstest parses the Prometheus text exposition strictly, for
// tests and harnesses that assert on a live /metrics endpoint. It lives
// outside package obs so that obs never links a parser into serving
// binaries' hot paths — but the fleet harness and the daemon's tests
// share one set of format checks.
package obstest

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse checks every line of a text exposition against the format and
// returns the samples as a series → value map (series = name{labels}
// exactly as rendered). It enforces the invariants WritePrometheus
// promises: HELP/TYPE comments, known TYPEs, every sample inside its
// family's TYPE block, no duplicate series.
func Parse(text string) (map[string]float64, error) {
	samples := map[string]float64{}
	var lastType, lastName string
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				return nil, fmt.Errorf("line %d: malformed comment %q", ln+1, line)
			}
			if parts[1] == "TYPE" {
				lastName, lastType = parts[2], parts[3]
				switch lastType {
				case "counter", "gauge", "histogram":
				default:
					return nil, fmt.Errorf("line %d: unknown TYPE %q", ln+1, lastType)
				}
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("line %d: no value separator in %q", ln+1, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				return nil, fmt.Errorf("line %d: unterminated label set in %q", ln+1, series)
			}
			name = series[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if name != lastName && base != lastName {
			return nil, fmt.Errorf("line %d: sample %q outside its TYPE block (last TYPE %q)", ln+1, name, lastName)
		}
		if _, dup := samples[series]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %q", ln+1, series)
		}
		samples[series] = val
	}
	return samples, nil
}
