package core

import (
	"runtime"
	"sync"

	"ceres/internal/cluster"
	"ceres/internal/kb"
)

// PageSource is one raw input page.
type PageSource struct {
	ID   string
	HTML string
}

// Config assembles the options of every pipeline stage.
type Config struct {
	Topic    TopicOptions
	Relation RelationOptions
	Features FeatureOptions
	Train    TrainOptions
	Extract  ExtractOptions
	// PageCluster configures template clustering (§2.1); set
	// DisablePageClustering to treat the whole site as one template.
	PageCluster           cluster.PageClusterOptions
	DisablePageClustering bool
	// MinAnnotatedPages is the smallest number of annotated pages worth
	// training a cluster model on (default 2; the paper extracted from
	// sites with "only a few tens" of annotated pages and produced
	// nothing on sites with 1-2).
	MinAnnotatedPages int
	// Workers bounds parsing/extraction parallelism (default: NumCPU,
	// capped at 8).
	Workers int
}

func (c Config) withDefaults() Config {
	if c.MinAnnotatedPages == 0 {
		c.MinAnnotatedPages = 2
	}
	if c.Workers == 0 {
		c.Workers = runtime.NumCPU()
		if c.Workers > 8 {
			c.Workers = 8
		}
	}
	return c
}

// ClusterResult is the pipeline output for one template cluster.
type ClusterResult struct {
	// PageIdxs indexes into Result.Pages.
	PageIdxs   []int
	Annotation *AnnotationResult
	// Model is nil when the cluster had too few annotated pages.
	Model *Model
	// Trained reports whether extraction ran for this cluster.
	Trained bool
}

// Result is the full pipeline output for one site.
type Result struct {
	Pages    []*Page
	Clusters []*ClusterResult
	// Extractions pools all clusters' extractions, unthresholded.
	Extractions []Extraction
}

// NumAnnotations counts positive labels across clusters.
func (r *Result) NumAnnotations() int {
	n := 0
	for _, c := range r.Clusters {
		if c.Annotation != nil {
			n += len(c.Annotation.Annotations)
		}
	}
	return n
}

// NumAnnotatedPages counts pages that produced annotations.
func (r *Result) NumAnnotatedPages() int {
	n := 0
	for _, c := range r.Clusters {
		if c.Annotation != nil {
			n += c.Annotation.NumAnnotatedPages()
		}
	}
	return n
}

// Run executes the CERES pipeline on one site: parse, cluster templates,
// annotate, train, extract (Figure 3's architecture).
func Run(sources []PageSource, K *kb.KB, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	pages := ParsePages(sources, cfg.Workers)

	var groups [][]int
	if cfg.DisablePageClustering {
		all := make([]int, len(pages))
		for i := range all {
			all[i] = i
		}
		groups = [][]int{all}
	} else {
		sigs := make([]cluster.PageSignature, len(pages))
		parallelFor(len(pages), cfg.Workers, func(i int) {
			sigs[i] = cluster.Signature(pages[i].Doc)
		})
		groups = cluster.ClusterPages(sigs, cfg.PageCluster)
	}

	res := &Result{Pages: pages}
	for _, group := range groups {
		cr, err := runCluster(pages, group, K, cfg)
		if err != nil {
			return nil, err
		}
		res.Clusters = append(res.Clusters, cr)
		res.Extractions = append(res.Extractions, extractionsOf(pages, group, cr, cfg)...)
	}
	return res, nil
}

// ParsePages parses page sources concurrently, preserving order.
func ParsePages(sources []PageSource, workers int) []*Page {
	pages := make([]*Page, len(sources))
	parallelFor(len(sources), workers, func(i int) {
		pages[i] = PreparePage(sources[i].ID, sources[i].HTML)
	})
	return pages
}

func runCluster(pages []*Page, group []int, K *kb.KB, cfg Config) (*ClusterResult, error) {
	sub := make([]*Page, len(group))
	for i, pi := range group {
		sub[i] = pages[pi]
	}
	ann := Annotate(sub, K, cfg.Topic, cfg.Relation)
	cr := &ClusterResult{PageIdxs: group, Annotation: ann}
	if ann.NumAnnotatedPages() < cfg.MinAnnotatedPages {
		return cr, nil
	}
	fz := NewFeaturizer(sub, cfg.Features)
	ds, classes := BuildExamples(sub, ann, fz, cfg.Train)
	if classes.Len() < 2 || ds.Len() == 0 {
		return cr, nil
	}
	fz.Freeze()
	model, err := TrainModel(ds, classes, fz, cfg.Train)
	if err != nil {
		return nil, err
	}
	cr.Model = model
	cr.Trained = true
	return cr, nil
}

func extractionsOf(pages []*Page, group []int, cr *ClusterResult, cfg Config) []Extraction {
	if !cr.Trained {
		return nil
	}
	perPage := make([][]Extraction, len(group))
	parallelFor(len(group), cfg.Workers, func(i int) {
		perPage[i] = ExtractPage(pages[group[i]], cr.Model, cfg.Extract)
	})
	var out []Extraction
	for _, exts := range perPage {
		out = append(out, exts...)
	}
	return out
}

// parallelFor runs fn(i) for i in [0,n) on up to `workers` goroutines.
func parallelFor(n, workers int, fn func(int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	wg.Wait()
}
