package core

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"ceres/internal/cluster"
	"ceres/internal/kb"
	"ceres/internal/obs/trace"
)

// Sentinel errors of the training/serving lifecycle. The public ceres
// package re-exports them; errors.Is works through either name.
var (
	// ErrNoPages reports an empty page set.
	ErrNoPages = errors.New("ceres: no pages")
	// ErrNotTrained reports a SiteModel with no trained cluster extractor.
	ErrNotTrained = errors.New("ceres: site model has no trained extractor")
	// ErrNoAnnotations reports that distant supervision produced too few
	// annotations to train any cluster extractor.
	ErrNoAnnotations = errors.New("ceres: no cluster produced enough annotations to train")
)

// PageSource is one raw input page.
type PageSource struct {
	ID   string
	HTML string
}

// Config assembles the options of every pipeline stage.
type Config struct {
	Topic    TopicOptions
	Relation RelationOptions
	Features FeatureOptions
	Train    TrainOptions
	Extract  ExtractOptions
	// PageCluster configures template clustering (§2.1); set
	// DisablePageClustering to treat the whole site as one template.
	PageCluster           cluster.PageClusterOptions
	DisablePageClustering bool
	// MinAnnotatedPages is the smallest number of annotated pages worth
	// training a cluster model on (default 2; the paper extracted from
	// sites with "only a few tens" of annotated pages and produced
	// nothing on sites with 1-2).
	MinAnnotatedPages int
	// Workers bounds parsing/annotation/extraction parallelism (default:
	// NumCPU, capped at 8).
	Workers int
	// LegacyAnnotation routes distant supervision through the original
	// string-keyed sequential path (AnnotateLegacy) instead of the
	// kb.Index one — the fallback and differential-testing switch. Output
	// is identical either way.
	LegacyAnnotation bool
}

func (c Config) withDefaults() Config {
	if c.MinAnnotatedPages == 0 {
		c.MinAnnotatedPages = 2
	}
	if c.Workers == 0 {
		c.Workers = defaultWorkers()
	}
	// Resolve extraction options up front so the SiteModel stores — and
	// serializes — resolved values, the same convention the featurizer
	// follows. This is what lets an Explicit() zero survive a WriteTo/
	// RestoreSiteModel round trip.
	c.Extract = c.Extract.withDefaults()
	return c
}

func defaultWorkers() int {
	w := runtime.NumCPU()
	if w > 8 {
		w = 8
	}
	return w
}

// ClusterResult is the pipeline output for one template cluster.
type ClusterResult struct {
	// PageIdxs indexes into Result.Pages.
	PageIdxs   []int
	Annotation *AnnotationResult
	// Model is nil when the cluster had too few annotated pages.
	Model *Model
	// Trained reports whether extraction ran for this cluster.
	Trained bool
}

// Result is the full pipeline output for one site.
type Result struct {
	Pages    []*Page
	Clusters []*ClusterResult
	// Extractions pools all clusters' extractions, unthresholded.
	Extractions []Extraction
}

// NumAnnotations counts positive labels across clusters.
func (r *Result) NumAnnotations() int {
	n := 0
	for _, c := range r.Clusters {
		if c.Annotation != nil {
			n += len(c.Annotation.Annotations)
		}
	}
	return n
}

// NumAnnotatedPages counts pages that produced annotations.
func (r *Result) NumAnnotatedPages() int {
	n := 0
	for _, c := range r.Clusters {
		if c.Annotation != nil {
			n += c.Annotation.NumAnnotatedPages()
		}
	}
	return n
}

// Run executes the CERES pipeline on one site: parse, cluster templates,
// annotate, train, extract (Figure 3's architecture). It is Train followed
// by extraction over the same pages, with each page served by the cluster
// it was assigned to during training.
func Run(ctx context.Context, sources []PageSource, K *kb.KB, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	sm, res, err := TrainSite(ctx, sources, K, cfg)
	if err != nil {
		return nil, err
	}
	for ci, cr := range res.Clusters {
		exts, err := extractGroup(ctx, res.Pages, cr.PageIdxs, sm.Clusters[ci].Model, cfg.Extract, cfg.Workers)
		if err != nil {
			return nil, err
		}
		res.Extractions = append(res.Extractions, exts...)
	}
	return res, nil
}

// TrainSite runs the training phase only — parse, cluster, annotate, train
// — and returns both the serving artifact (the SiteModel) and the full
// training trace (parsed pages, per-cluster annotations). Untrainable
// clusters still appear in the SiteModel so serve-time routing can send
// their pages somewhere deterministic.
func TrainSite(ctx context.Context, sources []PageSource, K *kb.KB, cfg Config) (*SiteModel, *Result, error) {
	cfg = cfg.withDefaults()
	if len(sources) == 0 {
		return nil, nil, ErrNoPages
	}
	// Training is traced through the caller's context: a span installed
	// there (batch model resolution, an instrumented CLI) gets children
	// for each pipeline stage; an untraced context costs one Value read.
	tsp := trace.FromContext(ctx)
	psp := tsp.StartChild("parse")
	pages, err := parsePagesCtx(ctx, sources, cfg.Workers)
	psp.EndErr(err)
	if err != nil {
		return nil, nil, err
	}

	csp := tsp.StartChild("cluster")
	var sigs []cluster.PageSignature
	var groups [][]int
	if cfg.DisablePageClustering {
		all := make([]int, len(pages))
		for i := range all {
			all[i] = i
		}
		groups = [][]int{all}
		// Only the single group's exemplar signature is needed.
		sigs = []cluster.PageSignature{cluster.Signature(pages[0].Doc)}
	} else {
		sigs = make([]cluster.PageSignature, len(pages))
		if err := parallelFor(ctx, len(pages), cfg.Workers, func(i int) {
			sigs[i] = cluster.Signature(pages[i].Doc)
		}); err != nil {
			csp.EndErr(err)
			return nil, nil, err
		}
		groups = cluster.ClusterPages(sigs, cfg.PageCluster)
	}
	csp.SetInt("clusters", int64(len(groups)))
	csp.End()

	sm := &SiteModel{
		Extract:    cfg.Extract,
		Workers:    cfg.Workers,
		TrainPages: len(pages),
	}
	res := &Result{Pages: pages}
	for _, group := range groups {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		cr, err := runCluster(ctx, pages, group, K, cfg)
		if err != nil {
			return nil, nil, err
		}
		res.Clusters = append(res.Clusters, cr)
		cm := &ClusterModel{
			// ClusterPages founds each cluster on its first member, so
			// that page's signature is the cluster exemplar.
			Exemplar: sigs[group[0]],
			Model:    cr.Model,
			Trained:  cr.Trained,
			Pages:    len(group),
		}
		if cr.Annotation != nil {
			cm.AnnotatedPages = cr.Annotation.NumAnnotatedPages()
			cm.Annotations = len(cr.Annotation.Annotations)
		}
		sm.Clusters = append(sm.Clusters, cm)
	}
	return sm, res, nil
}

// ParsePages parses page sources concurrently, preserving order. It is
// the uncancellable convenience form; new call sites should prefer
// threading a context through parsePagesCtx-backed entry points.
func ParsePages(sources []PageSource, workers int) []*Page {
	//ceresvet:ignore ctxflow compatibility wrapper; the root context is deliberate here
	pages, _ := parsePagesCtx(context.Background(), sources, workers)
	return pages
}

func parsePagesCtx(ctx context.Context, sources []PageSource, workers int) ([]*Page, error) {
	pages := make([]*Page, len(sources))
	err := parallelFor(ctx, len(sources), workers, func(i int) {
		pages[i] = PreparePage(sources[i].ID, sources[i].HTML)
	})
	if err != nil {
		return nil, err
	}
	return pages, nil
}

func runCluster(ctx context.Context, pages []*Page, group []int, K *kb.KB, cfg Config) (*ClusterResult, error) {
	sub := make([]*Page, len(group))
	for i, pi := range group {
		sub[i] = pages[pi]
	}
	var ann *AnnotationResult
	actx, asp := trace.StartSpan(ctx, "annotate")
	asp.SetInt("pages", int64(len(sub)))
	if cfg.LegacyAnnotation {
		ann = AnnotateLegacy(sub, K, cfg.Topic, cfg.Relation)
	} else {
		var err error
		ann, err = AnnotateCtx(actx, sub, K, cfg.Topic, cfg.Relation, cfg.Workers)
		if err != nil {
			asp.EndErr(err)
			return nil, err
		}
	}
	asp.End()
	cr := &ClusterResult{PageIdxs: group, Annotation: ann}
	if ann.NumAnnotatedPages() < cfg.MinAnnotatedPages {
		return cr, nil
	}
	fsp := trace.FromContext(ctx).StartChild("fit")
	fz := NewFeaturizer(sub, cfg.Features)
	ds, classes := BuildExamples(sub, ann, fz, cfg.Train)
	if classes.Len() < 2 || ds.Len() == 0 {
		fsp.End()
		return cr, nil
	}
	fz.Freeze()
	model, err := TrainModel(ds, classes, fz, cfg.Train)
	fsp.EndErr(err)
	if err != nil {
		return nil, err
	}
	cr.Model = model
	cr.Trained = true
	return cr, nil
}

// extractGroup applies one cluster's model to the listed pages, pooling
// extractions in page order. A nil model (untrained cluster) yields none.
func extractGroup(ctx context.Context, pages []*Page, group []int, m *Model, opts ExtractOptions, workers int) ([]Extraction, error) {
	if m == nil {
		return nil, nil
	}
	perPage := make([][]Extraction, len(group))
	if err := parallelFor(ctx, len(group), workers, func(i int) {
		perPage[i] = ExtractPage(pages[group[i]], m, opts)
	}); err != nil {
		return nil, err
	}
	var out []Extraction
	for _, exts := range perPage {
		out = append(out, exts...)
	}
	return out, nil
}

// parallelFor runs fn(i) for i in [0,n) on up to `workers` goroutines,
// stopping early (between items) when ctx is cancelled. Items already
// started still finish; the ctx error is returned once workers drain.
func parallelFor(ctx context.Context, n, workers int, fn func(int)) error {
	return parallelForWorker(ctx, n, workers, func(_, i int) { fn(i) })
}

// parallelForWorker is parallelFor with the executing worker's index
// (0..workers-1) passed to fn, so callers can hand each worker its own
// scratch state without synchronization.
func parallelForWorker(ctx context.Context, n, workers int, fn func(worker, i int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(0, i)
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}
