package core

import (
	"fmt"
	"strconv"
	"strings"

	"ceres/internal/dom"
	"ceres/internal/mlr"
)

// This file implements the compiled serve path (DESIGN.md §5). Training
// builds features by concatenating string names and hashing them through
// the feature dictionary; that is fine once per site, but serving applies
// the model to every DOM node of every page, so the string building and
// map probes dominate extraction cost. Compile() runs once per model and
// inverts the dictionary into per-(level, offset, attribute) lookup
// tables keyed directly by tag / attribute value / sibling text, so
// serve-time featurization emits integer feature IDs with no string
// assembly and no allocation. The compiled path is output-identical to
// Featurizer.Features + Model.Proba — the differential tests assert
// deep-equality over the whole DemoCorpus.

// CompiledFeaturizer is the frozen, serve-only form of a Featurizer. It
// is immutable after Compile and safe for concurrent use; the per-call
// scratch lives in the caller's VectorBuilder.
type CompiledFeaturizer struct {
	opts FeatureOptions
	// structural[lvl][off+SiblingWindow] resolves the 4-tuple features of
	// one context position.
	structural [][]structTable
	// text[lvl][off] resolves frequent-string features: off 0 is the
	// ancestor's own text, off k>0 the k-th preceding element sibling.
	text [][]map[string]int32
	// maxText is the longest key across the text tables. Sibling subtree
	// text longer than this can never match, so serve-time probes walk a
	// sibling's subtree only up to maxText bytes before giving up.
	maxText int
}

// structTable resolves the structural features of one (level, offset)
// context position. Nil maps (and a nil attr slice) are valid and simply
// never match.
type structTable struct {
	tag map[string]int32
	// tagBySym mirrors tag, indexed by the process-wide dom.TagSym of the
	// key: tagBySym[sym] is the feature ID, or -1 for no feature. Built by
	// Compile so the per-visit tag lookup on Parse-built nodes is an array
	// index instead of a string hash; the map stays as the fallback for
	// unsymbolized nodes (hand-built trees, exhausted symbol space).
	tagBySym []int32
	// attr is parallel to structuralAttrs: attr[i] maps attribute values
	// of structuralAttrs[i] to feature IDs. Allocated lazily to
	// len(structuralAttrs) when the first attribute feature is indexed.
	attr []map[string]int32
}

// emit appends the IDs of n's structural features at this position.
//
//ceres:allocfree
func (t *structTable) emit(n *dom.Node, vb *mlr.VectorBuilder) {
	if s := n.TagSymbol(); s > 0 {
		if int(s) < len(t.tagBySym) {
			if id := t.tagBySym[s]; id >= 0 {
				vb.AddID(int(id))
			}
		}
	} else if id, ok := t.tag[n.Tag]; ok {
		vb.AddID(int(id))
	}
	for i, m := range t.attr {
		if m == nil {
			continue
		}
		if v, ok := n.Attr(structuralAttrs[i]); ok && v != "" {
			if id, ok := m[v]; ok {
				vb.AddID(int(id))
			}
		}
	}
}

// Compile inverts the frozen feature dictionary into integer lookup
// tables. The featurizer must be frozen: a growing dictionary cannot be
// compiled because serving would miss features training would still add.
func (fz *Featurizer) Compile() (*CompiledFeaturizer, error) {
	if !fz.dict.Frozen() {
		return nil, fmt.Errorf("core: cannot compile an unfrozen featurizer")
	}
	o := fz.opts
	cf := &CompiledFeaturizer{opts: o}
	cf.structural = make([][]structTable, o.MaxAncestors+1)
	for i := range cf.structural {
		cf.structural[i] = make([]structTable, 2*o.SiblingWindow+1)
	}
	cf.text = make([][]map[string]int32, o.TextAncestors+1)
	for i := range cf.text {
		cf.text[i] = make([]map[string]int32, o.SiblingWindow+1)
	}
	for id := 0; id < fz.dict.Len(); id++ {
		cf.index(fz.dict.Name(id), int32(id))
	}
	for _, tables := range cf.text {
		for _, tbl := range tables {
			for k := range tbl {
				if len(k) > cf.maxText {
					cf.maxText = len(k)
				}
			}
		}
	}
	for i := range cf.structural {
		for j := range cf.structural[i] {
			cf.structural[i][j].buildSymIndex()
		}
	}
	return cf, nil
}

// buildSymIndex inverts the tag map into the symbol-indexed array the
// serve path reads. Keys intern through dom.TagSym — the same symbols
// Parse assigns — so a key that cannot intern (exhausted symbol space)
// just stays map-only.
func (t *structTable) buildSymIndex() {
	maxSym := int32(0)
	for k := range t.tag {
		if s := dom.TagSym(k); s > maxSym {
			maxSym = s
		}
	}
	if maxSym == 0 {
		return
	}
	t.tagBySym = make([]int32, maxSym+1)
	for i := range t.tagBySym {
		t.tagBySym[i] = -1
	}
	for k, id := range t.tag {
		if s := dom.TagSym(k); s > 0 {
			t.tagBySym[s] = id
		}
	}
}

// index parses one dictionary feature name into the tables. Names that do
// not match the grammar the trainer emits ("s|lvl|off|attr|value",
// "t|lvl|off|text") or whose positions fall outside the configured
// windows are skipped: the legacy path can never look such names up, so
// ignoring them preserves output equivalence.
func (cf *CompiledFeaturizer) index(name string, id int32) {
	rest, structural := strings.CutPrefix(name, "s|")
	if !structural {
		var ok bool
		rest, ok = strings.CutPrefix(name, "t|")
		if !ok {
			return
		}
	}
	lvl, rest, ok := cutInt(rest)
	if !ok || lvl < 0 {
		return
	}
	off, rest, ok := cutInt(rest)
	if !ok || rest == "" {
		return
	}
	if structural {
		if lvl >= len(cf.structural) || off < -cf.opts.SiblingWindow || off > cf.opts.SiblingWindow {
			return
		}
		t := &cf.structural[lvl][off+cf.opts.SiblingWindow]
		if v, ok := strings.CutPrefix(rest, "tag|"); ok {
			if t.tag == nil {
				t.tag = make(map[string]int32)
			}
			t.tag[v] = id
			return
		}
		for i, attr := range structuralAttrs {
			if v, ok := strings.CutPrefix(rest, attr+"|"); ok {
				if t.attr == nil {
					t.attr = make([]map[string]int32, len(structuralAttrs))
				}
				if t.attr[i] == nil {
					t.attr[i] = make(map[string]int32)
				}
				t.attr[i][v] = id
				return
			}
		}
		return
	}
	// Text feature: off is 0 (ancestor own text) or negative (preceding
	// element sibling); the table stores the magnitude.
	if lvl >= len(cf.text) || off > 0 || -off > cf.opts.SiblingWindow {
		return
	}
	if cf.text[lvl][-off] == nil {
		cf.text[lvl][-off] = make(map[string]int32)
	}
	cf.text[lvl][-off][rest] = id
}

// cutInt splits "123|rest" into (123, "rest").
func cutInt(s string) (int, string, bool) {
	i := strings.IndexByte(s, '|')
	if i < 0 {
		return 0, "", false
	}
	v, err := strconv.Atoi(s[:i])
	if err != nil {
		return 0, "", false
	}
	return v, s[i+1:], true
}

// AppendFeatures emits the feature IDs of a field into vb — the compiled
// counterpart of Featurizer.Features. It walks the same context the
// trainer walked (the containing element, its ancestors, their sibling
// windows) but reads the parse-time structural caches and resolves
// features through the integer tables, with no tree re-walks and no
// string building. Frequent-string probes are bounded by the longest
// lexicon key, so a huge sibling container costs O(maxText), and its text
// is cached on the page after the first probe. Serve workers call the
// scratch-threading appendFeatures instead, which reuses one probe buffer
// across fields.
func (cf *CompiledFeaturizer) AppendFeatures(vb *mlr.VectorBuilder, f *Field) {
	var buf [64]byte
	cf.appendFeatures(vb, f, buf[:0])
}

// appendFeatures is AppendFeatures with a caller-owned scratch buffer for
// the bounded sibling-text probes; it returns the (possibly grown) buffer
// for reuse.
func (cf *CompiledFeaturizer) appendFeatures(vb *mlr.VectorBuilder, f *Field, buf []byte) []byte {
	elem := f.Node.Parent
	if elem == nil {
		return buf
	}
	if !cf.opts.DisableStructural {
		w := cf.opts.SiblingWindow
		node := elem
		for lvl := 0; node != nil && node.Type == dom.ElementNode && lvl <= cf.opts.MaxAncestors; lvl++ {
			tables := cf.structural[lvl]
			tables[w].emit(node, vb)
			sibs := node.ElementSiblings()
			pos := node.ElementIndex()
			for off := 1; off <= w; off++ {
				if pos-off >= 0 {
					tables[w-off].emit(sibs[pos-off], vb)
				}
				if pos+off < len(sibs) {
					tables[w+off].emit(sibs[pos+off], vb)
				}
			}
			node = node.Parent
		}
	}
	if !cf.opts.DisableText {
		node := elem
		for lvl := 0; node != nil && node.Type == dom.ElementNode && lvl <= cf.opts.TextAncestors; lvl++ {
			tables := cf.text[lvl]
			sibs := node.ElementSiblings()
			pos := node.ElementIndex()
			for off := 1; off <= cf.opts.SiblingWindow; off++ {
				if pos-off < 0 {
					break
				}
				tbl := tables[off]
				if len(tbl) == 0 {
					continue // no key can match; skip the text walk
				}
				var ok bool
				if buf, ok = sibs[pos-off].TextWithin(buf[:0], cf.maxText); ok {
					if id, hit := tbl[string(buf)]; hit {
						vb.AddID(int(id))
					}
				}
			}
			if lvl > 0 {
				if tbl := tables[0]; len(tbl) > 0 {
					if own := node.OwnText(); own != "" {
						if id, ok := tbl[own]; ok {
							vb.AddID(int(id))
						}
					}
				}
			}
			node = node.Parent
		}
	}
	return buf
}

// CompiledModel bundles a compiled featurizer with its classifier behind
// the allocation-free mlr.Scorer contract. Immutable and safe for
// concurrent use; each worker passes its own ServeScratch.
type CompiledModel struct {
	classes   *Classes
	nameClass int
	fz        *CompiledFeaturizer
	scorer    mlr.Scorer
}

// Compile produces the frozen serving form of a trained model.
func (m *Model) Compile() (*CompiledModel, error) {
	cf, err := m.Featurizer.Compile()
	if err != nil {
		return nil, err
	}
	cm := &CompiledModel{
		classes:   m.Classes,
		nameClass: m.Classes.Index(NameClass),
		fz:        cf,
	}
	switch {
	case m.NB != nil:
		cm.scorer = m.NB
	case m.LR != nil:
		// Feature-major weights: one pass over the sparse vector scores
		// all classes, bit-identical to Model.ScoresInto.
		cm.scorer = m.LR.Transpose()
	default:
		return nil, fmt.Errorf("core: model has no classifier to compile")
	}
	return cm, nil
}

// ServeScratch is the per-worker scratch space a compiled extraction
// writes into: the reusable vector builder and a flat fields×classes
// probability matrix. Each serve worker owns exactly one; a ServeScratch
// must never be shared between concurrent goroutines.
type ServeScratch struct {
	vb      mlr.VectorBuilder
	proba   []float64
	textBuf []byte // bounded sibling-text probe buffer (frequent strings)

	// Streaming serve path state (streamserve.go).
	stream   *dom.StreamScratch
	htmlBuf  []byte   // page bytes when the source arrives as a string
	sig      [][]byte // sorted routing-signature views
	memoRow  []int32  // per-element first-scored-field memo
	xpathBuf []byte   // lazily rendered XPath scratch

	// Per-page memo of the ancestor half of the feature walk: the
	// features a walk emits for an element at ancestor level L (and
	// everything above it) depend only on that (element, L) pair, so the
	// walk records each pair's ID run once and replays it — cells of one
	// table row share their whole ancestor chain, rows share everything
	// from the table up. Validity is epoch-marked, so a new page costs an
	// increment, not a clear.
	upEpoch    []int32 // (lvl-1)*upStride+node → epoch the span was recorded in
	upOff      []int32 // parallel span starts into upperIDs
	upEnd      []int32 // parallel span ends
	upStride   int     // element count of the page the memo is keyed for
	upEpochCur int32   // current page's epoch
	upVB       mlr.VectorBuilder // transient per-level emission buffer
	upperIDs   []int32           // recorded upper-walk feature IDs, page-local arena

	// Cross-page probability caches (streamserve.go): template pages
	// repeat structural contexts, and an identical raw feature sequence
	// deterministically yields identical class probabilities, so repeat
	// contexts skip sort/coalesce and the scorer entirely. One cache per
	// compiled model — the pooled scratch serves many sites over its
	// lifetime, and a harvest interleaves their shards.
	cacheKey []byte // encoded feature sequence of the current probe
	caches   map[*CompiledModel]*probCache
}

// probCache is one model's cached probability rows inside a ServeScratch.
type probCache struct {
	idx   map[string]int32 // feature-sequence key → row in probs
	probs []float64        // cached rows, ClassCount floats each
}

// NewServeScratch allocates an empty scratch; its buffers grow to the
// largest page the worker sees and are then reused.
func NewServeScratch() *ServeScratch {
	return &ServeScratch{}
}

// ExtractPage applies the compiled model to every field of a page — the
// compiled counterpart of the package-level ExtractPage, with identical
// output (same extractions, same confidences, same order) and no
// per-field allocation.
func (cm *CompiledModel) ExtractPage(p *Page, opts ExtractOptions, sc *ServeScratch) []Extraction {
	opts = opts.withDefaults()
	if cm.nameClass == OtherClass {
		return nil // no name class was learned; no subjects identifiable
	}
	K := cm.scorer.ClassCount()
	need := len(p.Fields) * K
	if cap(sc.proba) < need {
		sc.proba = make([]float64, need)
	}
	proba := sc.proba[:need]
	bestName, bestNameP := -1, 0.0
	for fi, f := range p.Fields {
		sc.vb.Reset()
		sc.textBuf = cm.fz.appendFeatures(&sc.vb, f, sc.textBuf[:0])
		pr := proba[fi*K : (fi+1)*K]
		cm.scorer.ProbaInto(sc.vb.Build(), pr)
		if pr[cm.nameClass] > bestNameP {
			bestName, bestNameP = fi, pr[cm.nameClass]
		}
	}
	if bestName < 0 || bestNameP < opts.NameThreshold {
		return nil // §4.3: extraction requires an identified name node
	}
	subject := p.Fields[bestName].Text
	subjectPath := p.Fields[bestName].XPath()

	// Two passes over the cached probabilities: count survivors, then emit
	// into an exactly sized slice. argmax over K classes is cheap next to
	// the slice-growth copying a blind append pays.
	n := 0
	for fi := range p.Fields {
		if fi == bestName {
			continue
		}
		if cls, _ := argmax(proba[fi*K : (fi+1)*K]); cls != OtherClass && cls != cm.nameClass {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]Extraction, 0, n)
	for fi := range p.Fields {
		if fi == bestName {
			continue
		}
		cls, prob := argmax(proba[fi*K : (fi+1)*K])
		if cls == OtherClass || cls == cm.nameClass {
			continue
		}
		out = append(out, Extraction{
			PageID:      p.ID,
			Subject:     subject,
			Predicate:   cm.classes.Name(cls),
			Value:       p.Fields[fi].Text,
			Confidence:  prob,
			Path:        p.Fields[fi].XPath(),
			SubjectPath: subjectPath,
		})
	}
	return out
}
