package core

import (
	"sort"
	"strconv"

	"ceres/internal/dom"
	"ceres/internal/mlr"
)

// FeatureOptions tunes §4.2's node representation.
type FeatureOptions struct {
	// MaxAncestors bounds how far up the tree structural features reach
	// (default 5, per Vertex).
	MaxAncestors int
	// SiblingWindow bounds how many siblings on either side of each
	// ancestor contribute features (default 5, "up to a width of 5 on
	// either side").
	SiblingWindow int
	// TextAncestors bounds how far up text features look for frequent
	// strings (default 3).
	TextAncestors int
	// FrequentStringMinFrac: strings appearing on at least this fraction
	// of pages join the frequent-string lexicon (default 0.2).
	FrequentStringMinFrac float64
	// MaxFrequentStringLen drops long strings from the lexicon
	// (default 40 bytes).
	MaxFrequentStringLen int
	// DisableStructural / DisableText switch feature families off for the
	// ablation of DESIGN.md §4.
	DisableStructural bool
	DisableText       bool

	// applied marks the options as fully resolved: withDefaults leaves
	// them untouched, so zero values set through Explicit survive instead
	// of being re-defaulted.
	applied bool
}

// Explicit returns o marked as fully resolved: every field — including
// zeros — is taken literally, and defaults are no longer substituted.
// This is how a caller legitimately sets a zero value (e.g.
// FrequentStringMinFrac: 0) that the zero-means-default convention would
// otherwise swallow.
func (o FeatureOptions) Explicit() FeatureOptions {
	o.applied = true
	return o
}

func (o FeatureOptions) withDefaults() FeatureOptions {
	if o.applied {
		return o
	}
	o.applied = true
	if o.MaxAncestors == 0 {
		o.MaxAncestors = 5
	}
	if o.SiblingWindow == 0 {
		o.SiblingWindow = 5
	}
	if o.TextAncestors == 0 {
		o.TextAncestors = 3
	}
	if o.FrequentStringMinFrac == 0 {
		o.FrequentStringMinFrac = 0.2
	}
	if o.MaxFrequentStringLen == 0 {
		o.MaxFrequentStringLen = 40
	}
	return o
}

// FeaturizerState is the serializable form of a Featurizer: its options,
// the feature dictionary, and the frequent-string lexicon (sorted for
// deterministic output).
type FeaturizerState struct {
	Opts     FeatureOptions
	Dict     mlr.DictState
	Frequent []string
}

// State snapshots the featurizer.
func (fz *Featurizer) State() FeaturizerState {
	st := FeaturizerState{Opts: fz.opts, Dict: fz.dict.State()}
	st.Frequent = make([]string, 0, len(fz.frequent))
	for s := range fz.frequent {
		st.Frequent = append(st.Frequent, s)
	}
	sort.Strings(st.Frequent)
	return st
}

// RestoreFeaturizer rebuilds a featurizer from its state. The restored
// dictionary keeps its frozen flag, so a trained featurizer stays frozen.
func RestoreFeaturizer(st FeaturizerState) (*Featurizer, error) {
	dict, err := mlr.RestoreDict(st.Dict)
	if err != nil {
		return nil, err
	}
	// Serialized states always carry resolved options (NewFeaturizer
	// resolves before storing), so restore takes them literally — this is
	// what lets an explicit zero survive a round trip.
	fz := &Featurizer{
		opts:     st.Opts.Explicit(),
		dict:     dict,
		frequent: make(map[string]bool, len(st.Frequent)),
	}
	for _, s := range st.Frequent {
		fz.frequent[s] = true
	}
	return fz, nil
}

// structuralAttrs are the HTML attributes Vertex-style features read
// (§4.2: "tag, class, ID, itemprop, itemtype, and property").
var structuralAttrs = []string{"class", "id", "itemprop", "itemtype", "property"}

// Featurizer converts fields to sparse vectors over a shared dictionary.
type Featurizer struct {
	opts FeatureOptions
	dict *mlr.Dict
	// frequent is the site-level frequent-string lexicon for text
	// features ("a list of strings that appear frequently on the
	// website", §4.2).
	frequent map[string]bool
}

// NewFeaturizer builds the featurizer for one template cluster,
// assembling the frequent-string lexicon from the given pages.
func NewFeaturizer(pages []*Page, opts FeatureOptions) *Featurizer {
	opts = opts.withDefaults()
	fz := &Featurizer{
		opts: opts,
		dict: mlr.NewDict(),
	}
	fz.frequent = frequentStrings(pages, opts)
	return fz
}

// Dict exposes the feature dictionary (frozen by the trainer before
// extraction).
func (fz *Featurizer) Dict() *mlr.Dict { return fz.dict }

// Freeze stops dictionary growth; unseen features are then dropped.
func (fz *Featurizer) Freeze() { fz.dict.Freeze() }

// frequentStrings counts, per distinct collapsed text, the number of pages
// it appears on, and keeps those above the threshold.
func frequentStrings(pages []*Page, opts FeatureOptions) map[string]bool {
	pageCount := map[string]int{}
	for _, p := range pages {
		seen := map[string]bool{}
		for _, f := range p.Fields {
			if len(f.Text) > opts.MaxFrequentStringLen || f.Text == "" {
				continue
			}
			if !seen[f.Text] {
				seen[f.Text] = true
				pageCount[f.Text]++
			}
		}
	}
	min := int(opts.FrequentStringMinFrac*float64(len(pages)) + 0.5)
	if min < 2 {
		min = 2
	}
	out := map[string]bool{}
	for s, n := range pageCount {
		if n >= min {
			out[s] = true
		}
	}
	return out
}

// Features computes the sparse vector of a field: structural 4-tuples
// (attribute name, attribute value, ancestor distance, sibling offset)
// over the node, its ancestors and the ancestors' siblings, plus
// frequent-string text features keyed by the relative tree position of the
// string.
func (fz *Featurizer) Features(f *Field) mlr.Vector {
	var feats []mlr.Feature
	add := func(name string) {
		if id := fz.dict.ID(name); id >= 0 {
			feats = append(feats, mlr.Feature{Index: id, Value: 1})
		}
	}
	// Level 0 is the element containing the text node.
	elem := f.Node.Parent
	if elem == nil {
		return mlr.NewVector(feats)
	}
	if !fz.opts.DisableStructural {
		node := elem
		for lvl := 0; node != nil && node.Type == dom.ElementNode && lvl <= fz.opts.MaxAncestors; lvl++ {
			fz.structuralFor(node, lvl, 0, add)
			// Siblings of this ancestor within the window, at every level
			// (§4.2: the node itself, its ancestors, and their siblings).
			sibs := node.ElementSiblings()
			pos := node.ElementIndex()
			for off := 1; off <= fz.opts.SiblingWindow; off++ {
				if pos-off >= 0 {
					fz.structuralFor(sibs[pos-off], lvl, -off, add)
				}
				if pos+off < len(sibs) {
					fz.structuralFor(sibs[pos+off], lvl, off, add)
				}
			}
			node = node.Parent
		}
	}
	if !fz.opts.DisableText {
		// Frequent strings in nearby nodes: for each ancestor level, scan
		// the ancestor's preceding element siblings (and their subtree
		// text) — where key/value templates put their labels.
		node := elem
		for lvl := 0; node != nil && node.Type == dom.ElementNode && lvl <= fz.opts.TextAncestors; lvl++ {
			sibs := node.ElementSiblings()
			pos := node.ElementIndex()
			for off := 1; off <= fz.opts.SiblingWindow; off++ {
				if pos-off < 0 {
					break
				}
				text := sibs[pos-off].Text()
				if fz.frequent[text] {
					add("t|" + strconv.Itoa(lvl) + "|-" + strconv.Itoa(off) + "|" + text)
				}
			}
			// Direct text of the ancestor itself (e.g. heading text mixed
			// with the value container).
			if lvl > 0 {
				if own := node.OwnText(); own != "" && fz.frequent[own] {
					add("t|" + strconv.Itoa(lvl) + "|0|" + own)
				}
			}
			node = node.Parent
		}
	}
	return mlr.NewVector(feats)
}

// structuralFor emits the 4-tuple features of one context node.
func (fz *Featurizer) structuralFor(n *dom.Node, lvl, off int, add func(string)) {
	prefix := "s|" + strconv.Itoa(lvl) + "|" + strconv.Itoa(off) + "|"
	add(prefix + "tag|" + n.Tag)
	for _, attr := range structuralAttrs {
		if v, ok := n.Attr(attr); ok && v != "" {
			add(prefix + attr + "|" + v)
		}
	}
}
