package core

import (
	"fmt"
	"math/rand"
	"sort"

	"ceres/internal/mlr"
	"ceres/internal/xpath"
)

// TrainOptions configures example generation and model fitting (§4.1–4.2).
type TrainOptions struct {
	// NegativeRatio is r, the number of unlabeled nodes sampled as
	// "OTHER" examples per positive (§4.1: "Following convention in
	// distantly supervised text extraction, we choose r = 3").
	NegativeRatio int
	// Seed drives negative sampling.
	Seed int64
	// DisableListExclusion turns off the list-sibling exclusion of §4.1
	// (ablation 4 of DESIGN.md).
	DisableListExclusion bool
	// Model forwards to the classifier trainer; zero values take the
	// paper-faithful defaults (LBFGS, L2 with C=1).
	Model mlr.TrainOptions
	// Classifier selects "lr" (default) or "nb" for the classifier
	// ablation.
	Classifier string
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.NegativeRatio == 0 {
		o.NegativeRatio = 3
	}
	if o.Classifier == "" {
		o.Classifier = "lr"
	}
	return o
}

// OtherClass is class index 0: "no relation in our ontology".
const OtherClass = 0

// Classes maps predicate names to class indices. Index 0 is OTHER.
type Classes struct {
	names []string
	index map[string]int
}

// NewClasses builds the class space from the annotation set.
func NewClasses(anns []Annotation) *Classes {
	set := map[string]bool{}
	for _, a := range anns {
		set[a.Predicate] = true
	}
	names := make([]string, 0, len(set)+1)
	names = append(names, "OTHER")
	for name := range set {
		names = append(names, name)
	}
	sort.Strings(names[1:])
	c := &Classes{names: names, index: map[string]int{}}
	for i, n := range names {
		c.index[n] = i
	}
	return c
}

// ClassesFromNames rebuilds a class space from its serialized name list,
// preserving the exact index order the model was trained with.
func ClassesFromNames(names []string) (*Classes, error) {
	if len(names) == 0 || names[0] != "OTHER" {
		return nil, fmt.Errorf("core: class list must start with OTHER")
	}
	c := &Classes{names: append([]string(nil), names...), index: map[string]int{}}
	for i, n := range c.names {
		if _, dup := c.index[n]; dup {
			return nil, fmt.Errorf("core: duplicate class %q", n)
		}
		c.index[n] = i
	}
	return c, nil
}

// Index returns the class index of a predicate (OtherClass if unknown).
func (c *Classes) Index(pred string) int {
	if i, ok := c.index[pred]; ok {
		return i
	}
	return OtherClass
}

// Name returns the predicate of a class index.
func (c *Classes) Name(i int) string {
	if i < 0 || i >= len(c.names) {
		return "OTHER"
	}
	return c.names[i]
}

// Len returns the number of classes including OTHER.
func (c *Classes) Len() int { return len(c.names) }

// Names returns a copy of the class names.
func (c *Classes) Names() []string {
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}

// Model bundles a trained classifier with its feature and class spaces.
type Model struct {
	Classes    *Classes
	Featurizer *Featurizer
	// LR is the paper's classifier; NB replaces it when the ablation
	// selects naive Bayes.
	LR *mlr.Model
	NB *mlr.NaiveBayes
}

// Proba returns the class distribution for a field.
func (m *Model) Proba(f *Field) []float64 {
	x := m.Featurizer.Features(f)
	if m.NB != nil {
		return m.NB.Proba(x)
	}
	return m.LR.Proba(x)
}

// BuildExamples converts annotations into a labelled dataset: positives
// with their predicate class, plus r sampled negatives per positive,
// excluding likely list siblings of positives (§4.1).
func BuildExamples(pages []*Page, res *AnnotationResult, fz *Featurizer, opts TrainOptions) (*mlr.Dataset, *Classes) {
	opts = opts.withDefaults()
	classes := NewClasses(res.Annotations)
	ds := &mlr.Dataset{NumClasses: classes.Len()}
	rng := rand.New(rand.NewSource(opts.Seed + 17))

	// Group annotations per page.
	perPage := map[int][]Annotation{}
	for _, a := range res.Annotations {
		perPage[a.PageIdx] = append(perPage[a.PageIdx], a)
	}
	pageIdxs := make([]int, 0, len(perPage))
	for pi := range perPage {
		pageIdxs = append(pageIdxs, pi)
	}
	sort.Ints(pageIdxs)

	for _, pi := range pageIdxs {
		p := pages[pi]
		anns := perPage[pi]
		positive := map[int]bool{}
		for _, a := range anns {
			positive[a.FieldIdx] = true
		}
		excluded := map[int]bool{}
		if !opts.DisableListExclusion {
			excluded = listSiblingExclusions(p, anns)
		}
		// Positives.
		for _, a := range anns {
			ds.Add(fz.Features(p.Fields[a.FieldIdx]), classes.Index(a.Predicate))
		}
		// Negatives: r per positive, sampled among unlabeled,
		// non-excluded fields.
		var candidates []int
		for fi := range p.Fields {
			if !positive[fi] && !excluded[fi] {
				candidates = append(candidates, fi)
			}
		}
		want := opts.NegativeRatio * len(anns)
		if want > len(candidates) {
			want = len(candidates)
		}
		rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
		for _, fi := range candidates[:want] {
			ds.Add(fz.Features(p.Fields[fi]), OtherClass)
		}
	}
	return ds, classes
}

// listSiblingExclusions finds unlabeled fields that likely belong to the
// same value list as a positive (§4.1: "we exclude other nodes that differ
// from these positives only at these indices, since they are likely to be
// part of the same list").
func listSiblingExclusions(p *Page, anns []Annotation) map[int]bool {
	byPred := map[string][]xpath.Path{}
	for _, a := range anns {
		byPred[a.Predicate] = append(byPred[a.Predicate], p.Fields[a.FieldIdx].Path)
	}
	excluded := map[int]bool{}
	for _, pred := range sortedKeys(byPred) {
		paths := byPred[pred]
		if len(paths) < 2 {
			continue
		}
		// Group same-shape paths, wildcard the differing indices.
		pattern, ok := xpath.Generalize(paths)
		if !ok || len(pattern.Wildcards()) == 0 {
			continue
		}
		for fi, f := range p.Fields {
			if pattern.Matches(f.Path) {
				excluded[fi] = true
			}
		}
	}
	return excluded
}

// TrainModel fits the classifier on the training set.
func TrainModel(ds *mlr.Dataset, classes *Classes, fz *Featurizer, opts TrainOptions) (*Model, error) {
	opts = opts.withDefaults()
	m := &Model{Classes: classes, Featurizer: fz}
	if opts.Classifier == "nb" {
		m.NB = mlr.TrainNaiveBayes(ds)
		return m, nil
	}
	lr, err := mlr.Train(ds, opts.Model)
	if err != nil {
		return nil, err
	}
	m.LR = lr
	return m, nil
}
