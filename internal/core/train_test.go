package core

import (
	"testing"

	"ceres/internal/kb"
	"ceres/internal/websim"
)

func emptyKB() *kb.KB {
	return kb.New(websim.MovieOntology())
}

func TestNewClasses(t *testing.T) {
	anns := []Annotation{
		{Predicate: "b"}, {Predicate: "a"}, {Predicate: "b"}, {Predicate: NameClass},
	}
	c := NewClasses(anns)
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (OTHER, a, b, name)", c.Len())
	}
	if c.Name(OtherClass) != "OTHER" {
		t.Errorf("class 0 = %q", c.Name(0))
	}
	if c.Index("a") == OtherClass || c.Index("b") == OtherClass {
		t.Errorf("predicates mapped to OTHER")
	}
	if c.Index("unknown") != OtherClass {
		t.Errorf("unknown predicate should map to OTHER")
	}
	if c.Name(99) != "OTHER" {
		t.Errorf("out-of-range name should be OTHER")
	}
	names := c.Names()
	if len(names) != 4 || names[0] != "OTHER" {
		t.Errorf("Names = %v", names)
	}
}

func TestBuildExamplesShape(t *testing.T) {
	pages, K, _, _ := buildMovieSite(t, 20, defaultStyle())
	res := Annotate(pages, K, TopicOptions{}, RelationOptions{})
	fz := NewFeaturizer(pages, FeatureOptions{})
	ds, classes := BuildExamples(pages, res, fz, TrainOptions{Seed: 1})
	if ds.Len() == 0 {
		t.Fatal("no examples")
	}
	if classes.Len() < 3 {
		t.Fatalf("too few classes: %v", classes.Names())
	}
	// Positives:negatives roughly 1:3 (fewer negatives only when a page
	// runs out of candidates).
	var pos, neg int
	for _, y := range ds.Y {
		if y == OtherClass {
			neg++
		} else {
			pos++
		}
	}
	if neg == 0 || neg > 3*pos {
		t.Errorf("negative sampling off: %d positives, %d negatives", pos, neg)
	}
	if neg < pos {
		t.Errorf("too few negatives: %d positives, %d negatives", pos, neg)
	}
}

// TestListExclusionKeepsListSiblingsOutOfNegatives: unlabeled cast-list
// nodes must not become negatives when other cast entries are positive.
func TestListExclusionKeepsListSiblingsOutOfNegatives(t *testing.T) {
	// Partial cast coverage: only some list members get annotated, so the
	// rest are unlabeled gold nodes that naive negative sampling would
	// poison (§4.1's motivation).
	w := websim.NewWorld(websim.WorldConfig{Films: 150, People: 200, Seed: 21})
	cov := websim.FullCoverage()
	cov.Cast = 0.3
	K := websim.BuildKB(w, cov, 3)
	site := websim.BuildMovieSite(w, w.Films[:25], defaultStyle(), "partial", 7)
	var pages []*Page
	var gold []*websim.Page
	for _, wp := range site.Pages {
		pages = append(pages, PreparePage(wp.ID, wp.HTML))
		gold = append(gold, wp)
	}
	res := Annotate(pages, K, TopicOptions{}, RelationOptions{})

	countBadNegatives := func(opts TrainOptions) int {
		// Rebuild examples and count negatives that are actually gold
		// cast facts (mislabelled list siblings).
		perPage := map[int]map[string]bool{}
		for pi, g := range gold {
			set := map[string]bool{}
			for _, f := range g.Facts {
				set[f.NodePath] = true
			}
			perPage[pi] = set
		}
		// Reimplement the negative selection by diffing: run BuildExamples
		// twice with identical seeds and inspect via annotations map.
		positive := map[[2]int]bool{}
		for _, a := range res.Annotations {
			positive[[2]int{a.PageIdx, a.FieldIdx}] = true
		}
		// We can't see inside BuildExamples, so approximate: compute the
		// exclusion sets directly.
		bad := 0
		for pi := range perPage {
			anns := []Annotation{}
			for _, a := range res.Annotations {
				if a.PageIdx == pi {
					anns = append(anns, a)
				}
			}
			if len(anns) == 0 {
				continue
			}
			var excluded map[int]bool
			if opts.DisableListExclusion {
				excluded = map[int]bool{}
			} else {
				excluded = listSiblingExclusions(pages[pi], anns)
			}
			for fi, f := range pages[pi].Fields {
				if positive[[2]int{pi, fi}] || excluded[fi] {
					continue
				}
				if perPage[pi][f.PathString] {
					bad++ // this gold node is eligible to become a negative
				}
			}
		}
		return bad
	}
	with := countBadNegatives(TrainOptions{})
	without := countBadNegatives(TrainOptions{DisableListExclusion: true})
	if with >= without {
		t.Errorf("list exclusion should shrink eligible bad negatives: with=%d without=%d", with, without)
	}
}

func TestTrainModelClassifiers(t *testing.T) {
	pages, K, _, _ := buildMovieSite(t, 20, defaultStyle())
	res := Annotate(pages, K, TopicOptions{}, RelationOptions{})
	fz := NewFeaturizer(pages, FeatureOptions{})
	ds, classes := BuildExamples(pages, res, fz, TrainOptions{Seed: 1})
	lr, err := TrainModel(ds, classes, fz, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if lr.LR == nil || lr.NB != nil {
		t.Errorf("default classifier should be LR")
	}
	nb, err := TrainModel(ds, classes, fz, TrainOptions{Classifier: "nb"})
	if err != nil {
		t.Fatal(err)
	}
	if nb.NB == nil {
		t.Errorf("nb classifier not trained")
	}
	// Both classify a field to a full distribution.
	p := lr.Proba(pages[0].Fields[3])
	if len(p) != classes.Len() {
		t.Errorf("LR proba length %d", len(p))
	}
	p = nb.Proba(pages[0].Fields[3])
	if len(p) != classes.Len() {
		t.Errorf("NB proba length %d", len(p))
	}
}
