package core

// Extraction is one extracted triple (§4.3): the page's topic name is the
// subject, the classified node's text the object.
type Extraction struct {
	PageID     string
	Subject    string
	Predicate  string
	Value      string
	Confidence float64
	// Path is the XPath of the extracted node.
	Path string
	// SubjectPath is the XPath of the name node that supplied the
	// subject.
	SubjectPath string
}

// ExtractOptions tunes extraction.
type ExtractOptions struct {
	// NameThreshold is the minimum probability for a node to be accepted
	// as the page's name node (default 0.5).
	NameThreshold float64

	// applied marks the options as fully resolved; see Explicit.
	applied bool
}

// Explicit returns o marked as fully resolved: every field — including a
// zero NameThreshold, which accepts any best-scoring name node — is taken
// literally instead of being replaced by the default.
func (o ExtractOptions) Explicit() ExtractOptions {
	o.applied = true
	return o
}

// Resolve substitutes defaults for unset zero fields and marks the
// options resolved — the exported form of withDefaults, used when loading
// legacy serialized states whose zeros mean "default".
func (o ExtractOptions) Resolve() ExtractOptions {
	return o.withDefaults()
}

func (o ExtractOptions) withDefaults() ExtractOptions {
	if o.applied {
		return o
	}
	o.applied = true
	if o.NameThreshold == 0 {
		o.NameThreshold = 0.5
	}
	return o
}

// ExtractPage applies the model to every field of a page (§4.3: "we apply
// the logistic regression model we learned to all DOM nodes on each page
// of the website"). The highest-probability name node supplies the
// subject; remaining fields whose argmax class is a predicate yield
// extractions carrying that class's probability as confidence. Extractions
// at every confidence are returned; callers threshold.
func ExtractPage(p *Page, m *Model, opts ExtractOptions) []Extraction {
	opts = opts.withDefaults()
	nameClass := m.Classes.Index(NameClass)
	if nameClass == OtherClass {
		return nil // no name class was learned; no subjects identifiable
	}
	type scored struct {
		fieldIdx int
		proba    []float64
	}
	all := make([]scored, len(p.Fields))
	bestName, bestNameP := -1, 0.0
	for fi, f := range p.Fields {
		pr := m.Proba(f)
		all[fi] = scored{fieldIdx: fi, proba: pr}
		if pr[nameClass] > bestNameP {
			bestName, bestNameP = fi, pr[nameClass]
		}
	}
	if bestName < 0 || bestNameP < opts.NameThreshold {
		return nil // §4.3: extraction requires an identified name node
	}
	subject := p.Fields[bestName].Text
	subjectPath := p.Fields[bestName].XPath()

	var out []Extraction
	for _, s := range all {
		if s.fieldIdx == bestName {
			continue
		}
		cls, prob := argmax(s.proba)
		if cls == OtherClass || cls == nameClass {
			continue
		}
		out = append(out, Extraction{
			PageID:      p.ID,
			Subject:     subject,
			Predicate:   m.Classes.Name(cls),
			Value:       p.Fields[s.fieldIdx].Text,
			Confidence:  prob,
			Path:        p.Fields[s.fieldIdx].XPath(),
			SubjectPath: subjectPath,
		})
	}
	return out
}

func argmax(p []float64) (int, float64) {
	best := 0
	for i, v := range p {
		if v > p[best] {
			best = i
		}
	}
	return best, p[best]
}
