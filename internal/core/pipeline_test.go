package core

import (
	"context"
	"testing"

	"ceres/internal/eval"
	"ceres/internal/websim"
)

// goldFacts converts a generated page's ground truth into eval facts,
// excluding the name predicate (extractions carry it as the subject).
func goldFacts(gold []*websim.Page) []eval.Fact {
	var out []eval.Fact
	for _, p := range gold {
		for _, f := range p.GoldValues() {
			if f.Predicate == "name" {
				continue
			}
			out = append(out, eval.Fact{Page: p.ID, Predicate: f.Predicate, Value: f.Value})
		}
	}
	return out
}

func extractionFacts(exts []Extraction, minConf float64) []eval.Fact {
	var out []eval.Fact
	for _, e := range exts {
		if e.Confidence < minConf {
			continue
		}
		out = append(out, eval.Fact{Page: e.PageID, Predicate: e.Predicate, Value: e.Value})
	}
	return out
}

func TestPipelineEndToEnd(t *testing.T) {
	pages, K, _, gold := buildMovieSite(t, 60, defaultStyle())
	sources := make([]PageSource, len(gold))
	for i, g := range gold {
		sources[i] = PageSource{ID: g.ID, HTML: g.HTML}
	}
	_ = pages
	res, err := Run(context.Background(), sources, K, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumAnnotatedPages() < 45 {
		t.Fatalf("annotated %d/60 pages", res.NumAnnotatedPages())
	}
	if len(res.Extractions) == 0 {
		t.Fatal("no extractions")
	}
	prf := eval.Score(extractionFacts(res.Extractions, 0.5), goldFacts(gold))
	t.Logf("end-to-end: P=%.3f R=%.3f F1=%.3f (tp=%d fp=%d fn=%d)",
		prf.P, prf.R, prf.F1, prf.TP, prf.FP, prf.FN)
	if prf.P < 0.85 {
		t.Errorf("extraction precision %.3f below 0.85", prf.P)
	}
	if prf.R < 0.6 {
		t.Errorf("extraction recall %.3f below 0.6", prf.R)
	}
	// Subjects must be the page topics.
	byID := map[string]*websim.Page{}
	for _, g := range gold {
		byID[g.ID] = g
	}
	wrongSubject := 0
	for _, e := range res.Extractions {
		if e.Confidence >= 0.5 && byID[e.PageID] != nil && e.Subject != byID[e.PageID].TopicName {
			wrongSubject++
		}
	}
	if frac := float64(wrongSubject) / float64(len(res.Extractions)); frac > 0.05 {
		t.Errorf("%.1f%% of extractions have a wrong subject", 100*frac)
	}
}

func TestPipelineDiscoversNewEntities(t *testing.T) {
	// Films absent from the seed KB must still yield extractions once the
	// model is trained — the new-entity discovery the paper contrasts
	// against Knowledge Vault (§5.5).
	w := websim.NewWorld(websim.WorldConfig{Films: 160, People: 220, Seed: 33})
	style := defaultStyle()
	site := websim.BuildMovieSite(w, w.Films[:80], style, "halfsite", 5)
	// KB covers only the first 40 films rendered.
	covered := map[string]bool{}
	for i := 0; i < 40; i++ {
		covered[w.Films[i].ID] = true
	}
	trimmed := trimWorldFilms(w, 40)
	K := websim.BuildKB(trimmed, websim.FullCoverage(), 3)
	var sources []PageSource
	for _, p := range site.Pages {
		sources = append(sources, PageSource{ID: p.ID, HTML: p.HTML})
	}
	res, err := Run(context.Background(), sources, K, Config{})
	if err != nil {
		t.Fatal(err)
	}
	newEntityExtractions := 0
	for _, e := range res.Extractions {
		if e.Confidence < 0.5 {
			continue
		}
		if !covered[e.PageID] { // page IDs are film IDs here
			newEntityExtractions++
		}
	}
	if newEntityExtractions == 0 {
		t.Errorf("no extractions for entities outside the seed KB")
	}
	// And they should be mostly correct.
	var gold []eval.Fact
	var got []eval.Fact
	byID := map[string]*websim.Page{}
	for _, p := range site.Pages {
		byID[p.ID] = p
	}
	for _, e := range res.Extractions {
		if e.Confidence < 0.5 || covered[e.PageID] {
			continue
		}
		got = append(got, eval.Fact{Page: e.PageID, Predicate: e.Predicate, Value: e.Value})
	}
	for _, p := range site.Pages {
		if covered[p.ID] {
			continue
		}
		for _, f := range p.GoldValues() {
			if f.Predicate != "name" {
				gold = append(gold, eval.Fact{Page: p.ID, Predicate: f.Predicate, Value: f.Value})
			}
		}
	}
	prf := eval.Score(got, gold)
	t.Logf("new-entity extractions: %d, P=%.3f R=%.3f", newEntityExtractions, prf.P, prf.R)
	if prf.P < 0.8 {
		t.Errorf("new-entity precision %.3f below 0.8", prf.P)
	}
}

// trimWorldFilms builds a world view exposing only the first n films (for
// KB construction) — mirroring buildCrawlKB in websim.
func trimWorldFilms(w *websim.World, n int) *websim.World {
	return websim.TrimFilms(w, n)
}

func TestPipelineClustersTemplates(t *testing.T) {
	// A mixed site (film + person pages) must split into clusters.
	w := websim.NewWorld(websim.WorldConfig{Films: 120, People: 160, Seed: 44})
	films, people := websim.GenerateIMDB(w, websim.IMDBConfig{FilmPages: 30, PersonPages: 20, Seed: 2})
	var sources []PageSource
	for _, p := range films.Pages {
		sources = append(sources, PageSource{ID: "f/" + p.ID, HTML: p.HTML})
	}
	for _, p := range people.Pages {
		sources = append(sources, PageSource{ID: "p/" + p.ID, HTML: p.HTML})
	}
	K := websim.BuildKB(w, websim.FullCoverage(), 3)
	res, err := Run(context.Background(), sources, K, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) < 2 {
		t.Errorf("mixed-template site should split into >= 2 clusters, got %d", len(res.Clusters))
	}
}

func TestPipelineNoAnnotatablePages(t *testing.T) {
	// A KB about a disjoint world yields no annotations, no model, no
	// extractions — the bcdb/bmxmdb behaviour of Table 8.
	w1 := websim.NewWorld(websim.WorldConfig{Films: 60, People: 80, Seed: 55})
	w2 := websim.NewWorld(websim.WorldConfig{Films: 60, People: 80, Seed: 56})
	site := websim.BuildMovieSite(w1, w1.Films[:20], defaultStyle(), "disjoint", 9)
	K := websim.BuildKB(w2, websim.FullCoverage(), 3)
	var sources []PageSource
	for _, p := range site.Pages {
		sources = append(sources, PageSource{ID: p.ID, HTML: p.HTML})
	}
	res, err := Run(context.Background(), sources, K, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Extractions) != 0 {
		t.Errorf("disjoint KB should yield no extractions, got %d", len(res.Extractions))
	}
}

func TestParallelForMatchesSerial(t *testing.T) {
	n := 100
	serial := make([]int, n)
	parallel := make([]int, n)
	for i := 0; i < n; i++ {
		serial[i] = i * i
	}
	if err := parallelFor(context.Background(), n, 7, func(i int) { parallel[i] = i * i }); err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("parallelFor diverged at %d", i)
		}
	}
	// Degenerate worker counts.
	parallelFor(context.Background(), 3, 0, func(i int) {})
	parallelFor(context.Background(), 0, 5, func(i int) { t.Fatal("should not run") })
}
