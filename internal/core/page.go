// Package core implements the CERES extraction framework itself (paper
// §2–§4): two-step distant-supervision annotation — topic identification
// (Algorithm 1) and relation annotation (Algorithm 2) — followed by
// training a multinomial logistic-regression node classifier over
// DOM-structural and nearby-text features, and extraction of new triples
// with calibrated confidences. The baseline variants the paper compares
// against (CERES-Topic, CERES-Baseline) are modes of the same pipeline.
package core

import (
	"ceres/internal/dom"
	"ceres/internal/strmatch"
	"ceres/internal/xpath"
)

// Field is one candidate text field of a page: the unit of annotation and
// extraction (§2.1).
type Field struct {
	// Node is the underlying text node.
	Node *dom.Node
	// Text is the collapsed text content.
	Text string
	// Path is the absolute XPath of the text node.
	Path xpath.Path
	// PathString caches Path.String().
	PathString string
	// Norm caches the normalized text.
	Norm string
}

// Page is a parsed page prepared for the pipeline.
type Page struct {
	// ID identifies the page within its site.
	ID  string
	Doc *dom.Node
	// Fields lists the non-empty text fields in document order.
	Fields []*Field
	// fieldByNode resolves a text node back to its Field.
	fieldByNode map[*dom.Node]*Field
}

// PreparePage parses HTML and enumerates its text fields.
func PreparePage(id, html string) *Page {
	doc := dom.Parse(html)
	nodes := dom.TextFields(doc)
	p := &Page{
		ID:          id,
		Doc:         doc,
		Fields:      make([]*Field, 0, len(nodes)),
		fieldByNode: make(map[*dom.Node]*Field, len(nodes)),
	}
	for _, n := range nodes {
		text := dom.CollapseSpace(n.Data)
		path := xpath.FromNode(n)
		f := &Field{
			Node:       n,
			Text:       text,
			Path:       path,
			PathString: path.String(),
			Norm:       strmatch.Normalize(text),
		}
		p.Fields = append(p.Fields, f)
		p.fieldByNode[n] = f
	}
	return p
}

// FieldAt returns the field whose text node has the given path string, or
// nil.
func (p *Page) FieldAt(pathString string) *Field {
	for _, f := range p.Fields {
		if f.PathString == pathString {
			return f
		}
	}
	return nil
}
