// Package core implements the CERES extraction framework itself (paper
// §2–§4): two-step distant-supervision annotation — topic identification
// (Algorithm 1) and relation annotation (Algorithm 2) — followed by
// training a multinomial logistic-regression node classifier over
// DOM-structural and nearby-text features, and extraction of new triples
// with calibrated confidences. The baseline variants the paper compares
// against (CERES-Topic, CERES-Baseline) are modes of the same pipeline.
package core

import (
	"ceres/internal/dom"
	"ceres/internal/strmatch"
	"ceres/internal/xpath"
)

// Field is one candidate text field of a page: the unit of annotation and
// extraction (§2.1).
type Field struct {
	// Node is the underlying text node.
	Node *dom.Node
	// Text is the collapsed text content.
	Text string
	// Path is the absolute XPath of the text node. Serve-prepared pages
	// leave it nil; annotation-time consumers always go through
	// PreparePage, which fills it.
	Path xpath.Path
	// PathString caches Path.String(); empty on serve-prepared pages
	// until XPath computes it on demand.
	PathString string
	// Norm caches the normalized text (annotation-time only; empty on
	// serve-prepared pages, which never match against a KB).
	Norm string
}

// XPath returns the absolute XPath string of the field's text node,
// computing and caching it on first use for serve-prepared pages. Not
// safe for concurrent use on the same page — a page is owned by one serve
// worker at a time.
func (f *Field) XPath() string {
	if f.PathString == "" {
		f.PathString = xpath.FromNode(f.Node).String()
	}
	return f.PathString
}

// Page is a parsed page prepared for the pipeline.
type Page struct {
	// ID identifies the page within its site.
	ID  string
	Doc *dom.Node
	// Fields lists the non-empty text fields in document order.
	Fields []*Field
}

// PreparePage parses HTML and enumerates its text fields with the full
// annotation-time context: XPath and normalized text per field. Training
// uses this; the serve path uses PrepareServePage.
func PreparePage(id, html string) *Page {
	p := PrepareServePage(id, html)
	for _, f := range p.Fields {
		f.Path = xpath.FromNode(f.Node)
		f.PathString = f.Path.String()
		f.Norm = strmatch.Normalize(f.Text)
	}
	return p
}

// PrepareServePage parses HTML and enumerates its text fields, deferring
// the per-field context extraction rarely needs (XPaths are computed
// lazily for extracted nodes only; normalized text is annotation-only).
// This is the serve-path entry: classification reads only Node and Text.
func PrepareServePage(id, html string) *Page {
	doc := dom.Parse(html)
	nodes := dom.TextFields(doc)
	p := &Page{
		ID:     id,
		Doc:    doc,
		Fields: make([]*Field, 0, len(nodes)),
	}
	fields := make([]Field, len(nodes))
	for i, n := range nodes {
		f := &fields[i]
		f.Node = n
		f.Text = n.Text() // cached collapsed text from dom.Finalize
		p.Fields = append(p.Fields, f)
	}
	return p
}
