// Package core implements the CERES extraction framework itself (paper
// §2–§4): two-step distant-supervision annotation — topic identification
// (Algorithm 1) and relation annotation (Algorithm 2) — followed by
// training a multinomial logistic-regression node classifier over
// DOM-structural and nearby-text features, and extraction of new triples
// with calibrated confidences. The baseline variants the paper compares
// against (CERES-Topic, CERES-Baseline) are modes of the same pipeline.
package core

import (
	"sync"

	"ceres/internal/dom"
	"ceres/internal/strmatch"
	"ceres/internal/xpath"
)

// Field is one candidate text field of a page: the unit of annotation and
// extraction (§2.1).
type Field struct {
	// Node is the underlying text node.
	Node *dom.Node
	// Text is the collapsed text content.
	Text string
	// Path is the absolute XPath of the text node. Serve-prepared pages
	// leave it nil; annotation-time consumers always go through
	// PreparePage, which fills it.
	Path xpath.Path
	// PathString caches Path.String(); empty on serve-prepared pages
	// until XPath computes it on demand.
	PathString string
	// Norm caches the normalized text (annotation-time only; empty on
	// serve-prepared pages, which never match against a KB).
	Norm string
}

// XPath returns the absolute XPath string of the field's text node,
// computing and caching it on first use for serve-prepared pages. Not
// safe for concurrent use on the same page — a page is owned by one serve
// worker at a time.
func (f *Field) XPath() string {
	if f.PathString == "" {
		// Node.XPath renders the same canonical form xpath.Path.String
		// would — going through the parsed Path here would build the
		// string, parse it, and build it again.
		f.PathString = f.Node.XPath()
	}
	return f.PathString
}

// Page is a parsed page prepared for the pipeline.
type Page struct {
	// ID identifies the page within its site.
	ID  string
	Doc *dom.Node
	// Fields lists the non-empty text fields in document order.
	Fields []*Field
	// slab is the recyclable storage behind Fields; set by
	// PrepareServePage, reclaimed by Release.
	slab *pageSlab
}

// pageSlab is the recyclable field storage behind a serve-prepared page.
// Slabs re-enter the pool fully zeroed (see Page.Release), so a pooled
// slab never pins a released page's nodes or strings and acquisition
// needs no clearing.
type pageSlab struct {
	fields []Field
	ptrs   []*Field
}

var pageSlabPool sync.Pool // of *pageSlab, elements zeroed

// Release recycles the page's DOM node storage and field slab for future
// parses. The caller must be the page's sole owner and must not touch the
// page — its Doc, Fields, or any node reached through them — afterwards.
// Strings already copied out (extraction subjects, values, XPaths) stay
// valid. Release is an optimization, never an obligation: an unreleased
// page is ordinary garbage.
func (p *Page) Release() {
	p.Doc.Release()
	if sl := p.slab; sl != nil {
		p.slab = nil
		p.Fields = nil
		clear(sl.fields) // drop node and string references before pooling
		sl.fields = sl.fields[:0]
		clear(sl.ptrs)
		sl.ptrs = sl.ptrs[:0]
		pageSlabPool.Put(sl)
	}
}

// PreparePage parses HTML and enumerates its text fields with the full
// annotation-time context: XPath and normalized text per field. Training
// uses this; the serve path uses PrepareServePage.
func PreparePage(id, html string) *Page {
	p := PrepareServePage(id, html)
	for _, f := range p.Fields {
		f.Path = xpath.FromNode(f.Node)
		f.PathString = f.Path.String()
		f.Norm = strmatch.Normalize(f.Text)
	}
	return p
}

// PrepareServePage parses HTML and enumerates its text fields, deferring
// the per-field context extraction rarely needs (XPaths are computed
// lazily for extracted nodes only; normalized text is annotation-only).
// This is the serve-path entry: classification reads only Node and Text.
func PrepareServePage(id, html string) *Page {
	doc := dom.Parse(html)
	nodes := dom.TextFields(doc)
	n := len(nodes)
	sl, _ := pageSlabPool.Get().(*pageSlab)
	if sl == nil {
		sl = new(pageSlab)
	}
	if cap(sl.fields) < n {
		sl.fields = make([]Field, n)
	} else {
		sl.fields = sl.fields[:n] // zeroed on release; see pageSlabPool
	}
	if cap(sl.ptrs) < n {
		sl.ptrs = make([]*Field, n)
	} else {
		sl.ptrs = sl.ptrs[:n]
	}
	for i, node := range nodes {
		f := &sl.fields[i]
		f.Node = node
		f.Text = node.Text() // cached collapsed text from dom.Finalize
		sl.ptrs[i] = f
	}
	return &Page{ID: id, Doc: doc, Fields: sl.ptrs, slab: sl}
}
