package core

import "testing"

// TestOptionDefaultsZeroValueSentinel is the regression test for the
// zero-value ambiguity: a plain zero takes the default, but a zero set
// through Explicit survives resolution.
func TestOptionDefaultsZeroValueSentinel(t *testing.T) {
	// Plain zeros default.
	eo := ExtractOptions{}.withDefaults()
	if eo.NameThreshold != 0.5 {
		t.Errorf("default NameThreshold = %v, want 0.5", eo.NameThreshold)
	}
	fo := FeatureOptions{}.withDefaults()
	if fo.FrequentStringMinFrac != 0.2 || fo.MaxAncestors != 5 {
		t.Errorf("defaults not applied: %+v", fo)
	}

	// Explicit zeros survive.
	eo = ExtractOptions{NameThreshold: 0}.Explicit().withDefaults()
	if eo.NameThreshold != 0 {
		t.Errorf("explicit zero NameThreshold became %v", eo.NameThreshold)
	}
	fo = FeatureOptions{
		MaxAncestors: 5, SiblingWindow: 5, TextAncestors: 3,
		MaxFrequentStringLen: 40, FrequentStringMinFrac: 0,
	}.Explicit().withDefaults()
	if fo.FrequentStringMinFrac != 0 {
		t.Errorf("explicit zero FrequentStringMinFrac became %v", fo.FrequentStringMinFrac)
	}
	if fo.MaxAncestors != 5 {
		t.Errorf("explicit non-zero field changed: %+v", fo)
	}

	// Resolution is idempotent: re-resolving an already resolved value
	// never re-substitutes (non-zero or zero alike).
	eo2 := ExtractOptions{NameThreshold: 0.9}.withDefaults()
	eo2.NameThreshold = 0
	if got := eo2.withDefaults().NameThreshold; got != 0 {
		t.Errorf("resolved options re-defaulted: %v", got)
	}
}

// TestExplicitZeroMinFracWidensLexicon checks the sentinel has a real
// behavioral effect: with the default 0.2 fraction over 15 pages, only
// strings on >=3 pages are frequent; an explicit zero drops the bar to
// the absolute floor of 2 pages.
func TestExplicitZeroMinFracWidensLexicon(t *testing.T) {
	pages, _, _, _ := buildMovieSite(t, 15, defaultStyle())
	base := FeatureOptions{}.withDefaults()
	zero := base
	zero.FrequentStringMinFrac = 0
	defFz := NewFeaturizer(pages, base)
	zeroFz := NewFeaturizer(pages, zero.Explicit())
	if len(zeroFz.frequent) <= len(defFz.frequent) {
		t.Errorf("explicit zero min-frac lexicon (%d strings) not larger than default (%d)",
			len(zeroFz.frequent), len(defFz.frequent))
	}
	for s := range defFz.frequent {
		if !zeroFz.frequent[s] {
			t.Errorf("string %q lost when threshold lowered", s)
		}
	}
}

// TestSiteModelPreservesExplicitZeroThreshold: an explicit zero
// NameThreshold must survive a State/Restore round trip — TrainSite
// stores resolved extraction options and RestoreSiteModel takes them
// literally, so the unexported sentinel never needs to serialize.
func TestSiteModelPreservesExplicitZeroThreshold(t *testing.T) {
	cfg := Config{Extract: ExtractOptions{NameThreshold: 0}.Explicit()}.withDefaults()
	if cfg.Extract.NameThreshold != 0 {
		t.Fatalf("Config.withDefaults overwrote explicit zero: %v", cfg.Extract.NameThreshold)
	}
	sm := &SiteModel{Extract: cfg.Extract}
	restored, err := RestoreSiteModel(sm.State())
	if err != nil {
		t.Fatal(err)
	}
	got := restored.Extract.withDefaults()
	if got.NameThreshold != 0 {
		t.Errorf("explicit zero NameThreshold became %v after round trip", got.NameThreshold)
	}
	// And the default still resolves for models trained without it.
	def := Config{}.withDefaults()
	if def.Extract.NameThreshold != 0.5 {
		t.Errorf("default NameThreshold = %v, want 0.5", def.Extract.NameThreshold)
	}
}

// TestRestoreFeaturizerPreservesExplicitZero: serialized states carry
// resolved options, so a round trip keeps a legitimate zero.
func TestRestoreFeaturizerPreservesExplicitZero(t *testing.T) {
	pages, _, _, _ := buildMovieSite(t, 6, defaultStyle())
	opts := FeatureOptions{}.withDefaults()
	opts.FrequentStringMinFrac = 0
	fz := NewFeaturizer(pages, opts.Explicit())
	fz.Freeze()
	restored, err := RestoreFeaturizer(fz.State())
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.opts.FrequentStringMinFrac; got != 0 {
		t.Errorf("restored FrequentStringMinFrac = %v, want 0", got)
	}
	if !restored.opts.applied {
		t.Errorf("restored options must be marked resolved")
	}
}
