package core

import (
	"context"
	"sort"

	"ceres/internal/cluster"
	"ceres/internal/dom"
	"ceres/internal/kb"
	"ceres/internal/strmatch"
)

// RelationOptions tunes Algorithm 2 (paper §3.2).
type RelationOptions struct {
	// MinAnnotations is the informativeness filter: pages with fewer
	// relation annotations are dropped entirely (§3.1.2 step 3,
	// "e.g., >= 3").
	MinAnnotations int
	// DuplicatedPageFrac: an object value serving a predicate on more than
	// this fraction of annotated pages forces the global-cluster route
	// (§3.2.2 case 2, "more than half of the annotated pages").
	DuplicatedPageFrac float64
	// MaxClusterPaths caps the number of distinct XPaths fed to the
	// agglomerative clustering (cost guard; excess lowest-count paths get
	// cluster size 0).
	MaxClusterPaths int
	// DisableClustering turns off the global-evidence step (ablation 2 of
	// DESIGN.md §4); ties then remain unannotated.
	DisableClustering bool
	// AnnotateAllMentions bypasses Algorithm 2 entirely and labels every
	// mention of every object with every applicable relation — this is
	// the CERES-Topic baseline (§5.2).
	AnnotateAllMentions bool
}

func (o RelationOptions) withDefaults() RelationOptions {
	if o.MinAnnotations == 0 {
		o.MinAnnotations = 3
	}
	if o.DuplicatedPageFrac == 0 {
		o.DuplicatedPageFrac = 0.5
	}
	if o.MaxClusterPaths == 0 {
		o.MaxClusterPaths = 400
	}
	return o
}

// NameClass is the class label of the topic-name node (§4: "the DOM node
// that contains the topic entity is considered as expressing the 'name'
// relation").
const NameClass = "name"

// Annotation is one training label: a field on a page expresses a
// predicate.
type Annotation struct {
	PageIdx   int
	FieldIdx  int
	Predicate string
}

// AnnotationResult is the output of the annotation stage.
type AnnotationResult struct {
	// Annotations lists positive labels across all annotated pages.
	Annotations []Annotation
	// Topics is the per-page topic assignment (index-aligned with the
	// input pages).
	Topics []TopicResult
	// AnnotatedPages marks pages that survived the informativeness
	// filter.
	AnnotatedPages []bool
}

// NumAnnotatedPages counts pages that produced annotations.
func (r *AnnotationResult) NumAnnotatedPages() int {
	n := 0
	for _, b := range r.AnnotatedPages {
		if b {
			n++
		}
	}
	return n
}

// objGroup collects the candidate mentions of one object for one
// predicate on one page.
type objGroup struct {
	fields []int
}

// Annotate runs the full annotation stage over a template cluster — topic
// identification (Algorithm 1), then relation annotation (Algorithm 2)
// with agglomerative XPath clustering as the global tie-breaker — through
// the indexed path: interned kb.ItemIDs, precomputed match keys, and the
// worker pool. Output is identical to AnnotateLegacy (the differential
// tests assert it over every demo corpus).
func Annotate(pages []*Page, K *kb.KB, topts TopicOptions, ropts RelationOptions) *AnnotationResult {
	//ceresvet:ignore ctxflow compatibility wrapper; AnnotateCtx is the cancellable form
	res, _ := AnnotateCtx(context.Background(), pages, K, topts, ropts, 0)
	return res
}

// AnnotateLegacy is the original string-keyed annotation stage: object
// keys as "e:"/"lit:" strings, per-call normalization in MatchesObject,
// sequential pages. It is retained as the reference implementation for
// differential testing and as the fallback Config.LegacyAnnotation
// selects.
func AnnotateLegacy(pages []*Page, K *kb.KB, topts TopicOptions, ropts RelationOptions) *AnnotationResult {
	ropts = ropts.withDefaults()
	topics := IdentifyTopicsLegacy(pages, K, topts)

	// groups[pageIdx][pred][objKey] lists the fields mentioning that
	// object of that predicate.
	groups := map[int]map[string]map[string]*objGroup{}
	// mentionPaths[pred][path] counts mentions at that path site-wide.
	mentionPaths := map[string]map[string]int{}
	// maxMentionsPerObj[pred] is Algorithm 2's cluster count k: the
	// maximum number of mentions of a single object on one page.
	maxMentionsPerObj := map[string]int{}
	// objPageCount[pred][objKey] counts pages where the object is a
	// candidate value of the predicate (the >half-of-pages rule).
	objPageCount := map[string]map[string]int{}
	pagesWithTopic := 0

	for pi, p := range pages {
		if topics[pi].EntityID == "" {
			continue
		}
		triples := K.TriplesOf(topics[pi].EntityID)
		if len(triples) == 0 {
			continue
		}
		pagesWithTopic++
		pg := map[string]map[string]*objGroup{}
		for _, t := range triples {
			// Unlike topic identification, relation annotation does not
			// apply the low-information filter: short numerals (episode
			// numbers, heights) are legitimate objects, and Algorithm 2's
			// local/global evidence disambiguates their many mentions.
			if !t.Object.IsEntity() && strmatch.Normalize(t.Object.Literal) == "" {
				continue
			}
			key := t.Object.Key()
			if pg[t.Predicate] != nil && pg[t.Predicate][key] != nil {
				continue // duplicate triple
			}
			var fields []int
			for fi, f := range p.Fields {
				if fi == topics[pi].FieldIdx {
					continue
				}
				if K.MatchesObject(f.Text, t.Object) {
					fields = append(fields, fi)
				}
			}
			if len(fields) == 0 {
				continue
			}
			if pg[t.Predicate] == nil {
				pg[t.Predicate] = map[string]*objGroup{}
			}
			pg[t.Predicate][key] = &objGroup{fields: fields}
			if mentionPaths[t.Predicate] == nil {
				mentionPaths[t.Predicate] = map[string]int{}
				objPageCount[t.Predicate] = map[string]int{}
			}
			for _, fi := range fields {
				mentionPaths[t.Predicate][p.Fields[fi].PathString]++
			}
			if len(fields) > maxMentionsPerObj[t.Predicate] {
				maxMentionsPerObj[t.Predicate] = len(fields)
			}
			objPageCount[t.Predicate][key]++
		}
		if len(pg) > 0 {
			groups[pi] = pg
		}
	}

	// Global evidence: cluster each predicate's mention paths.
	// clusterSize[pred][path] is the weighted size of the cluster the
	// path fell into.
	clusterSize := map[string]map[string]int{}
	if !ropts.DisableClustering {
		for pred, paths := range mentionPaths {
			clusterSize[pred] = clusterPredPaths(paths, maxMentionsPerObj[pred], ropts.MaxClusterPaths)
		}
	}

	res := &AnnotationResult{Topics: topics, AnnotatedPages: make([]bool, len(pages))}
	for pi, p := range pages {
		pg := groups[pi]
		if pg == nil {
			continue
		}
		var anns []Annotation
		for _, pred := range sortedKeys(pg) {
			objKeys := sortedKeys(pg[pred])
			predFields := make([][]int, len(objKeys))
			for i, objKey := range objKeys {
				predFields[i] = pg[pred][objKey].fields
			}
			for i, objKey := range objKeys {
				g := pg[pred][objKey]
				if ropts.AnnotateAllMentions {
					for _, fi := range g.fields {
						anns = append(anns, Annotation{PageIdx: pi, FieldIdx: fi, Predicate: pred})
					}
					continue
				}
				forceCluster := pagesWithTopic > 0 &&
					float64(objPageCount[pred][objKey]) > ropts.DuplicatedPageFrac*float64(pagesWithTopic)
				fi, ok := chooseMention(p, predFields[i], predFields, clusterSize[pred], forceCluster)
				if ok {
					anns = append(anns, Annotation{PageIdx: pi, FieldIdx: fi, Predicate: pred})
				}
			}
		}
		if len(anns) < ropts.MinAnnotations {
			continue // informativeness filter (§3.1.2 step 3)
		}
		res.AnnotatedPages[pi] = true
		res.Annotations = append(res.Annotations, Annotation{PageIdx: pi, FieldIdx: topics[pi].FieldIdx, Predicate: NameClass})
		res.Annotations = append(res.Annotations, anns...)
	}
	return res
}

// chooseMention implements BestLocalMention (Algorithm 2 lines 1–14) plus
// the global tie-breaking of §3.2.2 for one (predicate, object) group:
// fields are the object's candidate mentions, predFields the mention lists
// of every object of the predicate on the page. At most one mention is
// annotated (§3.2: "we annotate no more than one mention of each object
// for a predicate").
func chooseMention(p *Page, fields []int, predFields [][]int, clusterSize map[string]int, forceCluster bool) (int, bool) {
	best := bestLocalMentions(p, fields, predFields)
	if forceCluster {
		// Local evidence is untrustworthy for near-constant values; only
		// the dominant global cluster may win.
		return pickByCluster(p, fields, clusterSize)
	}
	if len(best) == 1 {
		return best[0], true
	}
	// Tie: resolve by global cluster size.
	return pickByCluster(p, best, clusterSize)
}

// bestLocalMentions returns the mention(s) whose exclusive-ancestor
// subtree contains the most sibling objects of the same predicate.
func bestLocalMentions(p *Page, fields []int, predFields [][]int) []int {
	if len(fields) == 1 {
		return fields
	}
	bestCount := -1
	var best []int
	for _, fi := range fields {
		anc := exclusiveAncestor(p, fi, fields)
		count := objectsUnder(p, anc, predFields)
		if count > bestCount {
			bestCount = count
			best = []int{fi}
		} else if count == bestCount {
			best = append(best, fi)
		}
	}
	return best
}

// exclusiveAncestor returns the highest ancestor of the mention that
// contains no other mention of the same object (Algorithm 2 line 5).
func exclusiveAncestor(p *Page, fi int, mentions []int) *dom.Node {
	node := p.Fields[fi].Node
	anc := node
	for cand := node.Parent; cand != nil; cand = cand.Parent {
		exclusive := true
		for _, mi := range mentions {
			if mi == fi {
				continue
			}
			if cand.Contains(p.Fields[mi].Node) {
				exclusive = false
				break
			}
		}
		if !exclusive {
			break
		}
		anc = cand
	}
	return anc
}

// objectsUnder counts the distinct objects of the predicate with at least
// one mention inside the subtree (Algorithm 2 line 7: "count of all
// objects for predicate under ancestorNode").
func objectsUnder(p *Page, root *dom.Node, predFields [][]int) int {
	count := 0
	for _, fields := range predFields {
		for _, fi := range fields {
			if root.Contains(p.Fields[fi].Node) {
				count++
				break
			}
		}
	}
	return count
}

// pickByCluster selects, among candidate fields, the unique one whose path
// belongs to the largest global cluster.
func pickByCluster(p *Page, candidates []int, clusterSize map[string]int) (int, bool) {
	if len(clusterSize) == 0 || len(candidates) == 0 {
		return 0, false
	}
	bestSize := -1
	bestIdx := -1
	tied := false
	for _, fi := range candidates {
		size := clusterSize[p.Fields[fi].PathString]
		if size > bestSize {
			bestSize, bestIdx, tied = size, fi, false
		} else if size == bestSize {
			tied = true
		}
	}
	if tied || bestSize <= 0 {
		return 0, false
	}
	return bestIdx, true
}

// clusterPredPaths clusters the distinct mention paths of one predicate
// (agglomerative, Levenshtein distance over path strings — §3.2.2) into k
// clusters, where k is the maximum number of mentions a single object had
// on any page, "such that all mentions of an object on a page can be
// placed into separate clusters". Returns path -> weighted cluster size.
func clusterPredPaths(paths map[string]int, k, maxPaths int) map[string]int {
	keys := make([]string, 0, len(paths))
	for p := range paths {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool {
		if paths[keys[i]] != paths[keys[j]] {
			return paths[keys[i]] > paths[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if len(keys) > maxPaths {
		keys = keys[:maxPaths]
	}
	out := make(map[string]int, len(keys))
	if len(keys) == 0 {
		return out
	}
	if k < 1 {
		k = 1
	}
	if len(keys) == 1 {
		out[keys[0]] = paths[keys[0]]
		return out
	}
	weights := make([]int, len(keys))
	runes := make([][]rune, len(keys))
	for i, p := range keys {
		weights[i] = paths[p]
		runes[i] = []rune(p)
	}
	dist := func(i, j int) float64 {
		return float64(strmatch.LevenshteinRunes(runes[i], runes[j]))
	}
	labels := cluster.AgglomerativeWeighted(len(keys), k, weights, dist)
	sizes := map[int]int{}
	for i, l := range labels {
		sizes[l] += weights[i]
	}
	for i, p := range keys {
		out[p] = sizes[labels[i]]
	}
	return out
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}
