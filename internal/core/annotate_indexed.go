package core

import (
	"context"
	"slices"
	"sort"
	"unicode/utf8"

	"ceres/internal/kb"
	"ceres/internal/obs/trace"
	"ceres/internal/strmatch"
)

// This file implements the compiled annotation path (DESIGN.md §6), the
// training-side mirror of the compiled serve path: distant supervision is
// the dominant offline cost, because Algorithms 1 and 2 match every DOM
// text field against the seed KB. The legacy path does that over string
// keys ("e:"+id / "lit:"+norm), per-page map page-sets, and a
// MatchesObject that re-normalizes the field and fuzzy-scans every alias
// per call. Here every matchable KB item is interned into a dense
// kb.ItemID once per KB (kb.Index), each field's normalized form / token
// key / rune decomposition is computed once per page into a kb.FieldKey,
// page sets become sorted ItemID slices merged in linear time, and both
// page-index construction and per-page annotation run on the parallelFor
// worker pool with per-worker scratch. Output is bit-identical to the
// legacy path — same topics, same scores, same annotations in the same
// order — which the differential tests assert over every DemoCorpus kind.

// annotScratch is the per-worker scratch of the indexed annotation path.
// Like ServeScratch, one scratch belongs to exactly one worker goroutine
// and must never be shared.
type annotScratch struct {
	norm  []byte      // NormalizeInto buffer
	tok   []byte      // AppendTokenSetKey buffer
	arena []kb.ItemID // per-page candidate arena
	offs  []int32     // field offsets into arena
	set   []kb.ItemID // page-set sort buffer
	paths map[string]int
}

// newScratches returns one lazily usable scratch per worker.
func newScratches(workers int) []*annotScratch {
	s := make([]*annotScratch, workers)
	for i := range s {
		s[i] = &annotScratch{}
	}
	return s
}

// ipageIndex is the indexed counterpart of pageIndex: per-field match keys
// and sorted candidate items, plus the sorted page set and its per-entity
// Jaccard scores (filled by topic identification).
type ipageIndex struct {
	// fields[i] is the precomputed match form of field i's text.
	fields []kb.FieldKey
	// lowInfo marks fields the topic stage ignores (§3.1.1); relation
	// annotation still matches them.
	lowInfo []bool
	// items[i] lists, sorted, the items field i may denote (exact and
	// token matches — the ItemID form of KB.MatchItems).
	items [][]kb.ItemID
	// pageSet is the sorted union of items over non-low-info fields.
	pageSet []kb.ItemID
	// scores[i] is the Jaccard score of pageSet[i] when it is a
	// non-frequent entity (filled during Algorithm 1 step 1).
	scores []float64
}

func buildPageIndexIndexed(p *Page, ix *kb.Index, s *annotScratch) *ipageIndex {
	nf := len(p.Fields)
	pi := &ipageIndex{
		fields:  make([]kb.FieldKey, nf),
		lowInfo: make([]bool, nf),
		items:   make([][]kb.ItemID, nf),
	}
	s.arena = s.arena[:0]
	s.offs = append(s.offs[:0], 0)
	for fi, f := range p.Fields {
		s.norm = strmatch.NormalizeInto(s.norm[:0], f.Text)
		key := kb.FieldKey{}
		if len(s.norm) > 0 {
			key.Norm = string(s.norm)
			s.tok = strmatch.AppendTokenSetKey(s.tok[:0], key.Norm)
			if string(s.tok) == key.Norm {
				key.TokenKey = key.Norm
			} else {
				key.TokenKey = string(s.tok)
			}
			key.RuneLen = utf8.RuneCountInString(key.Norm)
			if key.RuneLen >= 8 {
				key.Runes = []rune(key.Norm)
			}
		}
		pi.fields[fi] = key
		pi.lowInfo[fi] = strmatch.IsLowInfoNormalized(key.Norm)
		s.arena = ix.AppendCandidates(s.arena, key)
		s.offs = append(s.offs, int32(len(s.arena)))
	}
	arena := make([]kb.ItemID, len(s.arena))
	copy(arena, s.arena)
	for fi := 0; fi < nf; fi++ {
		pi.items[fi] = arena[s.offs[fi]:s.offs[fi+1]]
	}

	s.set = s.set[:0]
	for fi := 0; fi < nf; fi++ {
		if !pi.lowInfo[fi] {
			s.set = append(s.set, pi.items[fi]...)
		}
	}
	slices.Sort(s.set)
	set := slices.Compact(s.set)
	pi.pageSet = make([]kb.ItemID, len(set))
	copy(pi.pageSet, set)
	return pi
}

// jaccardSorted computes J(a, b) of Equation 1 over sorted unique ItemID
// slices — the same intersection and union counts jaccardScore derives
// from its map sets, so the resulting float64 is bit-identical.
func jaccardSorted(a, b []kb.ItemID) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			inter++
			i++
			j++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// noItem marks "no candidate" in ItemID slots.
const noItem = kb.ItemID(-1)

// identifyTopicsIndexed runs Algorithm 1 on the indexed path and returns
// both the topic assignments and the per-page indexes so AnnotateCtx can
// reuse them for Algorithm 2.
func identifyTopicsIndexed(ctx context.Context, pages []*Page, ix *kb.Index, opts TopicOptions, workers int) ([]TopicResult, []*ipageIndex, error) {
	opts = opts.withDefaults()
	if workers <= 0 {
		workers = defaultWorkers()
	}
	// Frequent-object filter: same threshold arithmetic as the legacy
	// FrequentObjectKeys so the cutoff is bit-identical.
	hasTriples := ix.NumTriples() > 0
	minCount := opts.frequentFrac(ix.NumTriples()) * float64(ix.NumTriples())
	frequent := func(it kb.ItemID) bool {
		return hasTriples && float64(ix.ObjectCount(it)) >= minCount
	}

	scratches := newScratches(workers)
	pidx := make([]*ipageIndex, len(pages))
	if err := parallelForWorker(ctx, len(pages), workers, func(w, i int) {
		pidx[i] = buildPageIndexIndexed(pages[i], ix, scratches[w])
	}); err != nil {
		return nil, nil, err
	}

	// Step 1: local best candidate per page, scoring every non-frequent
	// entity of the page set against its object set (Equation 1).
	localBest := make([]kb.ItemID, len(pages))
	if err := parallelFor(ctx, len(pages), workers, func(pi int) {
		idx := pidx[pi]
		idx.scores = make([]float64, len(idx.pageSet))
		best, bestScore := noItem, 0.0
		for si, it := range idx.pageSet {
			if !ix.IsEntity(it) {
				continue // literals cannot be subjects
			}
			if frequent(it) {
				continue // promiscuous strings are not topic candidates
			}
			s := jaccardSorted(idx.pageSet, ix.ObjectItems(it))
			idx.scores[si] = s
			if s > bestScore || (s == bestScore && s > 0 && (best < 0 || it < best)) {
				best, bestScore = it, s
			}
		}
		localBest[pi] = best
	}); err != nil {
		return nil, nil, err
	}

	// Step 2 (uniqueness): discard candidates claimed by too many pages.
	claims := map[kb.ItemID]int{}
	for _, it := range localBest {
		if it >= 0 {
			claims[it]++
		}
	}
	discarded := map[kb.ItemID]bool{}
	for it, n := range claims {
		if n >= opts.MaxTopicPages {
			discarded[it] = true
		}
	}

	// Step 3 (consistency): vote for the dominant topic XPath using the
	// surviving candidates' mention locations.
	pathCounts := map[string]int{}
	for pi, it := range localBest {
		if it < 0 || discarded[it] {
			continue
		}
		idx := pidx[pi]
		for fi := range pages[pi].Fields {
			if idx.lowInfo[fi] {
				continue
			}
			if _, ok := slices.BinarySearch(idx.items[fi], it); ok {
				pathCounts[pages[pi].Fields[fi].PathString]++
			}
		}
	}
	rankedPaths := rankedKeysByCount(pathCounts)

	// Step 4: per page, take the highest-ranked path that exists on the
	// page and pick the best-scoring entity mentioned in that field.
	out := make([]TopicResult, len(pages))
	if err := parallelForWorker(ctx, len(pages), workers, func(w, pi int) {
		out[pi] = TopicResult{FieldIdx: -1}
		p, idx, s := pages[pi], pidx[pi], scratches[w]
		if s.paths == nil {
			s.paths = make(map[string]int, len(p.Fields))
		}
		clear(s.paths)
		for fi, f := range p.Fields {
			s.paths[f.PathString] = fi
		}
		for _, path := range rankedPaths {
			fi, ok := s.paths[path]
			if !ok {
				continue
			}
			best, bestScore := noItem, 0.0
			if !idx.lowInfo[fi] {
				for _, it := range idx.items[fi] {
					if !ix.IsEntity(it) || frequent(it) || discarded[it] {
						continue
					}
					si, _ := slices.BinarySearch(idx.pageSet, it)
					sc := idx.scores[si]
					if sc > bestScore || (sc == bestScore && sc > 0 && (best < 0 || it < best)) {
						best, bestScore = it, sc
					}
				}
			}
			if best >= 0 {
				out[pi] = TopicResult{EntityID: ix.EntityID(best), FieldIdx: fi, Score: bestScore}
			}
			break // only the highest-ranked extant path is consulted
		}
	}); err != nil {
		return nil, nil, err
	}
	return out, pidx, nil
}

// iobjGroup is one (predicate, object, candidate mentions) group of one
// page — the ItemID form of objGroup.
type iobjGroup struct {
	pred   string
	obj    kb.ItemID
	fields []int
}

// AnnotateCtx is Annotate with context cancellation and an explicit worker
// count (0 means the pipeline default): Algorithm 1 and the per-page
// phases of Algorithm 2 run on the worker pool; the cross-page aggregation
// between them stays sequential in page order, so output is deterministic
// and identical at any worker count.
func AnnotateCtx(ctx context.Context, pages []*Page, K *kb.KB, topts TopicOptions, ropts RelationOptions, workers int) (*AnnotationResult, error) {
	ropts = ropts.withDefaults()
	if workers <= 0 {
		workers = defaultWorkers()
	}
	ix := K.BuildIndex()
	// Topic identification (§3.1) is annotation's dominant stage; give it
	// its own child span under the caller's "annotate" span.
	tsp := trace.FromContext(ctx).StartChild("topics")
	topics, pidx, err := identifyTopicsIndexed(ctx, pages, ix, topts, workers)
	tsp.EndErr(err)
	if err != nil {
		return nil, err
	}

	// Candidate groups per page: for every deduplicated (predicate,
	// object) of the topic's triples, the fields mentioning the object.
	// Exact and token matches come from the page index; the fuzzy tail
	// runs through the precomputed alias keys.
	pageGroups := make([][]iobjGroup, len(pages))
	hasTopic := make([]bool, len(pages))
	if err := parallelFor(ctx, len(pages), workers, func(pi int) {
		if topics[pi].EntityID == "" {
			return
		}
		topic, ok := ix.EntityItem(topics[pi].EntityID)
		if !ok {
			return
		}
		rels := ix.Relations(topic)
		if len(rels) == 0 {
			return
		}
		hasTopic[pi] = true
		p, idx := pages[pi], pidx[pi]
		var groups []iobjGroup
		for _, r := range rels {
			var fields []int
			for fi := range p.Fields {
				if fi == topics[pi].FieldIdx {
					continue
				}
				if _, ok := slices.BinarySearch(idx.items[fi], r.Obj); ok {
					fields = append(fields, fi)
				} else if ix.Matches(idx.fields[fi], r.Obj) {
					fields = append(fields, fi)
				}
			}
			if len(fields) > 0 {
				groups = append(groups, iobjGroup{pred: r.Pred, obj: r.Obj, fields: fields})
			}
		}
		pageGroups[pi] = groups
	}); err != nil {
		return nil, err
	}

	// Cross-page aggregation, sequential in page order: mention-path
	// counts, per-predicate cluster count k, and the duplicated-object
	// page counts of §3.2.2 case 2.
	mentionPaths := map[string]map[string]int{}
	maxMentionsPerObj := map[string]int{}
	objPageCount := map[string]map[kb.ItemID]int{}
	pagesWithTopic := 0
	for pi, p := range pages {
		if hasTopic[pi] {
			pagesWithTopic++
		}
		for gi := range pageGroups[pi] {
			g := &pageGroups[pi][gi]
			if mentionPaths[g.pred] == nil {
				mentionPaths[g.pred] = map[string]int{}
				objPageCount[g.pred] = map[kb.ItemID]int{}
			}
			for _, fi := range g.fields {
				mentionPaths[g.pred][p.Fields[fi].PathString]++
			}
			if len(g.fields) > maxMentionsPerObj[g.pred] {
				maxMentionsPerObj[g.pred] = len(g.fields)
			}
			objPageCount[g.pred][g.obj]++
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Global evidence: cluster each predicate's mention paths.
	clusterSize := map[string]map[string]int{}
	if !ropts.DisableClustering {
		for pred, paths := range mentionPaths {
			clusterSize[pred] = clusterPredPaths(paths, maxMentionsPerObj[pred], ropts.MaxClusterPaths)
		}
	}

	// Per-page mention choice. Groups sort by (predicate, object); ItemID
	// order equals object-key string order, so the emission order matches
	// the legacy sortedKeys iteration exactly.
	perPage := make([][]Annotation, len(pages))
	if err := parallelFor(ctx, len(pages), workers, func(pi int) {
		groups := pageGroups[pi]
		if len(groups) == 0 {
			return
		}
		p := pages[pi]
		sort.Slice(groups, func(i, j int) bool {
			if groups[i].pred != groups[j].pred {
				return groups[i].pred < groups[j].pred
			}
			return groups[i].obj < groups[j].obj
		})
		var anns []Annotation
		for start := 0; start < len(groups); {
			end := start
			for end < len(groups) && groups[end].pred == groups[start].pred {
				end++
			}
			pred := groups[start].pred
			predFields := make([][]int, end-start)
			for i := start; i < end; i++ {
				predFields[i-start] = groups[i].fields
			}
			for i := start; i < end; i++ {
				g := &groups[i]
				if ropts.AnnotateAllMentions {
					for _, fi := range g.fields {
						anns = append(anns, Annotation{PageIdx: pi, FieldIdx: fi, Predicate: pred})
					}
					continue
				}
				forceCluster := pagesWithTopic > 0 &&
					float64(objPageCount[pred][g.obj]) > ropts.DuplicatedPageFrac*float64(pagesWithTopic)
				fi, ok := chooseMention(p, g.fields, predFields, clusterSize[pred], forceCluster)
				if ok {
					anns = append(anns, Annotation{PageIdx: pi, FieldIdx: fi, Predicate: pred})
				}
			}
			start = end
		}
		perPage[pi] = anns
	}); err != nil {
		return nil, err
	}

	res := &AnnotationResult{Topics: topics, AnnotatedPages: make([]bool, len(pages))}
	for pi := range pages {
		if pageGroups[pi] == nil {
			continue
		}
		anns := perPage[pi]
		if len(anns) < ropts.MinAnnotations {
			continue // informativeness filter (§3.1.2 step 3)
		}
		res.AnnotatedPages[pi] = true
		res.Annotations = append(res.Annotations, Annotation{PageIdx: pi, FieldIdx: topics[pi].FieldIdx, Predicate: NameClass})
		res.Annotations = append(res.Annotations, anns...)
	}
	return res, nil
}
