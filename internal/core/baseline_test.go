package core

import (
	"context"
	"testing"

	"ceres/internal/eval"
)

func TestBaselineTrainsAndExtracts(t *testing.T) {
	pages, K, _, gold := buildMovieSite(t, 30, defaultStyle())
	m, err := TrainBaseline(pages, K, BaselineOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("no pairwise positives found")
	}
	var facts []eval.Fact
	for _, p := range pages {
		for _, e := range ExtractBaseline(p, K, m) {
			facts = append(facts, eval.Fact{Page: e.PageID, Predicate: e.Predicate, Value: e.Value})
		}
	}
	if len(facts) == 0 {
		t.Fatal("baseline produced no extractions")
	}
	// The baseline's subject is just "the first node's text": many pairs
	// have wrong subjects, and its page-level fact quality must trail the
	// full pipeline's (Table 3's CERES-Baseline << CERES-Full).
	prf := eval.Score(facts, goldFacts(gold))
	t.Logf("baseline: P=%.3f R=%.3f F1=%.3f (%d extractions)", prf.P, prf.R, prf.F1, len(facts))

	sources := make([]PageSource, len(gold))
	for i, g := range gold {
		sources[i] = PageSource{ID: g.ID, HTML: g.HTML}
	}
	full, err := Run(context.Background(), sources, K, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fullPRF := eval.Score(extractionFacts(full.Extractions, 0.5), goldFacts(gold))
	if fullPRF.F1 <= prf.F1 {
		t.Errorf("CERES-Full F1 %.3f should beat CERES-Baseline F1 %.3f", fullPRF.F1, prf.F1)
	}
}

func TestBaselineDisjointKB(t *testing.T) {
	pages, _, _, _ := buildMovieSite(t, 8, defaultStyle())
	// A KB whose entities never appear on the pages yields no positives.
	empty, err := TrainBaseline(pages[:2], emptyKB(), BaselineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if empty != nil {
		t.Errorf("baseline should return nil model with no positives")
	}
	if got := ExtractBaseline(pages[0], emptyKB(), nil); got != nil {
		t.Errorf("nil model should extract nothing")
	}
}

func TestBaselineCapsRespected(t *testing.T) {
	pages, K, _, _ := buildMovieSite(t, 10, defaultStyle())
	m, err := TrainBaseline(pages, K, BaselineOptions{MaxFieldsPerPage: 10, MaxPairsPerPage: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Skip("caps too tight to find positives on this seed")
	}
	exts := ExtractBaseline(pages[0], K, m)
	if len(exts) > 20 {
		t.Errorf("pair cap violated: %d extractions from one page", len(exts))
	}
}
