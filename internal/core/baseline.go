package core

import (
	"math/rand"
	"sort"

	"ceres/internal/kb"
	"ceres/internal/mlr"
	"ceres/internal/strmatch"
)

// This file implements CERES-BASELINE (§5.2): distant supervision under
// the original assumption — no topic entity, no Algorithm 1/2. Annotation
// labels *pairs* of nodes whose entities hold a KB relation; the
// classifier scores node pairs (features of both nodes concatenated); at
// extraction time candidate nodes are those that string-match KB entities,
// as the paper does to escape the all-pairs blowup.

// BaselineOptions tunes the pairwise baseline.
type BaselineOptions struct {
	// MaxFieldsPerPage caps the entity-bearing fields considered per page
	// (the quadratic pair space is the reason the paper's run exhausted
	// 32 GB on the movie vertical; the cap makes the baseline runnable
	// while preserving its behaviour).
	MaxFieldsPerPage int
	// MaxPairsPerPage caps labelled pairs per page.
	MaxPairsPerPage int
	// NegativeRatio is r, as for CERES.
	NegativeRatio int
	Seed          int64
	Features      FeatureOptions
	Model         mlr.TrainOptions
	// NameThresholdless extraction: every pair above ExtractThreshold is
	// kept; the subject is the first node's text.
	ExtractThreshold float64
}

func (o BaselineOptions) withDefaults() BaselineOptions {
	if o.MaxFieldsPerPage == 0 {
		o.MaxFieldsPerPage = 60
	}
	if o.MaxPairsPerPage == 0 {
		o.MaxPairsPerPage = 400
	}
	if o.NegativeRatio == 0 {
		o.NegativeRatio = 3
	}
	if o.ExtractThreshold == 0 {
		o.ExtractThreshold = 0.5
	}
	return o
}

// pairFeaturizer concatenates the features of two nodes in disjoint
// namespaces.
type pairFeaturizer struct {
	fz   *Featurizer
	dict *mlr.Dict
}

func newPairFeaturizer(pages []*Page, opts FeatureOptions) *pairFeaturizer {
	return &pairFeaturizer{fz: NewFeaturizer(pages, opts), dict: mlr.NewDict()}
}

func (pf *pairFeaturizer) features(a, b *Field) mlr.Vector {
	var feats []mlr.Feature
	for _, side := range []struct {
		tag string
		f   *Field
	}{{"A", a}, {"B", b}} {
		for _, feat := range pf.fz.Features(side.f) {
			name := side.tag + "|" + pf.fz.dict.Name(feat.Index)
			if id := pf.dict.ID(name); id >= 0 {
				feats = append(feats, mlr.Feature{Index: id, Value: feat.Value})
			}
		}
	}
	return mlr.NewVector(feats)
}

// BaselineModel is the trained pairwise extractor.
type BaselineModel struct {
	classes *Classes
	pf      *pairFeaturizer
	lr      *mlr.Model
	opts    BaselineOptions
}

// entityFields returns the indices of fields matching at least one KB
// entity or literal object, capped. (The paper identifies "potential
// entities on the page by string matching against the KB".)
func entityFields(p *Page, K *kb.KB, cap int) []int {
	var out []int
	for fi, f := range p.Fields {
		if len(K.LookupEntities(f.Text)) > 0 || K.HasLiteral(f.Text) {
			out = append(out, fi)
			if len(out) == cap {
				break
			}
		}
	}
	return out
}

// TrainBaseline annotates node pairs under the original DS assumption and
// fits the pair classifier.
func TrainBaseline(pages []*Page, K *kb.KB, opts BaselineOptions) (*BaselineModel, error) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed + 23))
	pf := newPairFeaturizer(pages, opts.Features)

	type pairAnn struct {
		pageIdx, a, b int
		pred          string
	}
	var positives []pairAnn
	for pi, p := range pages {
		fields := entityFields(p, K, opts.MaxFieldsPerPage)
		// Entity candidates per field.
		cands := map[int][]string{}
		for _, fi := range fields {
			cands[fi] = K.LookupEntities(p.Fields[fi].Text)
		}
		count := 0
		for _, a := range fields {
			for _, b := range fields {
				if a == b || count >= opts.MaxPairsPerPage {
					continue
				}
				pred, ok := relationBetween(K, cands[a], cands[b], p.Fields[b].Text)
				if !ok {
					continue
				}
				positives = append(positives, pairAnn{pageIdx: pi, a: a, b: b, pred: pred})
				count++
			}
		}
	}
	if len(positives) == 0 {
		return nil, nil
	}
	anns := make([]Annotation, len(positives))
	for i, pa := range positives {
		anns[i] = Annotation{Predicate: pa.pred}
	}
	classes := NewClasses(anns)
	ds := &mlr.Dataset{NumClasses: classes.Len()}
	for _, pa := range positives {
		p := pages[pa.pageIdx]
		ds.Add(pf.features(p.Fields[pa.a], p.Fields[pa.b]), classes.Index(pa.pred))
	}
	// Negatives: random entity-field pairs with no KB relation.
	want := opts.NegativeRatio * len(positives)
	tries := 0
	for added := 0; added < want && tries < want*20; tries++ {
		p := pages[rng.Intn(len(pages))]
		fields := entityFields(p, K, opts.MaxFieldsPerPage)
		if len(fields) < 2 {
			continue
		}
		a := fields[rng.Intn(len(fields))]
		b := fields[rng.Intn(len(fields))]
		if a == b {
			continue
		}
		if _, ok := relationBetween(K, K.LookupEntities(p.Fields[a].Text), K.LookupEntities(p.Fields[b].Text), p.Fields[b].Text); ok {
			continue
		}
		ds.Add(pf.features(p.Fields[a], p.Fields[b]), OtherClass)
		added++
	}
	pf.fz.Freeze()
	pf.dict.Freeze()
	lr, err := mlr.Train(ds, opts.Model)
	if err != nil {
		return nil, err
	}
	return &BaselineModel{classes: classes, pf: pf, lr: lr, opts: opts}, nil
}

// relationBetween returns a predicate holding between any entity candidate
// of node a and node b — where b may denote either an entity or a literal
// object — deterministically preferring the lexicographically first.
func relationBetween(K *kb.KB, as, bs []string, bText string) (string, bool) {
	bSet := map[string]bool{}
	for _, b := range bs {
		bSet[b] = true
	}
	bNorm := strmatch.Normalize(bText)
	var preds []string
	for _, a := range as {
		for _, t := range K.TriplesOf(a) {
			if t.Object.IsEntity() {
				if bSet[t.Object.EntityID] {
					preds = append(preds, t.Predicate)
				}
			} else if bNorm != "" && strmatch.Normalize(t.Object.Literal) == bNorm {
				preds = append(preds, t.Predicate)
			}
		}
	}
	if len(preds) == 0 {
		return "", false
	}
	sort.Strings(preds)
	return preds[0], true
}

// ExtractBaseline applies the pair classifier to candidate pairs of a
// page. The subject of an extraction is the first node's text.
func ExtractBaseline(p *Page, K *kb.KB, m *BaselineModel) []Extraction {
	if m == nil {
		return nil
	}
	fields := entityFields(p, K, m.opts.MaxFieldsPerPage)
	var out []Extraction
	pairs := 0
	for _, a := range fields {
		for _, b := range fields {
			if a == b || pairs >= m.opts.MaxPairsPerPage {
				continue
			}
			pairs++
			proba := m.lr.Proba(m.pf.features(p.Fields[a], p.Fields[b]))
			cls, prob := argmax(proba)
			if cls == OtherClass || prob < m.opts.ExtractThreshold {
				continue
			}
			out = append(out, Extraction{
				PageID:     p.ID,
				Subject:    p.Fields[a].Text,
				Predicate:  m.classes.Name(cls),
				Value:      p.Fields[b].Text,
				Confidence: prob,
				Path:       p.Fields[b].PathString,
			})
		}
	}
	return out
}
