package core

import (
	"context"

	"ceres/internal/cluster"
	"ceres/internal/dom"
	"ceres/internal/mlr"
)

// This file implements the streaming serve path (DESIGN.md §11): pages
// are extracted from raw bytes in a single tokenizer pass, with routing
// signature, featurization context and text fields all captured by
// dom.StreamScratch — no dom.Node is ever allocated. Output is
// bit-identical to the DOM serve path (same extractions, confidences,
// order and XPath strings); the root-package differential tests assert it
// over every DemoCorpus kind. Training and annotation keep the
// materialized tree: they need random access, node identity and render
// support that a single forward pass cannot give.

// probeStr probes a compiled lookup table with a byte key. The
// []byte→string conversion is allocation-free under the map-probe special
// case, but the ceresvet allocfree analyzer flags any explicit
// conversion, so the probe lives in this unannotated helper.
func probeStr(m map[string]int32, key []byte) (int32, bool) {
	id, ok := m[string(key)]
	return id, ok
}

// emitStream is structTable.emit over streaming records, branch for
// branch: symbol array first, tag-map fallback only for unsymbolized
// tags, then the attribute tables in structuralAttrs order (the stream is
// always built with Attrs = structuralAttrs, so table index i and stream
// attribute index i name the same key).
//
//ceres:allocfree
func (t *structTable) emitStream(sp *dom.StreamPage, e int32, vb *mlr.VectorBuilder) {
	if s := sp.TagSymOf(e); s > 0 {
		if int(s) < len(t.tagBySym) {
			if id := t.tagBySym[s]; id >= 0 {
				vb.AddID(int(id))
			}
		}
	} else if id, ok := t.tag[sp.Tag(e)]; ok {
		vb.AddID(int(id))
	}
	for i, m := range t.attr {
		if m == nil {
			continue
		}
		if v, ok := sp.AttrValue(e, i); ok && len(v) != 0 {
			if id, ok := probeStr(m, v); ok {
				vb.AddID(int(id))
			}
		}
	}
}

// appendStreamFeatures is appendFeatures over streaming records: the same
// context walk (containing element, ancestors, sibling windows, bounded
// sibling-text probes) emitting the same feature-ID multiset. elem 0 — a
// field directly under the document — emits nothing, matching the DOM
// walk's immediate stop on a non-element parent.
//
// The walk splits at level 0: everything above the containing element
// depends only on (ancestor, level) pairs, which upperSpan memoizes per
// page and replays — cells of one table row share their entire ancestor
// walk, and rows share everything from the table up. Replay changes
// only the emission ORDER relative to the one-loop walk; the multiset
// is identical, and scoring coalesces over the sorted vector, so output
// is unchanged.
//
//ceres:allocfree
func (cf *CompiledFeaturizer) appendStreamFeatures(vb *mlr.VectorBuilder, sp *dom.StreamPage, elem int32, sc *ServeScratch) {
	if elem == 0 {
		return
	}
	w := cf.opts.SiblingWindow
	if !cf.opts.DisableStructural {
		tables := cf.structural[0]
		tables[w].emitStream(sp, elem, vb)
		sibs := sp.ElemSiblings(elem)
		pos := int(sp.ElemIndex(elem))
		for off := 1; off <= w; off++ {
			if pos-off >= 0 {
				tables[w-off].emitStream(sp, sibs[pos-off], vb)
			}
			if pos+off < len(sibs) {
				tables[w+off].emitStream(sp, sibs[pos+off], vb)
			}
		}
	}
	if !cf.opts.DisableText && cf.opts.TextAncestors >= 0 {
		tables := cf.text[0]
		sibs := sp.ElemSiblings(elem)
		pos := int(sp.ElemIndex(elem))
		for off := 1; off <= w; off++ {
			if pos-off < 0 {
				break
			}
			tbl := tables[off]
			if len(tbl) == 0 {
				continue // no key can match; skip the text read
			}
			// The stream bounds captured text by the global (cross-
			// cluster) maxText; the per-cluster bound check on the
			// stored length makes the probe exact.
			if txt, ok := sp.SubText(sibs[pos-off], cf.maxText); ok {
				if id, hit := probeStr(tbl, txt); hit {
					vb.AddID(int(id))
				}
			}
		}
	}
	off, end := cf.upperSpan(sp, sc, sp.Parent(elem), 1)
	for _, id := range sc.upperIDs[off:end] {
		vb.AddID(int(id))
	}
}

// upperMax is the deepest ancestor level either walk visits.
func (cf *CompiledFeaturizer) upperMax() int {
	m := 0
	if !cf.opts.DisableStructural {
		m = cf.opts.MaxAncestors
	}
	if !cf.opts.DisableText && cf.opts.TextAncestors > m {
		m = cf.opts.TextAncestors
	}
	return m
}

// upperSpan returns the arena span of feature IDs the walk emits for
// node at ancestor level lvl plus everything above it, memoized per
// (node, lvl) for the page. The span is its own level's emissions
// followed by a copy of the parent span, so replay is a single run.
// Every feature is a binary AddID, which replay relies on.
//
//ceres:allocfree
func (cf *CompiledFeaturizer) upperSpan(sp *dom.StreamPage, sc *ServeScratch, node, lvl int32) (int32, int32) {
	if node == 0 || int(lvl) > cf.upperMax() {
		return 0, 0
	}
	k := (int(lvl)-1)*sc.upStride + int(node)
	if sc.upEpoch[k] == sc.upEpochCur {
		return sc.upOff[k], sc.upEnd[k]
	}
	po, pe := cf.upperSpan(sp, sc, sp.Parent(node), lvl+1)
	sc.upVB.Reset()
	cf.emitUpperLevel(&sc.upVB, sp, node, lvl)
	off := int32(len(sc.upperIDs))
	for _, f := range sc.upVB.Raw() {
		sc.upperIDs = append(sc.upperIDs, int32(f.Index))
	}
	sc.upperIDs = append(sc.upperIDs, sc.upperIDs[po:pe]...)
	end := int32(len(sc.upperIDs))
	sc.upEpoch[k] = sc.upEpochCur
	sc.upOff[k] = off
	sc.upEnd[k] = end
	return off, end
}

// emitUpperLevel emits one ancestor level of both walks for node: the
// structural tables of the level over node and its sibling window, then
// the level's text probes (preceding-sibling text and own text).
//
//ceres:allocfree
func (cf *CompiledFeaturizer) emitUpperLevel(vb *mlr.VectorBuilder, sp *dom.StreamPage, node, lvl int32) {
	w := cf.opts.SiblingWindow
	if !cf.opts.DisableStructural && int(lvl) <= cf.opts.MaxAncestors {
		tables := cf.structural[lvl]
		tables[w].emitStream(sp, node, vb)
		sibs := sp.ElemSiblings(node)
		pos := int(sp.ElemIndex(node))
		for off := 1; off <= w; off++ {
			if pos-off >= 0 {
				tables[w-off].emitStream(sp, sibs[pos-off], vb)
			}
			if pos+off < len(sibs) {
				tables[w+off].emitStream(sp, sibs[pos+off], vb)
			}
		}
	}
	if !cf.opts.DisableText && int(lvl) <= cf.opts.TextAncestors {
		tables := cf.text[lvl]
		sibs := sp.ElemSiblings(node)
		pos := int(sp.ElemIndex(node))
		for off := 1; off <= w; off++ {
			if pos-off < 0 {
				break
			}
			tbl := tables[off]
			if len(tbl) == 0 {
				continue
			}
			if txt, ok := sp.SubText(sibs[pos-off], cf.maxText); ok {
				if id, hit := probeStr(tbl, txt); hit {
					vb.AddID(int(id))
				}
			}
		}
		if tbl := tables[0]; len(tbl) > 0 {
			// !probeable means the own text is non-empty but longer
			// than any lexicon key: the DOM path's probe would miss,
			// so skipping it is equivalent.
			if own, probeable := sp.OwnText(node); probeable && len(own) != 0 {
				if id, ok := probeStr(tbl, own); ok {
					vb.AddID(int(id))
				}
			}
		}
	}
}

// scoreStreamFields scores every field of a streamed page into the flat
// proba matrix, returning the best name candidate — ExtractPage's scoring
// loop over records, plus a per-parent memo: fields sharing a containing
// element have identical feature vectors (features depend only on the
// element context), so repeat parents copy the cached row instead of
// re-featurizing. memo maps element record → first scored field, -1 for
// none.
//
//ceres:allocfree
func (cm *CompiledModel) scoreStreamFields(sp *dom.StreamPage, proba []float64, memo []int32, sc *ServeScratch) (int, float64) {
	K := cm.scorer.ClassCount()
	bestName, bestNameP := -1, 0.0
	nf := sp.Fields()
	for fi := 0; fi < nf; fi++ {
		parent := sp.FieldParent(fi)
		pr := proba[fi*K : (fi+1)*K]
		if m := memo[parent]; m >= 0 {
			copy(pr, proba[int(m)*K:(int(m)+1)*K])
		} else {
			sc.vb.Reset()
			cm.fz.appendStreamFeatures(&sc.vb, sp, parent, sc)
			cm.probaCacheScore(sc, pr)
			memo[parent] = int32(fi)
		}
		if pr[cm.nameClass] > bestNameP {
			bestName, bestNameP = fi, pr[cm.nameClass]
		}
	}
	return bestName, bestNameP
}

// probCacheLimit bounds the distinct structural contexts one scratch
// caches per model, and probCacheModels bounds how many models a scratch
// holds caches for. Template sites repeat a few hundred contexts across
// every page; the caps only exist so a pathological site (or a process
// cycling through many model versions) cannot grow the pooled scratch
// without bound.
const (
	probCacheLimit  = 1 << 13
	probCacheModels = 8
)

// probaCacheScore computes the class probabilities of the builder's
// accumulated features into pr, consulting the scratch's cross-page
// cache first. The cache key is the raw emission sequence: the feature
// walk is deterministic per structural context, so an identical sequence
// implies an identical coalesced vector and — the scorer being a pure
// function — identical probabilities. Repeat contexts (template pages
// share almost all of them) skip the sort/coalesce and the scorer; a
// miss scores normally and caches the row. Output is bit-identical to
// always scoring.
func (cm *CompiledModel) probaCacheScore(sc *ServeScratch, pr []float64) {
	c := sc.caches[cm]
	if c == nil {
		if sc.caches == nil || len(sc.caches) >= probCacheModels {
			// A scratch cycling through more models than the cap is
			// either a model-churn workload (stale entries would leak)
			// or pathological; restart with just the current one.
			sc.caches = make(map[*CompiledModel]*probCache, probCacheModels)
		}
		c = &probCache{idx: make(map[string]int32, 256)}
		sc.caches[cm] = c
	}
	key, ok := appendFeatureSeqKey(sc.cacheKey[:0], sc.vb.Raw())
	sc.cacheKey = key
	if !ok {
		cm.scorer.ProbaInto(sc.vb.Build(), pr)
		return
	}
	if row, hit := c.idx[string(key)]; hit {
		K := len(pr)
		copy(pr, c.probs[int(row)*K:(int(row)+1)*K])
		return
	}
	cm.scorer.ProbaInto(sc.vb.Build(), pr)
	if len(c.idx) < probCacheLimit {
		c.idx[string(key)] = int32(len(c.probs) / len(pr))
		c.probs = append(c.probs, pr...)
	}
}

// appendFeatureSeqKey encodes a raw feature sequence as a cache key:
// four little-endian bytes per binary feature. Sequences with non-unit
// values or out-of-range indices are not keyable (no serve featurizer
// emits them) and report false.
func appendFeatureSeqKey(dst []byte, feats []mlr.Feature) ([]byte, bool) {
	for _, f := range feats {
		idx := uint64(f.Index)
		if f.Value != 1 || idx > 1<<31-1 {
			return dst[:0], false
		}
		dst = append(dst, byte(idx), byte(idx>>8), byte(idx>>16), byte(idx>>24))
	}
	return dst, true
}

// ExtractStreamPage applies the compiled model to a streamed page —
// CompiledModel.ExtractPage without the tree, with identical output.
// Subject, value and path strings materialize only for emitted
// extractions; a page that yields nothing allocates nothing.
func (cm *CompiledModel) ExtractStreamPage(sp *dom.StreamPage, pageID string, opts ExtractOptions, sc *ServeScratch) []Extraction {
	opts = opts.withDefaults()
	if cm.nameClass == OtherClass {
		return nil // no name class was learned; no subjects identifiable
	}
	K := cm.scorer.ClassCount()
	nf := sp.Fields()
	if need := nf * K; cap(sc.proba) < need {
		sc.proba = make([]float64, need)
	}
	proba := sc.proba[:nf*K]
	ne := sp.Elems()
	if cap(sc.memoRow) < ne {
		sc.memoRow = make([]int32, ne)
	}
	memo := sc.memoRow[:ne]
	for i := range memo {
		memo[i] = -1
	}
	if need := cm.fz.upperMax() * ne; cap(sc.upEpoch) < need {
		sc.upEpoch = make([]int32, need)
		sc.upOff = make([]int32, need)
		sc.upEnd = make([]int32, need)
		sc.upEpochCur = 0
	} else {
		sc.upEpoch = sc.upEpoch[:need]
		sc.upOff = sc.upOff[:need]
		sc.upEnd = sc.upEnd[:need]
	}
	sc.upStride = ne
	sc.upEpochCur++
	sc.upperIDs = sc.upperIDs[:0]
	bestName, bestNameP := cm.scoreStreamFields(sp, proba, memo, sc)
	if bestName < 0 || bestNameP < opts.NameThreshold {
		return nil // §4.3: extraction requires an identified name node
	}
	// Two passes over the cached probabilities: count survivors, then emit
	// into an exactly sized slice (see ExtractPage).
	n := 0
	for fi := 0; fi < nf; fi++ {
		if fi == bestName {
			continue
		}
		if cls, _ := argmax(proba[fi*K : (fi+1)*K]); cls != OtherClass && cls != cm.nameClass {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	subject := string(sp.FieldText(bestName))
	sc.xpathBuf = sp.AppendFieldXPath(sc.xpathBuf[:0], bestName)
	subjectPath := string(sc.xpathBuf)
	out := make([]Extraction, 0, n)
	for fi := 0; fi < nf; fi++ {
		if fi == bestName {
			continue
		}
		cls, prob := argmax(proba[fi*K : (fi+1)*K])
		if cls == OtherClass || cls == cm.nameClass {
			continue
		}
		sc.xpathBuf = sp.AppendFieldXPath(sc.xpathBuf[:0], fi)
		out = append(out, Extraction{
			PageID:      pageID,
			Subject:     subject,
			Predicate:   cm.classes.Name(cls),
			Value:       string(sp.FieldText(fi)),
			Confidence:  prob,
			Path:        string(sc.xpathBuf),
			SubjectPath: subjectPath,
		})
	}
	return out
}

// watermarkFallbackSim is the similarity floor for watermark routing: a
// prefix-signature match below it is considered inconclusive and routing
// falls back to the full-page signature.
const watermarkFallbackSim = 0.5

// streamInfo reports whether every trained cluster compiled (the
// streaming path has no legacy fallback per cluster — one holdout sends
// the whole site down the DOM path) and the cross-cluster text bound
// streams must capture. Clusters are immutable after training/restore, so
// the answer is computed once.
func (sm *SiteModel) streamInfo() (bool, int) {
	sm.streamOnce.Do(func() {
		ok := true
		maxText := 0
		for _, c := range sm.Clusters {
			if !c.Trained {
				continue
			}
			cm := c.Compiled()
			if cm == nil {
				ok = false
				break
			}
			if cm.fz.maxText > maxText {
				maxText = cm.fz.maxText
			}
		}
		sm.streamOK = ok
		sm.streamMaxText = maxText
	})
	return sm.streamOK, sm.streamMaxText
}

// extractBytes streams, routes and extracts one page from raw bytes. The
// caller must have checked streamInfo. Routing: single-cluster sites
// short-circuit like Route; otherwise the signature accumulated during
// the pass is matched against the exemplars — on the first
// SignatureWatermark keys when configured (falling back to the full page
// below watermarkFallbackSim), or the full page by default, which is
// bit-identical to DOM routing.
func (sm *SiteModel) extractBytes(id string, html []byte, sc *ServeScratch, maxText int, st *StageTimes) (int, []Extraction) {
	if sc.stream == nil {
		sc.stream = dom.NewStreamScratch()
	}
	ck := startStageClock(st)
	multi := len(sm.Clusters) > 1
	sp := sc.stream.Stream(html, dom.StreamOptions{
		MaxText:   maxText,
		Attrs:     structuralAttrs,
		Signature: multi,
	})
	ck.tick(stageParse)
	ci := 0
	if multi {
		ex := sm.exemplars()
		routed := false
		if w := sm.SignatureWatermark; w > 0 && w < sp.SignatureKeys() {
			sc.sig = sp.AppendSignature(sc.sig[:0], w)
			if best, sim := cluster.RouteSortedBytes(sc.sig, ex); sim >= watermarkFallbackSim {
				ci, routed = best, true
			}
		}
		if !routed {
			sc.sig = sp.AppendSignature(sc.sig[:0], 0)
			ci, _ = cluster.RouteSortedBytes(sc.sig, ex)
		}
	}
	ck.tick(stageRoute)
	if ci < 0 || !sm.Clusters[ci].Trained {
		return ci, nil
	}
	exts := sm.Clusters[ci].Compiled().ExtractStreamPage(sp, id, sm.Extract, sc)
	ck.tick(stageScore)
	return ci, exts
}

// ExtractScan extracts pages delivered as raw bytes by a scan function —
// the zero-copy entry point for pagestore-backed serving. scan must call
// yield once per page and stop on its error; id and html are only read
// during the yield. Pages flow through the streaming path when the model
// supports it, else through the DOM path (paying a string copy).
func (sm *SiteModel) ExtractScan(ctx context.Context, scan func(yield func(id string, html []byte) error) error) ([]Extraction, *ServeStats, error) {
	return sm.ExtractScanOpts(ctx, ServeOptions{}, scan)
}

// ExtractScanOpts is ExtractScan with per-call overrides (the scan loop
// is sequential, so Workers is ignored; Stages is honored).
func (sm *SiteModel) ExtractScanOpts(ctx context.Context, opts ServeOptions, scan func(yield func(id string, html []byte) error) error) ([]Extraction, *ServeStats, error) {
	if sm == nil || sm.TrainedClusters() == 0 {
		return nil, nil, ErrNotTrained
	}
	streamOK, maxText := sm.streamInfo()
	if sm.DisableStreaming {
		streamOK = false
	}
	sc := serveScratchPool.Get().(*ServeScratch)
	defer serveScratchPool.Put(sc)
	stats := &ServeStats{ClusterPages: make([]int, len(sm.Clusters))}
	var out []Extraction
	err := scan(func(id string, html []byte) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		var (
			route int
			exts  []Extraction
		)
		if streamOK {
			route, exts = sm.extractBytes(id, html, sc, maxText, opts.Stages)
		} else {
			route, exts = sm.extractOne(PageSource{ID: id, HTML: string(html)}, sc, opts.Stages)
		}
		stats.Pages++
		stats.addRoute(route)
		stats.observePage(sm.routeMiss(route), len(exts))
		stats.Extractions += len(exts)
		out = append(out, exts...)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	if stats.Pages == 0 {
		return nil, nil, ErrNoPages
	}
	return out, stats, nil
}
