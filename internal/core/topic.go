package core

import (
	"context"

	"ceres/internal/kb"
	"ceres/internal/strmatch"
)

// TopicOptions tunes Algorithm 1 (paper §3.1). Defaults follow the paper's
// examples where it gives them.
type TopicOptions struct {
	// FrequentObjectFrac: object keys appearing in at least this fraction
	// of KB triples are never topic candidates (§3.1.1: "strings appearing
	// in a large percentage (e.g., 0.01%) of triples ... we do not
	// consider them as potential topics"). They still count as pageSet
	// members for Jaccard scoring.
	FrequentObjectFrac float64
	// FrequentObjectMinCount is an absolute floor on the frequent-key
	// count (default 30): with seed KBs orders of magnitude smaller than
	// the paper's 85M triples, a purely relative threshold would mark
	// every well-connected entity frequent.
	FrequentObjectMinCount int
	// MaxTopicPages: a candidate identified as the topic of at least this
	// many pages is discarded (§3.1.2 step 1, "e.g., >= 5 pages").
	MaxTopicPages int
}

func (o TopicOptions) withDefaults() TopicOptions {
	if o.FrequentObjectFrac == 0 {
		o.FrequentObjectFrac = 0.0001 // the paper's 0.01%
	}
	if o.FrequentObjectMinCount == 0 {
		o.FrequentObjectMinCount = 30
	}
	if o.MaxTopicPages == 0 {
		o.MaxTopicPages = 5
	}
	return o
}

// frequentFrac resolves the effective frequent-object fraction, applying
// the absolute MinCount floor. Both annotation paths share it so the
// float arithmetic is bit-identical.
func (o TopicOptions) frequentFrac(numTriples int) float64 {
	frac := o.FrequentObjectFrac
	if numTriples > 0 {
		if floor := float64(o.FrequentObjectMinCount) / float64(numTriples); floor > frac {
			frac = floor
		}
	}
	return frac
}

// pageIndex holds the per-page precomputation topic identification and
// relation annotation share: which KB items each field may denote.
type pageIndex struct {
	page *Page
	// items maps field index -> item keys ("e:<id>" / "lit:<norm>").
	items [][]string
	// pageSet is the union of items, the Algorithm 1 pageSet.
	pageSet map[string]bool
	// mentionsOf maps an item key to the fields mentioning it.
	mentionsOf map[string][]int
}

func buildPageIndex(p *Page, K *kb.KB) *pageIndex {
	pi := &pageIndex{
		page:       p,
		items:      make([][]string, len(p.Fields)),
		pageSet:    map[string]bool{},
		mentionsOf: map[string][]int{},
	}
	for i, f := range p.Fields {
		if strmatch.IsLowInfo(f.Text) {
			continue
		}
		items := K.MatchItems(f.Text)
		for _, it := range items {
			pi.pageSet[it] = true
			pi.mentionsOf[it] = append(pi.mentionsOf[it], i)
		}
		pi.items[i] = items
	}
	return pi
}

// TopicResult reports Algorithm 1's outcome for one page.
type TopicResult struct {
	// EntityID is the identified topic entity ("" if none).
	EntityID string
	// FieldIdx is the index of the field holding the topic name (-1 if
	// none).
	FieldIdx int
	// Score is the Jaccard score of the winning entity.
	Score float64
}

// jaccardScore computes J(pageSet, entitySet) of Equation 1.
func jaccardScore(pageSet map[string]bool, entitySet map[string]bool) float64 {
	if len(pageSet) == 0 || len(entitySet) == 0 {
		return 0
	}
	small, large := pageSet, entitySet
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for k := range small {
		if large[k] {
			inter++
		}
	}
	union := len(pageSet) + len(entitySet) - inter
	return float64(inter) / float64(union)
}

// IdentifyTopics runs Algorithm 1 over a cluster of pages through the
// indexed annotation path (kb.Index interning, sorted-slice page sets).
// Output is identical to IdentifyTopicsLegacy; the differential tests
// assert it over every demo corpus.
func IdentifyTopics(pages []*Page, K *kb.KB, opts TopicOptions) []TopicResult {
	//ceresvet:ignore ctxflow compatibility wrapper; IdentifyTopicsCtx is the cancellable form
	out, _ := IdentifyTopicsCtx(context.Background(), pages, K, opts, 0)
	return out
}

// IdentifyTopicsCtx is IdentifyTopics with context cancellation and an
// explicit worker count (0 means the pipeline default). Page-index
// construction and per-page candidate scoring run on the worker pool with
// per-worker scratch.
func IdentifyTopicsCtx(ctx context.Context, pages []*Page, K *kb.KB, opts TopicOptions, workers int) ([]TopicResult, error) {
	topics, _, err := identifyTopicsIndexed(ctx, pages, K.BuildIndex(), opts, workers)
	return topics, err
}

// IdentifyTopicsLegacy is the original string-keyed Algorithm 1: per-call
// normalization, map page-sets, lazily scored candidates. It is retained
// as the reference implementation the indexed path is differentially
// tested against, and as the fallback Config.LegacyAnnotation selects.
func IdentifyTopicsLegacy(pages []*Page, K *kb.KB, opts TopicOptions) []TopicResult {
	opts = opts.withDefaults()
	frequent := K.FrequentObjectKeys(opts.frequentFrac(K.NumTriples()))

	idx := make([]*pageIndex, len(pages))
	for i, p := range pages {
		idx[i] = buildPageIndex(p, K)
	}

	// Per-page candidate scores, computed lazily per entity.
	scores := make([]map[string]float64, len(pages))
	entitySets := map[string]map[string]bool{}
	entitySet := func(id string) map[string]bool {
		s, ok := entitySets[id]
		if !ok {
			s = K.ObjectKeys(id)
			entitySets[id] = s
		}
		return s
	}
	scoreEntity := func(pi int, entityID string) float64 {
		if s, ok := scores[pi][entityID]; ok {
			return s
		}
		s := jaccardScore(idx[pi].pageSet, entitySet(entityID))
		if scores[pi] == nil {
			scores[pi] = map[string]float64{}
		}
		scores[pi][entityID] = s
		return s
	}

	// Step 1: local best candidate per page.
	localBest := make([]string, len(pages))
	for pi := range pages {
		best, bestScore := "", 0.0
		for _, item := range sortedKeys(idx[pi].pageSet) {
			if len(item) < 2 || item[:2] != "e:" {
				continue // literals cannot be subjects
			}
			if frequent[item] {
				continue // promiscuous strings are not topic candidates
			}
			id := item[2:]
			s := scoreEntity(pi, id)
			if s > bestScore || (s == bestScore && s > 0 && (best == "" || id < best)) {
				best, bestScore = id, s
			}
		}
		localBest[pi] = best
	}

	// Step 2 (uniqueness): discard candidates claimed by too many pages.
	claims := map[string]int{}
	for _, id := range localBest {
		if id != "" {
			claims[id]++
		}
	}
	discarded := map[string]bool{}
	for id, n := range claims {
		if n >= opts.MaxTopicPages {
			discarded[id] = true
		}
	}

	// Step 3 (consistency): vote for the dominant topic XPath using the
	// surviving candidates' mention locations.
	pathCounts := map[string]int{}
	for pi, id := range localBest {
		if id == "" || discarded[id] {
			continue
		}
		for _, fi := range idx[pi].mentionsOf["e:"+id] {
			pathCounts[pages[pi].Fields[fi].PathString]++
		}
	}
	rankedPaths := rankedKeysByCount(pathCounts)

	// Step 4: per page, take the highest-ranked path that exists on the
	// page and pick the best-scoring entity mentioned in that field.
	out := make([]TopicResult, len(pages))
	for pi, p := range pages {
		out[pi] = TopicResult{FieldIdx: -1}
		fieldByPath := map[string]int{}
		for fi, f := range p.Fields {
			fieldByPath[f.PathString] = fi
		}
		for _, path := range rankedPaths {
			fi, ok := fieldByPath[path]
			if !ok {
				continue
			}
			best, bestScore := "", 0.0
			for _, item := range idx[pi].items[fi] {
				if len(item) < 2 || item[:2] != "e:" || frequent[item] {
					continue
				}
				id := item[2:]
				if discarded[id] {
					continue
				}
				s := scoreEntity(pi, id)
				if s > bestScore || (s == bestScore && s > 0 && (best == "" || id < best)) {
					best, bestScore = id, s
				}
			}
			if best != "" {
				out[pi] = TopicResult{EntityID: best, FieldIdx: fi, Score: bestScore}
			}
			break // only the highest-ranked extant path is consulted
		}
	}
	return out
}
