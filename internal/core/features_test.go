package core

import (
	"testing"

	"ceres/internal/mlr"
	"ceres/internal/websim"
)

func TestFeaturizerBasics(t *testing.T) {
	pages, _, _, _ := buildMovieSite(t, 15, defaultStyle())
	fz := NewFeaturizer(pages, FeatureOptions{})
	// The field labels ("Director", "Genres", ...) appear on every page
	// and must be in the frequent-string lexicon.
	for _, s := range []string{"Director", "Genres", "Cast"} {
		if !fz.frequent[s] {
			t.Errorf("frequent strings missing %q", s)
		}
	}
	// Film titles are unique per page and must not be frequent.
	title := pages[0].Fields[0].Text
	if fz.frequent[title] {
		t.Errorf("unique title %q should not be frequent", title)
	}
	// Features are non-empty and deterministic.
	f := pages[0].Fields[5]
	v1 := fz.Features(f)
	v2 := fz.Features(f)
	if len(v1) == 0 {
		t.Fatalf("no features for field %q", f.Text)
	}
	if len(v1) != len(v2) {
		t.Fatalf("featurizer nondeterministic")
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("featurizer nondeterministic at %d", i)
		}
	}
}

func TestFeaturesDistinguishFieldRoles(t *testing.T) {
	pages, K, _, _ := buildMovieSite(t, 20, defaultStyle())
	res := Annotate(pages, K, TopicOptions{}, RelationOptions{})
	fz := NewFeaturizer(pages, FeatureOptions{})
	// Collect the feature sets of director vs genre annotations; they
	// must differ (different table rows, different label text nearby).
	var dirVec, genreVec map[int]bool
	for _, a := range res.Annotations {
		switch a.Predicate {
		case websim.PredDirectedBy:
			if dirVec == nil {
				dirVec = vecSet(fz.Features(pages[a.PageIdx].Fields[a.FieldIdx]))
			}
		case websim.PredGenre:
			if genreVec == nil {
				genreVec = vecSet(fz.Features(pages[a.PageIdx].Fields[a.FieldIdx]))
			}
		}
	}
	if dirVec == nil || genreVec == nil {
		t.Fatal("missing annotations for director or genre")
	}
	same := true
	for k := range dirVec {
		if !genreVec[k] {
			same = false
		}
	}
	if same && len(dirVec) == len(genreVec) {
		t.Errorf("director and genre fields have identical features")
	}
}

func vecSet(v mlr.Vector) map[int]bool {
	out := map[int]bool{}
	for _, f := range v {
		out[f.Index] = true
	}
	return out
}

func TestFeatureAblationFlags(t *testing.T) {
	pages, _, _, _ := buildMovieSite(t, 10, defaultStyle())
	full := NewFeaturizer(pages, FeatureOptions{})
	noStruct := NewFeaturizer(pages, FeatureOptions{DisableStructural: true})
	noText := NewFeaturizer(pages, FeatureOptions{DisableText: true})
	f := pages[0].Fields[8]
	nFull := len(full.Features(f))
	nNoStruct := len(noStruct.Features(f))
	nNoText := len(noText.Features(f))
	if nNoStruct >= nFull || nNoText >= nFull {
		t.Errorf("ablations should drop features: full=%d noStruct=%d noText=%d", nFull, nNoStruct, nNoText)
	}
}

func TestFrozenDictDropsUnseen(t *testing.T) {
	pages, _, _, _ := buildMovieSite(t, 6, defaultStyle())
	fz := NewFeaturizer(pages[:3], FeatureOptions{})
	for _, p := range pages[:3] {
		for _, f := range p.Fields {
			fz.Features(f)
		}
	}
	before := fz.Dict().Len()
	fz.Freeze()
	for _, p := range pages[3:] {
		for _, f := range p.Fields {
			fz.Features(f)
		}
	}
	if fz.Dict().Len() != before {
		t.Errorf("frozen dictionary grew: %d -> %d", before, fz.Dict().Len())
	}
}
