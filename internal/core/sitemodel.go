package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ceres/internal/cluster"
	"ceres/internal/mlr"
)

// SiteModel is the serving artifact of one trained site: everything
// extraction needs — per-template-cluster classifiers, featurizers and
// exemplar signatures — and nothing training needed (no KB, no
// annotations, no parsed pages). It is safe for concurrent use once
// trained or restored.
type SiteModel struct {
	// Clusters holds one entry per template cluster found at training
	// time, largest cluster first (the order ClusterPages produced).
	Clusters []*ClusterModel
	// Extract carries the extraction options the model was trained under.
	Extract ExtractOptions
	// Workers bounds serve-time parallelism (0 = default).
	Workers int
	// TrainPages is the number of pages the model was trained on.
	TrainPages int
	// DisableStreaming forces serve calls down the DOM (tree-building)
	// path even when every cluster compiled — the differential-testing
	// and debugging escape hatch.
	DisableStreaming bool
	// SignatureWatermark, when > 0, routes streamed pages on the first N
	// signature keys in document order, falling back to the full-page
	// signature when the prefix match is inconclusive (see DESIGN.md
	// §11). 0 routes on the full page, bit-identical to the DOM path.
	SignatureWatermark int

	// exOnce/ex cache the pre-sorted exemplar signatures for the per-page
	// routing hot path; Clusters is immutable after training/restore.
	exOnce sync.Once
	ex     []cluster.SortedSignature

	// streamOnce caches whether the site can serve through the streaming
	// path and the text bound streams must capture (streamserve.go).
	streamOnce    sync.Once
	streamOK      bool
	streamMaxText int
}

// ClusterModel is the serving-side artifact of one template cluster.
type ClusterModel struct {
	// Exemplar is the template signature new pages are routed by.
	Exemplar cluster.PageSignature
	// Model is nil when the cluster produced too few annotations to
	// train; pages routed here yield no extractions.
	Model   *Model
	Trained bool
	// Training statistics, for reporting.
	Pages          int
	AnnotatedPages int
	Annotations    int

	// compileOnce/compiled lazily build the compiled serving form of
	// Model on first extraction.
	compileOnce sync.Once
	compiled    *CompiledModel
}

// Compiled returns the cluster's compiled serving model, building it on
// first use. A nil result (untrained cluster, or a dictionary the
// compiler cannot invert) sends extraction down the legacy path.
func (c *ClusterModel) Compiled() *CompiledModel {
	c.compileOnce.Do(func() {
		if c.Model == nil {
			return
		}
		if cm, err := c.Model.Compile(); err == nil {
			c.compiled = cm
		}
	})
	return c.compiled
}

// TrainedClusters counts clusters with a usable extractor.
func (sm *SiteModel) TrainedClusters() int {
	n := 0
	for _, c := range sm.Clusters {
		if c.Trained {
			n++
		}
	}
	return n
}

// AnnotatedPages sums training-time annotated pages across clusters.
func (sm *SiteModel) AnnotatedPages() int {
	n := 0
	for _, c := range sm.Clusters {
		n += c.AnnotatedPages
	}
	return n
}

// Annotations sums training-time positive labels across clusters.
func (sm *SiteModel) Annotations() int {
	n := 0
	for _, c := range sm.Clusters {
		n += c.Annotations
	}
	return n
}

func (sm *SiteModel) workers() int {
	if sm.Workers > 0 {
		return sm.Workers
	}
	return defaultWorkers()
}

func (sm *SiteModel) exemplars() []cluster.SortedSignature {
	sm.exOnce.Do(func() {
		sm.ex = make([]cluster.SortedSignature, len(sm.Clusters))
		for i, c := range sm.Clusters {
			sm.ex[i] = c.Exemplar.Sorted()
		}
	})
	return sm.ex
}

// Route returns the index of the cluster whose exemplar signature is most
// similar to the page, or -1 for a model with no clusters. The page's
// signature is matched against the pre-sorted exemplar slices with a
// linear merge instead of per-page map intersections.
func (sm *SiteModel) Route(p *Page) int {
	if len(sm.Clusters) == 1 {
		return 0
	}
	i, _ := cluster.RouteSorted(cluster.SortedSignatureOf(p.Doc), sm.exemplars())
	return i
}

// ServeOptions are per-call serving overrides. They apply to exactly one
// ExtractSourcesOpts / StreamSourcesOpts call, without mutating or copying
// the model, so concurrent calls with different options never observe each
// other's settings.
type ServeOptions struct {
	// Workers bounds this call's page parallelism; 0 uses the model's
	// Workers (which itself defaults to NumCPU capped at 8).
	Workers int
	// Stages, when non-nil, accumulates per-stage serve time
	// (parse/route/score) into the collector across the call's worker
	// pool. Off (nil) the hot path pays one pointer test per stage
	// boundary; on, two monotonic clock reads per stage per page.
	Stages *StageTimes
}

// StageTimes accumulates per-stage serve time in nanoseconds. Fields
// are atomic because a serve call's workers add concurrently; totals
// are summed across workers, so they may exceed the call's wall time.
type StageTimes struct {
	// Parse is tokenization: the streaming pass's capture or the DOM
	// path's tree build.
	Parse atomic.Int64
	// Route is cluster routing by template-signature similarity.
	Route atomic.Int64
	// Score is featurization plus classification plus extraction
	// assembly (the stages interleave per field and are timed together).
	Score atomic.Int64
}

// stageClock times stage boundaries inside one worker's page loop. With
// no collector attached every tick is a single pointer test.
type stageClock struct {
	st   *StageTimes
	last time.Time
}

const (
	stageParse = iota
	stageRoute
	stageScore
)

func startStageClock(st *StageTimes) stageClock {
	c := stageClock{st: st}
	if st != nil {
		c.last = time.Now()
	}
	return c
}

func (c *stageClock) tick(stage int) {
	if c.st == nil {
		return
	}
	now := time.Now()
	d := int64(now.Sub(c.last))
	c.last = now
	switch stage {
	case stageParse:
		c.st.Parse.Add(d)
	case stageRoute:
		c.st.Route.Add(d)
	case stageScore:
		c.st.Score.Add(d)
	}
}

// ServeStats reports what one serve call did.
type ServeStats struct {
	// Pages is the number of pages served.
	Pages int
	// Extractions counts the unthresholded extractions produced.
	Extractions int
	// EmptyPages counts served pages that produced no extraction at all
	// — the drift signal for a template change the model no longer fits.
	EmptyPages int
	// RoutingMisses counts pages that routed to no cluster or to an
	// untrained one (which yields nothing); rising values mean traffic
	// has drifted off the trained templates.
	RoutingMisses int
	// ClusterPages counts the pages routed to each cluster, aligned with
	// SiteModel.Clusters. Pages no cluster claimed (route -1) are omitted.
	ClusterPages []int
}

// RoutedClusters counts distinct clusters that received at least one page.
func (s *ServeStats) RoutedClusters() int {
	n := 0
	for _, c := range s.ClusterPages {
		if c > 0 {
			n++
		}
	}
	return n
}

func (s *ServeStats) addRoute(ci int) {
	if ci >= 0 && ci < len(s.ClusterPages) {
		s.ClusterPages[ci]++
	}
}

// observePage folds one served page's routing outcome and extraction
// count into the drift counters.
func (s *ServeStats) observePage(miss bool, extractions int) {
	if miss {
		s.RoutingMisses++
	}
	if extractions == 0 {
		s.EmptyPages++
	}
}

// routeMiss reports whether a routing outcome is a miss: no cluster
// claimed the page, or the claimed cluster has no trained extractor.
func (sm *SiteModel) routeMiss(ci int) bool {
	return ci < 0 || ci >= len(sm.Clusters) || !sm.Clusters[ci].Trained
}

func (sm *SiteModel) workersFor(opts ServeOptions) int {
	if opts.Workers > 0 {
		return opts.Workers
	}
	return sm.workers()
}

// ExtractSources parses and extracts pages never seen at training time,
// routing each to its nearest template cluster. Extractions are pooled in
// input page order, unthresholded; callers threshold.
func (sm *SiteModel) ExtractSources(ctx context.Context, sources []PageSource) ([]Extraction, error) {
	exts, _, err := sm.ExtractSourcesOpts(ctx, sources, ServeOptions{})
	return exts, err
}

// ExtractSourcesOpts is ExtractSources with per-call overrides and serve
// statistics — the request-scoped entry point the Service layer builds on.
func (sm *SiteModel) ExtractSourcesOpts(ctx context.Context, sources []PageSource, opts ServeOptions) ([]Extraction, *ServeStats, error) {
	if err := sm.serveable(sources); err != nil {
		return nil, nil, err
	}
	workers := sm.workersFor(opts)
	// Clamp before sizing the scratch pool: opts.Workers may come from an
	// untrusted request, and more workers than pages is useless anyway.
	if workers > len(sources) {
		workers = len(sources)
	}
	scratch := make([]*ServeScratch, workers)
	for i := range scratch {
		scratch[i] = serveScratchPool.Get().(*ServeScratch)
	}
	defer func() {
		for _, sc := range scratch {
			serveScratchPool.Put(sc)
		}
	}()
	perPage := make([][]Extraction, len(sources))
	routes := make([]int, len(sources))
	err := parallelForWorker(ctx, len(sources), workers, func(w, i int) {
		routes[i], perPage[i] = sm.extractOne(sources[i], scratch[w], opts.Stages)
	})
	if err != nil {
		return nil, nil, err
	}
	stats := &ServeStats{Pages: len(sources), ClusterPages: make([]int, len(sm.Clusters))}
	total := 0
	for _, exts := range perPage {
		total += len(exts)
	}
	var out []Extraction
	if total > 0 {
		out = make([]Extraction, 0, total)
	}
	for i, exts := range perPage {
		stats.addRoute(routes[i])
		stats.observePage(sm.routeMiss(routes[i]), len(exts))
		stats.Extractions += len(exts)
		out = append(out, exts...)
	}
	return out, stats, nil
}

// serveScratchPool recycles per-worker serve scratch across calls, so a
// steady-state serving process stops re-growing vector builders,
// probability matrices and text-probe buffers on every request. Scratch
// never escapes a call: extraction output is freshly allocated.
var serveScratchPool = sync.Pool{New: func() any { return NewServeScratch() }}

// StreamSources extracts pages with bounded memory, invoking emit for each
// extraction as its page finishes (pages complete in whatever order the
// workers finish them; emit is never called concurrently). A non-nil error
// from emit stops the stream and is returned. Only ~Workers pages are held
// in memory at once.
func (sm *SiteModel) StreamSources(ctx context.Context, sources []PageSource, emit func(Extraction) error) error {
	_, err := sm.StreamSourcesOpts(ctx, sources, ServeOptions{}, emit)
	return err
}

// StreamSourcesOpts is StreamSources with per-call overrides; it reports
// serve statistics once the stream drains (nil when it failed).
func (sm *SiteModel) StreamSourcesOpts(ctx context.Context, sources []PageSource, opts ServeOptions, emit func(Extraction) error) (*ServeStats, error) {
	if err := sm.serveable(sources); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := sm.workersFor(opts)
	if workers > len(sources) {
		workers = len(sources)
	}
	stats := &ServeStats{Pages: len(sources), ClusterPages: make([]int, len(sm.Clusters))}
	var (
		mu      sync.Mutex // guards emit, emitErr and stats
		emitErr error
		wg      sync.WaitGroup
	)
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			sc := serveScratchPool.Get().(*ServeScratch) // per-worker scratch, never shared
			defer serveScratchPool.Put(sc)
			for i := range next {
				if ctx.Err() != nil {
					return
				}
				route, exts := sm.extractOne(sources[i], sc, opts.Stages)
				mu.Lock()
				stats.addRoute(route)
				stats.observePage(sm.routeMiss(route), len(exts))
				stats.Extractions += len(exts)
				for _, e := range exts {
					if emitErr != nil || ctx.Err() != nil {
						break
					}
					if err := emit(e); err != nil {
						emitErr = err
						cancel()
						break
					}
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for i := range sources {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if emitErr != nil {
		return nil, emitErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return stats, nil
}

// serveable validates a serve call: a model must exist and have at least
// one trained cluster, and there must be pages to serve.
func (sm *SiteModel) serveable(sources []PageSource) error {
	if sm == nil || sm.TrainedClusters() == 0 {
		return ErrNotTrained
	}
	if len(sources) == 0 {
		return ErrNoPages
	}
	return nil
}

// extractOne parses, routes and extracts a single page through the
// compiled pipeline, writing intermediates into the worker's scratch. It
// returns the cluster the page routed to alongside the extractions. The
// legacy (string-hashing) path remains as fallback for models whose
// dictionary cannot compile.
func (sm *SiteModel) extractOne(src PageSource, sc *ServeScratch, st *StageTimes) (int, []Extraction) {
	if !sm.DisableStreaming {
		if ok, maxText := sm.streamInfo(); ok {
			// One copy into the worker's reusable buffer buys the
			// zero-DOM pass; byte-native callers use extractBytes
			// directly and skip even that.
			sc.htmlBuf = append(sc.htmlBuf[:0], src.HTML...)
			return sm.extractBytes(src.ID, sc.htmlBuf, sc, maxText, st)
		}
	}
	ck := startStageClock(st)
	p := PrepareServePage(src.ID, src.HTML)
	// The page dies with this call — extractions carry their own strings,
	// never node pointers — so its node slabs recycle into the parse pool.
	defer p.Release()
	ck.tick(stageParse)
	ci := sm.Route(p)
	ck.tick(stageRoute)
	if ci < 0 || !sm.Clusters[ci].Trained {
		return ci, nil
	}
	c := sm.Clusters[ci]
	if cm := c.Compiled(); cm != nil {
		exts := cm.ExtractPage(p, sm.Extract, sc)
		ck.tick(stageScore)
		return ci, exts
	}
	exts := ExtractPage(p, c.Model, sm.Extract)
	ck.tick(stageScore)
	return ci, exts
}

// ---------------------------------------------------------------- state

// SiteModelState is the serializable form of a SiteModel. All fields are
// plain data; the public package marshals it (JSON) behind a versioned
// envelope.
type SiteModelState struct {
	Clusters   []ClusterModelState
	Extract    ExtractOptions
	Workers    int
	TrainPages int
}

// ClusterModelState is the serializable form of one ClusterModel.
type ClusterModelState struct {
	// Exemplar lists the signature keys, sorted.
	Exemplar []string
	Trained  bool
	// Model is nil for untrained clusters.
	Model          *ModelState
	Pages          int
	AnnotatedPages int
	Annotations    int
}

// ModelState is the serializable form of a trained cluster Model.
type ModelState struct {
	Classes    []string
	Featurizer FeaturizerState
	// Exactly one of LR / NB is set, matching the classifier choice.
	LR *mlr.Model
	NB *mlr.NaiveBayesState
}

// State snapshots the site model for serialization.
func (sm *SiteModel) State() *SiteModelState {
	st := &SiteModelState{
		Extract:    sm.Extract,
		Workers:    sm.Workers,
		TrainPages: sm.TrainPages,
	}
	for _, c := range sm.Clusters {
		cs := ClusterModelState{
			Exemplar:       c.Exemplar.Keys(),
			Trained:        c.Trained,
			Pages:          c.Pages,
			AnnotatedPages: c.AnnotatedPages,
			Annotations:    c.Annotations,
		}
		if c.Model != nil {
			ms := &ModelState{
				Classes:    c.Model.Classes.Names(),
				Featurizer: c.Model.Featurizer.State(),
				LR:         c.Model.LR,
			}
			if c.Model.NB != nil {
				nb := c.Model.NB.State()
				ms.NB = &nb
			}
			cs.Model = ms
		}
		st.Clusters = append(st.Clusters, cs)
	}
	return st
}

// RestoreSiteModel rebuilds a serving-ready SiteModel from its state,
// validating classifier shapes so a corrupt state fails at load time.
func RestoreSiteModel(st *SiteModelState) (*SiteModel, error) {
	// Serialized states carry resolved extraction options (TrainSite
	// resolves before storing), so restore takes them literally; see the
	// matching convention in RestoreFeaturizer.
	sm := &SiteModel{
		Extract:    st.Extract.Explicit(),
		Workers:    st.Workers,
		TrainPages: st.TrainPages,
	}
	for i, cs := range st.Clusters {
		cm := &ClusterModel{
			Exemplar:       cluster.SignatureFromKeys(cs.Exemplar),
			Trained:        cs.Trained,
			Pages:          cs.Pages,
			AnnotatedPages: cs.AnnotatedPages,
			Annotations:    cs.Annotations,
		}
		if cs.Trained && cs.Model == nil {
			return nil, fmt.Errorf("core: cluster %d marked trained but has no model", i)
		}
		if cs.Model != nil {
			m, err := restoreModel(cs.Model)
			if err != nil {
				return nil, fmt.Errorf("core: cluster %d: %w", i, err)
			}
			cm.Model = m
		}
		sm.Clusters = append(sm.Clusters, cm)
	}
	return sm, nil
}

func restoreModel(st *ModelState) (*Model, error) {
	classes, err := ClassesFromNames(st.Classes)
	if err != nil {
		return nil, err
	}
	fz, err := RestoreFeaturizer(st.Featurizer)
	if err != nil {
		return nil, err
	}
	// Serving featurizes concurrently; an unfrozen dictionary would grow
	// its map from multiple goroutines. Trained featurizers are always
	// frozen, so freeze unconditionally rather than trust the state.
	fz.Freeze()
	m := &Model{Classes: classes, Featurizer: fz}
	dictLen := fz.Dict().Len()
	checkFeatures := func(numFeatures int) error {
		if numFeatures > dictLen {
			return fmt.Errorf("core: model scores %d features but dictionary has %d", numFeatures, dictLen)
		}
		return nil
	}
	switch {
	case st.LR != nil && st.NB == nil:
		if err := st.LR.Validate(); err != nil {
			return nil, err
		}
		if st.LR.NumClasses != classes.Len() {
			return nil, fmt.Errorf("core: model has %d classes, class space has %d", st.LR.NumClasses, classes.Len())
		}
		if err := checkFeatures(st.LR.NumFeatures); err != nil {
			return nil, err
		}
		m.LR = st.LR
	case st.NB != nil && st.LR == nil:
		nb, err := mlr.RestoreNaiveBayes(*st.NB)
		if err != nil {
			return nil, err
		}
		if nb.NumClasses != classes.Len() {
			return nil, fmt.Errorf("core: model has %d classes, class space has %d", nb.NumClasses, classes.Len())
		}
		if err := checkFeatures(nb.NumFeatures); err != nil {
			return nil, err
		}
		m.NB = nb
	default:
		return nil, fmt.Errorf("core: model state needs exactly one classifier")
	}
	return m, nil
}
