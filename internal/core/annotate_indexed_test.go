package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

// countdownCtx is a context whose Err flips to Canceled after a fixed
// number of Err() polls — a deterministic way to cancel "mid-annotation",
// since parallelFor polls Err between items.
type countdownCtx struct {
	mu   sync.Mutex
	left int
	done chan struct{}
}

func newCountdownCtx(polls int) *countdownCtx {
	return &countdownCtx{left: polls, done: make(chan struct{})}
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return c.done }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left > 0 {
		c.left--
		return nil
	}
	select {
	case <-c.done:
	default:
		close(c.done)
	}
	return context.Canceled
}

// TestAnnotateCtxCancellationMidRun cancels after a handful of
// ctx.Err() polls — deep inside the per-page phases — and expects the
// context error back with no partial result.
func TestAnnotateCtxCancellationMidRun(t *testing.T) {
	pages, K, _, _ := buildMovieSite(t, 16, defaultStyle())
	for _, polls := range []int{0, 1, 5, 20} {
		res, err := AnnotateCtx(newCountdownCtx(polls), pages, K, TopicOptions{}, RelationOptions{}, 1)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("polls=%d: err = %v, want context.Canceled", polls, err)
		}
		if res != nil {
			t.Fatalf("polls=%d: cancelled annotation returned a partial result", polls)
		}
	}
	// Sanity: an unlimited budget completes.
	if _, err := AnnotateCtx(context.Background(), pages, K, TopicOptions{}, RelationOptions{}, 1); err != nil {
		t.Fatal(err)
	}
}

// TestAnnotateCtxCancelledUpfront covers the already-cancelled-context
// fast path at every worker count.
func TestAnnotateCtxCancelledUpfront(t *testing.T) {
	pages, K, _, _ := buildMovieSite(t, 4, defaultStyle())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		if _, err := AnnotateCtx(ctx, pages, K, TopicOptions{}, RelationOptions{}, workers); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if _, err := IdentifyTopicsCtx(ctx, pages, K, TopicOptions{}, workers); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: IdentifyTopicsCtx err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestAnnotateCtxDeterministicAcrossWorkers: annotation output — topics,
// annotations, order, flags — must be identical at Workers=1 and
// Workers=8. Every cross-page aggregation is sequential in page order, so
// scheduling must not leak into the result.
func TestAnnotateCtxDeterministicAcrossWorkers(t *testing.T) {
	pages, K, _, _ := buildMovieSite(t, 24, defaultStyle())
	base, err := AnnotateCtx(context.Background(), pages, K, TopicOptions{}, RelationOptions{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Annotations) == 0 {
		t.Fatal("fixture produced no annotations; determinism test vacuous")
	}
	for _, workers := range []int{2, 8} {
		for round := 0; round < 3; round++ {
			got, err := AnnotateCtx(context.Background(), pages, K, TopicOptions{}, RelationOptions{}, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("workers=%d round %d: annotation output differs from Workers=1", workers, round)
			}
		}
	}
}
