package core

import (
	"reflect"
	"testing"

	"ceres/internal/mlr"
)

// trainTestModel fits a model on a small movie site and returns it with
// the training pages.
func trainTestModel(t *testing.T, classifier string) (*Model, []*Page) {
	t.Helper()
	pages, K, _, _ := buildMovieSite(t, 20, defaultStyle())
	ann := Annotate(pages, K, TopicOptions{}, RelationOptions{})
	fz := NewFeaturizer(pages, FeatureOptions{})
	ds, classes := BuildExamples(pages, ann, fz, TrainOptions{Seed: 1})
	fz.Freeze()
	m, err := TrainModel(ds, classes, fz, TrainOptions{Classifier: classifier})
	if err != nil {
		t.Fatal(err)
	}
	return m, pages
}

// TestCompiledFeaturesMatchLegacy asserts the compiled featurizer emits
// exactly the vector the string-hashing featurizer builds, for every
// field of every page.
func TestCompiledFeaturesMatchLegacy(t *testing.T) {
	m, pages := trainTestModel(t, "")
	fz := m.Featurizer
	cf, err := fz.Compile()
	if err != nil {
		t.Fatal(err)
	}
	var vb mlr.VectorBuilder
	fields, diffs := 0, 0
	for _, p := range pages {
		for _, f := range p.Fields {
			fields++
			want := fz.Features(f)
			vb.Reset()
			cf.AppendFeatures(&vb, f)
			got := vb.Build()
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				diffs++
				if diffs <= 3 {
					t.Errorf("page %s field %q: compiled %v != legacy %v", p.ID, f.Text, got, want)
				}
			}
		}
	}
	if diffs > 0 {
		t.Fatalf("%d of %d fields diverged", diffs, fields)
	}
	if fields == 0 {
		t.Fatal("no fields compared")
	}
}

// TestCompiledExtractPageMatchesLegacy asserts compiled extraction is
// deep-equal (triples, confidences, order) to the legacy path, for both
// classifiers.
func TestCompiledExtractPageMatchesLegacy(t *testing.T) {
	for _, classifier := range []string{"", "nb"} {
		m, pages := trainTestModel(t, classifier)
		cm, err := m.Compile()
		if err != nil {
			t.Fatalf("classifier %q: %v", classifier, err)
		}
		sc := NewServeScratch()
		total := 0
		for _, p := range pages {
			want := ExtractPage(p, m, ExtractOptions{})
			got := cm.ExtractPage(p, ExtractOptions{}, sc)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("classifier %q page %s: compiled %d extractions != legacy %d\ncompiled: %v\nlegacy: %v",
					classifier, p.ID, len(got), len(want), got, want)
			}
			total += len(want)
		}
		if total == 0 {
			t.Fatalf("classifier %q extracted nothing; differential vacuous", classifier)
		}
	}
}

// TestCompileRequiresFrozenDict: a growing dictionary cannot be inverted.
func TestCompileRequiresFrozenDict(t *testing.T) {
	pages, _, _, _ := buildMovieSite(t, 5, defaultStyle())
	fz := NewFeaturizer(pages, FeatureOptions{})
	if _, err := fz.Compile(); err == nil {
		t.Fatal("Compile on unfrozen featurizer must fail")
	}
	fz.Freeze()
	if _, err := fz.Compile(); err != nil {
		t.Fatalf("Compile on frozen featurizer: %v", err)
	}
}

// TestCompileSkipsForeignDictNames: names outside the trainer's grammar
// (which the legacy path can never look up either) are ignored, not
// mis-indexed.
func TestCompileSkipsForeignDictNames(t *testing.T) {
	st := FeaturizerState{
		Opts: FeatureOptions{}.withDefaults(),
		Dict: mlr.DictState{Names: []string{
			"garbage", "s|x|0|tag|div", "s|0|99|tag|div", "t|9|0|x",
			"s|0|0|tag|div", "t|1|-1|Director", "s|0|0|unknownattr|v",
		}, Frozen: true},
	}
	fz, err := RestoreFeaturizer(st)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := fz.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if got := cf.structural[0][fz.opts.SiblingWindow].tag["div"]; got != 4 {
		t.Errorf("valid structural feature mis-indexed: got id %d, want 4", got)
	}
	if got := cf.text[1][1]["Director"]; got != 5 {
		t.Errorf("valid text feature mis-indexed: got id %d, want 5", got)
	}
}
