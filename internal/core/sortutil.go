package core

import "sort"

// sortedKeys returns map keys in sorted order for deterministic iteration.
// It is the one shared helper for every string-keyed map the annotation
// and training stages walk.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// rankedKeysByCount ranks keys by descending count, breaking ties by key.
func rankedKeysByCount(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if m[out[i]] != m[out[j]] {
			return m[out[i]] > m[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}
