package core

import (
	"testing"

	"ceres/internal/kb"
	"ceres/internal/websim"
)

// buildMovieSite renders a small movie site plus its seed KB.
func buildMovieSite(t *testing.T, nPages int, style websim.MovieSiteStyle) ([]*Page, *kb.KB, *websim.World, []*websim.Page) {
	t.Helper()
	w := websim.NewWorld(websim.WorldConfig{Films: 150, People: 200, Series: 4, Episodes: 6, Seed: 21})
	K := websim.BuildKB(w, websim.FullCoverage(), 3)
	site := websim.BuildMovieSite(w, w.Films[:nPages], style, "testsite", 7)
	var sources []PageSource
	for _, wp := range site.Pages {
		sources = append(sources, PageSource{ID: wp.ID, HTML: wp.HTML})
	}
	return ParsePages(sources, 4), K, w, site.Pages
}

func defaultStyle() websim.MovieSiteStyle {
	return websim.MovieSiteStyle{Layout: "table", Prefix: "ts", Language: "en", Recommendations: true}
}

func TestIdentifyTopicsOnMovieSite(t *testing.T) {
	pages, K, _, gold := buildMovieSite(t, 30, defaultStyle())
	topics := IdentifyTopics(pages, K, TopicOptions{})
	correct, withTopic := 0, 0
	for i, tr := range topics {
		if tr.EntityID == "" {
			continue
		}
		withTopic++
		if tr.EntityID == gold[i].TopicID {
			correct++
		}
	}
	if withTopic < 25 {
		t.Errorf("topics identified on only %d/30 pages", withTopic)
	}
	if correct < withTopic*9/10 {
		t.Errorf("topic precision %d/%d below 90%%", correct, withTopic)
	}
	// The topic field must hold the film title.
	for i, tr := range topics {
		if tr.EntityID != gold[i].TopicID || tr.FieldIdx < 0 {
			continue
		}
		if pages[i].Fields[tr.FieldIdx].Text != gold[i].TopicName {
			t.Errorf("page %d: topic field %q, want %q", i, pages[i].Fields[tr.FieldIdx].Text, gold[i].TopicName)
		}
	}
}

func TestTopicUniquenessFilter(t *testing.T) {
	// A KB entity whose name appears on every page ("Help") must not
	// become the topic of many pages.
	pages, K, w, _ := buildMovieSite(t, 12, defaultStyle())
	// Inject a trap entity whose name matches the nav boilerplate "Movies"
	// present on every page, with rich enough objects to score.
	mustNil(t, K.AddEntity(kb.Entity{ID: "trap", Type: "film", Name: "Movies"}))
	for i := 0; i < 8; i++ {
		mustNil(t, K.AddTriple(kb.Triple{
			Subject: "trap", Predicate: websim.PredCastMember,
			Object: kb.EntityObject(w.People[i].ID),
		}))
	}
	topics := IdentifyTopics(pages, K, TopicOptions{MaxTopicPages: 5})
	trapCount := 0
	for _, tr := range topics {
		if tr.EntityID == "trap" {
			trapCount++
		}
	}
	if trapCount >= 5 {
		t.Errorf("uniqueness filter failed: trap topic on %d pages", trapCount)
	}
}

func TestTopicEmptyInputs(t *testing.T) {
	K := websim.BuildKB(websim.NewWorld(websim.WorldConfig{Films: 5, People: 10, Seed: 1}), websim.FullCoverage(), 1)
	if got := IdentifyTopics(nil, K, TopicOptions{}); len(got) != 0 {
		t.Errorf("no pages: %v", got)
	}
	p := PreparePage("empty", "<html><body></body></html>")
	topics := IdentifyTopics([]*Page{p}, K, TopicOptions{})
	if topics[0].EntityID != "" {
		t.Errorf("empty page should have no topic")
	}
}

func TestJaccardScore(t *testing.T) {
	a := map[string]bool{"x": true, "y": true, "z": true}
	b := map[string]bool{"y": true, "z": true, "w": true}
	if got := jaccardScore(a, b); got != 0.5 {
		t.Errorf("jaccard = %v, want 0.5", got)
	}
	if got := jaccardScore(a, map[string]bool{}); got != 0 {
		t.Errorf("empty set jaccard = %v", got)
	}
}

func mustNil(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
