package core

import (
	"strings"
	"testing"

	"ceres/internal/websim"
)

func TestAnnotateMovieSite(t *testing.T) {
	pages, K, _, gold := buildMovieSite(t, 30, defaultStyle())
	res := Annotate(pages, K, TopicOptions{}, RelationOptions{})
	if res.NumAnnotatedPages() < 25 {
		t.Fatalf("annotated only %d/30 pages", res.NumAnnotatedPages())
	}
	// Annotation precision against node-level gold: an annotation is
	// correct iff the (predicate, nodePath) pair is in the page's gold
	// fact set.
	correct, total := 0, 0
	for _, a := range res.Annotations {
		if a.Predicate == NameClass {
			continue
		}
		total++
		goldSet := gold[a.PageIdx].GoldNodeSet()
		if goldSet[a.Predicate+"\x00"+pages[a.PageIdx].Fields[a.FieldIdx].PathString] {
			correct++
		}
	}
	if total == 0 {
		t.Fatal("no relation annotations at all")
	}
	prec := float64(correct) / float64(total)
	if prec < 0.9 {
		t.Errorf("annotation precision %.3f below 0.9 (%d/%d)", prec, correct, total)
	}
}

// TestAnnotateAtMostOneMentionPerObject checks the §3.2 invariant: CERES
// annotates at most one mention of each (predicate, object) per page.
func TestAnnotateAtMostOneMentionPerObject(t *testing.T) {
	pages, K, _, _ := buildMovieSite(t, 20, defaultStyle())
	res := Annotate(pages, K, TopicOptions{}, RelationOptions{})
	type key struct {
		page int
		pred string
		text string
	}
	seen := map[key]int{}
	for _, a := range res.Annotations {
		if a.Predicate == NameClass {
			continue
		}
		k := key{a.PageIdx, a.Predicate, pages[a.PageIdx].Fields[a.FieldIdx].Norm}
		seen[k]++
		if seen[k] > 1 {
			t.Fatalf("object %q annotated twice for %s on page %d", k.text, k.pred, k.page)
		}
	}
}

// TestGenreDuplicationTrap reproduces Example 3.2: genres appear both in
// the infobox and in the recommendation rail of other films; the
// annotation must prefer the infobox mention (which all pages share),
// not the rail.
func TestGenreDuplicationTrap(t *testing.T) {
	style := defaultStyle() // Recommendations: true
	pages, K, _, gold := buildMovieSite(t, 40, style)
	res := Annotate(pages, K, TopicOptions{}, RelationOptions{})
	var genreAnns, correct int
	for _, a := range res.Annotations {
		if a.Predicate != websim.PredGenre {
			continue
		}
		genreAnns++
		if gold[a.PageIdx].GoldNodeSet()[a.Predicate+"\x00"+pages[a.PageIdx].Fields[a.FieldIdx].PathString] {
			correct++
		}
	}
	if genreAnns == 0 {
		t.Fatal("no genre annotations")
	}
	if float64(correct)/float64(genreAnns) < 0.9 {
		t.Errorf("genre annotation precision %d/%d below 0.9 — the rail trap is winning", correct, genreAnns)
	}
}

// TestCeresTopicAnnotatesMoreNoisily: the CERES-Topic mode (annotate all
// mentions) must produce at least as many annotations, with lower or
// equal node-level precision — the Table 6 relationship.
func TestCeresTopicAnnotatesMoreNoisily(t *testing.T) {
	pages, K, _, gold := buildMovieSite(t, 40, defaultStyle())
	full := Annotate(pages, K, TopicOptions{}, RelationOptions{})
	topic := Annotate(pages, K, TopicOptions{}, RelationOptions{AnnotateAllMentions: true})
	if len(topic.Annotations) < len(full.Annotations) {
		t.Errorf("CERES-Topic produced fewer annotations (%d) than CERES-Full (%d)",
			len(topic.Annotations), len(full.Annotations))
	}
	prec := func(res *AnnotationResult) float64 {
		correct, total := 0, 0
		for _, a := range res.Annotations {
			if a.Predicate == NameClass {
				continue
			}
			total++
			if gold[a.PageIdx].GoldNodeSet()[a.Predicate+"\x00"+pages[a.PageIdx].Fields[a.FieldIdx].PathString] {
				correct++
			}
		}
		if total == 0 {
			return 0
		}
		return float64(correct) / float64(total)
	}
	pFull, pTopic := prec(full), prec(topic)
	if pTopic > pFull+1e-9 {
		t.Errorf("CERES-Topic precision %.3f exceeds CERES-Full %.3f", pTopic, pFull)
	}
}

func TestInformativenessFilter(t *testing.T) {
	pages, K, _, _ := buildMovieSite(t, 15, defaultStyle())
	strict := Annotate(pages, K, TopicOptions{}, RelationOptions{MinAnnotations: 50})
	if strict.NumAnnotatedPages() != 0 {
		t.Errorf("MinAnnotations=50 should reject every page, got %d", strict.NumAnnotatedPages())
	}
	loose := Annotate(pages, K, TopicOptions{}, RelationOptions{MinAnnotations: 1})
	if loose.NumAnnotatedPages() == 0 {
		t.Errorf("MinAnnotations=1 should keep pages")
	}
}

func TestClusterPredPaths(t *testing.T) {
	paths := map[string]int{
		"/html[1]/body[1]/div[1]/ul[1]/li[1]/a[1]": 30,
		"/html[1]/body[1]/div[1]/ul[1]/li[2]/a[1]": 28,
		"/html[1]/body[1]/div[1]/ul[1]/li[3]/a[1]": 25,
		"/html[1]/body[1]/div[9]/span[2]/a[1]":     4,
	}
	sizes := clusterPredPaths(paths, 2, 100)
	listSize := sizes["/html[1]/body[1]/div[1]/ul[1]/li[1]/a[1]"]
	railSize := sizes["/html[1]/body[1]/div[9]/span[2]/a[1]"]
	if listSize != 83 {
		t.Errorf("list cluster size = %d, want 83", listSize)
	}
	if railSize != 4 {
		t.Errorf("rail cluster size = %d, want 4", railSize)
	}
	// Single path.
	one := clusterPredPaths(map[string]int{"/html[1]/a[1]": 7}, 3, 100)
	if one["/html[1]/a[1]"] != 7 {
		t.Errorf("single-path cluster = %v", one)
	}
	// Empty.
	if got := clusterPredPaths(map[string]int{}, 1, 10); len(got) != 0 {
		t.Errorf("empty input: %v", got)
	}
}

func TestAnnotationsRespectTopicField(t *testing.T) {
	pages, K, _, _ := buildMovieSite(t, 20, defaultStyle())
	res := Annotate(pages, K, TopicOptions{}, RelationOptions{})
	nameCount := map[int]int{}
	for _, a := range res.Annotations {
		if a.Predicate == NameClass {
			nameCount[a.PageIdx]++
			if res.Topics[a.PageIdx].FieldIdx != a.FieldIdx {
				t.Errorf("name annotation not at the topic field on page %d", a.PageIdx)
			}
		}
	}
	for pi, n := range nameCount {
		if n != 1 {
			t.Errorf("page %d has %d name annotations", pi, n)
		}
	}
}

func TestIsNumeric(t *testing.T) {
	for _, s := range []string{"1989", "7", "0001"} {
		if !isNumeric(s) {
			t.Errorf("isNumeric(%q) = false", s)
		}
	}
	for _, s := range []string{"", "19a9", "-3", "1.5", "year"} {
		if isNumeric(s) {
			t.Errorf("isNumeric(%q) = true", s)
		}
	}
	_ = strings.TrimSpace("")
}
