package mlr

import "math"

// LBFGSOptions configures the quasi-Newton minimizer.
type LBFGSOptions struct {
	// MaxIter bounds the number of outer iterations (default 200).
	MaxIter int
	// Tol stops when the gradient infinity norm falls below it
	// (default 1e-5).
	Tol float64
	// Memory is the number of (s,y) correction pairs kept (default 10).
	Memory int
}

// LBFGSResult reports the outcome of Minimize.
type LBFGSResult struct {
	X          []float64
	Loss       float64
	Iterations int
	Converged  bool
}

// Minimize runs limited-memory BFGS with Armijo backtracking line search on
// the function f, which must write the gradient at x into grad and return
// the loss. x0 is not modified. This is the from-scratch replacement for
// scipy's LBFGS that scikit-learn (and therefore the paper's training step)
// relies on.
func Minimize(f func(x, grad []float64) float64, x0 []float64, opts LBFGSOptions) LBFGSResult {
	if opts.MaxIter == 0 {
		opts.MaxIter = 200
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-5
	}
	if opts.Memory == 0 {
		opts.Memory = 10
	}
	n := len(x0)
	x := make([]float64, n)
	copy(x, x0)
	grad := make([]float64, n)
	loss := f(x, grad)

	type pair struct {
		s, y []float64
		rho  float64
	}
	var hist []pair

	dir := make([]float64, n)
	xNew := make([]float64, n)
	gradNew := make([]float64, n)
	alphaBuf := make([]float64, opts.Memory)

	res := LBFGSResult{X: x, Loss: loss}
	for iter := 0; iter < opts.MaxIter; iter++ {
		res.Iterations = iter
		if infNorm(grad) < opts.Tol {
			res.Converged = true
			break
		}
		// Two-loop recursion: dir = -H·grad.
		copy(dir, grad)
		for i := len(hist) - 1; i >= 0; i-- {
			h := hist[i]
			alphaBuf[i] = h.rho * dot(h.s, dir)
			axpy(dir, -alphaBuf[i], h.y)
		}
		if len(hist) > 0 {
			last := hist[len(hist)-1]
			gamma := dot(last.s, last.y) / dot(last.y, last.y)
			scale(dir, gamma)
		}
		for i := 0; i < len(hist); i++ {
			h := hist[i]
			beta := h.rho * dot(h.y, dir)
			axpy(dir, alphaBuf[i]-beta, h.s)
		}
		neg(dir)

		// The two-loop direction is a descent direction whenever the
		// curvature pairs are valid; guard anyway and fall back to
		// steepest descent.
		g0 := dot(grad, dir)
		if g0 >= 0 {
			copy(dir, grad)
			neg(dir)
			g0 = -dot(grad, grad)
			hist = hist[:0]
		}

		// Armijo backtracking line search.
		step := 1.0
		if len(hist) == 0 {
			// First step: scale to keep the initial move modest.
			if gn := math.Sqrt(-g0); gn > 1 {
				step = 1 / gn
			}
		}
		const c1 = 1e-4
		var lossNew float64
		ok := false
		for ls := 0; ls < 40; ls++ {
			for i := range x {
				xNew[i] = x[i] + step*dir[i]
			}
			lossNew = f(xNew, gradNew)
			if lossNew <= loss+c1*step*g0 {
				ok = true
				break
			}
			step *= 0.5
		}
		if !ok {
			// No productive step exists along this direction at any
			// representable scale; we are at numerical convergence.
			break
		}

		// Update history with the new curvature pair.
		s := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			s[i] = xNew[i] - x[i]
			y[i] = gradNew[i] - grad[i]
		}
		if sy := dot(s, y); sy > 1e-12 {
			hist = append(hist, pair{s: s, y: y, rho: 1 / sy})
			if len(hist) > opts.Memory {
				hist = hist[1:]
			}
		}
		copy(x, xNew)
		copy(grad, gradNew)
		// Relative-progress stop: loss plateaued.
		if math.Abs(loss-lossNew) <= 1e-12*(1+math.Abs(loss)) {
			loss = lossNew
			res.Converged = true
			break
		}
		loss = lossNew
	}
	res.Loss = loss
	return res
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// axpy computes a += alpha*b.
func axpy(a []float64, alpha float64, b []float64) {
	for i := range a {
		a[i] += alpha * b[i]
	}
}

func scale(a []float64, alpha float64) {
	for i := range a {
		a[i] *= alpha
	}
}

func neg(a []float64) {
	for i := range a {
		a[i] = -a[i]
	}
}

func infNorm(a []float64) float64 {
	var m float64
	for _, v := range a {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}
