package mlr

import "fmt"

// This file provides the state types that let trained classifiers and
// feature dictionaries persist across processes. States carry only
// exported, plain-data fields so callers can marshal them with any
// encoding; Restore* rebuilds the live object and validates shape
// invariants so a corrupted or truncated state fails loudly instead of
// mis-scoring.

// DictState is the serializable form of a Dict.
type DictState struct {
	// Names lists feature names in index order: Names[i] is the name of
	// feature i.
	Names  []string
	Frozen bool
}

// State snapshots the dictionary.
func (d *Dict) State() DictState {
	names := make([]string, len(d.names))
	copy(names, d.names)
	return DictState{Names: names, Frozen: d.frozen}
}

// RestoreDict rebuilds a dictionary from its state.
func RestoreDict(st DictState) (*Dict, error) {
	d := NewDict()
	for i, name := range st.Names {
		if _, dup := d.byName[name]; dup {
			return nil, fmt.Errorf("mlr: duplicate feature name %q in dict state", name)
		}
		if id := d.ID(name); id != i {
			return nil, fmt.Errorf("mlr: dict state index mismatch at %d", i)
		}
	}
	d.frozen = st.Frozen
	return d, nil
}

// Validate checks a Model's internal shape consistency (Model's fields are
// already exported, so it serializes directly; this guards deserialized
// instances).
func (m *Model) Validate() error {
	if m.NumClasses < 2 || m.NumFeatures < 0 {
		return fmt.Errorf("mlr: model has %d classes, %d features", m.NumClasses, m.NumFeatures)
	}
	if len(m.W) != m.NumClasses*m.NumFeatures {
		return fmt.Errorf("mlr: weight matrix has %d entries, want %d", len(m.W), m.NumClasses*m.NumFeatures)
	}
	if len(m.B) != m.NumClasses {
		return fmt.Errorf("mlr: intercept vector has %d entries, want %d", len(m.B), m.NumClasses)
	}
	return nil
}

// NaiveBayesState is the serializable form of a NaiveBayes classifier.
type NaiveBayesState struct {
	NumClasses    int
	NumFeatures   int
	LogPrior      []float64
	LogProb       []float64
	LogAbsent     []float64
	LogProbAbsent []float64
}

// State snapshots the classifier.
func (nb *NaiveBayes) State() NaiveBayesState {
	return NaiveBayesState{
		NumClasses:    nb.NumClasses,
		NumFeatures:   nb.NumFeatures,
		LogPrior:      append([]float64(nil), nb.logPrior...),
		LogProb:       append([]float64(nil), nb.logProb...),
		LogAbsent:     append([]float64(nil), nb.logAbsent...),
		LogProbAbsent: append([]float64(nil), nb.logProbAbsent...),
	}
}

// RestoreNaiveBayes rebuilds a classifier from its state.
func RestoreNaiveBayes(st NaiveBayesState) (*NaiveBayes, error) {
	if st.NumClasses < 1 || st.NumFeatures < 0 {
		return nil, fmt.Errorf("mlr: naive bayes state has %d classes, %d features", st.NumClasses, st.NumFeatures)
	}
	kd := st.NumClasses * st.NumFeatures
	if len(st.LogProb) != kd || len(st.LogProbAbsent) != kd ||
		len(st.LogPrior) != st.NumClasses || len(st.LogAbsent) != st.NumClasses {
		return nil, fmt.Errorf("mlr: naive bayes state tables do not match %d classes x %d features",
			st.NumClasses, st.NumFeatures)
	}
	return &NaiveBayes{
		NumClasses:    st.NumClasses,
		NumFeatures:   st.NumFeatures,
		logPrior:      append([]float64(nil), st.LogPrior...),
		logProb:       append([]float64(nil), st.LogProb...),
		logAbsent:     append([]float64(nil), st.LogAbsent...),
		logProbAbsent: append([]float64(nil), st.LogProbAbsent...),
	}, nil
}
