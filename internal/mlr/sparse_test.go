package mlr

import (
	"testing"
	"testing/quick"
)

func TestNewVector(t *testing.T) {
	v := NewVector([]Feature{{3, 1}, {1, 2}, {3, 4}, {2, 0}})
	if len(v) != 2 {
		t.Fatalf("want 2 features after merge/drop, got %v", v)
	}
	if v[0] != (Feature{1, 2}) || v[1] != (Feature{3, 5}) {
		t.Errorf("merged vector = %v", v)
	}
	if NewVector(nil) != nil {
		t.Errorf("empty input should give nil vector")
	}
}

func TestVectorSortedInvariant(t *testing.T) {
	f := func(idxs []uint8, vals []int8) bool {
		n := len(idxs)
		if len(vals) < n {
			n = len(vals)
		}
		feats := make([]Feature, n)
		for i := 0; i < n; i++ {
			feats[i] = Feature{Index: int(idxs[i]), Value: float64(vals[i])}
		}
		v := NewVector(feats)
		for i := 1; i < len(v); i++ {
			if v[i].Index <= v[i-1].Index {
				return false
			}
		}
		for _, f := range v {
			if f.Value == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorDot(t *testing.T) {
	v := NewVector([]Feature{{0, 2}, {3, 1}, {10, 5}})
	w := []float64{1, 1, 1, 4} // shorter than max index: index 10 ignored
	if got := v.Dot(w); got != 6 {
		t.Errorf("Dot = %v, want 6", got)
	}
	if got := Vector(nil).Dot(w); got != 0 {
		t.Errorf("nil Dot = %v", got)
	}
	if got := v.MaxIndex(); got != 10 {
		t.Errorf("MaxIndex = %d", got)
	}
	if got := Vector(nil).MaxIndex(); got != -1 {
		t.Errorf("nil MaxIndex = %d", got)
	}
}

func TestDict(t *testing.T) {
	d := NewDict()
	a := d.ID("alpha")
	b := d.ID("beta")
	if a == b {
		t.Fatalf("distinct names share an ID")
	}
	if d.ID("alpha") != a {
		t.Errorf("repeat ID changed")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
	if d.Name(a) != "alpha" || d.Name(99) != "" {
		t.Errorf("Name lookup broken")
	}
	d.Freeze()
	if d.ID("gamma") != -1 {
		t.Errorf("frozen dict should refuse new names")
	}
	if d.ID("beta") != b {
		t.Errorf("frozen dict should still resolve known names")
	}
	if id, ok := d.Lookup("alpha"); !ok || id != a {
		t.Errorf("Lookup(alpha) = %d,%v", id, ok)
	}
	if _, ok := d.Lookup("gamma"); ok {
		t.Errorf("Lookup(gamma) should miss")
	}
}

func TestDatasetNumFeatures(t *testing.T) {
	ds := &Dataset{}
	ds.Add(NewVector([]Feature{{4, 1}}), 0)
	ds.Add(NewVector([]Feature{{9, 1}}), 1)
	if ds.NumFeatures() != 10 {
		t.Errorf("NumFeatures = %d, want 10", ds.NumFeatures())
	}
	if ds.NumClasses != 2 {
		t.Errorf("NumClasses = %d, want 2", ds.NumClasses)
	}
	if ds.Len() != 2 {
		t.Errorf("Len = %d", ds.Len())
	}
	empty := &Dataset{}
	if empty.NumFeatures() != 0 {
		t.Errorf("empty NumFeatures = %d", empty.NumFeatures())
	}
}
