package mlr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthDataset builds a linearly separable-ish 3-class problem: class k
// fires features in block k strongly, with some noise features shared.
func synthDataset(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &Dataset{NumClasses: 3}
	for i := 0; i < n; i++ {
		k := rng.Intn(3)
		var feats []Feature
		// Signal: 3 of 5 block features.
		for j := 0; j < 5; j++ {
			if rng.Float64() < 0.7 {
				feats = append(feats, Feature{Index: k*5 + j, Value: 1})
			}
		}
		// Noise features 15..19.
		for j := 15; j < 20; j++ {
			if rng.Float64() < 0.3 {
				feats = append(feats, Feature{Index: j, Value: 1})
			}
		}
		ds.Add(NewVector(feats), k)
	}
	return ds
}

func TestTrainLBFGSLearnsSeparableData(t *testing.T) {
	ds := synthDataset(600, 42)
	m, err := Train(ds, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, ds); acc < 0.9 {
		t.Errorf("training accuracy %.3f < 0.9", acc)
	}
	held := synthDataset(300, 77)
	if acc := Accuracy(m, held); acc < 0.85 {
		t.Errorf("held-out accuracy %.3f < 0.85", acc)
	}
}

func TestTrainSGDComparable(t *testing.T) {
	ds := synthDataset(600, 42)
	m, err := Train(ds, TrainOptions{Optimizer: "sgd", Epochs: 40})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, ds); acc < 0.85 {
		t.Errorf("SGD training accuracy %.3f < 0.85", acc)
	}
}

func TestNaiveBayes(t *testing.T) {
	ds := synthDataset(600, 42)
	nb := TrainNaiveBayes(ds)
	correct := 0
	for i, x := range ds.X {
		if c, _ := nb.Predict(x); c == ds.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(ds.Len()); acc < 0.8 {
		t.Errorf("NB accuracy %.3f < 0.8", acc)
	}
	p := nb.Proba(ds.X[0])
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("NB probabilities sum to %v", sum)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(&Dataset{}, TrainOptions{}); err == nil {
		t.Errorf("empty dataset should fail")
	}
	one := &Dataset{NumClasses: 1}
	one.Add(NewVector([]Feature{{0, 1}}), 0)
	if _, err := Train(one, TrainOptions{}); err == nil {
		t.Errorf("single class should fail")
	}
	bad := &Dataset{NumClasses: 2}
	bad.X = append(bad.X, NewVector([]Feature{{0, 1}}))
	bad.Y = append(bad.Y, 5)
	if _, err := Train(bad, TrainOptions{}); err == nil {
		t.Errorf("out-of-range label should fail")
	}
	ds := synthDataset(10, 1)
	if _, err := Train(ds, TrainOptions{Optimizer: "adagrad"}); err == nil {
		t.Errorf("unknown optimizer should fail")
	}
}

func TestProbaSumsToOne(t *testing.T) {
	ds := synthDataset(200, 9)
	m, err := Train(ds, TrainOptions{MaxIter: 30})
	if err != nil {
		t.Fatal(err)
	}
	f := func(idxs []uint16) bool {
		feats := make([]Feature, 0, len(idxs))
		for _, ix := range idxs {
			feats = append(feats, Feature{Index: int(ix) % 25, Value: 1})
		}
		p := m.Proba(NewVector(feats))
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestGradientMatchesNumeric verifies the analytic gradient of the
// regularized NLL against central differences on a tiny problem.
func TestGradientMatchesNumeric(t *testing.T) {
	ds := &Dataset{NumClasses: 3}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 12; i++ {
		var feats []Feature
		for j := 0; j < 4; j++ {
			if rng.Float64() < 0.5 {
				feats = append(feats, Feature{Index: j, Value: rng.Float64()*2 - 1})
			}
		}
		ds.Add(NewVector(feats), rng.Intn(3))
	}
	D := ds.NumFeatures()
	K := ds.NumClasses
	n := K*D + K
	theta := make([]float64, n)
	for i := range theta {
		theta[i] = rng.Float64()*0.5 - 0.25
	}
	grad := make([]float64, n)
	lossGrad(ds, D, theta, grad, 0.7)

	const h = 1e-6
	scratch := make([]float64, n)
	for i := 0; i < n; i++ {
		orig := theta[i]
		theta[i] = orig + h
		lp := lossGrad(ds, D, theta, scratch, 0.7)
		theta[i] = orig - h
		lm := lossGrad(ds, D, theta, scratch, 0.7)
		theta[i] = orig
		numeric := (lp - lm) / (2 * h)
		if math.Abs(numeric-grad[i]) > 1e-4*(1+math.Abs(numeric)) {
			t.Errorf("grad[%d] = %v, numeric %v", i, grad[i], numeric)
		}
	}
}

func TestLBFGSMinimizesQuadratic(t *testing.T) {
	// f(x) = Σ (x_i - i)^2 has minimum at x_i = i.
	f := func(x, grad []float64) float64 {
		var loss float64
		for i := range x {
			d := x[i] - float64(i)
			loss += d * d
			grad[i] = 2 * d
		}
		return loss
	}
	res := Minimize(f, make([]float64, 10), LBFGSOptions{})
	if !res.Converged {
		t.Errorf("quadratic should converge")
	}
	for i, v := range res.X {
		if math.Abs(v-float64(i)) > 1e-4 {
			t.Errorf("x[%d] = %v, want %d", i, v, i)
		}
	}
}

func TestLBFGSRosenbrock(t *testing.T) {
	// The banana function, the classic line-search stress test.
	f := func(x, grad []float64) float64 {
		a, b := x[0], x[1]
		loss := (1-a)*(1-a) + 100*(b-a*a)*(b-a*a)
		grad[0] = -2*(1-a) - 400*a*(b-a*a)
		grad[1] = 200 * (b - a*a)
		return loss
	}
	res := Minimize(f, []float64{-1.2, 1}, LBFGSOptions{MaxIter: 500, Tol: 1e-8})
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Errorf("Rosenbrock minimum missed: %v (loss %v, %d iters)", res.X, res.Loss, res.Iterations)
	}
}

func TestRegularizationShrinksWeights(t *testing.T) {
	ds := synthDataset(300, 3)
	loose, err := Train(ds, TrainOptions{L2: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Train(ds, TrainOptions{L2: 10})
	if err != nil {
		t.Fatal(err)
	}
	var nLoose, nTight float64
	for i := range loose.W {
		nLoose += loose.W[i] * loose.W[i]
		nTight += tight.W[i] * tight.W[i]
	}
	if nTight >= nLoose {
		t.Errorf("stronger L2 should shrink weights: %v vs %v", nTight, nLoose)
	}
}
