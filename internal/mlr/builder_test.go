package mlr

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestVectorBuilderMatchesNewVector fuzzes random (index,value) pairs —
// with duplicates and zeros — through both construction paths.
func TestVectorBuilderMatchesNewVector(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var b VectorBuilder
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(40)
		feats := make([]Feature, 0, n)
		b.Reset()
		for i := 0; i < n; i++ {
			idx := rng.Intn(15) // small range forces duplicates
			val := float64(rng.Intn(5) - 2)
			feats = append(feats, Feature{Index: idx, Value: val})
			b.Add(idx, val)
		}
		want := NewVector(feats)
		got := b.Build()
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: builder %v != NewVector %v", trial, got, want)
		}
	}
}

// TestVectorBuilderReuse checks that a builder's backing array is reused
// across Reset cycles and that Build's result is stable until then.
func TestVectorBuilderReuse(t *testing.T) {
	var b VectorBuilder
	b.AddID(3)
	b.AddID(1)
	b.AddID(3)
	v := b.Build()
	want := Vector{{Index: 1, Value: 1}, {Index: 3, Value: 2}}
	if !reflect.DeepEqual(v, want) {
		t.Fatalf("Build = %v, want %v", v, want)
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len after Reset = %d", b.Len())
	}
	b.AddID(0)
	if got := b.Build(); len(got) != 1 || got[0].Index != 0 {
		t.Fatalf("second Build = %v", got)
	}
}

// TestProbaIntoMatchesProba verifies the allocation-free scoring paths are
// bit-identical to the allocating ones for both classifiers.
func TestProbaIntoMatchesProba(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := &Dataset{NumClasses: 3}
	for i := 0; i < 60; i++ {
		var b VectorBuilder
		for j := 0; j < 8; j++ {
			b.AddID(rng.Intn(20))
		}
		v := append(Vector(nil), b.Build()...)
		ds.Add(v, rng.Intn(3))
	}
	lr, err := Train(ds, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	nb := TrainNaiveBayes(ds)
	scorers := []Scorer{lr, nb}
	for si, s := range scorers {
		if s.ClassCount() != 3 {
			t.Fatalf("scorer %d ClassCount = %d", si, s.ClassCount())
		}
		out := make([]float64, 3)
		for i, x := range ds.X {
			s.ProbaInto(x, out)
			var want []float64
			switch m := s.(type) {
			case *Model:
				want = m.Proba(x)
			case *NaiveBayes:
				want = m.Proba(x)
			}
			for k := range want {
				if out[k] != want[k] {
					t.Fatalf("scorer %d example %d class %d: ProbaInto %v != Proba %v", si, i, k, out, want)
				}
			}
		}
	}
}
