package mlr

import (
	"fmt"
	"math"
)

// Model is a trained multinomial logistic-regression classifier. The
// paper's §4.2 formulation pins one reference class; we use the standard
// unpinned softmax parametrization, which defines the same family of
// distributions.
type Model struct {
	NumClasses  int
	NumFeatures int
	// W holds per-class weight rows, flattened: weight of feature j for
	// class k is W[k*NumFeatures+j].
	W []float64
	// B holds per-class intercepts (the paper's βk0).
	B []float64
}

// Scorer is the serving-side contract the classifiers share: score a
// sparse vector into a caller-provided buffer of ClassCount probabilities,
// allocating nothing. Both the logistic-regression Model (the paper's
// classifier) and NaiveBayes (the ablation) implement it, so a compiled
// extraction pipeline serves either.
type Scorer interface {
	ClassCount() int
	ProbaInto(x Vector, out []float64)
}

var (
	_ Scorer = (*Model)(nil)
	_ Scorer = (*NaiveBayes)(nil)
)

// ClassCount returns the number of classes the model scores.
func (m *Model) ClassCount() int { return m.NumClasses }

// ScoresInto writes the raw linear scores (logits) for each class into
// out, which must have length NumClasses. This is the dense-weight fast
// path: no per-call allocation.
//
//ceres:allocfree
func (m *Model) ScoresInto(x Vector, out []float64) {
	for k := 0; k < m.NumClasses; k++ {
		row := m.W[k*m.NumFeatures : (k+1)*m.NumFeatures]
		out[k] = m.B[k] + x.Dot(row)
	}
}

// ProbaInto writes the posterior distribution over classes into out, which
// must have length NumClasses.
//
//ceres:allocfree
func (m *Model) ProbaInto(x Vector, out []float64) {
	m.ScoresInto(x, out)
	softmaxInPlace(out)
}

// TransposedModel is the serve-form of Model: the same classifier with
// its weight matrix stored feature-major, so one pass over a sparse
// vector scores every class at once — per feature, the per-class weights
// are one contiguous read instead of NumClasses strided row accesses.
// Scores are bit-identical to Model's: per class, features accumulate in
// vector order and the intercept joins last, the exact addition sequence
// ScoresInto performs.
type TransposedModel struct {
	classes int
	feats   int
	wt      []float64 // wt[j*classes+k] == W[k*feats+j]
	b       []float64
}

// Transpose builds the feature-major serving form of the model.
func (m *Model) Transpose() *TransposedModel {
	t := &TransposedModel{
		classes: m.NumClasses,
		feats:   m.NumFeatures,
		wt:      make([]float64, m.NumClasses*m.NumFeatures),
		b:       m.B,
	}
	for k := 0; k < m.NumClasses; k++ {
		row := m.W[k*m.NumFeatures : (k+1)*m.NumFeatures]
		for j, w := range row {
			t.wt[j*m.NumClasses+k] = w
		}
	}
	return t
}

// ClassCount returns the number of classes the model scores.
func (t *TransposedModel) ClassCount() int { return t.classes }

// ScoresInto writes the raw linear scores (logits) for each class into
// out, which must have length ClassCount.
//
//ceres:allocfree
func (t *TransposedModel) ScoresInto(x Vector, out []float64) {
	for k := range out {
		out[k] = 0
	}
	C := t.classes
	for _, f := range x {
		if f.Index >= t.feats {
			continue // unseen feature, as Vector.Dot ignores it
		}
		col := t.wt[f.Index*C : f.Index*C+C]
		v := f.Value
		for k, w := range col {
			out[k] += v * w
		}
	}
	for k := range out {
		out[k] += t.b[k]
	}
}

// ProbaInto writes the posterior distribution over classes into out,
// which must have length ClassCount.
//
//ceres:allocfree
func (t *TransposedModel) ProbaInto(x Vector, out []float64) {
	t.ScoresInto(x, out)
	softmaxInPlace(out)
}

var _ Scorer = (*TransposedModel)(nil)

// Scores returns the raw linear scores (logits) for each class.
func (m *Model) Scores(x Vector) []float64 {
	out := make([]float64, m.NumClasses)
	m.ScoresInto(x, out)
	return out
}

// Proba returns the posterior distribution over classes.
func (m *Model) Proba(x Vector) []float64 {
	s := make([]float64, m.NumClasses)
	m.ProbaInto(x, s)
	return s
}

// Predict returns the argmax class and its probability.
func (m *Model) Predict(x Vector) (class int, prob float64) {
	p := m.Proba(x)
	class = 0
	for k, v := range p {
		if v > p[class] {
			class = k
		}
	}
	return class, p[class]
}

// softmaxInPlace converts logits to probabilities with the max-subtraction
// trick for numerical stability.
//
//ceres:allocfree
func softmaxInPlace(s []float64) {
	max := s[0]
	for _, v := range s[1:] {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range s {
		e := math.Exp(v - max)
		s[i] = e
		sum += e
	}
	for i := range s {
		s[i] /= sum
	}
}

// logSumExp returns log Σ exp(s_i), stably.
//
//ceres:allocfree
func logSumExp(s []float64) float64 {
	max := s[0]
	for _, v := range s[1:] {
		if v > max {
			max = v
		}
	}
	var sum float64
	for _, v := range s {
		sum += math.Exp(v - max)
	}
	return max + math.Log(sum)
}

// TrainOptions configures Train.
type TrainOptions struct {
	// L2 is the regularization strength λ applied to weights (not
	// intercepts); scikit-learn's C maps to λ = 1/C, and the paper's C=1
	// is the default λ = 1.
	L2 float64
	// MaxIter bounds optimizer iterations (default 200).
	MaxIter int
	// Tol is the convergence tolerance on the gradient infinity norm
	// (default 1e-5).
	Tol float64
	// Optimizer selects "lbfgs" (default) or "sgd".
	Optimizer string
	// LearningRate and Epochs apply to the SGD optimizer only.
	LearningRate float64
	Epochs       int
	// Seed drives SGD shuffling.
	Seed int64
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.L2 == 0 {
		o.L2 = 1
	}
	if o.MaxIter == 0 {
		o.MaxIter = 200
	}
	if o.Tol == 0 {
		o.Tol = 1e-5
	}
	if o.Optimizer == "" {
		o.Optimizer = "lbfgs"
	}
	if o.LearningRate == 0 {
		o.LearningRate = 0.1
	}
	if o.Epochs == 0 {
		o.Epochs = 50
	}
	return o
}

// Train fits a multinomial logistic-regression model on ds.
func Train(ds *Dataset, opts TrainOptions) (*Model, error) {
	opts = opts.withDefaults()
	if ds.Len() == 0 {
		return nil, fmt.Errorf("mlr: empty dataset")
	}
	if ds.NumClasses < 2 {
		return nil, fmt.Errorf("mlr: need at least 2 classes, have %d", ds.NumClasses)
	}
	for i, y := range ds.Y {
		if y < 0 || y >= ds.NumClasses {
			return nil, fmt.Errorf("mlr: label %d of example %d out of range", y, i)
		}
	}
	m := &Model{
		NumClasses:  ds.NumClasses,
		NumFeatures: ds.NumFeatures(),
	}
	m.W = make([]float64, m.NumClasses*m.NumFeatures)
	m.B = make([]float64, m.NumClasses)
	switch opts.Optimizer {
	case "lbfgs":
		trainLBFGS(m, ds, opts)
	case "sgd":
		trainSGD(m, ds, opts)
	default:
		return nil, fmt.Errorf("mlr: unknown optimizer %q", opts.Optimizer)
	}
	return m, nil
}

// lossGrad computes the regularized negative log-likelihood of the dataset
// under parameters theta = [W | B] and writes the gradient into grad.
func lossGrad(ds *Dataset, numFeatures int, theta, grad []float64, l2 float64) float64 {
	K := ds.NumClasses
	D := numFeatures
	W := theta[:K*D]
	B := theta[K*D:]
	for i := range grad {
		grad[i] = 0
	}
	gW := grad[:K*D]
	gB := grad[K*D:]

	var loss float64
	scores := make([]float64, K)
	for i, x := range ds.X {
		for k := 0; k < K; k++ {
			scores[k] = B[k] + x.Dot(W[k*D:(k+1)*D])
		}
		lse := logSumExp(scores)
		loss += lse - scores[ds.Y[i]]
		for k := 0; k < K; k++ {
			p := math.Exp(scores[k] - lse)
			coeff := p
			if k == ds.Y[i] {
				coeff -= 1
			}
			if coeff == 0 {
				continue
			}
			gB[k] += coeff
			row := gW[k*D : (k+1)*D]
			for _, f := range x {
				row[f.Index] += coeff * f.Value
			}
		}
	}
	// L2 on weights only, matching scikit-learn's unpenalized intercept.
	for j, w := range W {
		loss += 0.5 * l2 * w * w
		gW[j] += l2 * w
	}
	return loss
}

func trainLBFGS(m *Model, ds *Dataset, opts TrainOptions) {
	K, D := m.NumClasses, m.NumFeatures
	theta := make([]float64, K*D+K)
	f := func(x, grad []float64) float64 {
		return lossGrad(ds, D, x, grad, opts.L2)
	}
	res := Minimize(f, theta, LBFGSOptions{MaxIter: opts.MaxIter, Tol: opts.Tol, Memory: 10})
	copy(m.W, res.X[:K*D])
	copy(m.B, res.X[K*D:])
}

// Accuracy returns the fraction of examples the model labels correctly.
func Accuracy(m *Model, ds *Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	correct := 0
	for i, x := range ds.X {
		if c, _ := m.Predict(x); c == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}
