// Package mlr provides the machine-learning substrate of CERES: sparse
// feature vectors over a string-keyed feature dictionary, multinomial
// logistic regression trained with L-BFGS and L2 regularization (the paper
// §4.2 uses scikit-learn's LogisticRegression with the LBFGS optimizer and
// C=1), plus an SGD trainer and a multinomial naive-Bayes classifier used
// by the classifier-choice ablation ("We experimented with several
// classifiers").
package mlr

import "sort"

// Feature is one (index, value) component of a sparse vector.
type Feature struct {
	Index int
	Value float64
}

// Vector is a sparse feature vector with strictly increasing indices.
type Vector []Feature

// NewVector builds a Vector from unordered (index,value) pairs, summing
// duplicates and dropping zeros.
func NewVector(feats []Feature) Vector {
	if len(feats) == 0 {
		return nil
	}
	sorted := make([]Feature, len(feats))
	copy(sorted, feats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })
	return Vector(coalesceSorted(sorted))
}

// coalesceSorted merges duplicate indices (summing their values) and drops
// zero-valued entries from an index-sorted slice, in place.
//
//ceres:allocfree
func coalesceSorted(sorted []Feature) []Feature {
	out := sorted[:0]
	for _, f := range sorted {
		if len(out) > 0 && out[len(out)-1].Index == f.Index {
			out[len(out)-1].Value += f.Value
			continue
		}
		out = append(out, f)
	}
	final := out[:0]
	for _, f := range out {
		if f.Value != 0 {
			final = append(final, f)
		}
	}
	return final
}

// VectorBuilder accumulates (index, value) pairs into a reusable backing
// array and normalizes them into a Vector without allocating per build —
// the serve-path replacement for NewVector's copy-and-sort. A builder is
// owned by one goroutine (one serve worker); the Vector returned by Build
// aliases the builder's backing array and is valid only until the next
// Reset or Add.
type VectorBuilder struct {
	feats []Feature
}

// Reset empties the builder, keeping its capacity.
//
//ceres:allocfree
func (b *VectorBuilder) Reset() { b.feats = b.feats[:0] }

// Len returns the number of accumulated (pre-coalesce) entries.
func (b *VectorBuilder) Len() int { return len(b.feats) }

// Raw returns the accumulated entries in insertion order, before any
// sorting or coalescing. The slice aliases the builder — valid until the
// next Add or Reset. Callers use it to key caches on the emission
// sequence: an identical sequence implies an identical built Vector.
//
//ceres:allocfree
func (b *VectorBuilder) Raw() []Feature { return b.feats }

// Add appends one (index, value) pair.
//
//ceres:allocfree
func (b *VectorBuilder) Add(index int, value float64) {
	b.feats = append(b.feats, Feature{Index: index, Value: value})
}

// AddID appends a binary feature (value 1).
//
//ceres:allocfree
func (b *VectorBuilder) AddID(index int) { b.Add(index, 1) }

// Build sorts, coalesces duplicates and drops zeros in place, returning
// the normalized Vector. Equivalent to NewVector over the same pairs.
//
//ceres:allocfree
func (b *VectorBuilder) Build() Vector {
	if len(b.feats) == 0 {
		return nil
	}
	sortFeatures(b.feats)
	b.feats = coalesceSorted(b.feats)
	return Vector(b.feats)
}

// sortFeatures orders feats by ascending Index. Build runs once per
// classified node, and a generic comparator sort spends a measurable
// share of serve CPU in closure calls; this direct version sorts the
// small, flat Feature pairs without indirection. Entries with equal
// indices end up in unspecified relative order, which coalesceSorted then
// sums — order-independent for the value-1 features the featurizers emit.
//
//ceres:allocfree
func sortFeatures(f []Feature) {
	for len(f) > 24 {
		lo, hi, mid := 0, len(f)-1, len(f)/2
		if f[mid].Index < f[lo].Index {
			f[mid], f[lo] = f[lo], f[mid]
		}
		if f[hi].Index < f[lo].Index {
			f[hi], f[lo] = f[lo], f[hi]
		}
		if f[hi].Index < f[mid].Index {
			f[hi], f[mid] = f[mid], f[hi]
		}
		pivot := f[mid].Index
		i, j := lo, hi
		for i <= j {
			for f[i].Index < pivot {
				i++
			}
			for f[j].Index > pivot {
				j--
			}
			if i <= j {
				f[i], f[j] = f[j], f[i]
				i++
				j--
			}
		}
		// Recurse into the smaller half, loop on the larger: stack depth
		// stays logarithmic regardless of pivot quality.
		if j+1 < len(f)-i {
			sortFeatures(f[:j+1])
			f = f[i:]
		} else {
			sortFeatures(f[i:])
			f = f[:j+1]
		}
	}
	for i := 1; i < len(f); i++ {
		for k := i; k > 0 && f[k].Index < f[k-1].Index; k-- {
			f[k], f[k-1] = f[k-1], f[k]
		}
	}
}

// Dot returns the dot product with a dense weight slice. Indices beyond
// len(w) are ignored, so models can score vectors with unseen features.
//
//ceres:allocfree
func (v Vector) Dot(w []float64) float64 {
	var s float64
	for _, f := range v {
		if f.Index < len(w) {
			s += f.Value * w[f.Index]
		}
	}
	return s
}

// MaxIndex returns the largest feature index, or -1 for an empty vector.
//
//ceres:allocfree
func (v Vector) MaxIndex() int {
	if len(v) == 0 {
		return -1
	}
	return v[len(v)-1].Index
}

// Dict maps feature names to dense indices. A frozen Dict returns -1 for
// unseen names instead of growing, which is how extraction-time featurizing
// avoids polluting the training feature space.
type Dict struct {
	byName map[string]int
	names  []string
	frozen bool
}

// NewDict creates an empty feature dictionary.
func NewDict() *Dict {
	return &Dict{byName: make(map[string]int)}
}

// ID returns the index for name, assigning the next free index if the
// dictionary is not frozen. Frozen dictionaries return -1 for new names.
func (d *Dict) ID(name string) int {
	if id, ok := d.byName[name]; ok {
		return id
	}
	if d.frozen {
		return -1
	}
	id := len(d.names)
	d.byName[name] = id
	d.names = append(d.names, name)
	return id
}

// Lookup returns the index for name without ever growing the dictionary.
func (d *Dict) Lookup(name string) (int, bool) {
	id, ok := d.byName[name]
	return id, ok
}

// Name returns the feature name for an index.
func (d *Dict) Name(id int) string {
	if id < 0 || id >= len(d.names) {
		return ""
	}
	return d.names[id]
}

// Len returns the number of registered features.
func (d *Dict) Len() int { return len(d.names) }

// Freeze stops the dictionary from growing.
func (d *Dict) Freeze() { d.frozen = true }

// Frozen reports whether the dictionary has stopped growing.
func (d *Dict) Frozen() bool { return d.frozen }

// Dataset is a labelled training set. Labels are class indices in
// [0, NumClasses).
type Dataset struct {
	X          []Vector
	Y          []int
	NumClasses int
}

// NumFeatures returns one more than the largest feature index in X.
func (ds *Dataset) NumFeatures() int {
	max := -1
	for _, x := range ds.X {
		if m := x.MaxIndex(); m > max {
			max = m
		}
	}
	return max + 1
}

// Add appends one labelled example.
func (ds *Dataset) Add(x Vector, y int) {
	ds.X = append(ds.X, x)
	ds.Y = append(ds.Y, y)
	if y >= ds.NumClasses {
		ds.NumClasses = y + 1
	}
}

// Len returns the number of examples.
func (ds *Dataset) Len() int { return len(ds.X) }
