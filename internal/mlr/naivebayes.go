package mlr

import "math"

// NaiveBayes is a multinomial naive-Bayes classifier over sparse binary
// features, with Laplace smoothing. It participates in the
// classifier-choice ablation (§4.2: "We experimented with several
// classifiers, but ultimately found the best results by modeling ... as a
// multinomial logistic regression problem").
type NaiveBayes struct {
	NumClasses  int
	NumFeatures int
	logPrior    []float64
	// logProb[k*NumFeatures+j] is log P(feature j present | class k).
	logProb []float64
	// logAbsent[k] is Σ_j log P(feature j absent | class k), so scoring a
	// sparse vector costs O(nnz) instead of O(D).
	logAbsent []float64
	// logProbAbsent[k*NumFeatures+j] caches log P(feature j absent | k).
	logProbAbsent []float64
}

// TrainNaiveBayes fits the classifier with add-one smoothing.
func TrainNaiveBayes(ds *Dataset) *NaiveBayes {
	K := ds.NumClasses
	D := ds.NumFeatures()
	nb := &NaiveBayes{
		NumClasses:    K,
		NumFeatures:   D,
		logPrior:      make([]float64, K),
		logProb:       make([]float64, K*D),
		logAbsent:     make([]float64, K),
		logProbAbsent: make([]float64, K*D),
	}
	classCount := make([]float64, K)
	featCount := make([]float64, K*D)
	for i, x := range ds.X {
		k := ds.Y[i]
		classCount[k]++
		for _, f := range x {
			if f.Value != 0 {
				featCount[k*D+f.Index]++
			}
		}
	}
	total := float64(ds.Len())
	for k := 0; k < K; k++ {
		nb.logPrior[k] = math.Log((classCount[k] + 1) / (total + float64(K)))
		for j := 0; j < D; j++ {
			p := (featCount[k*D+j] + 1) / (classCount[k] + 2)
			nb.logProb[k*D+j] = math.Log(p)
			nb.logProbAbsent[k*D+j] = math.Log(1 - p)
			nb.logAbsent[k] += math.Log(1 - p)
		}
	}
	return nb
}

// ClassCount returns the number of classes the classifier scores.
func (nb *NaiveBayes) ClassCount() int { return nb.NumClasses }

// ProbaInto writes the posterior distribution over classes for x into s,
// which must have length NumClasses. No per-call allocation.
//
//ceres:allocfree
func (nb *NaiveBayes) ProbaInto(x Vector, s []float64) {
	for k := 0; k < nb.NumClasses; k++ {
		s[k] = nb.logPrior[k] + nb.logAbsent[k]
		for _, f := range x {
			if f.Value == 0 || f.Index >= nb.NumFeatures {
				continue
			}
			s[k] += nb.logProb[k*nb.NumFeatures+f.Index] - nb.logProbAbsent[k*nb.NumFeatures+f.Index]
		}
	}
	softmaxInPlace(s)
}

// Proba returns the posterior distribution over classes for x.
func (nb *NaiveBayes) Proba(x Vector) []float64 {
	s := make([]float64, nb.NumClasses)
	nb.ProbaInto(x, s)
	return s
}

// Predict returns the argmax class and its posterior probability.
func (nb *NaiveBayes) Predict(x Vector) (int, float64) {
	p := nb.Proba(x)
	best := 0
	for k, v := range p {
		if v > p[best] {
			best = k
		}
	}
	return best, p[best]
}
