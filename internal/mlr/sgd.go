package mlr

import "math/rand"

// trainSGD fits the model with mini-batch-free stochastic gradient descent
// and inverse-scaling learning-rate decay. It exists for the optimizer
// ablation; L-BFGS is the paper-faithful default.
func trainSGD(m *Model, ds *Dataset, opts TrainOptions) {
	K, D := m.NumClasses, m.NumFeatures
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	order := make([]int, ds.Len())
	for i := range order {
		order[i] = i
	}
	scores := make([]float64, K)
	n := float64(ds.Len())
	t := 0.0
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			t++
			lr := opts.LearningRate / (1 + opts.LearningRate*opts.L2*t/n)
			x := ds.X[i]
			for k := 0; k < K; k++ {
				scores[k] = m.B[k] + x.Dot(m.W[k*D:(k+1)*D])
			}
			softmaxInPlace(scores)
			for k := 0; k < K; k++ {
				coeff := scores[k]
				if k == ds.Y[i] {
					coeff -= 1
				}
				m.B[k] -= lr * coeff
				if coeff == 0 {
					continue
				}
				row := m.W[k*D : (k+1)*D]
				for _, f := range x {
					// Gradient of the per-example loss plus the 1/n share
					// of the L2 term touching this feature.
					row[f.Index] -= lr * (coeff*f.Value + opts.L2*row[f.Index]/n)
				}
			}
		}
	}
}
