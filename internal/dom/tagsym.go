package dom

import (
	"sync"
	"sync/atomic"
)

// maxTagSyms bounds the process-wide tag symbol table. HTML permits
// arbitrary tag names, so adversarial input could otherwise grow the
// table without limit; past the cap new tags simply get symbol 0
// (unsymbolized) and consumers fall back to string keys.
const maxTagSyms = 4096

var (
	tagSymMu  sync.Mutex
	tagSymTab atomic.Pointer[map[string]int32]
)

// TagSym returns the process-wide symbol (≥ 1) for an element tag name,
// assigning the next free symbol on first sight, or 0 once the symbol
// space is exhausted. Symbols are stable for the life of the process —
// never reused, never reordered — so any table indexed by symbol stays
// valid. Reads are lock-free (one atomic load); assignment copies the
// table, so the write cost is paid at most maxTagSyms times ever.
func TagSym(tag string) int32 {
	if m := tagSymTab.Load(); m != nil {
		if s, ok := (*m)[tag]; ok {
			return s
		}
	}
	tagSymMu.Lock()
	defer tagSymMu.Unlock()
	old := tagSymTab.Load()
	var m map[string]int32
	if old != nil {
		if s, ok := (*old)[tag]; ok {
			return s
		}
		if len(*old) >= maxTagSyms {
			return 0
		}
		m = make(map[string]int32, len(*old)+1)
		for k, v := range *old {
			m[k] = v
		}
	} else {
		m = make(map[string]int32, 64)
	}
	s := int32(len(m) + 1)
	m[tag] = s
	tagSymTab.Store(&m)
	return s
}

// TagSymbol returns the node's interned tag symbol, or 0 for non-element
// nodes and trees built outside Parse (hand-constructed test trees carry
// no symbols; consumers must fall back to Tag).
func (n *Node) TagSymbol() int32 { return n.sym }
