package dom

import "strings"

// Render serializes the tree rooted at n back to HTML. Text is re-escaped,
// so Parse(Render(Parse(src))) is structurally identical to Parse(src) —
// a property the test suite checks. Raw-text element content is emitted
// verbatim.
func Render(n *Node) string {
	var b strings.Builder
	render(&b, n)
	return b.String()
}

func render(b *strings.Builder, n *Node) {
	switch n.Type {
	case DocumentNode:
		for _, c := range n.Children {
			render(b, c)
		}
	case CommentNode:
		b.WriteString("<!--")
		b.WriteString(n.Data)
		b.WriteString("-->")
	case TextNode:
		if n.Parent != nil && rawTextTags[n.Parent.Tag] {
			b.WriteString(n.Data)
			return
		}
		b.WriteString(EscapeText(n.Data))
	case ElementNode:
		b.WriteByte('<')
		b.WriteString(n.Tag)
		for _, a := range n.Attrs {
			b.WriteByte(' ')
			b.WriteString(a.Key)
			b.WriteString(`="`)
			b.WriteString(escapeAttr(a.Val))
			b.WriteByte('"')
		}
		b.WriteByte('>')
		if voidTags[n.Tag] {
			return
		}
		for _, c := range n.Children {
			render(b, c)
		}
		b.WriteString("</")
		b.WriteString(n.Tag)
		b.WriteByte('>')
	}
}

// EscapeText escapes the characters that would be re-tokenized as markup.
func EscapeText(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}

func escapeAttr(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, `"`, "&quot;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	return s
}
