package dom

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanicsOnRandomInput throws arbitrary byte soup at the
// parser: web extraction must survive whatever the crawl returns.
func TestParseNeverPanicsOnRandomInput(t *testing.T) {
	f := func(s string) bool {
		doc := Parse(s)
		if doc == nil {
			return false
		}
		// The tree must be well-formed: parent pointers consistent.
		ok := true
		doc.Walk(func(n *Node) bool {
			for _, c := range n.Children {
				if c.Parent != n {
					ok = false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestParseNeverPanicsOnMarkupSoup mixes tag fragments for denser
// coverage of the tokenizer's paths than uniform random strings give.
func TestParseNeverPanicsOnMarkupSoup(t *testing.T) {
	pieces := []string{
		"<div>", "</div>", "<p", ">", "<a href='", "'", "x", "&amp;", "&",
		"<!--", "-->", "<!", "<script>", "</script>", "<li>", "=", `"`,
		"<td", " class=", "<input/>", "</", "<", "text ", "&#65;", "&#x;",
		"<DIV CLASS=UP>", "\x00", "é", "<br>", "<tr>", "<table>", "\n",
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		var b strings.Builder
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			b.WriteString(pieces[rng.Intn(len(pieces))])
		}
		src := b.String()
		doc := Parse(src) // must not panic or hang
		// Round-trip stability on whatever tree resulted.
		again := Parse(Render(doc))
		if len(TextFields(doc)) != len(TextFields(again)) {
			t.Fatalf("text fields unstable for %q", src)
		}
	}
}

// TestXPathsUniqueWithinDocument: no two nodes of a parsed page may share
// an absolute XPath.
func TestXPathsUniqueWithinDocument(t *testing.T) {
	doc := Parse(samplePage)
	seen := map[string]bool{}
	doc.Walk(func(n *Node) bool {
		if n.Type == DocumentNode {
			return true
		}
		p := n.XPath()
		if seen[p] {
			t.Errorf("duplicate XPath %q", p)
		}
		seen[p] = true
		return true
	})
}

// TestDeepNesting guards the recursive walkers against stack abuse from
// pathological nesting depth.
func TestDeepNesting(t *testing.T) {
	depth := 2000
	src := strings.Repeat("<div>", depth) + "x" + strings.Repeat("</div>", depth)
	doc := Parse(src)
	if got := doc.Text(); got != "x" {
		t.Fatalf("deep text = %q", got)
	}
	fields := TextFields(doc)
	if len(fields) != 1 {
		t.Fatalf("deep fields = %d", len(fields))
	}
	if fields[0].Depth() != depth+1 { // +1 for the document root
		t.Errorf("depth = %d, want %d", fields[0].Depth(), depth+1)
	}
	// XPath generation on the deep node must work too.
	if !strings.HasSuffix(fields[0].XPath(), "/div[1]/text()[1]") {
		t.Errorf("deep xpath suffix wrong")
	}
}

// TestHugeFlatDocument exercises wide (many-sibling) pages.
func TestHugeFlatDocument(t *testing.T) {
	var b strings.Builder
	b.WriteString("<html><body><ul>")
	for i := 0; i < 5000; i++ {
		b.WriteString("<li><a>item</a></li>")
	}
	b.WriteString("</ul></body></html>")
	doc := Parse(b.String())
	lis := doc.FindAll("li")
	if len(lis) != 5000 {
		t.Fatalf("want 5000 li, got %d", len(lis))
	}
	if lis[4999].SiblingIndex() != 5000 {
		t.Errorf("last sibling index = %d", lis[4999].SiblingIndex())
	}
}
