package dom

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// This file implements the streaming zero-DOM serve path (DESIGN.md §11).
// Stream tokenizes a page once, maintaining only the open-element stack,
// and records per element exactly the structural context serve-time
// featurization consumes — interned tag symbol, parent link, element index,
// same-tag XPath ordinal, the configured attribute values, and bounded
// own/subtree text — plus every non-empty text field, without allocating a
// single dom.Node. The records are flat int32 structs in reusable arenas,
// so a steady-state serve worker streams pages with no per-page
// allocation. Output is bit-identical to Parse + TextFields + the
// finalized-tree accessors; the differential tests in stream_test.go and
// the root package enforce that.

// streamMaxAttrs bounds how many attribute keys a stream can capture per
// element (the serve path needs the five structuralAttrs).
const streamMaxAttrs = 6

// StreamOptions configures one streaming pass.
type StreamOptions struct {
	// MaxText bounds the captured own/subtree text per element — the
	// serve path passes the longest frequent-string key, since longer
	// text can never match the lexicon. Text beyond the bound is marked
	// overflowed and fails probes, exactly like Node.TextWithin.
	MaxText int
	// Attrs lists the lowercase attribute keys to capture per element
	// (first occurrence wins, like Node.Attr). At most streamMaxAttrs.
	Attrs []string
	// Signature collects a cluster-routing signature key per element as
	// tags open (see StreamPage.AppendSignature).
	Signature bool
}

// streamElem is the flat record of one element: everything the compiled
// featurizer reads about a context node. parent is an element record
// index; record 0 is the synthetic document, whose parent is -1.
type streamElem struct {
	parent    int32
	nameID    int32
	elemIndex int32 // index among parent's element children
	ordinal   int32 // 1-based same-tag XPath ordinal (set by index())
	attrOff   [streamMaxAttrs]int32
	attrLen   [streamMaxAttrs]int32
	ownOff    int32
	ownLen    int32
	subOff    int32
	subLen    int32
	flags     uint8
}

const (
	elemOwnOverflow uint8 = 1 << iota // own text exceeds MaxText
	elemSubOverflow                   // subtree text exceeds MaxText
)

// streamField is one non-empty text field: its parent element record, its
// 1-based text() XPath ordinal, and its collapsed text span.
type streamField struct {
	parent  int32
	ordinal int32
	off     int32
	len     int32
}

// nameInfo is the per-tag intern record: the canonical lowercase name, its
// process-wide symbol, and the parse-rule flags the main loop consults, so
// the hot path never probes the rule maps with freshly built strings.
type nameInfo struct {
	name    string
	sym     int32
	void    bool
	raw     bool
	block   bool
	closers map[string]bool
}

// streamFrame is one open element on the stack. own/sub accumulate the
// frame's bounded text context; the buffers are retained per stack slot
// across pages.
type streamFrame struct {
	rec       int32
	nameID    int32
	textCount int32
	elemKids  int32
	own       []byte
	sub       []byte
	ownOver   bool
	subOver   bool
}

// StreamScratch owns the reusable storage behind streaming passes: the
// tag intern table (which persists across pages — template sites reuse a
// handful of tags) and the per-page record arenas. A scratch serves one
// goroutine at a time.
type StreamScratch struct {
	names   []nameInfo
	nameIDs map[string]int32
	page    StreamPage
}

// NewStreamScratch returns an empty scratch; its arenas grow to the
// largest page streamed and are then reused.
func NewStreamScratch() *StreamScratch {
	sc := &StreamScratch{nameIDs: make(map[string]int32, 64)}
	sc.page.sc = sc
	return sc
}

// intern resolves a lowercase tag name to its scratch-local ID, assigning
// one (and the process-wide symbol) on first sight. The hit path is a
// single map probe with no copy.
func (sc *StreamScratch) intern(b []byte) int32 {
	if id, ok := sc.nameIDs[string(b)]; ok {
		return id
	}
	s := string(b)
	id := int32(len(sc.names))
	sc.names = append(sc.names, nameInfo{
		name:    s,
		sym:     TagSym(s),
		void:    voidTags[s],
		raw:     rawTextTags[s],
		block:   blockTags[s],
		closers: autoClose[s],
	})
	sc.nameIDs[s] = id
	return id
}

// StreamPage is the result of one streaming pass: flat element and field
// records over shared arenas. It is a view into its scratch, valid only
// until the next Stream call on the same scratch; strings must be copied
// out to outlive it.
type StreamPage struct {
	sc     *StreamScratch
	elems  []streamElem
	fields []streamField

	textArena []byte
	attrArena []byte
	sigArena  []byte
	sigOff    []int32
	sigLen    []int32

	childStart []int32
	childList  []int32
	childPos   []int32

	frames     []streamFrame
	pending    []byte
	pendingOn  bool
	pendingOrd int32
	pieceBuf   []byte
	rawBuf     []byte
	tagBuf     []byte
	xstack     []int32
	ordEpoch   []int32
	ordCount   []int32

	opts     StreamOptions
	classIdx int
	maxText  int
	pID      int32
}

var pTagBytes = []byte("p")

// Stream tokenizes src in a single pass and returns the page's streaming
// records. The returned page aliases the scratch and src; both must stay
// untouched while the page is in use.
func (sc *StreamScratch) Stream(src []byte, opts StreamOptions) *StreamPage {
	p := &sc.page
	p.reset(opts)
	p.run(src)
	return p
}

func (p *StreamPage) reset(opts StreamOptions) {
	if len(opts.Attrs) > streamMaxAttrs {
		panic(fmt.Sprintf("dom: StreamOptions.Attrs holds %d keys; max %d", len(opts.Attrs), streamMaxAttrs))
	}
	p.opts = opts
	p.maxText = opts.MaxText
	p.classIdx = -1
	for i, a := range opts.Attrs {
		if a == "class" {
			p.classIdx = i
			break
		}
	}
	p.elems = p.elems[:0]
	p.fields = p.fields[:0]
	p.textArena = p.textArena[:0]
	p.attrArena = p.attrArena[:0]
	p.sigArena = p.sigArena[:0]
	p.sigOff = p.sigOff[:0]
	p.sigLen = p.sigLen[:0]
	p.frames = p.frames[:0]
	p.pendingOn = false
	p.pID = p.sc.intern(pTagBytes)
	// Record 0 is the synthetic document; its frame never accumulates
	// text context (the document is never probed as a sibling), so both
	// buffers start overflowed and propagation skips them.
	p.elems = append(p.elems, streamElem{parent: -1, nameID: -1})
	p.push(0, -1)
	p.frames[0].ownOver, p.frames[0].subOver = true, true
}

var commentClose = []byte("-->")

// run is the single forward pass: the byte-level twin of tokenizer.next +
// Parse's tree-building loop, with stack pops, implied end tags and text
// merging mirrored exactly.
//
//ceres:allocfree
func (p *StreamPage) run(src []byte) {
	pos := 0
	for pos < len(src) {
		if src[pos] != '<' {
			start := pos
			for pos < len(src) && src[pos] != '<' {
				pos++
			}
			p.textAppend(src[start:pos])
			continue
		}
		rest := src[pos:]
		switch {
		case hasPrefixBytes(rest, "<!--"):
			pos += 4
			if end := bytes.Index(src[pos:], commentClose); end < 0 {
				pos = len(src)
			} else {
				pos += end + 3
			}
			// A comment node is appended, ending any open text run.
			p.finalizePending()
		case hasPrefixBytes(rest, "<!"):
			pos += 2
			if end := bytes.IndexByte(src[pos:], '>'); end < 0 {
				pos = len(src)
			} else {
				pos += end + 1
			}
			// Doctype appends nothing: an open text run stays open.
		case hasPrefixBytes(rest, "</"):
			pos = p.endTag(src, pos+2)
		case len(rest) > 1 && isTagNameStart(rest[1]):
			pos = p.startTag(src, pos)
		default:
			// A lone '<' that does not open a tag is literal text.
			p.textAppendByte('<')
			pos++
		}
	}
	p.finalizePending()
	for len(p.frames) > 1 {
		p.closeFrame()
	}
	p.index()
}

//ceres:allocfree
func hasPrefixBytes(b []byte, s string) bool {
	return len(b) >= len(s) && eqBytesString(b[:len(s)], s)
}

// textAppend starts a text run if none is open — claiming the run's
// text() ordinal, which depends only on preceding siblings — and appends
// the decoded bytes. Adjacent runs merge exactly like Parse's adjacent
// text nodes: only an appended child (element, comment) or a stack pop
// closes a run.
//
//ceres:allocfree
func (p *StreamPage) textAppend(raw []byte) {
	if !p.pendingOn {
		p.startPending()
	}
	p.pending = appendDecodeEntities(p.pending, raw)
}

//ceres:allocfree
func (p *StreamPage) textAppendByte(c byte) {
	if !p.pendingOn {
		p.startPending()
	}
	p.pending = append(p.pending, c)
}

//ceres:allocfree
func (p *StreamPage) startPending() {
	p.pendingOn = true
	top := &p.frames[len(p.frames)-1]
	top.textCount++
	p.pendingOrd = top.textCount
	p.pending = p.pending[:0]
}

// finalizePending completes the open text run: collapse once (merged runs
// collapse as a unit, matching Node.Text on merged Data), record a field
// if non-empty, and propagate the piece into the open frames' bounded
// text context.
//
//ceres:allocfree
func (p *StreamPage) finalizePending() {
	if !p.pendingOn {
		return
	}
	p.pendingOn = false
	off := int32(len(p.textArena))
	p.textArena = appendCollapse(p.textArena, p.pending)
	n := int32(len(p.textArena)) - off
	if n == 0 {
		return
	}
	top := &p.frames[len(p.frames)-1]
	p.fields = append(p.fields, streamField{parent: top.rec, ordinal: p.pendingOrd, off: off, len: n})
	p.propagate(p.textArena[off:off+n], int(n) > p.maxText, true)
}

// propagate folds one completed text piece into the open frames' bounded
// text accumulators: the top frame's own text when the piece is a direct
// child (direct), and every open frame's subtree text. Outer frames hold
// supersets of inner ones, so overflow is monotone outward and the walk
// stops at the first overflowed frame.
//
//ceres:allocfree
func (p *StreamPage) propagate(piece []byte, over bool, direct bool) {
	top := &p.frames[len(p.frames)-1]
	if direct && !top.ownOver {
		top.own, top.ownOver = appendJoinBounded(top.own, piece, over, p.maxText)
	}
	for i := len(p.frames) - 1; i >= 0; i-- {
		f := &p.frames[i]
		if f.subOver {
			break
		}
		f.sub, f.subOver = appendJoinBounded(f.sub, piece, over, p.maxText)
	}
}

// appendJoinBounded joins piece onto dst with a single space — the
// joinChildText rule — failing once the joined length would exceed max
// (Node.TextWithin's bound: the full text must fit).
//
//ceres:allocfree
func appendJoinBounded(dst []byte, piece []byte, pieceOver bool, max int) ([]byte, bool) {
	if pieceOver {
		return dst, true
	}
	if len(piece) == 0 {
		return dst, false
	}
	need := len(piece)
	if len(dst) > 0 {
		need++
	}
	if len(dst)+need > max {
		return dst, true
	}
	if len(dst) > 0 {
		dst = append(dst, ' ')
	}
	return append(dst, piece...), false
}

// push opens a frame for an element record, reusing the slot's buffers.
//
//ceres:allocfree
func (p *StreamPage) push(rec, nameID int32) {
	if len(p.frames) < cap(p.frames) {
		p.frames = p.frames[:len(p.frames)+1]
	} else {
		p.frames = append(p.frames, streamFrame{})
	}
	f := &p.frames[len(p.frames)-1]
	f.rec, f.nameID = rec, nameID
	f.textCount, f.elemKids = 0, 0
	f.own, f.sub = f.own[:0], f.sub[:0]
	f.ownOver, f.subOver = false, false
}

// closeFrame pops the top frame, committing its accumulated text context
// to the element record.
//
//ceres:allocfree
func (p *StreamPage) closeFrame() {
	f := &p.frames[len(p.frames)-1]
	e := &p.elems[f.rec]
	if n := len(f.own); n > 0 {
		e.ownOff, e.ownLen = int32(len(p.textArena)), int32(n)
		p.textArena = append(p.textArena, f.own...)
	}
	if f.ownOver {
		e.flags |= elemOwnOverflow
	}
	if n := len(f.sub); n > 0 {
		e.subOff, e.subLen = int32(len(p.textArena)), int32(n)
		p.textArena = append(p.textArena, f.sub...)
	}
	if f.subOver {
		e.flags |= elemSubOverflow
	}
	p.frames = p.frames[:len(p.frames)-1]
}

// endTag handles "</...": pop to the nearest matching open element, or
// ignore the stray end tag — in which case an open text run stays open,
// since Parse appends nothing for it.
//
//ceres:allocfree
func (p *StreamPage) endTag(src []byte, pos int) int {
	start := pos
	for pos < len(src) && src[pos] != '>' {
		pos++
	}
	raw := src[start:pos]
	if pos < len(src) {
		pos++ // consume '>'
	}
	// Fast path: a well-formed lowercase end tag matching the open
	// element — the overwhelming majority — needs no trim, no case fold
	// and no stack scan.
	if top := len(p.frames) - 1; top >= 1 && eqBytesString(raw, p.sc.names[p.frames[top].nameID].name) {
		p.finalizePending()
		p.closeFrame()
		return pos
	}
	p.tagBuf = appendLowerFold(p.tagBuf[:0], bytes.TrimSpace(raw))
	for i := len(p.frames) - 1; i >= 1; i-- {
		if eqBytesString(p.tagBuf, p.sc.names[p.frames[i].nameID].name) {
			p.finalizePending()
			for len(p.frames) > i {
				p.closeFrame()
			}
			break
		}
	}
	return pos
}

//ceres:allocfree
func skipSpaceBytes(src []byte, pos int) int {
	for pos < len(src) {
		switch src[pos] {
		case ' ', '\t', '\n', '\r', '\f':
			pos++
		default:
			return pos
		}
	}
	return pos
}

// startTag scans one start tag — name, attributes, self-closing syntax —
// then applies Parse's tree actions: implied end tags, the element
// record, and void/raw-text/push handling.
func (p *StreamPage) startTag(src []byte, pos int) int {
	pos++ // consume '<'
	start := pos
	for pos < len(src) && isNameByte(src[pos]) {
		pos++
	}
	p.tagBuf = appendLowerFold(p.tagBuf[:0], src[start:pos])
	nameID := p.sc.intern(p.tagBuf)
	info := &p.sc.names[nameID]

	var aOff, aLen [streamMaxAttrs]int32
	for i := range aOff {
		aOff[i] = -1
	}
	selfClosing := false
loop:
	for {
		pos = skipSpaceBytes(src, pos)
		if pos >= len(src) {
			break
		}
		switch src[pos] {
		case '>':
			pos++
			break loop
		case '/':
			pos++
			pos = skipSpaceBytes(src, pos)
			if pos < len(src) && src[pos] == '>' {
				pos++
			}
			selfClosing = true
			break loop
		default:
			kstart := pos
			for pos < len(src) && isNameByte(src[pos]) {
				pos++
			}
			if pos == kstart {
				pos++ // malformed byte; skip it to guarantee progress
				continue
			}
			key := src[kstart:pos]
			pos = skipSpaceBytes(src, pos)
			var rawVal []byte
			if pos < len(src) && src[pos] == '=' {
				pos++
				pos = skipSpaceBytes(src, pos)
				if pos < len(src) {
					if q := src[pos]; q == '"' || q == '\'' {
						pos++
						vstart := pos
						for pos < len(src) && src[pos] != q {
							pos++
						}
						rawVal = src[vstart:pos]
						if pos < len(src) {
							pos++ // closing quote
						}
					} else {
						vstart := pos
						for pos < len(src) && !isSpaceByte(src[pos]) && src[pos] != '>' {
							pos++
						}
						rawVal = src[vstart:pos]
					}
				}
			}
			for i, a := range p.opts.Attrs {
				if aOff[i] >= 0 || !foldEqBytesASCII(key, a) {
					continue
				}
				off := int32(len(p.attrArena))
				p.attrArena = appendDecodeEntities(p.attrArena, rawVal)
				aOff[i] = off
				aLen[i] = int32(len(p.attrArena)) - off
				break
			}
		}
	}

	// The element (or the pops it implies) is appended, ending any open
	// text run.
	p.finalizePending()
	if !selfClosing {
		// Implied end tags: self-closing tokens skip these, like Parse.
		if info.closers != nil {
			for len(p.frames) > 1 {
				top := &p.frames[len(p.frames)-1]
				if !info.closers[p.sc.names[top.nameID].name] {
					break
				}
				p.closeFrame()
			}
		}
		if info.block {
			if len(p.frames) > 1 && p.frames[len(p.frames)-1].nameID == p.pID {
				p.closeFrame()
			}
		}
	}

	top := &p.frames[len(p.frames)-1]
	rec := int32(len(p.elems))
	p.elems = append(p.elems, streamElem{
		parent:    top.rec,
		nameID:    nameID,
		elemIndex: top.elemKids,
		attrOff:   aOff,
		attrLen:   aLen,
	})
	top.elemKids++
	if p.opts.Signature {
		p.signatureKey(rec)
	}
	switch {
	case selfClosing:
		// Appended only: no children, no raw-text scan.
	case info.void:
		// Void elements never push.
	case info.raw:
		pos = p.rawText(src, pos, rec, info)
	default:
		p.push(rec, nameID)
	}
	return pos
}

// signatureKey appends the element's cluster-routing key: the last three
// ancestor-or-self tags joined by '/', plus ".class" when a non-empty
// class attribute is present — cluster.signatureKey over records.
//
//ceres:allocfree
func (p *StreamPage) signatureKey(rec int32) {
	e := &p.elems[rec]
	off := int32(len(p.sigArena))
	if par := e.parent; par != 0 {
		if gp := p.elems[par].parent; gp != 0 {
			p.sigArena = append(p.sigArena, p.sc.names[p.elems[gp].nameID].name...)
			p.sigArena = append(p.sigArena, '/')
		}
		p.sigArena = append(p.sigArena, p.sc.names[p.elems[par].nameID].name...)
		p.sigArena = append(p.sigArena, '/')
	}
	p.sigArena = append(p.sigArena, p.sc.names[e.nameID].name...)
	if p.classIdx >= 0 {
		if o, n := e.attrOff[p.classIdx], e.attrLen[p.classIdx]; o >= 0 && n > 0 {
			p.sigArena = append(p.sigArena, '.')
			p.sigArena = append(p.sigArena, p.attrArena[o:o+n]...)
		}
	}
	p.sigOff = append(p.sigOff, off)
	p.sigLen = append(p.sigLen, int32(len(p.sigArena))-off)
}

// rawText consumes a raw-text element's content. The element was recorded
// but never pushed; its single text child contributes to ancestors' text
// context, and — for <title> only — yields a field (TextFields excludes
// script, style and textarea subtrees, not title).
func (p *StreamPage) rawText(src []byte, pos int, rec int32, info *nameInfo) int {
	var raw []byte
	end := indexClosingTagBytes(src[pos:], info.name)
	if end < 0 {
		raw = src[pos:]
		pos = len(src)
	} else {
		raw = src[pos : pos+end]
		pos += end
		// Consume "</tag" then skip to '>' inclusive.
		if gt := bytes.IndexByte(src[pos:], '>'); gt >= 0 {
			pos += gt + 1
		} else {
			pos = len(src)
		}
	}
	if len(raw) == 0 {
		return pos
	}
	data := raw
	if info.name == "title" || info.name == "textarea" {
		p.rawBuf = appendDecodeEntities(p.rawBuf[:0], raw)
		data = p.rawBuf
	}
	e := &p.elems[rec]
	if info.name == "title" {
		// A field needs the full collapsed text, not the bounded form.
		off := int32(len(p.textArena))
		p.textArena = appendCollapse(p.textArena, data)
		n := int32(len(p.textArena)) - off
		if n == 0 {
			return pos
		}
		p.fields = append(p.fields, streamField{parent: rec, ordinal: 1, off: off, len: n})
		e.ownOff, e.ownLen = off, n
		e.subOff, e.subLen = off, n
		over := int(n) > p.maxText
		if over {
			e.flags |= elemOwnOverflow | elemSubOverflow
		}
		p.propagate(p.textArena[off:off+n], over, false)
		return pos
	}
	piece, over := appendCollapseBounded(p.pieceBuf[:0], data, p.maxText)
	p.pieceBuf = piece
	if len(piece) == 0 && !over {
		return pos
	}
	if n := int32(len(piece)); n > 0 {
		e.ownOff, e.ownLen = int32(len(p.textArena)), n
		e.subOff, e.subLen = int32(len(p.textArena)), n
		p.textArena = append(p.textArena, piece...)
	}
	if over {
		e.flags |= elemOwnOverflow | elemSubOverflow
	}
	p.propagate(piece, over, false)
	return pos
}

// index builds the post-pass structures: per-parent element-children
// lists (a counting sort over the parent links, preserving document
// order) and the same-tag XPath ordinals.
//
//ceres:allocfree
func (p *StreamPage) index() {
	n := len(p.elems)
	p.childStart = growInt32(p.childStart, n+1)
	clear(p.childStart)
	for i := 1; i < n; i++ {
		p.childStart[p.elems[i].parent+1]++
	}
	for r := 1; r <= n; r++ {
		p.childStart[r] += p.childStart[r-1]
	}
	p.childList = growInt32(p.childList, n-1)
	p.childPos = growInt32(p.childPos, n)
	copy(p.childPos, p.childStart[:n])
	for i := 1; i < n; i++ {
		par := p.elems[i].parent
		p.childList[p.childPos[par]] = int32(i)
		p.childPos[par]++
	}

	names := len(p.sc.names)
	p.ordEpoch = growInt32(p.ordEpoch, names)
	p.ordCount = growInt32(p.ordCount, names)
	clear(p.ordEpoch)
	epoch := int32(0)
	for r := 0; r < n; r++ {
		kids := p.childList[p.childStart[r]:p.childStart[r+1]]
		if len(kids) == 0 {
			continue
		}
		epoch++
		for _, k := range kids {
			id := p.elems[k].nameID
			if p.ordEpoch[id] != epoch {
				p.ordEpoch[id] = epoch
				p.ordCount[id] = 0
			}
			p.ordCount[id]++
			p.elems[k].ordinal = p.ordCount[id]
		}
	}
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// ------------------------------------------------------------- accessors

// Fields returns the number of non-empty text fields, in document order —
// the streaming counterpart of TextFields.
func (p *StreamPage) Fields() int { return len(p.fields) }

// FieldText returns field i's collapsed text, aliasing the page arena.
//
//ceres:allocfree
func (p *StreamPage) FieldText(i int) []byte {
	f := &p.fields[i]
	return p.textArena[f.off : f.off+f.len]
}

// FieldParent returns the element record containing field i (0 = the
// document itself, for top-level text).
//
//ceres:allocfree
func (p *StreamPage) FieldParent(i int) int32 { return p.fields[i].parent }

// Elems returns the number of element records, including the synthetic
// document record 0.
func (p *StreamPage) Elems() int { return len(p.elems) }

// Parent returns e's parent element record; 0 is the document, whose own
// parent is -1.
//
//ceres:allocfree
func (p *StreamPage) Parent(e int32) int32 { return p.elems[e].parent }

// TagSymOf returns e's interned process-wide tag symbol (0 when the
// symbol space was exhausted).
//
//ceres:allocfree
func (p *StreamPage) TagSymOf(e int32) int32 { return p.sc.names[p.elems[e].nameID].sym }

// Tag returns e's canonical lowercase tag name. The string is interned in
// the scratch, so probing serve-side maps with it allocates nothing.
//
//ceres:allocfree
func (p *StreamPage) Tag(e int32) string { return p.sc.names[p.elems[e].nameID].name }

// AttrValue returns the captured value of the i-th configured attribute
// key (StreamOptions.Attrs order) and whether the attribute was present.
//
//ceres:allocfree
func (p *StreamPage) AttrValue(e int32, i int) ([]byte, bool) {
	el := &p.elems[e]
	if el.attrOff[i] < 0 {
		return nil, false
	}
	return p.attrArena[el.attrOff[i] : el.attrOff[i]+el.attrLen[i]], true
}

// ElemSiblings returns the element children of e's parent, in document
// order, as record indices — Node.ElementSiblings over records.
//
//ceres:allocfree
func (p *StreamPage) ElemSiblings(e int32) []int32 {
	par := p.elems[e].parent
	return p.childList[p.childStart[par]:p.childStart[par+1]]
}

// ElemIndex returns e's position within ElemSiblings.
//
//ceres:allocfree
func (p *StreamPage) ElemIndex(e int32) int32 { return p.elems[e].elemIndex }

// Ordinal returns e's 1-based position among same-tag siblings — the
// XPath index, Node.SiblingIndex over records.
//
//ceres:allocfree
func (p *StreamPage) Ordinal(e int32) int32 { return p.elems[e].ordinal }

// SubText returns e's full collapsed subtree text when it fits within max
// bytes — Node.TextWithin over records.
//
//ceres:allocfree
func (p *StreamPage) SubText(e int32, max int) ([]byte, bool) {
	el := &p.elems[e]
	if el.flags&elemSubOverflow != 0 || int(el.subLen) > max {
		return nil, false
	}
	return p.textArena[el.subOff : el.subOff+el.subLen], true
}

// OwnText returns e's collapsed direct-child text and whether it is
// probeable: false means the text is non-empty but exceeded the stream's
// MaxText bound, so it cannot match any lexicon key.
//
//ceres:allocfree
func (p *StreamPage) OwnText(e int32) ([]byte, bool) {
	el := &p.elems[e]
	return p.textArena[el.ownOff : el.ownOff+el.ownLen], el.flags&elemOwnOverflow == 0
}

// AppendFieldXPath appends field i's absolute XPath — byte-identical to
// Node.XPath on the corresponding text node — rendering it lazily from
// the record chain, so only emitted extractions pay for path strings.
//
//ceres:allocfree
func (p *StreamPage) AppendFieldXPath(dst []byte, i int) []byte {
	f := &p.fields[i]
	p.xstack = p.xstack[:0]
	for r := f.parent; r != 0; r = p.elems[r].parent {
		p.xstack = append(p.xstack, r)
	}
	for j := len(p.xstack) - 1; j >= 0; j-- {
		e := &p.elems[p.xstack[j]]
		dst = append(dst, '/')
		dst = append(dst, p.sc.names[e.nameID].name...)
		dst = append(dst, '[')
		dst = strconv.AppendInt(dst, int64(e.ordinal), 10)
		dst = append(dst, ']')
	}
	dst = append(dst, "/text()["...)
	dst = strconv.AppendInt(dst, int64(f.ordinal), 10)
	return append(dst, ']')
}

// SignatureKeys returns how many signature keys the pass collected (one
// per element, in document order, before sorting).
func (p *StreamPage) SignatureKeys() int { return len(p.sigOff) }

// AppendSignature appends the page's routing signature — sorted,
// duplicate-free key views into the page arena, the exact key set
// cluster.SortedSignatureOf produces. k > 0 restricts to the first k keys
// in document order (the routing watermark); k <= 0 uses every key.
func (p *StreamPage) AppendSignature(dst [][]byte, k int) [][]byte {
	n := len(p.sigOff)
	if k > 0 && k < n {
		n = k
	}
	base := len(dst)
	for i := 0; i < n; i++ {
		dst = append(dst, p.sigArena[p.sigOff[i]:p.sigOff[i]+p.sigLen[i]])
	}
	keys := dst[base:]
	sort.Slice(keys, func(a, b int) bool { return bytes.Compare(keys[a], keys[b]) < 0 })
	w := 0
	for i := range keys {
		if i == 0 || !bytes.Equal(keys[i], keys[w-1]) {
			keys[w] = keys[i]
			w++
		}
	}
	return dst[:base+w]
}

// --------------------------------------------------------- field driver

// StreamField is one text field surfaced by StreamFields. It aliases the
// pass's scratch: read what you need inside the callback and copy out
// anything that must survive it.
type StreamField struct {
	p   *StreamPage
	idx int
}

// Text returns the field's collapsed text.
func (f *StreamField) Text() []byte { return f.p.FieldText(f.idx) }

// Parent returns the field's containing element record.
func (f *StreamField) Parent() int32 { return f.p.FieldParent(f.idx) }

// AppendXPath appends the field's absolute XPath.
func (f *StreamField) AppendXPath(dst []byte) []byte {
	return f.p.AppendFieldXPath(dst, f.idx)
}

// Page returns the streaming records of the whole page, for structural
// context around the field.
func (f *StreamField) Page() *StreamPage { return f.p }

var streamScratchPool = sync.Pool{New: func() any { return NewStreamScratch() }}

// StreamFields tokenizes html in a single pass and invokes fn for every
// non-empty text field in document order, without materializing a DOM
// tree. The field (and the page reachable through it) is valid only
// during the callback. Serve paths that need custom options hold a
// StreamScratch and call Stream directly.
func StreamFields(html []byte, fn func(f *StreamField)) {
	sc := streamScratchPool.Get().(*StreamScratch)
	defer streamScratchPool.Put(sc)
	p := sc.Stream(html, StreamOptions{})
	f := StreamField{p: p}
	for i := 0; i < len(p.fields); i++ {
		f.idx = i
		fn(&f)
	}
}
