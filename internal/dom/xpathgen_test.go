package dom

import "testing"

func TestXPathGeneration(t *testing.T) {
	doc := Parse(`<html><body><div><a>one</a></div><div><a>two</a><a>three</a></div></body></html>`)
	as := doc.FindAll("a")
	if len(as) != 3 {
		t.Fatalf("want 3 anchors")
	}
	want := []string{
		"/html[1]/body[1]/div[1]/a[1]",
		"/html[1]/body[1]/div[2]/a[1]",
		"/html[1]/body[1]/div[2]/a[2]",
	}
	for i, a := range as {
		if got := a.XPath(); got != want[i] {
			t.Errorf("anchor %d XPath = %q, want %q", i, got, want[i])
		}
	}
	// Text node paths.
	txt := as[2].Children[0]
	if got := txt.XPath(); got != "/html[1]/body[1]/div[2]/a[2]/text()[1]" {
		t.Errorf("text XPath = %q", got)
	}
	if doc.XPath() != "/" {
		t.Errorf("document XPath = %q", doc.XPath())
	}
}

// TestXPathRoundTrip checks the invariant that every node's generated XPath
// resolves back to that exact node.
func TestXPathRoundTrip(t *testing.T) {
	doc := Parse(samplePage)
	count := 0
	doc.Walk(func(n *Node) bool {
		if n.Type == DocumentNode {
			return true
		}
		got := ResolveXPath(doc, n.XPath())
		if got != n {
			t.Errorf("XPath %q resolved to %v, not the originating node", n.XPath(), got)
		}
		count++
		return true
	})
	if count < 30 {
		t.Fatalf("sample page too small for a meaningful roundtrip test: %d nodes", count)
	}
}

func TestResolveXPathMisses(t *testing.T) {
	doc := Parse(`<html><body><div>x</div></body></html>`)
	for _, p := range []string{
		"", "relative/path", "/html[1]/body[1]/div[2]", "/html[1]/span[1]",
		"/html[1]/body[1]/div[0]", "/html[1]/body[1]/div[x]", "/html[1]/body[1]/div",
	} {
		if got := ResolveXPath(doc, p); got != nil {
			t.Errorf("ResolveXPath(%q) = %v, want nil", p, got)
		}
	}
}

// TestRenderParseStable checks Parse∘Render∘Parse structural stability.
func TestRenderParseStable(t *testing.T) {
	doc1 := Parse(samplePage)
	html1 := Render(doc1)
	doc2 := Parse(html1)
	html2 := Render(doc2)
	if html1 != html2 {
		t.Errorf("render/parse not stable:\nfirst:  %s\nsecond: %s", html1, html2)
	}
	// Same set of XPaths for text fields.
	f1, f2 := TextFields(doc1), TextFields(doc2)
	if len(f1) != len(f2) {
		t.Fatalf("text field count changed: %d -> %d", len(f1), len(f2))
	}
	for i := range f1 {
		if f1[i].XPath() != f2[i].XPath() {
			t.Errorf("field %d path changed: %q -> %q", i, f1[i].XPath(), f2[i].XPath())
		}
		if f1[i].Data != f2[i].Data {
			t.Errorf("field %d text changed: %q -> %q", i, f1[i].Data, f2[i].Data)
		}
	}
}

func TestCollapseSpace(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""}, {"  ", ""}, {" a  b\tc\n", "a b c"}, {"x", "x"},
	}
	for _, c := range cases {
		if got := CollapseSpace(c.in); got != c.want {
			t.Errorf("CollapseSpace(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func BenchmarkParseDetailPage(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Parse(samplePage)
	}
}
