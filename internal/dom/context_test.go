package dom

import (
	"reflect"
	"strings"
	"testing"
)

const ctxDoc = `<html><body>
<div class="info">
  <h2>  Director  </h2>
  <ul><li>A</li><li>B</li><li>C</li></ul>
  <p>plot <b>bold</b> tail</p>
  <!-- comment -->
  stray text
</div>
<div id="second"><span>x</span><span>y</span></div>
</body></html>`

// dynamicText recomputes subtree text the pre-cache way, for comparison.
func dynamicText(n *Node) string {
	var parts []string
	n.Walk(func(m *Node) bool {
		if m.Type == TextNode {
			if t := CollapseSpace(m.Data); t != "" {
				parts = append(parts, t)
			}
		}
		return true
	})
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " "
		}
		out += p
	}
	return out
}

func dynamicOwnText(n *Node) string {
	out, first := "", true
	for _, c := range n.Children {
		if c.Type == TextNode {
			if t := CollapseSpace(c.Data); t != "" {
				if !first {
					out += " "
				}
				out += t
				first = false
			}
		}
	}
	return out
}

func dynamicElementSiblings(n *Node) []*Node {
	if n.Parent == nil {
		return []*Node{n}
	}
	var out []*Node
	for _, c := range n.Parent.Children {
		if c.Type == ElementNode {
			out = append(out, c)
		}
	}
	return out
}

// TestFinalizedContextMatchesDynamic verifies every cached accessor agrees
// with a from-scratch recomputation on every node of a parsed page.
func TestFinalizedContextMatchesDynamic(t *testing.T) {
	doc := Parse(ctxDoc)
	doc.Walk(func(n *Node) bool {
		if got, want := n.Text(), dynamicText(n); got != want {
			t.Errorf("Text(%s) = %q, want %q", n.Tag, got, want)
		}
		if got, want := n.OwnText(), dynamicOwnText(n); got != want {
			t.Errorf("OwnText(%s) = %q, want %q", n.Tag, got, want)
		}
		if n.Type == ElementNode {
			sibs := n.ElementSiblings()
			want := dynamicElementSiblings(n)
			if !reflect.DeepEqual(sibs, want) {
				t.Errorf("ElementSiblings(%s): %d vs %d", n.Tag, len(sibs), len(want))
			}
			pos := n.ElementIndex()
			if pos < 0 || pos >= len(sibs) || sibs[pos] != n {
				t.Errorf("ElementIndex(%s) = %d, not n's position", n.Tag, pos)
			}
		}
		// SiblingIndex: cached vs recomputed on an unfinalized copy of the
		// relationship (count same-kind predecessors manually).
		if n.Parent != nil {
			idx := 0
			for _, s := range n.Parent.Children {
				if sameKind(s, n) {
					idx++
				}
				if s == n {
					break
				}
			}
			if got := n.SiblingIndex(); got != idx {
				t.Errorf("SiblingIndex(%s %q) = %d, want %d", n.Tag, n.Data, got, idx)
			}
		}
		return true
	})
}

// TestAppendChildInvalidatesCaches checks that mutating a finalized tree
// does not serve stale text or sibling context.
func TestAppendChildInvalidatesCaches(t *testing.T) {
	doc := Parse(`<div><p>one</p></div>`)
	div := doc.FindAll("div")[0]
	if got := div.Text(); got != "one" {
		t.Fatalf("Text = %q", got)
	}
	p2 := &Node{Type: ElementNode, Tag: "p"}
	p2.AppendChild(&Node{Type: TextNode, Data: "two"})
	div.AppendChild(p2)
	if got := div.Text(); got != "one two" {
		t.Errorf("Text after append = %q, want %q", got, "one two")
	}
	if got := len(div.FindAll("p")[0].ElementSiblings()); got != 2 {
		t.Errorf("ElementSiblings after append = %d, want 2", got)
	}
	if got := p2.ElementIndex(); got != 1 {
		t.Errorf("ElementIndex of appended child = %d, want 1", got)
	}
	if got := p2.SiblingIndex(); got != 2 {
		t.Errorf("SiblingIndex of appended child = %d, want 2", got)
	}
}

func TestCollapseSpaceFastPath(t *testing.T) {
	cases := []string{
		"", " ", "a", " a ", "a b", "a  b", "\ta\nb ", "  spaced   out  ",
		"already collapsed text", "tab\tinside", "trailing  ",
		"non\u00a0breaking", "\u00a0lead", "\u010ce\u0161tina \u017e\u00e1nr",
		"mixed \u2028 runs",
	}
	for _, c := range cases {
		// Reference: the original implementation.
		want := strings.Join(strings.Fields(c), " ")
		if got := CollapseSpace(c); got != want {
			t.Errorf("CollapseSpace(%q) = %q, want %q", c, got, want)
		}
	}
}
