package dom

import (
	"strconv"
	"strings"
)

// tokenType enumerates the tokenizer's output kinds.
type tokenType uint8

const (
	tokText tokenType = iota
	tokStartTag
	tokEndTag
	tokSelfClosing
	tokComment
	tokDoctype
)

// token is a single lexical unit of an HTML byte stream. attrs aliases
// the tokenizer's reusable scratch buffer: it is valid only until the
// next call to next(), so the consumer must copy it to keep it.
type token struct {
	typ   tokenType
	tag   string // lowercase tag name for tag tokens
	data  string // text, comment body, or doctype body
	attrs []Attr
}

// rawTextTags are elements whose content is not tokenized as markup.
var rawTextTags = map[string]bool{
	"script": true, "style": true, "textarea": true, "title": true,
}

// tokenizer walks an HTML input string producing tokens. It implements the
// subset of the HTML5 tokenization rules needed for template-generated
// pages: tags with quoted/unquoted attributes, self-closing syntax,
// comments, doctype, raw-text elements, and character references.
type tokenizer struct {
	src string
	pos int
	// attrScratch backs the attrs of the most recent start-tag token,
	// reused across tags so tokenizing allocates nothing per tag.
	attrScratch []Attr
}

func (z *tokenizer) next() (token, bool) {
	if z.pos >= len(z.src) {
		return token{}, false
	}
	if z.src[z.pos] != '<' {
		return z.readText(), true
	}
	// '<' — decide among comment, doctype, end tag, start tag, or stray text.
	rest := z.src[z.pos:]
	switch {
	case strings.HasPrefix(rest, "<!--"):
		return z.readComment(), true
	case strings.HasPrefix(rest, "<!"):
		return z.readDoctype(), true
	case strings.HasPrefix(rest, "</"):
		return z.readEndTag(), true
	case len(rest) > 1 && isTagNameStart(rest[1]):
		return z.readStartTag(), true
	default:
		// A lone '<' that does not open a tag is literal text.
		z.pos++
		return token{typ: tokText, data: "<"}, true
	}
}

func isTagNameStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func (z *tokenizer) readText() token {
	start := z.pos
	for z.pos < len(z.src) && z.src[z.pos] != '<' {
		z.pos++
	}
	return token{typ: tokText, data: DecodeEntities(z.src[start:z.pos])}
}

// readRawText consumes text up to the closing tag of a raw-text element
// (e.g. </script>), returning the raw content. The closing tag itself is
// consumed.
func (z *tokenizer) readRawText(tag string) string {
	end := indexClosingTag(z.src[z.pos:], tag)
	if end < 0 {
		out := z.src[z.pos:]
		z.pos = len(z.src)
		return out
	}
	out := z.src[z.pos : z.pos+end]
	z.pos += end
	// Consume "</tag" then skip to '>' inclusive.
	if gt := strings.IndexByte(z.src[z.pos:], '>'); gt >= 0 {
		z.pos += gt + 1
	} else {
		z.pos = len(z.src)
	}
	return out
}

// indexClosingTag returns the offset of the first "</tag" in s, matching
// the tag name case-insensitively (tag is already lowercase), or -1. This
// is the raw-text terminator scan; doing it in place keeps tokenizing a
// page with many <script> blocks from copy-lowercasing the remaining
// source once per block.
func indexClosingTag(s, tag string) int {
	for i := 0; ; {
		j := strings.IndexByte(s[i:], '<')
		if j < 0 {
			return -1
		}
		i += j
		if len(s)-i < 2+len(tag) {
			return -1
		}
		if s[i+1] == '/' && foldEqASCII(s[i+2:i+2+len(tag)], tag) {
			return i
		}
		i++
	}
}

// foldEqASCII reports whether s equals lower under ASCII case folding;
// lower must already be lowercase ASCII (a tag name).
func foldEqASCII(s, lower string) bool {
	for i := 0; i < len(lower); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != lower[i] {
			return false
		}
	}
	return true
}

func (z *tokenizer) readComment() token {
	z.pos += len("<!--")
	end := strings.Index(z.src[z.pos:], "-->")
	var body string
	if end < 0 {
		body = z.src[z.pos:]
		z.pos = len(z.src)
	} else {
		body = z.src[z.pos : z.pos+end]
		z.pos += end + len("-->")
	}
	return token{typ: tokComment, data: body}
}

func (z *tokenizer) readDoctype() token {
	z.pos += len("<!")
	end := strings.IndexByte(z.src[z.pos:], '>')
	var body string
	if end < 0 {
		body = z.src[z.pos:]
		z.pos = len(z.src)
	} else {
		body = z.src[z.pos : z.pos+end]
		z.pos += end + 1
	}
	return token{typ: tokDoctype, data: body}
}

func (z *tokenizer) readEndTag() token {
	z.pos += len("</")
	start := z.pos
	for z.pos < len(z.src) && z.src[z.pos] != '>' {
		z.pos++
	}
	name := strings.ToLower(strings.TrimSpace(z.src[start:z.pos]))
	if z.pos < len(z.src) {
		z.pos++ // consume '>'
	}
	return token{typ: tokEndTag, tag: name}
}

func (z *tokenizer) readStartTag() token {
	z.pos++ // consume '<'
	start := z.pos
	for z.pos < len(z.src) && isNameByte(z.src[z.pos]) {
		z.pos++
	}
	tag := strings.ToLower(z.src[start:z.pos])
	t := token{typ: tokStartTag, tag: tag}
	attrs := z.attrScratch[:0]
loop:
	for {
		z.skipSpace()
		if z.pos >= len(z.src) {
			break
		}
		switch z.src[z.pos] {
		case '>':
			z.pos++
			break loop
		case '/':
			z.pos++
			z.skipSpace()
			if z.pos < len(z.src) && z.src[z.pos] == '>' {
				z.pos++
			}
			t.typ = tokSelfClosing
			break loop
		default:
			key, val, ok := z.readAttr()
			if !ok {
				// Malformed byte; skip it to guarantee progress.
				z.pos++
				continue
			}
			attrs = append(attrs, Attr{Key: key, Val: val})
		}
	}
	z.attrScratch = attrs
	if len(attrs) > 0 {
		t.attrs = attrs
	}
	return t
}

func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '-' || c == '_' || c == ':'
}

func (z *tokenizer) skipSpace() {
	for z.pos < len(z.src) {
		switch z.src[z.pos] {
		case ' ', '\t', '\n', '\r', '\f':
			z.pos++
		default:
			return
		}
	}
}

func (z *tokenizer) readAttr() (key, val string, ok bool) {
	start := z.pos
	for z.pos < len(z.src) && isNameByte(z.src[z.pos]) {
		z.pos++
	}
	if z.pos == start {
		return "", "", false
	}
	key = strings.ToLower(z.src[start:z.pos])
	z.skipSpace()
	if z.pos >= len(z.src) || z.src[z.pos] != '=' {
		return key, "", true // boolean attribute
	}
	z.pos++ // consume '='
	z.skipSpace()
	if z.pos >= len(z.src) {
		return key, "", true
	}
	switch q := z.src[z.pos]; q {
	case '"', '\'':
		z.pos++
		vstart := z.pos
		for z.pos < len(z.src) && z.src[z.pos] != q {
			z.pos++
		}
		val = DecodeEntities(z.src[vstart:z.pos])
		if z.pos < len(z.src) {
			z.pos++ // closing quote
		}
	default:
		vstart := z.pos
		for z.pos < len(z.src) && !isSpaceByte(z.src[z.pos]) && z.src[z.pos] != '>' {
			z.pos++
		}
		val = DecodeEntities(z.src[vstart:z.pos])
	}
	return key, val, true
}

func isSpaceByte(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\r', '\f':
		return true
	}
	return false
}

// namedEntities is the subset of HTML named character references that
// template-generated pages commonly emit.
var namedEntities = map[string]rune{
	"amp": '&', "lt": '<', "gt": '>', "quot": '"', "apos": '\'',
	"nbsp": ' ', "copy": '©', "reg": '®', "trade": '™',
	"mdash": '—', "ndash": '–', "hellip": '…', "middot": '·', "bull": '•',
	"lsquo": '‘', "rsquo": '’', "ldquo": '“', "rdquo": '”',
	"laquo": '«', "raquo": '»', "deg": '°', "plusmn": '±', "frac12": '½',
	"eacute": 'é', "egrave": 'è', "ecirc": 'ê', "agrave": 'à', "acirc": 'â',
	"aacute": 'á', "auml": 'ä', "ouml": 'ö', "uuml": 'ü', "aring": 'å',
	"oslash": 'ø', "aelig": 'æ', "ccedil": 'ç', "ntilde": 'ñ', "iacute": 'í',
	"oacute": 'ó', "uacute": 'ú', "yacute": 'ý', "thorn": 'þ', "eth": 'ð',
	"szlig": 'ß', "times": '×', "divide": '÷', "sect": '§', "para": '¶',
	"star": '★', "starf": '★',
}

// DecodeEntities resolves named and numeric character references in s.
// Unknown references are preserved literally.
func DecodeEntities(s string) string {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for {
		b.WriteString(s[:amp])
		s = s[amp:]
		r, n := decodeOneEntity(s)
		if n == 0 {
			b.WriteByte('&')
			s = s[1:]
		} else {
			b.WriteRune(r)
			s = s[n:]
		}
		amp = strings.IndexByte(s, '&')
		if amp < 0 {
			b.WriteString(s)
			return b.String()
		}
	}
}

// decodeOneEntity decodes the character reference at the start of s
// (s[0] == '&'), returning the rune and the number of bytes consumed, or
// (0,0) if s does not start a valid reference.
func decodeOneEntity(s string) (rune, int) {
	semi := strings.IndexByte(s, ';')
	if semi < 0 || semi == 1 || semi > 32 {
		return 0, 0
	}
	body := s[1:semi]
	if body[0] == '#' {
		num := body[1:]
		base := 10
		if len(num) > 0 && (num[0] == 'x' || num[0] == 'X') {
			base = 16
			num = num[1:]
		}
		v, err := strconv.ParseInt(num, base, 32)
		if err != nil || v <= 0 || v > 0x10FFFF {
			return 0, 0
		}
		return rune(v), semi + 1
	}
	if r, ok := namedEntities[body]; ok {
		return r, semi + 1
	}
	return 0, 0
}
