package dom

// voidTags are elements that never have children or end tags.
var voidTags = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// blockTags trigger the implicit close of an open <p>.
var blockTags = map[string]bool{
	"address": true, "article": true, "aside": true, "blockquote": true,
	"div": true, "dl": true, "fieldset": true, "footer": true, "form": true,
	"h1": true, "h2": true, "h3": true, "h4": true, "h5": true, "h6": true,
	"header": true, "hr": true, "main": true, "nav": true, "ol": true,
	"p": true, "pre": true, "section": true, "table": true, "ul": true,
}

// autoClose maps a start tag to the set of open tags it implicitly closes
// when they are the nearest open element (the subset of the HTML5 implied
// end-tag rules that template-generated pages exercise).
var autoClose = map[string]map[string]bool{
	"li":     {"li": true},
	"dt":     {"dt": true, "dd": true},
	"dd":     {"dt": true, "dd": true},
	"tr":     {"tr": true, "td": true, "th": true},
	"td":     {"td": true, "th": true},
	"th":     {"td": true, "th": true},
	"thead":  {"tr": true, "td": true, "th": true},
	"tbody":  {"thead": true, "tr": true, "td": true, "th": true},
	"tfoot":  {"tbody": true, "tr": true, "td": true, "th": true},
	"option": {"option": true},
}

// Parse builds a DOM tree from HTML source. It never fails: malformed
// markup degrades to a best-effort tree, mirroring browser behaviour, which
// is what a web-extraction system must tolerate. The returned node is a
// DocumentNode.
func Parse(src string) *Node {
	doc := &Node{Type: DocumentNode}
	z := &tokenizer{src: src}
	stack := []*Node{doc}
	top := func() *Node { return stack[len(stack)-1] }

	for {
		t, ok := z.next()
		if !ok {
			break
		}
		switch t.typ {
		case tokText:
			if t.data == "" {
				continue
			}
			// Merge adjacent text (a lone '<' tokenizes separately):
			// browsers normalize the same way, and it keeps
			// Parse∘Render∘Parse an identity on text nodes.
			parent := top()
			if n := len(parent.Children); n > 0 && parent.Children[n-1].Type == TextNode {
				parent.Children[n-1].Data += t.data
				continue
			}
			parent.AppendChild(&Node{Type: TextNode, Data: t.data})
		case tokComment:
			top().AppendChild(&Node{Type: CommentNode, Data: t.data})
		case tokDoctype:
			// Dropped: the tree starts at <html>.
		case tokSelfClosing:
			el := &Node{Type: ElementNode, Tag: t.tag, Attrs: t.attrs}
			top().AppendChild(el)
		case tokStartTag:
			if closers, ok := autoClose[t.tag]; ok {
				for len(stack) > 1 && closers[top().Tag] {
					stack = stack[:len(stack)-1]
				}
			}
			if blockTags[t.tag] {
				if len(stack) > 1 && top().Tag == "p" {
					stack = stack[:len(stack)-1]
				}
			}
			el := &Node{Type: ElementNode, Tag: t.tag, Attrs: t.attrs}
			top().AppendChild(el)
			if voidTags[t.tag] {
				continue
			}
			if rawTextTags[t.tag] {
				raw := z.readRawText(t.tag)
				if raw != "" {
					data := raw
					if t.tag == "title" || t.tag == "textarea" {
						data = DecodeEntities(raw)
					}
					el.AppendChild(&Node{Type: TextNode, Data: data})
				}
				continue
			}
			stack = append(stack, el)
		case tokEndTag:
			// Pop to the matching open element if one exists; otherwise
			// ignore the stray end tag.
			for i := len(stack) - 1; i >= 1; i-- {
				if stack[i].Tag == t.tag {
					stack = stack[:i]
					break
				}
			}
		}
	}
	// Precompute the structural/text context extraction reads per node, so
	// the serve hot path never re-walks the tree (see Node.Finalize).
	doc.Finalize()
	return doc
}

// TextFields returns every text node in the document whose collapsed
// content is non-empty, in document order, excluding script/style/textarea
// content and comments. These are the units of annotation and extraction
// (paper §2.1: entity names correspond to full texts in a DOM node).
func TextFields(doc *Node) []*Node {
	var out []*Node
	doc.Walk(func(n *Node) bool {
		if n.Type == ElementNode && (n.Tag == "script" || n.Tag == "style" || n.Tag == "textarea") {
			return false
		}
		if n.Type == TextNode && n.Text() != "" {
			out = append(out, n)
		}
		return true
	})
	return out
}
