package dom

import "sync"

// voidTags are elements that never have children or end tags.
var voidTags = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// blockTags trigger the implicit close of an open <p>.
var blockTags = map[string]bool{
	"address": true, "article": true, "aside": true, "blockquote": true,
	"div": true, "dl": true, "fieldset": true, "footer": true, "form": true,
	"h1": true, "h2": true, "h3": true, "h4": true, "h5": true, "h6": true,
	"header": true, "hr": true, "main": true, "nav": true, "ol": true,
	"p": true, "pre": true, "section": true, "table": true, "ul": true,
}

// autoClose maps a start tag to the set of open tags it implicitly closes
// when they are the nearest open element (the subset of the HTML5 implied
// end-tag rules that template-generated pages exercise).
var autoClose = map[string]map[string]bool{
	"li":     {"li": true},
	"dt":     {"dt": true, "dd": true},
	"dd":     {"dt": true, "dd": true},
	"tr":     {"tr": true, "td": true, "th": true},
	"td":     {"td": true, "th": true},
	"th":     {"td": true, "th": true},
	"thead":  {"tr": true, "td": true, "th": true},
	"tbody":  {"thead": true, "tr": true, "td": true, "th": true},
	"tfoot":  {"tbody": true, "tr": true, "td": true, "th": true},
	"option": {"option": true},
}

// slabSize is the node count per arena slab: large enough that a typical
// page costs a handful of slab acquisitions, small enough that the last,
// partially used slab wastes little.
const slabSize = 128

// slabPool recycles node slabs across parses. Slabs are zeroed before
// they re-enter the pool, so a pooled slab never pins a released tree's
// strings and a fresh acquisition needs no clearing.
var slabPool sync.Pool // of *[]Node, len == cap == slabSize

// ptrSlabSize is the pointer count per child-slice slab. Child slices
// grow geometrically, so a slab serves many small slices and the rare
// slice that outgrows it falls back to the heap.
const ptrSlabSize = 256

// ptrSlabPool recycles the pointer slabs behind child slices, zeroed on
// release like slabPool.
var ptrSlabPool sync.Pool // of *[]*Node, len == cap == ptrSlabSize

// attrSlabSize is the attribute count per slab (Attr is two strings, so a
// slab is 2 KiB). Tags average a handful of attributes.
const attrSlabSize = 64

// attrSlabPool recycles attribute slabs, zeroed on release like slabPool.
var attrSlabPool sync.Pool // of *[]Attr, len == cap == attrSlabSize

// nodeArena hands out nodes from chunked slabs, so parsing a page costs a
// few slab acquisitions instead of one allocation per node. Child-pointer
// slices (Children, elemKids) draw from separate pointer slabs the same
// way. The tree pins every slab it draws from until Node.Release returns
// them to the pool; an unreleased tree simply keeps its slabs for the GC,
// so release is an optimization, never an obligation.
type nodeArena struct {
	slab      []Node
	slabs     []*[]Node // every node slab acquired, for release
	ptrSlab   []*Node   // current pointer slab
	ptrUsed   int
	ptrSlabs  []*[]*Node // every pointer slab acquired, for release
	attrSlab  []Attr     // current attribute slab
	attrUsed  int
	attrSlabs []*[]Attr // every attribute slab acquired, for release
}

func (a *nodeArena) node(t NodeType) *Node {
	if len(a.slab) == 0 {
		sp, _ := slabPool.Get().(*[]Node)
		if sp == nil {
			s := make([]Node, slabSize)
			sp = &s
		}
		a.slab = *sp
		a.slabs = append(a.slabs, sp)
	}
	n := &a.slab[0]
	a.slab = a.slab[1:]
	n.Type = t
	return n
}

// ptrs returns a zero-length pointer slice with capacity n carved from
// the arena's pointer slabs; oversized requests fall back to the heap.
// Abandoned predecessors of grown slices stay in their slab until release
// — geometric growth bounds the waste at one extra copy of the tree's
// pointers.
func (a *nodeArena) ptrs(n int) []*Node {
	if n > ptrSlabSize {
		return make([]*Node, 0, n)
	}
	if a.ptrSlab == nil || ptrSlabSize-a.ptrUsed < n {
		sp, _ := ptrSlabPool.Get().(*[]*Node)
		if sp == nil {
			s := make([]*Node, ptrSlabSize)
			sp = &s
		}
		a.ptrSlab = *sp
		a.ptrUsed = 0
		a.ptrSlabs = append(a.ptrSlabs, sp)
	}
	s := a.ptrSlab[a.ptrUsed:a.ptrUsed:a.ptrUsed+n]
	a.ptrUsed += n
	return s
}

// attrs copies src — a tokenizer scratch buffer, valid only until the
// next token — into stable storage carved from the arena's attribute
// slabs. Oversized attribute lists fall back to the heap.
func (a *nodeArena) attrs(src []Attr) []Attr {
	n := len(src)
	if n == 0 {
		return nil
	}
	if n > attrSlabSize {
		out := make([]Attr, n)
		copy(out, src)
		return out
	}
	if a.attrSlab == nil || attrSlabSize-a.attrUsed < n {
		sp, _ := attrSlabPool.Get().(*[]Attr)
		if sp == nil {
			s := make([]Attr, attrSlabSize)
			sp = &s
		}
		a.attrSlab = *sp
		a.attrUsed = 0
		a.attrSlabs = append(a.attrSlabs, sp)
	}
	s := a.attrSlab[a.attrUsed : a.attrUsed+n : a.attrUsed+n]
	a.attrUsed += n
	copy(s, src)
	return s
}

// appendChild is Parse's internal AppendChild. The tree is not yet
// finalized, so no caches can be stale — none of AppendChild's
// invalidation (including its ancestor walk) applies — and child slices
// grow through the arena's pointer slabs instead of the heap.
func (a *nodeArena) appendChild(n, c *Node) {
	c.Parent = n
	if len(n.Children) == cap(n.Children) {
		grown := a.ptrs(max(4, 2*cap(n.Children)))
		n.Children = append(grown, n.Children...)
	}
	n.Children = append(n.Children, c)
}

// release zeroes the arena's slabs and returns them to the pool. The
// caller must guarantee no node from this arena is reachable afterwards.
func (a *nodeArena) release() {
	for _, sp := range a.slabs {
		clear(*sp)
		slabPool.Put(sp)
	}
	a.slabs = nil
	a.slab = nil
	for _, sp := range a.ptrSlabs {
		clear(*sp)
		ptrSlabPool.Put(sp)
	}
	a.ptrSlabs = nil
	a.ptrSlab = nil
	a.ptrUsed = 0
	for _, sp := range a.attrSlabs {
		clear(*sp)
		attrSlabPool.Put(sp)
	}
	a.attrSlabs = nil
	a.attrSlab = nil
	a.attrUsed = 0
}

// Release recycles the node slabs backing the document's tree for future
// Parse calls. Only the DocumentNode returned by Parse carries the arena;
// calling Release on any other node is a no-op. After Release, every node
// of the tree — including n itself — is invalid: the single owner of a
// parsed page calls Release exactly when it discards the page. Strings
// previously read off the tree (Text, Data, attribute values) remain
// valid; they are independent of the node storage.
func (n *Node) Release() {
	if a := n.arena; a != nil {
		n.arena = nil
		a.release()
	}
}

// Parse builds a DOM tree from HTML source. It never fails: malformed
// markup degrades to a best-effort tree, mirroring browser behaviour, which
// is what a web-extraction system must tolerate. The returned node is a
// DocumentNode.
func Parse(src string) *Node {
	arena := new(nodeArena)
	doc := arena.node(DocumentNode)
	doc.arena = arena
	z := &tokenizer{src: src}
	stack := []*Node{doc}
	top := func() *Node { return stack[len(stack)-1] }

	for {
		t, ok := z.next()
		if !ok {
			break
		}
		switch t.typ {
		case tokText:
			if t.data == "" {
				continue
			}
			// Merge adjacent text (a lone '<' tokenizes separately):
			// browsers normalize the same way, and it keeps
			// Parse∘Render∘Parse an identity on text nodes.
			parent := top()
			if n := len(parent.Children); n > 0 && parent.Children[n-1].Type == TextNode {
				parent.Children[n-1].Data += t.data
				continue
			}
			tn := arena.node(TextNode)
			tn.Data = t.data
			arena.appendChild(parent, tn)
		case tokComment:
			cn := arena.node(CommentNode)
			cn.Data = t.data
			arena.appendChild(top(), cn)
		case tokDoctype:
			// Dropped: the tree starts at <html>.
		case tokSelfClosing:
			el := arena.node(ElementNode)
			el.Tag, el.Attrs = t.tag, arena.attrs(t.attrs)
			el.sym = TagSym(t.tag)
			arena.appendChild(top(), el)
		case tokStartTag:
			if closers, ok := autoClose[t.tag]; ok {
				for len(stack) > 1 && closers[top().Tag] {
					stack = stack[:len(stack)-1]
				}
			}
			if blockTags[t.tag] {
				if len(stack) > 1 && top().Tag == "p" {
					stack = stack[:len(stack)-1]
				}
			}
			el := arena.node(ElementNode)
			el.Tag, el.Attrs = t.tag, arena.attrs(t.attrs)
			el.sym = TagSym(t.tag)
			arena.appendChild(top(), el)
			if voidTags[t.tag] {
				continue
			}
			if rawTextTags[t.tag] {
				raw := z.readRawText(t.tag)
				if raw != "" {
					data := raw
					if t.tag == "title" || t.tag == "textarea" {
						data = DecodeEntities(raw)
					}
					tn := arena.node(TextNode)
					tn.Data = data
					arena.appendChild(el, tn)
				}
				continue
			}
			stack = append(stack, el)
		case tokEndTag:
			// Pop to the matching open element if one exists; otherwise
			// ignore the stray end tag.
			for i := len(stack) - 1; i >= 1; i-- {
				if stack[i].Tag == t.tag {
					stack = stack[:i]
					break
				}
			}
		}
	}
	// Precompute the structural/text context extraction reads per node, so
	// the serve hot path never re-walks the tree (see Node.Finalize).
	doc.Finalize()
	return doc
}

// TextFields returns every text node in the document whose collapsed
// content is non-empty, in document order, excluding script/style/textarea
// content and comments. These are the units of annotation and extraction
// (paper §2.1: entity names correspond to full texts in a DOM node).
func TextFields(doc *Node) []*Node {
	var out []*Node
	doc.Walk(func(n *Node) bool {
		if n.Type == ElementNode && (n.Tag == "script" || n.Tag == "style" || n.Tag == "textarea") {
			return false
		}
		if n.Type == TextNode && n.Text() != "" {
			out = append(out, n)
		}
		return true
	})
	return out
}
