package dom

import (
	"strconv"
	"strings"
)

// XPath returns the absolute XPath of n, e.g.
// /html[1]/body[1]/div[3]/a[2] for elements and
// /html[1]/body[1]/div[3]/text()[1] for text nodes. Every step carries an
// explicit 1-based index among same-tag siblings, matching the paper's
// Figure 2 representation. The DocumentNode has path "/".
func (n *Node) XPath() string {
	if n.Type == DocumentNode {
		return "/"
	}
	var stack [32]*Node
	chain := stack[:0]
	size := 0
	for m := n; m != nil && m.Type != DocumentNode; m = m.Parent {
		chain = append(chain, m)
		size += len(stepName(m)) + 2 + 4 // '/name[NN]', indices rarely wider
	}
	var b strings.Builder
	b.Grow(size)
	var tmp [12]byte
	for i := len(chain) - 1; i >= 0; i-- {
		m := chain[i]
		b.WriteByte('/')
		b.WriteString(stepName(m))
		b.WriteByte('[')
		b.Write(strconv.AppendInt(tmp[:0], int64(m.SiblingIndex()), 10))
		b.WriteByte(']')
	}
	return b.String()
}

func stepName(n *Node) string {
	if n.Type == TextNode {
		return "text()"
	}
	if n.Type == CommentNode {
		return "comment()"
	}
	return n.Tag
}

// ResolveXPath walks an absolute XPath (as produced by Node.XPath) from doc
// and returns the node it addresses, or nil if no such node exists.
func ResolveXPath(doc *Node, path string) *Node {
	if path == "" || path[0] != '/' {
		return nil
	}
	if path == "/" {
		return doc
	}
	cur := doc
	for _, raw := range strings.Split(path[1:], "/") {
		name, idx, ok := splitStep(raw)
		if !ok {
			return nil
		}
		cur = childByStep(cur, name, idx)
		if cur == nil {
			return nil
		}
	}
	return cur
}

func splitStep(s string) (name string, idx int, ok bool) {
	open := strings.IndexByte(s, '[')
	if open < 0 || !strings.HasSuffix(s, "]") {
		return "", 0, false
	}
	name = s[:open]
	n, err := strconv.Atoi(s[open+1 : len(s)-1])
	if err != nil || n < 1 {
		return "", 0, false
	}
	return name, n, true
}

func childByStep(parent *Node, name string, idx int) *Node {
	count := 0
	for _, c := range parent.Children {
		switch name {
		case "text()":
			if c.Type != TextNode {
				continue
			}
		case "comment()":
			if c.Type != CommentNode {
				continue
			}
		default:
			if c.Type != ElementNode || c.Tag != name {
				continue
			}
		}
		count++
		if count == idx {
			return c
		}
	}
	return nil
}
