package dom_test

import (
	"fmt"
	"testing"

	"ceres/internal/cluster"
	"ceres/internal/dom"
	"ceres/internal/websim"
)

// streamAttrs mirrors core's structuralAttrs plus "class" first, so the
// signature path is exercised.
var streamAttrs = []string{"class", "id", "itemprop", "itemtype", "property"}

// diffStream asserts that one streaming pass over html produces records
// bit-identical to Parse + the finalized-tree accessors: same elements in
// document order (tags, symbols, parents, attribute values, element
// indices, sibling lists, same-tag ordinals, bounded own/subtree text),
// same text fields (text, parent, XPath), and the same routing signature.
func diffStream(t *testing.T, html string, maxText int) {
	t.Helper()
	sc := dom.NewStreamScratch()
	p := sc.Stream([]byte(html), dom.StreamOptions{
		MaxText:   maxText,
		Attrs:     streamAttrs,
		Signature: true,
	})
	doc := dom.Parse(html)
	defer doc.Release()

	// Elements: stream records are start-tag order, i.e. pre-order.
	nodes := []*dom.Node{doc}
	doc.Walk(func(n *dom.Node) bool {
		if n.Type == dom.ElementNode {
			nodes = append(nodes, n)
		}
		return true
	})
	if p.Elems() != len(nodes) {
		t.Fatalf("element records: stream %d, dom %d", p.Elems(), len(nodes))
	}
	rec := make(map[*dom.Node]int32, len(nodes))
	for i, n := range nodes {
		rec[n] = int32(i)
	}
	for i := 1; i < len(nodes); i++ {
		n := nodes[i]
		e := int32(i)
		if got, want := p.Tag(e), n.Tag; got != want {
			t.Fatalf("elem %d tag: stream %q, dom %q", i, got, want)
		}
		if got, want := p.TagSymOf(e), n.TagSymbol(); got != want {
			t.Fatalf("elem %d (%s) sym: stream %d, dom %d", i, n.Tag, got, want)
		}
		if got, want := p.Parent(e), rec[n.Parent]; got != want {
			t.Fatalf("elem %d (%s) parent: stream %d, dom %d", i, n.Tag, got, want)
		}
		if got, want := int(p.ElemIndex(e)), n.ElementIndex(); got != want {
			t.Fatalf("elem %d (%s) elemIndex: stream %d, dom %d", i, n.Tag, got, want)
		}
		sibs := n.ElementSiblings()
		got := p.ElemSiblings(e)
		if len(got) != len(sibs) {
			t.Fatalf("elem %d (%s) siblings: stream %d, dom %d", i, n.Tag, len(got), len(sibs))
		}
		for j, s := range sibs {
			if got[j] != rec[s] {
				t.Fatalf("elem %d (%s) sibling %d: stream rec %d, dom rec %d", i, n.Tag, j, got[j], rec[s])
			}
		}
		if got, want := int(p.Ordinal(e)), n.SiblingIndex(); got != want {
			t.Fatalf("elem %d (%s) ordinal: stream %d, dom %d", i, n.Tag, got, want)
		}
		for ai, key := range streamAttrs {
			gv, gok := p.AttrValue(e, ai)
			wv, wok := n.Attr(key)
			if gok != wok || string(gv) != wv {
				t.Fatalf("elem %d (%s) attr %s: stream %q/%v, dom %q/%v", i, n.Tag, key, gv, gok, wv, wok)
			}
		}
		wantSub, wantOK := n.TextWithin(nil, maxText)
		gotSub, gotOK := p.SubText(e, maxText)
		if gotOK != wantOK || string(gotSub) != string(wantSub) {
			t.Fatalf("elem %d (%s) subtext(max %d): stream %q/%v, dom %q/%v",
				i, n.Tag, maxText, gotSub, gotOK, wantSub, wantOK)
		}
		own := n.OwnText()
		gotOwn, probeable := p.OwnText(e)
		if probeable {
			if string(gotOwn) != own {
				t.Fatalf("elem %d (%s) owntext: stream %q, dom %q", i, n.Tag, gotOwn, own)
			}
		} else if len(own) <= maxText {
			t.Fatalf("elem %d (%s) owntext overflowed but dom text %q fits %d", i, n.Tag, own, maxText)
		}
	}

	// Text fields.
	fields := dom.TextFields(doc)
	if p.Fields() != len(fields) {
		t.Fatalf("fields: stream %d, dom %d", p.Fields(), len(fields))
	}
	for i, n := range fields {
		if got, want := string(p.FieldText(i)), n.Text(); got != want {
			t.Fatalf("field %d text: stream %q, dom %q", i, got, want)
		}
		if got, want := p.FieldParent(i), rec[n.Parent]; got != want {
			t.Fatalf("field %d parent: stream %d, dom %d", i, got, want)
		}
		if got, want := string(p.AppendFieldXPath(nil, i)), n.XPath(); got != want {
			t.Fatalf("field %d xpath: stream %q, dom %q", i, got, want)
		}
	}

	// Routing signature.
	want := cluster.SortedSignatureOf(doc)
	got := p.AppendSignature(nil, 0)
	if len(got) != len(want) {
		t.Fatalf("signature: stream %d keys, dom %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Fatalf("signature key %d: stream %q, dom %q", i, got[i], want[i])
		}
	}
}

// edgeCases are handcrafted pages exercising the parser's recovery rules:
// each must stream to records identical to the DOM path.
var edgeCases = []struct {
	name string
	html string
}{
	{"simple", `<html><body><div class="a">Hello <b>world</b></div></body></html>`},
	{"unclosed tags", `<html><body><div><p>one<p>two<div>three`},
	{"auto close list", `<ul><li>a<li>b<li>c</ul><dl><dt>t<dd>d<dt>t2`},
	{"auto close table", `<table><thead><tr><th>h1<th>h2<tbody><tr><td>a<td>b<tr><td>c<tfoot><tr><td>f</table>`},
	{"comment in table", `<table><tr><td>a</td><!-- split --><td>b</td></tr><!-- tail --></table>`},
	{"comment splits text", `x<!-- c -->y`},
	{"doctype mid text", `a<!doctype html>b<div>c</div>`},
	{"raw text script", `<div>before<script>if (a < b) { x("</div>"); }</script>after</div>`},
	{"raw text style", `<style>p > a { color: red }</style><p>text</p>`},
	{"textarea entities", `<textarea>&amp; raw &lt;b&gt;</textarea><span>tail</span>`},
	{"title field", `<html><head><title>  The &amp; Title  </title></head><body>b</body></html>`},
	{"title empty", `<title>   </title><p>x</p>`},
	{"unclosed raw", `<div>a<script>never closed...`},
	{"stray end tags", `<div>a</span>b</div>c</p>d`},
	{"lone lt", `<div>1 < 2 and 3<4</div>`},
	{"entities", `<p>&copy; 2024 &mdash; caf&eacute; &#233; &#xE9; &#x2014; &bogus; &amp</p>`},
	{"entity numeric signs", `<p>&#+65; &#-5; &#0; &#x110000; &#9999999999;</p>`},
	{"self closing", `<div><br/><img src=x/><span/>text</span></div>`},
	{"self closing raw", `<div><script/>not raw</div>`},
	{"void tags", `<div>a<br>b<hr>c<img src="i.png">d</div>`},
	{"duplicate attrs", `<div class="first" class="second" id="" id="later">x</div>`},
	{"attr forms", `<div class = 'sq' id=unquoted itemprop data-x="&quot;q&quot;">v</div>`},
	{"attr malformed", `<div ="oops" class="ok">v</div>`},
	{"block closes p", `<p>para<div>block</div><p>p2<table><tr><td>c</table>`},
	{"nested p no close", `<p>a<span>b</span>c<p>d`},
	{"whitespace text", "<div>  \t\n  </div><span> a  b  c </span>"},
	{"deep nesting", `<a1><a2><a3><a4><a5><a6><a7><a8>deep</a8></a7></a6></a5></a4></a3></a2></a1>`},
	{"text at top level", `leading<div>mid</div>trailing`},
	{"end tag case fold", `<DIV CLASS="X">a</DIV><P>b</ P >`},
	{"empty page", ``},
	{"only text", `just text, no tags &amp; one entity`},
	{"only comment", `<!-- nothing else -->`},
	{"unclosed comment", `a<!-- never ends`},
	{"unclosed tag at eof", `<div class="x`},
	{"mixed case raw", `<SCRIPT>x</ScRiPt><p>after</p>`},
}

func TestStreamMatchesDOMEdgeCases(t *testing.T) {
	for _, tc := range edgeCases {
		t.Run(tc.name, func(t *testing.T) {
			for _, maxText := range []int{0, 3, 12, 40, 1 << 20} {
				diffStream(t, tc.html, maxText)
			}
		})
	}
}

func TestStreamMatchesDOMWebsim(t *testing.T) {
	crawl := websim.GenerateCrawl(websim.CrawlConfig{Seed: 3, Scale: 0.02, MaxSitePages: 12})
	pages := 0
	for _, site := range crawl.Sites {
		for _, pg := range site.Pages {
			diffStream(t, pg.HTML, 40)
			pages++
		}
		if pages > 120 {
			break
		}
	}
	if pages == 0 {
		t.Fatal("websim generated no pages")
	}
}

func TestStreamFieldsDriver(t *testing.T) {
	html := `<html><body><div class="a">Hello</div><p>one <b>two</b></p></body></html>`
	doc := dom.Parse(html)
	defer doc.Release()
	want := dom.TextFields(doc)
	i := 0
	dom.StreamFields([]byte(html), func(f *dom.StreamField) {
		if i >= len(want) {
			t.Fatalf("extra field %q", f.Text())
		}
		n := want[i]
		if got := string(f.Text()); got != n.Text() {
			t.Fatalf("field %d: stream %q, dom %q", i, got, n.Text())
		}
		if got := string(f.AppendXPath(nil)); got != n.XPath() {
			t.Fatalf("field %d xpath: stream %q, dom %q", i, got, n.XPath())
		}
		if f.Page().Tag(f.Parent()) != n.Parent.Tag && n.Parent.Type == dom.ElementNode {
			t.Fatalf("field %d parent tag mismatch", i)
		}
		i++
	})
	if i != len(want) {
		t.Fatalf("fields: stream %d, dom %d", i, len(want))
	}
}

func TestStreamScratchReuse(t *testing.T) {
	sc := dom.NewStreamScratch()
	for round := 0; round < 3; round++ {
		for _, tc := range edgeCases {
			p := sc.Stream([]byte(tc.html), dom.StreamOptions{MaxText: 40, Attrs: streamAttrs, Signature: true})
			doc := dom.Parse(tc.html)
			fields := dom.TextFields(doc)
			if p.Fields() != len(fields) {
				t.Fatalf("round %d %s: stream %d fields, dom %d", round, tc.name, p.Fields(), len(fields))
			}
			for i, n := range fields {
				if string(p.FieldText(i)) != n.Text() {
					t.Fatalf("round %d %s field %d: %q vs %q", round, tc.name, i, p.FieldText(i), n.Text())
				}
			}
			doc.Release()
		}
	}
}

func TestStreamSignatureWatermark(t *testing.T) {
	html := `<html><body><div class="a">x</div><div class="b">y</div><div class="a">z</div></body></html>`
	sc := dom.NewStreamScratch()
	p := sc.Stream([]byte(html), dom.StreamOptions{Attrs: []string{"class"}, Signature: true})
	if p.SignatureKeys() != 5 {
		t.Fatalf("signature keys = %d, want 5", p.SignatureKeys())
	}
	full := p.AppendSignature(nil, 0)
	prefix := p.AppendSignature(nil, 2) // html, body only
	if len(prefix) >= len(full) {
		t.Fatalf("prefix signature (%d keys) not smaller than full (%d)", len(prefix), len(full))
	}
	// The prefix is the sorted dedup of the first two document-order keys.
	if fmt.Sprint(bytesToStrings(prefix)) != fmt.Sprint([]string{"html", "html/body"}) {
		t.Fatalf("prefix signature = %q", bytesToStrings(prefix))
	}
}

func bytesToStrings(bs [][]byte) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = string(b)
	}
	return out
}
