package dom

import (
	"bytes"
	"unicode"
	"unicode/utf8"
)

// This file holds the byte-level lexical helpers behind the streaming
// serve path (stream.go): entity decoding, whitespace collapsing, tag-name
// folding and raw-text scanning that operate on []byte without converting
// to string. Each helper mirrors a string-path counterpart in token.go /
// node.go byte-for-byte — the streaming differential tests assert the two
// paths agree on every output — so behavioural changes must land in both.

// appendDecodeEntities appends s with named and numeric character
// references resolved — the []byte counterpart of DecodeEntities.
//
//ceres:allocfree
func appendDecodeEntities(dst, s []byte) []byte {
	for {
		amp := bytes.IndexByte(s, '&')
		if amp < 0 {
			return append(dst, s...)
		}
		dst = append(dst, s[:amp]...)
		s = s[amp:]
		r, n := decodeOneEntityBytes(s)
		if n == 0 {
			dst = append(dst, '&')
			s = s[1:]
		} else {
			dst = utf8.AppendRune(dst, r)
			s = s[n:]
		}
	}
}

// decodeOneEntityBytes is decodeOneEntity over bytes: it decodes the
// character reference at the start of s (s[0] == '&'), returning the rune
// and the number of bytes consumed, or (0,0) if s does not start a valid
// reference.
func decodeOneEntityBytes(s []byte) (rune, int) {
	semi := bytes.IndexByte(s, ';')
	if semi < 0 || semi == 1 || semi > 32 {
		return 0, 0
	}
	body := s[1:semi]
	if body[0] == '#' {
		num := body[1:]
		hex := false
		if len(num) > 0 && (num[0] == 'x' || num[0] == 'X') {
			hex = true
			num = num[1:]
		}
		v, ok := parseEntityNum(num, hex)
		if !ok || v <= 0 || v > 0x10FFFF {
			return 0, 0
		}
		return rune(v), semi + 1
	}
	if r, ok := namedEntities[string(body)]; ok {
		return r, semi + 1
	}
	return 0, 0
}

// parseEntityNum parses a numeric character reference body the way
// decodeOneEntity's strconv.ParseInt call does: an optional sign, then
// base-10 or base-16 digits, bounded to 32 bits. Negative references are
// rejected outright — the caller rejects v <= 0 anyway.
//
//ceres:allocfree
func parseEntityNum(s []byte, hex bool) (int64, bool) {
	if len(s) == 0 {
		return 0, false
	}
	if s[0] == '-' {
		return 0, false
	}
	if s[0] == '+' {
		s = s[1:]
		if len(s) == 0 {
			return 0, false
		}
	}
	var v int64
	for _, c := range s {
		var d int64
		switch {
		case c >= '0' && c <= '9':
			d = int64(c - '0')
		case hex && c >= 'a' && c <= 'f':
			d = int64(c-'a') + 10
		case hex && c >= 'A' && c <= 'F':
			d = int64(c-'A') + 10
		default:
			return 0, false
		}
		if hex {
			v = v*16 + d
		} else {
			v = v*10 + d
		}
		if v > 1<<31-1 {
			return 0, false
		}
	}
	return v, true
}

// appendCollapse appends src to dst with whitespace collapsed exactly as
// CollapseSpace collapses a string: leading/trailing whitespace dropped,
// internal runs (including Unicode spaces) replaced by single spaces.
//
//ceres:allocfree
func appendCollapse(dst, src []byte) []byte {
	base := len(dst)
	i := 0
	for i < len(src) {
		for i < len(src) {
			c := src[i]
			if c < utf8.RuneSelf {
				if !isASCIISpace(c) {
					break
				}
				i++
			} else {
				r, n := utf8.DecodeRune(src[i:])
				if !unicode.IsSpace(r) {
					break
				}
				i += n
			}
		}
		if i >= len(src) {
			break
		}
		start := i
		for i < len(src) {
			c := src[i]
			if c < utf8.RuneSelf {
				if isASCIISpace(c) {
					break
				}
				i++
			} else {
				r, n := utf8.DecodeRune(src[i:])
				if unicode.IsSpace(r) {
					break
				}
				i += n
			}
		}
		if len(dst) > base {
			dst = append(dst, ' ')
		}
		dst = append(dst, src[start:i]...)
	}
	return dst
}

// appendCollapseBounded is appendCollapse under a length bound: it stops
// and reports overflow as soon as the collapsed output would exceed max
// bytes, mirroring Node.TextWithin's bound semantics (the full collapsed
// text must fit). On overflow dst holds a truncated prefix the caller must
// treat as unusable.
//
//ceres:allocfree
func appendCollapseBounded(dst, src []byte, max int) ([]byte, bool) {
	base := len(dst)
	i := 0
	for i < len(src) {
		for i < len(src) {
			c := src[i]
			if c < utf8.RuneSelf {
				if !isASCIISpace(c) {
					break
				}
				i++
			} else {
				r, n := utf8.DecodeRune(src[i:])
				if !unicode.IsSpace(r) {
					break
				}
				i += n
			}
		}
		if i >= len(src) {
			break
		}
		start := i
		for i < len(src) {
			c := src[i]
			if c < utf8.RuneSelf {
				if isASCIISpace(c) {
					break
				}
				i++
			} else {
				r, n := utf8.DecodeRune(src[i:])
				if unicode.IsSpace(r) {
					break
				}
				i += n
			}
		}
		need := i - start
		if len(dst) > base {
			need++
		}
		if len(dst)-base+need > max {
			return dst, true
		}
		if len(dst) > base {
			dst = append(dst, ' ')
		}
		dst = append(dst, src[start:i]...)
	}
	return dst, false
}

// appendLowerFold appends s lowercased with the same mapping
// strings.ToLower applies: ASCII fast path, unicode.ToLower for multibyte
// runes, invalid encodings replaced by utf8.RuneError.
//
//ceres:allocfree
func appendLowerFold(dst, s []byte) []byte {
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			dst = append(dst, c)
			i++
		} else {
			r, n := utf8.DecodeRune(s[i:])
			dst = utf8.AppendRune(dst, unicode.ToLower(r))
			i += n
		}
	}
	return dst
}

// foldEqBytesASCII reports whether s equals lower under ASCII case
// folding; lower must already be lowercase ASCII.
//
//ceres:allocfree
func foldEqBytesASCII(s []byte, lower string) bool {
	if len(s) != len(lower) {
		return false
	}
	for i := 0; i < len(lower); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != lower[i] {
			return false
		}
	}
	return true
}

// eqBytesString reports whether b and s hold the same bytes.
//
//ceres:allocfree
func eqBytesString(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if b[i] != s[i] {
			return false
		}
	}
	return true
}

// indexClosingTagBytes is indexClosingTag over bytes: the offset of the
// first "</tag" in s (tag already lowercase), or -1.
//
//ceres:allocfree
func indexClosingTagBytes(s []byte, tag string) int {
	for i := 0; ; {
		j := bytes.IndexByte(s[i:], '<')
		if j < 0 {
			return -1
		}
		i += j
		if len(s)-i < 2+len(tag) {
			return -1
		}
		if s[i+1] == '/' && foldEqBytesASCII(s[i+2:i+2+len(tag)], tag) {
			return i
		}
		i++
	}
}
