package dom

import (
	"strings"
	"testing"
)

const samplePage = `<!DOCTYPE html>
<html>
<head><title>Do the Right Thing (1989) - IMDb</title>
<meta charset="utf-8">
<style>.x { color: red; }</style>
</head>
<body>
<div id="content" class="main">
  <h1 itemprop="name">Do the Right Thing</h1>
  <!-- infobox -->
  <table class="infobox">
    <tr><th>Director</th><td><a href="/name/1">Spike Lee</a></td></tr>
    <tr><th>Genres</th><td><a>Comedy</a> <a>Drama</a></td></tr>
  </table>
  <ul class="cast">
    <li><a href="/name/2">Danny Aiello</a>
    <li><a href="/name/3">Ossie Davis</a>
    <li><a href="/name/1">Spike Lee</a>
  </ul>
  <p>A hot day in Brooklyn &amp; a boiling point.
  <div class="reco">
    <span>Crooklyn</span>
  </div>
  <img src="poster.jpg" alt="poster">
  <script>var x = "<div>not a tag</div>";</script>
</div>
</body>
</html>`

func TestParseBasicStructure(t *testing.T) {
	doc := Parse(samplePage)
	htmls := doc.FindAll("html")
	if len(htmls) != 1 {
		t.Fatalf("want exactly one <html>, got %d", len(htmls))
	}
	h1s := doc.FindAll("h1")
	if len(h1s) != 1 || h1s[0].Text() != "Do the Right Thing" {
		t.Fatalf("h1 parse failed: %v", h1s)
	}
	if v, _ := h1s[0].Attr("itemprop"); v != "name" {
		t.Errorf("itemprop attr = %q", v)
	}
	// Implied </li>: three list items, each one <a>.
	lis := doc.FindAll("li")
	if len(lis) != 3 {
		t.Fatalf("want 3 <li>, got %d", len(lis))
	}
	for _, li := range lis {
		if len(li.FindAll("a")) != 1 {
			t.Errorf("li should contain exactly one <a>: %q", li.Text())
		}
	}
	// <p> implicitly closed by <div class="reco">.
	ps := doc.FindAll("p")
	if len(ps) != 1 {
		t.Fatalf("want 1 <p>, got %d", len(ps))
	}
	if strings.Contains(ps[0].Text(), "Crooklyn") {
		t.Errorf("<p> should have been closed before the reco div")
	}
	if !strings.Contains(ps[0].Text(), "& a boiling point") {
		t.Errorf("entity not decoded in <p>: %q", ps[0].Text())
	}
	// Script content is raw and excluded from text fields.
	for _, f := range TextFields(doc) {
		if strings.Contains(f.Data, "not a tag") {
			t.Errorf("script content leaked into text fields")
		}
	}
	// Void element has no children.
	imgs := doc.FindAll("img")
	if len(imgs) != 1 || len(imgs[0].Children) != 0 {
		t.Errorf("img should be a void leaf")
	}
}

func TestParseTables(t *testing.T) {
	doc := Parse(`<table><tr><td>a<td>b<tr><td>c</table>`)
	trs := doc.FindAll("tr")
	if len(trs) != 2 {
		t.Fatalf("want 2 rows, got %d", len(trs))
	}
	if got := len(trs[0].FindAll("td")); got != 2 {
		t.Errorf("row 1: want 2 cells, got %d", got)
	}
	if got := len(trs[1].FindAll("td")); got != 1 {
		t.Errorf("row 2: want 1 cell, got %d", got)
	}
}

func TestParseAttributes(t *testing.T) {
	doc := Parse(`<div class='single' data-x=unquoted hidden ID="UP"><a href="?a=1&amp;b=2">x</a></div>`)
	div := doc.FindAll("div")[0]
	if v, _ := div.Attr("class"); v != "single" {
		t.Errorf("single-quoted attr: %q", v)
	}
	if v, _ := div.Attr("data-x"); v != "unquoted" {
		t.Errorf("unquoted attr: %q", v)
	}
	if _, ok := div.Attr("hidden"); !ok {
		t.Errorf("boolean attr missing")
	}
	if v, _ := div.Attr("id"); v != "UP" {
		t.Errorf("attr keys must be lowercased, values preserved: %q", v)
	}
	a := doc.FindAll("a")[0]
	if v, _ := a.Attr("href"); v != "?a=1&b=2" {
		t.Errorf("entity in attr: %q", v)
	}
	if div.AttrOr("missing", "dflt") != "dflt" {
		t.Errorf("AttrOr default failed")
	}
}

func TestParseMalformed(t *testing.T) {
	cases := []string{
		"",
		"<",
		"<<><>><",
		"just text, no tags",
		"<div><span>unclosed",
		"</div>stray end tag",
		"<div></span></div>",
		"<a href=>empty</a>",
		"<!-- unterminated comment",
		"<div 🙂=1>x</div>",
		"a < b but > c",
	}
	for _, src := range cases {
		doc := Parse(src) // must not panic
		if doc == nil {
			t.Fatalf("Parse(%q) returned nil", src)
		}
	}
	// "a < b but > c": the '<' does not start a tag, so it is text.
	doc := Parse("a < b but > c")
	if got := doc.Text(); got != "a < b but > c" {
		t.Errorf("stray angle brackets: %q", got)
	}
}

func TestEntityDecoding(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a &amp; b", "a & b"},
		{"&lt;tag&gt;", "<tag>"},
		{"&#65;&#x42;", "AB"},
		{"&unknown; stays", "&unknown; stays"},
		{"&copy; 2017", "© 2017"},
		{"Caf&eacute;", "Café"},
		{"A&mdash;B", "A—B"},
		{"&#0; bad", "&#0; bad"},
		{"& lone amp", "& lone amp"},
		{"100&nbsp;min", "100 min"},
	}
	for _, c := range cases {
		if got := DecodeEntities(c.in); got != c.want {
			t.Errorf("DecodeEntities(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTextHelpers(t *testing.T) {
	doc := Parse(`<div>  Hello <b>big</b>
	world </div>`)
	div := doc.FindAll("div")[0]
	if got := div.Text(); got != "Hello big world" {
		t.Errorf("Text() = %q", got)
	}
	if got := div.OwnText(); got != "Hello world" {
		t.Errorf("OwnText() = %q", got)
	}
}

func TestTextFieldsOrder(t *testing.T) {
	doc := Parse(`<div><span>one</span><span>two</span><b>three</b></div>`)
	fields := TextFields(doc)
	if len(fields) != 3 {
		t.Fatalf("want 3 fields, got %d", len(fields))
	}
	want := []string{"one", "two", "three"}
	for i, f := range fields {
		if CollapseSpace(f.Data) != want[i] {
			t.Errorf("field %d = %q, want %q", i, f.Data, want[i])
		}
	}
}

func TestNodeNavigation(t *testing.T) {
	doc := Parse(`<html><body><div><span>a</span><span>b</span></div></body></html>`)
	spans := doc.FindAll("span")
	if len(spans) != 2 {
		t.Fatalf("want 2 spans")
	}
	if spans[0].SiblingIndex() != 1 || spans[1].SiblingIndex() != 2 {
		t.Errorf("sibling indexes: %d, %d", spans[0].SiblingIndex(), spans[1].SiblingIndex())
	}
	div := doc.FindAll("div")[0]
	if spans[1].Ancestor(1) != div {
		t.Errorf("Ancestor(1) should be the div")
	}
	if !div.Contains(spans[0]) || spans[0].Contains(div) {
		t.Errorf("Contains misbehaving")
	}
	if spans[0].Root() != doc {
		t.Errorf("Root should be the document")
	}
	if spans[0].Depth() != 4 { // html/body/div/span
		t.Errorf("Depth = %d, want 4", spans[0].Depth())
	}
}
