// Package dom implements the HTML document model CERES operates over: a
// from-scratch HTML tokenizer and tree builder (the repository is
// stdlib-only, so golang.org/x/net/html is unavailable), absolute-XPath
// generation for every node, and the text-field enumeration that defines
// the unit of annotation and extraction (paper §2.1: "a node in the tree
// can be uniquely defined by an absolute XPath").
package dom

import "strings"

// NodeType discriminates the kinds of nodes in a parsed document.
type NodeType uint8

const (
	// DocumentNode is the synthetic root of a parsed page.
	DocumentNode NodeType = iota
	// ElementNode is a tag such as <div> with attributes and children.
	ElementNode
	// TextNode holds character data.
	TextNode
	// CommentNode holds the body of an HTML comment.
	CommentNode
)

// Attr is a single HTML attribute. Keys are lowercased by the parser.
type Attr struct {
	Key string
	Val string
}

// Node is a node of the DOM tree. Tag is set (lowercase) for ElementNode;
// Data holds text for TextNode and CommentNode.
type Node struct {
	Type     NodeType
	Tag      string
	Data     string
	Attrs    []Attr
	Parent   *Node
	Children []*Node
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(key string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// AttrOr returns the value of the named attribute, or def if absent.
func (n *Node) AttrOr(key, def string) string {
	if v, ok := n.Attr(key); ok {
		return v
	}
	return def
}

// AppendChild adds c as the last child of n and sets its parent pointer.
func (n *Node) AppendChild(c *Node) {
	c.Parent = n
	n.Children = append(n.Children, c)
}

// Walk visits n and every descendant in document (pre-) order. If fn
// returns false the subtree below the current node is skipped.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Text returns the concatenation of all text in the subtree, with each text
// node's content whitespace-collapsed and the pieces joined by single
// spaces.
func (n *Node) Text() string {
	var parts []string
	n.Walk(func(m *Node) bool {
		if m.Type == TextNode {
			if t := CollapseSpace(m.Data); t != "" {
				parts = append(parts, t)
			}
		}
		return true
	})
	return strings.Join(parts, " ")
}

// OwnText returns the whitespace-collapsed concatenation of the direct text
// children of n (not descendants).
func (n *Node) OwnText() string {
	var parts []string
	for _, c := range n.Children {
		if c.Type == TextNode {
			if t := CollapseSpace(c.Data); t != "" {
				parts = append(parts, t)
			}
		}
	}
	return strings.Join(parts, " ")
}

// FindAll returns all descendant elements (including n itself) with the
// given tag, in document order.
func (n *Node) FindAll(tag string) []*Node {
	var out []*Node
	n.Walk(func(m *Node) bool {
		if m.Type == ElementNode && m.Tag == tag {
			out = append(out, m)
		}
		return true
	})
	return out
}

// Root returns the topmost ancestor of n (the DocumentNode for parsed
// pages).
func (n *Node) Root() *Node {
	for n.Parent != nil {
		n = n.Parent
	}
	return n
}

// Depth returns the number of ancestors between n and the root.
func (n *Node) Depth() int {
	d := 0
	for p := n.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// SiblingIndex returns the 1-based position of n among its parent's
// children that share n's type and tag (the XPath index), and 1 if n has no
// parent.
func (n *Node) SiblingIndex() int {
	if n.Parent == nil {
		return 1
	}
	idx := 0
	for _, s := range n.Parent.Children {
		if sameKind(s, n) {
			idx++
		}
		if s == n {
			return idx
		}
	}
	return 1
}

func sameKind(a, b *Node) bool {
	if a.Type != b.Type {
		return false
	}
	if a.Type == ElementNode {
		return a.Tag == b.Tag
	}
	return true
}

// Ancestor returns the ancestor k levels above n (k=0 is n itself), or nil
// if the tree is not that deep.
func (n *Node) Ancestor(k int) *Node {
	for ; k > 0 && n != nil; k-- {
		n = n.Parent
	}
	return n
}

// Contains reports whether m lies in the subtree rooted at n (inclusive).
func (n *Node) Contains(m *Node) bool {
	for ; m != nil; m = m.Parent {
		if m == n {
			return true
		}
	}
	return false
}

// CollapseSpace trims s and collapses internal whitespace runs to single
// spaces.
func CollapseSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
