// Package dom implements the HTML document model CERES operates over: a
// from-scratch HTML tokenizer and tree builder (the repository is
// stdlib-only, so golang.org/x/net/html is unavailable), absolute-XPath
// generation for every node, and the text-field enumeration that defines
// the unit of annotation and extraction (paper §2.1: "a node in the tree
// can be uniquely defined by an absolute XPath").
package dom

import "strings"

// NodeType discriminates the kinds of nodes in a parsed document.
type NodeType uint8

const (
	// DocumentNode is the synthetic root of a parsed page.
	DocumentNode NodeType = iota
	// ElementNode is a tag such as <div> with attributes and children.
	ElementNode
	// TextNode holds character data.
	TextNode
	// CommentNode holds the body of an HTML comment.
	CommentNode
)

// Attr is a single HTML attribute. Keys are lowercased by the parser.
type Attr struct {
	Key string
	Val string
}

// Node is a node of the DOM tree. Tag is set (lowercase) for ElementNode;
// Data holds text for TextNode and CommentNode.
type Node struct {
	Type     NodeType
	Tag      string
	Data     string
	Attrs    []Attr
	Parent   *Node
	Children []*Node

	// Structural context precomputed by Finalize so the featurization hot
	// path never re-walks the tree. Parse finalizes every document it
	// returns; AppendChild invalidates the affected caches, and the
	// accessors fall back to dynamic recomputation when a cache is absent.
	elemKids     []*Node // element children, in order (structCached)
	elemIndex    int32   // index among parent's element children
	siblingIndex int32   // 1-based XPath ordinal among same-kind siblings
	structCached bool    // elemKids + children's indices are valid

	// Text context cached lazily on first read (not by Finalize: most
	// elements' joined subtree text is never asked for, and computing it
	// eagerly duplicates the page's text at every tree level). Lazy
	// caching writes on read, so a node — in practice, a parsed page —
	// must be confined to one goroutine at a time.
	textCached    bool   // cachedText is valid
	ownCached     bool   // cachedOwnText is valid
	cachedText    string // collapsed subtree text
	cachedOwnText string // collapsed direct-child text
	textMin       int32  // known lower bound on len(Text()), from bounded walks

	// sym is the interned tag symbol (TagSym), set by Parse on element
	// nodes; 0 elsewhere. See Node.TagSymbol.
	sym int32

	// arena backs Release: set only on the DocumentNode Parse returns, so
	// the page's owner can recycle the tree's node slabs when done.
	arena *nodeArena
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(key string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// AttrOr returns the value of the named attribute, or def if absent.
func (n *Node) AttrOr(key, def string) string {
	if v, ok := n.Attr(key); ok {
		return v
	}
	return def
}

// AppendChild adds c as the last child of n and sets its parent pointer.
// Appending to a finalized tree invalidates the caches the new child makes
// stale: n's child-structure context and the subtree-text caches of n and
// every ancestor.
func (n *Node) AppendChild(c *Node) {
	c.Parent = n
	n.Children = append(n.Children, c)
	if n.structCached {
		n.structCached = false
		n.elemKids = nil
	}
	if n.ownCached {
		n.ownCached = false
		n.cachedOwnText = ""
	}
	// Subtree-text caches can be filled at any level independently (a
	// bounded probe caches a node without touching its children), so
	// every ancestor must be cleared, cached or not.
	for p := n; p != nil; p = p.Parent {
		p.textCached = false
		p.cachedText = ""
		p.textMin = 0
	}
}

// Finalize precomputes the per-node structural context the extraction hot
// path reads: each node's element-children slice, its index among its
// parent's element children, and its 1-based same-kind sibling ordinal
// (the XPath index). Parse finalizes every document it returns; manually
// built trees may call Finalize themselves. Text caches are not
// precomputed — Text and OwnText fill them lazily on first read, since
// eager joins would duplicate the page's text at every tree level.
func (n *Node) Finalize() {
	// Parsed trees route elemKids through the arena's pointer slabs;
	// manually built trees (nil arena) use the heap.
	n.finalize(make(map[string]int32, 8), n.arena)
}

func (n *Node) finalize(ordinals map[string]int32, a *nodeArena) {
	for _, c := range n.Children {
		c.finalize(ordinals, a)
	}
	n.refreshStruct(ordinals, a)
}

// refreshStruct rebuilds n's child-structure caches: the element-children
// slice plus each child's element index and same-kind sibling ordinal.
func (n *Node) refreshStruct(ordinals map[string]int32, a *nodeArena) {
	n.elemKids = nil
	if len(n.Children) > 0 {
		clear(ordinals)
		elems := 0
		for _, c := range n.Children {
			if c.Type == ElementNode {
				elems++
			}
		}
		if elems > 0 {
			if a != nil {
				n.elemKids = a.ptrs(elems)
			} else {
				n.elemKids = make([]*Node, 0, elems)
			}
		}
		for _, c := range n.Children {
			if c.Type == ElementNode {
				c.elemIndex = int32(len(n.elemKids))
				n.elemKids = append(n.elemKids, c)
			}
			k := c.kindKey()
			ordinals[k]++
			c.siblingIndex = ordinals[k]
		}
	}
	n.structCached = true
}

// kindSentinels bucket non-element node types for kindKey without
// allocating. Element tags never start with '\x00', so these cannot
// collide with tag keys.
var kindSentinels = [...]string{"\x00doc", "\x00elem", "\x00text", "\x00comment"}

// kindKey buckets siblings the way sameKind compares them: by type, and
// for elements also by tag.
func (n *Node) kindKey() string {
	if n.Type == ElementNode {
		return n.Tag
	}
	return kindSentinels[n.Type]
}

// joinChildText joins the children's collapsed text with single spaces,
// skipping empties. ownOnly restricts to direct text children (OwnText);
// otherwise element children contribute their subtree text, computed (and
// cached) on demand. The single-part case returns the child's string
// without copying.
func joinChildText(children []*Node, ownOnly bool) string {
	first := ""
	var sb strings.Builder
	parts := 0
	for _, c := range children {
		if ownOnly && c.Type != TextNode {
			continue
		}
		t := c.Text()
		if t == "" {
			continue
		}
		switch parts {
		case 0:
			first = t
		case 1:
			sb.Grow(len(first) + 1 + len(t))
			sb.WriteString(first)
			sb.WriteByte(' ')
			sb.WriteString(t)
		default:
			sb.WriteByte(' ')
			sb.WriteString(t)
		}
		parts++
	}
	if parts <= 1 {
		return first
	}
	return sb.String()
}

// ElementSiblings returns the element children of n's parent (including n
// itself), in document order — the sibling context §4.2's structural
// features read. A parentless node is its own sole sibling. On finalized
// trees this returns the cached slice without walking or allocating.
func (n *Node) ElementSiblings() []*Node {
	p := n.Parent
	if p == nil {
		return []*Node{n}
	}
	if p.structCached {
		return p.elemKids
	}
	out := make([]*Node, 0, len(p.Children))
	for _, c := range p.Children {
		if c.Type == ElementNode {
			out = append(out, c)
		}
	}
	return out
}

// ElementIndex returns n's position within ElementSiblings, or -1 when n
// is not an element child of its parent. A parentless node is at index 0.
func (n *Node) ElementIndex() int {
	p := n.Parent
	if p == nil {
		return 0
	}
	if p.structCached && n.Type == ElementNode {
		return int(n.elemIndex)
	}
	idx := 0
	for _, c := range p.Children {
		if c == n {
			if n.Type == ElementNode {
				return idx
			}
			return -1
		}
		if c.Type == ElementNode {
			idx++
		}
	}
	return -1
}

// Walk visits n and every descendant in document (pre-) order. If fn
// returns false the subtree below the current node is skipped.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Text returns the concatenation of all text in the subtree, with each text
// node's content whitespace-collapsed and the pieces joined by single
// spaces. The result is computed on first read and cached; a repeat read
// is a plain string load. Caching writes on read, so concurrent Text calls
// on one tree require external synchronization (pages are confined to one
// worker at a time).
func (n *Node) Text() string {
	if n.textCached {
		return n.cachedText
	}
	switch n.Type {
	case TextNode:
		n.cachedText = CollapseSpace(n.Data)
	case CommentNode:
		n.cachedText = ""
	default:
		n.cachedText = joinChildText(n.Children, false)
	}
	n.textCached = true
	return n.cachedText
}

// TextWithin appends n's collapsed subtree text — exactly Text() — to buf
// when it fits within max bytes, reporting whether it fit. A subtree whose
// text exceeds the bound is abandoned as soon as the bound is crossed, so
// probing a huge container for a short string costs O(max), not
// O(subtree); the overflow is remembered, making repeat probes O(1). buf
// is the caller's scratch; the appended bytes alias it.
func (n *Node) TextWithin(buf []byte, max int) ([]byte, bool) {
	if int(n.textMin) > max {
		return buf, false
	}
	base := len(buf)
	out, ok := n.appendTextBounded(buf, base, base+max)
	if !ok {
		if lo := int32(max + 1); lo > n.textMin {
			n.textMin = lo
		}
		return buf, false
	}
	if !n.textCached {
		// The walk produced the full collapsed text; keep it so later
		// reads — bounded or not — are cache hits.
		n.cachedText = string(out[base:])
		n.textCached = true
	}
	return out, true
}

// appendTextBounded appends the subtree text of n to buf, joining pieces
// with single spaces (a piece appended after base gets a leading space),
// failing as soon as the result would pass limit.
func (n *Node) appendTextBounded(buf []byte, base, limit int) ([]byte, bool) {
	var t string
	switch {
	case n.textCached:
		t = n.cachedText
	case n.Type == TextNode:
		t = n.Text() // collapse once; cached for every later probe
	case n.Type == CommentNode:
		return buf, true
	default:
		for _, c := range n.Children {
			var ok bool
			if buf, ok = c.appendTextBounded(buf, base, limit); !ok {
				return buf, false
			}
		}
		return buf, true
	}
	if t == "" {
		return buf, true
	}
	need := len(t)
	if len(buf) > base {
		need++
	}
	if len(buf)+need > limit {
		return buf, false
	}
	if len(buf) > base {
		buf = append(buf, ' ')
	}
	return append(buf, t...), true
}

// OwnText returns the whitespace-collapsed concatenation of the direct text
// children of n (not descendants), computed on first read and cached. The
// same single-owner rule as Text applies.
func (n *Node) OwnText() string {
	if n.ownCached {
		return n.cachedOwnText
	}
	if n.Type != TextNode && n.Type != CommentNode {
		n.cachedOwnText = joinChildText(n.Children, true)
	}
	n.ownCached = true
	return n.cachedOwnText
}

// FindAll returns all descendant elements (including n itself) with the
// given tag, in document order.
func (n *Node) FindAll(tag string) []*Node {
	var out []*Node
	n.Walk(func(m *Node) bool {
		if m.Type == ElementNode && m.Tag == tag {
			out = append(out, m)
		}
		return true
	})
	return out
}

// Root returns the topmost ancestor of n (the DocumentNode for parsed
// pages).
func (n *Node) Root() *Node {
	for n.Parent != nil {
		n = n.Parent
	}
	return n
}

// Depth returns the number of ancestors between n and the root.
func (n *Node) Depth() int {
	d := 0
	for p := n.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// SiblingIndex returns the 1-based position of n among its parent's
// children that share n's type and tag (the XPath index), and 1 if n has no
// parent. On finalized trees this is a cached read.
func (n *Node) SiblingIndex() int {
	if n.Parent == nil {
		return 1
	}
	if n.Parent.structCached {
		return int(n.siblingIndex)
	}
	idx := 0
	for _, s := range n.Parent.Children {
		if sameKind(s, n) {
			idx++
		}
		if s == n {
			return idx
		}
	}
	return 1
}

func sameKind(a, b *Node) bool {
	if a.Type != b.Type {
		return false
	}
	if a.Type == ElementNode {
		return a.Tag == b.Tag
	}
	return true
}

// Ancestor returns the ancestor k levels above n (k=0 is n itself), or nil
// if the tree is not that deep.
func (n *Node) Ancestor(k int) *Node {
	for ; k > 0 && n != nil; k-- {
		n = n.Parent
	}
	return n
}

// Contains reports whether m lies in the subtree rooted at n (inclusive).
func (n *Node) Contains(m *Node) bool {
	for ; m != nil; m = m.Parent {
		if m == n {
			return true
		}
	}
	return false
}

// CollapseSpace trims s and collapses internal whitespace runs to single
// spaces. Already-collapsed input (the common case on template-generated
// pages) is returned as-is, or as a substring, without allocating.
func CollapseSpace(s string) string {
	// Fast path: scan for anything that forces a rewrite — a whitespace
	// byte that is not a single interior space.
	start, end := 0, len(s)
	for start < end && isASCIISpace(s[start]) {
		start++
	}
	for end > start && isASCIISpace(s[end-1]) {
		end--
	}
	clean := true
	for i := start; i < end-1; i++ {
		if isASCIISpace(s[i]) && (s[i] != ' ' || isASCIISpace(s[i+1])) {
			clean = false
			break
		}
	}
	if clean {
		// Unicode spaces (NBSP etc.) are multi-byte and invisible to the
		// byte scan; strings.Fields splits on them, so fall through when
		// any non-ASCII bytes could hide one.
		ascii := true
		for i := start; i < end; i++ {
			if s[i] >= 0x80 {
				ascii = false
				break
			}
		}
		if ascii {
			return s[start:end]
		}
	}
	return strings.Join(strings.Fields(s), " ")
}

// isASCIISpace matches the ASCII whitespace strings.Fields splits on
// (unlike the tokenizer's isSpaceByte, it includes '\v').
func isASCIISpace(b byte) bool {
	switch b {
	case ' ', '\t', '\n', '\v', '\f', '\r':
		return true
	}
	return false
}
