package fsatomic

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFile(path, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("two")); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "two" {
		t.Fatalf("read %q, %v", b, err)
	}
	fi, err := os.Stat(path)
	if err != nil || fi.Mode().Perm() != 0o644 {
		t.Fatalf("mode = %v, %v", fi.Mode(), err)
	}
	// No temp droppings.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files left behind: %v", ents)
	}
}

func TestCommitCleansUpOnFailure(t *testing.T) {
	dir := t.TempDir()
	tmp, err := os.CreateTemp(dir, ".x-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tmp.WriteString("data"); err != nil {
		t.Fatal(err)
	}
	// Renaming into a non-existent directory fails after sync/close; the
	// temp file must be gone afterwards.
	err = Commit(tmp, filepath.Join(dir, "nosuch", "final"))
	if err == nil {
		t.Fatal("commit into missing directory succeeded")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".x-") {
			t.Fatalf("temp file survived failed commit: %v", ents)
		}
	}
}
