// Package fsatomic is the one implementation of the write-to-temp,
// fsync, rename publication dance the stores and sinks share: readers
// (and crash-restarts) observe either the previous file or the complete
// new one, never a torn write, and a failed publication leaves no temp
// file behind.
package fsatomic

import (
	"os"
	"path/filepath"
)

// Commit finalizes a temp file the caller has finished writing: fsync,
// close, make world-readable (CreateTemp files are 0600) and rename over
// final, which must live in the same directory. On any error the temp
// file is closed and removed, so failed publications leave nothing
// behind. The caller must flush any buffering before Commit.
func Commit(f *os.File, final string) error {
	cleanup := func(err error) error {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Chmod(f.Name(), 0o644); err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), final); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}

// WriteFile atomically replaces path with data via a temp file in the
// same directory.
func WriteFile(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	return Commit(tmp, path)
}
