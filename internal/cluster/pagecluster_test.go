package cluster

import (
	"fmt"
	"testing"

	"ceres/internal/dom"
)

func moviePage(title string, nGenres int) string {
	genres := ""
	for i := 0; i < nGenres; i++ {
		genres += fmt.Sprintf("<a>Genre%d</a>", i)
	}
	return fmt.Sprintf(`<html><body>
		<div class="header"><h1>%s</h1></div>
		<table class="infobox"><tr><th>Director</th><td><a>Someone</a></td></tr></table>
		<div class="genres">%s</div>
	</body></html>`, title, genres)
}

func personPage(name string) string {
	return fmt.Sprintf(`<html><body>
		<section class="bio"><h2>%s</h2><p>Born somewhere.</p></section>
		<ol class="filmography"><li><a>Film A</a></li><li><a>Film B</a></li></ol>
	</body></html>`, name)
}

func TestSignatureSimilarityWithinTemplate(t *testing.T) {
	a := Signature(dom.Parse(moviePage("Movie One", 2)))
	b := Signature(dom.Parse(moviePage("Another Title Entirely", 4)))
	p := Signature(dom.Parse(personPage("Some Person")))
	within := Jaccard(a, b)
	across := Jaccard(a, p)
	if within < 0.8 {
		t.Errorf("same-template similarity = %v, want high", within)
	}
	if across >= within {
		t.Errorf("cross-template similarity %v should be below within-template %v", across, within)
	}
}

func TestClusterPagesSeparatesTemplates(t *testing.T) {
	var sigs []PageSignature
	for i := 0; i < 6; i++ {
		sigs = append(sigs, Signature(dom.Parse(moviePage(fmt.Sprintf("Movie %d", i), i%3+1))))
	}
	for i := 0; i < 4; i++ {
		sigs = append(sigs, Signature(dom.Parse(personPage(fmt.Sprintf("Person %d", i)))))
	}
	clusters := ClusterPages(sigs, PageClusterOptions{})
	if len(clusters) != 2 {
		t.Fatalf("want 2 clusters, got %d", len(clusters))
	}
	// Largest-first ordering: 6 movie pages, then 4 person pages.
	if len(clusters[0]) != 6 || len(clusters[1]) != 4 {
		t.Errorf("cluster sizes = %d, %d", len(clusters[0]), len(clusters[1]))
	}
	for _, idx := range clusters[0] {
		if idx >= 6 {
			t.Errorf("person page %d landed in the movie cluster", idx)
		}
	}
}

func TestClusterPagesAllTogether(t *testing.T) {
	var sigs []PageSignature
	for i := 0; i < 5; i++ {
		sigs = append(sigs, Signature(dom.Parse(moviePage(fmt.Sprintf("M%d", i), 2))))
	}
	clusters := ClusterPages(sigs, PageClusterOptions{Threshold: 0.5})
	if len(clusters) != 1 || len(clusters[0]) != 5 {
		t.Errorf("uniform pages should form one cluster: %v", clusters)
	}
}

func TestJaccardEdgeCases(t *testing.T) {
	empty := PageSignature{}
	one := PageSignature{"div": true}
	if Jaccard(empty, empty) != 1 {
		t.Errorf("two empties should be identical")
	}
	if Jaccard(empty, one) != 0 {
		t.Errorf("empty vs non-empty should be 0")
	}
	if Jaccard(one, one) != 1 {
		t.Errorf("self similarity should be 1")
	}
}

func TestClusterPagesEmpty(t *testing.T) {
	if got := ClusterPages(nil, PageClusterOptions{}); len(got) != 0 {
		t.Errorf("no pages: %v", got)
	}
}
