package cluster

import (
	"sort"

	"ceres/internal/dom"
)

// PageSignature is the template fingerprint of a page: the set of
// tail-truncated tag paths (with class attributes) of its elements. Pages
// generated from the same template share most of their signature; pages
// from different templates (movie vs person vs chart pages) do not.
type PageSignature map[string]bool

// Signature computes the fingerprint of a parsed page. Each element
// contributes the string of its last three ancestor-or-self tags joined
// with '/', suffixed by its class attribute when present.
func Signature(doc *dom.Node) PageSignature {
	sig := make(PageSignature)
	doc.Walk(func(n *dom.Node) bool {
		if key, ok := signatureKey(n); ok {
			sig[key] = true
		}
		return true
	})
	return sig
}

// signatureKey returns the signature entry one node contributes, shared
// by the map-based Signature and the serve-side SortedSignatureOf.
func signatureKey(n *dom.Node) (string, bool) {
	if n.Type != dom.ElementNode {
		return "", false
	}
	path := n.Tag
	if p := n.Parent; p != nil && p.Type == dom.ElementNode {
		path = p.Tag + "/" + path
		if gp := p.Parent; gp != nil && gp.Type == dom.ElementNode {
			path = gp.Tag + "/" + path
		}
	}
	if c, ok := n.Attr("class"); ok && c != "" {
		path += "." + c
	}
	return path, true
}

// Jaccard returns the Jaccard similarity of two signatures.
func Jaccard(a, b PageSignature) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for k := range small {
		if large[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// PageClusterOptions configures ClusterPages.
type PageClusterOptions struct {
	// Threshold is the minimum signature similarity for a page to join an
	// existing cluster (default 0.6). The paper observes Vertex clustering
	// is imperfect (71,440 of 73,410 Rotten Tomatoes pages fell into one
	// cluster); a mid-range threshold reproduces that behaviour: related
	// templates merge, radically different ones split.
	Threshold float64
}

// ClusterPages groups page indices into template clusters: a greedy,
// deterministic approximation of the Vertex clustering algorithm [17]. A
// page joins the first cluster whose exemplar signature is similar enough;
// otherwise it founds a new cluster. Clusters are returned largest-first,
// page order preserved within a cluster.
func ClusterPages(sigs []PageSignature, opts PageClusterOptions) [][]int {
	threshold := opts.Threshold
	if threshold == 0 {
		threshold = 0.6
	}
	type cl struct {
		exemplar PageSignature
		members  []int
	}
	var clusters []*cl
	for i, sig := range sigs {
		placed := false
		for _, c := range clusters {
			if Jaccard(sig, c.exemplar) >= threshold {
				c.members = append(c.members, i)
				placed = true
				break
			}
		}
		if !placed {
			clusters = append(clusters, &cl{exemplar: sig, members: []int{i}})
		}
	}
	sort.SliceStable(clusters, func(i, j int) bool {
		return len(clusters[i].members) > len(clusters[j].members)
	})
	out := make([][]int, len(clusters))
	for i, c := range clusters {
		out[i] = c.members
	}
	return out
}
