// Package cluster provides the two clustering procedures CERES depends on:
// agglomerative clustering over an arbitrary distance function, used to
// group the XPaths of relation-object mentions across a website (paper
// §3.2.2), and the Vertex-style page-template clustering that splits a
// website into template groups before extraction (§2.1, citing Gulhane et
// al. 2011).
package cluster

import "math"

// Agglomerative clusters n items into k clusters by repeatedly merging the
// closest pair under average linkage (the scikit-learn default behaviour
// the paper relies on), with inter-cluster distances maintained via the
// Lance–Williams update. dist(i,j) supplies the distance between items i
// and j; it is consulted once per pair. The result assigns each item a
// cluster id in [0, k'), where k' = min(k, n). k <= 0 is treated as 1.
func Agglomerative(n, k int, dist func(i, j int) float64) []int {
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = 1
	}
	return AgglomerativeWeighted(n, k, sizes, dist)
}

// AgglomerativeWeighted is Agglomerative where item i stands for sizes[i]
// identical points. CERES clusters deduplicated XPaths weighted by their
// mention counts, which is equivalent to clustering every mention but far
// cheaper.
func AgglomerativeWeighted(n, k int, sizes []int, dist func(i, j int) float64) []int {
	if n == 0 {
		return nil
	}
	if k <= 0 {
		k = 1
	}
	if k > n {
		k = n
	}
	// Distance matrix over active clusters.
	d := make([][]float64, n)
	for i := 0; i < n; i++ {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := dist(i, j)
			d[i][j] = v
			d[j][i] = v
		}
	}
	active := make([]bool, n)
	size := make([]float64, n)
	parent := make([]int, n)
	for i := 0; i < n; i++ {
		active[i] = true
		size[i] = float64(sizes[i])
		parent[i] = i
	}
	remaining := n
	for remaining > k {
		// Find the closest active pair.
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if d[i][j] < best {
					best, bi, bj = d[i][j], i, j
				}
			}
		}
		// Merge bj into bi; Lance–Williams average-linkage update.
		si, sj := size[bi], size[bj]
		for c := 0; c < n; c++ {
			if !active[c] || c == bi || c == bj {
				continue
			}
			v := (si*d[bi][c] + sj*d[bj][c]) / (si + sj)
			d[bi][c] = v
			d[c][bi] = v
		}
		size[bi] += size[bj]
		active[bj] = false
		parent[bj] = bi
		remaining--
	}
	// Resolve each item to its surviving root, then renumber compactly.
	find := func(i int) int {
		for parent[i] != i {
			i = parent[i]
		}
		return i
	}
	labels := make([]int, n)
	next := 0
	rootLabel := map[int]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		l, ok := rootLabel[r]
		if !ok {
			l = next
			rootLabel[r] = l
			next++
		}
		labels[i] = l
	}
	return labels
}

// Sizes tallies the number of items per cluster label.
func Sizes(labels []int) map[int]int {
	out := map[int]int{}
	for _, l := range labels {
		out[l]++
	}
	return out
}
