package cluster

import (
	"math"
	"math/rand"
	"testing"

	"ceres/internal/strmatch"
)

func TestAgglomerativeTwoBlobs(t *testing.T) {
	// 1-D points: two well-separated blobs.
	pts := []float64{0, 0.1, 0.2, 10, 10.1, 10.2}
	dist := func(i, j int) float64 { return math.Abs(pts[i] - pts[j]) }
	labels := Agglomerative(len(pts), 2, dist)
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Errorf("first blob split: %v", labels)
	}
	if labels[3] != labels[4] || labels[4] != labels[5] {
		t.Errorf("second blob split: %v", labels)
	}
	if labels[0] == labels[3] {
		t.Errorf("blobs merged: %v", labels)
	}
}

func TestAgglomerativeKRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]float64, 40)
	for i := range pts {
		pts[i] = rng.Float64() * 100
	}
	dist := func(i, j int) float64 { return math.Abs(pts[i] - pts[j]) }
	for _, k := range []int{1, 2, 5, 17, 40, 60, 0, -3} {
		labels := Agglomerative(len(pts), k, dist)
		got := len(Sizes(labels))
		want := k
		if want <= 0 {
			want = 1
		}
		if want > len(pts) {
			want = len(pts)
		}
		if got != want {
			t.Errorf("k=%d: got %d clusters, want %d", k, got, want)
		}
		// Partition is total: every label in [0, got).
		for _, l := range labels {
			if l < 0 || l >= got {
				t.Errorf("k=%d: label %d out of range", k, l)
			}
		}
	}
}

func TestAgglomerativeEmptyAndSingle(t *testing.T) {
	if got := Agglomerative(0, 3, nil); got != nil {
		t.Errorf("empty input: %v", got)
	}
	dist := func(i, j int) float64 { return 1 }
	got := Agglomerative(1, 3, dist)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("single item: %v", got)
	}
}

func TestAgglomerativeWeighted(t *testing.T) {
	// Three XPath shapes: a large list cluster (weight 50), a small
	// recommendation cluster (weight 3), and the list again shifted
	// (weight 30). With k=2, the two list shapes must merge because their
	// paths are nearly identical, leaving the recommendation shape alone.
	paths := []string{
		"/html[1]/body[1]/div[1]/ul[1]/li[1]/a[1]",
		"/html[1]/body[1]/div[4]/div[2]/span[1]/a[1]",
		"/html[1]/body[1]/div[1]/ul[1]/li[2]/a[1]",
	}
	weights := []int{50, 3, 30}
	dist := func(i, j int) float64 {
		return float64(strmatch.Levenshtein(paths[i], paths[j]))
	}
	labels := AgglomerativeWeighted(len(paths), 2, weights, dist)
	if labels[0] != labels[2] {
		t.Errorf("similar paths should merge: %v", labels)
	}
	if labels[0] == labels[1] {
		t.Errorf("distant path should stay alone: %v", labels)
	}
	sizes := Sizes(labels)
	if len(sizes) != 2 {
		t.Errorf("want 2 clusters, got %v", sizes)
	}
}

// TestAgglomerativeDeterministic: same input, same output.
func TestAgglomerativeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := make([]float64, 30)
	for i := range pts {
		pts[i] = rng.Float64()
	}
	dist := func(i, j int) float64 { return math.Abs(pts[i] - pts[j]) }
	a := Agglomerative(len(pts), 4, dist)
	b := Agglomerative(len(pts), 4, dist)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic labels at %d", i)
		}
	}
}
