package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"ceres/internal/dom"
)

// randSig builds a random map signature.
func randSig(rng *rand.Rand, n int) PageSignature {
	s := make(PageSignature)
	for i := 0; i < n; i++ {
		s[fmt.Sprintf("div/p%d", rng.Intn(40))] = true
	}
	return s
}

// TestJaccardSortedMatchesJaccard fuzzes random signature pairs through
// both similarity implementations.
func TestJaccardSortedMatchesJaccard(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		a := randSig(rng, rng.Intn(30))
		b := randSig(rng, rng.Intn(30))
		want := Jaccard(a, b)
		got := JaccardSorted(a.Sorted(), b.Sorted())
		if got != want {
			t.Fatalf("trial %d: JaccardSorted = %v, Jaccard = %v", trial, got, want)
		}
	}
	if JaccardSorted(nil, nil) != 1 {
		t.Errorf("two empty signatures must be identical")
	}
	if JaccardSorted(SortedSignature{"a"}, nil) != 0 {
		t.Errorf("empty vs non-empty must be 0")
	}
}

// TestRouteSortedMatchesRoute checks routing decisions (index and
// similarity, including tie-breaks) agree between representations.
func TestRouteSortedMatchesRoute(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		var exemplars []PageSignature
		var sortedEx []SortedSignature
		for i := 0; i < 1+rng.Intn(5); i++ {
			ex := randSig(rng, 5+rng.Intn(20))
			exemplars = append(exemplars, ex)
			sortedEx = append(sortedEx, ex.Sorted())
		}
		sig := randSig(rng, 5+rng.Intn(20))
		wi, ws := Route(sig, exemplars)
		gi, gs := RouteSorted(sig.Sorted(), sortedEx)
		if wi != gi || ws != gs {
			t.Fatalf("trial %d: RouteSorted = (%d, %v), Route = (%d, %v)", trial, gi, gs, wi, ws)
		}
	}
	if i, _ := RouteSorted(SortedSignature{"a"}, nil); i != -1 {
		t.Errorf("routing with no exemplars must return -1")
	}
}

// TestSortedSignatureOfMatchesSignature checks the direct-to-sorted page
// fingerprint equals the map fingerprint's sorted keys.
func TestSortedSignatureOfMatchesSignature(t *testing.T) {
	doc := dom.Parse(`<html><body>
		<div class="a"><p>x</p><p>y</p></div>
		<div class="a"><p>z</p></div>
		<table><tr><td>1</td><td>2</td></tr></table>
	</body></html>`)
	want := SortedSignature(Signature(doc).Keys())
	got := SortedSignatureOf(doc)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedSignatureOf = %v, want %v", got, want)
	}
}
