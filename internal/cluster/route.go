package cluster

import "sort"

// Routing sends a never-before-seen page to the template cluster it most
// resembles, so a trained per-cluster extractor can serve pages that were
// not part of training. This is the serve-time counterpart of
// ClusterPages: training fixes the cluster exemplars, routing only
// compares against them.

// Route returns the index of the exemplar most similar to sig, and the
// similarity. With no exemplars it returns (-1, 0). Ties go to the
// earliest exemplar, which ClusterPages orders largest-cluster-first, so
// ambiguous pages fall into the dominant template.
func Route(sig PageSignature, exemplars []PageSignature) (int, float64) {
	best, bestSim := -1, -1.0
	for i, ex := range exemplars {
		if sim := Jaccard(sig, ex); sim > bestSim {
			best, bestSim = i, sim
		}
	}
	if best < 0 {
		return -1, 0
	}
	return best, bestSim
}

// Keys returns the signature's entries sorted, for deterministic
// serialization.
func (s PageSignature) Keys() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SignatureFromKeys rebuilds a signature from its serialized key list.
func SignatureFromKeys(keys []string) PageSignature {
	s := make(PageSignature, len(keys))
	for _, k := range keys {
		s[k] = true
	}
	return s
}
