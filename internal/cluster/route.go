package cluster

import (
	"slices"
	"sort"

	"ceres/internal/dom"
)

// Routing sends a never-before-seen page to the template cluster it most
// resembles, so a trained per-cluster extractor can serve pages that were
// not part of training. This is the serve-time counterpart of
// ClusterPages: training fixes the cluster exemplars, routing only
// compares against them.

// Route returns the index of the exemplar most similar to sig, and the
// similarity. With no exemplars it returns (-1, 0). Ties go to the
// earliest exemplar, which ClusterPages orders largest-cluster-first, so
// ambiguous pages fall into the dominant template.
func Route(sig PageSignature, exemplars []PageSignature) (int, float64) {
	best, bestSim := -1, -1.0
	for i, ex := range exemplars {
		if sim := Jaccard(sig, ex); sim > bestSim {
			best, bestSim = i, sim
		}
	}
	if best < 0 {
		return -1, 0
	}
	return best, bestSim
}

// Keys returns the signature's entries sorted, for deterministic
// serialization.
func (s PageSignature) Keys() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SignatureFromKeys rebuilds a signature from its serialized key list.
func SignatureFromKeys(keys []string) PageSignature {
	s := make(PageSignature, len(keys))
	for _, k := range keys {
		s[k] = true
	}
	return s
}

// SortedSignature is a page signature as a sorted, duplicate-free key
// slice — the serving-side representation. Jaccard similarity against the
// pre-sorted cluster exemplars becomes a linear merge: no per-page set
// building, no map probes.
type SortedSignature []string

// Sorted converts the map form to the sorted form.
func (s PageSignature) Sorted() SortedSignature {
	return SortedSignature(s.Keys())
}

// SortedSignatureOf fingerprints a parsed page directly into sorted form,
// with the same key set Signature produces.
func SortedSignatureOf(doc *dom.Node) SortedSignature {
	keys := make([]string, 0, 64)
	doc.Walk(func(n *dom.Node) bool {
		if key, ok := signatureKey(n); ok {
			keys = append(keys, key)
		}
		return true
	})
	sort.Strings(keys)
	return slices.Compact(keys)
}

// JaccardSorted returns the Jaccard similarity of two sorted signatures.
// It equals Jaccard over the corresponding map signatures exactly.
func JaccardSorted(a, b SortedSignature) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// RouteSorted is Route over pre-sorted signatures: the serve-path variant
// that compares one page against every exemplar without rebuilding sets.
// Ties break identically to Route (earliest exemplar wins).
func RouteSorted(sig SortedSignature, exemplars []SortedSignature) (int, float64) {
	best, bestSim := -1, -1.0
	for i, ex := range exemplars {
		if sim := JaccardSorted(sig, ex); sim > bestSim {
			best, bestSim = i, sim
		}
	}
	if best < 0 {
		return -1, 0
	}
	return best, bestSim
}

// JaccardSortedBytes is JaccardSorted where the page side is sorted,
// duplicate-free byte views (the streaming serve path's signature form);
// it equals JaccardSorted over the converted strings exactly, without
// materializing them.
func JaccardSortedBytes(a [][]byte, b SortedSignature) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch c := compareBytesString(a[i], b[j]); {
		case c == 0:
			inter++
			i++
			j++
		case c < 0:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// RouteSortedBytes is RouteSorted for a byte-view page signature, with
// identical tie-breaking (earliest exemplar wins).
func RouteSortedBytes(sig [][]byte, exemplars []SortedSignature) (int, float64) {
	best, bestSim := -1, -1.0
	for i, ex := range exemplars {
		if sim := JaccardSortedBytes(sig, ex); sim > bestSim {
			best, bestSim = i, sim
		}
	}
	if best < 0 {
		return -1, 0
	}
	return best, bestSim
}

// compareBytesString is bytes.Compare against a string, avoiding the
// []byte(string) conversion on the routing hot path.
func compareBytesString(b []byte, s string) int {
	n := len(b)
	if len(s) < n {
		n = len(s)
	}
	for i := 0; i < n; i++ {
		if b[i] != s[i] {
			if b[i] < s[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(b) < len(s):
		return -1
	case len(b) > len(s):
		return 1
	}
	return 0
}
