// Package strmatch implements the string normalization and fuzzy matching
// primitives CERES uses to align knowledge-base entity names with text
// fields on webpages (paper §3.1.1, following the content-redundancy
// matcher of Gulhane et al., PVLDB 2010).
//
// The package is dependency-free and deterministic. All matching is done on
// normalized forms: Unicode-lowercased, accent-folded (for the Latin-1
// supplement and Latin Extended-A ranges that cover the paper's seven
// languages), punctuation-stripped, whitespace-collapsed.
package strmatch

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// foldRune maps accented Latin letters onto their ASCII base letter. It
// covers Latin-1 Supplement and Latin Extended-A, which is sufficient for
// the Czech, Danish, Icelandic, Italian, Indonesian and Slovak site content
// the CommonCrawl experiment simulates.
func foldRune(r rune) rune {
	switch {
	case r >= 'à' && r <= 'å', r >= 'À' && r <= 'Å', r == 'ā', r == 'ă', r == 'ą':
		return 'a'
	case r == 'ç', r == 'Ç', r == 'ć', r == 'č', r == 'ĉ', r == 'ċ':
		return 'c'
	case r == 'ď', r == 'đ', r == 'ð', r == 'Ð':
		return 'd'
	case r >= 'è' && r <= 'ë', r >= 'È' && r <= 'Ë', r == 'ē', r == 'ĕ', r == 'ė', r == 'ę', r == 'ě':
		return 'e'
	case r == 'ĝ', r == 'ğ', r == 'ġ', r == 'ģ':
		return 'g'
	case r == 'ĥ', r == 'ħ':
		return 'h'
	case r >= 'ì' && r <= 'ï', r >= 'Ì' && r <= 'Ï', r == 'ĩ', r == 'ī', r == 'ĭ', r == 'į', r == 'ı':
		return 'i'
	case r == 'ĵ':
		return 'j'
	case r == 'ķ':
		return 'k'
	case r == 'ĺ', r == 'ļ', r == 'ľ', r == 'ŀ', r == 'ł':
		return 'l'
	case r == 'ñ', r == 'Ñ', r == 'ń', r == 'ņ', r == 'ň':
		return 'n'
	case r >= 'ò' && r <= 'ö', r >= 'Ò' && r <= 'Ö', r == 'ø', r == 'Ø', r == 'ō', r == 'ŏ', r == 'ő':
		return 'o'
	case r == 'ŕ', r == 'ŗ', r == 'ř':
		return 'r'
	case r == 'ś', r == 'ŝ', r == 'ş', r == 'š':
		return 's'
	case r == 'ţ', r == 'ť', r == 'ŧ', r == 'þ', r == 'Þ':
		return 't'
	case r >= 'ù' && r <= 'ü', r >= 'Ù' && r <= 'Ü', r == 'ũ', r == 'ū', r == 'ŭ', r == 'ů', r == 'ű', r == 'ų':
		return 'u'
	case r == 'ŵ':
		return 'w'
	case r == 'ý', r == 'ÿ', r == 'Ý', r == 'ŷ':
		return 'y'
	case r == 'ź', r == 'ż', r == 'ž':
		return 'z'
	case r == 'æ', r == 'Æ':
		return 'a' // "ae" collapses to its head letter; see Normalize.
	case r == 'œ', r == 'Œ':
		return 'o'
	case r == 'ß':
		return 's'
	}
	return r
}

// Normalize canonicalizes a string for matching: lowercase, accent-fold,
// replace punctuation with spaces, collapse runs of whitespace, and trim.
// Normalize is idempotent: Normalize(Normalize(s)) == Normalize(s).
func Normalize(s string) string {
	var buf [96]byte
	return string(NormalizeInto(buf[:0], s))
}

// NormalizeInto appends the normalized form of s (as Normalize would return
// it) to dst and returns the extended slice. It allocates only when dst's
// capacity is exceeded, so callers that reuse a scratch buffer normalize
// with zero allocations.
func NormalizeInto(dst []byte, s string) []byte {
	start := len(dst)
	lastSpace := true // suppress leading spaces
	for i := 0; i < len(s); {
		// ASCII bytes — the overwhelming share of harvest text — skip
		// the rune decode and the Unicode tables: foldRune is identity
		// below 0x80 and case/class checks are two comparisons.
		if c := s[i]; c < utf8.RuneSelf {
			i++
			switch {
			case 'a' <= c && c <= 'z' || '0' <= c && c <= '9':
				dst = append(dst, c)
				lastSpace = false
			case 'A' <= c && c <= 'Z':
				dst = append(dst, c+('a'-'A'))
				lastSpace = false
			default:
				if !lastSpace {
					dst = append(dst, ' ')
					lastSpace = true
				}
			}
			continue
		}
		r, sz := utf8.DecodeRuneInString(s[i:])
		i += sz
		r = unicode.ToLower(r)
		r = foldRune(r)
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			dst = utf8.AppendRune(dst, r)
			lastSpace = false
		default:
			if !lastSpace {
				dst = append(dst, ' ')
				lastSpace = true
			}
		}
	}
	// Runs of space collapse as they are written, so at most one trailing
	// space needs trimming — but only one this call appended.
	if n := len(dst); n > start && dst[n-1] == ' ' {
		dst = dst[:n-1]
	}
	return dst
}

// Tokens splits a normalized form of s into its word tokens.
func Tokens(s string) []string {
	n := Normalize(s)
	if n == "" {
		return nil
	}
	return strings.Split(n, " ")
}

// TokenSetKey returns a canonical key for token-order-insensitive matching:
// the sorted, deduplicated tokens of the normalized string joined by spaces.
// "Lee, Spike" and "Spike Lee" share a TokenSetKey.
func TokenSetKey(s string) string {
	return TokenSetKeyNormalized(Normalize(s))
}

// TokenSetKeyNormalized is TokenSetKey for an already-normalized string,
// skipping the re-normalization pass. When the normalized form is a single
// token, or its tokens are already sorted and unique, the input string is
// returned as-is with no allocation.
func TokenSetKeyNormalized(n string) string {
	if strings.IndexByte(n, ' ') < 0 {
		return n // zero or one token: already canonical
	}
	var buf [96]byte
	out := AppendTokenSetKey(buf[:0], n)
	if string(out) == n {
		return n
	}
	return string(out)
}

// AppendTokenSetKey appends the token-set key of an already-normalized
// string (single-space-separated tokens, no leading/trailing space) to dst
// and returns the extended slice. Index builders use it to precompute token
// keys without per-name allocation; tokens are tracked as boundary pairs so
// the input never escapes to the heap.
func AppendTokenSetKey(dst []byte, n string) []byte {
	if n == "" {
		return dst
	}
	var arr [16][2]int32
	toks := arr[:0]
	for start, rest := 0, n; ; {
		i := strings.IndexByte(rest, ' ')
		if i < 0 {
			toks = append(toks, [2]int32{int32(start), int32(start + len(rest))})
			break
		}
		toks = append(toks, [2]int32{int32(start), int32(start + i)})
		start += i + 1
		rest = rest[i+1:]
	}
	tok := func(b [2]int32) string { return n[b[0]:b[1]] }
	// Insertion sort: token lists are short (entity names).
	for i := 1; i < len(toks); i++ {
		for j := i; j > 0 && tok(toks[j]) < tok(toks[j-1]); j-- {
			toks[j], toks[j-1] = toks[j-1], toks[j]
		}
	}
	first := true
	for i, b := range toks {
		if i > 0 && tok(b) == tok(toks[i-1]) {
			continue // dedup
		}
		if !first {
			dst = append(dst, ' ')
		}
		first = false
		dst = append(dst, tok(b)...)
	}
	return dst
}

// TokenJaccard returns the Jaccard similarity of the token sets of a and b
// after normalization. Empty inputs yield 0.
func TokenJaccard(a, b string) float64 {
	ta, tb := Tokens(a), Tokens(b)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	set := make(map[string]uint8, len(ta)+len(tb))
	for _, t := range ta {
		set[t] |= 1
	}
	for _, t := range tb {
		set[t] |= 2
	}
	var inter, union int
	for _, v := range set {
		union++
		if v == 3 {
			inter++
		}
	}
	return float64(inter) / float64(union)
}
