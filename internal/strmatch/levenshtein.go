package strmatch

// Levenshtein returns the edit distance (unit-cost insertions, deletions and
// substitutions) between a and b, computed over runes. The paper uses
// Levenshtein distance between XPath strings as the metric for its global
// relation-mention clustering (§3.2.2, citing Levenshtein 1966).
func Levenshtein(a, b string) int {
	return LevenshteinRunes([]rune(a), []rune(b))
}

// LevenshteinRunes is Levenshtein over pre-split rune slices, avoiding
// repeated UTF-8 decoding when one side is compared against many others.
func LevenshteinRunes(ra, rb []rune) int {
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	// Keep the inner dimension the smaller one to minimize the row buffer.
	if len(rb) > len(ra) {
		ra, rb = rb, ra
	}
	prev := make([]int, len(rb)+1)
	curr := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		curr[0] = i
		ai := ra[i-1]
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ai == rb[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost        // substitution / match
			if d := prev[j] + 1; d < m { // deletion
				m = d
			}
			if in := curr[j-1] + 1; in < m { // insertion
				m = in
			}
			curr[j] = m
		}
		prev, curr = curr, prev
	}
	return prev[len(rb)]
}

// LevenshteinBounded returns the edit distance between a and b if it is at
// most max, and (max+1, false) otherwise. Early exit makes bulk fuzzy
// matching against a large KB affordable.
func LevenshteinBounded(a, b string, max int) (int, bool) {
	return LevenshteinBoundedRunes([]rune(a), []rune(b), max)
}

// LevenshteinBoundedRunes is LevenshteinBounded over pre-split rune slices,
// for matchers that compare one precomputed text against many candidates.
func LevenshteinBoundedRunes(ra, rb []rune, max int) (int, bool) {
	diff := len(ra) - len(rb)
	if diff < 0 {
		diff = -diff
	}
	if diff > max {
		return max + 1, false
	}
	d := LevenshteinRunes(ra, rb)
	if d > max {
		return max + 1, false
	}
	return d, true
}

// Similarity returns 1 - Levenshtein(a,b)/max(len(a),len(b)) in [0,1].
// Two empty strings have similarity 1.
func Similarity(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	n := len(ra)
	if len(rb) > n {
		n = len(rb)
	}
	if n == 0 {
		return 1
	}
	return 1 - float64(LevenshteinRunes(ra, rb))/float64(n)
}
