package strmatch

import (
	"strconv"
	"strings"
	"unicode/utf8"
)

// countryNames holds normalized names of countries and other geographic
// catch-alls that the paper's topic-identification step discards as
// low-information topic candidates (§3.1.1: "we discard strings with low
// information content, such as single digit numbers, years, and names of
// countries"). The list covers the film-producing countries featured in the
// CommonCrawl experiment plus common English site boilerplate geography.
var countryNames = map[string]bool{
	"usa": true, "united states": true, "united states of america": true,
	"uk": true, "united kingdom": true, "england": true, "scotland": true,
	"france": true, "germany": true, "italy": true, "spain": true,
	"india": true, "china": true, "japan": true, "south korea": true,
	"korea": true, "nigeria": true, "canada": true, "australia": true,
	"denmark": true, "iceland": true, "czech republic": true, "czechia": true,
	"slovakia": true, "indonesia": true, "hong kong": true, "brazil": true,
	"mexico": true, "russia": true, "ireland": true, "sweden": true,
	"norway": true, "netherlands": true, "belgium": true, "austria": true,
	"switzerland": true, "poland": true, "south africa": true, "egypt": true,
	"turkey": true, "argentina": true, "new zealand": true, "taiwan": true,
	"thailand": true, "philippines": true, "pakistan": true, "iran": true,
}

// IsLowInfo reports whether s carries too little information to serve as a
// topic candidate or annotation object: empty after normalization, a bare
// number of up to four digits (which covers single digits and years), a
// plausible year range like "1990 2000", a single character, or a country
// name.
func IsLowInfo(s string) bool {
	return IsLowInfoNormalized(Normalize(s))
}

// IsLowInfoNormalized is IsLowInfo for an already-normalized string,
// allocation-free for callers that precompute the normalized form.
func IsLowInfoNormalized(n string) bool {
	if n == "" {
		return true
	}
	if utf8.RuneCountInString(n) == 1 {
		return true
	}
	if isShortNumber(n) {
		return true
	}
	if countryNames[n] {
		return true
	}
	// "1994 1998"-style ranges (normalized form of "1994–1998"): exactly
	// two tokens, both short numbers.
	if i := strings.IndexByte(n, ' '); i >= 0 && strings.IndexByte(n[i+1:], ' ') < 0 {
		if isShortNumber(n[:i]) && isShortNumber(n[i+1:]) {
			return true
		}
	}
	return false
}

func isShortNumber(s string) bool {
	if len(s) == 0 || len(s) > 4 {
		return false
	}
	_, err := strconv.Atoi(s)
	return err == nil
}
