package strmatch

import (
	"testing"
	"testing/quick"
)

func TestFuzzyEqual(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"Spike Lee", "spike lee", true},
		{"Lee, Spike", "Spike Lee", true},
		{"Do the Right Thing", "Do the Right Thing", true},
		{"Do the Right Thing", "Do the Right Thing!", true},
		{"Do the Right Thing", "Do the Wrong Thing", false},
		{"Pilot", "Pilot", true},
		{"Pilot", "Pylot", false}, // short strings must match exactly
		{"The Shawshank Redemption", "The Shawshank Redemptian", true},
		{"", "", false},
		{"", "a", false},
		{"abc", "xyz", false},
		{"Björk", "Bjork", true},
		// "frank welker" is 12 runes, so the edit budget is 1 and a single
		// substitution is within tolerance.
		{"Frank Welker", "Frank Welkes", true},
		// Edit-budget boundaries: <8 runes tolerates 0 edits, 8-15 runes 1,
		// 16-23 runes 2, >=24 runes 3 (the cap). The budget is taken from
		// the shorter side.
		{"abcdefg", "abcdefx", false},                                             // 7 runes: budget 0
		{"abcdefgh", "abcdefgx", true},                                            // 8 runes: budget 1
		{"abcdefgh", "abcdefxy", false},                                           // 2 edits exceed budget 1
		{"abcdefghijklmnop", "abcdefghijklmnxy", true},                            // 16 runes: budget 2
		{"abcdefghijklmno", "abcdefghijklmxy", false},                             // 15 runes: budget 1 < 2 edits
		{"abcdefghijklmnopqrstuvwx", "abcdefghijklmnopqrstuxyz", true},            // 24 runes: budget 3
		{"abcdefghijklmnopqrstuvwxyz12345", "abcdefghijklmnopqrstuvwwxyz", false}, // 4 edits exceed the cap
		{"abcdefg", "abcdefgh", false},                                            // shorter side 7 runes: budget 0
	}
	for _, c := range cases {
		if got := FuzzyEqual(c.a, c.b); got != c.want {
			t.Errorf("FuzzyEqual(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEditBudget(t *testing.T) {
	cases := []struct {
		la, lb, want int
	}{
		{0, 0, 0}, {7, 7, 0}, {7, 100, 0},
		{8, 8, 1}, {15, 15, 1}, {8, 30, 1},
		{16, 16, 2}, {23, 23, 2},
		{24, 24, 3}, {100, 24, 3}, {1000, 1000, 3},
	}
	for _, c := range cases {
		if got := EditBudget(c.la, c.lb); got != c.want {
			t.Errorf("EditBudget(%d,%d) = %d, want %d", c.la, c.lb, got, c.want)
		}
	}
}

func TestFuzzyEqualReflexive(t *testing.T) {
	f := func(a string) bool {
		if Normalize(a) == "" {
			return !FuzzyEqual(a, a)
		}
		return FuzzyEqual(a, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFuzzyEqualSymmetric(t *testing.T) {
	f := func(a, b string) bool { return FuzzyEqual(a, b) == FuzzyEqual(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsLowInfo(t *testing.T) {
	low := []string{"", "7", "1989", "2017", "a", "!", "USA", "United States", "Denmark", "1994–1998", "  "}
	for _, s := range low {
		if !IsLowInfo(s) {
			t.Errorf("IsLowInfo(%q) = false, want true", s)
		}
	}
	high := []string{"Do the Right Thing", "Spike Lee", "12345", "Pilot", "New York City", "IMDb"}
	for _, s := range high {
		if IsLowInfo(s) {
			t.Errorf("IsLowInfo(%q) = true, want false", s)
		}
	}
}
