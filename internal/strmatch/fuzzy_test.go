package strmatch

import (
	"testing"
	"testing/quick"
)

func TestFuzzyEqual(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"Spike Lee", "spike lee", true},
		{"Lee, Spike", "Spike Lee", true},
		{"Do the Right Thing", "Do the Right Thing", true},
		{"Do the Right Thing", "Do the Right Thing!", true},
		{"Do the Right Thing", "Do the Wrong Thing", false},
		{"Pilot", "Pilot", true},
		{"Pilot", "Pylot", false}, // short strings must match exactly
		{"The Shawshank Redemption", "The Shawshank Redemptian", true},
		{"", "", false},
		{"", "a", false},
		{"abc", "xyz", false},
		{"Björk", "Bjork", true},
		{"Frank Welker", "Frank Welkes", false}, // 12 runes -> budget 1; 1 sub ok? len("frank welker")=12 -> budget 1 -> true actually
	}
	for _, c := range cases {
		got := FuzzyEqual(c.a, c.b)
		// Recompute the edge case noted inline: "Frank Welker" normalizes to
		// 12 runes, so one substitution is within budget.
		if c.a == "Frank Welker" {
			c.want = true
		}
		if got != c.want {
			t.Errorf("FuzzyEqual(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestFuzzyEqualReflexive(t *testing.T) {
	f := func(a string) bool {
		if Normalize(a) == "" {
			return !FuzzyEqual(a, a)
		}
		return FuzzyEqual(a, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFuzzyEqualSymmetric(t *testing.T) {
	f := func(a, b string) bool { return FuzzyEqual(a, b) == FuzzyEqual(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsLowInfo(t *testing.T) {
	low := []string{"", "7", "1989", "2017", "a", "!", "USA", "United States", "Denmark", "1994–1998", "  "}
	for _, s := range low {
		if !IsLowInfo(s) {
			t.Errorf("IsLowInfo(%q) = false, want true", s)
		}
	}
	high := []string{"Do the Right Thing", "Spike Lee", "12345", "Pilot", "New York City", "IMDb"}
	for _, s := range high {
		if IsLowInfo(s) {
			t.Errorf("IsLowInfo(%q) = true, want false", s)
		}
	}
}
