package strmatch

import "unicode/utf8"

// FuzzyEqual reports whether two strings should be considered mentions of
// the same name. It is the page-text-to-KB matcher of §3.1.1: exact match
// on normalized forms, token-order-insensitive match ("Lee, Spike" vs
// "Spike Lee"), or a small bounded edit distance that scales with length so
// short strings must match exactly.
func FuzzyEqual(a, b string) bool {
	na, nb := Normalize(a), Normalize(b)
	if na == "" || nb == "" {
		return na == nb && na != ""
	}
	if na == nb {
		return true
	}
	if TokenSetKeyNormalized(na) == TokenSetKeyNormalized(nb) {
		return true
	}
	max := EditBudget(utf8.RuneCountInString(na), utf8.RuneCountInString(nb))
	if max == 0 {
		return false
	}
	_, ok := LevenshteinBounded(na, nb, max)
	return ok
}

// EditBudget returns the edit-distance tolerance for two normalized strings
// of the given rune lengths. Strings shorter than 8 runes must match
// exactly; longer strings tolerate roughly one edit per 8 runes, capped
// at 3. The kb.Index matcher calls this with precomputed lengths.
func EditBudget(la, lb int) int {
	n := la
	if lb < n {
		n = lb
	}
	switch {
	case n < 8:
		return 0
	case n < 16:
		return 1
	case n < 24:
		return 2
	default:
		return 3
	}
}
