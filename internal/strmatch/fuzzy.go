package strmatch

// FuzzyEqual reports whether two strings should be considered mentions of
// the same name. It is the page-text-to-KB matcher of §3.1.1: exact match
// on normalized forms, token-order-insensitive match ("Lee, Spike" vs
// "Spike Lee"), or a small bounded edit distance that scales with length so
// short strings must match exactly.
func FuzzyEqual(a, b string) bool {
	na, nb := Normalize(a), Normalize(b)
	if na == "" || nb == "" {
		return na == nb && na != ""
	}
	if na == nb {
		return true
	}
	if TokenSetKey(na) == TokenSetKey(nb) {
		return true
	}
	max := editBudget(na, nb)
	if max == 0 {
		return false
	}
	_, ok := LevenshteinBounded(na, nb, max)
	return ok
}

// editBudget returns the edit-distance tolerance for two normalized strings.
// Strings shorter than 8 runes must match exactly; longer strings tolerate
// roughly one edit per 8 runes, capped at 3.
func editBudget(na, nb string) int {
	n := len([]rune(na))
	if m := len([]rune(nb)); m < n {
		n = m
	}
	switch {
	case n < 8:
		return 0
	case n < 16:
		return 1
	case n < 24:
		return 2
	default:
		return 3
	}
}
