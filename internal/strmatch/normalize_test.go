package strmatch

import (
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"   ", ""},
		{"Spike Lee", "spike lee"},
		{"Do the Right Thing", "do the right thing"},
		{"  Do   the\tRight\nThing ", "do the right thing"},
		{"Amélie", "amelie"},
		{"Město má mé jméno", "mesto ma me jmeno"},
		{"Björk Guðmundsdóttir", "bjork gudmundsdottir"},
		{"L'Avventura", "l avventura"},
		{"ISBN-13: 978-0-123", "isbn 13 978 0 123"},
		{"Señorita", "senorita"},
		{"ŁÓDŹ", "lodz"},
		{"Falsches Üben", "falsches uben"},
		{"A—B", "a b"},
		{"café", "cafe"},
		{"6' 7\"", "6 7"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		n := Normalize(s)
		return Normalize(n) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeNoDoubleSpaces(t *testing.T) {
	f := func(s string) bool {
		n := Normalize(s)
		for i := 0; i+1 < len(n); i++ {
			if n[i] == ' ' && n[i+1] == ' ' {
				return false
			}
		}
		if len(n) > 0 && (n[0] == ' ' || n[len(n)-1] == ' ') {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokens(t *testing.T) {
	got := Tokens("Do the Right Thing (1989)")
	want := []string{"do", "the", "right", "thing", "1989"}
	if len(got) != len(want) {
		t.Fatalf("Tokens = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Tokens = %v, want %v", got, want)
		}
	}
	if Tokens("  !!  ") != nil {
		t.Errorf("Tokens of punctuation should be nil")
	}
}

func TestTokenSetKey(t *testing.T) {
	if TokenSetKey("Lee, Spike") != TokenSetKey("Spike Lee") {
		t.Errorf("token-set keys should match for reordered names")
	}
	if TokenSetKey("the the the cat") != "cat the" {
		t.Errorf("TokenSetKey should deduplicate: got %q", TokenSetKey("the the the cat"))
	}
	if TokenSetKey("") != "" {
		t.Errorf("empty key expected")
	}
}

func TestNormalizeIntoMatchesNormalize(t *testing.T) {
	f := func(s string) bool {
		return string(NormalizeInto(nil, s)) == Normalize(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeIntoAppends(t *testing.T) {
	dst := []byte("prefix ")
	got := NormalizeInto(dst, "Spike Lee!")
	if string(got) != "prefix spike lee" {
		t.Errorf("NormalizeInto appended %q", got)
	}
	// A suffix that normalizes to nothing must not eat the existing prefix.
	if got := NormalizeInto([]byte("keep"), "!!!"); string(got) != "keep" {
		t.Errorf("NormalizeInto(%q, punctuation) = %q", "keep", got)
	}
}

func TestNormalizeIntoNoAllocWithCapacity(t *testing.T) {
	buf := make([]byte, 0, 128)
	allocs := testing.AllocsPerRun(100, func() {
		buf = NormalizeInto(buf[:0], "Björk Guðmundsdóttir (1965)")
	})
	if allocs != 0 {
		t.Errorf("NormalizeInto allocated %.1f times per run, want 0", allocs)
	}
}

func TestTokenSetKeyNormalized(t *testing.T) {
	f := func(s string) bool {
		return TokenSetKeyNormalized(Normalize(s)) == TokenSetKey(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Already-canonical inputs come back without allocation.
	if TokenSetKeyNormalized("cat") != "cat" || TokenSetKeyNormalized("") != "" {
		t.Error("single-token keys should round-trip")
	}
	if got := TokenSetKeyNormalized("the the cat"); got != "cat the" {
		t.Errorf("TokenSetKeyNormalized dedup: got %q", got)
	}
}

func TestAppendTokenSetKey(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"cat", "cat"},
		{"spike lee", "lee spike"},
		{"the the the cat", "cat the"},
		{"b a b a c", "a b c"},
		// More tokens than the stack-array fast path holds.
		{"q p o n m l k j i h g f e d c b a r s t u v w x y z", "a b c d e f g h i j k l m n o p q r s t u v w x y z"},
	}
	for _, c := range cases {
		if got := string(AppendTokenSetKey(nil, c.in)); got != c.want {
			t.Errorf("AppendTokenSetKey(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if got := AppendTokenSetKey([]byte("x|"), "b a"); string(got) != "x|a b" {
		t.Errorf("AppendTokenSetKey should append: got %q", got)
	}
}

func TestTokenJaccard(t *testing.T) {
	if got := TokenJaccard("a b c", "a b c"); got != 1 {
		t.Errorf("identical sets: got %v", got)
	}
	if got := TokenJaccard("a b", "c d"); got != 0 {
		t.Errorf("disjoint sets: got %v", got)
	}
	if got := TokenJaccard("a b c d", "c d e f"); got != 1.0/3.0 {
		t.Errorf("got %v, want 1/3", got)
	}
	if got := TokenJaccard("", "a"); got != 0 {
		t.Errorf("empty input: got %v", got)
	}
}

func TestTokenJaccardSymmetric(t *testing.T) {
	f := func(a, b string) bool {
		return TokenJaccard(a, b) == TokenJaccard(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
