package strmatch

import (
	"testing"
	"testing/quick"
)

func TestLevenshteinBasic(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"abc", "abc", 0},
		{"a", "b", 1},
		{"gumbo", "gambol", 2},
		{"žluťoučký", "zlutoucky", 4},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinIdentity(t *testing.T) {
	f := func(a string) bool { return Levenshtein(a, a) == 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinSymmetry(t *testing.T) {
	f := func(a, b string) bool { return Levenshtein(a, b) == Levenshtein(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinTriangle(t *testing.T) {
	f := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinBoundedByLengths(t *testing.T) {
	f := func(a, b string) bool {
		d := Levenshtein(a, b)
		la, lb := len([]rune(a)), len([]rune(b))
		max := la
		if lb > max {
			max = lb
		}
		diff := la - lb
		if diff < 0 {
			diff = -diff
		}
		return d >= diff && d <= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinUnitAppend(t *testing.T) {
	f := func(a string) bool { return Levenshtein(a, a+"x") == 1 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinBounded(t *testing.T) {
	if d, ok := LevenshteinBounded("kitten", "sitting", 3); !ok || d != 3 {
		t.Errorf("got %d,%v want 3,true", d, ok)
	}
	if d, ok := LevenshteinBounded("kitten", "sitting", 2); ok || d != 3 {
		t.Errorf("got %d,%v want 3,false", d, ok)
	}
	// Length pre-check path.
	if _, ok := LevenshteinBounded("ab", "abcdefgh", 2); ok {
		t.Errorf("length gap exceeds max: want false")
	}
}

func TestLevenshteinBoundedAgreesWithExact(t *testing.T) {
	f := func(a, b string, max uint8) bool {
		m := int(max % 8)
		d := Levenshtein(a, b)
		bd, ok := LevenshteinBounded(a, b, m)
		if d <= m {
			return ok && bd == d
		}
		return !ok && bd == m+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimilarity(t *testing.T) {
	if got := Similarity("", ""); got != 1 {
		t.Errorf("empty similarity = %v, want 1", got)
	}
	if got := Similarity("abc", "abc"); got != 1 {
		t.Errorf("equal similarity = %v, want 1", got)
	}
	if got := Similarity("abc", "xyz"); got != 0 {
		t.Errorf("disjoint similarity = %v, want 0", got)
	}
	if got := Similarity("abcd", "abce"); got != 0.75 {
		t.Errorf("got %v, want 0.75", got)
	}
}

func BenchmarkLevenshteinXPathLength(b *testing.B) {
	// Representative XPath strings (paper Figure 2 scale).
	x1 := "/html[1]/body[1]/div[3]/div[2]/div[1]/div[2]/div[4]/div[8]/div[2]/b[1]/a[1]"
	x2 := "/html[1]/body[1]/div[3]/div[2]/div[1]/div[2]/div[4]/div[9]/div[2]/b[1]/a[1]"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Levenshtein(x1, x2)
	}
}
