package xpath

import (
	"math/rand"
	"testing"

	"ceres/internal/dom"
)

func TestGeneralize(t *testing.T) {
	paths := []Path{
		MustParse("/html[1]/body[1]/ul[1]/li[1]/a[1]"),
		MustParse("/html[1]/body[1]/ul[1]/li[2]/a[1]"),
		MustParse("/html[1]/body[1]/ul[1]/li[7]/a[1]"),
	}
	pat, ok := Generalize(paths)
	if !ok {
		t.Fatalf("Generalize failed")
	}
	if got := pat.String(); got != "/html[1]/body[1]/ul[1]/li[*]/a[1]" {
		t.Errorf("pattern = %q", got)
	}
	for _, p := range paths {
		if !pat.Matches(p) {
			t.Errorf("pattern should match its input %v", p)
		}
	}
	if pat.Matches(MustParse("/html[1]/body[1]/ul[2]/li[1]/a[1]")) {
		t.Errorf("pattern should not match a different ul")
	}
	if pat.Matches(MustParse("/html[1]/body[1]/ul[1]/li[1]")) {
		t.Errorf("pattern should not match a shorter path")
	}
	if ws := pat.Wildcards(); len(ws) != 1 || ws[0] != 3 {
		t.Errorf("Wildcards = %v", ws)
	}
}

func TestGeneralizeShapeMismatch(t *testing.T) {
	if _, ok := Generalize([]Path{
		MustParse("/html[1]/body[1]/a[1]"),
		MustParse("/html[1]/body[1]/b[1]"),
	}); ok {
		t.Errorf("shape mismatch must fail")
	}
	if _, ok := Generalize(nil); ok {
		t.Errorf("empty input must fail")
	}
	// Single path generalizes to itself.
	p := MustParse("/html[1]/a[2]")
	pat, ok := Generalize([]Path{p})
	if !ok || pat.String() != "/html[1]/a[2]" {
		t.Errorf("single-path generalization = %v, %v", pat, ok)
	}
}

func TestPatternStringParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		p := genPath(r)
		pat := PatternOf(p)
		for j := range pat {
			if r.Intn(3) == 0 {
				pat[j].Index = Wildcard
			}
		}
		back, err := ParsePattern(pat.String())
		if err != nil {
			t.Fatalf("ParsePattern(%q): %v", pat.String(), err)
		}
		if back.String() != pat.String() {
			t.Fatalf("roundtrip %q -> %q", pat.String(), back.String())
		}
	}
}

func TestPatternApply(t *testing.T) {
	doc := dom.Parse(`<html><body>
		<ul><li><a>one</a></li><li><a>two</a></li><li><a>three</a></li></ul>
		<div><a>not in list</a></div>
	</body></html>`)
	pat, err := ParsePattern("/html[1]/body[1]/ul[1]/li[*]/a[1]")
	if err != nil {
		t.Fatal(err)
	}
	nodes := pat.Apply(doc)
	if len(nodes) != 3 {
		t.Fatalf("Apply found %d nodes, want 3", len(nodes))
	}
	want := []string{"one", "two", "three"}
	for i, n := range nodes {
		if n.Text() != want[i] {
			t.Errorf("node %d text = %q, want %q", i, n.Text(), want[i])
		}
	}
	// Exact pattern finds exactly one.
	exact, _ := ParsePattern("/html[1]/body[1]/ul[1]/li[2]/a[1]")
	if got := exact.Apply(doc); len(got) != 1 || got[0].Text() != "two" {
		t.Errorf("exact apply = %v", got)
	}
	// Text node steps.
	tpat, _ := ParsePattern("/html[1]/body[1]/ul[1]/li[*]/a[1]/text()[1]")
	if got := tpat.Apply(doc); len(got) != 3 || got[0].Type != dom.TextNode {
		t.Errorf("text apply found %d", len(got))
	}
}

// TestApplyAgreesWithGeneratedPaths: applying the exact pattern of any
// node's path returns exactly that node.
func TestApplyAgreesWithGeneratedPaths(t *testing.T) {
	doc := dom.Parse(`<html><body><div><span>a</span><span>b</span><ul><li>x<li>y</ul></div></body></html>`)
	doc.Walk(func(n *dom.Node) bool {
		if n.Type == dom.DocumentNode || n.Type == dom.CommentNode {
			return true
		}
		pat := PatternOf(FromNode(n))
		got := pat.Apply(doc)
		if len(got) != 1 || got[0] != n {
			t.Errorf("exact pattern %v matched %d nodes", pat, len(got))
		}
		return true
	})
}
