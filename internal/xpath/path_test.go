package xpath

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestParseAndString(t *testing.T) {
	cases := []string{
		"/",
		"/html[1]",
		"/html[1]/body[1]/div[3]/a[2]",
		"/html[1]/body[1]/div[2]/text()[1]",
	}
	for _, s := range cases {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := p.String(); got != s {
			t.Errorf("roundtrip %q -> %q", s, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "html[1]", "/html", "/html[]", "/html[0]", "/html[x]", "/html[1]/", "/[1]",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

// genPath builds a random valid path for property tests.
func genPath(r *rand.Rand) Path {
	tags := []string{"html", "body", "div", "span", "a", "li", "ul", "td", "text()"}
	n := r.Intn(8)
	p := make(Path, n)
	for i := range p {
		p[i] = Step{Tag: tags[r.Intn(len(tags))], Index: 1 + r.Intn(9)}
	}
	return p
}

func TestParsePrintRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		p := genPath(r)
		q, err := Parse(p.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", p.String(), err)
		}
		if !p.Equal(q) {
			t.Fatalf("roundtrip mismatch: %v vs %v", p, q)
		}
	}
}

func TestSameShapeAndDiff(t *testing.T) {
	a := MustParse("/html[1]/body[1]/div[2]/a[3]")
	b := MustParse("/html[1]/body[1]/div[2]/a[7]")
	c := MustParse("/html[1]/body[1]/span[2]/a[3]")
	if !a.SameShape(b) || a.SameShape(c) {
		t.Fatalf("SameShape misbehaving")
	}
	diffs, ok := a.DiffIndices(b)
	if !ok || !reflect.DeepEqual(diffs, []int{3}) {
		t.Errorf("DiffIndices = %v, %v", diffs, ok)
	}
	if _, ok := a.DiffIndices(c); ok {
		t.Errorf("DiffIndices should fail across shapes")
	}
	if diffs, ok := a.DiffIndices(a); !ok || diffs != nil {
		t.Errorf("self diff = %v, %v", diffs, ok)
	}
}

func TestStringDistanceFigure2(t *testing.T) {
	// The two IMDb acted-in paths from the paper's Figure 2 differ at two
	// node indices; their string distance must be small and positive, and
	// far smaller than the distance to an unrelated path.
	winfrey := MustParse("/html[1]/body[1]/div[3]/div[2]/div[1]/div[2]/div[4]/div[9]/div[2]/b[1]/a[1]")
	mckellen := MustParse("/html[1]/body[1]/div[3]/div[2]/div[1]/div[2]/div[4]/div[8]/div[2]/b[1]/a[1]")
	other := MustParse("/html[1]/body[1]/div[1]/span[2]/a[1]")
	near := StringDistance(winfrey, mckellen)
	far := StringDistance(winfrey, other)
	if near == 0 || near > 4 {
		t.Errorf("near distance = %d, want small positive", near)
	}
	if far <= near {
		t.Errorf("far (%d) should exceed near (%d)", far, near)
	}
	if StringDistance(winfrey, winfrey) != 0 {
		t.Errorf("self distance nonzero")
	}
}

func TestStepDistance(t *testing.T) {
	a := MustParse("/html[1]/body[1]/div[2]/a[3]")
	b := MustParse("/html[1]/body[1]/div[2]/a[7]")
	c := MustParse("/html[1]/body[1]/div[2]")
	if d := StepDistance(a, b); d != 1 {
		t.Errorf("one substituted step: got %d", d)
	}
	if d := StepDistance(a, c); d != 1 {
		t.Errorf("one deleted step: got %d", d)
	}
	if d := StepDistance(a, a); d != 0 {
		t.Errorf("self: got %d", d)
	}
	if d := StepDistance(Path{}, a); d != 4 {
		t.Errorf("empty vs 4 steps: got %d", d)
	}
}

func TestStepDistanceMetricProperties(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		a, b, c := genPath(r), genPath(r), genPath(r)
		if StepDistance(a, b) != StepDistance(b, a) {
			t.Fatalf("asymmetric: %v %v", a, b)
		}
		if StepDistance(a, c) > StepDistance(a, b)+StepDistance(b, c) {
			t.Fatalf("triangle violated: %v %v %v", a, b, c)
		}
		if StepDistance(a, a) != 0 {
			t.Fatalf("identity violated: %v", a)
		}
	}
}

func TestQuickPathStringNeverPanics(t *testing.T) {
	f := func(tags []uint8, idxs []uint8) bool {
		n := len(tags)
		if len(idxs) < n {
			n = len(idxs)
		}
		names := []string{"div", "a", "span", "li"}
		p := make(Path, n)
		for i := 0; i < n; i++ {
			p[i] = Step{Tag: names[int(tags[i])%len(names)], Index: 1 + int(idxs[i])%5}
		}
		q, err := Parse(p.String())
		return err == nil && q.Equal(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
