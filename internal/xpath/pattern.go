package xpath

import (
	"strconv"
	"strings"

	"ceres/internal/dom"
)

// Wildcard marks a pattern step whose index matches any position.
const Wildcard = -1

// Pattern is an absolute XPath in which some step indices are wildcards.
// Patterns generalize sets of concrete paths: a Vertex extraction rule is a
// pattern, and the list-sibling exclusion of §4.1 ("nodes that differ from
// these positives only at these indices") is pattern membership.
type Pattern []Step

// PatternOf converts a concrete path into an exact pattern.
func PatternOf(p Path) Pattern {
	out := make(Pattern, len(p))
	copy(out, p)
	return out
}

// Generalize builds the most specific pattern matching all the given paths:
// tags must agree (otherwise ok=false); any step position where indices
// disagree becomes a wildcard.
func Generalize(paths []Path) (Pattern, bool) {
	if len(paths) == 0 {
		return nil, false
	}
	base := paths[0]
	for _, p := range paths[1:] {
		if !base.SameShape(p) {
			return nil, false
		}
	}
	pat := PatternOf(base)
	for _, p := range paths[1:] {
		for i := range pat {
			if pat[i].Index != Wildcard && pat[i].Index != p[i].Index {
				pat[i].Index = Wildcard
			}
		}
	}
	return pat, true
}

// Matches reports whether the concrete path p is an instance of the
// pattern.
func (pat Pattern) Matches(p Path) bool {
	if len(pat) != len(p) {
		return false
	}
	for i := range pat {
		if pat[i].Tag != p[i].Tag {
			return false
		}
		if pat[i].Index != Wildcard && pat[i].Index != p[i].Index {
			return false
		}
	}
	return true
}

// String renders the pattern with * for wildcard indices, e.g.
// /html[1]/body[1]/li[*]/a[1].
func (pat Pattern) String() string {
	if len(pat) == 0 {
		return "/"
	}
	var b strings.Builder
	for _, st := range pat {
		b.WriteByte('/')
		b.WriteString(st.Tag)
		b.WriteByte('[')
		if st.Index == Wildcard {
			b.WriteByte('*')
		} else {
			b.WriteString(strconv.Itoa(st.Index))
		}
		b.WriteByte(']')
	}
	return b.String()
}

// ParsePattern parses the String form of a pattern ([*] for wildcards).
func ParsePattern(s string) (Pattern, error) {
	starFree := strings.ReplaceAll(s, "[*]", "[1000000001]")
	p, err := Parse(starFree)
	if err != nil {
		return nil, err
	}
	pat := Pattern(p)
	for i := range pat {
		if pat[i].Index == 1000000001 {
			pat[i].Index = Wildcard
		}
	}
	return pat, nil
}

// Wildcards returns the step positions that are wildcards.
func (pat Pattern) Wildcards() []int {
	var out []int
	for i, st := range pat {
		if st.Index == Wildcard {
			out = append(out, i)
		}
	}
	return out
}

// Apply walks the DOM tree and returns every node whose absolute path
// matches the pattern, in document order. Text-node steps use tag "text()".
func (pat Pattern) Apply(doc *dom.Node) []*dom.Node {
	var out []*dom.Node
	var rec func(n *dom.Node, depth int)
	rec = func(n *dom.Node, depth int) {
		if depth == len(pat) {
			out = append(out, n)
			return
		}
		st := pat[depth]
		count := map[string]int{}
		for _, c := range n.Children {
			name := stepName(c)
			if name == "" {
				continue
			}
			count[name]++
			if name != st.Tag {
				continue
			}
			if st.Index == Wildcard || st.Index == count[name] {
				rec(c, depth+1)
			}
		}
	}
	rec(doc, 0)
	return out
}

func stepName(n *dom.Node) string {
	switch n.Type {
	case dom.ElementNode:
		return n.Tag
	case dom.TextNode:
		return "text()"
	default:
		return ""
	}
}

// FromNode returns the parsed Path of a DOM node.
func FromNode(n *dom.Node) Path {
	return MustParse(n.XPath())
}
