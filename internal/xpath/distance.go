package xpath

import "ceres/internal/strmatch"

// StringDistance is the character-level Levenshtein distance between the
// canonical string forms of two paths. This is the distance the paper
// specifies for its agglomerative clustering of relation-mention XPaths
// (§3.2.2: "the Levenshtein distance between their corresponding XPaths").
func StringDistance(p, q Path) int {
	return strmatch.Levenshtein(p.String(), q.String())
}

// StepDistance is the token-level Levenshtein distance over steps: the
// minimum number of step insertions, deletions and substitutions turning p
// into q, where two steps match only if both tag and index are equal. It is
// cheaper and scale-free compared to StringDistance and is used where the
// magnitude of index numerals should not influence the metric.
func StepDistance(p, q Path) int {
	if len(p) == 0 {
		return len(q)
	}
	if len(q) == 0 {
		return len(p)
	}
	prev := make([]int, len(q)+1)
	curr := make([]int, len(q)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(p); i++ {
		curr[0] = i
		for j := 1; j <= len(q); j++ {
			cost := 1
			if p[i-1] == q[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost
			if d := prev[j] + 1; d < m {
				m = d
			}
			if in := curr[j-1] + 1; in < m {
				m = in
			}
			curr[j] = m
		}
		prev, curr = curr, prev
	}
	return prev[len(q)]
}
