package websim

import "math/rand"

// rng wraps math/rand with the sampling helpers the generators use. A
// child generator derives its own stream via fork, so adding pages to one
// site never perturbs another.
type rng struct {
	*rand.Rand
}

func newRNG(seed int64) *rng {
	return &rng{rand.New(rand.NewSource(seed))}
}

// fork derives an independent deterministic stream labelled by salt.
func (r *rng) fork(salt int64) *rng {
	const mix = int64(-0x61C8864680B583EB) // golden-ratio mixer, two's complement
	return newRNG(r.Int63() ^ salt*mix)
}

// pick returns a uniformly random element of xs.
func pick[T any](r *rng, xs []T) T {
	return xs[r.Intn(len(xs))]
}

// maybe returns true with probability p.
func (r *rng) maybe(p float64) bool {
	return r.Float64() < p
}

// between returns a uniform int in [lo, hi].
func (r *rng) between(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}

// sample returns k distinct elements of xs (or all of them if k >= len).
// Order is random; xs is not modified.
func sample[T any](r *rng, xs []T, k int) []T {
	if k >= len(xs) {
		out := make([]T, len(xs))
		copy(out, xs)
		r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	idx := r.Perm(len(xs))[:k]
	out := make([]T, k)
	for i, j := range idx {
		out[i] = xs[j]
	}
	return out
}
