package websim

import (
	"fmt"

	"ceres/internal/kb"
)

// CrawlSiteSpec describes one long-tail movie site of the CommonCrawl
// experiment (§5.1.3, Table 8): its identity, its size in the paper, and
// the failure profile §5.5.1 attributes to it.
type CrawlSiteSpec struct {
	Name       string
	Focus      string
	Language   string
	PaperPages int
	// OverlapFrac is the fraction of the site's films that exist in the
	// seed KB (the rest are long-tail entities the extractor must
	// discover).
	OverlapFrac float64
	// Failure profile (see MovieSiteStyle and §5.5.1).
	AllGenres        bool // lists every genre on every page
	RoleConflation   bool // one undivided credits list
	DailyDates       bool // daily box-office rows instead of release date
	ShuffleFields    bool // per-page field order (template variety)
	EpisodeConfusion bool // film titles colliding with TV-episode names
	ExtraCrewRows    bool // crew predicates absent from the ontology
	NonDetail        bool // chart/index pages only, no detail pages
	Layout           string
}

// CrawlRoster mirrors the 33 sites of Table 8. Page counts are the paper's;
// GenerateCrawl scales them down. Failure profiles implement the error
// categories of §5.5.1 for the sites the paper names.
var CrawlRoster = []CrawlSiteSpec{
	{Name: "themoviedb.org", Focus: "General film information", Language: "en", PaperPages: 32143, OverlapFrac: 0.75, Layout: "div"},
	{Name: "blaxploitation.com", Focus: "Blaxploitation films", Language: "en", PaperPages: 670, OverlapFrac: 0.55, Layout: "table"},
	{Name: "danksefilm.com", Focus: "Danish films", Language: "da", PaperPages: 2100, OverlapFrac: 0.45, Layout: "dl"},
	{Name: "archiviodelcinemaitaliano.it", Focus: "Italian films", Language: "it", PaperPages: 1573, OverlapFrac: 0.5, Layout: "table"},
	{Name: "filmitalia.org", Focus: "Italian films", Language: "it", PaperPages: 2847, OverlapFrac: 0.45, Layout: "div"},
	{Name: "kmdb.or.kr", Focus: "Korean films", Language: "en", PaperPages: 1351, OverlapFrac: 0.12, Layout: "table"},
	{Name: "britflicks.com", Focus: "British films", Language: "en", PaperPages: 1464, OverlapFrac: 0.6, Layout: "div"},
	{Name: "rottentomatoes.com", Focus: "Film reviews", Language: "en", PaperPages: 73410, OverlapFrac: 0.65, Layout: "div"},
	{Name: "moviecrow.com", Focus: "Indian films", Language: "en", PaperPages: 569, OverlapFrac: 0.2, Layout: "table"},
	{Name: "nfb.ca", Focus: "Canadian films", Language: "en", PaperPages: 39780, OverlapFrac: 0.3, Layout: "dl"},
	{Name: "kinobox.cz", Focus: "Czech films", Language: "cs", PaperPages: 37988, OverlapFrac: 0.35, Layout: "table"},
	{Name: "samdb.co.za", Focus: "South African films", Language: "en", PaperPages: 1424, OverlapFrac: 0.05, EpisodeConfusion: true, Layout: "div"},
	{Name: "dianying.com", Focus: "Chinese films", Language: "en", PaperPages: 15789, OverlapFrac: 0.3, EpisodeConfusion: true, Layout: "table"},
	{Name: "giantscreencinema.com", Focus: "IMAX films", Language: "en", PaperPages: 370, OverlapFrac: 0.5, Layout: "div"},
	{Name: "myanimelist.net", Focus: "Animated films", Language: "en", PaperPages: 5588, OverlapFrac: 0.35, EpisodeConfusion: true, Layout: "dl"},
	{Name: "hkmdb.com", Focus: "Hong Kong films", Language: "en", PaperPages: 6350, OverlapFrac: 0.35, ShuffleFields: true, Layout: "table"},
	{Name: "bollywoodmdb.com", Focus: "Bollywood films", Language: "en", PaperPages: 1483, OverlapFrac: 0.3, ShuffleFields: true, Layout: "div"},
	{Name: "soundtrackcollector.com", Focus: "Movie soundtracks", Language: "en", PaperPages: 4192, OverlapFrac: 0.5, ExtraCrewRows: true, Layout: "table"},
	{Name: "spicyonion.com", Focus: "Indian films", Language: "en", PaperPages: 5898, OverlapFrac: 0.35, RoleConflation: true, Layout: "div"},
	{Name: "shortfilmcentral.com", Focus: "Short films", Language: "en", PaperPages: 32613, OverlapFrac: 0.15, ShuffleFields: true, Layout: "table"},
	{Name: "filmindonesia.or.id", Focus: "Indonesian films", Language: "id", PaperPages: 2901, OverlapFrac: 0.35, RoleConflation: true, Layout: "dl"},
	{Name: "the-numbers.com", Focus: "Financial performance", Language: "en", PaperPages: 74767, OverlapFrac: 0.6, DailyDates: true, Layout: "table"},
	{Name: "sodasandpopcorn.com", Focus: "Nigerian films", Language: "en", PaperPages: 3401, OverlapFrac: 0.1, ShuffleFields: true, EpisodeConfusion: true, Layout: "div"},
	{Name: "christianfilmdatabase.com", Focus: "Christian films", Language: "en", PaperPages: 2040, OverlapFrac: 0.45, AllGenres: true, Layout: "table"},
	{Name: "jfdb.jp", Focus: "Japanese films", Language: "en", PaperPages: 1055, OverlapFrac: 0.12, ExtraCrewRows: true, Layout: "dl"},
	{Name: "kvikmyndavefurinn.is", Focus: "Icelandic films", Language: "is", PaperPages: 235, OverlapFrac: 0.35, ExtraCrewRows: true, Layout: "table"},
	{Name: "laborfilms.com", Focus: "Labor movement films", Language: "en", PaperPages: 566, OverlapFrac: 0.35, AllGenres: true, Layout: "div"},
	{Name: "africa-archive.com", Focus: "African films", Language: "en", PaperPages: 1300, OverlapFrac: 0.3, AllGenres: true, ShuffleFields: true, Layout: "dl"},
	{Name: "colonialfilm.org.uk", Focus: "Colonial-era films", Language: "en", PaperPages: 1911, OverlapFrac: 0.06, ShuffleFields: true, ExtraCrewRows: true, Layout: "div"},
	{Name: "sfd.sfu.sk", Focus: "Slovak films", Language: "sk", PaperPages: 1711, OverlapFrac: 0.08, ShuffleFields: true, ExtraCrewRows: true, Layout: "table"},
	{Name: "bcdb.com", Focus: "Animated films", Language: "en", PaperPages: 912, OverlapFrac: 0.02, Layout: "dl"},
	{Name: "bmxmdb.com", Focus: "BMX films", Language: "en", PaperPages: 924, OverlapFrac: 0.001, Layout: "div"},
	{Name: "boxofficemojo.com", Focus: "Financial performance", Language: "en", PaperPages: 74507, OverlapFrac: 0, NonDetail: true, Layout: "table"},
}

// Crawl is the generated CommonCrawl-analogue corpus.
type Crawl struct {
	Sites  []*Site
	Specs  []CrawlSiteSpec
	SeedKB *kb.KB
	World  *World
	// InKB reports which film IDs the seed KB covers, for
	// new-entity-discovery accounting (§5.5).
	InKB map[string]bool
}

// CrawlConfig scales the corpus.
type CrawlConfig struct {
	Seed int64
	// Scale multiplies the paper's per-site page counts (default 1/75,
	// min 6 pages per site).
	Scale float64
	// MaxSitePages caps any one site (default 400) to bound runtime.
	MaxSitePages int
	// Sites optionally restricts generation to a subset of the roster by
	// name; empty means all 33.
	Sites []string
}

func (c CrawlConfig) withDefaults() CrawlConfig {
	if c.Scale == 0 {
		c.Scale = 1.0 / 75.0
	}
	if c.MaxSitePages == 0 {
		c.MaxSitePages = 400
	}
	return c
}

// GenerateCrawl builds the 33-site long-tail corpus plus the seed KB: the
// KB covers only the "popular" half of the film world (with the paper's
// footnote-10 coverage bias), while sites mix covered and long-tail films
// according to their overlap fraction.
func GenerateCrawl(cfg CrawlConfig) *Crawl {
	cfg = cfg.withDefaults()
	r := newRNG(cfg.Seed)
	world := NewWorld(WorldConfig{Films: 2600, People: 2800, Series: 40, Episodes: 12, Seed: r.Int63()})

	// The popular half of films (and the people credited on them) enter
	// the KB with realistic coverage bias.
	nPopular := len(world.Films) / 2
	cov := PaperCoverage()
	cov.Cast = 0.35 // a bit denser than IMDb's 14% so small sites still annotate
	seedKB := buildCrawlKB(world, nPopular, cov, r.Int63())
	inKB := map[string]bool{}
	for i := 0; i < nPopular; i++ {
		inKB[world.Films[i].ID] = true
	}
	popular := world.Films[:nPopular]
	longTail := world.Films[nPopular:]

	want := map[string]bool{}
	for _, s := range cfg.Sites {
		want[s] = true
	}

	crawl := &Crawl{SeedKB: seedKB, World: world, InKB: inKB}
	for i, spec := range CrawlRoster {
		if len(want) > 0 && !want[spec.Name] {
			continue
		}
		pages := int(float64(spec.PaperPages) * cfg.Scale)
		if pages < 6 {
			pages = 6
		}
		if pages > cfg.MaxSitePages {
			pages = cfg.MaxSitePages
		}
		sr := r.fork(int64(i + 1))
		site := generateCrawlSite(world, spec, pages, popular, longTail, sr)
		crawl.Sites = append(crawl.Sites, site)
		crawl.Specs = append(crawl.Specs, spec)
	}
	return crawl
}

func buildCrawlKB(w *World, nPopular int, cov KBCoverage, seed int64) *kb.KB {
	// Reuse BuildKB over a truncated view of the world: films beyond the
	// popular prefix are invisible to the KB.
	return BuildKB(TrimFilms(w, nPopular), cov, seed)
}

func generateCrawlSite(w *World, spec CrawlSiteSpec, pages int, popular, longTail []*Film, r *rng) *Site {
	site := &Site{Name: spec.Name, Focus: spec.Focus, Language: spec.Language}
	if spec.NonDetail {
		for i := 0; i < pages; i++ {
			site.Pages = append(site.Pages, renderChartPage(w, spec, i, r.fork(int64(i))))
		}
		return site
	}
	style := MovieSiteStyle{
		Layout:          spec.Layout,
		Prefix:          cssPrefix(spec.Name),
		Language:        spec.Language,
		MissingFieldP:   0.08,
		Recommendations: !spec.RoleConflation && !spec.AllGenres,
		ShuffleFields:   spec.ShuffleFields,
		AllGenres:       spec.AllGenres,
		RoleConflation:  spec.RoleConflation,
		DailyDates:      spec.DailyDates,
	}
	nOverlap := int(float64(pages) * spec.OverlapFrac)
	films := make([]*Film, 0, pages)
	films = append(films, sample(r, popular, nOverlap)...)
	films = append(films, sample(r, longTail, pages-len(films))...)
	if spec.EpisodeConfusion {
		// Prefer short titles, which collide with TV-episode names in the
		// KB ("The Harbor" is both a film and somebody's episode 3).
		films = preferShortTitles(films, r)
	}
	// Recommendation rails skew to blockbusters: real sites cross-link a
	// small popular head, which is what lets Algorithm 1's uniqueness
	// filter (a candidate claimed by >= 5 pages is spurious) reject rail
	// entities as topic candidates.
	blockbusters := popular
	if len(blockbusters) > 60 {
		blockbusters = blockbusters[:60]
	}
	for i, f := range films {
		related := sample(r, blockbusters, 2)
		site.Pages = append(site.Pages, RenderMoviePage(w, f, style, spec.Name, r.fork(int64(i)), related))
	}
	if spec.ExtraCrewRows {
		// Re-render with crew rows appended: composer/camera/editor lines
		// whose predicates the ontology lacks (§5.5.1's
		// under-represented-predicate error class).
		for i, p := range site.Pages {
			site.Pages[i] = addCrewRows(w, p, films[i], style, spec.Name, r.fork(int64(1000+i)))
		}
	}
	return site
}

// preferShortTitles reorders films so that short-titled ones (ambiguous
// with episode titles) come first, without changing the set.
func preferShortTitles(films []*Film, r *rng) []*Film {
	short := make([]*Film, 0, len(films))
	long := make([]*Film, 0, len(films))
	for _, f := range films {
		if len(f.Title) <= 14 {
			short = append(short, f)
		} else {
			long = append(long, f)
		}
	}
	return append(short, long...)
}

// addCrewRows re-renders a film page with extra crew rows (music, camera,
// editing) that have no ontology predicate; their values are people, whose
// XPaths sit right next to the director/writer rows.
func addCrewRows(w *World, base *Page, f *Film, style MovieSiteStyle, siteName string, r *rng) *Page {
	b := newPageBuilder(f.Title + " - " + siteName)
	b.boilerplate(siteName, []string{label(style.Language, "home"), label(style.Language, "movies")})
	content := b.el(b.body, "div", "class", style.Prefix+"-content", "id", "content")
	h1 := b.el(content, "h1")
	b.fact(h1, "name", f.Title)
	infoTag := "table"
	if style.Layout != "table" {
		infoTag = "div"
	}
	tblStyle := style
	tblStyle.Layout = "table"
	if infoTag == "div" {
		tblStyle.Layout = "div"
	}
	info := b.el(content, infoTag, "class", style.Prefix+"-infobox")
	b.infoRow(tblStyle, info, label(style.Language, "director"), PredDirectedBy, personNames(w, f.Directors), "director")
	b.infoRow(tblStyle, info, label(style.Language, "writer"), PredWrittenBy, personNames(w, f.Writers), "writer")
	// Crew rows with no ontology predicate: rendered identically to the
	// rows above, recorded as no fact at all.
	crew := []struct{ lbl, person string }{
		{label(style.Language, "soundtrack"), crewName(w, f.Composers, r)},
		{"Camera", pick(r, w.People).Name},
		{"Editing", pick(r, w.People).Name},
	}
	for _, c := range crew {
		switch tblStyle.Layout {
		case "div":
			row := b.el(info, "div", "class", style.Prefix+"-row "+style.Prefix+"-crew")
			lab := b.el(row, "span", "class", style.Prefix+"-label")
			b.text(lab, c.lbl)
			vals := b.el(row, "span", "class", style.Prefix+"-values")
			a := b.el(vals, "a", "href", "#")
			b.text(a, c.person)
		default:
			tr := b.el(info, "tr", "class", style.Prefix+"-crew")
			th := b.el(tr, "th")
			b.text(th, c.lbl)
			td := b.el(tr, "td")
			a := b.el(td, "a", "href", "#")
			b.text(a, c.person)
		}
	}
	b.infoRow(tblStyle, info, label(style.Language, "genre"), PredGenre, f.Genres, "genre")
	b.infoRow(tblStyle, info, label(style.Language, "year"), PredReleaseYear, []string{fmt.Sprint(f.Year)}, "year")
	sec := b.el(content, "div", "class", style.Prefix+"-cast")
	h := b.el(sec, "h3")
	b.text(h, label(style.Language, "cast"))
	ul := b.el(sec, "ul")
	for _, pid := range f.Cast {
		li := b.el(ul, "li")
		b.factIn(li, "a", PredCastMember, w.Person(pid).Name, "href", "#")
	}
	b.footer(siteName)
	return b.build(base.ID, f.ID, "film", f.Title)
}

func crewName(w *World, ids []string, r *rng) string {
	if len(ids) > 0 {
		return w.Person(ids[0]).Name
	}
	return pick(r, w.People).Name
}

// renderChartPage renders a box-office chart page: rows of film titles and
// grosses, with no topic entity and no asserted detail facts — the
// boxofficemojo case, where producing zero extractions is the correct
// outcome.
func renderChartPage(w *World, spec CrawlSiteSpec, n int, r *rng) *Page {
	b := newPageBuilder(fmt.Sprintf("Daily Chart #%d - %s", n+1, spec.Name))
	b.boilerplate(spec.Name, []string{"Home", "Charts", "Calendar"})
	content := b.el(b.body, "div", "id", "content", "class", "chart")
	h1 := b.el(content, "h1")
	b.text(h1, "Daily Box Office — "+r.dateString(2016, 2017))
	tbl := b.el(content, "table", "class", "chart-table")
	head := b.el(tbl, "tr")
	for _, col := range []string{"Rank", "Title", "Gross", "Theaters"} {
		th := b.el(head, "th")
		b.text(th, col)
	}
	for i := 0; i < r.between(15, 30); i++ {
		f := pick(r, w.Films)
		tr := b.el(tbl, "tr")
		td1 := b.el(tr, "td")
		b.text(td1, fmt.Sprint(i+1))
		td2 := b.el(tr, "td")
		a := b.el(td2, "a", "href", "#")
		b.text(a, f.Title)
		td3 := b.el(tr, "td")
		b.text(td3, fmt.Sprintf("$%d", r.between(10000, 9999999)))
		td4 := b.el(tr, "td")
		b.text(td4, fmt.Sprint(r.between(50, 4000)))
	}
	b.footer(spec.Name)
	return b.build(pageID("chart", n), "", "", "")
}

// cssPrefix derives a short class prefix from a site name.
func cssPrefix(name string) string {
	out := make([]byte, 0, 6)
	for i := 0; i < len(name) && len(out) < 6; i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' {
			out = append(out, c)
		}
	}
	return string(out)
}
