package websim

import (
	"fmt"
	"strings"
)

// Word inventories for the deterministic name generators. They are large
// enough that a few thousand entities rarely collide, while deliberately
// permitting the collisions the paper highlights (episode titles reusing
// film words, people sharing surnames).

var firstNames = []string{
	"Ada", "Alan", "Amara", "Andre", "Anika", "Arjun", "Astrid", "Benedikt",
	"Bianca", "Carlos", "Chiara", "Dagny", "Dana", "Dario", "Devika",
	"Edgar", "Eleni", "Emil", "Esther", "Fatima", "Felix", "Freja", "Gita",
	"Goran", "Greta", "Hana", "Hugo", "Ines", "Ivan", "Jasper", "Jelena",
	"Joaquin", "Jonas", "Kaito", "Kamil", "Katya", "Lars", "Leila", "Luca",
	"Magnus", "Mai", "Marek", "Mina", "Naomi", "Nikolaj", "Noor", "Olaf",
	"Oksana", "Otto", "Paloma", "Pavel", "Priya", "Rafael", "Renata",
	"Rhea", "Rosa", "Samir", "Selma", "Sigrid", "Soren", "Tariq", "Tessa",
	"Tomas", "Uma", "Viktor", "Wanda", "Yara", "Yusuf", "Zara", "Zoltan",
}

var lastNames = []string{
	"Abadi", "Almeida", "Andersen", "Baran", "Bergstrom", "Bianchi",
	"Borkowski", "Calloway", "Castellanos", "Cermak", "Chandra", "Dahl",
	"Dimitrov", "Dvorak", "Eriksen", "Farouk", "Ferrante", "Fiala",
	"Gallardo", "Gruber", "Halvorsen", "Haraldsson", "Hoffmann", "Ibarra",
	"Ilic", "Janda", "Jensen", "Kapoor", "Karlsson", "Kimura", "Kowalski",
	"Kral", "Laine", "Lindqvist", "Lombardi", "Marchetti", "Mbeki",
	"Moreau", "Moretti", "Nakamura", "Navarro", "Novak", "Nygaard",
	"Okafor", "Olsen", "Ortega", "Pavlov", "Pedersen", "Petrova", "Prasad",
	"Quintero", "Rahal", "Rasmussen", "Ricci", "Rostova", "Salazar",
	"Santos", "Sedlak", "Sharma", "Sigurdsson", "Skov", "Sorensen",
	"Stastny", "Suzuki", "Szabo", "Takahashi", "Urbanek", "Valdez",
	"Vang", "Vasiliev", "Vesely", "Virtanen", "Weber", "Yamada", "Zeman",
	"Zielinski",
}

var titleAdjectives = []string{
	"Silent", "Crimson", "Broken", "Hidden", "Golden", "Burning", "Frozen",
	"Hollow", "Midnight", "Restless", "Savage", "Scarlet", "Shattered",
	"Electric", "Velvet", "Wandering", "Forgotten", "Iron", "Paper",
	"Glass", "Distant", "Bitter", "Radiant", "Quiet", "Stolen", "Wild",
	"Last", "First", "Endless", "Neon",
}

var titleNouns = []string{
	"Harbor", "Garden", "River", "Mirror", "Empire", "Winter", "Summer",
	"Horizon", "Shadow", "Lantern", "Orchard", "Station", "Voyage",
	"Archive", "Carnival", "Fortress", "Meadow", "Monsoon", "Compass",
	"Threshold", "Labyrinth", "Parade", "Reckoning", "Sanctuary", "Tides",
	"Vigil", "Whisper", "Cathedral", "Pilgrim", "Daughter", "Son",
	"Stranger", "Detective", "Kingdom", "Island", "Bridge", "Mountain",
	"Letter", "Debt", "Promise",
}

var titleGerunds = []string{
	"Chasing", "Finding", "Leaving", "Remembering", "Breaking", "Keeping",
	"Crossing", "Burning", "Waking", "Counting", "Forgetting", "Holding",
}

var genreList = []string{
	"Comedy", "Drama", "Action", "Thriller", "Romance", "Horror",
	"Documentary", "Animation", "Adventure", "Mystery", "Crime", "Fantasy",
	"Science Fiction", "Western", "Musical", "Biography", "War", "Family",
}

var cityNames = []string{
	"Brooklyn", "Copenhagen", "Prague", "Reykjavik", "Milan", "Jakarta",
	"Bratislava", "Lagos", "Mumbai", "Seoul", "Osaka", "Marseille",
	"Valparaiso", "Gdansk", "Tampere", "Aarhus", "Brno", "Bergen",
	"Cartagena", "Fortaleza", "Kyoto", "Lisbon", "Porto", "Sevilla",
	"Krakow", "Ostrava", "Malmo", "Uppsala", "Galway", "Leipzig",
	"Dresden", "Graz", "Ghent", "Utrecht", "Turin", "Palermo",
}

var mpaaRatings = []string{"G", "PG", "PG-13", "R", "NR"}

// namer produces unique names from the inventories, tracking what it has
// handed out. A small collision rate is allowed through aliasesOf.
type namer struct {
	r    *rng
	used map[string]bool
}

func newNamer(r *rng) *namer {
	return &namer{r: r, used: map[string]bool{}}
}

// unique draws from gen until it produces an unused name (suffixing a
// roman numeral after too many collisions, like real film sequels).
func (n *namer) unique(gen func() string) string {
	for i := 0; ; i++ {
		name := gen()
		if i > 20 {
			name = name + " " + roman(n.r.between(2, 5))
		}
		if !n.used[name] {
			n.used[name] = true
			return name
		}
	}
}

func roman(n int) string {
	switch n {
	case 2:
		return "II"
	case 3:
		return "III"
	case 4:
		return "IV"
	default:
		return "V"
	}
}

// personName draws a "First Last" name.
func (n *namer) personName() string {
	return n.unique(func() string {
		return pick(n.r, firstNames) + " " + pick(n.r, lastNames)
	})
}

// aliasesOf derives 0–2 plausible aliases: comma-inverted and initialed
// forms, which exercise the token-set fuzzy matcher.
func (n *namer) aliasesOf(name string) []string {
	parts := strings.SplitN(name, " ", 2)
	if len(parts) != 2 {
		return nil
	}
	var out []string
	if n.r.maybe(0.5) {
		out = append(out, parts[1]+", "+parts[0])
	}
	if n.r.maybe(0.25) {
		out = append(out, fmt.Sprintf("%c. %s", parts[0][0], parts[1]))
	}
	return out
}

// filmTitle draws a film title in one of several shapes.
func (n *namer) filmTitle() string {
	return n.unique(func() string {
		switch n.r.Intn(5) {
		case 0:
			return "The " + pick(n.r, titleAdjectives) + " " + pick(n.r, titleNouns)
		case 1:
			return pick(n.r, titleAdjectives) + " " + pick(n.r, titleNouns)
		case 2:
			return pick(n.r, titleGerunds) + " " + pick(n.r, titleNouns)
		case 3:
			return pick(n.r, titleNouns) + " of " + pick(n.r, titleNouns)
		default:
			return "The " + pick(n.r, titleNouns)
		}
	})
}

// seriesTitle draws a TV-series title.
func (n *namer) seriesTitle() string {
	return n.unique(func() string {
		return pick(n.r, titleNouns) + " " + pick(n.r, []string{"Files", "Chronicles", "Stories", "Unit", "Lane", "County"})
	})
}

// episodeTitle draws an episode title; with probability pilotP it is
// "Pilot", reproducing the paper's thousands-of-episodes-named-Pilot
// ambiguity.
func (n *namer) episodeTitle(pilotP float64) string {
	if n.r.maybe(pilotP) {
		return "Pilot"
	}
	switch n.r.Intn(3) {
	case 0:
		return "The " + pick(n.r, titleNouns)
	case 1:
		return pick(n.r, titleAdjectives) + " " + pick(n.r, titleNouns)
	default:
		return pick(n.r, titleGerunds) + " " + pick(n.r, titleNouns)
	}
}

var monthNames = []string{
	"January", "February", "March", "April", "May", "June", "July",
	"August", "September", "October", "November", "December",
}

// dateString renders a date like "12 June 1989".
func (r *rng) dateString(yearLo, yearHi int) string {
	return fmt.Sprintf("%d %s %d", r.between(1, 28), pick(r, monthNames), r.between(yearLo, yearHi))
}

// shiftDate advances a "12 June 1989"-style date by n days, clamping
// within the month (chart rows only need plausible consecutive days).
func shiftDate(date string, n int) string {
	var day, year int
	var month string
	if _, err := fmt.Sscanf(date, "%d %s %d", &day, &month, &year); err != nil {
		return date
	}
	day += n
	for day > 28 {
		day -= 27
	}
	for day < 1 {
		day += 27
	}
	return fmt.Sprintf("%d %s %d", day, month, year)
}

// isbn13 renders a deterministic pseudo-ISBN.
func (r *rng) isbn13() string {
	return fmt.Sprintf("978-%d-%04d-%04d-%d", r.between(0, 9), r.Intn(10000), r.Intn(10000), r.between(0, 9))
}

// phone renders a US-style phone number.
func (r *rng) phone() string {
	return fmt.Sprintf("(%03d) %03d-%04d", r.between(200, 989), r.between(200, 999), r.Intn(10000))
}
