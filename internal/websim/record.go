package websim

// recordStyle parameterizes the generic detail-page template used by the
// Book, NBAPlayer and University verticals. Ten sites per vertical get ten
// distinct styles, mirroring SWDE's per-site template diversity.
type recordStyle struct {
	layout       string // "table", "dl", "div"
	prefix       string
	itemprop     bool
	labelVariant int
	missingP     float64
	// extraBoilerplate injects site-specific junk sections (e.g. the
	// university search box that lists every Type value on every page).
	extraBoilerplate func(b *pageBuilder)
}

// recordRow is one labelled field of a record page.
type recordRow struct {
	field  string // stable field key, also used as CSS class
	labels []string
	pred   string
	values []string
	// required rows are never dropped by the missing-field noise.
	required bool
}

// renderRecordPage renders a generic detail page: heading plus labelled
// rows in the site's layout.
func renderRecordPage(siteName string, style recordStyle, id, topicID, topicType, topicName string, rows []recordRow, r *rng) *Page {
	b := newPageBuilder(topicName + " - " + siteName)
	b.boilerplate(siteName, []string{"Home", "Browse", "About"})
	if style.extraBoilerplate != nil {
		style.extraBoilerplate(b)
	}
	content := b.el(b.body, "div", "id", "content", "class", style.prefix+"-detail")
	hattrs := []string{"class", style.prefix + "-heading"}
	if style.itemprop {
		hattrs = append(hattrs, "itemprop", "name")
	}
	heading := b.el(content, "h1", hattrs...)
	b.fact(heading, "name", topicName)

	ms := MovieSiteStyle{Layout: style.layout, Prefix: style.prefix, UseItemprop: style.itemprop}
	infoTag := "div"
	switch style.layout {
	case "table":
		infoTag = "table"
	case "dl":
		infoTag = "dl"
	}
	info := b.el(content, infoTag, "class", style.prefix+"-info")
	for _, row := range rows {
		if !row.required && r.maybe(style.missingP) {
			continue
		}
		lbl := row.labels[style.labelVariant%len(row.labels)]
		b.infoRow(ms, info, lbl, row.pred, row.values, row.field)
	}
	b.footer(siteName)
	return b.build(id, topicID, topicType, topicName)
}
