package websim

import (
	"fmt"

	"ceres/internal/dom"
)

// MovieSiteStyle parameterizes the movie detail-page template of one site:
// layout family, CSS vocabulary, language, and the per-site failure modes
// the paper's §5.5.1 discussion catalogues.
type MovieSiteStyle struct {
	// Layout selects the infobox family: "table", "dl" or "div".
	Layout string
	// Prefix namespaces CSS classes, so sites do not share features.
	Prefix string
	// Language selects field labels (ISO code; see labels.go).
	Language string
	// MissingFieldP is the probability any optional field is dropped from
	// a page (templates tolerate missing data, §2.1).
	MissingFieldP float64
	// Recommendations adds a related-films rail whose cards repeat the
	// genres of *other* films — the Example 3.2 annotation trap.
	Recommendations bool
	// ShuffleFields permutes infobox row order per page (the
	// "template variety" error class: colonialfilm, bollywoodmdb).
	ShuffleFields bool
	// AllGenres lists every genre in the vocabulary on every page (the
	// christianfilmdatabase/laborfilms "semantic ambiguity" error class).
	AllGenres bool
	// RoleConflation collapses director/writer/cast into one undivided
	// credits list (spicyonion, filmindonesia).
	RoleConflation bool
	// DailyDates renders a long list of daily box-office dates instead of
	// a single release date (the-numbers).
	DailyDates bool
	// UseItemprop emits schema.org-style itemprop attributes, one of the
	// structural features of §4.2.
	UseItemprop bool
}

// movieFieldOrder is the canonical infobox row order.
var movieFieldOrder = []string{"director", "writer", "release", "year", "rating", "genre"}

// BuildMovieSite renders one page per film in a single style — the
// convenience entry point tests, examples and the quickstart use.
// Recommendation rails draw from the whole world.
func BuildMovieSite(w *World, films []*Film, style MovieSiteStyle, siteName string, seed int64) *Site {
	r := newRNG(seed)
	site := &Site{Name: siteName, Focus: "Films", Language: style.Language}
	for i, f := range films {
		related := sample(r, w.Films, 3)
		site.Pages = append(site.Pages, RenderMoviePage(w, f, style, siteName, r.fork(int64(i)), related))
	}
	return site
}

// RenderMoviePage renders one film detail page in the site's style.
// Related films supply the recommendation rail.
func RenderMoviePage(w *World, f *Film, style MovieSiteStyle, siteName string, r *rng, related []*Film) *Page {
	b := newPageBuilder(f.Title + " - " + siteName)
	lang := style.Language
	b.boilerplate(siteName, []string{label(lang, "home"), label(lang, "movies"), label(lang, "people")})

	content := b.el(b.body, "div", "class", style.Prefix+"-content", "id", "content")
	hero := b.el(content, "div", "class", style.Prefix+"-hero")
	h1attrs := []string{}
	if style.UseItemprop {
		h1attrs = append(h1attrs, "itemprop", "name")
	}
	h1 := b.el(hero, "h1", h1attrs...)
	b.fact(h1, "name", f.Title)

	order := make([]string, len(movieFieldOrder))
	copy(order, movieFieldOrder)
	if style.ShuffleFields {
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}

	if style.RoleConflation {
		// One undivided credits list: directors, writers and cast all
		// render identically, so no per-role fact is distinguishable. The
		// page still asserts cast membership for the cast entries; we
		// record only the cast facts (the site genuinely asserts "these
		// people were involved", and treating the roles as
		// indistinguishable is exactly the ambiguity the paper describes).
		sec := b.el(content, "div", "class", style.Prefix+"-credits")
		h := b.el(sec, "h3")
		b.text(h, label(lang, "people"))
		ul := b.el(sec, "ul")
		everyone := append(append(append([]string{}, f.Directors...), f.Writers...), f.Cast...)
		for _, pid := range dedup(everyone) {
			li := b.el(ul, "li")
			b.factIn(li, "a", PredCastMember, w.Person(pid).Name, "href", "/person/"+pid)
		}
	}

	infoTag := "div"
	switch style.Layout {
	case "table":
		infoTag = "table"
	case "dl":
		infoTag = "dl"
	}
	info := b.el(content, infoTag, "class", style.Prefix+"-infobox")
	for _, field := range order {
		if style.RoleConflation && (field == "director" || field == "writer") {
			continue
		}
		if r.maybe(style.MissingFieldP) && field != "director" {
			continue
		}
		switch field {
		case "director":
			values := personNames(w, f.Directors)
			b.infoRow(style, info, label(lang, "director"), PredDirectedBy, values, "director")
		case "writer":
			values := personNames(w, f.Writers)
			b.infoRow(style, info, label(lang, "writer"), PredWrittenBy, values, "writer")
		case "release":
			if style.DailyDates {
				// Box-office style: a run of daily chart rows starting on
				// the release day; subsequent rows are consecutive dates in
				// near-identical cells — the paper's the-numbers failure
				// mode, which drags film.hasReleaseDate precision to 0.41
				// in its Table 9. Only the first row asserts the release
				// date.
				sec := b.el(content, "div", "class", style.Prefix+"-boxoffice")
				h := b.el(sec, "h3")
				b.text(h, label(lang, "charts"))
				tbl := b.el(sec, "table")
				// Preview screenings precede the official release, so the
				// release-day row sits at a varying chart position — which
				// is why a model trained on these annotations learns the
				// whole chart column, not one row.
				pre := r.between(1, 9)
				post := r.between(6, 12)
				for d := -pre; d <= post; d++ {
					tr := b.el(tbl, "tr")
					if d == 0 {
						b.factIn(tr, "td", PredReleaseDate, f.ReleaseDate, "class", style.Prefix+"-date")
					} else {
						td := b.el(tr, "td", "class", style.Prefix+"-date")
						b.text(td, shiftDate(f.ReleaseDate, d))
					}
					a2 := b.el(tr, "td")
					b.text(a2, fmt.Sprintf("$%d", r.between(1000, 999999)))
				}
			} else {
				b.infoRow(style, info, label(lang, "release"), PredReleaseDate, []string{f.ReleaseDate}, "release")
			}
		case "year":
			b.infoRow(style, info, label(lang, "year"), PredReleaseYear, []string{fmt.Sprint(f.Year)}, "year")
		case "rating":
			b.infoRow(style, info, label(lang, "rating"), PredMPAARating, []string{f.Rating}, "rating")
		case "genre":
			if style.AllGenres {
				// The failure mode: every page lists the full genre
				// vocabulary (e.g. as a tag cloud); only the film's own
				// genres are facts, but they are visually identical to the
				// rest.
				sec := b.el(content, "div", "class", style.Prefix+"-genres")
				h := b.el(sec, "h3")
				b.text(h, label(lang, "genre"))
				ul := b.el(sec, "ul")
				own := map[string]bool{}
				for _, g := range f.Genres {
					own[g] = true
				}
				for _, g := range genreList {
					li := b.el(ul, "li")
					if own[g] {
						b.factIn(li, "a", PredGenre, g, "href", "#")
					} else {
						a := b.el(li, "a", "href", "#")
						b.text(a, g)
					}
				}
			} else {
				b.infoRow(style, info, label(lang, "genre"), PredGenre, f.Genres, "genre")
			}
		}
	}

	if !style.RoleConflation {
		sec := b.el(content, "div", "class", style.Prefix+"-cast")
		h := b.el(sec, "h3")
		b.text(h, label(lang, "cast"))
		ul := b.el(sec, "ul")
		for _, pid := range f.Cast {
			li := b.el(ul, "li")
			b.factIn(li, "a", PredCastMember, w.Person(pid).Name, "href", "/person/"+pid)
		}
	}

	if style.Recommendations && len(related) > 0 {
		rail := b.el(content, "div", "class", style.Prefix+"-reco")
		h := b.el(rail, "h3")
		b.text(h, "More like this")
		for _, rf := range related {
			card := b.el(rail, "div", "class", style.Prefix+"-card")
			ta := b.el(card, "a", "href", "/film/"+rf.ID)
			b.text(ta, rf.Title)
			gl := b.el(card, "div", "class", style.Prefix+"-card-genres")
			for _, g := range rf.Genres {
				span := b.el(gl, "span")
				b.text(span, g)
			}
		}
	}

	b.footer(siteName)
	return b.build(f.ID, f.ID, "film", f.Title)
}

// infoRow renders one labelled key/value row in the site's layout family,
// recording each value as a fact.
func (b *pageBuilder) infoRow(style MovieSiteStyle, info *dom.Node, lbl, pred string, values []string, fieldClass string) {
	switch style.Layout {
	case "dl":
		dt := b.el(info, "dt", "class", style.Prefix+"-"+fieldClass)
		b.text(dt, lbl)
		for _, v := range values {
			dd := b.el(info, "dd", "class", style.Prefix+"-"+fieldClass)
			b.factIn(dd, "span", pred, v)
		}
	case "div":
		row := b.el(info, "div", "class", style.Prefix+"-row "+style.Prefix+"-"+fieldClass)
		lab := b.el(row, "span", "class", style.Prefix+"-label")
		b.text(lab, lbl)
		vals := b.el(row, "span", "class", style.Prefix+"-values")
		for _, v := range values {
			b.factIn(vals, "a", pred, v, "href", "#")
		}
	default: // table
		tr := b.el(info, "tr", "class", style.Prefix+"-"+fieldClass)
		th := b.el(tr, "th")
		b.text(th, lbl)
		td := b.el(tr, "td")
		for _, v := range values {
			attrs := []string{"href", "#"}
			if style.UseItemprop {
				attrs = append(attrs, "itemprop", fieldClass)
			}
			b.factIn(td, "a", pred, v, attrs...)
		}
	}
}

func personNames(w *World, ids []string) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = w.Person(id).Name
	}
	return out
}

func dedup(xs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
