// Package websim generates the synthetic corpora this repository uses in
// place of the paper's proprietary evaluation data (SWDE, a May-2017 IMDb
// crawl, and 33 CommonCrawl movie sites — see DESIGN.md §1 for the
// substitution rationale). All generation is deterministic under a seed.
//
// The generator builds detail pages as DOM trees, records the exact text
// node carrying every asserted fact, and serializes to HTML. Because
// dom.Render∘dom.Parse is stable, the recorded XPaths remain valid after
// the extraction pipeline re-parses the page — giving node-level ground
// truth for free, which the paper's authors had to hand-label or derive
// from a supervised extractor.
package websim

import (
	"fmt"
	"sort"
)

// PageFact is one assertion a page makes about its topic entity, with the
// text node that carries it.
type PageFact struct {
	Predicate string
	Value     string
	// NodePath is the absolute XPath of the text node rendering the value.
	NodePath string
}

// Page is one generated webpage with its ground truth.
type Page struct {
	// ID is unique within a site, e.g. "film0042".
	ID   string
	HTML string
	// TopicID is the world entity the page describes; empty for non-detail
	// pages (charts, index pages).
	TopicID string
	// TopicType is the entity type of the topic ("film", "person", ...).
	TopicType string
	// TopicName is the surface name of the topic as rendered.
	TopicName string
	// Facts lists every assertion made by the page about its topic. One
	// (predicate, value) may be recorded at several node paths when the
	// template legitimately repeats it.
	Facts []PageFact
}

// GoldValues returns the distinct (predicate, value) pairs the page
// asserts.
func (p *Page) GoldValues() []PageFact {
	seen := map[string]bool{}
	var out []PageFact
	for _, f := range p.Facts {
		k := f.Predicate + "\x00" + f.Value
		if !seen[k] {
			seen[k] = true
			out = append(out, PageFact{Predicate: f.Predicate, Value: f.Value})
		}
	}
	return out
}

// GoldNodeSet returns the set of "predicate\x00nodePath" keys for
// node-level annotation scoring.
func (p *Page) GoldNodeSet() map[string]bool {
	out := make(map[string]bool, len(p.Facts))
	for _, f := range p.Facts {
		out[f.Predicate+"\x00"+f.NodePath] = true
	}
	return out
}

// Site is a generated website: a set of pages sharing templates.
type Site struct {
	Name  string
	Focus string
	// Language is an ISO-639-1 code; field labels render in this language.
	Language string
	Pages    []*Page
}

// NumPages returns the number of pages on the site.
func (s *Site) NumPages() int { return len(s.Pages) }

// DetailPages returns the pages that have a topic entity.
func (s *Site) DetailPages() []*Page {
	var out []*Page
	for _, p := range s.Pages {
		if p.TopicID != "" {
			out = append(out, p)
		}
	}
	return out
}

// Vertical is a named collection of sites with a shared predicate set —
// one row of the paper's Table 1.
type Vertical struct {
	Name       string
	Predicates []string
	Sites      []*Site
}

// TotalPages sums pages across the vertical's sites.
func (v *Vertical) TotalPages() int {
	n := 0
	for _, s := range v.Sites {
		n += s.NumPages()
	}
	return n
}

// sortedKeys returns the keys of m sorted, for deterministic iteration.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// pageID formats a page identifier.
func pageID(prefix string, n int) string {
	return fmt.Sprintf("%s%04d", prefix, n)
}
