package websim

import (
	"strings"
	"testing"
)

func TestGenerateIMDBShape(t *testing.T) {
	w := smallWorld()
	films, people := GenerateIMDB(w, IMDBConfig{FilmPages: 60, PersonPages: 20, Seed: 3})
	if films.NumPages() != 60 {
		t.Errorf("film pages = %d, want 60", films.NumPages())
	}
	if people.NumPages() != 20 {
		t.Errorf("person pages = %d, want 20", people.NumPages())
	}
	// Film site mixes film and episode templates.
	var nFilm, nEp int
	for _, p := range films.Pages {
		switch p.TopicType {
		case "film":
			nFilm++
		case "episode":
			nEp++
		}
	}
	if nEp == 0 || nFilm == 0 {
		t.Errorf("film site should mix films (%d) and episodes (%d)", nFilm, nEp)
	}
}

func TestIMDBFactPaths(t *testing.T) {
	w := smallWorld()
	films, people := GenerateIMDB(w, IMDBConfig{FilmPages: 24, PersonPages: 10, Seed: 3})
	for _, p := range films.Pages {
		verifyFactPaths(t, p)
	}
	for _, p := range people.Pages {
		verifyFactPaths(t, p)
	}
}

func TestIMDBPersonPageTraps(t *testing.T) {
	w := smallWorld()
	_, people := GenerateIMDB(w, IMDBConfig{FilmPages: 10, PersonPages: 30, Seed: 3})
	sawKnownFor, sawDev, sawAliasTrap := false, false, false
	for _, p := range people.Pages {
		if strings.Contains(p.HTML, "Known For") {
			sawKnownFor = true
		}
		if strings.Contains(p.HTML, "Projects In Development") {
			sawDev = true
		}
		person := w.Person(p.TopicID)
		if len(person.Aliases) > 0 {
			// The alias may appear inside the Self credits as an episode
			// title; when it does, only the bio-box mention is a fact.
			aliasFactPaths := 0
			for _, f := range p.Facts {
				if f.Predicate == PredAlias {
					aliasFactPaths++
				}
			}
			count := strings.Count(p.HTML, ">"+dataEscape(person.Aliases[0])+"<")
			if count > aliasFactPaths {
				sawAliasTrap = true
			}
		}
		// Known For entries must not be facts.
		for _, f := range p.Facts {
			if strings.Contains(f.NodePath, "kf-card") {
				t.Errorf("Known For card recorded as a fact: %+v", f)
			}
		}
	}
	if !sawKnownFor {
		t.Errorf("no person page has a Known For section")
	}
	if !sawDev {
		t.Errorf("no person page has Projects In Development")
	}
	if !sawAliasTrap {
		t.Errorf("alias ambiguity trap never fired across 30 person pages")
	}
}

func TestIMDBFilmPageStructure(t *testing.T) {
	w := smallWorld()
	films, _ := GenerateIMDB(w, IMDBConfig{FilmPages: 12, PersonPages: 5, Seed: 7})
	for _, p := range films.Pages {
		if p.TopicType != "film" {
			continue
		}
		f := w.Film(p.TopicID)
		// Every cast member is a fact.
		castFacts := 0
		for _, fact := range p.Facts {
			if fact.Predicate == PredCastMember {
				castFacts++
			}
		}
		if castFacts != len(f.Cast) {
			t.Errorf("page %s: %d cast facts, want %d", p.ID, castFacts, len(f.Cast))
		}
		// Recommendation rail exists and its genres are not facts.
		if !strings.Contains(p.HTML, "rec-rail") {
			t.Errorf("page %s missing recommendation rail", p.ID)
		}
		for _, fact := range p.Facts {
			if strings.Contains(fact.NodePath, "rec-") {
				t.Errorf("recommendation content recorded as fact: %+v", fact)
			}
		}
	}
}

func TestPeopleByCreditsOrdering(t *testing.T) {
	w := smallWorld()
	ppl := peopleByCredits(w)
	credits := func(p *Person) int {
		return len(p.ActedIn) + len(p.Directed) + len(p.Wrote) + len(p.Produced)
	}
	for i := 1; i < len(ppl); i++ {
		if credits(ppl[i]) > credits(ppl[i-1]) {
			t.Fatalf("ordering violated at %d", i)
		}
	}
}

// dataEscape mirrors the renderer's text escaping for search-in-HTML
// checks.
func dataEscape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}
