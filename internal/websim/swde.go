package websim

import (
	"fmt"

	"ceres/internal/kb"
)

// Predicate names for the non-movie SWDE verticals (paper Table 1).
const (
	PredBookAuthor    = "book.hasAuthor.person"
	PredBookISBN      = "book.isbn13.value"
	PredBookPublisher = "book.publisher.value"
	PredBookPubDate   = "book.publicationDate.value"

	PredNBATeam   = "player.playsFor.team"
	PredNBAHeight = "player.height.value"
	PredNBAWeight = "player.weight.value"

	PredUniPhone   = "university.phone.value"
	PredUniWebsite = "university.website.value"
	PredUniType    = "university.type.value"
)

// VerticalPredicates lists the evaluated predicates per vertical, matching
// Table 1 ("name"/title included as the topic predicate).
var VerticalPredicates = map[string][]string{
	"Movie":      {"name", PredDirectedBy, PredGenre, PredMPAARating},
	"Book":       {"name", PredBookAuthor, PredBookISBN, PredBookPublisher, PredBookPubDate},
	"NBAPlayer":  {"name", PredNBAHeight, PredNBATeam, PredNBAWeight},
	"University": {"name", PredUniPhone, PredUniWebsite, PredUniType},
}

// SWDE bundles the generated benchmark: four verticals of ten sites each,
// plus the per-vertical seed KB (the Movie KB derives from the world — the
// IMDb-dump analogue; the others derive from the ground truth of the first
// site in the vertical, as in §5.1.1).
type SWDE struct {
	Verticals map[string]*Vertical
	SeedKBs   map[string]*kb.KB
	World     *World // the movie world behind the Movie vertical
}

// SWDEConfig scales the benchmark. PagesPerSite maps vertical name to site
// size; zero entries take the ~1:10-scale defaults (Movie 200, Book 200,
// NBAPlayer 44, University 167).
type SWDEConfig struct {
	Seed         int64
	PagesPerSite map[string]int
	// BookOverlaps optionally fixes, per non-seed book site, how many of
	// its books also exist on the seed site (and hence in the seed KB) —
	// the Figure 4 sweep variable. Defaults descend from plentiful to
	// nearly none.
	BookOverlaps []int
}

func (c SWDEConfig) pages(vertical string, def int) int {
	if n, ok := c.PagesPerSite[vertical]; ok && n > 0 {
		return n
	}
	return def
}

// GenerateSWDE builds the full benchmark.
func GenerateSWDE(cfg SWDEConfig) *SWDE {
	r := newRNG(cfg.Seed)
	out := &SWDE{
		Verticals: map[string]*Vertical{},
		SeedKBs:   map[string]*kb.KB{},
	}

	// ----- Movie vertical: rendered from the shared movie world. -----
	world := NewWorld(WorldConfig{Seed: r.Int63()})
	out.World = world
	moviePages := cfg.pages("Movie", 200)
	mv := &Vertical{Name: "Movie", Predicates: VerticalPredicates["Movie"]}
	for s := 0; s < 10; s++ {
		style := MovieSiteStyle{
			Layout:          []string{"table", "dl", "div"}[s%3],
			Prefix:          fmt.Sprintf("mv%d", s),
			Language:        "en",
			MissingFieldP:   0.05 + 0.01*float64(s),
			Recommendations: s%2 == 0,
			UseItemprop:     s%4 == 0,
		}
		site := &Site{Name: fmt.Sprintf("movie-site-%d", s), Focus: "Films", Language: "en"}
		sr := r.fork(int64(100 + s))
		films := sample(sr, world.Films, moviePages)
		for _, f := range films {
			related := sample(sr, world.Films, 3)
			site.Pages = append(site.Pages, RenderMoviePage(world, f, style, site.Name, sr.fork(int64(len(site.Pages))), related))
		}
		mv.Sites = append(mv.Sites, site)
	}
	out.Verticals["Movie"] = mv
	out.SeedKBs["Movie"] = BuildKB(world, FullCoverage(), r.Int63())

	// ----- Book vertical. -----
	bookPages := cfg.pages("Book", 200)
	overlaps := cfg.BookOverlaps
	if overlaps == nil {
		overlaps = defaultBookOverlaps(bookPages)
	}
	bv, bookKB := generateBookVertical(r.fork(7), bookPages, overlaps)
	out.Verticals["Book"] = bv
	out.SeedKBs["Book"] = bookKB

	// ----- NBAPlayer vertical. -----
	nv, nbaKB := generateNBAVertical(r.fork(8), cfg.pages("NBAPlayer", 44))
	out.Verticals["NBAPlayer"] = nv
	out.SeedKBs["NBAPlayer"] = nbaKB

	// ----- University vertical. -----
	uv, uniKB := generateUniversityVertical(r.fork(9), cfg.pages("University", 167))
	out.Verticals["University"] = uv
	out.SeedKBs["University"] = uniKB

	return out
}

// defaultBookOverlaps descends from high overlap to the nearly-disjoint
// sites of Figure 4 ("four of the sites had 5 or fewer pages representing
// books existing in our KB").
func defaultBookOverlaps(pages int) []int {
	f := func(x float64) int {
		n := int(x * float64(pages))
		if n < 1 {
			n = 1
		}
		return n
	}
	return []int{f(0.6), f(0.4), f(0.25), f(0.12), f(0.06), 5, 4, 2, 1}
}

// ---------------------------------------------------------------- books

type book struct {
	id, title, isbn, publisher, pubDate string
	authors                             []string
}

func bookOntology() *kb.Ontology {
	return kb.NewOntology(
		kb.Predicate{Name: PredBookAuthor, Domain: "book", MultiValued: true},
		kb.Predicate{Name: PredBookISBN, Domain: "book"},
		kb.Predicate{Name: PredBookPublisher, Domain: "book"},
		kb.Predicate{Name: PredBookPubDate, Domain: "book"},
	)
}

var publisherNames = []string{
	"Harbor House", "Meridian Press", "Blue Lantern Books", "Cobalt & Finch",
	"Northlight Publishing", "Paper Compass", "Vantage Row", "Silver Birch",
	"Foxglove Editions", "Atlas & Crane", "Millbrook Press", "Old Harbor",
}

func generateBookVertical(r *rng, pagesPerSite int, overlaps []int) (*Vertical, *kb.KB) {
	nm := newNamer(r)
	nBooks := pagesPerSite * 6
	books := make([]*book, nBooks)
	for i := range books {
		nAuth := r.between(1, 2)
		authors := make([]string, nAuth)
		for j := range authors {
			authors[j] = nm.personName()
		}
		books[i] = &book{
			id:        fmt.Sprintf("book%05d", i),
			title:     nm.filmTitle(), // shared title generator: overlap-rich
			isbn:      r.isbn13(),
			publisher: pick(r, publisherNames),
			pubDate:   r.dateString(1990, 2016),
			authors:   authors,
		}
	}
	v := &Vertical{Name: "Book", Predicates: VerticalPredicates["Book"]}
	// Site 0 is the KB-source site (the abebooks.com analogue).
	seedBooks := sample(r, books, pagesPerSite)
	seedSet := map[string]bool{}
	for _, bk := range seedBooks {
		seedSet[bk.id] = true
	}
	var rest []*book
	for _, bk := range books {
		if !seedSet[bk.id] {
			rest = append(rest, bk)
		}
	}
	bookRows := func(bk *book) []recordRow {
		return []recordRow{
			{field: "author", labels: []string{"Author", "Written by", "By"}, pred: PredBookAuthor, values: bk.authors, required: true},
			{field: "publisher", labels: []string{"Publisher", "Published by", "Imprint"}, pred: PredBookPublisher, values: []string{bk.publisher}},
			{field: "pubdate", labels: []string{"Publication Date", "Published", "Date"}, pred: PredBookPubDate, values: []string{bk.pubDate}},
			{field: "isbn", labels: []string{"ISBN-13", "ISBN", "EAN"}, pred: PredBookISBN, values: []string{bk.isbn}},
		}
	}
	for s := 0; s < 10; s++ {
		style := recordStyle{
			layout:       []string{"table", "dl", "div"}[s%3],
			prefix:       fmt.Sprintf("bk%d", s),
			itemprop:     s%3 == 1,
			labelVariant: s % 3,
			missingP:     0.06,
		}
		site := &Site{Name: fmt.Sprintf("book-site-%d", s), Focus: "Books", Language: "en"}
		sr := r.fork(int64(200 + s))
		var siteBooks []*book
		if s == 0 {
			siteBooks = seedBooks
		} else {
			overlap := overlaps[(s-1)%len(overlaps)]
			if overlap > pagesPerSite {
				overlap = pagesPerSite
			}
			siteBooks = append(siteBooks, sample(sr, seedBooks, overlap)...)
			siteBooks = append(siteBooks, sample(sr, rest, pagesPerSite-len(siteBooks))...)
		}
		for i, bk := range siteBooks {
			site.Pages = append(site.Pages, renderRecordPage(site.Name, style, pageID("b", i), bk.id, "book", bk.title, bookRows(bk), sr.fork(int64(i))))
		}
		v.Sites = append(v.Sites, site)
	}
	return v, kbFromSiteGold(bookOntology(), v.Sites[0], "book")
}

// ---------------------------------------------------------------- NBA

func nbaOntology() *kb.Ontology {
	return kb.NewOntology(
		kb.Predicate{Name: PredNBATeam, Domain: "player"},
		kb.Predicate{Name: PredNBAHeight, Domain: "player"},
		kb.Predicate{Name: PredNBAWeight, Domain: "player"},
	)
}

var teamCities = []string{
	"Ashford", "Brookhaven", "Calder", "Duneport", "Eastvale", "Fairmont",
	"Galeton", "Harborview", "Ironwood", "Junction City", "Kingsridge",
	"Lakemoor", "Midland", "Northgate", "Oakcrest", "Pinehurst",
	"Quarry Bay", "Riverton", "Stonebridge", "Twin Falls", "Umberland",
	"Vistamar", "Westfield", "Yorkdale", "Zephyr Hills", "Claymore",
	"Drummond", "Eldridge", "Fallsworth", "Granville",
}

var teamMascots = []string{
	"Hawks", "Comets", "Pioneers", "Wolves", "Stags", "Voyagers",
	"Thunder", "Mariners", "Foxes", "Sentinels", "Drifters", "Titans",
	"Monarchs", "Rapids", "Summit", "Cyclones", "Falcons", "Bears",
	"Chargers", "Lynx", "Raiders", "Spartans", "Coyotes", "Phantoms",
	"Suns", "Crows", "Herons", "Badgers", "Otters", "Vipers",
}

type nbaPlayer struct {
	id, name, team, height, weight string
}

func generateNBAVertical(r *rng, pagesPerSite int) (*Vertical, *kb.KB) {
	nm := newNamer(r)
	teams := make([]string, 30)
	for i := range teams {
		teams[i] = teamCities[i] + " " + teamMascots[i]
	}
	nPlayers := pagesPerSite * 2
	players := make([]*nbaPlayer, nPlayers)
	for i := range players {
		players[i] = &nbaPlayer{
			id:     fmt.Sprintf("plyr%04d", i),
			name:   nm.personName(),
			team:   pick(r, teams),
			height: fmt.Sprintf("%d-%d", r.between(5, 7), r.between(0, 11)),
			weight: fmt.Sprintf("%d lbs", r.between(160, 290)),
		}
	}
	rows := func(p *nbaPlayer) []recordRow {
		return []recordRow{
			{field: "team", labels: []string{"Team", "Current Team", "Club"}, pred: PredNBATeam, values: []string{p.team}, required: true},
			{field: "height", labels: []string{"Height", "HT"}, pred: PredNBAHeight, values: []string{p.height}, required: true},
			{field: "weight", labels: []string{"Weight", "WT"}, pred: PredNBAWeight, values: []string{p.weight}, required: true},
		}
	}
	v := &Vertical{Name: "NBAPlayer", Predicates: VerticalPredicates["NBAPlayer"]}
	for s := 0; s < 10; s++ {
		style := recordStyle{
			layout:       []string{"table", "div", "dl"}[s%3],
			prefix:       fmt.Sprintf("nba%d", s),
			itemprop:     s%5 == 0,
			labelVariant: s % 2,
			missingP:     0.02,
		}
		site := &Site{Name: fmt.Sprintf("nba-site-%d", s), Focus: "NBA players", Language: "en"}
		sr := r.fork(int64(300 + s))
		sitePlayers := sample(sr, players, pagesPerSite)
		for i, p := range sitePlayers {
			site.Pages = append(site.Pages, renderRecordPage(site.Name, style, pageID("n", i), p.id, "player", p.name, rows(p), sr.fork(int64(i))))
		}
		v.Sites = append(v.Sites, site)
	}
	return v, kbFromSiteGold(nbaOntology(), v.Sites[0], "player")
}

// ---------------------------------------------------------------- universities

func universityOntology() *kb.Ontology {
	return kb.NewOntology(
		kb.Predicate{Name: PredUniPhone, Domain: "university"},
		kb.Predicate{Name: PredUniWebsite, Domain: "university"},
		kb.Predicate{Name: PredUniType, Domain: "university"},
	)
}

type university struct {
	id, name, phone, website, utype string
}

func generateUniversityVertical(r *rng, pagesPerSite int) (*Vertical, *kb.KB) {
	nUnis := pagesPerSite * 2
	unis := make([]*university, nUnis)
	usedNames := map[string]bool{}
	for i := range unis {
		var name string
		for attempt := 0; ; attempt++ {
			city := pick(r, teamCities)
			switch r.Intn(3) {
			case 0:
				name = city + " University"
			case 1:
				name = "University of " + city
			default:
				name = city + " " + pick(r, []string{"State University", "College", "Institute of Technology"})
			}
			if attempt > 30 {
				// The combinatorial name pool is finite; large worlds get
				// campus-style qualifiers.
				name = name + " at " + pick(r, cityNames)
			}
			if !usedNames[name] {
				usedNames[name] = true
				break
			}
		}
		slug := ""
		for _, c := range name {
			if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' {
				slug += string(c | 0x20)
			}
		}
		if len(slug) > 12 {
			slug = slug[:12]
		}
		utype := "Public"
		if r.maybe(0.4) {
			utype = "Private"
		}
		unis[i] = &university{
			id:      fmt.Sprintf("uni%04d", i),
			name:    name,
			phone:   r.phone(),
			website: "www." + slug + ".edu",
			utype:   utype,
		}
	}
	rows := func(u *university) []recordRow {
		return []recordRow{
			{field: "phone", labels: []string{"Phone", "Telephone", "Contact"}, pred: PredUniPhone, values: []string{u.phone}, required: true},
			{field: "website", labels: []string{"Website", "Web", "URL"}, pred: PredUniWebsite, values: []string{u.website}, required: true},
			{field: "type", labels: []string{"Type", "Institution Type", "Control"}, pred: PredUniType, values: []string{u.utype}, required: true},
		}
	}
	// The search-box trap (§5.3): one site lists both Type values inside a
	// filter form on every page, which poisons annotation for that
	// predicate.
	searchBox := func(b *pageBuilder) {
		form := b.el(b.body, "form", "class", "filter-box")
		lblEl := b.el(form, "span")
		b.text(lblEl, "Filter by type:")
		sel := b.el(form, "select", "name", "type")
		o1 := b.el(sel, "option")
		b.text(o1, "Public")
		o2 := b.el(sel, "option")
		b.text(o2, "Private")
	}
	v := &Vertical{Name: "University", Predicates: VerticalPredicates["University"]}
	for s := 0; s < 10; s++ {
		style := recordStyle{
			layout:       []string{"div", "table", "dl"}[s%3],
			prefix:       fmt.Sprintf("uni%d", s),
			itemprop:     s%4 == 2,
			labelVariant: s % 3,
			missingP:     0.03,
		}
		if s == 7 {
			style.extraBoilerplate = searchBox
		}
		site := &Site{Name: fmt.Sprintf("university-site-%d", s), Focus: "Universities", Language: "en"}
		sr := r.fork(int64(400 + s))
		siteUnis := sample(sr, unis, pagesPerSite)
		for i, u := range siteUnis {
			site.Pages = append(site.Pages, renderRecordPage(site.Name, style, pageID("u", i), u.id, "university", u.name, rows(u), sr.fork(int64(i))))
		}
		v.Sites = append(v.Sites, site)
	}
	return v, kbFromSiteGold(universityOntology(), v.Sites[0], "university")
}

// kbFromSiteGold builds a seed KB from the ground truth of one site — the
// paper's protocol for the Book, NBAPlayer and University verticals
// ("arbitrarily chose the first website ... and used its ground truth to
// construct the seed KB").
func kbFromSiteGold(ont *kb.Ontology, site *Site, entityType string) *kb.KB {
	k := kb.New(ont)
	for _, p := range site.DetailPages() {
		if _, exists := k.Entity(p.TopicID); !exists {
			mustAdd(k.AddEntity(kb.Entity{ID: p.TopicID, Type: entityType, Name: p.TopicName}))
		}
		for _, f := range p.GoldValues() {
			if f.Predicate == "name" || !ont.Has(f.Predicate) {
				continue
			}
			mustAdd(k.AddTriple(kb.Triple{Subject: p.TopicID, Predicate: f.Predicate, Object: kb.LiteralObject(f.Value)}))
		}
	}
	return k
}
