package websim

import "ceres/internal/dom"

// pageBuilder assembles a detail page as a DOM tree, recording the text
// node behind every asserted fact so the generated corpus carries
// node-level ground truth.
type pageBuilder struct {
	doc   *dom.Node
	html  *dom.Node
	head  *dom.Node
	body  *dom.Node
	facts []trackedFact
}

type trackedFact struct {
	pred  string
	value string
	node  *dom.Node // the text node
}

func newPageBuilder(title string) *pageBuilder {
	b := &pageBuilder{doc: &dom.Node{Type: dom.DocumentNode}}
	b.html = b.el(b.doc, "html")
	b.head = b.el(b.html, "head")
	t := b.el(b.head, "title")
	b.text(t, title)
	b.body = b.el(b.html, "body")
	return b
}

// el appends an element with alternating attribute key/value pairs.
func (b *pageBuilder) el(parent *dom.Node, tag string, attrs ...string) *dom.Node {
	n := &dom.Node{Type: dom.ElementNode, Tag: tag}
	for i := 0; i+1 < len(attrs); i += 2 {
		n.Attrs = append(n.Attrs, dom.Attr{Key: attrs[i], Val: attrs[i+1]})
	}
	parent.AppendChild(n)
	return n
}

// text appends a text node.
func (b *pageBuilder) text(parent *dom.Node, s string) *dom.Node {
	n := &dom.Node{Type: dom.TextNode, Data: s}
	parent.AppendChild(n)
	return n
}

// fact appends a text node carrying an asserted value and records it as
// ground truth for pred.
func (b *pageBuilder) fact(parent *dom.Node, pred, value string) *dom.Node {
	n := b.text(parent, value)
	b.facts = append(b.facts, trackedFact{pred: pred, value: value, node: n})
	return n
}

// factIn wraps the value in a child element (span/a/td...) and records it.
func (b *pageBuilder) factIn(parent *dom.Node, tag, pred, value string, attrs ...string) *dom.Node {
	el := b.el(parent, tag, attrs...)
	b.fact(el, pred, value)
	return el
}

// build finalizes the page: computes fact XPaths and serializes.
func (b *pageBuilder) build(id, topicID, topicType, topicName string) *Page {
	p := &Page{
		ID:        id,
		TopicID:   topicID,
		TopicType: topicType,
		TopicName: topicName,
		HTML:      dom.Render(b.doc),
	}
	for _, f := range b.facts {
		p.Facts = append(p.Facts, PageFact{
			Predicate: f.pred,
			Value:     f.value,
			NodePath:  f.node.XPath(),
		})
	}
	return p
}

// boilerplate adds the nav/header junk every real site carries: a logo, a
// navigation list and a search form. The University search-box failure
// mode (§5.3: a site listed both "public" and "private" in a search box on
// every page) is injected by the university generator through extraNav.
func (b *pageBuilder) boilerplate(siteName string, navItems []string) {
	header := b.el(b.body, "header", "class", "site-header")
	logo := b.el(header, "div", "class", "logo")
	a := b.el(logo, "a", "href", "/")
	b.text(a, siteName)
	nav := b.el(header, "nav", "class", "main-nav")
	ul := b.el(nav, "ul")
	for _, item := range navItems {
		li := b.el(ul, "li")
		la := b.el(li, "a", "href", "#")
		b.text(la, item)
	}
	form := b.el(header, "form", "class", "search")
	b.el(form, "input", "type", "text", "name", "q")
	btn := b.el(form, "button")
	b.text(btn, "Search")
}

// footer closes the page with the usual legal junk.
func (b *pageBuilder) footer(siteName string) {
	f := b.el(b.body, "footer", "class", "site-footer")
	p := b.el(f, "p")
	b.text(p, "© 2017 "+siteName+" — Terms — Privacy — Help")
}
