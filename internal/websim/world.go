package websim

import (
	"fmt"

	"ceres/internal/kb"
)

// Person is a film-industry person in the generated world.
type Person struct {
	ID         string
	Name       string
	Aliases    []string
	BirthPlace string
	BirthYear  int
	ActedIn    []string // film IDs
	Directed   []string
	Wrote      []string
	Produced   []string
	Scored     []string // composed music for
}

// Film is a movie in the generated world.
type Film struct {
	ID          string
	Title       string
	Year        int
	ReleaseDate string
	Rating      string // MPAA
	Genres      []string
	Directors   []string // person IDs
	Writers     []string
	Cast        []string
	Producers   []string
	Composers   []string
}

// Episode is a TV episode; episodes share titles aggressively ("Pilot"),
// reproducing the paper's entity-ambiguity challenge.
type Episode struct {
	ID       string
	Title    string
	SeriesID string
	Season   int
	Number   int
	AirDate  string
	// Guests are person IDs appearing in the episode; they give episode
	// entities the rich object sets real TV-episode records have (the
	// paper's KB carries 18 predicates per episode), which topic
	// identification needs to tell sibling episodes apart.
	Guests []string
}

// Series is a TV series with episodes.
type Series struct {
	ID       string
	Title    string
	Episodes []string // episode IDs
}

// World is the ground-truth movie universe all movie-vertical corpora
// render. It plays the role of the database behind IMDb.
type World struct {
	People   []*Person
	Films    []*Film
	Series   []*Series
	Episodes []*Episode

	personByID  map[string]*Person
	filmByID    map[string]*Film
	seriesByID  map[string]*Series
	episodeByID map[string]*Episode
}

// WorldConfig sizes the generated world.
type WorldConfig struct {
	Films    int // default 1200
	People   int // default 1500
	Series   int // default 30
	Episodes int // per series, default 12
	Seed     int64
}

func (c WorldConfig) withDefaults() WorldConfig {
	if c.Films == 0 {
		c.Films = 1200
	}
	if c.People == 0 {
		c.People = 1500
	}
	if c.Series == 0 {
		c.Series = 30
	}
	if c.Episodes == 0 {
		c.Episodes = 12
	}
	return c
}

// Person returns the person with the given ID.
func (w *World) Person(id string) *Person { return w.personByID[id] }

// Film returns the film with the given ID.
func (w *World) Film(id string) *Film { return w.filmByID[id] }

// SeriesByID returns the series with the given ID.
func (w *World) SeriesByID(id string) *Series { return w.seriesByID[id] }

// EpisodeByID returns the episode with the given ID.
func (w *World) EpisodeByID(id string) *Episode { return w.episodeByID[id] }

// NewWorld generates a deterministic movie universe.
func NewWorld(cfg WorldConfig) *World {
	cfg = cfg.withDefaults()
	r := newRNG(cfg.Seed)
	nm := newNamer(r)
	w := &World{
		personByID:  map[string]*Person{},
		filmByID:    map[string]*Film{},
		seriesByID:  map[string]*Series{},
		episodeByID: map[string]*Episode{},
	}
	for i := 0; i < cfg.People; i++ {
		name := nm.personName()
		p := &Person{
			ID:         fmt.Sprintf("per%05d", i),
			Name:       name,
			Aliases:    nm.aliasesOf(name),
			BirthPlace: pick(r, cityNames),
			BirthYear:  r.between(1930, 2000),
		}
		w.People = append(w.People, p)
		w.personByID[p.ID] = p
	}
	for i := 0; i < cfg.Films; i++ {
		year := r.between(1950, 2017)
		f := &Film{
			ID:          fmt.Sprintf("film%05d", i),
			Title:       nm.filmTitle(),
			Year:        year,
			ReleaseDate: r.dateString(year, year),
			Rating:      pick(r, mpaaRatings),
			Genres:      sample(r, genreList, r.between(1, 3)),
		}
		// Credits. Directors often write their own films (the
		// writer/director overlap the paper calls out in §3.2).
		dir := pick(r, w.People)
		f.Directors = []string{dir.ID}
		if r.maybe(0.1) {
			f.Directors = append(f.Directors, pick(r, w.People).ID)
		}
		if r.maybe(0.55) {
			f.Writers = []string{dir.ID}
		} else {
			f.Writers = []string{pick(r, w.People).ID}
		}
		if r.maybe(0.25) {
			f.Writers = appendDistinct(f.Writers, pick(r, w.People).ID)
		}
		nCast := r.between(4, 18)
		for j := 0; j < nCast; j++ {
			f.Cast = appendDistinct(f.Cast, pick(r, w.People).ID)
		}
		// Directors sometimes act in their own films (Spike Lee in Do the
		// Right Thing, §3.2.1 Example 3.1).
		if r.maybe(0.2) {
			f.Cast = appendDistinct(f.Cast, dir.ID)
		}
		for j := 0; j < r.between(1, 2); j++ {
			f.Producers = appendDistinct(f.Producers, pick(r, w.People).ID)
		}
		if r.maybe(0.8) {
			f.Composers = []string{pick(r, w.People).ID}
		}
		w.Films = append(w.Films, f)
		w.filmByID[f.ID] = f
		for _, id := range f.Directors {
			w.personByID[id].Directed = append(w.personByID[id].Directed, f.ID)
		}
		for _, id := range f.Writers {
			w.personByID[id].Wrote = append(w.personByID[id].Wrote, f.ID)
		}
		for _, id := range f.Cast {
			w.personByID[id].ActedIn = append(w.personByID[id].ActedIn, f.ID)
		}
		for _, id := range f.Producers {
			w.personByID[id].Produced = append(w.personByID[id].Produced, f.ID)
		}
		for _, id := range f.Composers {
			w.personByID[id].Scored = append(w.personByID[id].Scored, f.ID)
		}
	}
	epCount := 0
	for i := 0; i < cfg.Series; i++ {
		s := &Series{
			ID:    fmt.Sprintf("ser%04d", i),
			Title: nm.seriesTitle(),
		}
		seasons := r.between(1, 3)
		for season := 1; season <= seasons; season++ {
			for num := 1; num <= cfg.Episodes/seasons+1; num++ {
				pilotP := 0.0
				if season == 1 && num == 1 {
					pilotP = 0.6
				}
				e := &Episode{
					ID:       fmt.Sprintf("ep%05d", epCount),
					Title:    nm.r.fork(int64(epCount)).episodeTitleFrom(pilotP),
					SeriesID: s.ID,
					Season:   season,
					Number:   num,
					AirDate:  r.dateString(2005, 2016),
				}
				for g := 0; g < r.between(2, 4); g++ {
					e.Guests = appendDistinct(e.Guests, pick(r, w.People).ID)
				}
				epCount++
				s.Episodes = append(s.Episodes, e.ID)
				w.Episodes = append(w.Episodes, e)
				w.episodeByID[e.ID] = e
			}
		}
		w.Series = append(w.Series, s)
		w.seriesByID[s.ID] = s
	}
	return w
}

// TrimFilms returns a view of the world exposing only the first n films;
// people, series and episodes are shared. KBs built from the view know
// nothing about the remaining films — the "popular entities only" seed-KB
// situation of §5.5.
func TrimFilms(w *World, n int) *World {
	if n > len(w.Films) {
		n = len(w.Films)
	}
	return &World{
		People:      w.People,
		Films:       w.Films[:n],
		Series:      w.Series,
		Episodes:    w.Episodes,
		personByID:  w.personByID,
		filmByID:    w.filmByID,
		seriesByID:  w.seriesByID,
		episodeByID: w.episodeByID,
	}
}

// episodeTitleFrom mirrors namer.episodeTitle for a bare rng (episode
// titles intentionally skip the uniqueness check so "Pilot" repeats).
func (r *rng) episodeTitleFrom(pilotP float64) string {
	n := &namer{r: r, used: map[string]bool{}}
	return n.episodeTitle(pilotP)
}

func appendDistinct(xs []string, x string) []string {
	for _, v := range xs {
		if v == x {
			return xs
		}
	}
	return append(xs, x)
}

// Movie-vertical predicate names, shared by the KB, the page generators
// and the benchmark harnesses. Film-subject predicates mirror Table 9;
// person-subject predicates mirror Table 5.
const (
	PredDirectedBy  = "film.wasDirectedBy.person"
	PredWrittenBy   = "film.wasWrittenBy.person"
	PredCastMember  = "film.hasCastMember.person"
	PredGenre       = "film.hasGenre.genre"
	PredReleaseDate = "film.hasReleaseDate.date"
	PredReleaseYear = "film.hasReleaseYear.year"
	PredMPAARating  = "film.hasMPAARating.rating"

	PredActedIn    = "person.actedIn.film"
	PredDirectorOf = "person.directorOf.film"
	PredWriterOf   = "person.writerOf.film"
	PredProducerOf = "person.producerOf.film"
	PredMusicFor   = "person.createdMusicFor.film"
	PredAlias      = "person.hasAlias.name"
	PredBirthPlace = "person.placeOfBirth.place"

	PredEpisodeNumber = "episode.number.value"
	PredSeasonNumber  = "episode.season.value"
	PredEpisodeSeries = "episode.series.tvseries"
	PredEpisodeAired  = "episode.airDate.date"
	PredEpisodeGuest  = "episode.hasGuest.person"
)

// MovieOntology returns the ontology of the movie vertical.
func MovieOntology() *kb.Ontology {
	return kb.NewOntology(
		kb.Predicate{Name: PredDirectedBy, Domain: "film", Range: "person", MultiValued: true},
		kb.Predicate{Name: PredWrittenBy, Domain: "film", Range: "person", MultiValued: true},
		kb.Predicate{Name: PredCastMember, Domain: "film", Range: "person", MultiValued: true},
		kb.Predicate{Name: PredGenre, Domain: "film", MultiValued: true},
		kb.Predicate{Name: PredReleaseDate, Domain: "film"},
		kb.Predicate{Name: PredReleaseYear, Domain: "film"},
		kb.Predicate{Name: PredMPAARating, Domain: "film"},
		kb.Predicate{Name: PredActedIn, Domain: "person", Range: "film", MultiValued: true},
		kb.Predicate{Name: PredDirectorOf, Domain: "person", Range: "film", MultiValued: true},
		kb.Predicate{Name: PredWriterOf, Domain: "person", Range: "film", MultiValued: true},
		kb.Predicate{Name: PredProducerOf, Domain: "person", Range: "film", MultiValued: true},
		kb.Predicate{Name: PredMusicFor, Domain: "person", Range: "film", MultiValued: true},
		kb.Predicate{Name: PredAlias, Domain: "person", MultiValued: true},
		kb.Predicate{Name: PredBirthPlace, Domain: "person"},
		kb.Predicate{Name: PredEpisodeNumber, Domain: "episode"},
		kb.Predicate{Name: PredSeasonNumber, Domain: "episode"},
		kb.Predicate{Name: PredEpisodeSeries, Domain: "episode", Range: "tvseries"},
		kb.Predicate{Name: PredEpisodeAired, Domain: "episode"},
		kb.Predicate{Name: PredEpisodeGuest, Domain: "episode", Range: "person", MultiValued: true},
	)
}

// KBCoverage controls how much of the world the seed KB records —
// reproducing the paper's footnote 10, where the IMDb-derived KB covered
// only ~14% of cast facts, 9% of producer facts, 38% of director facts and
// 58% of genre facts, biased toward principal credits.
type KBCoverage struct {
	Cast     float64
	Producer float64
	Director float64
	Writer   float64
	Genre    float64
	Other    float64 // dates, aliases, birthplaces, music, episodes
	// Films and People bound which entities enter the KB at all (1 = all).
	Films  float64
	People float64
}

// FullCoverage includes everything.
func FullCoverage() KBCoverage {
	return KBCoverage{Cast: 1, Producer: 1, Director: 1, Writer: 1, Genre: 1, Other: 1, Films: 1, People: 1}
}

// PaperCoverage mirrors footnote 10 of the paper.
func PaperCoverage() KBCoverage {
	return KBCoverage{Cast: 0.14, Producer: 0.09, Director: 0.38, Writer: 0.30, Genre: 0.58, Other: 0.8, Films: 1, People: 1}
}

// BuildKB derives a seed KB from the world under the given coverage. The
// principal-credit bias is reproduced by always keeping the first credits
// of each list (top billing) before random sampling fills the quota.
func BuildKB(w *World, cov KBCoverage, seed int64) *kb.KB {
	r := newRNG(seed)
	k := kb.New(MovieOntology())
	films := map[string]bool{}
	for _, f := range w.Films {
		if r.maybe(cov.Films) {
			films[f.ID] = true
			mustAdd(k.AddEntity(kb.Entity{ID: f.ID, Type: "film", Name: f.Title}))
		}
	}
	people := map[string]bool{}
	for _, p := range w.People {
		if r.maybe(cov.People) {
			people[p.ID] = true
			mustAdd(k.AddEntity(kb.Entity{ID: p.ID, Type: "person", Name: p.Name, Aliases: p.Aliases}))
		}
	}
	for _, s := range w.Series {
		mustAdd(k.AddEntity(kb.Entity{ID: s.ID, Type: "tvseries", Name: s.Title}))
	}
	for _, e := range w.Episodes {
		mustAdd(k.AddEntity(kb.Entity{ID: e.ID, Type: "episode", Name: e.Title}))
	}
	// keepList returns the indices of a credit list the KB keeps: biased
	// toward top billing (the paper's footnote 10: the KB "only contains
	// links ... if the person is a 'principal' member"), but not a pure
	// prefix — roughly 60% of the quota is top-billed, the rest sampled
	// from the remainder, as principal credits correlate with but do not
	// equal list position.
	keepList := func(n int, frac float64) []int {
		if n == 0 {
			return nil
		}
		want := int(float64(n)*frac + 0.5)
		if frac > 0 && want == 0 && r.maybe(frac*float64(n)) {
			want = 1
		}
		if want > n {
			want = n
		}
		if want == 0 {
			return nil
		}
		head := (want*3 + 2) / 5 // ~60%
		out := make([]int, 0, want)
		for i := 0; i < head; i++ {
			out = append(out, i)
		}
		rest := make([]int, 0, n-head)
		for i := head; i < n; i++ {
			rest = append(rest, i)
		}
		r.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
		out = append(out, rest[:want-head]...)
		return out
	}
	addPair := func(subj, pred, obj string, subjOK, objOK bool) {
		if subjOK && objOK {
			mustAdd(k.AddTriple(kb.Triple{Subject: subj, Predicate: pred, Object: kb.EntityObject(obj)}))
		}
	}
	for _, f := range w.Films {
		for _, i := range keepList(len(f.Directors), cov.Director) {
			addPair(f.ID, PredDirectedBy, f.Directors[i], films[f.ID], people[f.Directors[i]])
			addPair(f.Directors[i], PredDirectorOf, f.ID, people[f.Directors[i]], films[f.ID])
		}
		for _, i := range keepList(len(f.Writers), cov.Writer) {
			addPair(f.ID, PredWrittenBy, f.Writers[i], films[f.ID], people[f.Writers[i]])
			addPair(f.Writers[i], PredWriterOf, f.ID, people[f.Writers[i]], films[f.ID])
		}
		for _, i := range keepList(len(f.Cast), cov.Cast) {
			addPair(f.ID, PredCastMember, f.Cast[i], films[f.ID], people[f.Cast[i]])
			addPair(f.Cast[i], PredActedIn, f.ID, people[f.Cast[i]], films[f.ID])
		}
		for _, i := range keepList(len(f.Producers), cov.Producer) {
			addPair(f.Producers[i], PredProducerOf, f.ID, people[f.Producers[i]], films[f.ID])
		}
		for _, i := range keepList(len(f.Composers), cov.Other) {
			addPair(f.Composers[i], PredMusicFor, f.ID, people[f.Composers[i]], films[f.ID])
		}
		if films[f.ID] {
			for _, i := range keepList(len(f.Genres), cov.Genre) {
				mustAdd(k.AddTriple(kb.Triple{Subject: f.ID, Predicate: PredGenre, Object: kb.LiteralObject(f.Genres[i])}))
			}
			if r.maybe(cov.Other) {
				mustAdd(k.AddTriple(kb.Triple{Subject: f.ID, Predicate: PredReleaseDate, Object: kb.LiteralObject(f.ReleaseDate)}))
				mustAdd(k.AddTriple(kb.Triple{Subject: f.ID, Predicate: PredReleaseYear, Object: kb.LiteralObject(fmt.Sprint(f.Year))}))
			}
			// MPAA rating is intentionally absent: the paper notes its KB
			// "did not include Movie.MPAA-Rating because lacking seed
			// data" (Table 3 footnote).
		}
	}
	for _, p := range w.People {
		if !people[p.ID] {
			continue
		}
		if r.maybe(cov.Other) {
			mustAdd(k.AddTriple(kb.Triple{Subject: p.ID, Predicate: PredBirthPlace, Object: kb.LiteralObject(p.BirthPlace)}))
		}
		for _, a := range p.Aliases {
			if r.maybe(cov.Other) {
				mustAdd(k.AddTriple(kb.Triple{Subject: p.ID, Predicate: PredAlias, Object: kb.LiteralObject(a)}))
			}
		}
	}
	for _, e := range w.Episodes {
		if r.maybe(cov.Other) {
			mustAdd(k.AddTriple(kb.Triple{Subject: e.ID, Predicate: PredEpisodeNumber, Object: kb.LiteralObject(fmt.Sprint(e.Number))}))
			mustAdd(k.AddTriple(kb.Triple{Subject: e.ID, Predicate: PredSeasonNumber, Object: kb.LiteralObject(fmt.Sprint(e.Season))}))
			mustAdd(k.AddTriple(kb.Triple{Subject: e.ID, Predicate: PredEpisodeSeries, Object: kb.EntityObject(e.SeriesID)}))
			mustAdd(k.AddTriple(kb.Triple{Subject: e.ID, Predicate: PredEpisodeAired, Object: kb.LiteralObject(e.AirDate)}))
			for _, g := range e.Guests {
				if people[g] {
					mustAdd(k.AddTriple(kb.Triple{Subject: e.ID, Predicate: PredEpisodeGuest, Object: kb.EntityObject(g)}))
				}
			}
		}
	}
	return k
}

// mustAdd panics on KB insertion errors: the generator controls both sides
// so an error is a programming bug, not an input condition.
func mustAdd(err error) {
	if err != nil {
		panic(err)
	}
}
