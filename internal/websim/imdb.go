package websim

import "fmt"

// IMDBConfig sizes the IMDb-like corpus (paper §5.1.2: 8,245 movie pages
// and 1,600 people pages crawled May 2017; defaults here are ~1:20 scale).
type IMDBConfig struct {
	FilmPages   int // default 400
	PersonPages int // default 120
	Seed        int64
}

func (c IMDBConfig) withDefaults() IMDBConfig {
	if c.FilmPages == 0 {
		c.FilmPages = 400
	}
	if c.PersonPages == 0 {
		c.PersonPages = 120
	}
	return c
}

// GenerateIMDB renders the complex movie-database site of §5.4: film pages
// with long cast lists, duplicated genre sections and recommendation
// rails; person pages with Known-For sections, role-separated
// filmographies, alias ambiguity and Projects-in-Development noise. The
// returned sites are (films+episodes, people) — two template families, as
// on the real site.
func GenerateIMDB(w *World, cfg IMDBConfig) (films *Site, people *Site) {
	cfg = cfg.withDefaults()
	r := newRNG(cfg.Seed)
	siteName := "Moviebase"

	films = &Site{Name: "moviebase-films", Focus: "Film/TV detail pages", Language: "en"}
	nFilm := cfg.FilmPages
	if nFilm > len(w.Films) {
		nFilm = len(w.Films)
	}
	// One in six film-template pages is a TV-episode page, matching the
	// mixed-template reality of the crawl.
	nEpisode := nFilm / 6
	nFilm -= nEpisode
	for i := 0; i < nFilm; i++ {
		f := w.Films[i]
		films.Pages = append(films.Pages, renderIMDBFilm(w, f, siteName, r.fork(int64(i))))
	}
	for i := 0; i < nEpisode && i < len(w.Episodes); i++ {
		e := w.Episodes[i]
		films.Pages = append(films.Pages, renderIMDBEpisode(w, e, siteName, r.fork(int64(10000+i))))
	}

	people = &Site{Name: "moviebase-people", Focus: "Person detail pages", Language: "en"}
	// Pick the most-credited people: detail pages exist for people with
	// careers, mirroring the KB's popularity bias.
	ppl := peopleByCredits(w)
	nPerson := cfg.PersonPages
	if nPerson > len(ppl) {
		nPerson = len(ppl)
	}
	for i := 0; i < nPerson; i++ {
		p := ppl[i]
		people.Pages = append(people.Pages, renderIMDBPerson(w, p, siteName, r.fork(int64(20000+i))))
	}
	return films, people
}

func peopleByCredits(w *World) []*Person {
	out := make([]*Person, len(w.People))
	copy(out, w.People)
	credits := func(p *Person) int {
		return len(p.ActedIn) + len(p.Directed) + len(p.Wrote) + len(p.Produced)
	}
	// Stable selection: sort by credit count descending, ID ascending.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j], out[j-1]
			if credits(a) > credits(b) || (credits(a) == credits(b) && a.ID < b.ID) {
				out[j], out[j-1] = out[j-1], out[j]
			} else {
				break
			}
		}
	}
	return out
}

func renderIMDBFilm(w *World, f *Film, siteName string, r *rng) *Page {
	b := newPageBuilder(f.Title + " (" + fmt.Sprint(f.Year) + ") - " + siteName)
	b.boilerplate(siteName, []string{"Home", "Movies", "TV", "People"})
	content := b.el(b.body, "div", "id", "content", "class", "pagecontent")

	// Title block with year and genres (the genres also appear duplicated
	// in the recommendation rail below — Example 3.2's trap).
	hero := b.el(content, "div", "class", "title-block")
	h1 := b.el(hero, "h1", "itemprop", "name")
	b.fact(h1, "name", f.Title)
	yearSpan := b.el(hero, "span", "class", "title-year")
	b.fact(yearSpan, PredReleaseYear, fmt.Sprint(f.Year))
	genres := b.el(hero, "div", "class", "title-genres")
	for _, g := range f.Genres {
		b.factIn(genres, "a", PredGenre, g, "href", "#")
	}

	// Credit summary rows.
	summary := b.el(content, "div", "class", "credit-summary")
	row := func(lbl, pred string, ids []string) {
		div := b.el(summary, "div", "class", "credit-row")
		h4 := b.el(div, "h4")
		b.text(h4, lbl+":")
		for _, id := range ids {
			b.factIn(div, "a", pred, w.Person(id).Name, "href", "/name/"+id)
		}
	}
	row("Director", PredDirectedBy, f.Directors)
	row("Writer", PredWrittenBy, f.Writers)

	// Release date row.
	if r.maybe(0.9) {
		div := b.el(summary, "div", "class", "credit-row release-row")
		h4 := b.el(div, "h4")
		b.text(h4, "Release Date:")
		b.factIn(div, "span", PredReleaseDate, f.ReleaseDate)
	}

	// Full cast table (long lists are the hard case of §5.4).
	castSec := b.el(content, "div", "class", "cast-section")
	h3 := b.el(castSec, "h3")
	b.text(h3, "Cast")
	tbl := b.el(castSec, "table", "class", "cast-list")
	for i, pid := range f.Cast {
		tr := b.el(tbl, "tr")
		td := b.el(tr, "td", "class", "cast-name")
		b.factIn(td, "a", PredCastMember, w.Person(pid).Name, "href", "/name/"+pid)
		chTd := b.el(tr, "td", "class", "cast-character")
		b.text(chTd, "Character "+fmt.Sprint(i+1))
	}

	// Recommendation rail: other films with their genres (not facts of
	// this page). Deliberately overlaps one genre with the topic when
	// possible, the hardest version of the trap.
	rail := b.el(content, "div", "class", "rec-rail")
	rh := b.el(rail, "h3")
	b.text(rh, "People who liked this also liked")
	for i := 0; i < 3; i++ {
		rf := w.Films[r.Intn(len(w.Films))]
		if rf.ID == f.ID {
			continue
		}
		card := b.el(rail, "div", "class", "rec-card")
		a := b.el(card, "a", "href", "/title/"+rf.ID)
		b.text(a, rf.Title)
		gl := b.el(card, "div", "class", "rec-genres")
		for _, g := range rf.Genres {
			span := b.el(gl, "span")
			b.text(span, g)
		}
	}

	b.footer(siteName)
	return b.build(f.ID, f.ID, "film", f.Title)
}

func renderIMDBEpisode(w *World, e *Episode, siteName string, r *rng) *Page {
	s := w.SeriesByID(e.SeriesID)
	b := newPageBuilder(fmt.Sprintf("%q %s - %s", s.Title, e.Title, siteName))
	b.boilerplate(siteName, []string{"Home", "Movies", "TV", "People"})
	content := b.el(b.body, "div", "id", "content", "class", "pagecontent")

	hero := b.el(content, "div", "class", "title-block")
	h1 := b.el(hero, "h1", "itemprop", "name")
	b.fact(h1, "name", e.Title)
	sub := b.el(hero, "div", "class", "episode-of")
	b.factIn(sub, "a", PredEpisodeSeries, s.Title, "href", "/series/"+s.ID)

	info := b.el(content, "table", "class", "ep-infobox")
	tr1 := b.el(info, "tr")
	th1 := b.el(tr1, "th")
	b.text(th1, "Season")
	b.factIn(tr1, "td", PredSeasonNumber, fmt.Sprint(e.Season))
	tr2 := b.el(info, "tr")
	th2 := b.el(tr2, "th")
	b.text(th2, "Episode")
	b.factIn(tr2, "td", PredEpisodeNumber, fmt.Sprint(e.Number))
	tr3 := b.el(info, "tr")
	th3 := b.el(tr3, "th")
	b.text(th3, "Air Date")
	b.factIn(tr3, "td", PredEpisodeAired, e.AirDate)

	// Guest stars, rendered like a short cast list.
	guests := b.el(content, "div", "class", "ep-guests")
	gh := b.el(guests, "h3")
	b.text(gh, "Guest Stars")
	gul := b.el(guests, "ul")
	for _, g := range e.Guests {
		li := b.el(gul, "li")
		b.factIn(li, "a", PredEpisodeGuest, w.Person(g).Name, "href", "/name/"+g)
	}

	// Sibling-episode rail: other episode titles of the series.
	rail := b.el(content, "div", "class", "ep-rail")
	rh := b.el(rail, "h3")
	b.text(rh, "More episodes")
	for i := 0; i < 4 && i < len(s.Episodes); i++ {
		oe := w.EpisodeByID(s.Episodes[i])
		if oe.ID == e.ID {
			continue
		}
		card := b.el(rail, "div", "class", "ep-card")
		a := b.el(card, "a", "href", "/ep/"+oe.ID)
		b.text(a, oe.Title)
	}

	b.footer(siteName)
	return b.build(e.ID, e.ID, "episode", e.Title)
}

func renderIMDBPerson(w *World, p *Person, siteName string, r *rng) *Page {
	b := newPageBuilder(p.Name + " - " + siteName)
	b.boilerplate(siteName, []string{"Home", "Movies", "TV", "People"})
	content := b.el(b.body, "div", "id", "content", "class", "pagecontent")

	hero := b.el(content, "div", "class", "name-block")
	h1 := b.el(hero, "h1", "itemprop", "name")
	b.fact(h1, "name", p.Name)

	// Known For: the person's four most prominent films, role-agnostic —
	// the section the paper singles out because "any system that learns to
	// extract it will produce erroneous extractions" (§5.4). No facts are
	// recorded here.
	known := b.el(content, "div", "class", "known-for")
	kh := b.el(known, "h3")
	b.text(kh, "Known For")
	prominent := dedup(append(append(append([]string{}, p.Directed...), p.ActedIn...), p.Produced...))
	for i := 0; i < 4 && i < len(prominent); i++ {
		card := b.el(known, "div", "class", "kf-card")
		a := b.el(card, "a", "href", "/title/"+prominent[i])
		b.text(a, w.Film(prominent[i]).Title)
	}

	// Bio box: birthplace and aliases.
	bio := b.el(content, "table", "class", "bio-box")
	tr := b.el(bio, "tr", "class", "bio-born")
	th := b.el(tr, "th")
	b.text(th, "Born")
	td := b.el(tr, "td")
	b.factIn(td, "span", PredBirthPlace, p.BirthPlace)
	yspan := b.el(td, "span", "class", "bio-year")
	b.text(yspan, fmt.Sprint(p.BirthYear))
	if len(p.Aliases) > 0 {
		tr2 := b.el(bio, "tr", "class", "bio-alias")
		th2 := b.el(tr2, "th")
		b.text(th2, "Also Known As")
		td2 := b.el(tr2, "td")
		for _, a := range p.Aliases {
			b.factIn(td2, "span", PredAlias, a)
		}
	}

	// Filmography, sectioned by role (the structure Figure 2 reflects:
	// section offsets shift when a person lacks a role).
	filmo := b.el(content, "div", "class", "filmography", "id", "filmography")
	section := func(cls, heading, pred string, ids []string) {
		if len(ids) == 0 {
			return
		}
		sec := b.el(filmo, "div", "class", "filmo-section "+cls)
		h := b.el(sec, "h4")
		b.text(h, heading)
		for _, fid := range ids {
			rowDiv := b.el(sec, "div", "class", "filmo-row")
			bb := b.el(rowDiv, "b")
			b.factIn(bb, "a", pred, w.Film(fid).Title, "href", "/title/"+fid)
			yr := b.el(rowDiv, "span", "class", "filmo-year")
			b.text(yr, fmt.Sprint(w.Film(fid).Year))
		}
	}
	// Section order is fixed but sections vanish when empty, shifting the
	// absolute paths of later sections — exactly the Winfrey/McKellen
	// index drift of Figure 2.
	section("filmo-producer", "Producer", PredProducerOf, p.Produced)
	section("filmo-director", "Director", PredDirectorOf, p.Directed)
	section("filmo-writer", "Writer", PredWriterOf, p.Wrote)
	section("filmo-actor", "Actor", PredActedIn, p.ActedIn)
	if len(p.Scored) > 0 {
		section("filmo-music", "Music Department", PredMusicFor, p.Scored)
	}

	// Self credits: talk-show appearances whose episode titles sometimes
	// equal the person's alias verbatim — the alias ambiguity that sinks
	// CERES-Topic in Table 5. Not facts.
	self := b.el(content, "div", "class", "self-credits")
	sh := b.el(self, "h4")
	b.text(sh, "Self")
	for i := 0; i < r.between(1, 3); i++ {
		rowDiv := b.el(self, "div", "class", "self-row")
		a := b.el(rowDiv, "a", "href", "#")
		if len(p.Aliases) > 0 && r.maybe(0.5) {
			b.text(a, p.Aliases[0])
		} else {
			b.text(a, "The "+pick(r, titleNouns)+" Show")
		}
	}

	// Projects in Development: future films listed with no role — the
	// extraneous field the paper blames for producer_of noise. Not facts.
	if len(p.Produced) > 0 && r.maybe(0.7) {
		dev := b.el(content, "div", "class", "in-development")
		dh := b.el(dev, "h4")
		b.text(dh, "Projects In Development")
		for i := 0; i < 2 && i < len(p.Produced); i++ {
			rowDiv := b.el(dev, "div", "class", "dev-row")
			a := b.el(rowDiv, "a", "href", "#")
			b.text(a, w.Film(p.Produced[i]).Title)
		}
	}

	b.footer(siteName)
	return b.build(p.ID, p.ID, "person", p.Name)
}
