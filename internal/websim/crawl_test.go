package websim

import (
	"testing"
)

func tinyCrawl() CrawlConfig {
	return CrawlConfig{Seed: 1, Scale: 1.0 / 400.0, MaxSitePages: 40}
}

func TestGenerateCrawlShape(t *testing.T) {
	c := GenerateCrawl(tinyCrawl())
	if len(c.Sites) != len(CrawlRoster) {
		t.Fatalf("want %d sites, got %d", len(CrawlRoster), len(c.Sites))
	}
	if c.SeedKB.NumTriples() == 0 {
		t.Fatalf("empty seed KB")
	}
	byName := map[string]*Site{}
	for _, s := range c.Sites {
		byName[s.Name] = s
		if s.NumPages() < 6 {
			t.Errorf("site %s has %d pages, want >= 6", s.Name, s.NumPages())
		}
	}
	// boxofficemojo: charts only, no detail pages.
	if bo := byName["boxofficemojo.com"]; len(bo.DetailPages()) != 0 {
		t.Errorf("boxofficemojo should have no detail pages, got %d", len(bo.DetailPages()))
	}
	// Foreign-language sites render in their language.
	if kb := byName["kinobox.cz"]; kb.Language != "cs" {
		t.Errorf("kinobox language = %q", kb.Language)
	}
}

func TestCrawlOverlapAccounting(t *testing.T) {
	c := GenerateCrawl(tinyCrawl())
	for i, site := range c.Sites {
		spec := c.Specs[i]
		if spec.NonDetail {
			continue
		}
		inKB := 0
		for _, p := range site.DetailPages() {
			if c.InKB[p.TopicID] {
				inKB++
			}
		}
		frac := float64(inKB) / float64(len(site.DetailPages()))
		if spec.OverlapFrac > 0.3 && frac < spec.OverlapFrac/2 {
			t.Errorf("%s: overlap %.2f far below spec %.2f", spec.Name, frac, spec.OverlapFrac)
		}
		if spec.OverlapFrac < 0.05 && frac > 0.3 {
			t.Errorf("%s: overlap %.2f far above spec %.2f", spec.Name, frac, spec.OverlapFrac)
		}
	}
}

func TestCrawlFactPathsSample(t *testing.T) {
	c := GenerateCrawl(CrawlConfig{Seed: 2, Scale: 1.0 / 1000.0, MaxSitePages: 10,
		Sites: []string{"themoviedb.org", "the-numbers.com", "spicyonion.com", "christianfilmdatabase.com", "colonialfilm.org.uk", "kvikmyndavefurinn.is"}})
	if len(c.Sites) != 6 {
		t.Fatalf("site filter failed: %d sites", len(c.Sites))
	}
	for _, site := range c.Sites {
		for _, p := range site.Pages {
			verifyFactPaths(t, p)
		}
	}
}

func TestCrawlSubsetSelection(t *testing.T) {
	c := GenerateCrawl(CrawlConfig{Seed: 3, Scale: 1.0 / 1000.0, Sites: []string{"jfdb.jp"}})
	if len(c.Sites) != 1 || c.Sites[0].Name != "jfdb.jp" {
		t.Fatalf("subset selection broken: %v", c.Sites)
	}
}

func TestCrawlDeterminism(t *testing.T) {
	a := GenerateCrawl(CrawlConfig{Seed: 4, Scale: 1.0 / 1000.0, Sites: []string{"nfb.ca"}})
	b := GenerateCrawl(CrawlConfig{Seed: 4, Scale: 1.0 / 1000.0, Sites: []string{"nfb.ca"}})
	if a.Sites[0].Pages[0].HTML != b.Sites[0].Pages[0].HTML {
		t.Errorf("crawl generation not deterministic")
	}
}

func TestCSSPrefix(t *testing.T) {
	if got := cssPrefix("rottentomatoes.com"); got != "rotten" {
		t.Errorf("cssPrefix = %q", got)
	}
	if got := cssPrefix("a.b"); got != "ab" {
		t.Errorf("cssPrefix = %q", got)
	}
}
