package websim

import (
	"strings"
	"testing"
)

func tinySWDE() SWDEConfig {
	return SWDEConfig{
		Seed: 1,
		PagesPerSite: map[string]int{
			"Movie": 20, "Book": 24, "NBAPlayer": 12, "University": 16,
		},
		BookOverlaps: []int{18, 12, 8, 5, 4, 3, 2, 1, 1},
	}
}

func TestGenerateSWDEShape(t *testing.T) {
	s := GenerateSWDE(tinySWDE())
	if len(s.Verticals) != 4 {
		t.Fatalf("want 4 verticals, got %d", len(s.Verticals))
	}
	for name, v := range s.Verticals {
		if len(v.Sites) != 10 {
			t.Errorf("%s: want 10 sites, got %d", name, len(v.Sites))
		}
		if s.SeedKBs[name] == nil || s.SeedKBs[name].NumTriples() == 0 {
			t.Errorf("%s: empty seed KB", name)
		}
		for _, site := range v.Sites {
			if site.NumPages() == 0 {
				t.Errorf("%s/%s has no pages", name, site.Name)
			}
			for _, p := range site.DetailPages() {
				if p.TopicName == "" || p.TopicID == "" {
					t.Errorf("%s/%s/%s missing topic metadata", name, site.Name, p.ID)
				}
			}
		}
	}
	if got := s.Verticals["NBAPlayer"].Sites[0].NumPages(); got != 12 {
		t.Errorf("NBA site size = %d, want 12", got)
	}
}

func TestSWDEFactPathsSample(t *testing.T) {
	s := GenerateSWDE(tinySWDE())
	for name, v := range s.Verticals {
		for _, site := range v.Sites[:3] {
			for _, p := range site.Pages[:minInt(4, len(site.Pages))] {
				verifyFactPaths(t, p)
			}
		}
		_ = name
	}
}

func TestBookOverlapControl(t *testing.T) {
	cfg := tinySWDE()
	s := GenerateSWDE(cfg)
	bookKB := s.SeedKBs["Book"]
	v := s.Verticals["Book"]
	// Site 0 is the KB source: all of its books overlap.
	for si, site := range v.Sites {
		overlap := 0
		for _, p := range site.DetailPages() {
			if _, ok := bookKB.Entity(p.TopicID); ok {
				overlap++
			}
		}
		if si == 0 {
			if overlap != site.NumPages() {
				t.Errorf("seed site overlap = %d/%d", overlap, site.NumPages())
			}
			continue
		}
		want := cfg.BookOverlaps[si-1]
		if overlap != want {
			t.Errorf("site %d overlap = %d, want %d", si, overlap, want)
		}
	}
}

func TestUniversitySearchBoxTrap(t *testing.T) {
	s := GenerateSWDE(tinySWDE())
	site := s.Verticals["University"].Sites[7]
	for _, p := range site.Pages[:3] {
		if !strings.Contains(p.HTML, "Filter by type:") {
			t.Fatalf("site 7 should carry the search-box trap")
		}
		// Both type values appear on every page, but only the true one is
		// a fact.
		typeFacts := 0
		for _, f := range p.Facts {
			if f.Predicate == PredUniType {
				typeFacts++
			}
		}
		if typeFacts != 1 {
			t.Errorf("want exactly 1 type fact, got %d", typeFacts)
		}
		if !strings.Contains(p.HTML, "Public") || !strings.Contains(p.HTML, "Private") {
			t.Errorf("search box should list both type values")
		}
	}
	// Other sites do not carry the trap.
	if strings.Contains(s.Verticals["University"].Sites[0].Pages[0].HTML, "Filter by type:") {
		t.Errorf("site 0 should not carry the search box")
	}
}

func TestSWDEDeterminism(t *testing.T) {
	a := GenerateSWDE(tinySWDE())
	b := GenerateSWDE(tinySWDE())
	pa := a.Verticals["Movie"].Sites[0].Pages[0]
	pb := b.Verticals["Movie"].Sites[0].Pages[0]
	if pa.HTML != pb.HTML {
		t.Errorf("same seed should give identical pages")
	}
}

func TestTemplateDiversityAcrossSites(t *testing.T) {
	s := GenerateSWDE(tinySWDE())
	v := s.Verticals["Book"]
	// Different sites use different class prefixes, so pages from
	// different sites must differ structurally.
	h0 := v.Sites[0].Pages[0].HTML
	h1 := v.Sites[1].Pages[0].HTML
	if strings.Contains(h1, "bk0-") || strings.Contains(h0, "bk1-") {
		t.Errorf("site CSS prefixes leaked across sites")
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
