package websim

// fieldLabels maps language code -> field key -> rendered label. The seven
// languages are the ones the paper's CommonCrawl site roster spans
// (English, Czech, Danish, Icelandic, Italian, Indonesian, Slovak).
var fieldLabels = map[string]map[string]string{
	"en": {
		"director": "Director", "writer": "Writer", "cast": "Cast",
		"genre": "Genres", "release": "Release date", "year": "Year",
		"rating": "MPAA Rating", "born": "Born", "alias": "Also known as",
		"series": "Series", "season": "Season", "episode": "Episode",
		"soundtrack": "Music by", "home": "Home", "movies": "Movies",
		"people": "People", "charts": "Charts",
	},
	"cs": {
		"director": "Režie", "writer": "Scénář", "cast": "Hrají",
		"genre": "Žánry", "release": "Datum premiéry", "year": "Rok",
		"rating": "Přístupnost", "born": "Narozen", "alias": "Jiná jména",
		"series": "Seriál", "season": "Série", "episode": "Epizoda",
		"soundtrack": "Hudba", "home": "Úvod", "movies": "Filmy",
		"people": "Tvůrci", "charts": "Žebříčky",
	},
	"da": {
		"director": "Instruktør", "writer": "Manuskript", "cast": "Medvirkende",
		"genre": "Genrer", "release": "Premieredato", "year": "År",
		"rating": "Censur", "born": "Født", "alias": "Også kendt som",
		"series": "Serie", "season": "Sæson", "episode": "Afsnit",
		"soundtrack": "Musik af", "home": "Forside", "movies": "Film",
		"people": "Personer", "charts": "Hitlister",
	},
	"is": {
		"director": "Leikstjóri", "writer": "Handrit", "cast": "Leikarar",
		"genre": "Tegundir", "release": "Frumsýnd", "year": "Ár",
		"rating": "Aldurstakmark", "born": "Fæddur", "alias": "Einnig þekktur sem",
		"series": "Þáttaröð", "season": "Sería", "episode": "Þáttur",
		"soundtrack": "Tónlist", "home": "Forsíða", "movies": "Kvikmyndir",
		"people": "Fólk", "charts": "Listar",
	},
	"it": {
		"director": "Regia", "writer": "Sceneggiatura", "cast": "Interpreti",
		"genre": "Generi", "release": "Data di uscita", "year": "Anno",
		"rating": "Classificazione", "born": "Nato", "alias": "Noto anche come",
		"series": "Serie", "season": "Stagione", "episode": "Episodio",
		"soundtrack": "Musiche di", "home": "Home", "movies": "Film",
		"people": "Persone", "charts": "Classifiche",
	},
	"id": {
		"director": "Sutradara", "writer": "Penulis", "cast": "Pemeran",
		"genre": "Genre", "release": "Tanggal rilis", "year": "Tahun",
		"rating": "Klasifikasi", "born": "Lahir", "alias": "Nama lain",
		"series": "Serial", "season": "Musim", "episode": "Episode",
		"soundtrack": "Musik oleh", "home": "Beranda", "movies": "Film",
		"people": "Orang", "charts": "Tangga",
	},
	"sk": {
		"director": "Réžia", "writer": "Scenár", "cast": "Hrajú",
		"genre": "Žánre", "release": "Dátum premiéry", "year": "Rok",
		"rating": "Prístupnosť", "born": "Narodený", "alias": "Iné mená",
		"series": "Seriál", "season": "Séria", "episode": "Epizóda",
		"soundtrack": "Hudba", "home": "Úvod", "movies": "Filmy",
		"people": "Ľudia", "charts": "Rebríčky",
	},
}

// label resolves a field label, falling back to English.
func label(lang, field string) string {
	if m, ok := fieldLabels[lang]; ok {
		if l, ok := m[field]; ok {
			return l
		}
	}
	return fieldLabels["en"][field]
}
