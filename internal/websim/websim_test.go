package websim

import (
	"strings"
	"testing"

	"ceres/internal/dom"
)

func smallWorld() *World {
	return NewWorld(WorldConfig{Films: 80, People: 120, Series: 4, Episodes: 6, Seed: 11})
}

func TestWorldConsistency(t *testing.T) {
	w := smallWorld()
	if len(w.Films) != 80 || len(w.People) != 120 {
		t.Fatalf("world sizes: %d films, %d people", len(w.Films), len(w.People))
	}
	for _, f := range w.Films {
		for _, pid := range f.Cast {
			p := w.Person(pid)
			if p == nil {
				t.Fatalf("film %s references missing person %s", f.ID, pid)
			}
			if !containsStr(p.ActedIn, f.ID) {
				t.Errorf("back-reference missing: %s acted in %s", pid, f.ID)
			}
		}
		for _, pid := range f.Directors {
			if !containsStr(w.Person(pid).Directed, f.ID) {
				t.Errorf("director back-reference missing: %s -> %s", pid, f.ID)
			}
		}
		if len(f.Directors) == 0 || len(f.Cast) < 4 {
			t.Errorf("film %s has too few credits", f.ID)
		}
		if len(f.Genres) == 0 {
			t.Errorf("film %s has no genres", f.ID)
		}
	}
	for _, e := range w.Episodes {
		if w.SeriesByID(e.SeriesID) == nil {
			t.Errorf("episode %s references missing series", e.ID)
		}
	}
}

func TestWorldDeterminism(t *testing.T) {
	a := NewWorld(WorldConfig{Films: 30, People: 40, Seed: 5})
	b := NewWorld(WorldConfig{Films: 30, People: 40, Seed: 5})
	for i := range a.Films {
		if a.Films[i].Title != b.Films[i].Title {
			t.Fatalf("film %d differs: %q vs %q", i, a.Films[i].Title, b.Films[i].Title)
		}
	}
	c := NewWorld(WorldConfig{Films: 30, People: 40, Seed: 6})
	same := 0
	for i := range a.Films {
		if a.Films[i].Title == c.Films[i].Title {
			same++
		}
	}
	if same == len(a.Films) {
		t.Errorf("different seeds should give different worlds")
	}
}

func TestBuildKBFullCoverage(t *testing.T) {
	w := smallWorld()
	k := BuildKB(w, FullCoverage(), 3)
	if k.NumEntities() == 0 || k.NumTriples() == 0 {
		t.Fatalf("empty KB")
	}
	// Spot check: every director credit is present.
	for _, f := range w.Films[:10] {
		triples := k.TriplesOf(f.ID)
		var foundDir bool
		for _, tr := range triples {
			if tr.Predicate == PredDirectedBy && tr.Object.EntityID == f.Directors[0] {
				foundDir = true
			}
			if tr.Predicate == PredMPAARating {
				t.Errorf("MPAA rating must not enter the seed KB (Table 3 footnote)")
			}
		}
		if !foundDir {
			t.Errorf("film %s missing director triple", f.ID)
		}
	}
}

func TestBuildKBPaperCoverageBias(t *testing.T) {
	w := NewWorld(WorldConfig{Films: 400, People: 500, Seed: 9})
	full := BuildKB(w, FullCoverage(), 3)
	biased := BuildKB(w, PaperCoverage(), 3)
	fullCast := len(full.TriplesWithPredicate(PredCastMember))
	biasedCast := len(biased.TriplesWithPredicate(PredCastMember))
	ratio := float64(biasedCast) / float64(fullCast)
	if ratio < 0.08 || ratio > 0.30 {
		t.Errorf("cast coverage ratio %.3f; want near the paper's 14%%", ratio)
	}
	// Top billing survives: the first cast member of each film is kept.
	for _, f := range w.Films[:20] {
		found := false
		for _, tr := range biased.TriplesOf(f.ID) {
			if tr.Predicate == PredCastMember && tr.Object.EntityID == f.Cast[0] {
				found = true
			}
		}
		if !found {
			t.Errorf("film %s lost its top-billed cast member", f.ID)
		}
	}
}

// verifyFactPaths is the generator's core guarantee: every recorded fact
// path resolves, in the re-parsed page, to a text node whose collapsed
// content equals the recorded value.
func verifyFactPaths(t *testing.T, p *Page) {
	t.Helper()
	doc := dom.Parse(p.HTML)
	for _, f := range p.Facts {
		n := dom.ResolveXPath(doc, f.NodePath)
		if n == nil {
			t.Fatalf("page %s: fact path %q does not resolve", p.ID, f.NodePath)
		}
		if n.Type != dom.TextNode {
			t.Fatalf("page %s: fact path %q is not a text node", p.ID, f.NodePath)
		}
		if got := dom.CollapseSpace(n.Data); got != f.Value {
			t.Fatalf("page %s: fact path %q has text %q, want %q", p.ID, f.NodePath, got, f.Value)
		}
	}
}

func TestMoviePageFactPaths(t *testing.T) {
	w := smallWorld()
	r := newRNG(2)
	for _, layout := range []string{"table", "dl", "div"} {
		style := MovieSiteStyle{Layout: layout, Prefix: "t", Language: "en", Recommendations: true, UseItemprop: layout == "table"}
		p := RenderMoviePage(w, w.Films[0], style, "testsite", r.fork(1), w.Films[1:3])
		verifyFactPaths(t, p)
		if p.TopicID != w.Films[0].ID || p.TopicType != "film" {
			t.Errorf("topic metadata wrong: %+v", p)
		}
		// Name fact present.
		var hasName bool
		for _, f := range p.Facts {
			if f.Predicate == "name" && f.Value == w.Films[0].Title {
				hasName = true
			}
		}
		if !hasName {
			t.Errorf("missing name fact on layout %s", layout)
		}
	}
}

func TestMoviePageFailureModes(t *testing.T) {
	w := smallWorld()
	r := newRNG(4)
	// AllGenres: page text contains every genre, but only the film's own
	// genres are facts.
	style := MovieSiteStyle{Layout: "table", Prefix: "x", Language: "en", AllGenres: true}
	f := w.Films[2]
	p := RenderMoviePage(w, f, style, "genretrap", r.fork(1), nil)
	verifyFactPaths(t, p)
	genreFacts := 0
	for _, fact := range p.Facts {
		if fact.Predicate == PredGenre {
			genreFacts++
		}
	}
	if genreFacts != len(f.Genres) {
		t.Errorf("AllGenres: %d genre facts, want %d", genreFacts, len(f.Genres))
	}
	for _, g := range genreList {
		if !strings.Contains(p.HTML, ">"+g+"<") {
			t.Errorf("AllGenres page missing genre %q", g)
		}
	}
	// RoleConflation: no directedBy facts; director appears in the shared
	// credits list as a cast fact.
	style = MovieSiteStyle{Layout: "div", Prefix: "y", Language: "en", RoleConflation: true}
	p = RenderMoviePage(w, f, style, "roletrap", r.fork(2), nil)
	verifyFactPaths(t, p)
	for _, fact := range p.Facts {
		if fact.Predicate == PredDirectedBy || fact.Predicate == PredWrittenBy {
			t.Errorf("RoleConflation should suppress per-role facts, got %v", fact)
		}
	}
	// DailyDates: exactly one release-date fact among many dates.
	style = MovieSiteStyle{Layout: "table", Prefix: "z", Language: "en", DailyDates: true}
	p = RenderMoviePage(w, f, style, "datetrap", r.fork(3), nil)
	verifyFactPaths(t, p)
	dateFacts := 0
	for _, fact := range p.Facts {
		if fact.Predicate == PredReleaseDate {
			dateFacts++
		}
	}
	if dateFacts != 1 {
		t.Errorf("DailyDates: %d release-date facts, want 1", dateFacts)
	}
}

func TestMultilingualLabels(t *testing.T) {
	w := smallWorld()
	r := newRNG(6)
	style := MovieSiteStyle{Layout: "table", Prefix: "cz", Language: "cs"}
	p := RenderMoviePage(w, w.Films[1], style, "kinobox.cz", r, nil)
	if !strings.Contains(p.HTML, "Režie") {
		t.Errorf("Czech director label missing")
	}
	verifyFactPaths(t, p)
	if label("xx", "director") != "Director" {
		t.Errorf("unknown language should fall back to English")
	}
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
