package analysis

import (
	"go/ast"
	"strings"
)

// AtomicWriteAnalyzer enforces the repo's crash-safety invariant: every
// file publication goes through internal/fsatomic (Commit / WriteFile),
// so readers — and crash-restarted processes — observe either the old
// file or the complete new one, never a torn write, and failed writes
// leave no temp droppings.
//
// Flagged: calls to os.Create, os.WriteFile, os.Rename and
// io/ioutil.WriteFile. Allowed: os.CreateTemp (the blessed pattern is
// CreateTemp → stream → fsatomic.Commit), os.OpenFile (append-only
// segment files are legitimately non-atomic), anything inside the
// fsatomic package itself (the one place the rename dance may live) and
// _test.go files (tests write fixtures freely).
var AtomicWriteAnalyzer = &Analyzer{
	Name: "atomicwrite",
	Doc:  "raw os.Create/os.WriteFile/os.Rename outside internal/fsatomic",
	Run:  runAtomicWrite,
}

func runAtomicWrite(pass *Pass) {
	pkg := pass.Pkg
	if pkg.Path == "ceres/internal/fsatomic" || strings.HasSuffix(pkg.Path, "/fsatomic") {
		return
	}
	for i, f := range pkg.Files {
		if isTestFile(pkg.Filenames[i]) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgCall(pkg.Info, call)
			if !ok {
				return true
			}
			switch {
			case path == "os" && (name == "Create" || name == "WriteFile" || name == "Rename"):
				pass.Reportf(call.Pos(), "raw os.%s: publish files through internal/fsatomic (WriteFile, or CreateTemp+Commit for streams) so readers never observe torn writes", name)
			case path == "io/ioutil" && name == "WriteFile":
				pass.Reportf(call.Pos(), "raw ioutil.WriteFile: publish files through internal/fsatomic so readers never observe torn writes")
			}
			return true
		})
	}
}
