package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package of the module under
// analysis. Test files (_test.go) are not loaded for module packages:
// the invariants ceresvet guards are production-code invariants, and the
// analyzers that exempt tests (atomicwrite) do so by filename so golden
// packages can still exercise the exemption.
type Package struct {
	// Path is the import path ("ceres/internal/core").
	Path string
	// Name is the package name ("core", "main").
	Name string
	// Dir is the directory the files were read from.
	Dir string

	Fset  *token.FileSet
	Files []*ast.File
	// Filenames is parallel to Files.
	Filenames []string

	// Types and Info are the go/types results. Type checking is
	// best-effort: unresolved imports degrade to stub packages and the
	// errors accumulate in TypeErrors instead of failing the load, so
	// analyzers must tolerate types.Typ[types.Invalid] results.
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error

	dirs *fileDirectives
}

// IsMain reports whether the package is a command entry point.
func (p *Package) IsMain() bool { return p.Name == "main" }

// loader resolves imports for the packages being checked: module-local
// packages come from the in-progress load (topological order guarantees
// they are checked first), everything else from the stdlib source
// importer, degrading to an empty stub package when source import fails
// so analysis continues with partial type information.
type loader struct {
	fset    *token.FileSet
	modPath string
	modDir  string
	local   map[string]*types.Package
	src     types.ImporterFrom
	stubs   map[string]*types.Package
}

func newLoader(fset *token.FileSet, modPath, modDir string) *loader {
	return &loader{
		fset:    fset,
		modPath: modPath,
		modDir:  modDir,
		local:   make(map[string]*types.Package),
		src:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		stubs:   make(map[string]*types.Package),
	}
}

func (l *loader) isLocal(path string) bool {
	return path == l.modPath || strings.HasPrefix(path, l.modPath+"/")
}

func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.modDir, 0)
}

func (l *loader) ImportFrom(path, dir string, _ types.ImportMode) (*types.Package, error) {
	if l.isLocal(path) {
		if pkg, ok := l.local[path]; ok {
			return pkg, nil
		}
		return nil, fmt.Errorf("analysis: import cycle or unknown module package %q", path)
	}
	if pkg, ok := l.stubs[path]; ok {
		return pkg, nil
	}
	if pkg, err := l.src.ImportFrom(path, l.modDir, 0); err == nil {
		return pkg, nil
	}
	// Unresolvable import (cgo-only package, missing GOROOT source):
	// return an empty complete package so the checker records the
	// import and keeps going. Selector types degrade to Invalid.
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	stub := types.NewPackage(path, name)
	stub.MarkComplete()
	l.stubs[path] = stub
	return stub, nil
}

// LoadModule locates the module containing dir and loads and type-checks
// every non-test package in it, in deterministic (import-path) order.
func LoadModule(dir string) ([]*Package, error) {
	modDir, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	pkgDirs, err := modulePackageDirs(modDir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := newLoader(fset, modPath, modDir)

	parsed := make(map[string]*Package) // import path -> parsed (not yet checked)
	imports := make(map[string][]string)
	for _, d := range pkgDirs {
		rel, err := filepath.Rel(modDir, d)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, deps, err := parseDir(fset, d, path, false)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no buildable files
		}
		parsed[path] = pkg
		for _, dep := range deps {
			if l.isLocal(dep) {
				imports[path] = append(imports[path], dep)
			}
		}
	}

	order, err := topoSort(parsed, imports)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, path := range order {
		pkg := parsed[path]
		check(pkg, l)
		l.local[path] = pkg.Types
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir loads a single directory as one package under the given import
// path — the entry point golden tests use for seeded-violation packages
// in testdata/. Unlike LoadModule it includes _test.go files, so
// filename-based exemptions are testable.
func LoadDir(dir, path string) (*Package, error) {
	fset := token.NewFileSet()
	pkg, _, err := parseDir(fset, dir, path, true)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	check(pkg, newLoader(fset, path, dir))
	return pkg, nil
}

func check(pkg *Package, imp types.ImporterFrom) {
	conf := types.Config{
		Importer:                 imp,
		DisableUnusedImportCheck: true,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	// Check returns the package even on type errors (which the Error
	// callback collected); analysis proceeds on partial information.
	tpkg, _ := conf.Check(pkg.Path, pkg.Fset, pkg.Files, info)
	pkg.Types = tpkg
	pkg.Info = info
}

// parseDir parses the Go files of one directory into a Package shell.
// Returns (nil, nil, nil) when the directory has no eligible files.
func parseDir(fset *token.FileSet, dir, path string, includeTests bool) (*Package, []string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		if !includeTests && strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, nil, nil
	}
	sort.Strings(names)

	pkg := &Package{Path: path, Dir: dir, Fset: fset}
	depSet := make(map[string]bool)
	for _, n := range names {
		fn := filepath.Join(dir, n)
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		// External test packages (package foo_test) would need their own
		// type-check universe; golden packages keep test files in-package.
		if pkg.Name == "" || !strings.HasSuffix(f.Name.Name, "_test") {
			if pkg.Name != "" && pkg.Name != f.Name.Name && !strings.HasSuffix(f.Name.Name, "_test") {
				return nil, nil, fmt.Errorf("analysis: %s: mixed packages %q and %q", dir, pkg.Name, f.Name.Name)
			}
			pkg.Name = f.Name.Name
		}
		if strings.HasSuffix(f.Name.Name, "_test") && f.Name.Name != pkg.Name {
			continue // skip external test files entirely
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames = append(pkg.Filenames, fn)
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				depSet[p] = true
			}
		}
	}
	if len(pkg.Files) == 0 {
		return nil, nil, nil
	}
	deps := make([]string, 0, len(depSet))
	for d := range depSet {
		deps = append(deps, d)
	}
	sort.Strings(deps)
	return pkg, deps, nil
}

// modulePackageDirs walks the module tree collecting directories that
// contain buildable non-test Go files, skipping testdata, hidden and
// underscore directories, and vendor.
func modulePackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			n := d.Name()
			if p != root && (n == "testdata" || n == "vendor" || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		n := d.Name()
		if strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") && !strings.HasPrefix(n, ".") && !strings.HasPrefix(n, "_") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (string, string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// topoSort orders packages so every module-local import precedes its
// importer.
func topoSort(pkgs map[string]*Package, imports map[string][]string) ([]string, error) {
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := make(map[string]int, len(paths))
	var order []string
	var visit func(string) error
	visit = func(p string) error {
		switch state[p] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("analysis: import cycle through %q", p)
		}
		state[p] = gray
		for _, dep := range imports[p] {
			if _, ok := pkgs[dep]; !ok {
				continue // local import of a package with no files; checker will complain
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[p] = black
		order = append(order, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}
