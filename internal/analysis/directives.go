package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// ceresvet understands two source annotations:
//
//	//ceres:allocfree
//	    on a function declaration's doc comment: the function body must
//	    not allocate (enforced by the allocfree analyzer).
//
//	//ceresvet:ignore <analyzer> <reason>
//	    suppresses the named analyzer's diagnostics on the directive's
//	    own line and on the line directly below it (so both trailing and
//	    standalone placement work). The analyzer name and a non-empty
//	    reason are mandatory: an unexplained or unscoped suppression is
//	    itself a diagnostic.
//
// Like all Go directives they bind only when written with no space
// after the // marker; a spaced variant is almost always a typo and is
// reported rather than silently ignored.

type ignoreDirective struct {
	file     string
	line     int
	analyzer string
}

type malformed struct {
	pos token.Pos
	msg string
}

type fileDirectives struct {
	fset      *token.FileSet
	ignores   []ignoreDirective
	allocFree map[*ast.FuncDecl]bool
	bad       []malformed
}

// AllocFree reports whether fn carries a valid //ceres:allocfree
// annotation.
func (p *Package) AllocFree(fn *ast.FuncDecl) bool {
	return p.directives().allocFree[fn]
}

func (p *Package) directives() *fileDirectives {
	if p.dirs != nil {
		return p.dirs
	}
	d := &fileDirectives{fset: p.Fset, allocFree: make(map[*ast.FuncDecl]bool)}
	for i, f := range p.Files {
		d.parseFile(p.Filenames[i], f)
	}
	p.dirs = d
	return d
}

func (d *fileDirectives) parseFile(filename string, f *ast.File) {
	// Map each comment that sits in a function declaration's doc group
	// to that declaration: that is the only place //ceres:allocfree may
	// appear.
	docOf := make(map[*ast.Comment]*ast.FuncDecl)
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Doc == nil {
			continue
		}
		for _, c := range fn.Doc.List {
			docOf[c] = fn
		}
	}
	for _, group := range f.Comments {
		for _, c := range group.List {
			d.parseComment(filename, c, docOf[c])
		}
	}
}

func (d *fileDirectives) parseComment(filename string, c *ast.Comment, doc *ast.FuncDecl) {
	text := c.Text
	switch {
	case strings.HasPrefix(text, "//ceres:"):
		d.parseAllocFree(strings.TrimPrefix(text, "//ceres:"), c, doc)
	case strings.HasPrefix(text, "//ceresvet:"):
		d.parseIgnore(filename, strings.TrimPrefix(text, "//ceresvet:"), c)
	default:
		// A spaced "// ceres:..." never binds as a directive; that is a
		// typo worth surfacing, not silence.
		trimmed := strings.TrimLeft(strings.TrimPrefix(text, "//"), " \t")
		if strings.HasPrefix(trimmed, "ceres:") || strings.HasPrefix(trimmed, "ceresvet:") {
			if trimmed != text[2:] {
				d.bad = append(d.bad, malformed{c.Pos(),
					"directive comment must have no space after //: " + strings.Fields(trimmed)[0]})
			}
		}
	}
}

func (d *fileDirectives) parseAllocFree(rest string, c *ast.Comment, doc *ast.FuncDecl) {
	name, _, _ := strings.Cut(rest, " ")
	if name != "allocfree" {
		d.bad = append(d.bad, malformed{c.Pos(), "unknown //ceres: directive " + strconvQuote(name) + " (only //ceres:allocfree exists)"})
		return
	}
	if strings.TrimSpace(rest) != "allocfree" {
		d.bad = append(d.bad, malformed{c.Pos(), "//ceres:allocfree takes no arguments"})
		return
	}
	if doc == nil {
		d.bad = append(d.bad, malformed{c.Pos(), "//ceres:allocfree must be in the doc comment of a function declaration"})
		return
	}
	d.allocFree[doc] = true
}

func (d *fileDirectives) parseIgnore(filename, rest string, c *ast.Comment) {
	verb, rest, _ := strings.Cut(rest, " ")
	if verb != "ignore" {
		d.bad = append(d.bad, malformed{c.Pos(), "unknown //ceresvet: directive " + strconvQuote(verb) + " (only //ceresvet:ignore exists)"})
		return
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		d.bad = append(d.bad, malformed{c.Pos(), "//ceresvet:ignore must name the analyzer it suppresses"})
		return
	}
	target := fields[0]
	if !knownAnalyzer(target) || target == annotationsName {
		d.bad = append(d.bad, malformed{c.Pos(), "//ceresvet:ignore names unknown analyzer " + strconvQuote(target)})
		return
	}
	if len(fields) < 2 {
		d.bad = append(d.bad, malformed{c.Pos(), "//ceresvet:ignore " + target + " must give a reason"})
		return
	}
	d.ignores = append(d.ignores, ignoreDirective{
		file:     filename,
		line:     d.fset.Position(c.Pos()).Line,
		analyzer: target,
	})
}

// suppressed reports whether a diagnostic is covered by an ignore
// directive in the same file on the same or the directly preceding line.
// Annotation-grammar diagnostics are never suppressible.
func (d *fileDirectives) suppressed(diag Diagnostic) bool {
	if diag.Analyzer == annotationsName {
		return false
	}
	for _, ig := range d.ignores {
		if ig.analyzer != diag.Analyzer || ig.file != diag.File {
			continue
		}
		if diag.Line == ig.line || diag.Line == ig.line+1 {
			return true
		}
	}
	return false
}

func strconvQuote(s string) string { return strconv.Quote(s) }

// AnnotationsAnalyzer validates the directive grammar itself: malformed
// //ceres:allocfree and //ceresvet:ignore comments are diagnostics, so a
// typo cannot silently disable (or fail to apply) an invariant.
const annotationsName = "annotations"

var AnnotationsAnalyzer = &Analyzer{
	Name: annotationsName,
	Doc:  "malformed //ceres:allocfree and //ceresvet:ignore directives",
	Run: func(pass *Pass) {
		for _, m := range pass.Pkg.directives().bad {
			pass.Reportf(m.pos, "%s", m.msg)
		}
	},
}
