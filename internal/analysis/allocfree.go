package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AllocFreeAnalyzer enforces the //ceres:allocfree contract on the
// compiled featurize/score hot paths (DESIGN.md §5–6): an annotated
// function is called per DOM node per page at serve time, and its
// 0 allocs/op benchmark numbers are part of the repo's perf trajectory.
// The analyzer rejects the allocation patterns that have actually crept
// into such code before a benchmark caught them:
//
//   - any call into fmt (Sprintf and friends allocate, always);
//   - string concatenation (+ / += on strings);
//   - make, new, and slice/map composite literals; taking the address
//     of a composite literal (&T{} escapes);
//   - string ⇄ []byte / []rune conversions;
//   - closures that capture enclosing variables (the capture escapes);
//   - append whose destination is a local slice not preallocated with a
//     capacity (append to caller-owned buffers — parameters, struct
//     fields, make(T, n, cap) locals, x[:0] reslices — is the blessed
//     amortized pattern and stays silent);
//   - implicit conversion of a concrete non-pointer value to an
//     interface parameter (the boxing allocates);
//   - spawning goroutines.
//
// The contract is per-body: callees are checked only if they carry
// their own annotation. Plain struct literals used by value (e.g.
// Feature{i, v} appended into a preallocated slice) do not allocate and
// are allowed.
var AllocFreeAnalyzer = &Analyzer{
	Name: "allocfree",
	Doc:  "allocations inside //ceres:allocfree hot-path functions",
	Run:  runAllocFree,
}

func runAllocFree(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !pass.Pkg.AllocFree(fn) {
				continue
			}
			checkAllocFree(pass, fn)
		}
	}
}

func checkAllocFree(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	label := funcLabel(fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(x.Pos(), "allocfree %s spawns a goroutine (stack + closure allocation)", label)
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isString(typeOf(info, x)) {
				pass.Reportf(x.Pos(), "allocfree %s concatenates strings: build into a caller-provided buffer instead", label)
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isString(typeOf(info, x.Lhs[0])) {
				pass.Reportf(x.Pos(), "allocfree %s concatenates strings with +=: build into a caller-provided buffer instead", label)
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, isLit := x.X.(*ast.CompositeLit); isLit {
					pass.Reportf(x.Pos(), "allocfree %s takes the address of a composite literal: the value escapes to the heap", label)
				}
			}
		case *ast.CompositeLit:
			if t := typeOf(info, x); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(x.Pos(), "allocfree %s builds a slice/map literal: allocate once outside the hot path", label)
				}
			}
		case *ast.FuncLit:
			if capt := captures(info, fn, x); capt != "" {
				pass.Reportf(x.Pos(), "allocfree %s creates a closure capturing %q: the capture escapes to the heap", label, capt)
			}
		case *ast.CallExpr:
			checkAllocFreeCall(pass, label, x)
		}
		return true
	})
}

func checkAllocFreeCall(pass *Pass, label string, call *ast.CallExpr) {
	info := pass.Pkg.Info
	if path, name, ok := pkgCall(info, call); ok && path == "fmt" {
		pass.Reportf(call.Pos(), "allocfree %s calls fmt.%s, which always allocates", label, name)
		return
	}
	switch {
	case isBuiltin(info, call, "make"):
		pass.Reportf(call.Pos(), "allocfree %s calls make: allocate buffers outside the hot path and reuse them", label)
		return
	case isBuiltin(info, call, "new"):
		pass.Reportf(call.Pos(), "allocfree %s calls new: allocate outside the hot path and reuse", label)
		return
	case isBuiltin(info, call, "append"):
		checkAllocFreeAppend(pass, label, call)
		return
	}
	if conv, bad := allocatingConversion(info, call); bad {
		pass.Reportf(call.Pos(), "allocfree %s converts %s: the copy allocates", label, conv)
		return
	}
	checkInterfaceArgs(pass, label, call)
}

// allocatingConversion detects string⇄[]byte/[]rune conversions and
// explicit conversions to interface types.
func allocatingConversion(info *types.Info, call *ast.CallExpr) (string, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return "", false
	}
	dst := tv.Type
	src := typeOf(info, call.Args[0])
	if dst == nil || src == nil {
		return "", false
	}
	if isString(dst) && isByteOrRuneSlice(src) {
		return "[]byte/[]rune to string", true
	}
	if isString(src) && isByteOrRuneSlice(dst) {
		return "string to []byte/[]rune", true
	}
	if types.IsInterface(dst.Underlying()) && !types.IsInterface(src.Underlying()) && !isPointerLike(src) {
		if _, isConst := call.Args[0].(*ast.BasicLit); !isConst {
			return "a concrete value to an interface", true
		}
	}
	return "", false
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// checkInterfaceArgs flags arguments whose implicit conversion to an
// interface parameter boxes a concrete non-pointer value.
func checkInterfaceArgs(pass *Pass, label string, call *ast.CallExpr) {
	info := pass.Pkg.Info
	sig, ok := typeOfAsSignature(info, call.Fun)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		pt = types.Unalias(pt)
		if _, isTP := pt.(*types.TypeParam); isTP {
			continue // a constraint is not a boxing interface parameter
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := typeOf(info, arg)
		if at == nil || types.IsInterface(at.Underlying()) || isPointerLike(at) {
			continue
		}
		if tv, ok := info.Types[arg]; ok && tv.Value != nil {
			continue // constants can be boxed statically
		}
		if id, ok := arg.(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		pass.Reportf(arg.Pos(), "allocfree %s passes a concrete value where %s expects an interface: the boxing allocates", label, describeCallee(call))
	}
}

func typeOfAsSignature(info *types.Info, fun ast.Expr) (*types.Signature, bool) {
	t := typeOf(info, fun)
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

func describeCallee(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "the callee"
}

// checkAllocFreeAppend flags append calls whose destination is not a
// caller-owned or capacity-preallocated buffer.
func checkAllocFreeAppend(pass *Pass, label string, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	dst := call.Args[0]
	// Reslices of anything (x[:0], sc.buf[:n]) and field/element
	// destinations are the amortized-reuse pattern: the backing array
	// survives across calls.
	switch d := dst.(type) {
	case *ast.SliceExpr, *ast.SelectorExpr, *ast.IndexExpr:
		return
	case *ast.Ident:
		checkAppendIdentDst(pass, label, call, d)
	default:
		pass.Reportf(call.Pos(), "allocfree %s appends to an unrecognized destination: append only to caller-owned or capacity-preallocated buffers", label)
	}
}

func checkAppendIdentDst(pass *Pass, label string, call *ast.CallExpr, id *ast.Ident) {
	info := pass.Pkg.Info
	obj := info.ObjectOf(id)
	if _, ok := obj.(*types.Var); !ok {
		return
	}
	fn := enclosingFunc(pass, call.Pos())
	if fn == nil {
		return
	}
	// Declared in the signature (parameter, receiver or named result):
	// a caller-owned buffer, whose growth the caller amortizes.
	if obj.Pos() < fn.Body.Pos() {
		return
	}
	if localPreallocated(info, fn, obj) {
		return
	}
	pass.Reportf(call.Pos(), "allocfree %s appends to local %q, which is not preallocated with a capacity: growth reallocates per call", label, id.Name)
}

// localPreallocated reports whether obj's initializer inside fn is a
// 3-arg make or a reslice/alias of an existing buffer.
func localPreallocated(info *types.Info, fn *ast.FuncDecl, obj types.Object) bool {
	ok := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if ok {
			return false
		}
		var lhs []ast.Expr
		var rhs []ast.Expr
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok != token.DEFINE && x.Tok != token.ASSIGN {
				return true
			}
			lhs, rhs = x.Lhs, x.Rhs
		case *ast.ValueSpec:
			for _, name := range x.Names {
				lhs = append(lhs, name)
			}
			rhs = x.Values
		default:
			return true
		}
		if len(lhs) != len(rhs) {
			return true
		}
		for i, l := range lhs {
			li, okID := l.(*ast.Ident)
			if !okID || info.ObjectOf(li) != obj {
				continue
			}
			switch r := rhs[i].(type) {
			case *ast.CallExpr:
				if isBuiltin(info, r, "make") && len(r.Args) == 3 {
					ok = true
				}
			case *ast.SliceExpr, *ast.SelectorExpr, *ast.IndexExpr, *ast.Ident:
				// Aliasing an existing buffer (out := sorted[:0]).
				ok = true
			}
		}
		return !ok
	})
	return ok
}

// enclosingFunc returns the annotated FuncDecl containing pos.
func enclosingFunc(pass *Pass, pos token.Pos) *ast.FuncDecl {
	for _, f := range pass.Pkg.Files {
		if pos < f.FileStart || pos > f.FileEnd {
			continue
		}
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil && fn.Body.Pos() <= pos && pos <= fn.Body.End() {
				return fn
			}
		}
	}
	return nil
}

// captures returns the name of a variable the closure captures from the
// enclosing function, or "" when the literal is capture-free (a static
// function value, which does not allocate).
func captures(info *types.Info, fn *ast.FuncDecl, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured iff declared inside the enclosing function (params or
		// body) but outside the literal itself. Package-level vars are
		// not captures.
		p := v.Pos()
		inFn := p >= fn.Pos() && p <= fn.End()
		inLit := p >= lit.Pos() && p <= lit.End()
		if inFn && !inLit {
			name = v.Name()
		}
		return name == ""
	})
	return name
}
