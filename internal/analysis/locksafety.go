package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockSafetyAnalyzer guards the concurrency plumbing of the serving
// stack: values containing sync.Mutex/RWMutex (or any sync/atomic
// type, notably the Registry's atomic.Pointer hot-swap cell) must never
// be copied — a copied lock guards nothing — and exported methods must
// not hand out references to their receiver's internal maps, which
// would let callers mutate registry state behind the lock-free readers'
// backs.
//
// Flagged:
//
//   - function parameters and receivers that take a lock-containing
//     struct by value;
//   - assignments and var initializers that copy an existing
//     lock-containing value (composite-literal initialization of a
//     fresh value is fine);
//   - call arguments passing a lock-containing value by value;
//   - two-variable range statements whose element copy contains a lock;
//   - `return x.field` in an exported method where field is a map owned
//     by the receiver.
var LockSafetyAnalyzer = &Analyzer{
	Name: "locksafety",
	Doc:  "by-value copies of sync/atomic-bearing structs; exported methods returning internal maps",
	Run:  runLockSafety,
}

func runLockSafety(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkLockParams(pass, fn)
			if fn.Body == nil {
				continue
			}
			checkInternalMapReturns(pass, fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					checkLockAssign(pass, x)
				case *ast.GenDecl:
					checkLockVarDecl(pass, x)
				case *ast.CallExpr:
					checkLockArgs(pass, x)
				case *ast.RangeStmt:
					checkLockRange(pass, x)
				}
				return true
			})
		}
	}
}

// lockPath returns a human-readable path to the first no-copy component
// of t ("sync.Mutex", "sync/atomic.Pointer[...]"), or "" when t is
// safely copyable. Pointers to locks are fine; the lock itself is not.
func lockPath(t types.Type) string {
	return lockPathSeen(t, make(map[types.Type]bool))
}

func lockPathSeen(t types.Type, seen map[types.Type]bool) string {
	if t == nil {
		return ""
	}
	t = types.Unalias(t)
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj != nil && obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				switch obj.Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Cond", "Once", "Map", "Pool":
					return "sync." + obj.Name()
				}
			case "sync/atomic":
				// Every sync/atomic type (Value, Bool, Int64,
				// Pointer[T], ...) pins its address after first use.
				return "sync/atomic." + obj.Name()
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if p := lockPathSeen(u.Field(i).Type(), seen); p != "" {
				return p
			}
		}
	case *types.Array:
		return lockPathSeen(u.Elem(), seen)
	}
	return ""
}

func checkLockParams(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	fields := []*ast.Field{}
	if fn.Recv != nil {
		fields = append(fields, fn.Recv.List...)
	}
	if fn.Type.Params != nil {
		fields = append(fields, fn.Type.Params.List...)
	}
	for _, field := range fields {
		t := typeOf(info, field.Type)
		if t == nil {
			continue
		}
		if isPointerLike(t) {
			continue
		}
		if p := lockPath(t); p != "" {
			what := "parameter"
			if fn.Recv != nil && len(fn.Recv.List) > 0 && field == fn.Recv.List[0] {
				what = "receiver"
			}
			pass.Reportf(field.Pos(), "%s %s copies a value containing %s: pass a pointer, a copied lock guards nothing", funcLabel(fn), what, p)
		}
	}
}

// valueRead reports whether e reads an existing value (identifier,
// field, element or dereference) — the forms whose assignment copies a
// live lock. Composite literals and calls construct fresh values.
func valueRead(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name != "nil"
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return valueRead(x.X)
	}
	return false
}

func checkLockAssign(pass *Pass, as *ast.AssignStmt) {
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return
	}
	info := pass.Pkg.Info
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		// Assigning to _ discards the value: no usable copy is made.
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		if !valueRead(rhs) {
			continue
		}
		t := typeOf(info, rhs)
		if t == nil {
			continue
		}
		if isPointerLike(t) {
			continue
		}
		if p := lockPath(t); p != "" {
			pass.Reportf(as.Lhs[i].Pos(), "assignment copies a value containing %s: use a pointer, a copied lock guards nothing", p)
		}
	}
}

func checkLockVarDecl(pass *Pass, gd *ast.GenDecl) {
	if gd.Tok != token.VAR {
		return
	}
	info := pass.Pkg.Info
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, v := range vs.Values {
			if !valueRead(v) {
				continue
			}
			if t := typeOf(info, v); t != nil {
				if isPointerLike(t) {
					continue
				}
				if p := lockPath(t); p != "" {
					pass.Reportf(v.Pos(), "initializer copies a value containing %s: use a pointer, a copied lock guards nothing", p)
				}
			}
		}
	}
}

func checkLockArgs(pass *Pass, call *ast.CallExpr) {
	info := pass.Pkg.Info
	for _, arg := range call.Args {
		if !valueRead(arg) {
			continue
		}
		t := typeOf(info, arg)
		if t == nil {
			continue
		}
		if isPointerLike(t) {
			continue
		}
		if p := lockPath(t); p != "" {
			pass.Reportf(arg.Pos(), "call passes a value containing %s by value: pass a pointer, a copied lock guards nothing", p)
		}
	}
}

func checkLockRange(pass *Pass, rs *ast.RangeStmt) {
	if rs.Value == nil {
		return
	}
	t := typeOf(pass.Pkg.Info, rs.Value)
	if t == nil {
		return
	}
	if isPointerLike(t) {
		return
	}
	if p := lockPath(t); p != "" {
		pass.Reportf(rs.Value.Pos(), "range copies elements containing %s: range over indices or use pointer elements", p)
	}
}

// checkInternalMapReturns flags exported methods returning a map field
// of their receiver: the caller gets a mutable reference into state the
// type guards with its own synchronization.
func checkInternalMapReturns(pass *Pass, fn *ast.FuncDecl) {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || !fn.Name.IsExported() {
		return
	}
	var recvNames []string
	for _, n := range fn.Recv.List[0].Names {
		if n.Name != "_" {
			recvNames = append(recvNames, n.Name)
		}
	}
	if len(recvNames) == 0 {
		return
	}
	info := pass.Pkg.Info
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a closure's returns are not the method's
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			sel, ok := res.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			base, ok := sel.X.(*ast.Ident)
			if !ok || !isRecvName(recvNames, base.Name) {
				continue
			}
			if t := typeOf(info, res); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(res.Pos(), "exported %s returns internal map %s.%s by reference: return a copy, callers can mutate it behind the type's synchronization", funcLabel(fn), base.Name, sel.Sel.Name)
				}
			}
		}
		return true
	})
}

// isPointerLike reports whether t is (an alias or named form of) a
// pointer, which may be copied freely even when it points at a lock.
func isPointerLike(t types.Type) bool {
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

func isRecvName(names []string, n string) bool {
	for _, r := range names {
		if r == n {
			return true
		}
	}
	return false
}
