// Package a seeds malformed directives: every grammar error must be a
// diagnostic, so a typo can never silently disable (or fail to apply)
// an invariant. The want-next marker binds each expectation to the
// directive comment's own line.
package a

// want-next "must be in the doc comment of a function declaration"
//ceres:allocfree
var notAFunc int

// want-next "unknown //ceres: directive"
//ceres:allocfre
func typoDirective() {}

// want-next "takes no arguments"
//ceres:allocfree because it is hot
func withArgs() {}

// want-next "must name the analyzer it suppresses"
//ceresvet:ignore
func bareIgnore() {}

// want-next "names unknown analyzer"
//ceresvet:ignore atomicwrites close enough
func unknownTarget() {}

// want-next "must give a reason"
//ceresvet:ignore atomicwrite
func noReason() {}

// want-next "unknown //ceresvet: directive"
//ceresvet:disable atomicwrite some reason
func wrongVerb() {}

// The grammar validator cannot be suppressed, so targeting it is
// rejected as unknown.
// want-next "names unknown analyzer"
//ceresvet:ignore annotations sneaky blanket suppression
func suppressValidator() {}

// want-next "no space after //"
// ceres:allocfree
func spacedDirective() {}

// want-next "no space after //"
// ceresvet:ignore atomicwrite spaced ignores never bind
func spacedIgnore() {}

//ceres:allocfree
func validAnnotation() int { return 0 }

func validIgnoreUser() int {
	//ceresvet:ignore ctxflow well-formed ignores are not diagnostics
	return 1
}
