// Package a seeds mapdeterminism violations: map iteration feeding
// order-sensitive sinks, with the collect-then-sort idiom and
// order-independent aggregations staying silent.
package a

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// collectUnsorted leaks map order into the returned slice.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "in map iteration order with no subsequent sort"
	}
	return keys
}

// collectSorted is the blessed collect-then-sort idiom.
func collectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectSlicesSorted sorts through the slices package instead.
func collectSlicesSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

func sortKeys(keys []string) { sort.Strings(keys) }

func printLoop(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "fmt.Println inside map iteration"
	}
}

func fprintLoop(m map[string]int, w io.Writer) {
	for k := range m {
		fmt.Fprintf(w, "%s\n", k) // want "fmt.Fprintf inside map iteration"
	}
}

func writeLoop(m map[string]int, w io.Writer) {
	for k := range m {
		w.Write([]byte(k)) // want "Write inside map iteration"
	}
}

func builderLoop(m map[string]int, sb *strings.Builder) {
	for k := range m {
		sb.WriteString(k) // want "WriteString inside map iteration"
	}
}

func sendLoop(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want "channel send inside map iteration"
	}
}

func nested(m map[string]map[string]int) {
	for _, inner := range m {
		for k := range inner {
			fmt.Println(k) // want "fmt.Println inside map iteration"
		}
	}
}

// aggregate is order-independent and stays silent.
func aggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// rekey builds another map: order-independent.
func rekey(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// perIteration appends to a slice created inside the loop body, which
// cannot carry order across iterations.
func perIteration(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// sliceRange ranges over a slice, not a map: deterministic.
func sliceRange(xs []string, w io.Writer) {
	for _, x := range xs {
		io.WriteString(w, x)
	}
}
