// Package fsatomic mimics the blessed implementation package: the
// rename dance itself has to live somewhere, so any package named
// fsatomic is exempt.
package fsatomic

import "os"

func Commit(tmp, final string) error {
	return os.Rename(tmp, final)
}

func WriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
