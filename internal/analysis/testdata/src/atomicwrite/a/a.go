// Package a seeds atomicwrite violations: every raw publication call
// must be flagged, while the blessed CreateTemp path, test files and
// correctly scoped ignores stay silent.
package a

import (
	"io/ioutil"
	"os"
	"path/filepath"
)

func rawCreate(dir string) error {
	f, err := os.Create(filepath.Join(dir, "out.json")) // want "raw os.Create"
	if err != nil {
		return err
	}
	return f.Close()
}

func rawWrite(dir string) error {
	return os.WriteFile(filepath.Join(dir, "x"), nil, 0o644) // want "raw os.WriteFile"
}

func rawRename(dir string) error {
	return os.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")) // want "raw os.Rename"
}

func legacyWrite(path string) error {
	return ioutil.WriteFile(path, nil, 0o644) // want "raw ioutil.WriteFile"
}

// tempOK uses the blessed stream-then-commit entry point.
func tempOK(dir string) error {
	f, err := os.CreateTemp(dir, ".x-*")
	if err != nil {
		return err
	}
	return f.Close()
}

func ignoredTrailing(dir string) error {
	f, err := os.Create(dir + "/scratch") //ceresvet:ignore atomicwrite scratch file never published to readers
	if err != nil {
		return err
	}
	return f.Close()
}

func ignoredStandalone(dir string) error {
	//ceresvet:ignore atomicwrite scratch file never published to readers
	return os.WriteFile(dir+"/scratch", nil, 0o644)
}

func wrongAnalyzerIgnored(dir string) error {
	//ceresvet:ignore ctxflow an ignore for another analyzer does not suppress this one
	return os.Rename(dir+"/a", dir+"/b") // want "raw os.Rename"
}

// shadowed proves resolution is type-based: a local named os is not the
// os package.
func shadowed() {
	os := fakeOS{}
	os.Create("x")
}

type fakeOS struct{}

func (fakeOS) Create(string) {}
