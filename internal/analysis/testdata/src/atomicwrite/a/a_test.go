package a

import "os"

// Test files write fixtures freely: no diagnostics here.
func helperForTests(dir string) error {
	if err := os.WriteFile(dir+"/fixture", nil, 0o644); err != nil {
		return err
	}
	return os.Rename(dir+"/fixture", dir+"/fixture2")
}
