// Package lib seeds ctxflow violations: root contexts manufactured in
// library code and exported fan-out without a threaded context.
package lib

import (
	"context"
	"sync"
)

func background() context.Context {
	return context.Background() // want "context.Background"
}

func todo() context.Context {
	return context.TODO() // want "context.TODO"
}

// Fanout spawns workers with no way to cancel them.
func Fanout(n int) { // want "no context.Context parameter"
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() { wg.Done() }()
	}
	wg.Wait()
}

// FanoutCtx threads its context and stays silent.
func FanoutCtx(ctx context.Context, n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			select {
			case <-ctx.Done():
			default:
			}
		}()
	}
	wg.Wait()
}

// FanoutDropped accepts a context and then ignores it.
func FanoutDropped(ctx context.Context, n int) { // want "never uses its context.Context parameter"
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() { wg.Done() }()
	}
	wg.Wait()
}

// FanoutBlank declares and immediately discards its context.
func FanoutBlank(_ context.Context, n int) { // want "discards its context.Context parameter"
	done := make(chan struct{})
	go func() {
		for i := 0; i < n; i++ {
		}
		close(done)
	}()
	<-done
}

// parallelFor stands in for the repo's worker-pool helper.
func parallelFor(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// Pooled fans out through the worker-pool helper instead of a literal
// go statement.
func Pooled(n int) { // want "no context.Context parameter"
	parallelFor(n, func(int) {})
}

// internalFanout is unexported: package-internal concurrency plumbing
// is the enclosing exported API's responsibility.
func internalFanout(n int) {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

// LegacyFanout predates the context plumbing and is deliberately
// grandfathered.
//
//ceresvet:ignore ctxflow deprecated compatibility shim, callers migrate to FanoutCtx
func LegacyFanout(n int) {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
