// Command mainpkg proves entry points are exempt: main is where root
// contexts are legitimately created, and its helpers fan out freely.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
	run()
}

func run() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
