// Package a seeds allocfree violations inside //ceres:allocfree
// functions, alongside the blessed amortized-buffer patterns that must
// stay silent. Unannotated functions allocate freely.
package a

import "fmt"

type sink struct {
	buf []int
}

//ceres:allocfree
func sprintfHot(n int) string {
	return fmt.Sprintf("%d", n) // want "calls fmt.Sprintf"
}

//ceres:allocfree
func concatHot(a, b string) string {
	return a + b // want "concatenates strings"
}

//ceres:allocfree
func concatAssignHot(a, b string) string {
	a += b // want "concatenates strings with"
	return a
}

//ceres:allocfree
func makeHot(n int) []int {
	return make([]int, n) // want "calls make"
}

//ceres:allocfree
func newHot() *sink {
	return new(sink) // want "calls new"
}

//ceres:allocfree
func litHot() []int {
	return []int{1, 2, 3} // want "slice/map literal"
}

//ceres:allocfree
func escapeHot() *sink {
	return &sink{} // want "address of a composite literal"
}

//ceres:allocfree
func goHot(done chan struct{}) {
	go close(done) // want "spawns a goroutine"
}

//ceres:allocfree
func closureHot(n int) func() int {
	return func() int { return n } // want "closure capturing"
}

//ceres:allocfree
func staticClosureHot() func() int {
	return func() int { return 42 } // capture-free: a static func value
}

//ceres:allocfree
func convHot(b []byte) string {
	return string(b) // want "converts []byte/[]rune to string"
}

//ceres:allocfree
func convBackHot(s string) []byte {
	return []byte(s) // want "string to []byte"
}

func takeAny(v any) {}

func variadicAny(vs ...any) {}

//ceres:allocfree
func boxHot(v int) {
	takeAny(v) // want "expects an interface"
}

//ceres:allocfree
func boxVariadicHot(a, b int) {
	variadicAny(a, b) // want "expects an interface" "expects an interface"
}

//ceres:allocfree
func boxPtrOK(p *sink) {
	takeAny(p) // a pointer fits the interface data word: no boxing allocation
}

//ceres:allocfree
func badAppendHot(s *sink, v int) {
	var grown []int
	grown = append(grown, v) // want "not preallocated with a capacity"
	s.buf = grown
}

//ceres:allocfree
func fieldAppendHot(s *sink, v int) {
	s.buf = append(s.buf, v) // amortized caller-owned buffer
}

//ceres:allocfree
func paramAppendHot(dst []int, v int) []int {
	return append(dst, v) // caller-owned buffer
}

//ceres:allocfree
func resliceAppendHot(dst []int, v int) []int {
	out := dst[:0]
	out = append(out, v)
	return out
}

//ceres:allocfree
func preallocatedHot(n, v int) []int {
	out := make([]int, 0, n) // want "calls make"
	out = append(out, v)     // silent: the make diagnostic already covers the allocation
	return out
}

//ceres:allocfree
func ignoredWarmup(n int) []int {
	return make([]int, n) //ceresvet:ignore allocfree one-time warmup allocation before the serve loop
}

// unannotated functions are outside the contract.
func unannotated(a, b string) string {
	out := []string{a + b, fmt.Sprintf("%s", a)}
	return out[0]
}
