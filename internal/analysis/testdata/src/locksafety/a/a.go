// Package a seeds locksafety violations: by-value copies of
// lock-bearing structs in every position (param, receiver, assignment,
// argument, range) and exported methods leaking internal maps.
package a

import (
	"sync"
	"sync/atomic"
)

type Guarded struct {
	mu sync.Mutex
	n  int
}

type Table struct {
	swap  atomic.Int64
	items map[string]int
}

func byValue(g Guarded) int { // want "parameter copies a value containing sync.Mutex"
	return g.n
}

func byPointer(g *Guarded) int { return g.n }

func (g Guarded) ValueRecv() int { // want "receiver copies a value containing sync.Mutex"
	return g.n
}

func (g *Guarded) PtrRecv() int { return g.n }

func assignCopy(g *Guarded) {
	snapshot := *g // want "assignment copies a value containing sync.Mutex"
	_ = snapshot
}

func declCopy(g *Guarded) {
	var snapshot = *g // want "initializer copies a value containing sync.Mutex"
	_ = snapshot
}

func atomicCopy(t *Table) {
	c := t.swap // want "assignment copies a value containing sync/atomic.Int64"
	_ = c
}

// freshInit builds new values in place: nothing is copied.
func freshInit() {
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
	g := Guarded{n: 1}
	_ = g
	p := &Guarded{n: 2}
	_ = p
}

func rangeCopy(gs []Guarded) int {
	total := 0
	for _, g := range gs { // want "range copies elements containing sync.Mutex"
		total += g.n
	}
	return total
}

// rangeIndex is the blessed fix: index, then take a pointer.
func rangeIndex(gs []Guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}

func callCopy(g *Guarded) {
	use(*g) // want "call passes a value containing sync.Mutex"
}

func use(Guarded) {} // want "parameter copies a value containing sync.Mutex"

func usePtr(*Guarded) {}

// Items leaks the internal map.
func (t *Table) Items() map[string]int {
	return t.items // want "returns internal map t.items by reference"
}

// ItemsCopy returns a defensive copy and stays silent.
func (t *Table) ItemsCopy() map[string]int {
	out := make(map[string]int, len(t.items))
	for k, v := range t.items {
		out[k] = v
	}
	return out
}

// items is unexported: package-internal plumbing may share the map.
func (t *Table) items2() map[string]int { return t.items }
