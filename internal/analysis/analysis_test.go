package analysis

import (
	"encoding/json"
	"testing"
)

// TestDiagnosticJSON pins the -json wire shape consumed by CI tooling.
func TestDiagnosticJSON(t *testing.T) {
	d := Diagnostic{
		Analyzer: "atomicwrite",
		File:     "cmd/x/main.go",
		Line:     12,
		Col:      7,
		Message:  "raw os.Create",
	}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"analyzer", "file", "line", "col", "message"} {
		if _, ok := m[key]; !ok {
			t.Errorf("JSON missing key %q: %s", key, b)
		}
	}
	if len(m) != 5 {
		t.Errorf("JSON has %d keys, want 5 (token.Position must stay internal): %s", len(m), b)
	}
	if d.String() != "cmd/x/main.go:12:7: atomicwrite: raw os.Create" {
		t.Errorf("String() = %q", d.String())
	}
}
