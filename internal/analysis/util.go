package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// pkgCall resolves a call of the form pkg.Fn where pkg is an imported
// package name, returning the package's import path and the function
// name. ok is false for method calls, locally-shadowed names and
// non-selector calls. Resolution goes through go/types PkgName objects,
// so an `import foo "os"` alias and a local variable named os are both
// handled correctly.
func pkgCall(info *types.Info, call *ast.CallExpr) (path, name string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	id, okID := sel.X.(*ast.Ident)
	if !okID {
		return "", "", false
	}
	pn, okPkg := info.Uses[id].(*types.PkgName)
	if !okPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// isBuiltin reports whether the call invokes the named builtin
// (append, make, new, ...) rather than a shadowing user identifier.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := info.Uses[id].(*types.Builtin)
	return isB
}

// typeOf is info.TypeOf with a nil guard; it returns nil for expressions
// the (possibly degraded) type check produced nothing for.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	t := info.TypeOf(e)
	if t == nil || t == types.Typ[types.Invalid] {
		return nil
	}
	return t
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isContextType reports whether the parameter type expression denotes
// context.Context — checked on the AST selector (resilient to stub
// degradation) with the package name resolved through go/types.
func isContextType(info *types.Info, expr ast.Expr) bool {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "context"
}

// baseIdent unwraps slice and paren expressions to the base identifier:
// buf, buf[:0], (buf) all resolve to buf; anything else returns nil.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isTestFile reports whether filename is a Go test file.
func isTestFile(filename string) bool {
	return strings.HasSuffix(filename, "_test.go")
}

// funcLabel renders a FuncDecl name for diagnostics, including the
// receiver type for methods: "(*Registry).Publish" or "Fuse".
func funcLabel(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	star := ""
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
		star = "*"
	}
	name := "?"
	switch x := t.(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.IndexExpr: // generic receiver T[P]
		if id, ok := x.X.(*ast.Ident); ok {
			name = id.Name
		}
	case *ast.IndexListExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			name = id.Name
		}
	}
	if star != "" {
		return "(" + star + name + ")." + fn.Name.Name
	}
	return name + "." + fn.Name.Name
}
