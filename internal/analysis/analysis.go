// Package analysis is ceresvet's engine: a stdlib-only (go/parser,
// go/ast, go/types) multi-analyzer suite that enforces the repo's
// load-bearing invariants — atomic file publication, context flow,
// deterministic map iteration, lock-copy safety and the //ceres:allocfree
// hot-path contract. DESIGN.md §9 documents each analyzer and how to add
// a new one; cmd/ceresvet is the CLI.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Diagnostic is one finding, positioned at file:line:col.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Run inspects a single package and
// reports findings through the Pass.
type Analyzer struct {
	// Name is the identifier //ceresvet:ignore directives reference.
	Name string
	// Doc is the one-line description `ceresvet -list` prints.
	Doc string
	Run  func(*Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// FileOf returns the *ast.File containing pos and its filename.
func (p *Pass) FileOf(pos token.Pos) (*ast.File, string) {
	for i, f := range p.Pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f, p.Pkg.Filenames[i]
		}
	}
	return nil, ""
}

// Analyzers returns the full suite in reporting order. The annotations
// analyzer validates the directive grammar itself and therefore always
// runs first.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnnotationsAnalyzer,
		AtomicWriteAnalyzer,
		CtxFlowAnalyzer,
		MapDeterminismAnalyzer,
		LockSafetyAnalyzer,
		AllocFreeAnalyzer,
	}
}

// ByName resolves an analyzer by its directive name.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// analyzerNames lists the registered analyzers without referring to
// their vars, so directive parsing (which the analyzers' Run funcs
// reach) does not create an initialization cycle.
var analyzerNames = []string{annotationsName, "atomicwrite", "ctxflow", "mapdeterminism", "locksafety", "allocfree"}

// knownAnalyzer reports whether name is a registered analyzer —
// the validity condition for //ceresvet:ignore targets.
func knownAnalyzer(name string) bool {
	for _, n := range analyzerNames {
		if n == name {
			return true
		}
	}
	return false
}

// Run executes the analyzers over the packages, applies
// //ceresvet:ignore suppression, and returns diagnostics in
// deterministic (file, line, col, analyzer, message) order.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var all []Diagnostic
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, diags: &diags})
		}
		dirs := pkg.directives()
		for _, d := range diags {
			if dirs.suppressed(d) {
				continue
			}
			all = append(all, d)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return all
}
