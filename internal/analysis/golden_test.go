package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden harness: each analyzer owns testdata/src/<name>/<pkg>
// directories of seeded violations. A `// want "substr" ...` comment
// expects diagnostics of the analyzer under test on its own line; a
// `// want-next "substr"` comment expects them on the following line
// (needed when the flagged line is itself a directive comment). The
// test fails on any unexpected diagnostic and on any unmet expectation:
// the analyzers must flag every seeded violation and nothing else.

var wantStrRe = regexp.MustCompile(`"([^"]*)"`)

type expectation struct {
	file string
	line int
	sub  string
	met  bool
}

func parseExpectations(t *testing.T, filename string) []*expectation {
	t.Helper()
	data, err := os.ReadFile(filename)
	if err != nil {
		t.Fatal(err)
	}
	var exps []*expectation
	for i, lineText := range strings.Split(string(data), "\n") {
		line := i + 1
		idx := strings.Index(lineText, "// want")
		if idx < 0 {
			continue
		}
		rest := lineText[idx+len("// want"):]
		if strings.HasPrefix(rest, "-next") {
			line++
			rest = strings.TrimPrefix(rest, "-next")
		}
		for _, m := range wantStrRe.FindAllStringSubmatch(rest, -1) {
			exps = append(exps, &expectation{file: filename, line: line, sub: m[1]})
		}
	}
	return exps
}

// runGolden loads every package under testdata/src/<analyzer> and
// checks the analyzer's diagnostics against the want comments.
func runGolden(t *testing.T, name string) {
	t.Helper()
	a, ok := ByName(name)
	if !ok {
		t.Fatalf("no analyzer %q", name)
	}
	root := filepath.Join("testdata", "src", name)
	ents, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		ran++
		dir := filepath.Join(root, e.Name())
		t.Run(e.Name(), func(t *testing.T) {
			pkg, err := LoadDir(dir, "test/"+name+"/"+e.Name())
			if err != nil {
				t.Fatal(err)
			}
			for _, terr := range pkg.TypeErrors {
				t.Errorf("testdata must type-check cleanly: %v", terr)
			}
			var exps []*expectation
			for _, fn := range pkg.Filenames {
				exps = append(exps, parseExpectations(t, fn)...)
			}
			diags := Run([]*Package{pkg}, []*Analyzer{a})
			for _, d := range diags {
				if !claim(exps, d.File, d.Line, d.Message) {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, ex := range exps {
				if !ex.met {
					t.Errorf("missed expected diagnostic at %s:%d containing %q", ex.file, ex.line, ex.sub)
				}
			}
		})
	}
	if ran == 0 {
		t.Fatalf("no golden packages under %s", root)
	}
}

func claim(exps []*expectation, file string, line int, msg string) bool {
	for _, ex := range exps {
		if !ex.met && ex.file == file && ex.line == line && strings.Contains(msg, ex.sub) {
			ex.met = true
			return true
		}
	}
	return false
}

func TestAtomicWriteGolden(t *testing.T)    { runGolden(t, "atomicwrite") }
func TestCtxFlowGolden(t *testing.T)        { runGolden(t, "ctxflow") }
func TestMapDeterminismGolden(t *testing.T) { runGolden(t, "mapdeterminism") }
func TestLockSafetyGolden(t *testing.T)     { runGolden(t, "locksafety") }
func TestAllocFreeGolden(t *testing.T)      { runGolden(t, "allocfree") }
func TestAnnotationsGolden(t *testing.T)    { runGolden(t, "annotations") }

// TestRepoIsCeresvetClean is the acceptance gate in test form: the full
// suite over the real module must report nothing. It is what
// `go run ./cmd/ceresvet ./...` checks in CI, kept here too so a plain
// `go test ./...` catches invariant regressions without the lint job.
func TestRepoIsCeresvetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("module load found only %d packages", len(pkgs))
	}
	var msgs []string
	for _, d := range Run(pkgs, Analyzers()) {
		msgs = append(msgs, d.String())
	}
	if len(msgs) > 0 {
		t.Errorf("ceresvet is not clean on the repo:\n%s", strings.Join(msgs, "\n"))
	}
}

// TestAnalyzerRegistry pins the suite composition: names are the
// //ceresvet:ignore vocabulary, so renames are breaking changes.
func TestAnalyzerRegistry(t *testing.T) {
	want := []string{"annotations", "atomicwrite", "ctxflow", "mapdeterminism", "locksafety", "allocfree"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc", a.Name)
		}
		if byName, ok := ByName(a.Name); !ok || byName != a {
			t.Errorf("ByName(%q) does not round-trip", a.Name)
		}
		if !knownAnalyzer(a.Name) {
			t.Errorf("knownAnalyzer(%q) = false", a.Name)
		}
	}
	if _, ok := ByName("nosuch"); ok {
		t.Error("ByName accepted an unknown name")
	}
	_ = fmt.Sprintf // keep fmt imported for future debugging ergonomics
}
