package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapDeterminismAnalyzer guards the byte-identical-output invariant
// (kill/resume of a batch run, WriteTo of a SiteModel, fused triple
// files): Go randomizes map iteration order, so a `range` over a map
// must not feed order-sensitive output. Flagged inside a map-range
// body:
//
//   - appending to a slice declared outside the loop, unless that slice
//     is sorted afterwards in the same function (the collect-then-sort
//     idiom is the blessed fix and stays silent);
//   - writing to a sink: fmt.Print/Fprint calls or any Write* method
//     (io.Writer, strings.Builder, bufio.Writer, gzip.Writer, ...);
//   - sending on a channel.
//
// Aggregations (sums, max, building another map) are order-independent
// and stay silent.
var MapDeterminismAnalyzer = &Analyzer{
	Name: "mapdeterminism",
	Doc:  "order-sensitive output built from randomized map iteration",
	Run:  runMapDeterminism,
}

func runMapDeterminism(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := typeOf(pass.Pkg.Info, rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRange(pass, fn, rs)
				return true
			})
		}
	}
}

func checkMapRange(pass *Pass, fn *ast.FuncDecl, rs *ast.RangeStmt) {
	info := pass.Pkg.Info
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.RangeStmt:
			// A nested map range is checked by its own pass; descending
			// here would double-report its findings.
			if t := typeOf(info, x.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					return false
				}
			}
		case *ast.SendStmt:
			pass.Reportf(x.Pos(), "channel send inside map iteration: receive order is randomized per run; iterate a sorted key slice instead")
		case *ast.CallExpr:
			if path, name, ok := pkgCall(info, x); ok && path == "fmt" &&
				(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
				pass.Reportf(x.Pos(), "fmt.%s inside map iteration: output order is randomized per run; iterate a sorted key slice instead", name)
				return true
			}
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && strings.HasPrefix(sel.Sel.Name, "Write") {
				pass.Reportf(x.Pos(), "%s inside map iteration: sink output order is randomized per run; iterate a sorted key slice instead", sel.Sel.Name)
			}
		case *ast.AssignStmt:
			checkAppendInMapRange(pass, fn, rs, x)
		}
		return true
	})
}

// checkAppendInMapRange flags `out = append(out, ...)` where out is
// declared outside the loop and is never sorted after the loop ends.
func checkAppendInMapRange(pass *Pass, fn *ast.FuncDecl, rs *ast.RangeStmt, as *ast.AssignStmt) {
	info := pass.Pkg.Info
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltin(info, call, "append") || i >= len(as.Lhs) {
			continue
		}
		dst := baseIdent(as.Lhs[i])
		if dst == nil {
			continue
		}
		obj := info.ObjectOf(dst)
		if obj == nil {
			continue
		}
		// Declared inside the loop body: the per-iteration slice cannot
		// leak iteration order across iterations.
		if obj.Pos() >= rs.Body.Pos() && obj.Pos() <= rs.Body.End() {
			continue
		}
		if sortedAfter(info, fn.Body, obj, rs.End()) {
			continue
		}
		pass.Reportf(call.Pos(), "append to %q in map iteration order with no subsequent sort: slice order is randomized per run (collect then sort, or iterate sorted keys)", dst.Name)
	}
}

// sortedAfter reports whether obj is passed to a sort-like call
// (anything in sort or slices, or a function whose name contains "Sort"
// or "Canonical") after pos — the "intervening sort" that restores
// determinism before the slice is used.
func sortedAfter(info *types.Info, body *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		if !isSortLike(info, call) {
			return true
		}
		for _, arg := range call.Args {
			base := baseIdent(arg)
			if base == nil {
				if ue, ok := arg.(*ast.UnaryExpr); ok && ue.Op == token.AND {
					base = baseIdent(ue.X)
				}
			}
			if base != nil && info.ObjectOf(base) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

func isSortLike(info *types.Info, call *ast.CallExpr) bool {
	if path, _, ok := pkgCall(info, call); ok {
		return path == "sort" || path == "slices"
	}
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := fun.X.(*ast.Ident); ok {
			name = id.Name
		}
	}
	return strings.Contains(name, "Sort") || strings.Contains(name, "sort") || strings.Contains(name, "Canonical")
}
