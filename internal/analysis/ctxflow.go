package analysis

import (
	"go/ast"
	"strings"
)

// CtxFlowAnalyzer enforces the context-cancellation invariant: library
// code never manufactures its own root context, and any exported
// function that fans work out to goroutines (a `go` statement or a
// parallelFor-style worker pool) must accept a context.Context and
// actually thread it, so callers can cancel the fan-out. Entry-point
// packages (package main) are exempt: main() is where root contexts are
// legitimately created.
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "context.Background/TODO in library code; exported fan-out without a threaded context.Context",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	pkg := pass.Pkg
	if pkg.IsMain() {
		return
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok {
				checkExportedFanout(pass, fn)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if path, name, ok := pkgCall(pkg.Info, call); ok && path == "context" && (name == "Background" || name == "TODO") {
				pass.Reportf(call.Pos(), "context.%s() in library code: accept a context.Context from the caller instead of manufacturing a root", name)
			}
			return true
		})
	}
}

// checkExportedFanout flags exported functions that spawn concurrency
// without accepting (or without using) a context parameter.
func checkExportedFanout(pass *Pass, fn *ast.FuncDecl) {
	if fn.Body == nil || !fn.Name.IsExported() {
		return
	}
	if !spawnsWork(fn.Body) {
		return
	}
	ctxParams := contextParams(pass, fn)
	if len(ctxParams) == 0 {
		pass.Reportf(fn.Pos(), "exported %s spawns goroutines but has no context.Context parameter: callers cannot cancel the fan-out", funcLabel(fn))
		return
	}
	for _, name := range ctxParams {
		if name == "_" {
			pass.Reportf(fn.Pos(), "exported %s discards its context.Context parameter (_): thread it into the spawned work", funcLabel(fn))
			continue
		}
		if !identUsed(fn.Body, name) {
			pass.Reportf(fn.Pos(), "exported %s never uses its context.Context parameter %q: thread it into the spawned work", funcLabel(fn), name)
		}
	}
}

// spawnsWork reports whether the body contains a go statement or a call
// to a parallelFor-style pool helper.
func spawnsWork(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			found = true
		case *ast.CallExpr:
			var name string
			switch fun := x.Fun.(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			}
			if strings.HasPrefix(name, "parallelFor") || strings.HasPrefix(name, "ParallelFor") {
				found = true
			}
		}
		return !found
	})
	return found
}

// contextParams returns the names of fn's context.Context parameters.
func contextParams(pass *Pass, fn *ast.FuncDecl) []string {
	var names []string
	if fn.Type.Params == nil {
		return nil
	}
	for _, field := range fn.Type.Params.List {
		if !isContextType(pass.Pkg.Info, field.Type) {
			continue
		}
		if len(field.Names) == 0 {
			names = append(names, "_")
			continue
		}
		for _, n := range field.Names {
			names = append(names, n.Name)
		}
	}
	return names
}

// identUsed reports whether an identifier with the given name is read
// anywhere in the body (shadowing is rare enough in practice that a
// name-level check keeps the analyzer simple).
func identUsed(body *ast.BlockStmt, name string) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			used = true
		}
		return !used
	})
	return used
}
