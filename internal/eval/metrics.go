// Package eval implements the evaluation protocols of the paper's §5.2:
// precision / recall / F1 over extracted facts, the page-hit methodology of
// Hao et al. used for the SWDE comparison (Table 3), per-predicate
// breakdowns (Tables 4–6), and precision-vs-volume sweeps over extraction
// confidence (Figure 6).
package eval

import (
	"sort"

	"ceres/internal/strmatch"
)

// Fact is one extracted or gold assertion, scoped to the page that asserts
// it. Values compare under normalization, so presentation differences
// ("Spike Lee" vs "spike lee") do not count as errors.
type Fact struct {
	Page      string
	Predicate string
	Value     string
}

func (f Fact) key() string {
	return f.Page + "\x00" + f.Predicate + "\x00" + strmatch.Normalize(f.Value)
}

// PRF bundles precision, recall and F1 with the underlying counts.
type PRF struct {
	TP, FP, FN int
	P, R, F1   float64
}

func prfFromCounts(tp, fp, fn int) PRF {
	out := PRF{TP: tp, FP: fp, FN: fn}
	if tp+fp > 0 {
		out.P = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		out.R = float64(tp) / float64(tp+fn)
	}
	if out.P+out.R > 0 {
		out.F1 = 2 * out.P * out.R / (out.P + out.R)
	}
	return out
}

// Score compares predicted facts against gold facts as sets (the
// "all mentions" metric of Table 4: each distinct (page, predicate, value)
// counts once).
func Score(predicted, gold []Fact) PRF {
	goldSet := make(map[string]bool, len(gold))
	for _, g := range gold {
		goldSet[g.key()] = true
	}
	predSet := make(map[string]bool, len(predicted))
	for _, p := range predicted {
		predSet[p.key()] = true
	}
	tp, fp := 0, 0
	for k := range predSet {
		if goldSet[k] {
			tp++
		} else {
			fp++
		}
	}
	fn := 0
	for k := range goldSet {
		if !predSet[k] {
			fn++
		}
	}
	return prfFromCounts(tp, fp, fn)
}

// ScoreByPredicate computes Score per predicate plus an "" key holding the
// micro-average over all facts (the "All Extractions" rows of Table 5).
func ScoreByPredicate(predicted, gold []Fact) map[string]PRF {
	preds := map[string]bool{}
	for _, f := range predicted {
		preds[f.Predicate] = true
	}
	for _, f := range gold {
		preds[f.Predicate] = true
	}
	out := make(map[string]PRF, len(preds)+1)
	for p := range preds {
		out[p] = Score(filter(predicted, p), filter(gold, p))
	}
	out[""] = Score(predicted, gold)
	return out
}

func filter(facts []Fact, pred string) []Fact {
	var out []Fact
	for _, f := range facts {
		if f.Predicate == pred {
			out = append(out, f)
		}
	}
	return out
}

// PageHitScore implements the methodology of Hao et al. that Table 3
// follows: per (page, predicate), the system earns a true positive if any
// predicted value for that predicate on that page is correct; a prediction
// with no correct value is a false positive; a gold pair with no correct
// prediction is a false negative.
func PageHitScore(predicted, gold []Fact) PRF {
	type pp struct{ page, pred string }
	goldVals := map[pp]map[string]bool{}
	for _, g := range gold {
		k := pp{g.Page, g.Predicate}
		if goldVals[k] == nil {
			goldVals[k] = map[string]bool{}
		}
		goldVals[k][strmatch.Normalize(g.Value)] = true
	}
	predHit := map[pp]bool{}
	predSeen := map[pp]bool{}
	for _, p := range predicted {
		k := pp{p.Page, p.Predicate}
		predSeen[k] = true
		if goldVals[k][strmatch.Normalize(p.Value)] {
			predHit[k] = true
		}
	}
	tp, fp := 0, 0
	for k := range predSeen {
		if predHit[k] {
			tp++
		} else {
			fp++
		}
	}
	fn := 0
	for k := range goldVals {
		if !predHit[k] {
			fn++
		}
	}
	return prfFromCounts(tp, fp, fn)
}

// ScoredFact is a fact with the extractor's confidence, for
// precision-vs-volume analysis.
type ScoredFact struct {
	Fact
	Confidence float64
}

// SweepPoint is one threshold of a precision/volume sweep.
type SweepPoint struct {
	Threshold   float64
	Extractions int
	Precision   float64
}

// ConfidenceSweep evaluates precision and extraction volume at each
// threshold (Figure 6: "Extraction precision vs number of extractions ...
// at various confidence thresholds"). correct decides whether a fact is
// right; thresholds are evaluated as given.
func ConfidenceSweep(facts []ScoredFact, correct func(Fact) bool, thresholds []float64) []SweepPoint {
	sorted := make([]ScoredFact, len(facts))
	copy(sorted, facts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Confidence > sorted[j].Confidence })
	out := make([]SweepPoint, 0, len(thresholds))
	ts := make([]float64, len(thresholds))
	copy(ts, thresholds)
	sort.Sort(sort.Reverse(sort.Float64Slice(ts)))
	i, tp, n := 0, 0, 0
	for _, th := range ts {
		for i < len(sorted) && sorted[i].Confidence >= th {
			n++
			if correct(sorted[i].Fact) {
				tp++
			}
			i++
		}
		p := 0.0
		if n > 0 {
			p = float64(tp) / float64(n)
		}
		out = append(out, SweepPoint{Threshold: th, Extractions: n, Precision: p})
	}
	// Restore ascending-threshold order for presentation.
	sort.Slice(out, func(a, b int) bool { return out[a].Threshold < out[b].Threshold })
	return out
}

// TopPrediction keeps, for each (page, predicate), only the
// highest-confidence fact — the restriction the paper applies for the
// Table 3 comparison ("we restrict our system to making one prediction per
// predicate per page by selecting the highest-probability extraction").
func TopPrediction(facts []ScoredFact) []Fact {
	type pp struct{ page, pred string }
	best := map[pp]ScoredFact{}
	for _, f := range facts {
		k := pp{f.Page, f.Predicate}
		if cur, ok := best[k]; !ok || f.Confidence > cur.Confidence {
			best[k] = f
		}
	}
	out := make([]Fact, 0, len(best))
	for _, f := range best {
		out = append(out, f.Fact)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

// Threshold filters scored facts at a confidence cutoff.
func Threshold(facts []ScoredFact, min float64) []Fact {
	var out []Fact
	for _, f := range facts {
		if f.Confidence >= min {
			out = append(out, f.Fact)
		}
	}
	return out
}
