package eval

import (
	"math"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestScore(t *testing.T) {
	gold := []Fact{
		{"p1", "director", "Spike Lee"},
		{"p1", "genre", "Comedy"},
		{"p1", "genre", "Drama"},
		{"p2", "director", "Jane Doe"},
	}
	pred := []Fact{
		{"p1", "director", "spike  lee"}, // normalization hit
		{"p1", "genre", "Comedy"},
		{"p1", "genre", "Horror"}, // fp
		// p2 director missed -> fn; Drama missed -> fn
	}
	got := Score(pred, gold)
	if got.TP != 2 || got.FP != 1 || got.FN != 2 {
		t.Fatalf("counts = %+v", got)
	}
	if !approx(got.P, 2.0/3.0) || !approx(got.R, 0.5) {
		t.Errorf("P/R = %v/%v", got.P, got.R)
	}
	wantF1 := 2 * (2.0 / 3.0) * 0.5 / ((2.0 / 3.0) + 0.5)
	if !approx(got.F1, wantF1) {
		t.Errorf("F1 = %v, want %v", got.F1, wantF1)
	}
}

func TestScoreDeduplicates(t *testing.T) {
	gold := []Fact{{"p", "x", "v"}}
	pred := []Fact{{"p", "x", "v"}, {"p", "x", "V"}, {"p", "x", "v "}}
	got := Score(pred, gold)
	if got.TP != 1 || got.FP != 0 {
		t.Errorf("duplicate predictions must collapse: %+v", got)
	}
}

func TestScoreEmpty(t *testing.T) {
	z := Score(nil, nil)
	if z.P != 0 || z.R != 0 || z.F1 != 0 {
		t.Errorf("empty score = %+v", z)
	}
	onlyGold := Score(nil, []Fact{{"p", "x", "v"}})
	if onlyGold.FN != 1 || onlyGold.R != 0 {
		t.Errorf("gold only = %+v", onlyGold)
	}
	onlyPred := Score([]Fact{{"p", "x", "v"}}, nil)
	if onlyPred.FP != 1 || onlyPred.P != 0 {
		t.Errorf("pred only = %+v", onlyPred)
	}
}

func TestScoreByPredicate(t *testing.T) {
	gold := []Fact{
		{"p1", "a", "1"}, {"p1", "b", "2"}, {"p2", "a", "3"},
	}
	pred := []Fact{
		{"p1", "a", "1"}, {"p1", "b", "wrong"}, {"p2", "a", "3"},
	}
	by := ScoreByPredicate(pred, gold)
	if !approx(by["a"].F1, 1) {
		t.Errorf("predicate a F1 = %v", by["a"].F1)
	}
	if by["b"].TP != 0 || by["b"].FP != 1 || by["b"].FN != 1 {
		t.Errorf("predicate b = %+v", by["b"])
	}
	all := by[""]
	if all.TP != 2 || all.FP != 1 || all.FN != 1 {
		t.Errorf("micro average = %+v", all)
	}
}

func TestPageHitScore(t *testing.T) {
	gold := []Fact{
		{"p1", "genre", "Comedy"},
		{"p1", "genre", "Drama"},
		{"p2", "genre", "Action"},
		{"p3", "director", "Someone"},
	}
	pred := []Fact{
		{"p1", "genre", "Drama"},    // hit (any one value suffices)
		{"p2", "genre", "Romance"},  // miss -> fp and fn for (p2,genre)
		{"p4", "director", "Ghost"}, // fp (no gold)
		// (p3,director) unpredicted -> fn
	}
	got := PageHitScore(pred, gold)
	if got.TP != 1 || got.FP != 2 || got.FN != 2 {
		t.Fatalf("counts = %+v", got)
	}
}

func TestPageHitOnePredictionEnough(t *testing.T) {
	gold := []Fact{{"p1", "genre", "Comedy"}, {"p1", "genre", "Drama"}}
	pred := []Fact{{"p1", "genre", "Comedy"}}
	got := PageHitScore(pred, gold)
	if got.TP != 1 || got.FN != 0 || got.FP != 0 {
		t.Errorf("page-hit credit missing: %+v", got)
	}
	if !approx(got.F1, 1) {
		t.Errorf("F1 = %v", got.F1)
	}
}

func TestConfidenceSweep(t *testing.T) {
	facts := []ScoredFact{
		{Fact{"p1", "x", "right"}, 0.95},
		{Fact{"p2", "x", "right"}, 0.85},
		{Fact{"p3", "x", "wrong"}, 0.75},
		{Fact{"p4", "x", "right"}, 0.65},
		{Fact{"p5", "x", "wrong"}, 0.55},
	}
	correct := func(f Fact) bool { return f.Value == "right" }
	pts := ConfidenceSweep(facts, correct, []float64{0.5, 0.7, 0.9})
	if len(pts) != 3 {
		t.Fatalf("want 3 points, got %d", len(pts))
	}
	// Ascending threshold order.
	if pts[0].Threshold != 0.5 || pts[2].Threshold != 0.9 {
		t.Fatalf("threshold order: %+v", pts)
	}
	if pts[2].Extractions != 1 || !approx(pts[2].Precision, 1) {
		t.Errorf("at 0.9: %+v", pts[2])
	}
	if pts[1].Extractions != 3 || !approx(pts[1].Precision, 2.0/3.0) {
		t.Errorf("at 0.7: %+v", pts[1])
	}
	if pts[0].Extractions != 5 || !approx(pts[0].Precision, 3.0/5.0) {
		t.Errorf("at 0.5: %+v", pts[0])
	}
	// Precision non-increasing as threshold drops, as Figure 6 requires.
	for i := 1; i < len(pts); i++ {
		if pts[i-1].Precision > pts[i].Precision+1e-9 {
			t.Errorf("precision should not rise as threshold drops: %+v", pts)
		}
	}
}

func TestTopPrediction(t *testing.T) {
	facts := []ScoredFact{
		{Fact{"p1", "x", "low"}, 0.4},
		{Fact{"p1", "x", "high"}, 0.9},
		{Fact{"p1", "y", "only"}, 0.3},
		{Fact{"p2", "x", "other"}, 0.5},
	}
	top := TopPrediction(facts)
	if len(top) != 3 {
		t.Fatalf("want 3 facts, got %v", top)
	}
	for _, f := range top {
		if f.Page == "p1" && f.Predicate == "x" && f.Value != "high" {
			t.Errorf("kept the wrong prediction: %v", f)
		}
	}
}

func TestThreshold(t *testing.T) {
	facts := []ScoredFact{
		{Fact{"p1", "x", "a"}, 0.8},
		{Fact{"p2", "x", "b"}, 0.3},
	}
	if got := Threshold(facts, 0.5); len(got) != 1 || got[0].Value != "a" {
		t.Errorf("Threshold = %v", got)
	}
	if got := Threshold(facts, 0.9); got != nil {
		t.Errorf("Threshold above all = %v", got)
	}
}
