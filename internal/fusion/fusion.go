// Package fusion aggregates extractions from many sites into fused facts
// with combined confidence — the knowledge-fusion step the paper defers to
// Dong et al. (KDD'14 / PVLDB'14) and suggests for cleaning its
// CommonCrawl harvest ("We leave for future work to investigate how many
// of these aforementioned mistakes can be solved by applying knowledge
// fusion on the extraction results", §5.5.1).
//
// The model is a simplified Knowledge Vault scorer: each source site has a
// reliability prior; repeated observations of the same (subject,
// predicate, object) across sites raise belief via a noisy-or; for
// functional (single-valued) predicates, competing objects split the
// belief mass.
package fusion

import (
	"math"
	"sort"

	"ceres/internal/strmatch"
)

// Observation is one extracted triple from one source.
type Observation struct {
	Source     string // site identifier
	Subject    string
	Predicate  string
	Object     string
	Confidence float64
}

// Fact is a fused triple with combined belief.
type Fact struct {
	Subject   string
	Predicate string
	Object    string
	// Belief in (0,1): the noisy-or combination of per-source evidence.
	Belief float64
	// Sources lists the distinct sites asserting the fact, sorted.
	Sources []string
}

// Options tunes fusion.
type Options struct {
	// SourcePrior is the default reliability of a site (default 0.7).
	SourcePrior float64
	// SourcePriors overrides the prior per site.
	SourcePriors map[string]float64
	// Functional lists predicates that admit a single object per subject;
	// for those, only the highest-belief object survives and its belief
	// is discounted by the runner-up's (a one-step exclusivity
	// correction).
	Functional map[string]bool
}

func (o Options) withDefaults() Options {
	if o.SourcePrior == 0 {
		o.SourcePrior = 0.7
	}
	return o
}

func (o Options) prior(src string) float64 {
	if p, ok := o.SourcePriors[src]; ok {
		return p
	}
	return o.SourcePrior
}

// Fuse aggregates observations into fused facts, sorted by descending
// belief then subject/predicate/object. It is the one-shot form of
// Accumulator: Fuse(obs, opts) equals feeding obs in order to an
// Accumulator and calling Facts.
func Fuse(obs []Observation, opts Options) []Fact {
	a := NewAccumulator(opts)
	for _, ob := range obs {
		a.Add(ob)
	}
	return a.Facts()
}

// key identifies one fused fact: normalized subject/object, exact
// predicate.
type key struct{ s, p, o string }

// acc is the running aggregate of one fact.
type acc struct {
	fact     Fact
	oneMinus float64 // Π (1 - prior·confidence)
	sources  map[string]bool
}

// Accumulator fuses observations one at a time, so a crawl-scale harvest
// can stream its extractions through fusion without ever materializing
// the observation list. Memory is proportional to the number of distinct
// (subject, predicate, object) facts, not to the number of observations.
//
// Add observations in a deterministic order when reproducible output
// matters: belief combines floating-point products, so observation order
// feeds the final bits. Facts does not consume the accumulator — it may
// be called repeatedly, interleaved with further Adds.
type Accumulator struct {
	opts  Options
	accs  map[key]*acc
	order []key // insertion order, for deterministic grouping
}

// NewAccumulator builds an empty accumulator over the fusion options.
func NewAccumulator(opts Options) *Accumulator {
	return &Accumulator{opts: opts.withDefaults(), accs: map[key]*acc{}}
}

// Add folds one observation into the running aggregates. Observations
// with an empty predicate, or whose subject or object normalize to the
// empty string, are ignored (they cannot name a fact).
func (c *Accumulator) Add(ob Observation) {
	k := key{
		strmatch.Normalize(ob.Subject),
		ob.Predicate,
		strmatch.Normalize(ob.Object),
	}
	if k.s == "" || k.o == "" || ob.Predicate == "" {
		return
	}
	a := c.accs[k]
	if a == nil {
		a = &acc{
			fact:     Fact{Subject: ob.Subject, Predicate: ob.Predicate, Object: ob.Object},
			oneMinus: 1,
			sources:  map[string]bool{},
		}
		c.accs[k] = a
		c.order = append(c.order, k)
	}
	ev := c.opts.prior(ob.Source) * clamp01(ob.Confidence)
	a.oneMinus *= 1 - ev
	a.sources[ob.Source] = true
}

// Len returns how many distinct facts have been accumulated.
func (c *Accumulator) Len() int { return len(c.accs) }

// Facts resolves the aggregates into fused facts, sorted by descending
// belief then subject/predicate/object.
func (c *Accumulator) Facts() []Fact {
	// Group facts per (subject, predicate) in first-observation order for
	// functional-predicate resolution.
	type group struct {
		sp    [2]string
		facts []Fact
	}
	groupIdx := map[[2]string]int{}
	var groups []group
	for _, k := range c.order {
		a := c.accs[k]
		f := a.fact
		f.Belief = 1 - a.oneMinus
		f.Sources = make([]string, 0, len(a.sources))
		for s := range a.sources {
			f.Sources = append(f.Sources, s)
		}
		sort.Strings(f.Sources)
		sp := [2]string{k.s, k.p}
		i, ok := groupIdx[sp]
		if !ok {
			i = len(groups)
			groupIdx[sp] = i
			groups = append(groups, group{sp: sp})
		}
		groups[i].facts = append(groups[i].facts, f)
	}

	var out []Fact
	for _, g := range groups {
		if c.opts.Functional[g.sp[1]] && len(g.facts) > 1 {
			sort.Slice(g.facts, func(i, j int) bool {
				if g.facts[i].Belief != g.facts[j].Belief {
					return g.facts[i].Belief > g.facts[j].Belief
				}
				return g.facts[i].Object < g.facts[j].Object
			})
			winner := g.facts[0]
			// Competing evidence discounts the winner.
			winner.Belief = clamp01(winner.Belief * (1 - g.facts[1].Belief/2))
			out = append(out, winner)
			continue
		}
		out = append(out, g.facts...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if math.Abs(a.Belief-b.Belief) > 1e-12 {
			return a.Belief > b.Belief
		}
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		if a.Predicate != b.Predicate {
			return a.Predicate < b.Predicate
		}
		return a.Object < b.Object
	})
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
