// Package fusion aggregates extractions from many sites into fused facts
// with combined confidence — the knowledge-fusion step the paper defers to
// Dong et al. (KDD'14 / PVLDB'14) and suggests for cleaning its
// CommonCrawl harvest ("We leave for future work to investigate how many
// of these aforementioned mistakes can be solved by applying knowledge
// fusion on the extraction results", §5.5.1).
//
// The model is a simplified Knowledge Vault scorer: each source site has a
// reliability prior; repeated observations of the same (subject,
// predicate, object) across sites raise belief via a noisy-or; for
// functional (single-valued) predicates, competing objects split the
// belief mass.
package fusion

import (
	"math"
	"slices"
	"sort"
	"strings"
	"sync"

	"ceres/internal/strmatch"
)

// Observation is one extracted triple from one source.
type Observation struct {
	Source     string // site identifier
	Subject    string
	Predicate  string
	Object     string
	Confidence float64
}

// Fact is a fused triple with combined belief.
type Fact struct {
	Subject   string
	Predicate string
	Object    string
	// Belief in (0,1): the noisy-or combination of per-source evidence.
	Belief float64
	// Sources lists the distinct sites asserting the fact, sorted.
	Sources []string
}

// Options tunes fusion.
type Options struct {
	// SourcePrior is the default reliability of a site (default 0.7).
	SourcePrior float64
	// SourcePriors overrides the prior per site.
	SourcePriors map[string]float64
	// Functional lists predicates that admit a single object per subject;
	// for those, only the highest-belief object survives and its belief
	// is discounted by the runner-up's (a one-step exclusivity
	// correction).
	Functional map[string]bool
}

func (o Options) withDefaults() Options {
	if o.SourcePrior == 0 {
		o.SourcePrior = 0.7
	}
	return o
}

func (o Options) prior(src string) float64 {
	if p, ok := o.SourcePriors[src]; ok {
		return p
	}
	return o.SourcePrior
}

// Fuse aggregates observations into fused facts, sorted by descending
// belief then subject/predicate/object. It is the one-shot form of
// Accumulator: Fuse(obs, opts) equals feeding obs in order to an
// Accumulator and calling Facts.
func Fuse(obs []Observation, opts Options) []Fact {
	a := NewAccumulator(opts)
	for _, ob := range obs {
		a.Add(ob)
	}
	facts := a.Facts()
	a.Release()
	return facts
}

// key identifies one fused fact: normalized subject/object, exact
// predicate.
type key struct{ s, p, o string }

// acc is the running aggregate of one fact.
type acc struct {
	fact     Fact
	oneMinus float64 // Π (1 - prior·confidence)
	// sources holds the distinct sites asserting the fact, in first-seen
	// order. A fact rarely has more than a handful of sources, so a
	// linear-scanned slice beats a per-fact map.
	sources []string
}

// Accumulator fuses observations one at a time, so a crawl-scale harvest
// can stream its extractions through fusion without ever materializing
// the observation list. Memory is proportional to the number of distinct
// (subject, predicate, object) facts, not to the number of observations.
//
// Add observations in a deterministic order when reproducible output
// matters: belief combines floating-point products, so observation order
// feeds the final bits. Facts does not consume the accumulator — it may
// be called repeatedly, interleaved with further Adds.
type Accumulator struct {
	opts Options
	// accs indexes into pool, which stores the aggregates contiguously:
	// one slice growth instead of one allocation per distinct fact.
	accs  map[key]int32
	pool  []acc
	order []key // insertion order, for deterministic grouping
	// norm caches Normalize results keyed by the raw string: harvest
	// observations repeat the same subjects and objects across pages, and
	// normalization (rune folding) dominates Add without it. Memory grows
	// with distinct raw strings — the same order as the fact aggregates.
	norm map[string]string

	// Facts scratch, reused across calls: group index, per-group counts
	// and the grouped-fact arena. Only the returned slice escapes.
	gIdx   map[[2]string]int32
	gOf    []int32
	gCount []int32
	gFacts []Fact
}

// accPool recycles accumulator storage between Release and the next
// NewAccumulator: the maps keep their buckets and the aggregate pool its
// capacity, so a harvest that fuses run after run stops paying the
// grow-from-empty allocations after the first.
var accPool = sync.Pool{New: func() any {
	return &Accumulator{accs: map[key]int32{}, norm: map[string]string{}}
}}

// NewAccumulator builds an empty accumulator over the fusion options.
func NewAccumulator(opts Options) *Accumulator {
	c := accPool.Get().(*Accumulator)
	c.opts = opts.withDefaults()
	return c
}

// Release returns the accumulator's internal storage to a package pool
// for future NewAccumulator calls. Facts it has already resolved remain
// valid — they are copies — but the accumulator itself must not be used
// afterwards. Release is an optimization, never an obligation: an
// unreleased accumulator is ordinary garbage.
func (c *Accumulator) Release() {
	// Drop string references before pooling, but keep each slot's sources
	// capacity — the next run re-fills the same slots and would otherwise
	// re-grow every per-fact slice from nil.
	for i := range c.pool {
		a := &c.pool[i]
		clear(a.sources)
		a.fact = Fact{}
		a.oneMinus = 0
		a.sources = a.sources[:0]
	}
	c.pool = c.pool[:0]
	clear(c.order)
	c.order = c.order[:0]
	clear(c.accs)
	clear(c.gIdx)
	c.gOf = c.gOf[:0]
	c.gCount = c.gCount[:0]
	// The normalize cache survives reuse — Normalize is pure, so stale
	// entries stay correct and a steady-state harvest keeps it warm. Cap
	// it so adversarially distinct strings cannot grow it without bound.
	if len(c.norm) > 1<<16 {
		clear(c.norm)
	}
	c.opts = Options{}
	accPool.Put(c)
}

func (c *Accumulator) normalize(s string) string {
	if n, ok := c.norm[s]; ok {
		return n
	}
	n := strmatch.Normalize(s)
	c.norm[s] = n
	return n
}

// Add folds one observation into the running aggregates. Observations
// with an empty predicate, or whose subject or object normalize to the
// empty string, are ignored (they cannot name a fact).
func (c *Accumulator) Add(ob Observation) {
	k := key{
		c.normalize(ob.Subject),
		ob.Predicate,
		c.normalize(ob.Object),
	}
	if k.s == "" || k.o == "" || ob.Predicate == "" {
		return
	}
	i, ok := c.accs[k]
	if !ok {
		i = int32(len(c.pool))
		if len(c.pool) < cap(c.pool) {
			// Reuse the released slot in place: an append with a fresh
			// literal would wipe the sources capacity Release preserved.
			c.pool = c.pool[:i+1]
			a := &c.pool[i]
			a.fact = Fact{Subject: ob.Subject, Predicate: ob.Predicate, Object: ob.Object}
			a.oneMinus = 1
		} else {
			c.pool = append(c.pool, acc{
				fact:     Fact{Subject: ob.Subject, Predicate: ob.Predicate, Object: ob.Object},
				oneMinus: 1,
			})
		}
		c.accs[k] = i
		c.order = append(c.order, k)
	}
	a := &c.pool[i]
	ev := c.opts.prior(ob.Source) * clamp01(ob.Confidence)
	a.oneMinus *= 1 - ev
	for _, s := range a.sources {
		if s == ob.Source {
			return
		}
	}
	a.sources = append(a.sources, ob.Source)
}

// Len returns how many distinct facts have been accumulated.
func (c *Accumulator) Len() int { return len(c.accs) }

// Facts resolves the aggregates into fused facts, sorted by descending
// belief then subject/predicate/object.
func (c *Accumulator) Facts() []Fact {
	if len(c.order) == 0 {
		return nil // preserve nil-vs-empty for callers that serialize
	}
	// Group facts per (subject, predicate) in first-observation order for
	// functional-predicate resolution. The grouping scratch (index map,
	// ordinals, counts, grouped arena) lives on the accumulator and is
	// reused call to call; only the returned slice escapes.
	if c.gIdx == nil {
		c.gIdx = make(map[[2]string]int32, len(c.order))
	} else {
		clear(c.gIdx)
	}
	c.gOf = c.gOf[:0]
	c.gCount = c.gCount[:0]
	for _, k := range c.order {
		sp := [2]string{k.s, k.p}
		gi, ok := c.gIdx[sp]
		if !ok {
			gi = int32(len(c.gCount))
			c.gIdx[sp] = gi
			c.gCount = append(c.gCount, 0)
		}
		c.gOf = append(c.gOf, gi)
		c.gCount[gi]++
	}
	// Prefix-sum the counts into write cursors, then scatter the facts
	// into one group-major arena.
	if cap(c.gFacts) < len(c.order) {
		c.gFacts = make([]Fact, len(c.order))
	}
	gFacts := c.gFacts[:len(c.order)]
	off := int32(0)
	for gi, n := range c.gCount {
		c.gCount[gi] = off
		off += n
	}
	// One arena for every fact's Sources copy instead of a slice per
	// fact; three-index subslices keep the copies independent.
	total := 0
	for _, k := range c.order {
		total += len(c.pool[c.accs[k]].sources)
	}
	srcArena := make([]string, 0, total)
	for oi, k := range c.order {
		a := &c.pool[c.accs[k]]
		f := a.fact
		f.Belief = 1 - a.oneMinus
		start := len(srcArena)
		srcArena = append(srcArena, a.sources...)
		f.Sources = srcArena[start:len(srcArena):len(srcArena)]
		sort.Strings(f.Sources)
		gi := c.gOf[oi]
		gFacts[c.gCount[gi]] = f
		c.gCount[gi]++
	}

	out := make([]Fact, 0, len(c.order))
	start := 0
	for _, end := range c.gCount {
		g := gFacts[start:end]
		start = int(end)
		if len(g) > 1 && c.opts.Functional[g[0].Predicate] {
			slices.SortFunc(g, func(a, b Fact) int {
				switch {
				case a.Belief > b.Belief:
					return -1
				case a.Belief < b.Belief:
					return 1
				}
				return strings.Compare(a.Object, b.Object)
			})
			winner := g[0]
			// Competing evidence discounts the winner.
			winner.Belief = clamp01(winner.Belief * (1 - g[1].Belief/2))
			out = append(out, winner)
			continue
		}
		out = append(out, g...)
	}
	// Drop string references from the scratch arena so pooled reuse does
	// not pin page text.
	clear(gFacts)
	slices.SortFunc(out, func(a, b Fact) int {
		if math.Abs(a.Belief-b.Belief) > 1e-12 {
			if a.Belief > b.Belief {
				return -1
			}
			return 1
		}
		if c := strings.Compare(a.Subject, b.Subject); c != 0 {
			return c
		}
		if c := strings.Compare(a.Predicate, b.Predicate); c != 0 {
			return c
		}
		return strings.Compare(a.Object, b.Object)
	})
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
