// Package fusion aggregates extractions from many sites into fused facts
// with combined confidence — the knowledge-fusion step the paper defers to
// Dong et al. (KDD'14 / PVLDB'14) and suggests for cleaning its
// CommonCrawl harvest ("We leave for future work to investigate how many
// of these aforementioned mistakes can be solved by applying knowledge
// fusion on the extraction results", §5.5.1).
//
// The model is a simplified Knowledge Vault scorer: each source site has a
// reliability prior; repeated observations of the same (subject,
// predicate, object) across sites raise belief via a noisy-or; for
// functional (single-valued) predicates, competing objects split the
// belief mass.
package fusion

import (
	"math"
	"sort"

	"ceres/internal/strmatch"
)

// Observation is one extracted triple from one source.
type Observation struct {
	Source     string // site identifier
	Subject    string
	Predicate  string
	Object     string
	Confidence float64
}

// Fact is a fused triple with combined belief.
type Fact struct {
	Subject   string
	Predicate string
	Object    string
	// Belief in (0,1): the noisy-or combination of per-source evidence.
	Belief float64
	// Sources lists the distinct sites asserting the fact, sorted.
	Sources []string
}

// Options tunes fusion.
type Options struct {
	// SourcePrior is the default reliability of a site (default 0.7).
	SourcePrior float64
	// SourcePriors overrides the prior per site.
	SourcePriors map[string]float64
	// Functional lists predicates that admit a single object per subject;
	// for those, only the highest-belief object survives and its belief
	// is discounted by the runner-up's (a one-step exclusivity
	// correction).
	Functional map[string]bool
}

func (o Options) withDefaults() Options {
	if o.SourcePrior == 0 {
		o.SourcePrior = 0.7
	}
	return o
}

func (o Options) prior(src string) float64 {
	if p, ok := o.SourcePriors[src]; ok {
		return p
	}
	return o.SourcePrior
}

// Fuse aggregates observations into fused facts, sorted by descending
// belief then subject/predicate/object.
func Fuse(obs []Observation, opts Options) []Fact {
	opts = opts.withDefaults()
	type key struct{ s, p, o string }
	type acc struct {
		fact     Fact
		oneMinus float64 // Π (1 - prior·confidence)
		sources  map[string]bool
	}
	accs := map[key]*acc{}
	for _, ob := range obs {
		k := key{
			strmatch.Normalize(ob.Subject),
			ob.Predicate,
			strmatch.Normalize(ob.Object),
		}
		if k.s == "" || k.o == "" || ob.Predicate == "" {
			continue
		}
		a := accs[k]
		if a == nil {
			a = &acc{
				fact:     Fact{Subject: ob.Subject, Predicate: ob.Predicate, Object: ob.Object},
				oneMinus: 1,
				sources:  map[string]bool{},
			}
			accs[k] = a
		}
		ev := opts.prior(ob.Source) * clamp01(ob.Confidence)
		a.oneMinus *= 1 - ev
		a.sources[ob.Source] = true
	}

	// Collect and resolve functional predicates per (subject, predicate).
	bySubjPred := map[[2]string][]*acc{}
	for k, a := range accs {
		a.fact.Belief = 1 - a.oneMinus
		for s := range a.sources {
			a.fact.Sources = append(a.fact.Sources, s)
		}
		sort.Strings(a.fact.Sources)
		bySubjPred[[2]string{k.s, k.p}] = append(bySubjPred[[2]string{k.s, k.p}], a)
	}

	var out []Fact
	for sp, group := range bySubjPred {
		if opts.Functional[sp[1]] && len(group) > 1 {
			sort.Slice(group, func(i, j int) bool {
				if group[i].fact.Belief != group[j].fact.Belief {
					return group[i].fact.Belief > group[j].fact.Belief
				}
				return group[i].fact.Object < group[j].fact.Object
			})
			winner := group[0].fact
			// Competing evidence discounts the winner.
			winner.Belief = clamp01(winner.Belief * (1 - group[1].fact.Belief/2))
			out = append(out, winner)
			continue
		}
		for _, a := range group {
			out = append(out, a.fact)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if math.Abs(a.Belief-b.Belief) > 1e-12 {
			return a.Belief > b.Belief
		}
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		if a.Predicate != b.Predicate {
			return a.Predicate < b.Predicate
		}
		return a.Object < b.Object
	})
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
