package fusion

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFuseCorroboration(t *testing.T) {
	obs := []Observation{
		{Source: "a", Subject: "Film X", Predicate: "director", Object: "Jane Doe", Confidence: 0.8},
		{Source: "b", Subject: "film x", Predicate: "director", Object: "Jane  Doe", Confidence: 0.8},
		{Source: "c", Subject: "Other Film", Predicate: "director", Object: "Someone", Confidence: 0.8},
	}
	facts := Fuse(obs, Options{})
	if len(facts) != 2 {
		t.Fatalf("want 2 fused facts, got %v", facts)
	}
	// Two corroborating sources beat one.
	if facts[0].Subject != "Film X" || len(facts[0].Sources) != 2 {
		t.Errorf("corroborated fact should rank first: %+v", facts[0])
	}
	if facts[0].Belief <= facts[1].Belief {
		t.Errorf("corroboration must raise belief: %v vs %v", facts[0].Belief, facts[1].Belief)
	}
	// Noisy-or with prior 0.7 and conf 0.8: 1-(1-0.56)^2 = 0.8064.
	if math.Abs(facts[0].Belief-0.8064) > 1e-9 {
		t.Errorf("belief = %v, want 0.8064", facts[0].Belief)
	}
}

func TestFuseFunctionalPredicate(t *testing.T) {
	obs := []Observation{
		{Source: "a", Subject: "X", Predicate: "birthYear", Object: "1960", Confidence: 0.9},
		{Source: "b", Subject: "X", Predicate: "birthYear", Object: "1960", Confidence: 0.9},
		{Source: "c", Subject: "X", Predicate: "birthYear", Object: "1961", Confidence: 0.6},
	}
	facts := Fuse(obs, Options{Functional: map[string]bool{"birthYear": true}})
	if len(facts) != 1 {
		t.Fatalf("functional predicate must keep one object: %v", facts)
	}
	if facts[0].Object != "1960" {
		t.Errorf("majority object lost: %+v", facts[0])
	}
	// The competing observation discounts belief below the raw noisy-or.
	raw := 1 - (1-0.63)*(1-0.63)
	if facts[0].Belief >= raw {
		t.Errorf("competition should discount: %v >= %v", facts[0].Belief, raw)
	}
}

func TestFuseSourcePriors(t *testing.T) {
	obs := []Observation{
		{Source: "trusted", Subject: "X", Predicate: "p", Object: "v1", Confidence: 0.9},
		{Source: "spam", Subject: "X", Predicate: "p", Object: "v2", Confidence: 0.9},
	}
	facts := Fuse(obs, Options{SourcePriors: map[string]float64{"trusted": 0.95, "spam": 0.1}})
	if facts[0].Object != "v1" {
		t.Errorf("trusted source should win: %+v", facts)
	}
}

func TestFuseIgnoresEmpty(t *testing.T) {
	obs := []Observation{
		{Source: "a", Subject: "  ", Predicate: "p", Object: "v", Confidence: 1},
		{Source: "a", Subject: "s", Predicate: "", Object: "v", Confidence: 1},
		{Source: "a", Subject: "s", Predicate: "p", Object: "!!", Confidence: 1},
	}
	if got := Fuse(obs, Options{}); len(got) != 0 {
		t.Errorf("degenerate observations fused: %v", got)
	}
}

func TestFuseBeliefBounds(t *testing.T) {
	f := func(confs []float64) bool {
		var obs []Observation
		for i, c := range confs {
			obs = append(obs, Observation{
				Source: string(rune('a' + i%5)), Subject: "s", Predicate: "p",
				Object: "o", Confidence: math.Mod(math.Abs(c), 1),
			})
		}
		for _, fact := range Fuse(obs, Options{}) {
			if fact.Belief < 0 || fact.Belief >= 1.0000001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFuseMonotoneInSources(t *testing.T) {
	base := []Observation{{Source: "a", Subject: "s", Predicate: "p", Object: "o", Confidence: 0.5}}
	b1 := Fuse(base, Options{})[0].Belief
	more := append(base, Observation{Source: "b", Subject: "s", Predicate: "p", Object: "o", Confidence: 0.5})
	b2 := Fuse(more, Options{})[0].Belief
	if b2 <= b1 {
		t.Errorf("extra evidence must raise belief: %v -> %v", b1, b2)
	}
}

func TestFuseDeterministicOrder(t *testing.T) {
	obs := []Observation{
		{Source: "a", Subject: "s1", Predicate: "p", Object: "o1", Confidence: 0.5},
		{Source: "a", Subject: "s2", Predicate: "p", Object: "o2", Confidence: 0.5},
		{Source: "a", Subject: "s0", Predicate: "p", Object: "o0", Confidence: 0.5},
	}
	a := Fuse(obs, Options{})
	b := Fuse(obs, Options{})
	for i := range a {
		if a[i].Subject != b[i].Subject {
			t.Fatalf("nondeterministic order")
		}
	}
	// Equal beliefs: sorted by subject.
	if a[0].Subject != "s0" || a[2].Subject != "s2" {
		t.Errorf("tie-break order wrong: %v", a)
	}
}
