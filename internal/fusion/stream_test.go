package fusion

import (
	"bytes"
	"encoding/json"
	"math"
	"sort"
	"testing"

	"ceres/internal/strmatch"
)

// fuseLegacy is the pre-Accumulator Fuse, kept verbatim as the reference
// for the differential test: the streaming path must keep its output
// byte-identical.
func fuseLegacy(obs []Observation, opts Options) []Fact {
	opts = opts.withDefaults()
	type key struct{ s, p, o string }
	type acc struct {
		fact     Fact
		oneMinus float64
		sources  map[string]bool
	}
	accs := map[key]*acc{}
	for _, ob := range obs {
		k := key{
			strmatch.Normalize(ob.Subject),
			ob.Predicate,
			strmatch.Normalize(ob.Object),
		}
		if k.s == "" || k.o == "" || ob.Predicate == "" {
			continue
		}
		a := accs[k]
		if a == nil {
			a = &acc{
				fact:     Fact{Subject: ob.Subject, Predicate: ob.Predicate, Object: ob.Object},
				oneMinus: 1,
				sources:  map[string]bool{},
			}
			accs[k] = a
		}
		ev := opts.prior(ob.Source) * clamp01(ob.Confidence)
		a.oneMinus *= 1 - ev
		a.sources[ob.Source] = true
	}
	bySubjPred := map[[2]string][]*acc{}
	for k, a := range accs {
		a.fact.Belief = 1 - a.oneMinus
		for s := range a.sources {
			a.fact.Sources = append(a.fact.Sources, s)
		}
		sort.Strings(a.fact.Sources)
		bySubjPred[[2]string{k.s, k.p}] = append(bySubjPred[[2]string{k.s, k.p}], a)
	}
	var out []Fact
	for sp, group := range bySubjPred {
		if opts.Functional[sp[1]] && len(group) > 1 {
			sort.Slice(group, func(i, j int) bool {
				if group[i].fact.Belief != group[j].fact.Belief {
					return group[i].fact.Belief > group[j].fact.Belief
				}
				return group[i].fact.Object < group[j].fact.Object
			})
			winner := group[0].fact
			winner.Belief = clamp01(winner.Belief * (1 - group[1].fact.Belief/2))
			out = append(out, winner)
			continue
		}
		for _, a := range group {
			out = append(out, a.fact)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if math.Abs(a.Belief-b.Belief) > 1e-12 {
			return a.Belief > b.Belief
		}
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		if a.Predicate != b.Predicate {
			return a.Predicate < b.Predicate
		}
		return a.Object < b.Object
	})
	return out
}

// diffObservations exercises corroboration, repetition, functional
// conflicts, per-source priors, normalization folding and discardable
// observations at once. Confidence values come from a coarse grid so
// distinct facts never land within the 1e-12 ordering epsilon of each
// other unless they are exactly tied (exact ties break on the
// subject/predicate/object key, which is order-independent).
func diffObservations() []Observation {
	var obs []Observation
	sites := []string{"alpha.example", "beta.example", "gamma.example", "delta.example"}
	subjects := []string{"The Harbor", "Night Train", "Falling Leaves", "Red Canyon"}
	confs := []float64{0.55, 0.65, 0.8, 0.9}
	for i, subj := range subjects {
		for j, site := range sites {
			obs = append(obs,
				Observation{Source: site, Subject: subj, Predicate: "directedBy", Object: "Jane Doe", Confidence: confs[(i+j)%len(confs)]},
				Observation{Source: site, Subject: subj, Predicate: "genre", Object: []string{"Drama", "Comedy"}[j%2], Confidence: confs[j%len(confs)]},
			)
			if j%2 == 0 {
				// Functional conflicts: two release years competing.
				obs = append(obs, Observation{Source: site, Subject: subj, Predicate: "releaseYear", Object: []string{"1987", "1988"}[i%2], Confidence: confs[i%len(confs)]})
			}
		}
		// Normalization folding: surface variants of one fact.
		obs = append(obs,
			Observation{Source: "alpha.example", Subject: "  " + subj + "  ", Predicate: "directedBy", Object: "JANE  DOE", Confidence: 0.7},
			// Discardable: empty object / predicate.
			Observation{Source: "beta.example", Subject: subj, Predicate: "genre", Object: "   ", Confidence: 0.9},
			Observation{Source: "beta.example", Subject: subj, Predicate: "", Object: "x", Confidence: 0.9},
		)
	}
	return obs
}

func factBytes(t *testing.T, facts []Fact) []byte {
	t.Helper()
	b, err := json.Marshal(facts)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFuseMatchesLegacy proves the Accumulator-backed Fuse keeps the
// legacy output byte-identical (beliefs to the last bit, order, sources).
func TestFuseMatchesLegacy(t *testing.T) {
	obs := diffObservations()
	opts := Options{
		SourcePriors: map[string]float64{"alpha.example": 0.9, "delta.example": 0.4},
		Functional:   map[string]bool{"releaseYear": true, "directedBy": true},
	}
	got := factBytes(t, Fuse(obs, opts))
	want := factBytes(t, fuseLegacy(obs, opts))
	if !bytes.Equal(got, want) {
		t.Fatalf("streaming Fuse diverged from legacy:\n got %s\nwant %s", got, want)
	}
}

// TestAccumulatorStreams proves feeding observations one at a time equals
// the one-shot Fuse, and that Facts is repeatable and interleavable.
func TestAccumulatorStreams(t *testing.T) {
	obs := diffObservations()
	opts := Options{Functional: map[string]bool{"releaseYear": true}}
	want := factBytes(t, Fuse(obs, opts))

	a := NewAccumulator(opts)
	for i, ob := range obs {
		a.Add(ob)
		if i == len(obs)/2 {
			// Facts mid-stream must not consume or corrupt the aggregates.
			_ = a.Facts()
		}
	}
	if got := factBytes(t, a.Facts()); !bytes.Equal(got, want) {
		t.Fatalf("accumulator diverged from Fuse:\n got %s\nwant %s", got, want)
	}
	if got := factBytes(t, a.Facts()); !bytes.Equal(got, want) {
		t.Fatalf("second Facts call diverged")
	}
}

func TestAccumulatorLen(t *testing.T) {
	a := NewAccumulator(Options{})
	a.Add(Observation{Source: "s", Subject: "X", Predicate: "p", Object: "v", Confidence: 0.9})
	a.Add(Observation{Source: "t", Subject: "x", Predicate: "p", Object: "V", Confidence: 0.9}) // folds
	a.Add(Observation{Source: "s", Subject: "X", Predicate: "p", Object: "w", Confidence: 0.9})
	a.Add(Observation{Source: "s", Subject: "", Predicate: "p", Object: "w", Confidence: 0.9}) // discarded
	if a.Len() != 2 {
		t.Fatalf("Len = %d, want 2", a.Len())
	}
}
