// Package kb implements the seed knowledge base CERES aligns against
// webpages (paper §2.1): a triple store over an ontology of typed
// predicates, with the name/alias indexes used for entity identification
// (§3.1.1 step 1), the per-subject object sets used for topic scoring
// (§3.1.1 step 2), and the frequent-object statistics used by the
// uniqueness filter.
package kb

import (
	"fmt"
	"sort"
)

// Predicate describes one relation of the ontology.
type Predicate struct {
	// Name is the relation identifier, e.g. "film.wasDirectedBy.person".
	Name string
	// Domain is the entity type of valid subjects.
	Domain string
	// Range is the entity type of valid objects, or "" when objects are
	// literals (dates, phone numbers, ISBNs, ...).
	Range string
	// MultiValued records whether one subject may hold many objects
	// (e.g. cast members) rather than a unique value (e.g. birth date).
	MultiValued bool
}

// Ontology is the set of predicates extraction is restricted to (§2.1:
// "We consider only predicates in the ontology, for which we can obtain
// training data from K").
type Ontology struct {
	preds map[string]Predicate
	order []string
}

// NewOntology builds an ontology from a list of predicates.
func NewOntology(preds ...Predicate) *Ontology {
	o := &Ontology{preds: make(map[string]Predicate, len(preds))}
	for _, p := range preds {
		o.Add(p)
	}
	return o
}

// Add inserts or replaces a predicate definition.
func (o *Ontology) Add(p Predicate) {
	if _, exists := o.preds[p.Name]; !exists {
		o.order = append(o.order, p.Name)
	}
	o.preds[p.Name] = p
}

// Predicate returns the named predicate definition.
func (o *Ontology) Predicate(name string) (Predicate, bool) {
	p, ok := o.preds[name]
	return p, ok
}

// Has reports whether the ontology defines the named predicate.
func (o *Ontology) Has(name string) bool {
	_, ok := o.preds[name]
	return ok
}

// Names returns predicate names in insertion order.
func (o *Ontology) Names() []string {
	out := make([]string, len(o.order))
	copy(out, o.order)
	return out
}

// Len returns the number of predicates.
func (o *Ontology) Len() int { return len(o.order) }

// PredicatesForDomain returns the names of predicates whose Domain is the
// given entity type, sorted.
func (o *Ontology) PredicatesForDomain(entityType string) []string {
	var out []string
	for name, p := range o.preds {
		if p.Domain == entityType {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Validate checks a triple's predicate against the ontology, returning an
// error for unknown predicates.
func (o *Ontology) Validate(pred string) error {
	if !o.Has(pred) {
		return fmt.Errorf("kb: predicate %q not in ontology", pred)
	}
	return nil
}
