package kb

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
)

// TestIndexItemOrder: ItemID order must coincide with Object.Key() string
// order — entities sorted by ID first, then literals sorted by norm — so
// the core package can substitute ItemID comparisons for key comparisons.
func TestIndexItemOrder(t *testing.T) {
	ix := sampleKB(t).BuildIndex()
	var keys []string
	for it := 0; it < ix.NumItems(); it++ {
		keys = append(keys, ix.Key(ItemID(it)))
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("ItemID order does not follow key order: %v", keys)
	}
	if ix.NumItems() != 4+4 { // 4 entities + literals comedy/drama/1989 + f1-as-lit? no: comedy, drama, 1989
		// 4 entities, 3 distinct literal norms.
		if ix.NumItems() != 7 {
			t.Fatalf("NumItems = %d, want 7", ix.NumItems())
		}
	}
}

// TestIndexCandidatesMatchLegacyMatchItems: AppendCandidates must produce
// exactly KB.MatchItems, item for item, in key order.
func TestIndexCandidatesMatchLegacyMatchItems(t *testing.T) {
	k := sampleKB(t)
	ix := k.BuildIndex()
	texts := []string{
		"Spike Lee", "Lee, Spike", "lee spike", "SPIKE  LEE!", "Comedy",
		"comedy", "Do the Right Thing", "Crooklyn", "1989", "Drama",
		"Danny Aiello", "Nobody Here", "", "   ", "Aiello Danny",
	}
	for _, text := range texts {
		want := k.MatchItems(text)
		var got []string
		for _, it := range ix.AppendCandidates(nil, NewFieldKey(text)) {
			got = append(got, ix.Key(it))
		}
		// MatchItems emits entities sorted then the literal; candidate
		// order is ItemID order, which sorts identically.
		sort.Strings(want)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("candidates(%q) = %v, want %v", text, got, want)
		}
	}
}

// TestIndexMatchesAgreesWithMatchesObject sweeps every (text, object) pair
// of a KB with aliases, fuzzy-distance names, and shared literals.
func TestIndexMatchesAgreesWithMatchesObject(t *testing.T) {
	k := New(movieOntology())
	ents := []Entity{
		{ID: "f1", Type: "film", Name: "The Shawshank Redemption"},
		{ID: "f2", Type: "film", Name: "Do the Right Thing"},
		{ID: "p1", Type: "person", Name: "Spike Lee", Aliases: []string{"Lee, Spike", "S. Lee"}},
		{ID: "p2", Type: "person", Name: "Frank Welker"},
		{ID: "p3", Type: "person", Name: ""},
	}
	for _, e := range ents {
		if err := k.AddEntity(e); err != nil {
			t.Fatal(err)
		}
	}
	for _, tr := range []Triple{
		{Subject: "f1", Predicate: "directedBy", Object: EntityObject("p1")},
		{Subject: "f1", Predicate: "hasGenre", Object: LiteralObject("Prison Drama")},
		{Subject: "f2", Predicate: "hasCastMember", Object: EntityObject("p2")},
		{Subject: "f2", Predicate: "releaseYear", Object: LiteralObject("1989")},
	} {
		if err := k.AddTriple(tr); err != nil {
			t.Fatal(err)
		}
	}
	ix := k.BuildIndex()
	texts := []string{
		"Spike Lee", "Lee Spike", "spike  lee", "S Lee", "Frank Welker",
		"Frank Welkes", "The Shawshank Redemptian", "the shawshank redemption",
		"Do the Wrong Thing", "prison drama", "Prison Dramas", "1989", "",
		"xyz", "Drama Prison", "welker frank",
	}
	objects := []Object{
		EntityObject("f1"), EntityObject("f2"), EntityObject("p1"),
		EntityObject("p2"), EntityObject("p3"),
		LiteralObject("Prison Drama"), LiteralObject("1989"),
	}
	for _, text := range texts {
		key := NewFieldKey(text)
		for _, o := range objects {
			it, ok := ix.objectItem(o)
			if !ok {
				t.Fatalf("objectItem(%v) missing", o)
			}
			want := k.MatchesObject(text, o)
			if got := ix.Matches(key, it); got != want {
				t.Errorf("Matches(%q, %s) = %v, MatchesObject = %v", text, ix.Key(it), got, want)
			}
		}
	}
}

// TestIndexObjectItemsMatchObjectKeys: the sorted object slice must carry
// the same identities as the legacy map form.
func TestIndexObjectItemsMatchObjectKeys(t *testing.T) {
	k := sampleKB(t)
	ix := k.BuildIndex()
	for _, id := range k.EntityIDs() {
		it, ok := ix.EntityItem(id)
		if !ok {
			t.Fatalf("EntityItem(%q) missing", id)
		}
		want := k.ObjectKeys(id)
		items := ix.ObjectItems(it)
		if len(items) != len(want) {
			t.Fatalf("ObjectItems(%s): %d items, want %d", id, len(items), len(want))
		}
		for i, o := range items {
			if !want[ix.Key(o)] {
				t.Errorf("ObjectItems(%s) has unexpected %s", id, ix.Key(o))
			}
			if i > 0 && items[i-1] >= o {
				t.Errorf("ObjectItems(%s) not sorted/unique", id)
			}
		}
	}
}

// TestIndexRelationsDedup: duplicate (pred, object) pairs collapse to the
// first occurrence, in insertion order, like Algorithm 2's per-page skip.
func TestIndexRelationsDedup(t *testing.T) {
	k := sampleKB(t)
	// Add a duplicate of an existing triple and a case-variant literal that
	// normalizes to the same item.
	for _, tr := range []Triple{
		{Subject: "f1", Predicate: "directedBy", Object: EntityObject("p1")},
		{Subject: "f1", Predicate: "hasGenre", Object: LiteralObject("COMEDY!")},
	} {
		if err := k.AddTriple(tr); err != nil {
			t.Fatal(err)
		}
	}
	ix := k.BuildIndex()
	f1, _ := ix.EntityItem("f1")
	rels := ix.Relations(f1)
	seen := map[string]bool{}
	for _, r := range rels {
		key := r.Pred + "\x00" + ix.Key(r.Obj)
		if seen[key] {
			t.Fatalf("duplicate relation %s %s", r.Pred, ix.Key(r.Obj))
		}
		seen[key] = true
	}
	// f1 has 6 distinct (pred, obj) pairs.
	if len(rels) != 6 {
		t.Fatalf("Relations(f1) = %d pairs, want 6", len(rels))
	}
	// ObjectCount still counts duplicates (it feeds the frequency filter).
	comedy, ok := ix.objectItem(LiteralObject("Comedy"))
	if !ok || ix.ObjectCount(comedy) != 3 {
		t.Fatalf("ObjectCount(lit:comedy) = %d, want 3", ix.ObjectCount(comedy))
	}
}

// TestBuildIndexCachesAndInvalidates: repeated builds return the same
// frozen index until a mutation invalidates it.
func TestBuildIndexCachesAndInvalidates(t *testing.T) {
	k := sampleKB(t)
	a, b := k.BuildIndex(), k.BuildIndex()
	if a != b {
		t.Fatal("BuildIndex should cache between mutations")
	}
	if err := k.AddEntity(Entity{ID: "p9", Type: "person", Name: "New Person"}); err != nil {
		t.Fatal(err)
	}
	c := k.BuildIndex()
	if c == a {
		t.Fatal("AddEntity should invalidate the cached index")
	}
	if _, ok := c.EntityItem("p9"); !ok {
		t.Fatal("rebuilt index missing new entity")
	}
	if err := k.AddTriple(Triple{Subject: "p9", Predicate: "actedIn", Object: EntityObject("f1")}); err != nil {
		t.Fatal(err)
	}
	if k.BuildIndex() == c {
		t.Fatal("AddTriple should invalidate the cached index")
	}
}

// TestIndexEmptyKB: an empty KB indexes to zero items without panicking.
func TestIndexEmptyKB(t *testing.T) {
	ix := New(movieOntology()).BuildIndex()
	if ix.NumItems() != 0 || ix.NumTriples() != 0 {
		t.Fatalf("empty KB: %d items, %d triples", ix.NumItems(), ix.NumTriples())
	}
	if got := ix.AppendCandidates(nil, NewFieldKey("anything")); len(got) != 0 {
		t.Fatalf("candidates on empty KB: %v", got)
	}
}

// TestLookupEntitiesAllocs: the exact-match-only short circuit must not
// sort, dedup, or copy. Two allocations cover the normalized string and
// (for multi-token text) its token key.
func TestLookupEntitiesAllocs(t *testing.T) {
	k := sampleKB(t)
	for _, tc := range []struct {
		text string
		max  float64
	}{
		{"Do the Right Thing", 1}, // single exact hit, multi-token
		{"Crooklyn", 1},           // single exact hit, single token
		{"Nobody", 1},             // miss, single token
	} {
		allocs := testing.AllocsPerRun(200, func() {
			k.LookupEntities(tc.text)
		})
		if allocs > tc.max {
			t.Errorf("LookupEntities(%q) allocates %.1f/run, want <= %.0f", tc.text, allocs, tc.max)
		}
	}
}

// TestLookupEntitiesMultiHit: the sort/dedup path still runs when several
// entities share a name or token key.
func TestLookupEntitiesMultiHit(t *testing.T) {
	k := New(movieOntology())
	for _, e := range []Entity{
		{ID: "z1", Type: "person", Name: "John Smith"},
		{ID: "a1", Type: "person", Name: "John Smith"},
		{ID: "m1", Type: "person", Name: "Smith, John"},
	} {
		if err := k.AddEntity(e); err != nil {
			t.Fatal(err)
		}
	}
	// "john smith" hits z1/a1 exactly and m1 through the token index.
	got := k.LookupEntities("John Smith")
	want := []string{"a1", "m1", "z1"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("LookupEntities = %v, want %v", got, want)
	}
	// Exact-only multi-hit (no token-index entry) must come back sorted.
	k2 := New(movieOntology())
	for _, e := range []Entity{
		{ID: "z1", Type: "person", Name: "John Smith"},
		{ID: "a1", Type: "person", Name: "John Smith"},
	} {
		if err := k2.AddEntity(e); err != nil {
			t.Fatal(err)
		}
	}
	if got := k2.LookupEntities("John Smith"); !reflect.DeepEqual(got, []string{"a1", "z1"}) {
		t.Fatalf("exact-only multi-hit = %v, want [a1 z1]", got)
	}
}

// FieldKey candidate generation must stay allocation-free when appending
// into a pre-grown buffer.
func TestAppendCandidatesAllocs(t *testing.T) {
	ix := sampleKB(t).BuildIndex()
	key := NewFieldKey("Spike Lee")
	buf := make([]ItemID, 0, 16)
	allocs := testing.AllocsPerRun(200, func() {
		buf = ix.AppendCandidates(buf[:0], key)
	})
	if allocs != 0 {
		t.Errorf("AppendCandidates allocates %.1f/run, want 0", allocs)
	}
	if len(buf) != 1 {
		t.Fatalf("candidates = %d, want 1", len(buf))
	}
}

func ExampleIndex() {
	k := New(NewOntology(Predicate{Name: "directedBy", Domain: "film", Range: "person"}))
	k.AddEntity(Entity{ID: "f1", Type: "film", Name: "Do the Right Thing"})
	k.AddEntity(Entity{ID: "p1", Type: "person", Name: "Spike Lee", Aliases: []string{"Lee, Spike"}})
	k.AddTriple(Triple{Subject: "f1", Predicate: "directedBy", Object: EntityObject("p1")})
	ix := k.BuildIndex()
	key := NewFieldKey("LEE, Spike")
	for _, it := range ix.AppendCandidates(nil, key) {
		fmt.Println(ix.Key(it))
	}
	// Output: e:p1
}
