package kb

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// The on-disk format is line-oriented TSV, one record per line:
//
//	E <tab> id <tab> type <tab> name <tab> alias1|alias2|...
//	T <tab> subject <tab> predicate <tab> e:<entityID> | l:<literal>
//	P <tab> name <tab> domain <tab> range <tab> multi|single
//
// Predicates must precede triples that use them; entities must precede
// triples that reference them.

// Write serializes the KB (ontology, entities, triples) to w.
func (k *KB) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, name := range k.ontology.Names() {
		p, _ := k.ontology.Predicate(name)
		card := "single"
		if p.MultiValued {
			card = "multi"
		}
		fmt.Fprintf(bw, "P\t%s\t%s\t%s\t%s\n", p.Name, p.Domain, p.Range, card)
	}
	for _, id := range k.EntityIDs() {
		e := k.entities[id]
		fmt.Fprintf(bw, "E\t%s\t%s\t%s\t%s\n", e.ID, e.Type, escapeField(e.Name), escapeField(strings.Join(e.Aliases, "|")))
	}
	for _, t := range k.triples {
		obj := "l:" + escapeField(t.Object.Literal)
		if t.Object.IsEntity() {
			obj = "e:" + t.Object.EntityID
		}
		fmt.Fprintf(bw, "T\t%s\t%s\t%s\n", t.Subject, t.Predicate, obj)
	}
	return bw.Flush()
}

// Read parses the serialization produced by Write into a fresh KB.
func Read(r io.Reader) (*KB, error) {
	o := NewOntology()
	k := New(o)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, "\t")
		switch f[0] {
		case "P":
			if len(f) != 5 {
				return nil, fmt.Errorf("kb: line %d: P record needs 5 fields", lineNo)
			}
			o.Add(Predicate{Name: f[1], Domain: f[2], Range: f[3], MultiValued: f[4] == "multi"})
		case "E":
			if len(f) != 5 {
				return nil, fmt.Errorf("kb: line %d: E record needs 5 fields", lineNo)
			}
			var aliases []string
			if f[4] != "" {
				aliases = strings.Split(unescapeField(f[4]), "|")
			}
			if err := k.AddEntity(Entity{ID: f[1], Type: f[2], Name: unescapeField(f[3]), Aliases: aliases}); err != nil {
				return nil, fmt.Errorf("kb: line %d: %w", lineNo, err)
			}
		case "T":
			if len(f) != 4 {
				return nil, fmt.Errorf("kb: line %d: T record needs 4 fields", lineNo)
			}
			var obj Object
			switch {
			case strings.HasPrefix(f[3], "e:"):
				obj = EntityObject(f[3][2:])
			case strings.HasPrefix(f[3], "l:"):
				obj = LiteralObject(unescapeField(f[3][2:]))
			default:
				return nil, fmt.Errorf("kb: line %d: bad object %q", lineNo, f[3])
			}
			if err := k.AddTriple(Triple{Subject: f[1], Predicate: f[2], Object: obj}); err != nil {
				return nil, fmt.Errorf("kb: line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("kb: line %d: unknown record type %q", lineNo, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return k, nil
}

func escapeField(s string) string {
	s = strings.ReplaceAll(s, "\\", `\\`)
	s = strings.ReplaceAll(s, "\t", `\t`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

func unescapeField(s string) string {
	if !strings.Contains(s, "\\") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' || i+1 == len(s) {
			b.WriteByte(s[i])
			continue
		}
		i++
		switch s[i] {
		case 't':
			b.WriteByte('\t')
		case 'n':
			b.WriteByte('\n')
		case '\\':
			b.WriteByte('\\')
		default:
			b.WriteByte('\\')
			b.WriteByte(s[i])
		}
	}
	return b.String()
}
